// Accumulation table for the live merger (paper §5.3 "merging table").
//
// One instance per parallel segment — the sharding that replaces the old
// global std::map<(segment, pid), vector> — holding the partial arrival
// sets of packets whose parallel copies have not all reached the merger
// yet. Storage is a fixed-stride open-addressing hash table keyed by PID:
// each slot owns `arrivals_per_pid` preallocated arrival records (sized by
// the segment's merge.total_count), so the steady-state hot path performs
// zero heap allocation — no nodes, no per-PID vectors. Deletion uses
// backward-shift (no tombstones), keeping probe chains short for the
// lifetime of the run; occupancy is bounded by the pipeline's in-flight
// window, and the table doubles in the (config-error) case it fills past
// half anyway. Single-threaded by design: only the merger thread touches it.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace nfp {

class Packet;

// One arrival at the merger: the packet reference plus the sender stage's
// metadata needed for drop resolution.
struct MergeArrival {
  Packet* pkt = nullptr;
  u8 version = 1;
  bool drop_intent = false;
  i32 priority = 0;
  bool can_drop = false;
  // Latency-observatory spans reported by the sending NF for sampled
  // packets (zero otherwise). Carried here because parallel NFs sharing one
  // packet version must not write the packet's stamp bytes.
  u64 queue_ns = 0;
  u64 service_ns = 0;
  u64 out_ns = 0;  // when the NF pushed this arrival to its out ring
};

class MergeTable {
 public:
  // `expected_pids` bounds concurrently-accumulating PIDs (the in-flight
  // window); the table allocates 2x that, rounded up to a power of two.
  MergeTable(std::size_t expected_pids, u32 arrivals_per_pid);

  // Records one arrival for `pid`. When it completes the set (the
  // arrivals_per_pid-th arrival), the full set is returned — the span stays
  // valid until the next add() — and the slot is recycled. Otherwise
  // returns an empty span.
  std::span<MergeArrival> add(u64 pid, const MergeArrival& arrival);

  std::size_t pending() const noexcept { return live_; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  u32 arrivals_per_pid() const noexcept { return per_pid_; }

 private:
  struct Slot {
    u64 pid_plus1 = 0;  // 0 = empty
    u32 count = 0;
  };

  std::size_t home(u64 pid) const noexcept {
    // Fibonacci mix: sequential PIDs spread evenly, arbitrary ones too.
    return static_cast<std::size_t>((pid + 1) * 0x9E3779B97F4A7C15ull) & mask_;
  }

  void erase_at(std::size_t idx);
  void grow();

  u32 per_pid_;
  std::size_t mask_;
  std::vector<Slot> slots_;
  std::vector<MergeArrival> arrivals_;   // slots_.size() * per_pid_, flat
  std::vector<MergeArrival> completed_;  // scratch returned by add()
  std::size_t live_ = 0;
};

}  // namespace nfp

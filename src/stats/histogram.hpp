// Log-bucketed latency histogram.
//
// The LatencyRecorder stores raw samples (fine for bounded bench runs);
// this histogram is the constant-memory companion for long-running
// deployments: HdrHistogram-style log2 buckets with linear sub-buckets,
// bounded relative error, mergeable across merger/NF cores.
#pragma once

#include <array>
#include <bit>
#include <string>

#include "common/types.hpp"

namespace nfp {

class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 16;  // per power of two
  static constexpr std::size_t kBuckets = 64 * kSubBuckets;

  void record(u64 value) noexcept {
    ++counts_[index_of(value)];
    ++total_;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  void merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    // min_ starts at the kEmptyMin sentinel, so an empty side never wins.
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  u64 count() const noexcept { return total_; }
  u64 sum() const noexcept { return sum_; }
  u64 min() const noexcept { return total_ ? min_ : 0; }
  u64 max() const noexcept { return max_; }

  // Count of samples in buckets entirely below `bound` — exact when
  // `bound` is a bucket boundary (powers of two always are, since no
  // bucket straddles one), otherwise it includes the whole bucket
  // containing `bound`. Feeds the Prometheus cumulative `le` exposition;
  // values exactly equal to a boundary land in the next bucket up.
  u64 count_below(u64 bound) const noexcept {
    u64 c = 0;
    for (std::size_t i = 0; i < kBuckets && value_of(i) < bound; ++i) {
      c += counts_[i];
    }
    return c;
  }
  double mean() const noexcept {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                  : 0.0;
  }

  // Value at quantile q in [0, 1]; returns a bucket's representative value
  // (relative error bounded by 1/kSubBuckets).
  u64 quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    u64 target = static_cast<u64>(q * static_cast<double>(total_ - 1)) + 1;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] >= target) return value_of(i);
      target -= counts_[i];
    }
    return max_;
  }

  std::string summary() const;

 private:
  static std::size_t index_of(u64 value) noexcept {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const auto exponent = static_cast<std::size_t>(msb) - 3;  // log2(16)=4-1
    const std::size_t sub =
        static_cast<std::size_t>(value >> (msb - 4)) & (kSubBuckets - 1);
    const std::size_t idx = exponent * kSubBuckets + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static u64 value_of(std::size_t index) noexcept {
    if (index < kSubBuckets) return index;
    const std::size_t exponent = index / kSubBuckets;
    const std::size_t sub = index % kSubBuckets;
    const int shift = static_cast<int>(exponent) - 1;
    return (u64{kSubBuckets} << shift) | (static_cast<u64>(sub) << shift);
  }

  // Sentinel for "no samples yet": any recorded value compares below it.
  static constexpr u64 kEmptyMin = ~u64{0};

  std::array<u64, kBuckets> counts_{};
  u64 total_ = 0;
  u64 sum_ = 0;
  u64 min_ = kEmptyMin;
  u64 max_ = 0;
};

}  // namespace nfp

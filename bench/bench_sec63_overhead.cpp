// Reproduces the overhead analysis of paper §6.3:
//  (1) §6.3.1 resource overhead  ro = 64*(d-1)/s  as a function of packet
//      size and parallelism degree; with the data-center size distribution
//      this is ro = 0.088*(d-1), i.e. 8.8% at degree 2.
//  (2) §6.3.2 copying + merging performance overhead: the latency penalty
//      of the with-copy setup vs no-copy (paper: ~15us average for the
//      firewall, still 20%+ better than sequential composition).
//  (3) §6.3.3 merger load balancing: peak lossless rate of a single merger
//      instance (paper: 10.7 Mpps), and that two instances sustain full
//      speed up to parallelism degree 5.
#include "bench_util.hpp"

using namespace nfp;
using namespace nfp::bench;

int main(int argc, char** argv) {
  const bool json = json_enabled(argc, argv);
  BenchServer server(argc, argv);
  print_header(
      "Sec 6.3.1: resource overhead ro = 64*(d-1)/s (%), Header-Only Copying");
  std::printf("%-10s", "size");
  for (int d = 2; d <= 5; ++d) std::printf("  d=%-8d", d);
  std::printf("\n");
  const std::size_t sizes[] = {64, 128, 256, 512, 724, 1024, 1500};
  for (const std::size_t s : sizes) {
    std::printf("%-10zu", s);
    for (int d = 2; d <= 5; ++d) {
      std::printf("  %-9.1f", 64.0 * (d - 1) / static_cast<double>(s) * 100);
    }
    std::printf("\n");
  }
  const double dc_mean = TrafficGenerator::dc_mean_frame_size();
  std::printf("%-10s", "DC-dist");
  for (int d = 2; d <= 5; ++d) {
    std::printf("  %-9.1f", 64.0 * (d - 1) / dc_mean * 100);
  }
  std::printf("   <- paper: 8.8%% x (d-1), DC mean ~724B (ours %.0fB)\n",
              dc_mean);

  // Measured overhead from the dataplane itself (copy bytes / traffic bytes)
  // for degree 2, DC traffic.
  {
    TrafficConfig traffic;
    traffic.size_model = SizeModel::kDataCenter;
    traffic.rate_pps = 20'000;
    traffic.packets = 5'000;
    const Measurement m =
        run_nfp(parallel_stage("firewall", 2, /*with_copy=*/true), traffic);
    server.observe(m);
    const double measured = static_cast<double>(m.stats.copy_bytes) /
                            (dc_mean * static_cast<double>(m.stats.injected));
    std::printf("measured in dataplane, degree 2, DC traffic: %.1f%%\n",
                measured * 100);
  }

  print_header(
      "Sec 6.3.2: copying+merging latency penalty (firewall, 64B)");
  std::printf("%-8s %-12s %-12s %-12s %-10s\n", "degree", "NFP-seq(us)",
              "nocopy(us)", "copy(us)", "penalty(us)");
  for (std::size_t d = 2; d <= 5; ++d) {
    const Measurement seq = run_nfp(
        ServiceGraph::sequential("seq", repeat("firewall", d)),
        latency_traffic(64));
    const Measurement nocopy =
        run_nfp(parallel_stage("firewall", d, false), latency_traffic(64));
    const Measurement copy =
        run_nfp(parallel_stage("firewall", d, true), latency_traffic(64));
    server.observe(seq);
    server.observe(nocopy);
    server.observe(copy);
    std::printf("%-8zu %-12.1f %-12.1f %-12.1f %-10.1f\n", d,
                seq.mean_latency_us, nocopy.mean_latency_us,
                copy.mean_latency_us,
                copy.mean_latency_us - nocopy.mean_latency_us);
  }

  print_header(
      "Sec 6.3.3: merger capacity (paper: one instance ~10.7 Mpps; two\n"
      "instances sustain full speed up to degree 5)");
  std::printf("%-22s %-8s %-12s\n", "setup", "degree", "rate (Mpps)");
  for (const std::size_t mergers : {std::size_t{1}, std::size_t{2}}) {
    for (std::size_t d = 2; d <= 5; ++d) {
      DataplaneConfig cfg;
      cfg.merger_instances = mergers;
      cfg.pool_packets = 1 << 17;
      const Measurement m = run_nfp(parallel_stage("firewall", d, false),
                                    saturation_traffic(64, 40'000), cfg);
      server.observe(m);
      std::printf("%zu merger instance(s)   %-8zu %-12.2f\n", mergers, d,
                  m.rate_mpps);
      if (json) {
        emit_metrics_json("sec633_merger_capacity",
                          "mergers=" + std::to_string(mergers) +
                              ",degree=" + std::to_string(d),
                          m);
      }
    }
  }
  server.finish();
  return 0;
}

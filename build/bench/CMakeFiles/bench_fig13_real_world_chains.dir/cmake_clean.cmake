file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_real_world_chains.dir/bench_fig13_real_world_chains.cpp.o"
  "CMakeFiles/bench_fig13_real_world_chains.dir/bench_fig13_real_world_chains.cpp.o.d"
  "bench_fig13_real_world_chains"
  "bench_fig13_real_world_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_real_world_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Live health sampling and anomaly watchdog for the threaded dataplane.
//
// The simulated dataplanes publish gauges at explicit snapshot points; the
// live pipeline runs on real OS threads, so point-in-time health (ring
// depths, pool occupancy, per-worker heartbeats) needs a sampling thread.
//
//  * HealthSampler — a background thread that, every `period_us`, reads a
//    set of registered probes (plain `double()` closures over atomics or
//    briefly-locked state) and records them into registry gauges. Gauges
//    are resolved once at add_probe(); the sampler thread is their only
//    writer while running. Gauge cells are relaxed atomics (registry.hpp),
//    so exporter / stats-server threads may read concurrently without
//    tearing — no stop() required before scraping.
//  * Watchdog — anomaly rules evaluated after each sampler tick (or
//    manually): a worker heartbeat older than `stall_after_ns`, a
//    drop-counter delta above `drop_spike`, or pool exhaustion. On firing,
//    it notes a critical event in the FlightRecorder, renders a post-mortem
//    dump (recent event window + registry snapshot) and hands it to the
//    on_dump callback; each rule then stays quiet until its condition
//    clears, so a wedged worker produces one report, not one per tick.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/registry.hpp"

namespace nfp::telemetry {

// Monotonic wall clock used by the sampler/watchdog (steady_clock ns).
u64 mono_now_ns() noexcept;

class Watchdog {
 public:
  struct Options {
    u64 stall_after_ns = 200'000'000;  // heartbeat older than this = stalled
    u64 drop_spike = 1'000;            // drop delta per evaluation = spike
    // Injectable clock for deterministic tests; defaults to mono_now_ns.
    std::function<u64()> clock;
  };

  explicit Watchdog(FlightRecorder& recorder);
  Watchdog(FlightRecorder& recorder, Options options);

  // Registration (main thread, before evaluation starts) ---------------------

  // `last_beat_ns` returns the worker's most recent heartbeat on the
  // watchdog clock; 0 means "not started yet" and never counts as a stall.
  void watch_heartbeat(std::string component,
                       std::function<u64()> last_beat_ns);
  void watch_drop_counter(std::string component, std::function<u64()> value);
  void watch_pool(std::string component, std::function<u64()> in_use,
                  u64 capacity);

  // Snapshot source for post-mortem dumps (may be null).
  void set_registry(const MetricsRegistry* registry) { registry_ = registry; }
  void on_dump(std::function<void(const std::string&)> callback) {
    dump_callback_ = std::move(callback);
  }

  // Evaluation (sampler thread, or manual) -----------------------------------

  // Runs every rule once; returns true when at least one anomaly fired.
  bool evaluate();

  u64 anomalies() const { return anomalies_.load(std::memory_order_acquire); }
  std::string last_dump() const;

  // Liveness view for /healthz: rules whose condition currently holds
  // (stalled worker, exhausted pool, drop rate above threshold as of the
  // last evaluation). Readable from any thread while evaluate() runs on
  // the sampler thread.
  std::size_t firing_count() const {
    return firing_count_.load(std::memory_order_acquire);
  }
  bool healthy() const { return firing_count() == 0; }
  // "component: condition" strings for the currently-firing rules.
  std::vector<std::string> firing() const;

 private:
  struct HeartbeatRule {
    std::string component;
    std::function<u64()> last_beat_ns;
    bool firing = false;
  };
  struct DropRule {
    std::string component;
    std::function<u64()> value;
    u64 last = 0;
    bool primed = false;
    bool firing = false;
  };
  struct PoolRule {
    std::string component;
    std::function<u64()> in_use;
    u64 capacity = 0;
    bool firing = false;
  };

  void fire(Severity severity, const std::string& component,
            std::string message);

  FlightRecorder& recorder_;
  Options options_;
  const MetricsRegistry* registry_ = nullptr;
  std::function<void(const std::string&)> dump_callback_;
  std::vector<HeartbeatRule> heartbeats_;
  std::vector<DropRule> drops_;
  std::vector<PoolRule> pools_;
  std::atomic<u64> anomalies_{0};
  std::atomic<std::size_t> firing_count_{0};
  mutable std::mutex dump_mu_;
  std::string last_dump_;
  std::vector<std::string> firing_;  // guarded by dump_mu_
};

class HealthSampler {
 public:
  struct Options {
    u64 period_us = 1'000;
  };

  explicit HealthSampler(MetricsRegistry& registry);
  HealthSampler(MetricsRegistry& registry, Options options);
  ~HealthSampler();

  HealthSampler(const HealthSampler&) = delete;
  HealthSampler& operator=(const HealthSampler&) = delete;

  // Resolves the gauge once; `read` runs on the sampler thread each tick.
  void add_probe(std::string gauge_name, Labels labels,
                 std::function<double()> read);

  // Evaluated after each tick while running.
  void set_watchdog(Watchdog* watchdog) { watchdog_ = watchdog; }

  void start();
  void stop();
  bool running() const { return thread_.joinable(); }

  // Completed ticks (background or manual).
  u64 ticks() const { return ticks_.load(std::memory_order_acquire); }

  // One synchronous tick: record every probe, then run the watchdog.
  void sample_once();

 private:
  struct Probe {
    std::function<double()> read;
    Gauge* gauge = nullptr;
  };

  MetricsRegistry& registry_;
  Options options_;
  std::vector<Probe> probes_;
  Watchdog* watchdog_ = nullptr;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<u64> ticks_{0};
};

}  // namespace nfp::telemetry

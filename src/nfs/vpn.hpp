// VPN NF: IPsec Authentication Header tunnel endpoint (paper §6.1: "the
// tunnel mode of IPsec Authentication Header (AH) protocol. It encrypts a
// packet based on the AES algorithm and wraps it with an AH header").
//
// Encrypt direction: AES-CTR over the payload, AH inserted after the IP
// header with a CBC-MAC ICV over the encrypted payload.
// Decrypt direction (VpnDecrypt): verifies the ICV, removes the AH and
// restores the plaintext — used by round-trip tests.
#pragma once

#include <cstring>

#include "crypto/aes128.hpp"
#include "nfs/nf.hpp"

namespace nfp {

class Vpn : public NetworkFunction {
 public:
  explicit Vpn(const Aes128::Key& key = kDefaultKey, u32 spi = 0x1001)
      : aes_(key), spi_(spi) {}

  std::string_view type_name() const override { return "vpn"; }

  NfVerdict process(PacketView& packet) override {
    // Tunnel identity comes from the addresses.
    const u64 nonce = (static_cast<u64>(packet.src_ip()) << 32) |
                      packet.dst_ip();
    auto body = packet.mutable_payload();
    aes_.ctr_crypt(nonce ^ nonce_salt_, body);
    AhView ah = packet.add_ah_header(spi_, ++sequence_);
    const auto mac = aes_.icv({body.data(), body.size()});
    std::memcpy(ah.icv(), mac.data(), mac.size());
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kPayload);
    p.add_write(Field::kPayload);
    p.add_add_rm(Field::kAhHeader);
    return p;
  }

  u32 sequence() const noexcept { return sequence_; }

  static constexpr Aes128::Key kDefaultKey = {0x2b, 0x7e, 0x15, 0x16, 0x28,
                                              0xae, 0xd2, 0xa6, 0xab, 0xf7,
                                              0x15, 0x88, 0x09, 0xcf, 0x4f,
                                              0x3c};

 protected:
  Aes128 aes_;
  u32 spi_;
  u32 sequence_ = 0;
  u64 nonce_salt_ = 0x5a5a5a5a;
};

// Inverse direction: strips the AH and decrypts. Fails (drops) on a bad ICV.
class VpnDecrypt final : public Vpn {
 public:
  using Vpn::Vpn;

  std::string_view type_name() const override { return "vpn_decrypt"; }

  NfVerdict process(PacketView& packet) override {
    if (!packet.has_ah()) return NfVerdict::kDrop;
    auto body = packet.mutable_payload();
    const auto mac = aes_.icv({body.data(), body.size()});
    AhView ah = packet.ah();
    if (std::memcmp(ah.icv(), mac.data(), mac.size()) != 0) {
      return NfVerdict::kDrop;
    }
    packet.remove_ah_header();
    const u64 nonce = (static_cast<u64>(packet.src_ip()) << 32) |
                      packet.dst_ip();
    auto plain = packet.mutable_payload();
    aes_.ctr_crypt(nonce ^ nonce_salt_, plain);
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kAhHeader);
    p.add_read(Field::kPayload);
    p.add_write(Field::kPayload);
    p.add_add_rm(Field::kAhHeader);
    p.add_drop();
    return p;
  }
};

}  // namespace nfp

// Snapshot of the full pairwise verdict matrix over the six deployment-
// weighted NFs of paper Table 2. This pins down the exact Algorithm 1
// behaviour that produces the paper's §4.3 statistics; any change to the
// dependency table that shifts a verdict fails here with the precise pair.
#include <gtest/gtest.h>

#include <map>

#include "actions/action_table.hpp"
#include "actions/dependency.hpp"

namespace nfp {
namespace {

using V = PairParallelism;

TEST(VerdictMatrix, MatchesTheValidatedReconstruction) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  // (NF1, NF2) -> expected verdict for Order(NF1, before, NF2).
  const std::map<std::pair<std::string, std::string>, V> expected = {
      // firewall first: it may drop, so nothing can follow in parallel.
      {{"firewall", "nids"}, V::kNotParallelizable},
      {{"firewall", "gateway"}, V::kNotParallelizable},
      {{"firewall", "lb"}, V::kNotParallelizable},
      {{"firewall", "caching"}, V::kNotParallelizable},
      {{"firewall", "vpn"}, V::kNotParallelizable},
      // firewall second: reads + drop combine freely with readers.
      {{"nids", "firewall"}, V::kNoCopy},
      {{"gateway", "firewall"}, V::kNoCopy},
      {{"caching", "firewall"}, V::kNoCopy},
      // LB second: writes addresses others read -> copy.
      {{"nids", "lb"}, V::kWithCopy},
      {{"gateway", "lb"}, V::kWithCopy},
      {{"caching", "lb"}, V::kWithCopy},
      // LB first: its writes must be visible downstream -> sequential.
      {{"lb", "nids"}, V::kNotParallelizable},
      {{"lb", "gateway"}, V::kNotParallelizable},
      {{"lb", "caching"}, V::kNotParallelizable},
      {{"lb", "firewall"}, V::kNotParallelizable},
      {{"lb", "vpn"}, V::kNotParallelizable},
      // VPN second: AH addition forces a copy; payload conflicts decide
      // whether it is reachable at all.
      {{"gateway", "vpn"}, V::kWithCopy},
      {{"nids", "vpn"}, V::kWithCopy},     // payload read vs write: full copy
      {{"caching", "vpn"}, V::kWithCopy},  // payload read vs write: full copy
      // VPN first: downstream must see the restructured packet.
      {{"vpn", "nids"}, V::kNotParallelizable},
      {{"vpn", "gateway"}, V::kNotParallelizable},
      {{"vpn", "lb"}, V::kNotParallelizable},
      {{"vpn", "caching"}, V::kNotParallelizable},
      // Pure reader pairs: free parallelism both ways.
      {{"nids", "gateway"}, V::kNoCopy},
      {{"gateway", "nids"}, V::kNoCopy},
      {{"nids", "caching"}, V::kNoCopy},
      {{"caching", "nids"}, V::kNoCopy},
      {{"gateway", "caching"}, V::kNoCopy},
      {{"caching", "gateway"}, V::kNoCopy},
  };

  for (const auto& [pair, verdict] : expected) {
    const PairAnalysis analysis =
        analyze_pair(table.profile(pair.first), table.profile(pair.second));
    EXPECT_EQ(analysis.verdict(), verdict)
        << "Order(" << pair.first << ", before, " << pair.second << ")";
  }
}

TEST(VerdictMatrix, PayloadPairsNeedFullCopies) {
  // The with-copy verdicts that involve the payload must be realized as
  // full copies by the compiler; check the conflicts carry payload fields.
  const ActionTable table = ActionTable::with_builtin_nfs();
  const PairAnalysis a =
      analyze_pair(table.profile("nids"), table.profile("vpn"));
  ASSERT_EQ(a.verdict(), PairParallelism::kWithCopy);
  bool payload_conflict = false;
  for (const auto& c : a.conflicts) {
    payload_conflict |= c.first.field == Field::kPayload &&
                        c.second.field == Field::kPayload;
  }
  EXPECT_TRUE(payload_conflict);
}

}  // namespace
}  // namespace nfp

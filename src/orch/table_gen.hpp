// Dataplane table generation (paper §4.4.3 / Fig 4).
//
// The orchestrator's final step produces the three table kinds the
// infrastructure consumes: the classifier's Classification Table entry, the
// per-NF Forwarding Tables installed by the Chaining Manager, and the merge
// operations. This module renders them explicitly — both as structured data
// and in the textual form of the paper's Figure 4 — so operators (and
// tests) can see exactly what a compiled graph installs.
#pragma once

#include <string>
#include <vector>

#include "graph/service_graph.hpp"

namespace nfp {

// One Classification Table entry (Fig 4 left).
struct CtEntry {
  std::string match;          // e.g. "10.0.0.1" or "*"
  u32 mid = 0;                // first segment's MID
  u32 total_count = 0;        // copies the merger expects (first segment)
  std::vector<std::string> merge_ops;  // rendered MOs
  std::vector<std::string> actions;    // copy()/distribute() entry actions
};

// One Forwarding Table entry for an NF runtime (Fig 4 middle).
struct FtEntry {
  std::string nf;             // instance label, e.g. "monitor#1"
  u32 mid = 0;                // segment the entry applies to
  std::vector<std::string> actions;  // distribute()/output()/copy() actions
};

struct DataplaneTables {
  std::vector<CtEntry> ct;
  std::vector<FtEntry> ft;
};

// Generates the tables a deployment of `graph` installs. `match` names the
// flow spec of the CT entry (purely descriptive).
DataplaneTables generate_tables(const ServiceGraph& graph,
                                const std::string& match = "*");

// Renders tables in the style of paper Fig 4.
std::string tables_to_string(const DataplaneTables& tables);

// Renders one merge operation ("modify(v1.sip, v2.sip)" etc.).
std::string merge_op_to_string(const MergeOp& op);

}  // namespace nfp

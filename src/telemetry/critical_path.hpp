// Critical-path latency attribution over per-packet trace spans.
//
// The paper's headline claim (§6) is that a parallel segment costs roughly
// the slowest branch plus merge overhead. The tracer records *when* each
// stage happened; this profiler reconstructs each traced packet's span DAG
// (inject → classify → copy → per-branch ring-queue wait + NF service →
// merge-wait → merge → output) and attributes every nanosecond of
// end-to-end latency to exactly one of those stages, so the report can say
// *which* branch, queue or merge-wait dominates.
//
// Attribution model (see DESIGN.md "Observability"):
//
//  * The packet walk follows the *earliest-arriving* branch of each
//    parallel segment — its queue wait and service time are what the
//    surviving packet actually experienced — and books the gap until the
//    *latest* arrival as merge-wait: the §5.3 merger tax of waiting for
//    the slowest sibling.
//  * The NF on the latest-arriving branch is the segment's bottleneck and
//    is charged with the merge-wait it caused. Per-NF "bottleneck share"
//    is the fraction of attributed packets whose critical path ran through
//    that NF (sequential hops are always on the critical path).
//  * Stages partition the timeline into consecutive intervals, so their
//    sum equals end-to-end latency exactly — the acceptance check the CLI
//    prints as "attribution coverage".
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "stats/histogram.hpp"
#include "telemetry/tracer.hpp"

namespace nfp::telemetry {

// Latency attribution stages, in packet order.
enum class Stage : u8 {
  kClassify,   // inject → classifier done (wire, NIC, CT lookup)
  kCopy,       // packet-copy creation on segment entry
  kQueue,      // ring hand-offs: entry → NF and NF → merger
  kService,    // NF processing, incl. its latency contribution
  kMergeWait,  // waiting in the accumulating table for the slowest branch
  kMerge,      // drop resolution + merge operations
  kOutput,     // output queue + TX wire + NIC
};
inline constexpr std::size_t kStageCount = 7;

std::string_view stage_name(Stage stage) noexcept;

// One NF traversal on the packet's path through a segment.
struct BranchTiming {
  std::string component;
  SimTime enter = 0;    // hand-off into the NF (ring-queue wait ends)
  SimTime exit = 0;     // NF service complete (incl. latency contribution)
  SimTime arrival = 0;  // merger arrival; 0 for sequential hops
};

struct SegmentAttribution {
  std::vector<BranchTiming> branches;  // size 1 => sequential hop
  std::size_t critical = 0;            // index of the bottleneck branch
  SimTime merge_wait_ns = 0;           // latest arrival − earliest arrival
  bool parallel() const noexcept { return branches.size() > 1; }
};

struct PacketAttribution {
  u64 pid = 0;
  SimTime start_ns = 0;  // inject span
  SimTime end_ns = 0;    // output span
  std::array<SimTime, kStageCount> stage_ns{};
  std::vector<SegmentAttribution> segments;

  SimTime total_ns() const noexcept { return end_ns - start_ns; }
  // Equals total_ns() by construction; exposed so tests can assert it.
  SimTime attributed_ns() const noexcept;
};

// Per-NF rollup across all attributed packets.
struct NfShare {
  std::string component;
  u64 packets = 0;            // attributed packets that traversed this NF
  u64 critical = 0;           // … where it was the segment bottleneck
  u64 service_ns_total = 0;   // sum of enter→exit over traversals
  u64 wait_caused_ns_total = 0;  // merge-wait charged to it as bottleneck

  double mean_service_ns() const noexcept {
    return packets ? static_cast<double>(service_ns_total) /
                         static_cast<double>(packets)
                   : 0.0;
  }
};

struct CriticalPathReport {
  u64 attributed = 0;  // packets with a complete inject→output span set
  u64 dropped = 0;     // traced packets that ended in a drop span
  u64 incomplete = 0;  // traced packets with evicted / partial spans
  SimTime total_latency_ns = 0;  // sum of end-to-end over attributed packets
  std::array<SimTime, kStageCount> stage_ns{};  // sums to total_latency_ns
  Histogram merge_wait_ns;  // per-packet merge-wait tax (parallel packets)
  std::vector<NfShare> nfs;  // sorted by bottleneck share, descending

  double bottleneck_share(const NfShare& nf) const noexcept {
    return attributed ? static_cast<double>(nf.critical) /
                            static_cast<double>(attributed)
                      : 0.0;
  }
  double stage_fraction(Stage stage) const noexcept;

  std::string to_text() const;
  std::string to_json() const;
};

// Reconstructs attributions from a tracer's retained spans. The tracer must
// have been run with inject/output spans retained (trace_capacity large
// enough that no traced packet lost events to ring eviction).
class CriticalPathProfiler {
 public:
  explicit CriticalPathProfiler(const Tracer& tracer) : tracer_(tracer) {}

  enum class Outcome { kAttributed, kDropped, kIncomplete };

  // Attribution over one packet's time-sorted spans. `out` may be null
  // (outcome probe only).
  static Outcome attribute_events(const std::vector<SpanEvent>& events,
                                  PacketAttribution* out);

  std::optional<PacketAttribution> attribute(u64 pid) const;

  CriticalPathReport report() const;

 private:
  const Tracer& tracer_;
};

}  // namespace nfp::telemetry

// nfp_cli: command-line front end to the orchestrator.
//
//   nfp_cli compile <policy-file>         compile and print the graph
//   nfp_cli tables <policy-file>          print the Fig-4 dataplane tables
//   nfp_cli dot <policy-file>             print Graphviz for the graph
//   nfp_cli plan <policy-file> [cores]    partition across servers (§7)
//   nfp_cli stats                         print the §4.3 pair statistics
//   nfp_cli run <policy-file> [options]   run traffic through the dataplane
//   nfp_cli live <policy-file> [options]  run the policy on the sharded
//                                         multi-core live dataplane (real
//                                         threads, RSS flow sharding)
//   nfp_cli profile <policy-file> [opts]  critical-path bottleneck report
//   nfp_cli top [--port=P] [options]      live terminal dashboard against a
//                                         --serve'd run (pps, per-NF p99,
//                                         utilization, bottleneck share,
//                                         per-shard cycle attribution)
//   nfp_cli scalability [policy] [opts]   sweep shard counts and attribute
//                                         every lost packet-per-second to
//                                         a cycle bucket (useful/starved/
//                                         ring/pool/merge/classifier-miss)
//   nfp_cli latency [policy] [opts]       the paper's core experiment live:
//                                         run the NFP-parallel graph and its
//                                         flattened sequential chain on the
//                                         sharded dataplane and print the
//                                         stage-resolved latency-reduction
//                                         table (p50/p99/p99.9 per stage)
//   nfp_cli flows [policy] [opts]         run a zipf elephant/mice workload
//                                         and print the flow observatory's
//                                         merged top-K heavy hitters, flow
//                                         churn and per-reason drop
//                                         attribution (--pool=N for a
//                                         tail-drop overload demo)
//
// `run` options (telemetry):
//   --metrics          per-component utilization/latency report
//   --trace-every=N    trace every Nth packet; prints the first traced
//                      packet's span timeline
//   --json             metrics as JSON
//   --prometheus       metrics in Prometheus text format
//   --packets=N        packets to inject (default 2000)
//   --rate=PPS         injection rate (default 10000)
//   --size=BYTES       frame size (default 128)
//
// `live` options:
//   --shards=N         shard count (default 0 = one per online CPU)
//   --packets=N        frames per wave (default 20000)
//   --flows=N          distinct 5-tuples in the generated traffic
//   --skew=uniform|zipf  flow-popularity model (default uniform)
//   --size=BYTES       frame size (default 256)
//   --serve=PORT       stream waves forever and serve /metrics,
//                      /timeseries.json, /latency.json, /healthz —
//                      `nfp_cli top` then shows per-shard pps, core
//                      utilization and stage latency live
//   --lat-every=N      sample every-Nth flow for stage latency (default 8
//                      under --serve, 0 = off otherwise)
//   --scenario=NAME    named traffic preset instead of the generated wave:
//                      bursty | elephant-mice | syn-flood | ddos (ddos also
//                      installs a CT drop rule for the attack subnet)
//   --rules=N          preload N synthetic masked CT rules (classifier
//                      scale testing; verdicts beyond graph range clamp)
//
// `profile` options (in addition to --packets/--rate/--size/--json):
//   --plane=nfp|onv|rtc  which dataplane to profile (default nfp; onv/rtc
//                        flatten the graph into a sequential chain)
//   --trace-every=N      sample every Nth packet (default 1: all)
//   --watch=MS           print interim bottleneck lines every MS of
//                        simulated time while the run progresses
//
// `--serve=PORT` (run and profile) keeps the dataplane alive after the
// first wave, injecting `--packets` more packets every ~200ms and serving
// the live observability endpoints on 127.0.0.1:PORT — /metrics,
// /metrics.json, /timeseries.json, /profile.json, /recorder.json,
// /trace.json (load in ui.perfetto.dev) and /healthz. Ctrl-C stops.
//
// Policy files use the text format of src/policy/parser.hpp.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/onv_dataplane.hpp"
#include "baseline/rtc_dataplane.hpp"
#include "cluster/partition.hpp"
#include "common/cpu_affinity.hpp"
#include "common/json.hpp"
#include "dataplane/nfp_dataplane.hpp"
#include "dataplane/sharded_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "orch/compiler.hpp"
#include "orch/pair_stats.hpp"
#include "orch/table_gen.hpp"
#include "policy/parser.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/flow_observatory.hpp"
#include "telemetry/health_sampler.hpp"
#include "telemetry/latency_observatory.hpp"
#include "telemetry/scalability_profiler.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/timeseries.hpp"
#include "dataplane/tuple_space_classifier.hpp"
#include "trafficgen/scenarios.hpp"
#include "trafficgen/trafficgen.hpp"

namespace {

using namespace nfp;

int usage() {
  std::fprintf(stderr,
               "usage: nfp_cli compile|tables|dot|plan <policy-file> "
               "[cores]\n       nfp_cli stats\n"
               "       nfp_cli run <policy-file> [--metrics] "
               "[--trace-every=N] [--json]\n"
               "               [--prometheus] [--packets=N] [--rate=PPS] "
               "[--size=BYTES]\n"
               "               [--serve=PORT]\n"
               "       nfp_cli live <policy-file> [--shards=N] [--packets=N] "
               "[--flows=N]\n"
               "               [--skew=uniform|zipf] [--size=BYTES] "
               "[--serve=PORT]\n"
               "               [--mode=pipelined|rtc|auto] "
               "[--scenario=NAME] [--rules=N]\n"
               "       nfp_cli profile <policy-file> [--plane=nfp|onv|rtc] "
               "[--packets=N]\n"
               "               [--rate=PPS] [--size=BYTES] [--trace-every=N] "
               "[--json] [--watch=MS]\n"
               "               [--serve=PORT]\n"
               "       nfp_cli top [--port=P] [--interval=MS] "
               "[--iterations=N]\n"
               "       nfp_cli scalability [policy-file] [--shards=1,2,4] "
               "[--packets=N]\n"
               "               [--flows=N] [--skew=uniform|zipf] "
               "[--size=BYTES] [--json]\n"
               "               [--mode=pipelined|rtc|auto]\n"
               "       nfp_cli latency [policy-file] [--shards=N] "
               "[--packets=N] [--flows=N]\n"
               "               [--skew=uniform|zipf] [--size=BYTES] "
               "[--sample-every=N] [--json]\n"
               "               [--mode=pipelined|rtc|auto]\n"
               "       nfp_cli flows [policy-file] [--shards=N] "
               "[--packets=N] [--flows=N]\n"
               "               [--skew=uniform|zipf] [--top=K] [--pool=N] "
               "[--json]\n");
  return 2;
}

// Parses `--name=value` into out; returns true when argv matches `name`.
bool flag_value(const char* arg, const char* name, u64* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

// --serve / top run until interrupted.
volatile std::sig_atomic_t g_stop = 0;
void handle_stop_signal(int) { g_stop = 1; }

void install_stop_handler() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

// Sleeps `ms` in short slices so Ctrl-C stays responsive.
void interruptible_sleep_ms(u64 ms) {
  while (ms > 0 && g_stop == 0) {
    const u64 slice = ms < 50 ? ms : 50;
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    ms -= slice;
  }
}

// Everything serve mode needs from whichever dataplane the caller built.
struct ServeSources {
  sim::Simulator* sim = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::Tracer* tracer = nullptr;  // null disables /profile + /trace
  telemetry::FlightRecorder* recorder = nullptr;
  PacketPool* pool = nullptr;
  std::function<void(Packet*)> inject;
  std::function<void()> snapshot;  // refresh point-in-time gauges
};

// Serve mode: inject `packets` per wave forever, with the observability
// plane live on 127.0.0.1:port. The mutex serializes the wave loop (the
// only structural mutator of the registry and tracer ring) against the
// stats-server handlers and the collector tick.
int serve_loop(const ServeSources& src, u64 port, u64 packets,
               double rate_pps, std::size_t frame_size) {
  std::mutex mu;

  telemetry::Watchdog watchdog(*src.recorder);
  watchdog.set_registry(src.metrics);
  watchdog.watch_drop_counter("dataplane", [metrics = src.metrics] {
    u64 total = 0;
    for (const auto& [key, c] : metrics->counters()) {
      if (key.name == "packets_dropped_total") total += c.value.load();
    }
    return total;
  });
  watchdog.watch_pool("pool", [pool = src.pool] { return pool->in_use(); },
                      src.pool->capacity());

  // First wave before the server comes up: primes every metric series (so
  // the per-NF probes below can discover components) and seeds the tracer.
  {
    std::lock_guard<std::mutex> lock(mu);
    TrafficConfig traffic;
    traffic.fixed_size = frame_size;
    traffic.rate_pps = rate_pps;
    traffic.packets = packets;
    traffic.metrics = src.metrics;
    TrafficGenerator gen(*src.sim, *src.pool, traffic);
    gen.start([&](Packet* p) { src.inject(p); });
    src.sim->run();
    src.snapshot();
    watchdog.evaluate();
  }

  telemetry::TimeseriesCollector::Options ts_options;
  ts_options.period_ms = 500;
  telemetry::TimeseriesCollector collector(*src.metrics, ts_options);
  collector.publish_derived(src.metrics);
  collector.set_mutex(&mu);
  if (src.tracer != nullptr) {
    // One critical-path report per tick feeds both the merge-wait share
    // and the per-NF bottleneck shares (probes run in registration order,
    // so the cache-refreshing probe goes first).
    auto shares = std::make_shared<std::map<std::string, double>>();
    collector.add_probe(
        "merge_wait_share", {}, [tracer = src.tracer, shares] {
          const telemetry::CriticalPathReport rep =
              telemetry::CriticalPathProfiler(*tracer).report();
          shares->clear();
          for (const telemetry::NfShare& nf : rep.nfs) {
            (*shares)[nf.component] = rep.bottleneck_share(nf);
          }
          return rep.stage_fraction(telemetry::Stage::kMergeWait);
        });
    std::vector<std::string> components;
    for (const auto& [key, h] : src.metrics->histograms()) {
      if (key.name != "nf_service_ns") continue;
      for (const auto& [k, v] : key.labels) {
        if (k == "nf") components.push_back(v);
      }
    }
    std::sort(components.begin(), components.end());
    components.erase(std::unique(components.begin(), components.end()),
                     components.end());
    for (const std::string& component : components) {
      collector.add_probe("bottleneck_share", {{"nf", component}},
                          [shares, component] {
                            const auto it = shares->find(component);
                            return it == shares->end() ? 0.0 : it->second;
                          });
    }
  }

  telemetry::StatsServer server;
  telemetry::EndpointSources sources;
  sources.registry = src.metrics;
  sources.tracer = src.tracer;
  sources.recorder = src.recorder;
  sources.watchdog = &watchdog;
  sources.timeseries = &collector;
  sources.mu = &mu;
  telemetry::register_standard_endpoints(server, sources);

  telemetry::StatsServer::Options server_options;
  server_options.port = static_cast<std::uint16_t>(port);
  const Status started = server.start(server_options);
  if (!started) {
    std::fprintf(stderr, "error: %s\n", started.message().c_str());
    return 1;
  }
  std::printf(
      "serving on http://127.0.0.1:%u — /metrics /metrics.json "
      "/timeseries.json\n/profile.json /recorder.json /trace.json "
      "/healthz — Ctrl-C to stop\n",
      static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  install_stop_handler();
  collector.start();
  u64 waves = 1;
  while (g_stop == 0) {
    {
      std::lock_guard<std::mutex> lock(mu);
      TrafficConfig traffic;
      traffic.fixed_size = frame_size;
      traffic.rate_pps = rate_pps;
      traffic.packets = packets;
      traffic.seed = 42 + waves;  // vary flows across waves
      traffic.metrics = src.metrics;
      TrafficGenerator gen(*src.sim, *src.pool, traffic);
      gen.start([&](Packet* p) { src.inject(p); });
      src.sim->run();
      src.snapshot();
      watchdog.evaluate();
    }
    ++waves;
    interruptible_sleep_ms(200);
  }

  collector.stop();
  server.stop();
  std::printf("\nstopped after %llu waves; served %llu requests\n",
              static_cast<unsigned long long>(waves),
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}

int run_dataplane(const ServiceGraph& graph, int argc, char** argv) {
  bool want_metrics = false;
  bool want_json = false;
  bool want_prometheus = false;
  u64 trace_every = 0;
  u64 packets = 2'000;
  u64 rate_pps = 10'000;
  u64 frame_size = 128;
  u64 serve_port = 0;
  for (int i = 3; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics") == 0) {
      want_metrics = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      want_json = true;
    } else if (std::strcmp(arg, "--prometheus") == 0) {
      want_prometheus = true;
    } else if (flag_value(arg, "--trace-every", &trace_every) ||
               flag_value(arg, "--packets", &packets) ||
               flag_value(arg, "--rate", &rate_pps) ||
               flag_value(arg, "--size", &frame_size) ||
               flag_value(arg, "--serve", &serve_port)) {
      // parsed into the matching variable
    } else {
      std::fprintf(stderr, "unknown run option '%s'\n", arg);
      return usage();
    }
  }
  // Serve mode wants live /profile.json and /trace.json; default the
  // tracer on (sampled) when the caller didn't choose a rate.
  if (serve_port != 0 && trace_every == 0) trace_every = 16;

  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.trace_every = trace_every;
  // Pass-all firewalls: synthetic ACL rules would drop traffic-dependent
  // subsets of the flows and obscure the per-component view.
  cfg.factory = [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kPass);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name, static_cast<u64>(nf.instance_id) + 1);
  };
  NfpDataplane dp(sim, graph, std::move(cfg));

  if (serve_port != 0) {
    ServeSources sources;
    sources.sim = &sim;
    sources.metrics = &dp.metrics();
    sources.tracer = dp.tracer();
    sources.recorder = &dp.flight_recorder();
    sources.pool = &dp.pool();
    sources.inject = [&dp](Packet* p) { dp.inject(p); };
    sources.snapshot = [&dp] { dp.snapshot_metrics(); };
    return serve_loop(sources, serve_port, packets,
                      static_cast<double>(rate_pps),
                      static_cast<std::size_t>(frame_size));
  }

  TrafficConfig traffic;
  traffic.fixed_size = static_cast<std::size_t>(frame_size);
  traffic.rate_pps = static_cast<double>(rate_pps);
  traffic.packets = packets;
  traffic.metrics = &dp.metrics();
  TrafficGenerator gen(sim, dp.pool(), traffic);
  gen.start([&](Packet* p) { dp.inject(p); });
  sim.run();
  dp.snapshot_metrics();

  const DataplaneStats& stats = dp.stats();
  std::printf("ran %llu packets through '%s' (%s): delivered=%llu "
              "dropped_nf=%llu dropped_pool=%llu\n",
              static_cast<unsigned long long>(stats.injected),
              graph.name().c_str(), graph.structure().c_str(),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped_by_nf),
              static_cast<unsigned long long>(stats.dropped_pool));
  if (want_metrics) {
    std::printf("\n%s", telemetry::component_report(dp.metrics()).c_str());
  }
  if (want_prometheus) {
    std::printf("\n%s", telemetry::to_prometheus(dp.metrics()).c_str());
  }
  if (want_json) {
    std::printf("%s\n", telemetry::to_json(dp.metrics()).c_str());
  }
  if (dp.tracer() != nullptr) {
    const auto pids = dp.tracer()->pids();
    if (pids.empty()) {
      std::printf("\ntracer retained no spans\n");
    } else {
      std::printf("\n%s", dp.tracer()->timeline(pids.front()).c_str());
      std::printf("(%llu spans recorded over %zu traced packets; "
                  "`--trace-every=%llu`)\n",
                  static_cast<unsigned long long>(dp.tracer()->recorded()),
                  pids.size(),
                  static_cast<unsigned long long>(dp.tracer()->every()));
    }
  }
  return 0;
}

// Parses `--name=value` into a string; returns true when argv matches.
bool flag_string(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

// Parses and validates a `--mode=` value — execution-mode selection shared
// by live/scalability/latency. auto resolves per graph at pipeline
// construction (sequential -> rtc, parallel -> pipelined).
bool resolve_mode_flag(const std::string& text, ExecMode* out) {
  if (const auto m = parse_exec_mode(text)) {
    *out = *m;
    return true;
  }
  std::fprintf(stderr, "unknown mode '%s' (pipelined|rtc|auto)\n",
               text.c_str());
  return false;
}

// Pass-all firewall factory shared by run/profile (synthetic ACL rules
// would drop traffic-dependent subsets and obscure the per-component view).
std::unique_ptr<NetworkFunction> pass_all_factory(const StageNf& nf) {
  if (nf.name == "firewall") {
    AclTable acl;
    acl.set_default_action(AclAction::kPass);
    return std::make_unique<Firewall>(std::move(acl));
  }
  return make_builtin_nf(nf.name, static_cast<u64>(nf.instance_id) + 1);
}

// --- nfp_cli live: the sharded multi-core dataplane on real threads -----

// One wave of frames with the requested flow count / skew / size, built
// through the traffic generator so live and simulated runs share the same
// packet shapes.
std::vector<std::vector<u8>> make_live_frames(u64 packets, u64 flows,
                                              bool zipf, u64 frame_size) {
  sim::Simulator sim;
  PacketPool pool(4);
  TrafficConfig cfg;
  cfg.flows = static_cast<std::size_t>(flows);
  cfg.flow_skew = zipf ? FlowSkew::kZipf : FlowSkew::kUniform;
  TrafficGenerator gen(sim, pool, cfg);
  std::vector<std::vector<u8>> frames;
  frames.reserve(static_cast<std::size_t>(packets));
  for (u64 i = 0; i < packets; ++i) {
    Packet* p = gen.make_packet(pool, gen.next_flow(),
                                static_cast<std::size_t>(frame_size));
    frames.emplace_back(p->data(), p->data() + p->length());
    pool.release(p);
  }
  return frames;
}

void print_live_summary(ShardedDataplane& dp, const ShardedResult& res,
                        double seconds, u64 injected) {
  std::printf("live run: %llu frames, %zu shards (%zu online CPUs, "
              "pinned=%s, mode=%s): delivered=%zu dropped=%llu",
              static_cast<unsigned long long>(injected), dp.shard_count(),
              online_cpu_count(), dp.affinity_applied() ? "yes" : "no",
              exec_mode_name(dp.exec_mode()), res.outputs.size(),
              static_cast<unsigned long long>(res.dropped));
  if (seconds > 0) {
    std::printf(" %.0f pps", static_cast<double>(injected) / seconds);
  }
  std::printf("\n");
  const u64 hits = dp.microflow_hits();
  const u64 misses = dp.microflow_misses();
  if (hits + misses > 0) {
    std::printf("microflow cache: %.1f%% hit rate (%llu hits, %llu misses, "
                "%llu invalidations)\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(dp.microflow_invalidations()));
  }
  std::printf("  %-8s %10s %10s %10s %8s\n", "shard", "rx", "delivered",
              "dropped", "mf hit");
  for (std::size_t s = 0; s < dp.shard_count(); ++s) {
    const u64 sh = dp.shard_hits(s);
    const u64 sm = dp.shard_misses(s);
    const double rate =
        (sh + sm) > 0
            ? static_cast<double>(sh) / static_cast<double>(sh + sm)
            : 0;
    std::printf("  %-8zu %10llu %10zu %10llu %7.1f%%\n", s,
                static_cast<unsigned long long>(dp.shard_received(s)),
                s < res.per_shard.size() ? res.per_shard[s].outputs.size() : 0,
                static_cast<unsigned long long>(
                    s < res.per_shard.size() ? res.per_shard[s].dropped : 0),
                100.0 * rate);
  }
}

// Sums the per-reason drop taxonomy over every shard and prints the
// non-zero reasons — the line that shows a ddos scenario's attack share
// dying at classification time (classifier_miss) rather than in an NF.
void print_drop_reasons(ShardedDataplane& dp) {
  std::array<u64, telemetry::kDropReasonCount> totals{};
  for (std::size_t s = 0; s < dp.shard_count(); ++s) {
    const telemetry::ShardFlowSnapshot snap = dp.flow_snapshot(s);
    for (std::size_t r = 0; r < totals.size(); ++r) totals[r] += snap.drops[r];
  }
  std::printf("drop reasons:");
  bool any = false;
  for (std::size_t r = 0; r < totals.size(); ++r) {
    if (totals[r] == 0) continue;
    any = true;
    std::printf(" %s=%llu",
                telemetry::drop_reason_name(
                    static_cast<telemetry::DropReason>(r)),
                static_cast<unsigned long long>(totals[r]));
  }
  std::printf("%s\n", any ? "" : " none");
}

int live_dataplane(const ServiceGraph& graph, int argc, char** argv) {
  u64 shards = 0;
  u64 packets = 20'000;
  u64 flows = 64;
  u64 frame_size = 256;
  u64 serve_port = 0;
  u64 lat_every = 0;
  u64 synth_rules = 0;
  bool lat_every_set = false;
  std::string skew = "uniform";
  std::string mode = "auto";
  std::string scenario_name;
  for (int i = 3; i < argc; ++i) {
    const char* arg = argv[i];
    if (flag_value(arg, "--lat-every", &lat_every)) {
      lat_every_set = true;
    } else if (flag_value(arg, "--shards", &shards) ||
               flag_value(arg, "--packets", &packets) ||
               flag_value(arg, "--flows", &flows) ||
               flag_value(arg, "--size", &frame_size) ||
               flag_value(arg, "--serve", &serve_port) ||
               flag_value(arg, "--rules", &synth_rules) ||
               flag_string(arg, "--skew", &skew) ||
               flag_string(arg, "--scenario", &scenario_name) ||
               flag_string(arg, "--mode", &mode)) {
      // parsed into the matching variable
    } else {
      std::fprintf(stderr, "unknown live option '%s'\n", arg);
      return usage();
    }
  }
  // Serve mode defaults the stage-latency sampler on: 1-in-8 flows keeps
  // the panel populated at the default 64-flow workload while the off-path
  // cost stays one branch per packet per hop.
  if (serve_port != 0 && !lat_every_set) lat_every = 8;
  if (skew != "uniform" && skew != "zipf") {
    std::fprintf(stderr, "unknown skew '%s' (uniform|zipf)\n", skew.c_str());
    return usage();
  }
  ExecMode exec_mode = ExecMode::kAuto;
  if (!resolve_mode_flag(mode, &exec_mode)) return usage();
  if (packets == 0) packets = 1;
  if (flows == 0) flows = 1;

  std::optional<Scenario> scenario;
  if (!scenario_name.empty()) {
    scenario = make_scenario(scenario_name, packets, 42);
    if (!scenario) {
      std::fprintf(stderr, "unknown scenario '%s' (", scenario_name.c_str());
      const auto names = scenario_names();
      for (std::size_t i = 0; i < names.size(); ++i) {
        std::fprintf(stderr, "%s%s", i == 0 ? "" : "|", names[i].c_str());
      }
      std::fprintf(stderr, ")\n");
      return usage();
    }
  }
  std::vector<std::vector<u8>> frames;
  if (scenario) {
    frames.reserve(scenario->frames.size());
    for (const auto& f : scenario->frames) frames.push_back(f.bytes);
  } else {
    frames = make_live_frames(packets, flows, skew == "zipf", frame_size);
  }

  ShardedDataplaneOptions opts;
  opts.shards = static_cast<std::size_t>(shards);
  opts.pipeline.latency_sample_every = static_cast<std::size_t>(lat_every);
  opts.pipeline.exec_mode = exec_mode;
  ShardedDataplane dp({graph}, pass_all_factory, opts);

  if (synth_rules > 0) {
    dp.add_rules(
        synthetic_ct_rules(static_cast<std::size_t>(synth_rules), 42,
                           dp.graph_count()));
    std::printf("preloaded %llu synthetic CT rules (%zu tuple-space masks)\n",
                static_cast<unsigned long long>(synth_rules),
                dp.classifier_tuple_count());
  }
  if (scenario && scenario->has_attack_subnet) {
    // The scrubbing rule the scenario metadata asks for: everything from
    // the attack subnet dies at classification time, before any NF runs.
    CtRule drop;
    drop.src_ip = scenario->attack_subnet;
    drop.src_mask = scenario->attack_mask;
    drop.priority = 1'000'000;  // outranks every synthetic filler rule
    drop.graph = LiveClassificationTable::kDropGraph;
    dp.add_rule(drop);
  }
  if (scenario) {
    std::printf("scenario '%s': %s (%llu frames, ~%zu flows)\n",
                scenario->name.c_str(), scenario->summary.c_str(),
                static_cast<unsigned long long>(scenario->frames.size()),
                scenario->flows);
  }

  if (serve_port == 0) {
    const auto t0 = std::chrono::steady_clock::now();
    ShardedResult res;
    if (scenario) {
      // Paced replay: honor the preset's inter-frame gaps (sleeping only
      // for the macroscopic off-periods; sub-millisecond gaps are noise
      // next to scheduler latency).
      if (const Status st = dp.start(); !st.is_ok()) {
        std::fprintf(stderr, "error: %s\n", st.message().c_str());
        return 1;
      }
      for (const auto& f : scenario->frames) {
        if (f.gap_ns >= 1'000'000) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(f.gap_ns));
        }
        dp.feed({f.bytes.data(), f.bytes.size()});
      }
      res = dp.drain();
    } else {
      res = dp.run(frames);
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (!res.status.is_ok()) {
      std::fprintf(stderr, "error: %s\n", res.status.message().c_str());
      return 1;
    }
    print_live_summary(dp, res,
                       std::chrono::duration<double>(t1 - t0).count(),
                       frames.size());
    if (scenario || synth_rules > 0) print_drop_reasons(dp);
    return 0;
  }

  // --serve: stream waves of the same flow set forever with the
  // observability plane live. All registry series are created here, before
  // any server or sampler thread can scan the maps; afterwards only the
  // atomic cells are touched.
  telemetry::MetricsRegistry registry;
  telemetry::FlightRecorder recorder;
  telemetry::Watchdog watchdog(recorder);
  watchdog.set_registry(&registry);
  telemetry::HealthSampler sampler(registry);
  sampler.set_watchdog(&watchdog);
  dp.register_health(sampler, &watchdog);

  // The resolved execution mode as a labeled one-hot gauge: dashboards and
  // `nfp_cli top` read exec_mode_active{mode="..."} == 1 off /metrics.json.
  registry
      .gauge("exec_mode_active", {{"mode", exec_mode_name(dp.exec_mode())},
                                  {"plane", "sharded"}})
      .set(1);
  telemetry::Counter& injected =
      registry.counter("packets_injected_total", {{"plane", "sharded"}});
  telemetry::Counter& dropped_total =
      registry.counter("packets_dropped_total", {{"plane", "sharded"}});
  std::vector<telemetry::Counter*> delivered_counters;
  for (std::size_t s = 0; s < dp.shard_count(); ++s) {
    delivered_counters.push_back(&registry.counter(
        "packets_delivered_total",
        {{"plane", "sharded"}, {"shard", std::to_string(s)}}));
  }

  std::mutex mu;
  telemetry::TimeseriesCollector::Options ts_options;
  ts_options.period_ms = 500;
  telemetry::TimeseriesCollector collector(registry, ts_options);
  collector.publish_derived(&registry);
  collector.set_mutex(&mu);
  collector.add_probe("microflow_hit_rate", {}, [&dp] {
    const u64 hits = dp.microflow_hits();
    const u64 misses = dp.microflow_misses();
    return (hits + misses) > 0 ? static_cast<double>(hits) /
                                     static_cast<double>(hits + misses)
                               : 0.0;
  });

  // Constructed before start() so perf_event's inherit flag covers the
  // dataplane threads about to spawn.
  telemetry::ScalabilityProfiler profiler;
  dp.register_scalability(profiler);
  profiler.register_probes(collector);

  telemetry::LatencyObservatory::Options lat_options;
  lat_options.sample_every = opts.pipeline.latency_sample_every;
  telemetry::LatencyObservatory latency_obs(lat_options);
  dp.register_latency(latency_obs);
  latency_obs.register_probes(collector);

  telemetry::FlowObservatory flow_obs;
  dp.register_flows(flow_obs);
  flow_obs.register_probes(collector);

  if (const Status st = dp.start(); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.message().c_str());
    return 1;
  }
  profiler.reset_baseline();
  latency_obs.reset_baseline();
  flow_obs.reset_baseline();

  telemetry::StatsServer server;
  telemetry::EndpointSources sources;
  sources.registry = &registry;
  sources.recorder = &recorder;
  sources.watchdog = &watchdog;
  sources.timeseries = &collector;
  sources.scalability = &profiler;
  sources.latency = &latency_obs;
  sources.flows = &flow_obs;
  sources.mu = &mu;
  telemetry::register_standard_endpoints(server, sources);
  telemetry::StatsServer::Options server_options;
  server_options.port = static_cast<std::uint16_t>(serve_port);
  if (const Status started = server.start(server_options); !started) {
    std::fprintf(stderr, "error: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("live dataplane: %zu shards (%zu online CPUs, mode=%s) "
              "serving on http://127.0.0.1:%u — /metrics /timeseries.json "
              "/scalability.json /latency.json /flows.json /healthz — "
              "`nfp_cli top --port=%u` for the dashboard, Ctrl-C to stop\n",
              dp.shard_count(), online_cpu_count(),
              exec_mode_name(dp.exec_mode()),
              static_cast<unsigned>(server.port()),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  install_stop_handler();
  sampler.start();
  collector.start();

  std::vector<u64> last_delivered(dp.shard_count(), 0);
  u64 last_dropped = 0;
  u64 waves = 0;
  while (g_stop == 0) {
    for (const auto& frame : frames) {
      if (g_stop != 0) break;
      dp.feed({frame.data(), frame.size()});
      injected.inc();
    }
    for (std::size_t s = 0; s < dp.shard_count(); ++s) {
      const u64 now = dp.shard_delivered(s);
      // Guard the delta against a source reading below the last one (a
      // restarted/reset source): the raw u64 subtraction would wrap and
      // inc() the counter by ~2^64, which reads as a counter that jumped
      // *backwards* and poisons every later :rate sample.
      delivered_counters[s]->inc(now >= last_delivered[s]
                                     ? now - last_delivered[s]
                                     : now);
      last_delivered[s] = now;
    }
    u64 dropped_now = 0;
    for (std::size_t s = 0; s < dp.shard_count(); ++s) {
      dropped_now += dp.shard_dropped(s);
    }
    dropped_total.inc(dropped_now >= last_dropped ? dropped_now - last_dropped
                                                  : dropped_now);
    last_dropped = dropped_now;
    ++waves;
    interruptible_sleep_ms(200);
  }

  collector.stop();
  sampler.stop();
  server.stop();
  const ShardedResult res = dp.drain();
  std::printf("\nstopped after %llu waves; served %llu requests\n",
              static_cast<unsigned long long>(waves),
              static_cast<unsigned long long>(server.requests_served()));
  print_live_summary(dp, res, 0, injected.value.load());
  return res.status.is_ok() ? 0 : 1;
}

int profile_dataplane(const ServiceGraph& graph, int argc, char** argv) {
  std::string plane = "nfp";
  bool want_json = false;
  u64 trace_every = 1;
  u64 packets = 2'000;
  u64 rate_pps = 10'000;
  u64 frame_size = 128;
  u64 watch_ms = 0;
  u64 serve_port = 0;
  for (int i = 3; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      want_json = true;
    } else if (std::strcmp(arg, "--watch") == 0) {
      watch_ms = 10;
    } else if (flag_string(arg, "--plane", &plane) ||
               flag_value(arg, "--trace-every", &trace_every) ||
               flag_value(arg, "--packets", &packets) ||
               flag_value(arg, "--rate", &rate_pps) ||
               flag_value(arg, "--size", &frame_size) ||
               flag_value(arg, "--watch", &watch_ms) ||
               flag_value(arg, "--serve", &serve_port)) {
      // parsed into the matching variable
    } else {
      std::fprintf(stderr, "unknown profile option '%s'\n", arg);
      return usage();
    }
  }
  if (trace_every == 0) trace_every = 1;
  if (plane != "nfp" && plane != "onv" && plane != "rtc") {
    std::fprintf(stderr, "unknown plane '%s' (nfp|onv|rtc)\n", plane.c_str());
    return usage();
  }

  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.trace_every = trace_every;
  // Retain every span of every sampled packet: attribution needs complete
  // per-packet span sets, so size the ring past eviction.
  cfg.trace_capacity =
      static_cast<std::size_t>(packets / trace_every + 1) * 64;
  cfg.factory = pass_all_factory;

  // ONV/RTC run the graph's NFs as one sequential chain.
  std::vector<std::string> chain;
  for (const Segment& seg : graph.segments()) {
    for (const StageNf& nf : seg.nfs) chain.push_back(nf.name);
  }

  std::unique_ptr<NfpDataplane> nfp_dp;
  std::unique_ptr<baseline::OnvDataplane> onv_dp;
  std::unique_ptr<baseline::RtcDataplane> rtc_dp;
  telemetry::Tracer* tracer = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
  std::function<void(Packet*)> inject;
  PacketPool* pool = nullptr;
  if (plane == "nfp") {
    nfp_dp = std::make_unique<NfpDataplane>(sim, graph, std::move(cfg));
    tracer = nfp_dp->tracer();
    metrics = &nfp_dp->metrics();
    pool = &nfp_dp->pool();
    inject = [&dp = *nfp_dp](Packet* p) { dp.inject(p); };
  } else if (plane == "onv") {
    onv_dp = std::make_unique<baseline::OnvDataplane>(sim, chain,
                                                      std::move(cfg));
    tracer = onv_dp->tracer();
    metrics = &onv_dp->metrics();
    pool = &onv_dp->pool();
    inject = [&dp = *onv_dp](Packet* p) { dp.inject(p); };
  } else {
    rtc_dp = std::make_unique<baseline::RtcDataplane>(
        sim, chain, chain.size() + 2, std::move(cfg));
    tracer = rtc_dp->tracer();
    metrics = &rtc_dp->metrics();
    pool = &rtc_dp->pool();
    inject = [&dp = *rtc_dp](Packet* p) { dp.inject(p); };
  }

  if (serve_port != 0) {
    // Baselines have no flight recorder of their own; give the watchdog a
    // local ring so /recorder.json and post-mortems still work.
    telemetry::FlightRecorder local_recorder;
    ServeSources sources;
    sources.sim = &sim;
    sources.metrics = metrics;
    sources.tracer = tracer;
    sources.recorder =
        nfp_dp ? &nfp_dp->flight_recorder() : &local_recorder;
    sources.pool = pool;
    sources.inject = inject;
    sources.snapshot = [&] {
      if (nfp_dp) nfp_dp->snapshot_metrics();
      if (onv_dp) onv_dp->snapshot_metrics();
      if (rtc_dp) rtc_dp->snapshot_metrics();
    };
    return serve_loop(sources, serve_port, packets,
                      static_cast<double>(rate_pps),
                      static_cast<std::size_t>(frame_size));
  }

  TrafficConfig traffic;
  traffic.fixed_size = static_cast<std::size_t>(frame_size);
  traffic.rate_pps = static_cast<double>(rate_pps);
  traffic.packets = packets;
  traffic.metrics = metrics;
  TrafficGenerator gen(sim, *pool, traffic);
  gen.start([&](Packet* p) { inject(p); });

  // --watch: interim bottleneck lines on the simulated clock.
  std::function<void()> watch_tick;
  const SimTime watch_ns = static_cast<SimTime>(watch_ms) * 1'000'000;
  if (watch_ns > 0) {
    watch_tick = [&] {
      const telemetry::CriticalPathReport rep =
          telemetry::CriticalPathProfiler(*tracer).report();
      std::printf("[watch t=%.1fms] attributed=%llu merge-wait=%.1f%%",
                  static_cast<double>(sim.now()) / 1e6,
                  static_cast<unsigned long long>(rep.attributed),
                  100.0 * rep.stage_fraction(telemetry::Stage::kMergeWait));
      if (!rep.nfs.empty()) {
        std::printf(" top=%s (%.1f%% of critical paths)",
                    rep.nfs.front().component.c_str(),
                    100.0 * rep.bottleneck_share(rep.nfs.front()));
      }
      std::printf("\n");
      // Reschedule only while the run still has pending work, so the
      // simulator can drain and exit.
      if (sim.pending() > 0) sim.schedule_after(watch_ns, watch_tick);
    };
    sim.schedule_after(watch_ns, watch_tick);
  }

  sim.run();
  if (nfp_dp) nfp_dp->snapshot_metrics();
  if (onv_dp) onv_dp->snapshot_metrics();
  if (rtc_dp) rtc_dp->snapshot_metrics();

  const telemetry::CriticalPathReport report =
      telemetry::CriticalPathProfiler(*tracer).report();
  if (want_json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("plane=%s policy='%s' (%s)\n%s", plane.c_str(),
                graph.name().c_str(), graph.structure().c_str(),
                report.to_text().c_str());
  }

  // Anything in the flight recorder means the run hit an anomaly; surface
  // the post-mortem rather than letting it end silently "successful".
  if (nfp_dp && nfp_dp->flight_recorder().recorded() > 0) {
    std::printf("\n%s", nfp_dp->post_mortem("anomalies during profile run")
                            .c_str());
  }
  return 0;
}

// --- nfp_cli top: live dashboard over /timeseries.json + /healthz -------

// One /scalability.json shard row: where its accounted time went.
struct TopShardAttribution {
  std::string name;
  std::array<double, 6> share{};  // useful..classifier_miss (bucket order)
  double pps = 0;
  double projected_pps = 0;
};

// One /latency.json stage row (folded across shards).
struct TopLatencyStage {
  std::string name;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
  u64 count = 0;
};

// One /flows.json heavy-hitter row (cross-shard merged).
struct TopFlowRow {
  std::string flow;  // rendered 5-tuple
  double packets = 0;
  double bytes = 0;
  double share = 0;  // fraction of counted packets
};

struct TopView {
  double pps_in = 0;
  double pps_out = 0;
  double drops_per_s = 0;
  double merge_wait_share = 0;
  u64 ticks = 0;
  // Active execution mode from /metrics.json's exec_mode_active gauge;
  // empty when the server does not publish one.
  std::string exec_mode;
  std::map<std::string, double> util;       // component -> core_util
  std::map<std::string, double> p99_ns;     // nf -> nf_service_ns:p99
  std::map<std::string, double> p999_ns;    // nf -> nf_service_ns:p999
  std::map<std::string, double> bn_share;   // nf -> bottleneck share
  std::vector<double> out_history;          // delivered pps points
  // Filled from /scalability.json when the server exposes it (the sharded
  // live dataplane); empty otherwise — the panel is simply omitted.
  std::vector<TopShardAttribution> shard_attrib;
  std::string top_contention;
  // Filled from /latency.json when served; empty otherwise.
  std::vector<TopLatencyStage> latency_stages;
  u64 latency_sampled = 0;
  u64 latency_sample_every = 0;
  double latency_queue_depth = 0;
  double latency_ingest_depth = 0;
  // Filled from /flows.json when served; empty otherwise — the flows
  // panel is simply omitted.
  std::vector<TopFlowRow> top_flows;
  double flows_active = 0;
  double flow_packets = 0;
  std::map<std::string, double> flow_drops;  // reason -> total
};

std::string series_label(const json::Value& series, const char* key) {
  const json::Value* labels = series.find("labels");
  if (labels == nullptr) return {};
  return std::string(labels->string_or(key, ""));
}

TopView parse_top_view(const json::Value& doc) {
  TopView view;
  view.ticks = static_cast<u64>(doc.number_or("ticks", 0));
  const json::Value* series = doc.find("series");
  if (series == nullptr || !series->is_array()) return view;
  for (const json::Value& s : series->items()) {
    const std::string name(s.string_or("name", ""));
    const double last = s.number_or("last", 0);
    if (name == "packets_injected_total:rate") {
      view.pps_in += last;
    } else if (name == "packets_delivered_total:rate") {
      view.pps_out += last;
      const json::Value* points = s.find("points");
      if (points != nullptr && points->is_array()) {
        for (const json::Value& p : points->items()) {
          if (p.is_array() && p.size() == 2) {
            view.out_history.push_back(p.items()[1].as_number());
          }
        }
      }
    } else if (name == "packets_dropped_total:rate") {
      view.drops_per_s += last;
    } else if (name == "merge_wait_share") {
      view.merge_wait_share = last;
    } else if (name == "core_util") {
      view.util[series_label(s, "component")] = last;
    } else if (name == "nf_service_ns:p99") {
      view.p99_ns[series_label(s, "nf")] = last;
    } else if (name == "nf_service_ns:p999") {
      view.p999_ns[series_label(s, "nf")] = last;
    } else if (name == "bottleneck_share") {
      view.bn_share[series_label(s, "nf")] = last;
    }
  }
  return view;
}

// Folds /scalability.json (when present) into the view. Tolerates the
// endpoint being absent: servers without a sharded dataplane 404 and the
// attribution panel is skipped.
void parse_scalability_view(const json::Value& doc, TopView* view) {
  static const char* kBuckets[] = {"useful",    "starved",   "ring_wait",
                                   "pool_wait", "merge_wait",
                                   "classifier_miss"};
  view->top_contention =
      std::string(doc.string_or("top_contention_source", ""));
  const json::Value* shards = doc.find("shards");
  if (shards == nullptr || !shards->is_array()) return;
  for (const json::Value& s : shards->items()) {
    TopShardAttribution row;
    row.name = std::string(s.string_or("name", "?"));
    row.pps = s.number_or("pps", 0);
    row.projected_pps = s.number_or("projected_pps", 0);
    if (const json::Value* shares = s.find("shares"); shares != nullptr) {
      for (std::size_t b = 0; b < 6; ++b) {
        row.share[b] = shares->number_or(kBuckets[b], 0);
      }
    }
    view->shard_attrib.push_back(std::move(row));
  }
}

// Folds /latency.json (when present) into the view; absent on servers
// without a latency observatory (or with sampling off), which 404 — the
// latency panel is then skipped.
void parse_latency_view(const json::Value& doc, TopView* view) {
  static const char* kStages[] = {"ingest", "queue",  "service",
                                  "merge_wait", "egress", "total"};
  view->latency_sampled = static_cast<u64>(doc.number_or("sampled", 0));
  view->latency_sample_every =
      static_cast<u64>(doc.number_or("sample_every", 0));
  const json::Value* total = doc.find("total");
  if (total == nullptr) return;
  view->latency_queue_depth = total->number_or("queue_depth", 0);
  view->latency_ingest_depth = total->number_or("ingest_queue_depth", 0);
  const json::Value* stages = total->find("stages");
  if (stages == nullptr) return;
  for (const char* name : kStages) {
    const json::Value* s = stages->find(name);
    if (s == nullptr) continue;
    TopLatencyStage row;
    row.name = name;
    row.count = static_cast<u64>(s->number_or("count", 0));
    row.p50_us = s->number_or("p50_us", 0);
    row.p99_us = s->number_or("p99_us", 0);
    row.p999_us = s->number_or("p999_us", 0);
    row.max_us = s->number_or("max_us", 0);
    view->latency_stages.push_back(std::move(row));
  }
}

// Folds /flows.json (when present) into the view; absent on servers
// without a flow observatory, which 404 — the flows panel is skipped.
void parse_flows_view(const json::Value& doc, TopView* view) {
  view->flows_active = doc.number_or("flows_active", 0);
  view->flow_packets = doc.number_or("packets", 0);
  const json::Value* top = doc.find("top");
  if (top != nullptr && top->is_array()) {
    for (const json::Value& f : top->items()) {
      TopFlowRow row;
      row.flow = std::string(f.string_or("flow", "?"));
      row.packets = f.number_or("packets", 0);
      row.bytes = f.number_or("bytes", 0);
      row.share = f.number_or("share", 0);
      view->top_flows.push_back(std::move(row));
    }
  }
  static const char* kReasons[] = {"ring_full",       "pool_exhausted",
                                   "nf_verdict",      "classifier_miss",
                                   "merge_overflow",  "shutdown_drain"};
  if (const json::Value* drops = doc.find("drops"); drops != nullptr) {
    for (const char* reason : kReasons) {
      const double n = drops->number_or(reason, 0);
      if (n > 0) view->flow_drops[reason] = n;
    }
  }
}

std::string util_bar(double fraction, int width = 20) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string bar = "[";
  for (int i = 0; i < width; ++i) bar += i < filled ? '#' : '-';
  return bar + "]";
}

std::string sparkline(const std::vector<double>& points, std::size_t width) {
  static const char kLevels[] = " .:-=+*#%@";
  if (points.empty()) return {};
  const std::size_t start =
      points.size() > width ? points.size() - width : 0;
  double hi = 0;
  for (std::size_t i = start; i < points.size(); ++i) {
    hi = std::max(hi, points[i]);
  }
  std::string out;
  for (std::size_t i = start; i < points.size(); ++i) {
    const double frac = hi > 0 ? points[i] / hi : 0;
    const int level = static_cast<int>(frac * 9 + 0.5);
    out += kLevels[level < 0 ? 0 : level > 9 ? 9 : level];
  }
  return out;
}

void render_top(const TopView& view, const std::string& health_body,
                int health_status, u64 port, bool clear_screen) {
  if (clear_screen) std::printf("\x1b[H\x1b[2J");
  std::printf("nfp top — 127.0.0.1:%llu   tick %llu   ",
              static_cast<unsigned long long>(port),
              static_cast<unsigned long long>(view.ticks));
  if (!view.exec_mode.empty()) {
    std::printf("mode %s   ", view.exec_mode.c_str());
  }
  if (health_status == 200) {
    std::printf("healthy\n");
  } else {
    std::printf("UNHEALTHY (HTTP %d)\n", health_status);
    const auto health = json::Value::parse(health_body);
    if (health) {
      const json::Value* firing = health.value().find("firing");
      if (firing != nullptr && firing->is_array()) {
        for (const json::Value& f : firing->items()) {
          if (f.is_string()) std::printf("  !! %s\n", f.as_string().c_str());
        }
      }
    }
  }
  std::printf("  in %9.1f pps   out %9.1f pps   drops %7.1f/s   "
              "merge-wait %4.1f%%\n",
              view.pps_in, view.pps_out, view.drops_per_s,
              100.0 * view.merge_wait_share);
  if (!view.out_history.empty()) {
    std::printf("  out pps %s\n", sparkline(view.out_history, 48).c_str());
  }

  // Bottleneck NF: the largest critical-path share.
  std::string bottleneck;
  double bottleneck_share = 0;
  for (const auto& [nf, share] : view.bn_share) {
    if (share > bottleneck_share) {
      bottleneck_share = share;
      bottleneck = nf;
    }
  }
  if (!bottleneck.empty()) {
    std::printf("  bottleneck %s (%.1f%% of critical paths)\n",
                bottleneck.c_str(), 100.0 * bottleneck_share);
  }

  std::printf("\n  %-22s %-22s %6s %12s %12s %10s\n", "component",
              "utilization", "", "p99 service", "p99.9 svc", "bn share");
  for (const auto& [component, util] : view.util) {
    std::printf("  %-22s %s %5.1f%%", component.c_str(),
                util_bar(util).c_str(), 100.0 * util);
    const auto p99 = view.p99_ns.find(component);
    if (p99 != view.p99_ns.end()) {
      std::printf(" %9.1f us", p99->second / 1e3);
    } else {
      std::printf(" %12s", "—");
    }
    const auto p999 = view.p999_ns.find(component);
    if (p999 != view.p999_ns.end()) {
      std::printf(" %9.1f us", p999->second / 1e3);
    } else {
      std::printf(" %12s", "—");
    }
    const auto share = view.bn_share.find(component);
    if (share != view.bn_share.end()) {
      std::printf(" %8.1f%%", 100.0 * share->second);
    }
    std::printf("\n");
  }

  // Stage-resolved tail latency (only when /latency.json is served with
  // sampling enabled and at least one sampled packet has completed).
  if (!view.latency_stages.empty() && view.latency_sampled > 0) {
    std::printf("\n  latency (sampled 1/%llu flows, %llu samples)   "
                "queue depth %.0f   ingest depth %.0f\n",
                static_cast<unsigned long long>(
                    view.latency_sample_every ? view.latency_sample_every : 1),
                static_cast<unsigned long long>(view.latency_sampled),
                view.latency_queue_depth, view.latency_ingest_depth);
    std::printf("  %-12s %9s %9s %9s %9s\n", "stage", "p50us", "p99us",
                "p99.9us", "maxus");
    for (const TopLatencyStage& row : view.latency_stages) {
      if (row.count == 0) continue;
      std::printf("  %-12s %9.1f %9.1f %9.1f %9.1f\n", row.name.c_str(),
                  row.p50_us, row.p99_us, row.p999_us, row.max_us);
    }
  }

  // Heavy hitters + drop taxonomy (only when /flows.json is served).
  if (!view.top_flows.empty()) {
    std::printf("\n  top flows (%.0f active)\n", view.flows_active);
    std::printf("  %-4s %-34s %10s %12s %7s\n", "#", "flow", "packets",
                "bytes", "share");
    std::size_t rank = 1;
    for (const TopFlowRow& row : view.top_flows) {
      if (rank > 5) break;  // the dashboard shows the head; flows.json has K
      std::printf("  %-4zu %-34s %10.0f %12.0f %6.1f%%\n", rank,
                  row.flow.c_str(), row.packets, row.bytes,
                  100.0 * row.share);
      ++rank;
    }
  }
  if (!view.flow_drops.empty()) {
    std::printf("  drops by reason:");
    for (const auto& [reason, n] : view.flow_drops) {
      std::printf(" %s=%.0f", reason.c_str(), n);
    }
    std::printf("\n");
  }

  // Per-shard cycle attribution (only when /scalability.json is served).
  if (!view.shard_attrib.empty()) {
    std::printf("\n  %-10s %10s %10s %7s %7s %7s %7s %7s %7s\n", "shard",
                "pps", "proj pps", "useful", "starve", "ring", "pool",
                "merge", "miss");
    for (const TopShardAttribution& row : view.shard_attrib) {
      std::printf("  %-10s %10.0f %10.0f", row.name.c_str(), row.pps,
                  row.projected_pps);
      for (std::size_t b = 0; b < 6; ++b) {
        std::printf(" %6.1f%%", 100.0 * row.share[b]);
      }
      std::printf("\n");
    }
    if (!view.top_contention.empty()) {
      std::printf("  top contention source: %s\n",
                  view.top_contention.c_str());
    }
  }
  std::fflush(stdout);
}

int top_command(int argc, char** argv) {
  u64 port = 9100;
  u64 interval_ms = 1000;
  u64 iterations = 0;  // 0 = until Ctrl-C
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (flag_value(arg, "--port", &port) ||
        flag_value(arg, "--interval", &interval_ms) ||
        flag_value(arg, "--iterations", &iterations)) {
      // parsed into the matching variable
    } else {
      std::fprintf(stderr, "unknown top option '%s'\n", arg);
      return usage();
    }
  }

  install_stop_handler();
  const bool clear_screen = iterations != 1;
  for (u64 i = 0; (iterations == 0 || i < iterations) && g_stop == 0; ++i) {
    auto ts = telemetry::http_get(static_cast<std::uint16_t>(port),
                                  "/timeseries.json");
    if (!ts) {
      std::fprintf(stderr,
                   "error: %s\n(is `nfp_cli run <policy> --serve=%llu` "
                   "running?)\n",
                   ts.error().c_str(), static_cast<unsigned long long>(port));
      return 1;
    }
    auto health =
        telemetry::http_get(static_cast<std::uint16_t>(port), "/healthz");
    const auto doc = json::Value::parse(ts.value().body);
    if (!doc) {
      std::fprintf(stderr, "error: bad /timeseries.json: %s\n",
                   doc.error().c_str());
      return 1;
    }
    TopView view = parse_top_view(doc.value());
    // Optional: the active execution mode, published as the one-hot gauge
    // exec_mode_active{mode="..."} == 1 on /metrics.json.
    if (auto met = telemetry::http_get(static_cast<std::uint16_t>(port),
                                       "/metrics.json");
        met && met.value().status == 200) {
      if (const auto mdoc = json::Value::parse(met.value().body); mdoc) {
        if (const json::Value* gauges = mdoc.value().find("gauges");
            gauges != nullptr && gauges->is_array()) {
          for (const json::Value& g : gauges->items()) {
            if (g.string_or("name", "") == "exec_mode_active" &&
                g.number_or("value", 0) == 1.0) {
              if (const json::Value* labels = g.find("labels");
                  labels != nullptr) {
                view.exec_mode = std::string(labels->string_or("mode", ""));
              }
            }
          }
        }
      }
    }
    // Optional: per-shard attribution. Older / non-sharded servers 404.
    if (auto scal = telemetry::http_get(static_cast<std::uint16_t>(port),
                                        "/scalability.json");
        scal && scal.value().status == 200) {
      if (const auto sdoc = json::Value::parse(scal.value().body); sdoc) {
        parse_scalability_view(sdoc.value(), &view);
      }
    }
    // Optional: stage latency. Servers without an observatory 404.
    if (auto lat = telemetry::http_get(static_cast<std::uint16_t>(port),
                                       "/latency.json");
        lat && lat.value().status == 200) {
      if (const auto ldoc = json::Value::parse(lat.value().body); ldoc) {
        parse_latency_view(ldoc.value(), &view);
      }
    }
    // Optional: heavy hitters + drop taxonomy. Absent servers 404.
    if (auto flows = telemetry::http_get(static_cast<std::uint16_t>(port),
                                         "/flows.json");
        flows && flows.value().status == 200) {
      if (const auto fdoc = json::Value::parse(flows.value().body); fdoc) {
        parse_flows_view(fdoc.value(), &view);
      }
    }
    render_top(view, health ? health.value().body : std::string(),
               health ? health.value().status : 0, port, clear_screen);
    if (iterations != 0 && i + 1 == iterations) break;
    interruptible_sleep_ms(interval_ms);
  }
  return 0;
}

Result<ServiceGraph> load_and_compile(const std::string& path,
                                      CompileReport* report) {
  std::ifstream in(path);
  if (!in) {
    return Result<ServiceGraph>::error("cannot read '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto policy = parse_policy(buffer.str());
  if (!policy) return Result<ServiceGraph>::error(policy.error());
  const ActionTable table = ActionTable::with_builtin_nfs();
  return compile_policy(policy.value(), table, {}, report);
}

// --- nfp_cli scalability: shard-sweep with lost-pps attribution ---------

// The default workload when no policy file is given: 4 parallel monitors
// with per-branch copies and a 4-arrival merge — the shape whose 2-shard
// scaling loss motivated the profiler (BENCH_shard_scaling.json par4).
ServiceGraph make_scalability_par4() {
  ServiceGraph g("par4");
  Segment seg;
  seg.mid = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    seg.nfs.push_back(StageNf{"monitor", static_cast<int>(i),
                              static_cast<u8>(i + 1), static_cast<int>(i),
                              false});
  }
  seg.num_versions = 4;
  seg.merge.total_count = 4;
  g.segments().push_back(std::move(seg));
  return g;
}

std::vector<std::size_t> parse_shard_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const u64 v = std::strtoull(item.c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

int scalability_command(int argc, char** argv) {
  std::vector<std::size_t> shard_counts = {1, 2, 4};
  u64 packets = 20'000;
  u64 flows = 64;
  u64 frame_size = 256;
  std::string skew = "uniform";
  std::string mode = "auto";
  bool want_json = false;

  // Optional policy file directly after the command; flags otherwise.
  ServiceGraph graph = make_scalability_par4();
  int first_flag = 2;
  if (argc > 2 && argv[2][0] != '-') {
    CompileReport report;
    auto compiled = load_and_compile(argv[2], &report);
    if (!compiled) {
      std::fprintf(stderr, "error: %s\n", compiled.error().c_str());
      return 1;
    }
    graph = compiled.value();
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const char* arg = argv[i];
    std::string shard_list;
    if (std::strcmp(arg, "--json") == 0) {
      want_json = true;
    } else if (flag_string(arg, "--shards", &shard_list)) {
      shard_counts = parse_shard_list(shard_list);
      if (shard_counts.empty()) {
        std::fprintf(stderr, "bad --shards list '%s'\n", shard_list.c_str());
        return usage();
      }
    } else if (flag_value(arg, "--packets", &packets) ||
               flag_value(arg, "--flows", &flows) ||
               flag_value(arg, "--size", &frame_size) ||
               flag_string(arg, "--skew", &skew) ||
               flag_string(arg, "--mode", &mode)) {
      // parsed into the matching variable
    } else {
      std::fprintf(stderr, "unknown scalability option '%s'\n", arg);
      return usage();
    }
  }
  if (skew != "uniform" && skew != "zipf") {
    std::fprintf(stderr, "unknown skew '%s' (uniform|zipf)\n", skew.c_str());
    return usage();
  }
  ExecMode exec_mode = ExecMode::kAuto;
  if (!resolve_mode_flag(mode, &exec_mode)) return usage();
  if (packets == 0) packets = 1;
  if (flows == 0) flows = 1;

  const auto frames =
      make_live_frames(packets, flows, skew == "zipf", frame_size);

  if (!want_json) {
    std::printf("scalability sweep: policy='%s' (%s), %llu packets, "
                "%llu flows, %s skew, %zu online CPUs\n",
                graph.name().c_str(), graph.structure().c_str(),
                static_cast<unsigned long long>(packets),
                static_cast<unsigned long long>(flows), skew.c_str(),
                online_cpu_count());
  }

  double base_pps = 0;
  for (const std::size_t shards : shard_counts) {
    ShardedDataplaneOptions opts;
    opts.shards = shards;
    opts.pipeline.exec_mode = exec_mode;
    ShardedDataplane dp({graph}, pass_all_factory, opts);
    // The concrete mode (auto resolves per graph at construction).
    const char* active_mode = exec_mode_name(dp.exec_mode());

    // Profiler before start() so perf_event inheritance covers the
    // dataplane threads; baseline after start() to exclude spawn cost.
    telemetry::ScalabilityProfiler profiler;
    dp.register_scalability(profiler);
    if (const Status st = dp.start(); !st.is_ok()) {
      std::fprintf(stderr, "error: %s\n", st.message().c_str());
      return 1;
    }
    profiler.reset_baseline();

    for (const auto& frame : frames) {
      dp.feed({frame.data(), frame.size()});
    }
    // Report before drain() joins the workers: the wall clock then matches
    // the window the threads were actually accounting.
    while (true) {
      u64 done = 0;
      for (std::size_t s = 0; s < dp.shard_count(); ++s) {
        done += dp.shard_delivered(s) + dp.shard_dropped(s);
      }
      if (done >= frames.size()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const telemetry::ScalabilityReport report = profiler.report();
    const ShardedResult res = dp.drain();
    if (!res.status.is_ok()) {
      std::fprintf(stderr, "error: %s\n", res.status.message().c_str());
      return 1;
    }

    if (shards == shard_counts.front()) base_pps = report.total_pps;
    const double scaling =
        base_pps > 0 ? report.total_pps / base_pps : 0;
    if (want_json) {
      std::printf("{\"command\":\"scalability\",\"policy\":\"%s\","
                  "\"mode\":\"%s\",\"shards\":%zu,\"packets\":%llu,"
                  "\"flows\":%llu,\"skew\":\"%s\",\"online_cpus\":%zu,"
                  "\"scaling_vs_first\":%.3f,\"report\":%s}\n",
                  graph.name().c_str(), active_mode, shards,
                  static_cast<unsigned long long>(packets),
                  static_cast<unsigned long long>(flows), skew.c_str(),
                  online_cpu_count(), scaling, report.to_json().c_str());
    } else {
      std::printf("\n=== shards=%zu mode=%s  (%.0f pps aggregate, %.2fx vs "
                  "shards=%zu) ===\n%s",
                  shards, active_mode, report.total_pps, scaling,
                  shard_counts.front(), report.to_text().c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

// --- nfp_cli latency: the paper's core experiment, live -----------------

// Flattens the graph's NFs into one sequential chain — the ONV/RTC view
// of the same policy — so the comparison isolates graph shape.
ServiceGraph flatten_sequential(const ServiceGraph& graph) {
  std::vector<std::string> chain;
  for (const Segment& seg : graph.segments()) {
    for (const StageNf& nf : seg.nfs) chain.push_back(nf.name);
  }
  return ServiceGraph::sequential(graph.name() + "-chain", chain);
}

// One live run of `graph` with stage-latency sampling on; fills `out`
// with the observatory's report over exactly this run's packets.
int run_latency_plane(const ServiceGraph& graph,
                      const std::vector<std::vector<u8>>& frames,
                      std::size_t shards, std::size_t sample_every,
                      ExecMode exec_mode, telemetry::LatencyReport* out) {
  ShardedDataplaneOptions opts;
  opts.shards = shards;
  opts.pipeline.latency_sample_every = sample_every;
  opts.pipeline.exec_mode = exec_mode;
  ShardedDataplane dp({graph}, pass_all_factory, opts);

  telemetry::LatencyObservatory::Options lat_options;
  lat_options.sample_every = sample_every;
  telemetry::LatencyObservatory obs(lat_options);
  dp.register_latency(obs);

  if (const Status st = dp.start(); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.message().c_str());
    return 1;
  }
  obs.reset_baseline();
  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  // Report after the last packet resolves but before drain() joins the
  // workers, so the wall window matches the accounted one.
  while (true) {
    u64 done = 0;
    for (std::size_t s = 0; s < dp.shard_count(); ++s) {
      done += dp.shard_delivered(s) + dp.shard_dropped(s);
    }
    if (done >= frames.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  *out = obs.report();
  const ShardedResult res = dp.drain();
  if (!res.status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", res.status.message().c_str());
    return 1;
  }
  return 0;
}

// `nfp_cli flows`: run a zipf elephant/mice workload through the sharded
// dataplane and print the flow observatory's live view — cross-shard
// merged top-K heavy hitters, flow churn, per-reason drop attribution and
// per-graph accounting. --pool=N switches the director to NIC-like tail
// drops with an N-slot ingest pool, so the drop-reason table fills with
// ring_full/pool_exhausted attribution under overload.
int flows_command(int argc, char** argv) {
  u64 shards = 2;
  u64 packets = 50'000;
  u64 flows = 256;
  u64 frame_size = 256;
  u64 top_k = 10;
  u64 pool = 0;
  bool want_json = false;
  std::string skew = "zipf";

  // Optional policy file directly after the command; flags otherwise.
  ServiceGraph graph = make_scalability_par4();
  int first_flag = 2;
  if (argc > 2 && argv[2][0] != '-') {
    CompileReport report;
    auto compiled = load_and_compile(argv[2], &report);
    if (!compiled) {
      std::fprintf(stderr, "error: %s\n", compiled.error().c_str());
      return 1;
    }
    graph = compiled.value();
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      want_json = true;
    } else if (flag_value(arg, "--shards", &shards) ||
               flag_value(arg, "--packets", &packets) ||
               flag_value(arg, "--flows", &flows) ||
               flag_value(arg, "--size", &frame_size) ||
               flag_value(arg, "--top", &top_k) ||
               flag_value(arg, "--pool", &pool) ||
               flag_string(arg, "--skew", &skew)) {
      // parsed into the matching variable
    } else {
      std::fprintf(stderr, "unknown flows option '%s'\n", arg);
      return usage();
    }
  }
  if (skew != "uniform" && skew != "zipf") {
    std::fprintf(stderr, "unknown skew '%s' (uniform|zipf)\n", skew.c_str());
    return usage();
  }
  if (packets == 0) packets = 1;
  if (flows == 0) flows = 1;
  if (top_k == 0) top_k = 1;

  const auto frames =
      make_live_frames(packets, flows, skew == "zipf", frame_size);

  ShardedDataplaneOptions opts;
  opts.shards = static_cast<std::size_t>(shards);
  if (pool != 0) {
    // Overload demo: a tiny RX path with tail drops instead of blocking.
    // The constructor keeps pool >= ring + burst, so the ring is the
    // binding constraint and the drop table fills with ring_full.
    opts.ingest_pool_size = static_cast<std::size_t>(pool);
    opts.ingest_ring_depth = static_cast<std::size_t>(pool);
    opts.drop_on_ingest_backpressure = true;
  }
  ShardedDataplane dp({graph}, pass_all_factory, opts);

  telemetry::FlowObservatoryOptions fopts;
  fopts.top_k = static_cast<std::size_t>(top_k);
  telemetry::FlowObservatory flow_obs(fopts);
  dp.register_flows(flow_obs);

  if (const Status st = dp.start(); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.message().c_str());
    return 1;
  }
  flow_obs.reset_baseline();

  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  // Wait for the shards to finish the injected traffic (delivered or
  // dropped-with-reason) before reporting, so the table is complete.
  while (true) {
    u64 done = 0;
    for (std::size_t s = 0; s < dp.shard_count(); ++s) {
      done += dp.shard_delivered(s) + dp.shard_dropped(s);
    }
    if (done >= frames.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const telemetry::FlowReport report = flow_obs.report();
  const ShardedResult res = dp.drain();
  if (!res.status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", res.status.message().c_str());
    return 1;
  }

  if (want_json) {
    std::printf("%s\n", report.to_json().c_str());
    return 0;
  }
  std::printf("flows: policy='%s' (%s), %llu packets, %llu flows, %s skew, "
              "%zu shards%s\n",
              graph.name().c_str(), graph.structure().c_str(),
              static_cast<unsigned long long>(packets),
              static_cast<unsigned long long>(flows), skew.c_str(),
              dp.shard_count(),
              pool != 0 ? " (tail-drop ingest)" : "");
  std::printf("%s", report.to_text().c_str());
  return 0;
}

int latency_command(int argc, char** argv) {
  u64 shards = 2;
  u64 packets = 20'000;
  u64 flows = 64;
  u64 frame_size = 256;
  u64 sample_every = 8;
  std::string skew = "uniform";
  std::string mode = "auto";
  bool want_json = false;

  // Optional policy file directly after the command; the default workload
  // is the 4-wide parallel monitor stage (vs. its 4-hop chain).
  ServiceGraph graph = make_scalability_par4();
  int first_flag = 2;
  if (argc > 2 && argv[2][0] != '-') {
    CompileReport report;
    auto compiled = load_and_compile(argv[2], &report);
    if (!compiled) {
      std::fprintf(stderr, "error: %s\n", compiled.error().c_str());
      return 1;
    }
    graph = compiled.value();
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      want_json = true;
    } else if (flag_value(arg, "--shards", &shards) ||
               flag_value(arg, "--packets", &packets) ||
               flag_value(arg, "--flows", &flows) ||
               flag_value(arg, "--size", &frame_size) ||
               flag_value(arg, "--sample-every", &sample_every) ||
               flag_string(arg, "--skew", &skew) ||
               flag_string(arg, "--mode", &mode)) {
      // parsed into the matching variable
    } else {
      std::fprintf(stderr, "unknown latency option '%s'\n", arg);
      return usage();
    }
  }
  if (skew != "uniform" && skew != "zipf") {
    std::fprintf(stderr, "unknown skew '%s' (uniform|zipf)\n", skew.c_str());
    return usage();
  }
  ExecMode exec_mode = ExecMode::kAuto;
  if (!resolve_mode_flag(mode, &exec_mode)) return usage();
  if (packets == 0) packets = 1;
  if (flows == 0) flows = 1;
  if (shards == 0) shards = 1;
  if (sample_every == 0) sample_every = 1;
  if (graph.is_sequential()) {
    std::fprintf(stderr,
                 "warning: policy '%s' has no parallel stage; both runs "
                 "are sequential chains\n",
                 graph.name().c_str());
  }

  const auto frames =
      make_live_frames(packets, flows, skew == "zipf", frame_size);
  const ServiceGraph chain = flatten_sequential(graph);

  if (!want_json) {
    std::printf("latency experiment: '%s' (%s) vs sequential chain (%s), "
                "%llu packets/plane, %llu flows, %s skew, %zu shards, "
                "mode=%s, sampling 1/%llu flows\n",
                graph.name().c_str(), graph.structure().c_str(),
                chain.structure().c_str(),
                static_cast<unsigned long long>(packets),
                static_cast<unsigned long long>(flows), skew.c_str(),
                static_cast<std::size_t>(shards), mode.c_str(),
                static_cast<unsigned long long>(sample_every));
  }

  telemetry::LatencyReport seq_rep;
  telemetry::LatencyReport par_rep;
  if (const int rc = run_latency_plane(
          chain, frames, static_cast<std::size_t>(shards),
          static_cast<std::size_t>(sample_every), exec_mode, &seq_rep);
      rc != 0) {
    return rc;
  }
  if (const int rc = run_latency_plane(
          graph, frames, static_cast<std::size_t>(shards),
          static_cast<std::size_t>(sample_every), exec_mode, &par_rep);
      rc != 0) {
    return rc;
  }

  using telemetry::LatencyStage;
  const telemetry::HdrSnapshot& st = seq_rep.stage(LatencyStage::kTotal);
  const telemetry::HdrSnapshot& pt = par_rep.stage(LatencyStage::kTotal);
  const auto reduction = [](double seq, double par) {
    return seq > 0 ? 100.0 * (seq - par) / seq : 0.0;
  };
  const double red_p50 = reduction(static_cast<double>(st.quantile(0.50)),
                                   static_cast<double>(pt.quantile(0.50)));
  const double red_p99 = reduction(static_cast<double>(st.quantile(0.99)),
                                   static_cast<double>(pt.quantile(0.99)));
  const double red_p999 = reduction(static_cast<double>(st.quantile(0.999)),
                                    static_cast<double>(pt.quantile(0.999)));
  const double red_mean = reduction(st.mean(), pt.mean());

  if (want_json) {
    std::printf("{\"command\":\"latency\",\"policy\":\"%s\","
                "\"structure\":\"%s\",\"chain_structure\":\"%s\","
                "\"mode\":\"%s\","
                "\"shards\":%zu,\"packets\":%llu,\"flows\":%llu,"
                "\"skew\":\"%s\",\"sample_every\":%llu,"
                "\"sequential\":%s,\"parallel\":%s,"
                "\"reduction_pct\":{\"p50\":%.1f,\"p99\":%.1f,"
                "\"p999\":%.1f,\"mean\":%.1f}}\n",
                graph.name().c_str(), graph.structure().c_str(),
                chain.structure().c_str(), mode.c_str(),
                static_cast<std::size_t>(shards),
                static_cast<unsigned long long>(packets),
                static_cast<unsigned long long>(flows), skew.c_str(),
                static_cast<unsigned long long>(sample_every),
                seq_rep.to_json().c_str(), par_rep.to_json().c_str(),
                red_p50, red_p99, red_p999, red_mean);
    return 0;
  }

  std::printf("\n=== sequential chain (%s) — %llu sampled ===\n%s",
              chain.structure().c_str(),
              static_cast<unsigned long long>(seq_rep.sampled()),
              seq_rep.to_text().c_str());
  std::printf("\n=== NFP parallel (%s) — %llu sampled ===\n%s",
              graph.structure().c_str(),
              static_cast<unsigned long long>(par_rep.sampled()),
              par_rep.to_text().c_str());
  std::printf("\nlatency reduction (NFP vs sequential, positive = faster): "
              "p50 %.1f%%  p99 %.1f%%  p99.9 %.1f%%  mean %.1f%%\n",
              red_p50, red_p99, red_p999, red_mean);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "top") {
    return top_command(argc, argv);
  }

  if (command == "scalability") {
    return scalability_command(argc, argv);
  }

  if (command == "latency") {
    return latency_command(argc, argv);
  }

  if (command == "flows") {
    return flows_command(argc, argv);
  }

  if (command == "stats") {
    const ActionTable table = ActionTable::with_builtin_nfs();
    const PairStats stats = compute_pair_stats(table);
    std::printf("%s", pair_stats_table(stats).c_str());
    return 0;
  }

  if (argc < 3) return usage();
  CompileReport report;
  auto graph = load_and_compile(argv[2], &report);
  if (!graph) {
    std::fprintf(stderr, "error: %s\n", graph.error().c_str());
    return 1;
  }
  for (const auto& warning : report.warnings) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }

  if (command == "compile") {
    std::printf("%s", graph.value().to_string().c_str());
    for (const auto& d : report.decisions) {
      std::printf("  %s | %s -> %s\n", d.nf1.c_str(), d.nf2.c_str(),
                  std::string(pair_parallelism_name(d.verdict)).c_str());
    }
    return 0;
  }
  if (command == "tables") {
    std::printf("%s", tables_to_string(generate_tables(graph.value())).c_str());
    return 0;
  }
  if (command == "dot") {
    std::printf("%s", graph.value().to_dot().c_str());
    return 0;
  }
  if (command == "run") {
    return run_dataplane(graph.value(), argc, argv);
  }
  if (command == "live") {
    return live_dataplane(graph.value(), argc, argv);
  }
  if (command == "profile") {
    return profile_dataplane(graph.value(), argc, argv);
  }
  if (command == "plan") {
    cluster::PartitionOptions options;
    if (argc > 3) {
      options.cores_per_server =
          static_cast<std::size_t>(std::stoul(argv[3]));
    }
    const auto plan = cluster::partition_graph(graph.value(), options);
    if (!plan) {
      std::fprintf(stderr, "error: %s\n", plan.error().c_str());
      return 1;
    }
    std::printf("%s", cluster::plan_to_string(graph.value(), plan.value()).c_str());
    return 0;
  }
  return usage();
}

// Policy playground: feed NFP policies on stdin (or run the built-in demo
// set) and watch the orchestrator's analysis — pair verdicts, warnings,
// conflicts, and the compiled service graph.
//
//   ./build/examples/policy_playground              # demo policies
//   ./build/examples/policy_playground -            # read policy from stdin
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "orch/compiler.hpp"
#include "orch/pair_stats.hpp"
#include "policy/conflict.hpp"
#include "policy/parser.hpp"

namespace {

using namespace nfp;

void analyze(const std::string& text) {
  std::printf("----------------------------------------------------------\n");
  std::printf("input:\n%s\n", text.c_str());

  const auto parsed = parse_policy(text);
  if (!parsed) {
    std::printf("parse error: %s\n", parsed.error().c_str());
    return;
  }
  const Policy& policy = parsed.value();

  const auto conflicts = detect_conflicts(policy);
  for (const auto& c : conflicts) {
    std::printf("CONFLICT: %s\n", c.description.c_str());
  }

  const ActionTable table = ActionTable::with_builtin_nfs();
  CompileReport report;
  auto graph = compile_policy(policy, table, {}, &report);
  if (!graph) {
    std::printf("compile error: %s\n", graph.error().c_str());
    return;
  }
  for (const auto& w : report.warnings) {
    std::printf("warning: %s\n", w.c_str());
  }
  for (const auto& d : report.decisions) {
    std::printf("  %-10s before %-10s -> %s", d.nf1.c_str(), d.nf2.c_str(),
                std::string(pair_parallelism_name(d.verdict)).c_str());
    if (d.conflict_count > 0) {
      std::printf(" (%zu conflicting action pairs)", d.conflict_count);
    }
    if (d.from_priority_rule) std::printf(" [priority rule]");
    std::printf("\n");
  }
  std::printf("\n%s\n", graph.value().to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    analyze(buffer.str());
    return 0;
  }

  // Demo set: the paper's examples plus a few interesting corners.
  analyze(
      "policy fig1b\n"
      "position(vpn, first)\n"
      "order(firewall, before, lb)\n"
      "order(monitor, before, lb)");
  analyze(
      "policy west_east\n"
      "chain(ids, monitor, lb)");
  analyze(
      "policy priority_example\n"
      "priority(ips > firewall)");
  analyze(
      "policy payload_writers\n"
      "chain(nids, compression)");
  analyze(
      "policy unparallelizable\n"
      "chain(nat, lb)");
  analyze(
      "policy conflicting   # rejected by conflict detection\n"
      "order(monitor, before, lb)\n"
      "order(lb, before, monitor)");
  return 0;
}

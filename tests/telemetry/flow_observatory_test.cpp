// Tests for the flow observatory: Space-Saving exactness within capacity
// and error/presence bounds beyond it, top-10 precision under zipf traffic
// vs exact counts, cross-shard merge exactness under disjoint RSS
// sharding, the HyperLogLog cardinality estimate, the drop-reason
// taxonomy's exactness invariant (sum over reasons == dropped, induced for
// ring_full / pool_exhausted / nf_verdict / classifier_miss /
// shutdown_drain), per-graph tenant accounting, concurrent record/scrape
// (the TSan workload), and the /flows.json loopback endpoint plus
// timeseries probes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "dataplane/sharded_dataplane.hpp"
#include "graph/service_graph.hpp"
#include "nfs/firewall.hpp"
#include "nfs/nf.hpp"
#include "orch/compiler.hpp"
#include "packet/builder.hpp"
#include "policy/policy.hpp"
#include "telemetry/flow_observatory.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/timeseries.hpp"

namespace nfp {
namespace {

using telemetry::DropExemplarRing;
using telemetry::DropReason;
using telemetry::FlowObservatory;
using telemetry::FlowReport;
using telemetry::FlowSample;
using telemetry::HyperLogLog;
using telemetry::kDropReasonCount;
using telemetry::merge_topk;
using telemetry::ShardFlowAccountant;
using telemetry::ShardFlowSnapshot;
using telemetry::SpaceSaving;

u64 splitmix(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

FiveTuple test_tuple(std::size_t flow) {
  return FiveTuple{0x0A300000 + static_cast<u32>(flow),
                   0x0A400000 + static_cast<u32>(flow % 11),
                   static_cast<u16>(20'000 + flow),
                   static_cast<u16>(443 + flow % 3), kProtoTcp};
}

// Deterministic zipf-ish popularity: flow f contributes weight 1/(f+1).
// Returns per-flow packet counts summing to ~total.
std::vector<u64> zipf_counts(std::size_t flows, u64 total) {
  double h = 0;
  for (std::size_t f = 0; f < flows; ++f) h += 1.0 / static_cast<double>(f + 1);
  std::vector<u64> counts(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    counts[f] = static_cast<u64>(
        static_cast<double>(total) / (static_cast<double>(f + 1) * h));
    if (counts[f] == 0) counts[f] = 1;
  }
  return counts;
}

// `counts[f]` packets of flow f, interleaved round-robin so heavy and
// light flows mix the way live traffic does.
std::vector<std::size_t> interleaved_flow_sequence(
    const std::vector<u64>& counts) {
  std::vector<u64> remaining = counts;
  std::vector<std::size_t> seq;
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t f = 0; f < remaining.size(); ++f) {
      if (remaining[f] == 0) continue;
      --remaining[f];
      seq.push_back(f);
      any = true;
    }
  }
  return seq;
}

std::vector<std::vector<u8>> frames_for_sequence(
    const std::vector<std::size_t>& seq) {
  PacketPool pool(4);
  std::vector<std::vector<u8>> frames;
  frames.reserve(seq.size());
  for (const std::size_t f : seq) {
    PacketSpec spec;
    spec.tuple = test_tuple(f);
    Packet* p = build_packet(pool, spec);
    frames.emplace_back(p->data(), p->data() + p->length());
    pool.release(p);
  }
  return frames;
}

ServiceGraph compile_chain(const std::vector<std::string>& chain) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto g = compile_policy(Policy::from_sequential_chain("flowobs", chain),
                          table);
  EXPECT_TRUE(g.is_ok()) << g.error();
  return std::move(g).take();
}

void wait_until_done(ShardedDataplane& dp, std::size_t expected) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    u64 done = 0;
    for (std::size_t s = 0; s < dp.shard_count(); ++s) {
      done += dp.shard_delivered(s) + dp.shard_dropped(s);
    }
    if (done >= expected) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "dataplane did not finish " << expected << " frames in 30s";
}

u64 total_dropped(ShardedDataplane& dp) {
  u64 total = 0;
  for (std::size_t s = 0; s < dp.shard_count(); ++s) {
    total += dp.shard_dropped(s);
  }
  return total;
}

// The acceptance invariant: every drop carries a reason, exactly.
void check_drop_sum_invariant(ShardedDataplane& dp,
                              const FlowObservatory& obs) {
  u64 by_reason = 0;
  FlowReport rep = obs.report();
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    by_reason += rep.total.drops[r];
  }
  EXPECT_EQ(by_reason, total_dropped(dp))
      << "a drop escaped the reason taxonomy";
  EXPECT_EQ(rep.total_drops(), total_dropped(dp));
}

// --- Space-Saving ---------------------------------------------------------

TEST(FlowObservatoryTest, SpaceSavingExactWithinCapacity) {
  SpaceSaving table(64);
  const auto counts = zipf_counts(32, 10'000);
  for (std::size_t f = 0; f < counts.size(); ++f) {
    const FiveTuple t = test_tuple(f);
    const u64 h = hash_five_tuple(t);
    for (u64 i = 0; i < counts[f]; ++i) table.record(t, h, 1, 100);
  }
  EXPECT_EQ(table.size(), counts.size());
  for (const SpaceSaving::Entry& e : table.entries()) {
    const u64 f = e.tuple.src_port - 20'000u;
    EXPECT_EQ(e.count.packets, counts[f]) << "flow " << f;
    EXPECT_EQ(e.count.bytes, counts[f] * 100);
    EXPECT_EQ(e.error, 0u) << "within capacity nothing is evicted";
  }
}

TEST(FlowObservatoryTest, SpaceSavingErrorAndPresenceBounds) {
  constexpr std::size_t kCapacity = 16;
  constexpr std::size_t kFlows = 200;
  SpaceSaving table(kCapacity);
  const auto counts = zipf_counts(kFlows, 20'000);
  u64 n = 0;
  for (const std::size_t f : interleaved_flow_sequence(counts)) {
    const FiveTuple t = test_tuple(f);
    table.record(t, hash_five_tuple(t), 1, 1);
    ++n;
  }
  EXPECT_LE(table.size(), kCapacity);
  // Per-entry bound: true <= recorded <= true + error, error <= N/K.
  for (const SpaceSaving::Entry& e : table.entries()) {
    const u64 f = e.tuple.src_port - 20'000u;
    EXPECT_GE(e.count.packets, counts[f]) << "flow " << f;
    EXPECT_LE(e.count.packets, counts[f] + e.error) << "flow " << f;
    EXPECT_LE(e.error, n / kCapacity) << "flow " << f;
  }
  // Presence guarantee: every flow with true count > N/K holds a slot.
  for (std::size_t f = 0; f < kFlows; ++f) {
    if (counts[f] > n / kCapacity) {
      EXPECT_TRUE(table.contains(hash_five_tuple(test_tuple(f))))
          << "heavy flow " << f << " missing";
    }
  }
}

TEST(FlowObservatoryTest, ZipfTop10PrecisionAtLeastPoint9) {
  constexpr std::size_t kFlows = 500;
  SpaceSaving table(64);
  const auto counts = zipf_counts(kFlows, 50'000);
  for (const std::size_t f : interleaved_flow_sequence(counts)) {
    const FiveTuple t = test_tuple(f);
    table.record(t, hash_five_tuple(t), 1, 1);
  }
  // zipf_counts is monotone decreasing: the exact top-10 is flows 0..9.
  auto entries = table.entries();
  std::sort(entries.begin(), entries.end(),
            [](const SpaceSaving::Entry& a, const SpaceSaving::Entry& b) {
              return a.count.packets > b.count.packets;
            });
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 10 && i < entries.size(); ++i) {
    if (entries[i].tuple.src_port - 20'000u < 10) ++hits;
  }
  EXPECT_GE(hits, 9u) << "top-10 precision below 0.9";
}

TEST(FlowObservatoryTest, MergeTopkSumsByKeyAndTruncates) {
  SpaceSaving a(8), b(8);
  const FiveTuple shared = test_tuple(1);
  const u64 shared_hash = hash_five_tuple(shared);
  a.record(shared, shared_hash, 10, 1000);
  b.record(shared, shared_hash, 5, 500);
  const FiveTuple only_b = test_tuple(2);
  b.record(only_b, hash_five_tuple(only_b), 3, 300);

  const std::vector<std::vector<SpaceSaving::Entry>> tables = {a.entries(),
                                                               b.entries()};
  const auto merged = merge_topk(tables, 8);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].hash, shared_hash);
  EXPECT_EQ(merged[0].count.packets, 15u);
  EXPECT_EQ(merged[0].count.bytes, 1500u);
  EXPECT_EQ(merged[1].count.packets, 3u);

  const auto truncated = merge_topk(tables, 1);
  ASSERT_EQ(truncated.size(), 1u);
  EXPECT_EQ(truncated[0].hash, shared_hash);
}

// --- HyperLogLog ----------------------------------------------------------

TEST(FlowObservatoryTest, HllEstimateWithinErrorBound) {
  for (const std::size_t n : {100u, 1'000u, 50'000u}) {
    HyperLogLog hll;
    for (std::size_t i = 0; i < n; ++i) hll.add(splitmix(i));
    const double est = HyperLogLog::estimate(hll.registers());
    // Standard error is 6.5%; 3 sigma plus small-n slack.
    EXPECT_NEAR(est, static_cast<double>(n), 0.25 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(FlowObservatoryTest, HllRegistersMergeByMax) {
  HyperLogLog a, b, both;
  for (std::size_t i = 0; i < 5'000; ++i) {
    const u64 h = splitmix(i);
    (i % 2 ? a : b).add(h);
    both.add(h);
  }
  HyperLogLog::Registers merged{};
  for (std::size_t i = 0; i < HyperLogLog::kRegisters; ++i) {
    merged[i] = std::max(a.registers()[i], b.registers()[i]);
  }
  EXPECT_EQ(merged, both.registers());
}

// --- exemplar ring --------------------------------------------------------

TEST(FlowObservatoryTest, ExemplarRingIsBoundedOldestFirst) {
  DropExemplarRing ring(4);
  for (std::size_t i = 0; i < 6; ++i) {
    FlowRef flow;
    flow.tuple = test_tuple(i);
    flow.valid = true;
    ring.record(DropReason::kNfVerdict, "nf:test#0", &flow, 100 + i);
  }
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].when_ns, 100 + 2 + i) << "oldest-first order";
    EXPECT_EQ(snap[i].reason, DropReason::kNfVerdict);
    EXPECT_EQ(snap[i].stage, "nf:test#0");
    EXPECT_TRUE(snap[i].tuple_valid);
  }
}

// --- accountant churn -----------------------------------------------------

TEST(FlowObservatoryTest, NewFlowCountedOncePerFlow) {
  ShardFlowAccountant acct(32, 1);
  FlowSample s;
  s.tuple = test_tuple(7);
  s.hash = hash_five_tuple(s.tuple);
  s.graph = 0;
  s.packets = 3;
  s.bytes = 300;
  s.tuple_valid = true;
  acct.record_burst({&s, 1});
  acct.record_burst({&s, 1});
  const ShardFlowSnapshot snap = acct.snapshot();
  EXPECT_EQ(snap.new_flows, 1u);
  EXPECT_EQ(snap.packets, 6u);
  EXPECT_EQ(snap.bytes, 600u);
  ASSERT_EQ(snap.graphs.size(), 1u);
  EXPECT_EQ(snap.graphs[0].traffic.packets, 6u);
}

// --- live sharded dataplane ----------------------------------------------

// Runs `frames` on a dataplane and returns the flow report.
FlowReport run_flows(ShardedDataplane& dp, FlowObservatory& obs,
                     const std::vector<std::vector<u8>>& frames) {
  EXPECT_TRUE(dp.start().is_ok());
  obs.reset_baseline();
  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, frames.size());
  return obs.report();
}

TEST(FlowObservatoryTest, CrossShardMergeMatchesSingleShardExactly) {
  // Flows fit the per-shard tables, so both sides are exact — and because
  // RSS shards flows disjointly, the 2-shard merge must equal the 1-shard
  // table entry-for-entry.
  const auto counts = zipf_counts(48, 6'000);
  const auto frames = frames_for_sequence(interleaved_flow_sequence(counts));

  std::map<u64, u64> merged_counts, single_counts;
  for (const std::size_t shards : {1u, 2u}) {
    ShardedDataplaneOptions opts;
    opts.shards = shards;
    opts.heavy_hitter_capacity = 128;
    ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
    FlowObservatory obs;
    dp.register_flows(obs);
    const FlowReport rep = run_flows(dp, obs, frames);
    auto& out = shards == 1 ? single_counts : merged_counts;
    for (const SpaceSaving::Entry& e : rep.total.topk) {
      out[e.hash] = e.count.packets;
      EXPECT_EQ(e.error, 0u);
    }
    EXPECT_EQ(rep.total.packets, frames.size());
    const ShardedResult res = dp.drain();
    EXPECT_TRUE(res.status.is_ok());
  }
  EXPECT_EQ(merged_counts, single_counts);
}

TEST(FlowObservatoryTest, LiveZipfHeavyHittersAndChurn) {
  const auto counts = zipf_counts(64, 8'000);
  const auto frames = frames_for_sequence(interleaved_flow_sequence(counts));

  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  FlowObservatory obs;
  dp.register_flows(obs);
  EXPECT_EQ(obs.shard_count(), 2u);
  const FlowReport rep = run_flows(dp, obs, frames);

  EXPECT_EQ(rep.total.packets, frames.size());
  EXPECT_EQ(rep.total.new_flows, 64u);
  // 64 distinct flows fit linear counting exactly at this range.
  EXPECT_NEAR(rep.flows_active(), 64.0, 10.0);
  ASSERT_FALSE(rep.total.topk.empty());
  // zipf head: flow 0 is the elephant and the top entry.
  EXPECT_EQ(rep.total.topk.front().tuple.src_port, 20'000u);
  EXPECT_EQ(rep.total.topk.front().count.packets, counts[0]);
  EXPECT_GT(rep.hh_top1_share(), 0.1);
  check_drop_sum_invariant(dp, obs);
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
}

TEST(FlowObservatoryTest, InducedNfVerdictDropsCarryReason) {
  const auto drop_factory =
      [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kDrop);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name);
  };
  const auto frames =
      frames_for_sequence(interleaved_flow_sequence(zipf_counts(8, 400)));

  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"firewall"})}, drop_factory, opts);
  FlowObservatory obs;
  dp.register_flows(obs);
  const FlowReport rep = run_flows(dp, obs, frames);

  EXPECT_EQ(rep.total.drops[static_cast<std::size_t>(DropReason::kNfVerdict)],
            frames.size());
  EXPECT_EQ(total_dropped(dp), frames.size());
  check_drop_sum_invariant(dp, obs);
  // Exemplars name the NF stage that dropped.
  ASSERT_FALSE(rep.total.exemplars.empty());
  EXPECT_EQ(rep.total.exemplars.front().reason, DropReason::kNfVerdict);
  EXPECT_NE(rep.total.exemplars.front().stage.find("nf:"), std::string::npos);
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
  EXPECT_EQ(res.dropped, frames.size());
}

TEST(FlowObservatoryTest, InducedRingFullDropsCarryReason) {
  const auto frames =
      frames_for_sequence(interleaved_flow_sequence(zipf_counts(16, 8'000)));

  ShardedDataplaneOptions opts;
  opts.shards = 2;
  opts.ingest_ring_depth = 4;  // tiny RX ring: the director must tail-drop
  opts.drop_on_ingest_backpressure = true;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  FlowObservatory obs;
  dp.register_flows(obs);
  const FlowReport rep = run_flows(dp, obs, frames);

  // A tight feed loop against 4-deep rings must shed at least something.
  EXPECT_GT(rep.total.drops[static_cast<std::size_t>(DropReason::kRingFull)],
            0u);
  check_drop_sum_invariant(dp, obs);
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
  EXPECT_EQ(res.dropped, total_dropped(dp));
}

TEST(FlowObservatoryTest, InducedPoolExhaustedDropsCarryReason) {
  // A 4-version parallel stage needs the original plus 3 clones per
  // packet; a 3-slot pipeline pool can never satisfy the third clone, so
  // every packet must surface as pool_exhausted — never as silent loss.
  const auto frames =
      frames_for_sequence(interleaved_flow_sequence(zipf_counts(16, 400)));

  ShardedDataplaneOptions opts;
  opts.shards = 1;
  opts.pipeline.pool_size = 3;
  opts.pipeline.magazine_size = 0;  // no per-thread caching of the 3 slots
  ShardedDataplane dp(
      {ServiceGraph::parallel("par4",
                              {"monitor", "monitor", "monitor", "monitor"},
                              {1, 2, 3, 4})},
      {}, opts);
  FlowObservatory obs;
  dp.register_flows(obs);
  const FlowReport rep = run_flows(dp, obs, frames);

  EXPECT_EQ(
      rep.total.drops[static_cast<std::size_t>(DropReason::kPoolExhausted)],
      frames.size());
  check_drop_sum_invariant(dp, obs);
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
  EXPECT_EQ(res.dropped, total_dropped(dp));
}

TEST(FlowObservatoryTest, ClassifierDropRuleCountsClassifierMiss) {
  const std::size_t kFlows = 8;
  const auto frames =
      frames_for_sequence(interleaved_flow_sequence(zipf_counts(kFlows, 400)));

  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  // Scrub flow 0 (the elephant) at classification time.
  dp.add_flow_rule(test_tuple(0), LiveClassificationTable::kDropGraph);
  FlowObservatory obs;
  dp.register_flows(obs);
  const FlowReport rep = run_flows(dp, obs, frames);

  const auto counts = zipf_counts(kFlows, 400);
  EXPECT_EQ(
      rep.total.drops[static_cast<std::size_t>(DropReason::kClassifierMiss)],
      counts[0]);
  // The scrubbed elephant still shows in the heavy-hitter table (that is
  // the point of a drop rule's accounting).
  ASSERT_FALSE(rep.total.topk.empty());
  EXPECT_EQ(rep.total.topk.front().tuple.src_port, 20'000u);
  check_drop_sum_invariant(dp, obs);
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
  EXPECT_EQ(res.outputs.size(), frames.size() - counts[0]);
}

TEST(FlowObservatoryTest, FeedWhileNotRunningCountsShutdownDrain) {
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  FlowObservatory obs;
  dp.register_flows(obs);

  const auto frames = frames_for_sequence({0, 1, 2});
  for (const auto& frame : frames) {
    EXPECT_FALSE(dp.feed({frame.data(), frame.size()}));
  }
  const FlowReport rep = obs.report();
  EXPECT_EQ(
      rep.total.drops[static_cast<std::size_t>(DropReason::kShutdownDrain)],
      frames.size());
  EXPECT_EQ(total_dropped(dp), frames.size());
  check_drop_sum_invariant(dp, obs);
}

TEST(FlowObservatoryTest, PerGraphTenantAccounting) {
  const auto drop_factory =
      [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kDrop);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name);
  };
  const std::size_t kFlows = 12;
  const auto counts = zipf_counts(kFlows, 1'200);
  const auto frames = frames_for_sequence(interleaved_flow_sequence(counts));

  ShardedDataplaneOptions opts;
  opts.shards = 2;
  opts.pipeline.latency_sample_every = 1;
  std::vector<ServiceGraph> graphs;
  graphs.push_back(compile_chain({"monitor"}));
  graphs.push_back(compile_chain({"firewall"}));
  ShardedDataplane dp(std::move(graphs), drop_factory, opts);
  u64 steered = 0;
  for (std::size_t f = 0; f < kFlows; f += 2) {
    dp.add_flow_rule(test_tuple(f), 1);  // even flows -> dropping tenant
    steered += counts[f];
  }
  FlowObservatory obs;
  dp.register_flows(obs);
  const FlowReport rep = run_flows(dp, obs, frames);

  ASSERT_EQ(rep.total.graphs.size(), 2u);
  EXPECT_EQ(rep.total.graphs[0].traffic.packets, frames.size() - steered);
  EXPECT_EQ(rep.total.graphs[1].traffic.packets, steered);
  EXPECT_EQ(rep.total.graphs[0].drops, 0u);
  EXPECT_EQ(rep.total.graphs[1].drops, steered);
  // Tenant 0's packets were delivered with sampling on: its p99 is live.
  EXPECT_GT(rep.total.graphs[0].latency.count(), 0u);
  check_drop_sum_invariant(dp, obs);
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
}

// --- concurrency (the TSan workload) --------------------------------------

TEST(FlowObservatoryTest, ConcurrentRecordAndScrape) {
  auto acct = std::make_shared<ShardFlowAccountant>(64, 1);
  FlowObservatory obs;
  obs.add_shard("shard0", [acct] { return acct->snapshot(); });
  obs.reset_baseline();

  constexpr int kBursts = 100'000;
  std::atomic<bool> done{false};
  std::thread worker([&] {
    for (int i = 0; i < kBursts; ++i) {
      FlowSample s;
      s.tuple = test_tuple(static_cast<std::size_t>(i % 37));
      s.hash = hash_five_tuple(s.tuple);
      s.graph = 0;
      s.packets = 2;
      s.bytes = 128;
      s.tuple_valid = true;
      acct->record_burst({&s, 1});
      if (i % 64 == 0) {
        FlowRef flow;
        flow.tuple = s.tuple;
        flow.valid = true;
        acct->record_drop(DropReason::kNfVerdict, "nf:test#0", &flow,
                          static_cast<u64>(i));
      }
    }
    done.store(true, std::memory_order_release);
  });
  u64 scrapes = 0;
  u64 last_packets = 0;
  do {
    const FlowReport rep = obs.report();
    EXPECT_GE(rep.total.packets, last_packets) << "scrape went backwards";
    last_packets = rep.total.packets;
    ++scrapes;
  } while (!done.load(std::memory_order_acquire));
  worker.join();
  EXPECT_GT(scrapes, 0u);
  const FlowReport rep = obs.report();
  EXPECT_EQ(rep.total.packets, static_cast<u64>(kBursts) * 2);
  EXPECT_EQ(rep.total.drops[static_cast<std::size_t>(DropReason::kNfVerdict)],
            static_cast<u64>((kBursts + 63) / 64));
}

// --- report surfaces ------------------------------------------------------

TEST(FlowObservatoryTest, ReportJsonAndPrometheusShapes) {
  const auto frames =
      frames_for_sequence(interleaved_flow_sequence(zipf_counts(16, 800)));
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  FlowObservatory obs;
  dp.register_flows(obs);
  const FlowReport rep = run_flows(dp, obs, frames);

  const auto doc = json::Value::parse(rep.to_json());
  ASSERT_TRUE(doc.is_ok()) << doc.error();
  const json::Value& root = doc.value();
  EXPECT_EQ(root.number_or("packets", -1),
            static_cast<double>(frames.size()));
  EXPECT_EQ(root.number_or("dropped", -1), 0.0);
  EXPECT_GT(root.number_or("flows_active", 0), 0.0);
  const json::Value* top = root.find("top");
  ASSERT_NE(top, nullptr);
  ASSERT_TRUE(top->is_array());
  ASSERT_FALSE(top->items().empty());
  EXPECT_GT(top->items()[0].number_or("packets", 0), 0.0);
  const json::Value* drops = root.find("drops");
  ASSERT_NE(drops, nullptr);
  for (const char* reason :
       {"ring_full", "pool_exhausted", "nf_verdict", "classifier_miss",
        "merge_overflow", "shutdown_drain"}) {
    EXPECT_GE(drops->number_or(reason, -1), 0.0) << reason;
  }
  const json::Value* shards = root.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->items().size(), 2u);

  const std::string prom = rep.to_prometheus();
  EXPECT_NE(prom.find("# TYPE nfp_flow_drops_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("nfp_flow_drops_total{reason=\"nf_verdict\",shard="
                      "\"shard0\"} "),
            std::string::npos);
  EXPECT_NE(prom.find("nfp_flow_packets_total{shard=\"shard1\"} "),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE nfp_flows_active gauge"), std::string::npos);

  const std::string text = rep.to_text();
  EXPECT_NE(text.find("flow"), std::string::npos);
  EXPECT_NE(text.find("drops by reason"), std::string::npos);
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
}

TEST(FlowObservatoryTest, ServesFlowsJsonOverLoopback) {
  const auto frames =
      frames_for_sequence(interleaved_flow_sequence(zipf_counts(8, 500)));
  ShardedDataplaneOptions opts;
  opts.shards = 1;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  FlowObservatory obs;
  dp.register_flows(obs);
  ASSERT_TRUE(dp.start().is_ok());
  obs.reset_baseline();

  telemetry::StatsServer server;
  telemetry::EndpointSources sources;
  sources.flows = &obs;
  telemetry::register_standard_endpoints(server, sources);
  ASSERT_TRUE(server.start({}).is_ok());

  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, frames.size());

  const auto res = telemetry::http_get(server.port(), "/flows.json");
  ASSERT_TRUE(res.is_ok()) << res.error();
  EXPECT_EQ(res.value().status, 200);
  EXPECT_EQ(res.value().content_type, "application/json");
  const auto doc = json::Value::parse(res.value().body);
  ASSERT_TRUE(doc.is_ok()) << doc.error();
  EXPECT_EQ(doc.value().number_or("packets", -1),
            static_cast<double>(frames.size()));

  server.stop();
  const ShardedResult drained = dp.drain();
  EXPECT_TRUE(drained.status.is_ok());
}

TEST(FlowObservatoryTest, RegistersTimeseriesProbes) {
  auto acct = std::make_shared<ShardFlowAccountant>(64, 1);
  FlowObservatory obs;
  obs.add_shard("shard0", [acct] { return acct->snapshot(); });

  FlowSample s;
  s.tuple = test_tuple(3);
  s.hash = hash_five_tuple(s.tuple);
  s.graph = 0;
  s.packets = 5;
  s.bytes = 640;
  s.tuple_valid = true;
  acct->record_burst({&s, 1});
  FlowRef flow;
  flow.tuple = s.tuple;
  flow.valid = true;
  acct->record_drop(DropReason::kRingFull, "director", &flow, 1);

  telemetry::MetricsRegistry reg;
  u64 now = 1'000'000'000;
  telemetry::TimeseriesCollector::Options copts;
  copts.clock = [&now] { return now; };
  telemetry::TimeseriesCollector collector(reg, copts);
  obs.register_probes(collector);
  collector.sample_once();

  const auto active = collector.history("flows_active", {});
  ASSERT_EQ(active.size(), 1u);
  EXPECT_GT(active[0].value, 0.0);
  const auto top1 = collector.history("hh_top1_share", {});
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_GT(top1[0].value, 0.99);  // one flow owns all counted packets
  const auto ring_full = collector.history("drops_ring_full_total", {});
  ASSERT_EQ(ring_full.size(), 1u);
  EXPECT_EQ(ring_full[0].value, 1.0);
  const auto nf_verdict = collector.history("drops_nf_verdict_total", {});
  ASSERT_EQ(nf_verdict.size(), 1u);
  EXPECT_EQ(nf_verdict[0].value, 0.0);
}

}  // namespace
}  // namespace nfp

#include "inspector/inspector.hpp"

#include <algorithm>
#include <string>

#include "common/rng.hpp"
#include "packet/builder.hpp"
#include "packet/packet_pool.hpp"

namespace nfp {

namespace {

class ProfileRecorder final : public ActionRecorder {
 public:
  void on_read(Field field) override { profile.add_read(field); }
  void on_write(Field field) override { profile.add_write(field); }
  void on_add_remove(Field field) override { profile.add_add_rm(field); }

  ActionProfile profile;
};

}  // namespace

ActionProfile inspect_nf(NetworkFunction& nf,
                         const InspectionOptions& options) {
  PacketPool pool(8);
  Rng rng(options.seed);
  ProfileRecorder recorder;
  bool saw_drop = false;

  for (std::size_t i = 0; i < options.sample_packets; ++i) {
    PacketSpec spec;
    spec.tuple.src_ip = static_cast<u32>(rng.next());
    spec.tuple.dst_ip = static_cast<u32>(rng.next());
    spec.tuple.src_port = static_cast<u16>(rng.range(1, 65535));
    spec.tuple.dst_port = static_cast<u16>(rng.range(1, 65535));
    spec.tuple.proto = rng.uniform() < 0.7 ? kProtoTcp : kProtoUdp;
    spec.frame_size = rng.range(64, 1400);
    spec.payload_byte = static_cast<u8>(rng.bounded(256));

    Packet* pkt = build_packet(pool, spec);
    if (pkt == nullptr) break;
    PacketView view(*pkt, &recorder);
    if (view.valid()) {
      if (nf.process(view) == NfVerdict::kDrop) saw_drop = true;
    }
    pool.release(pkt);
  }

  // The checksum field is maintained by the framework, not an NF intent;
  // exclude it from the behavioural profile.
  std::vector<Action> actions;
  for (const Action& a : recorder.profile.actions()) {
    if (a.field != Field::kChecksum) actions.push_back(a);
  }
  ActionProfile profile(std::move(actions));
  if (saw_drop) profile.add_drop();
  return profile;
}

void register_inspected_nf(ActionTable& table, NetworkFunction& nf,
                           double deployment_share,
                           const InspectionOptions& options) {
  table.register_nf(std::string(nf.type_name()), inspect_nf(nf, options),
                    deployment_share);
}

std::vector<std::string> diff_profiles(const ActionProfile& observed,
                                       const ActionProfile& declared) {
  std::vector<std::string> out;
  for (const Action& a : observed.actions()) {
    if (std::find(declared.actions().begin(), declared.actions().end(), a) ==
        declared.actions().end()) {
      out.push_back("undeclared action observed: " + action_to_string(a));
    }
  }
  for (const Action& a : declared.actions()) {
    if (std::find(observed.actions().begin(), observed.actions().end(), a) ==
        observed.actions().end()) {
      out.push_back("declared action unobserved: " + action_to_string(a));
    }
  }
  return out;
}

}  // namespace nfp

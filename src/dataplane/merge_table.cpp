#include "dataplane/merge_table.hpp"

#include <algorithm>
#include <cassert>

namespace nfp {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

MergeTable::MergeTable(std::size_t expected_pids, u32 arrivals_per_pid)
    : per_pid_(std::max<u32>(1, arrivals_per_pid)) {
  const std::size_t cap =
      round_up_pow2(std::max<std::size_t>(16, expected_pids * 2));
  mask_ = cap - 1;
  slots_.resize(cap);
  arrivals_.resize(cap * per_pid_);
  completed_.reserve(per_pid_);
}

std::span<MergeArrival> MergeTable::add(u64 pid, const MergeArrival& arrival) {
  if ((live_ + 1) * 2 > slots_.size()) grow();

  std::size_t idx = home(pid);
  for (;;) {
    Slot& s = slots_[idx];
    if (s.pid_plus1 == 0) {
      s.pid_plus1 = pid + 1;
      s.count = 0;
      ++live_;
      break;
    }
    if (s.pid_plus1 == pid + 1) break;
    idx = (idx + 1) & mask_;
  }

  Slot& s = slots_[idx];
  assert(s.count < per_pid_ && "more arrivals than merge.total_count");
  arrivals_[idx * per_pid_ + s.count] = arrival;
  ++s.count;
  if (s.count < per_pid_) return {};

  const MergeArrival* row = &arrivals_[idx * per_pid_];
  completed_.assign(row, row + per_pid_);
  erase_at(idx);
  --live_;
  return {completed_.data(), per_pid_};
}

// Backward-shift deletion: close the hole by sliding back every entry of
// the probe cluster that had probed through it, so lookups never need
// tombstones and probe chains stay as short as the live occupancy allows.
void MergeTable::erase_at(std::size_t idx) {
  std::size_t hole = idx;
  slots_[hole] = Slot{};
  std::size_t j = (hole + 1) & mask_;
  while (slots_[j].pid_plus1 != 0) {
    const std::size_t h = home(slots_[j].pid_plus1 - 1);
    const std::size_t dist_from_home = (j - h) & mask_;
    const std::size_t dist_from_hole = (j - hole) & mask_;
    if (dist_from_home >= dist_from_hole) {
      slots_[hole] = slots_[j];
      std::copy_n(&arrivals_[j * per_pid_], slots_[hole].count,
                  &arrivals_[hole * per_pid_]);
      slots_[j] = Slot{};
      hole = j;
    }
    j = (j + 1) & mask_;
  }
}

void MergeTable::grow() {
  std::vector<Slot> old_slots = std::move(slots_);
  std::vector<MergeArrival> old_arrivals = std::move(arrivals_);
  const std::size_t cap = old_slots.size() * 2;
  mask_ = cap - 1;
  slots_.assign(cap, Slot{});
  arrivals_.assign(cap * per_pid_, MergeArrival{});
  for (std::size_t i = 0; i < old_slots.size(); ++i) {
    const Slot& s = old_slots[i];
    if (s.pid_plus1 == 0) continue;
    std::size_t idx = home(s.pid_plus1 - 1);
    while (slots_[idx].pid_plus1 != 0) idx = (idx + 1) & mask_;
    slots_[idx] = s;
    std::copy_n(&old_arrivals[i * per_pid_], s.count,
                &arrivals_[idx * per_pid_]);
  }
}

}  // namespace nfp

#include "baseline/onv_dataplane.hpp"

namespace nfp::baseline {

namespace {
constexpr char kPlane[] = "onv";
}  // namespace

OnvDataplane::OnvDataplane(sim::Simulator& sim,
                           std::vector<std::string> chain,
                           DataplaneConfig config)
    : sim_(sim),
      config_(std::move(config)),
      pool_(std::make_unique<PacketPool>(config_.pool_packets)) {
  int id = 0;
  for (auto& type : chain) {
    NfInstance inst;
    inst.type = type;
    if (config_.factory) {
      StageNf meta{type, id, 1, 0, false};
      inst.impl = config_.factory(meta);
    } else {
      inst.impl = make_builtin_nf(type, static_cast<u64>(id) + 1);
    }
    inst.component = "nf:" + type + "#" + std::to_string(id);
    inst.service = &metrics_.histogram(
        "nf_service_ns", {{"plane", kPlane}, {"nf", inst.component}});
    ++id;
    nfs_.push_back(std::move(inst));
  }
  m_injected_ = &metrics_.counter("packets_injected_total", {{"plane", kPlane}});
  m_delivered_ =
      &metrics_.counter("packets_delivered_total", {{"plane", kPlane}});
  m_dropped_nf_ = &metrics_.counter("packets_dropped_total",
                                    {{"plane", kPlane}, {"reason", "nf"}});
  m_latency_ = &metrics_.histogram("packet_latency_ns", {{"plane", kPlane}});
  m_pool_in_use_ = &metrics_.gauge("pool_in_use", {{"plane", kPlane}});
  metrics_.gauge("pool_capacity", {{"plane", kPlane}})
      .set(static_cast<double>(pool_->capacity()));
  if (config_.trace_every > 0) {
    tracer_ = std::make_unique<telemetry::Tracer>(config_.trace_every,
                                                  config_.trace_capacity);
  }
}

void OnvDataplane::trace(u64 pid, telemetry::SpanKind kind, SimTime at,
                         const char* component) {
  if (tracer_ != nullptr && tracer_->sampled(pid)) {
    tracer_->record(pid, kind, at, component);
  }
}

void OnvDataplane::snapshot_metrics() {
  const auto busy = [this](const std::string& component, SimTime ns) {
    metrics_
        .gauge("core_busy_ns", {{"plane", kPlane}, {"component", component}})
        .set(static_cast<double>(ns));
  };
  metrics_.gauge("sim_now_ns", {{"plane", kPlane}})
      .set(static_cast<double>(sim_.now()));
  busy("switch", switch_core_.busy_time());
  busy("rx-link", rx_link_.busy_time());
  busy("tx-link", tx_link_.busy_time());
  for (NfInstance& inst : nfs_) busy(inst.component, inst.core.busy_time());
  m_pool_in_use_->set(static_cast<double>(pool_->in_use()));
}

void OnvDataplane::inject(Packet* pkt) {
  ++stats_.injected;
  m_injected_->inc();
  m_pool_in_use_->set(static_cast<double>(pool_->in_use()));
  pkt->set_inject_time(sim_.now());
  pkt->meta().set_pid(next_pid_++ & Metadata::kMaxPid);
  trace(pkt->meta().pid(), telemetry::SpanKind::kInject, sim_.now(),
        "rx-link");
  const SimTime link_free =
      rx_link_.execute(sim_.now(), config_.costs.wire_ns(pkt->length()));
  const SimTime ready = link_free + config_.costs.nic_delay_ns;
  sim_.schedule_at(ready, [this, pkt, ready] {
    switch_forward(pkt, 0, ready, /*first_crossing=*/true);
  });
}

void OnvDataplane::switch_forward(Packet* pkt, std::size_t next_nf, SimTime t,
                                  bool first_crossing) {
  const sim::OpCost crossing = config_.costs.switch_crossing;
  SimTime occ = crossing.occ;
  if (first_crossing) occ += config_.costs.switch_manager.occ;
  const SimTime free = switch_core_.execute(t, occ);
  const SimTime done = free + crossing.delay;
  trace(pkt->meta().pid(), telemetry::SpanKind::kClassify, free, "switch");

  if (next_nf >= nfs_.size()) {
    sim_.schedule_at(done, [this, pkt] { output(pkt, sim_.now()); });
    return;
  }
  sim_.schedule_at(done, [this, next_nf, pkt, done] {
    run_nf(next_nf, pkt, done);
  });
}

void OnvDataplane::run_nf(std::size_t idx, Packet* pkt, SimTime ready) {
  NfInstance& inst = nfs_[idx];
  const sim::OpCost deq = config_.costs.nf_dequeue;
  const sim::OpCost nf_cost = config_.costs.nf_cost(
      inst.type, pkt->length(), config_.delaynf_cycles);
  trace(pkt->meta().pid(), telemetry::SpanKind::kNfEnter, ready,
        inst.component.c_str());

  PacketView view(*pkt);
  NfVerdict verdict = NfVerdict::kPass;
  if (view.valid()) verdict = inst.impl->process(view);

  const SimTime free = inst.core.execute(ready, deq.occ + nf_cost.occ);
  const SimTime done = inst.out.stamp(free + deq.delay + nf_cost.delay);
  inst.service->record(static_cast<u64>(free - ready));
  trace(pkt->meta().pid(), telemetry::SpanKind::kNfExit, done,
        inst.component.c_str());
  if (verdict == NfVerdict::kDrop) {
    ++stats_.dropped_by_nf;
    m_dropped_nf_->inc();
    trace(pkt->meta().pid(), telemetry::SpanKind::kDrop, done,
          inst.component.c_str());
    pool_->release(pkt);
    return;
  }
  sim_.schedule_at(done, [this, idx, pkt, done] {
    switch_forward(pkt, idx + 1, done, /*first_crossing=*/false);
  });
}

void OnvDataplane::output(Packet* pkt, SimTime t) {
  const SimTime done =
      tx_link_.execute(t, config_.costs.wire_ns(pkt->length())) +
      config_.costs.nic_delay_ns;
  ++stats_.delivered;
  m_delivered_->inc();
  m_latency_->record(static_cast<u64>(done - pkt->inject_time()));
  trace(pkt->meta().pid(), telemetry::SpanKind::kOutput, done, "tx-link");
  if (sink_) {
    sink_(pkt, done);
  } else {
    pool_->release(pkt);
  }
}

}  // namespace nfp::baseline

#include "telemetry/flow_observatory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "telemetry/health_sampler.hpp"
#include "telemetry/timeseries.hpp"

namespace nfp::telemetry {

namespace {

constexpr std::array<const char*, kDropReasonCount> kReasonNames = {
    "ring_full",     "pool_exhausted", "nf_verdict",
    "classifier_miss", "merge_overflow", "shutdown_drain",
};

u64 saturating_sub(u64 a, u64 b) noexcept { return a >= b ? a - b : 0; }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string tuple_str(const FiveTuple& t, bool valid) {
  if (!valid) return "(non-ip)";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u->%u.%u.%u.%u:%u/%u",
                t.src_ip >> 24, (t.src_ip >> 16) & 0xff,
                (t.src_ip >> 8) & 0xff, t.src_ip & 0xff, t.src_port,
                t.dst_ip >> 24, (t.dst_ip >> 16) & 0xff,
                (t.dst_ip >> 8) & 0xff, t.dst_ip & 0xff, t.dst_port,
                t.proto);
  return buf;
}

}  // namespace

const char* drop_reason_name(DropReason r) noexcept {
  const auto i = static_cast<std::size_t>(r);
  return i < kReasonNames.size() ? kReasonNames[i] : "unknown";
}

// ---------------------------------------------------------------------------
// Space-Saving.

namespace {
// Min-heap order over counts.
constexpr auto kHeapGreater = [](const auto& a, const auto& b) {
  return a.packets > b.packets;
};
}  // namespace

void SpaceSaving::replace_min_batch(std::span<const Candidate> misses) {
  std::size_t i = 0;
  for (; i < misses.size() && map_.size() < capacity_; ++i) {
    const Candidate& c = misses[i];
    Entry e;
    e.tuple = c.tuple;
    e.hash = c.hash;
    e.count.packets = c.packets;
    e.count.bytes = c.bytes;
    // A duplicate hash within the batch folds into the earlier entry
    // (record_burst keys by (hash, graph), so the same flow can appear
    // once per graph).
    const auto [it, inserted] = map_.emplace(c.hash, std::move(e));
    if (!inserted) {
      it->second.count.packets += c.packets;
      it->second.count.bytes += c.bytes;
    }
  }
  if (i == misses.size()) return;
  // One exact min-heap build amortised over every replacement in the
  // batch. No increments interleave, so the heap stays exact and the
  // result is identical to running classic Space-Saving sample-by-sample:
  // each newcomer displaces the then-current minimum and inherits its
  // count as the error bound.
  scratch_heap_.clear();
  scratch_heap_.reserve(map_.size() + (misses.size() - i));
  for (const auto& [hash, e] : map_) {
    scratch_heap_.push_back({e.count.packets, hash});
  }
  std::make_heap(scratch_heap_.begin(), scratch_heap_.end(), kHeapGreater);
  for (; i < misses.size(); ++i) {
    const Candidate& c = misses[i];
    if (increment(c.hash, c.packets, c.bytes)) continue;  // in-batch dup
    std::pop_heap(scratch_heap_.begin(), scratch_heap_.end(), kHeapGreater);
    const HeapSlot victim_slot = scratch_heap_.back();
    scratch_heap_.pop_back();
    // Recycle the victim's map node (no free + alloc per eviction — at a
    // mouse-storm eviction rate the allocator churn dominates the sketch).
    auto node = map_.extract(map_.find(victim_slot.hash));
    Entry& e = node.mapped();
    node.key() = c.hash;
    e.tuple = c.tuple;
    e.hash = c.hash;
    e.error = e.count.packets;
    e.count.packets += c.packets;
    e.count.bytes += c.bytes;
    scratch_heap_.push_back({e.count.packets, c.hash});
    std::push_heap(scratch_heap_.begin(), scratch_heap_.end(), kHeapGreater);
    map_.insert(std::move(node));
  }
}

bool SpaceSaving::record(const FiveTuple& tuple, u64 hash, u64 packets,
                         u64 bytes) {
  if (packets == 0) return false;
  if (increment(hash, packets, bytes)) return false;
  const Candidate c{tuple, hash, packets, bytes};
  replace_min_batch({&c, 1});
  return true;
}

std::vector<SpaceSaving::Entry> SpaceSaving::entries() const {
  std::vector<Entry> out;
  out.reserve(map_.size());
  for (const auto& [hash, e] : map_) out.push_back(e);
  return out;
}

std::vector<SpaceSaving::Entry> merge_topk(
    std::span<const std::vector<SpaceSaving::Entry>> tables,
    std::size_t capacity) {
  std::unordered_map<u64, SpaceSaving::Entry> merged;
  for (const auto& table : tables) {
    for (const SpaceSaving::Entry& e : table) {
      auto [it, inserted] = merged.emplace(e.hash, e);
      if (!inserted) {
        it->second.count += e.count;
        it->second.error += e.error;
      }
    }
  }
  std::vector<SpaceSaving::Entry> out;
  out.reserve(merged.size());
  for (const auto& [hash, e] : merged) out.push_back(e);
  std::sort(out.begin(), out.end(),
            [](const SpaceSaving::Entry& a, const SpaceSaving::Entry& b) {
              if (a.count.packets != b.count.packets) {
                return a.count.packets > b.count.packets;
              }
              return a.hash < b.hash;  // deterministic tie-break
            });
  if (capacity != 0 && out.size() > capacity) out.resize(capacity);
  return out;
}

// ---------------------------------------------------------------------------
// HyperLogLog estimate.

double HyperLogLog::estimate(const Registers& regs) noexcept {
  constexpr double m = static_cast<double>(kRegisters);
  constexpr double alpha = 0.7213 / (1.0 + 1.079 / m);  // m >= 128
  double inv_sum = 0;
  std::size_t zeros = 0;
  for (const u8 r : regs) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha * m * m / inv_sum;
  if (raw <= 2.5 * m && zeros != 0) {
    return m * std::log(m / static_cast<double>(zeros));  // linear counting
  }
  return raw;
}

// ---------------------------------------------------------------------------
// Drop exemplars.

void DropExemplarRing::record(DropReason reason, const char* stage,
                              const FlowRef* flow, u64 when_ns) {
  const std::scoped_lock lock(mu_);
  DropExemplar& slot = ring_[next_];
  slot.reason = reason;
  slot.stage = stage != nullptr ? stage : "";
  slot.when_ns = when_ns;
  if (flow != nullptr) {
    slot.tuple = flow->tuple;
    slot.tuple_valid = flow->valid;
  } else {
    slot.tuple = FiveTuple{};
    slot.tuple_valid = false;
  }
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

std::vector<DropExemplar> DropExemplarRing::snapshot() const {
  const std::scoped_lock lock(mu_);
  std::vector<DropExemplar> out;
  const std::size_t n = std::min<u64>(total_, ring_.size());
  out.reserve(n);
  // Oldest-first: with a full ring the oldest slot is `next_`.
  const std::size_t start = total_ >= ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shard accountant.

ShardFlowAccountant::ShardFlowAccountant(std::size_t topk_capacity,
                                         std::size_t graph_count,
                                         std::size_t exemplar_capacity)
    : topk_(topk_capacity),
      graphs_(std::max<std::size_t>(1, graph_count)),
      exemplars_(exemplar_capacity) {}

void ShardFlowAccountant::record_burst(std::span<const FlowSample> samples) {
  if (samples.empty()) return;
  const std::scoped_lock lock(mu_);
  miss_scratch_.clear();
  for (const FlowSample& s : samples) {
    if (s.packets == 0) continue;
    packets_ += s.packets;
    bytes_ += s.bytes;
    if (s.graph != FlowSample::kNoGraph && s.graph < graphs_.size()) {
      graphs_[s.graph].packets += s.packets;
      graphs_[s.graph].bytes += s.bytes;
    }
    hll_.add(s.hash);
    if (topk_.increment(s.hash, s.packets, s.bytes)) continue;
    // Unmonitored flow: count it once and defer the Space-Saving
    // replacement so one heap build serves the whole burst.
    ++new_flows_;
    miss_scratch_.push_back({s.tuple, s.hash, s.packets, s.bytes});
  }
  if (!miss_scratch_.empty()) topk_.replace_min_batch(miss_scratch_);
}

void ShardFlowAccountant::record_drop(DropReason reason, const char* stage,
                                      const FlowRef* flow, u64 when_ns) {
  drops_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  exemplars_.record(reason, stage, flow, when_ns);
}

ShardFlowSnapshot ShardFlowAccountant::snapshot() const {
  ShardFlowSnapshot snap;
  {
    const std::scoped_lock lock(mu_);
    snap.topk = topk_.entries();
    snap.topk_capacity = topk_.capacity();
    snap.hll = hll_.registers();
    snap.packets = packets_;
    snap.bytes = bytes_;
    snap.new_flows = new_flows_;
    snap.graphs.resize(graphs_.size());
    for (std::size_t g = 0; g < graphs_.size(); ++g) {
      snap.graphs[g].traffic = graphs_[g];
    }
  }
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    snap.drops[r] = drops_[r].load(std::memory_order_relaxed);
  }
  snap.exemplars = exemplars_.snapshot();
  return snap;
}

// ---------------------------------------------------------------------------
// Snapshot merge.

u64 ShardFlowSnapshot::total_drops() const noexcept {
  u64 total = 0;
  for (const u64 d : drops) total += d;
  return total;
}

ShardFlowSnapshot& ShardFlowSnapshot::operator+=(
    const ShardFlowSnapshot& other) {
  const std::array<std::vector<SpaceSaving::Entry>, 2> tables = {
      std::move(topk), other.topk};
  topk_capacity = std::max(topk_capacity, other.topk_capacity);
  topk = merge_topk(tables, topk_capacity);
  for (std::size_t i = 0; i < HyperLogLog::kRegisters; ++i) {
    hll[i] = std::max(hll[i], other.hll[i]);
  }
  packets += other.packets;
  bytes += other.bytes;
  new_flows += other.new_flows;
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    drops[r] += other.drops[r];
  }
  exemplars.insert(exemplars.end(), other.exemplars.begin(),
                   other.exemplars.end());
  if (graphs.size() < other.graphs.size()) {
    graphs.resize(other.graphs.size());
  }
  for (std::size_t g = 0; g < other.graphs.size(); ++g) {
    graphs[g] += other.graphs[g];
  }
  return *this;
}

// ---------------------------------------------------------------------------
// Report rendering.

double FlowReport::hh_top1_share() const noexcept {
  if (total.topk.empty() || total.packets == 0) return 0.0;
  const double share =
      static_cast<double>(total.topk.front().count.packets) /
      static_cast<double>(total.packets);
  return share > 1.0 ? 1.0 : share;
}

namespace {

void topk_json(std::ostringstream& out,
               const std::vector<SpaceSaving::Entry>& entries, u64 packets,
               std::size_t k) {
  out << "[";
  const std::size_t n = std::min(entries.size(), k);
  for (std::size_t i = 0; i < n; ++i) {
    const SpaceSaving::Entry& e = entries[i];
    if (i > 0) out << ",";
    const double share =
        packets > 0 ? static_cast<double>(e.count.packets) /
                          static_cast<double>(packets)
                    : 0.0;
    out << "{\"flow\":\"" << tuple_str(e.tuple, true)
        << "\",\"packets\":" << e.count.packets
        << ",\"bytes\":" << e.count.bytes << ",\"error\":" << e.error
        << ",\"share\":" << fmt_double(share) << "}";
  }
  out << "]";
}

void drops_json(std::ostringstream& out,
                const std::array<u64, kDropReasonCount>& drops) {
  out << "{";
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    if (r > 0) out << ",";
    out << "\"" << kReasonNames[r] << "\":" << drops[r];
  }
  out << "}";
}

}  // namespace

std::string FlowReport::to_json() const {
  std::ostringstream out;
  out << "{\"wall_seconds\":" << fmt_double(wall_seconds)
      << ",\"flows_active\":" << fmt_double(flows_active())
      << ",\"new_flows\":" << total.new_flows
      << ",\"flow_new_rate\":" << fmt_double(new_flow_rate())
      << ",\"hh_top1_share\":" << fmt_double(hh_top1_share())
      << ",\"packets\":" << total.packets << ",\"bytes\":" << total.bytes
      << ",\"dropped\":" << total_drops()
      << ",\"topk_capacity\":" << total.topk_capacity
      << ",\"error_bound\":\"space-saving: entry over-counts by at most its "
         "error; hll cardinality standard error 6.5%\",\"top\":";
  topk_json(out, total.topk, total.packets, top_k);
  out << ",\"drops\":";
  drops_json(out, total.drops);
  out << ",\"graphs\":[";
  for (std::size_t g = 0; g < total.graphs.size(); ++g) {
    const GraphFlowCounters& gc = total.graphs[g];
    if (g > 0) out << ",";
    out << "{\"graph\":" << g << ",\"packets\":" << gc.traffic.packets
        << ",\"bytes\":" << gc.traffic.bytes << ",\"drops\":" << gc.drops
        << ",\"p99_us\":"
        << fmt_double(static_cast<double>(gc.latency.quantile(0.99)) / 1e3)
        << ",\"latency_samples\":" << gc.latency.count() << "}";
  }
  out << "],\"exemplars\":[";
  for (std::size_t i = 0; i < total.exemplars.size(); ++i) {
    const DropExemplar& e = total.exemplars[i];
    if (i > 0) out << ",";
    out << "{\"flow\":\"" << tuple_str(e.tuple, e.tuple_valid)
        << "\",\"stage\":\"" << escape(e.stage) << "\",\"reason\":\""
        << drop_reason_name(e.reason) << "\",\"when_ns\":" << e.when_ns
        << "}";
  }
  out << "],\"shards\":[";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& sh = shards[s];
    if (s > 0) out << ",";
    out << "{\"name\":\"" << escape(sh.name)
        << "\",\"packets\":" << sh.d.packets << ",\"bytes\":" << sh.d.bytes
        << ",\"new_flows\":" << sh.d.new_flows
        << ",\"dropped\":" << sh.d.total_drops() << ",\"drops\":";
    drops_json(out, sh.d.drops);
    out << ",\"top\":";
    topk_json(out, sh.d.topk, sh.d.packets, top_k);
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::string FlowReport::to_text() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "flows_active=%.0f new_flows=%llu (%.1f/s) packets=%llu "
                "bytes=%llu dropped=%llu top1_share=%.1f%%\n",
                flows_active(),
                static_cast<unsigned long long>(total.new_flows),
                new_flow_rate(),
                static_cast<unsigned long long>(total.packets),
                static_cast<unsigned long long>(total.bytes),
                static_cast<unsigned long long>(total_drops()),
                hh_top1_share() * 100.0);
  out << line;
  std::snprintf(line, sizeof(line), "%-4s %-34s %12s %14s %8s %7s\n", "#",
                "flow", "packets", "bytes", "share%", "err");
  out << line;
  const std::size_t n = std::min(total.topk.size(), top_k);
  for (std::size_t i = 0; i < n; ++i) {
    const SpaceSaving::Entry& e = total.topk[i];
    const double share =
        total.packets > 0 ? 100.0 * static_cast<double>(e.count.packets) /
                                static_cast<double>(total.packets)
                          : 0.0;
    std::snprintf(line, sizeof(line), "%-4zu %-34s %12llu %14llu %8.2f %7llu\n",
                  i + 1, tuple_str(e.tuple, true).c_str(),
                  static_cast<unsigned long long>(e.count.packets),
                  static_cast<unsigned long long>(e.count.bytes), share,
                  static_cast<unsigned long long>(e.error));
    out << line;
  }
  out << "drops by reason:";
  bool any = false;
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    if (total.drops[r] == 0) continue;
    any = true;
    std::snprintf(line, sizeof(line), " %s=%llu", kReasonNames[r],
                  static_cast<unsigned long long>(total.drops[r]));
    out << line;
  }
  out << (any ? "\n" : " none\n");
  if (total.graphs.size() > 1 ||
      (total.graphs.size() == 1 && total.graphs[0].drops > 0)) {
    for (std::size_t g = 0; g < total.graphs.size(); ++g) {
      const GraphFlowCounters& gc = total.graphs[g];
      std::snprintf(line, sizeof(line),
                    "graph%-3zu packets=%-10llu bytes=%-12llu drops=%-8llu "
                    "p99=%.1fus\n",
                    g, static_cast<unsigned long long>(gc.traffic.packets),
                    static_cast<unsigned long long>(gc.traffic.bytes),
                    static_cast<unsigned long long>(gc.drops),
                    static_cast<double>(gc.latency.quantile(0.99)) / 1e3);
      out << line;
    }
  }
  for (const DropExemplar& e : total.exemplars) {
    std::snprintf(line, sizeof(line), "exemplar %-34s stage=%s reason=%s\n",
                  tuple_str(e.tuple, e.tuple_valid).c_str(),
                  e.stage.c_str(), drop_reason_name(e.reason));
    out << line;
  }
  return out.str();
}

std::string FlowReport::to_prometheus() const {
  std::ostringstream out;
  out << "# TYPE nfp_flow_drops_total counter\n";
  for (const Shard& sh : shards) {
    for (std::size_t r = 0; r < kDropReasonCount; ++r) {
      out << "nfp_flow_drops_total{reason=\"" << kReasonNames[r]
          << "\",shard=\"" << escape(sh.name) << "\"} " << sh.d.drops[r]
          << "\n";
    }
  }
  out << "# TYPE nfp_flow_packets_total counter\n";
  for (const Shard& sh : shards) {
    out << "nfp_flow_packets_total{shard=\"" << escape(sh.name) << "\"} "
        << sh.d.packets << "\n";
  }
  out << "# TYPE nfp_flow_bytes_total counter\n";
  for (const Shard& sh : shards) {
    out << "nfp_flow_bytes_total{shard=\"" << escape(sh.name) << "\"} "
        << sh.d.bytes << "\n";
  }
  out << "# TYPE nfp_flows_active gauge\nnfp_flows_active "
      << fmt_double(flows_active()) << "\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Observatory.

FlowObservatory::FlowObservatory(Options options)
    : options_(std::move(options)),
      probe_cache_(std::make_shared<ProbeCache>()) {
  if (!options_.clock) options_.clock = [] { return mono_now_ns(); };
  if (options_.top_k == 0) options_.top_k = 10;
  baseline_ns_ = options_.clock();
}

void FlowObservatory::add_shard(std::string name, SnapshotFn fn) {
  if (!fn) return;
  const std::scoped_lock lock(mu_);
  Source src;
  src.name = std::move(name);
  src.baseline = fn();
  src.fn = std::move(fn);
  sources_.push_back(std::move(src));
}

std::size_t FlowObservatory::shard_count() const {
  const std::scoped_lock lock(mu_);
  return sources_.size();
}

void FlowObservatory::reset_baseline() {
  const std::scoped_lock lock(mu_);
  for (Source& src : sources_) src.baseline = src.fn();
  baseline_ns_ = options_.clock();
}

FlowReport FlowObservatory::report_locked() const {
  FlowReport rep;
  rep.top_k = options_.top_k;
  const u64 now = options_.clock();
  rep.wall_seconds =
      static_cast<double>(saturating_sub(now, baseline_ns_)) / 1e9;
  for (const Source& src : sources_) {
    FlowReport::Shard sh;
    sh.name = src.name;
    sh.d = src.fn();
    // Counters are reported as deltas against the baseline; the sketches
    // (top-K table, HLL registers) stay cumulative — they have no
    // subtraction — and the exemplar ring is filtered by timestamp.
    sh.d.packets = saturating_sub(sh.d.packets, src.baseline.packets);
    sh.d.bytes = saturating_sub(sh.d.bytes, src.baseline.bytes);
    sh.d.new_flows = saturating_sub(sh.d.new_flows, src.baseline.new_flows);
    for (std::size_t r = 0; r < kDropReasonCount; ++r) {
      sh.d.drops[r] = saturating_sub(sh.d.drops[r], src.baseline.drops[r]);
    }
    for (std::size_t g = 0; g < sh.d.graphs.size(); ++g) {
      if (g < src.baseline.graphs.size()) {
        const GraphFlowCounters& base = src.baseline.graphs[g];
        sh.d.graphs[g].traffic.packets = saturating_sub(
            sh.d.graphs[g].traffic.packets, base.traffic.packets);
        sh.d.graphs[g].traffic.bytes =
            saturating_sub(sh.d.graphs[g].traffic.bytes, base.traffic.bytes);
        sh.d.graphs[g].drops = saturating_sub(sh.d.graphs[g].drops,
                                              base.drops);
        sh.d.graphs[g].latency =
            hdr_delta(sh.d.graphs[g].latency, base.latency);
      }
    }
    std::erase_if(sh.d.exemplars, [this](const DropExemplar& e) {
      return e.when_ns < baseline_ns_;
    });
    rep.total += sh.d;
    rep.shards.push_back(std::move(sh));
  }
  // Shard sections render their local top-K depth; the merged table keeps
  // the largest per-shard capacity so the accuracy guarantee carries over.
  return rep;
}

FlowReport FlowObservatory::report() const {
  const std::scoped_lock lock(mu_);
  return report_locked();
}

void FlowObservatory::register_probes(TimeseriesCollector& collector) {
  // One report per collector tick, same contract as the latency
  // observatory: the first probe sampled inside a 200ms window refreshes
  // the shared cache (all probes run on the collector thread).
  std::shared_ptr<ProbeCache> cache = probe_cache_;
  auto refreshed = [this, cache]() -> const FlowReport& {
    const u64 now = options_.clock();
    if (cache->stamp_ns == 0 ||
        saturating_sub(now, cache->stamp_ns) > 200ull * 1000 * 1000) {
      cache->report = report();
      // flow_new_rate is the between-refresh derivative, not the lifetime
      // average: churny phases show up immediately.
      const u64 cur = cache->report.total.new_flows;
      if (cache->prev_stamp_ns != 0 && now > cache->prev_stamp_ns &&
          cur >= cache->prev_new_flows) {
        cache->new_flow_rate =
            static_cast<double>(cur - cache->prev_new_flows) * 1e9 /
            static_cast<double>(now - cache->prev_stamp_ns);
      } else {
        cache->new_flow_rate = 0;
      }
      cache->prev_new_flows = cur;
      cache->prev_stamp_ns = now;
      cache->stamp_ns = now;
    }
    return cache->report;
  };
  collector.add_probe("flows_active", {}, [refreshed] {
    return refreshed().flows_active();
  });
  collector.add_probe("flow_new_rate", {}, [refreshed, cache] {
    refreshed();
    return cache->new_flow_rate;
  });
  collector.add_probe("hh_top1_share", {}, [refreshed] {
    return refreshed().hh_top1_share();
  });
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    collector.add_probe(
        std::string("drops_") + kReasonNames[r] + "_total", {},
        [refreshed, r] {
          return static_cast<double>(refreshed().total.drops[r]);
        });
  }
}

}  // namespace nfp::telemetry

// Bounded multi-producer/multi-consumer queue (mutex-based).
//
// Used where multiple senders share one receiver outside the hot simulated
// path — e.g. several NF runtimes feeding the merger agent in the threaded
// stress tests. The deterministic simulator uses SpscRing for hot paths.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace nfp {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity = 4096) : capacity_(capacity) {}

  bool try_push(T value) {
    const std::scoped_lock lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    cv_.notify_one();
    return true;
  }

  std::optional<T> try_pop() {
    const std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  // Blocks until an item is available or `closed`.
  std::optional<T> pop_wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  void close() {
    const std::scoped_lock lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace nfp

// Chrome trace-event export of per-packet span timelines.
//
// Converts a Tracer's retained spans (the shared grammar emitted by the
// NFP, ONV and RTC planes) into the Chrome trace-event JSON format, so a
// run can be loaded into ui.perfetto.dev (or chrome://tracing) and read as
// a real timeline: one track per pipeline component (classifier, each NF
// instance, each merger, the TX link), one slice per stage a packet spent
// time in, and flow arrows from every parallel branch's NF-exit into the
// merge slice — the §5.3 merge-wait made visible as converging arrows.
//
// Mapping (trace-event "phases"):
//  * "X" complete slices: classify [inject → classify], copy, queue-wait,
//    NF service [nf-enter → nf-exit], merge [first arrival → complete],
//    tx [merge/exit → output]. Timestamps are simulated-time microseconds.
//  * "s"/"f" flow events: one arrow per merger arrival, from the sending
//    branch's service slice to the segment's merge slice.
//  * "i" instant events: drops.
//  * "M" metadata: process/thread names and a sort index that orders the
//    tracks pipeline-first (RX, classifier, copies, NFs, mergers, TX).
#pragma once

#include <string>

#include "telemetry/tracer.hpp"

namespace nfp::telemetry {

// Renders the full retained window as a Chrome trace JSON document:
// {"displayTimeUnit":"ns","traceEvents":[...]}.
std::string to_chrome_trace(const Tracer& tracer);

}  // namespace nfp::telemetry

# Empty dependencies file for nfp_tests.
# This may be replaced when dependencies are built.

// Tuple-space classifier: differential correctness against the retained
// linear scan, pruning edge cases, and the lock-free snapshot-swap read
// path under concurrent rule mutation (the TSan CI job runs this suite
// with -R TupleSpaceClassifier).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/live_classifier.hpp"
#include "dataplane/tuple_space_classifier.hpp"
#include "packet/headers.hpp"

namespace nfp {
namespace {

constexpr std::size_t kGraphs = 4;

// Random mask in one of three shapes: wildcard, contiguous prefix, or a
// non-contiguous bit soup (legal in a CtRule; must bypass trie pruning).
u32 random_mask(Rng& rng) {
  switch (rng.bounded(3)) {
    case 0:
      return 0;
    case 1: {
      const u32 len = static_cast<u32>(rng.range(1, 32));
      return 0xFFFFFFFFu << (32 - len);
    }
    default:
      return static_cast<u32>(rng.next());
  }
}

CtRule random_rule(Rng& rng) {
  CtRule r;
  r.src_mask = random_mask(rng);
  // Small address pools make rule/probe collisions (and thus interesting
  // overlaps) common instead of vanishingly rare.
  r.src_ip = 0x0A000000u | static_cast<u32>(rng.bounded(64));
  r.dst_mask = random_mask(rng);
  r.dst_ip = 0x0B000000u | static_cast<u32>(rng.bounded(64));
  r.match_src_port = rng.bounded(2) == 0;
  r.src_port = static_cast<u16>(1000 + rng.bounded(8));
  r.match_dst_port = rng.bounded(2) == 0;
  r.dst_port = static_cast<u16>(80 + rng.bounded(4));
  r.match_proto = rng.bounded(2) == 0;
  r.proto = rng.bounded(2) == 0 ? kProtoTcp : kProtoUdp;
  // Heavy priority collisions: the tie-break (earliest inserted wins) is
  // the part a tuple-space walk gets wrong most easily.
  r.priority = static_cast<int>(rng.bounded(4));
  switch (rng.bounded(16)) {
    case 0:
      r.graph = LiveClassificationTable::kDropGraph;
      break;
    case 1:
      r.graph = kGraphs + rng.bounded(10);  // out of range: clamps to 0
      break;
    default:
      r.graph = rng.bounded(kGraphs);
  }
  return r;
}

// Probe pool drawn from the same small address space as the rules, plus
// per-rule "fill the wildcards" hits so masked paths are exercised even
// when random draws would miss.
FiveTuple random_probe(Rng& rng) {
  FiveTuple t;
  t.src_ip = 0x0A000000u | static_cast<u32>(rng.bounded(64));
  t.dst_ip = 0x0B000000u | static_cast<u32>(rng.bounded(64));
  t.src_port = static_cast<u16>(1000 + rng.bounded(8));
  t.dst_port = static_cast<u16>(80 + rng.bounded(4));
  t.proto = rng.bounded(2) == 0 ? kProtoTcp : kProtoUdp;
  return t;
}

FiveTuple hit_probe(const CtRule& r, Rng& rng) {
  FiveTuple t;
  t.src_ip =
      (r.src_ip & r.src_mask) | (static_cast<u32>(rng.next()) & ~r.src_mask);
  t.dst_ip =
      (r.dst_ip & r.dst_mask) | (static_cast<u32>(rng.next()) & ~r.dst_mask);
  t.src_port =
      r.match_src_port ? r.src_port : static_cast<u16>(rng.bounded(65'536));
  t.dst_port =
      r.match_dst_port ? r.dst_port : static_cast<u16>(rng.bounded(65'536));
  t.proto = r.match_proto ? r.proto
                          : (rng.bounded(2) == 0 ? kProtoTcp : kProtoUdp);
  return t;
}

TEST(TupleSpaceClassifier, DifferentialFuzzMatchesLinearScan) {
  Rng rng(0xF00D);
  for (int round = 0; round < 20; ++round) {
    LiveClassificationTable tuple_table(kGraphs);
    LinearCtScan linear(kGraphs);
    std::vector<CtRule> rules;
    const std::size_t rule_count = 1 + rng.bounded(60);
    for (std::size_t i = 0; i < rule_count; ++i) {
      rules.push_back(random_rule(rng));
    }
    // Mix the two insertion paths: bulk for the bulk of it, singles after.
    const std::size_t split = rules.size() / 2;
    tuple_table.add_rules({rules.begin(), rules.begin() + split});
    for (std::size_t i = split; i < rules.size(); ++i) {
      tuple_table.add_rule(rules[i]);
    }
    for (const CtRule& r : rules) linear.add_rule(r);
    for (int e = 0; e < 4; ++e) {
      const FiveTuple f = random_probe(rng);
      const std::size_t g = rng.bounded(kGraphs + 2);  // may clamp
      tuple_table.add_exact(f, g);
      linear.add_exact(f, g);
    }

    for (int p = 0; p < 200; ++p) {
      const FiveTuple probe = random_probe(rng);
      ASSERT_EQ(tuple_table.classify(probe), linear.classify(probe))
          << "round " << round << " probe " << p;
    }
    for (const CtRule& r : rules) {
      const FiveTuple probe = hit_probe(r, rng);
      ASSERT_EQ(tuple_table.classify(probe), linear.classify(probe))
          << "round " << round << " hit-probe";
    }
  }
}

TEST(TupleSpaceClassifier, PriorityTieResolvesToEarliestInserted) {
  LiveClassificationTable ct(kGraphs);
  // Same priority, different mask signatures, both matching the probe: the
  // rule inserted first must win even though its tuple is walked later.
  CtRule wide;
  wide.src_ip = 0x0A000000;
  wide.src_mask = 0xFF000000;
  wide.priority = 5;
  wide.graph = 1;
  CtRule narrow;
  narrow.src_ip = 0x0A000005;
  narrow.src_mask = 0xFFFFFFFF;
  narrow.priority = 5;
  narrow.graph = 2;
  ct.add_rule(wide);
  ct.add_rule(narrow);
  EXPECT_EQ(ct.classify({0x0A000005, 0, 1, 2, kProtoTcp}), 1u);

  // Same signature and same masked key too: first insertion still wins.
  LiveClassificationTable ct2(kGraphs);
  CtRule a = wide;
  a.graph = 3;
  CtRule b = wide;
  b.graph = 2;
  ct2.add_rule(a);
  ct2.add_rule(b);
  EXPECT_EQ(ct2.classify({0x0A000005, 0, 1, 2, kProtoTcp}), 3u);
}

TEST(TupleSpaceClassifier, DropRuleVerdictSurvives) {
  LiveClassificationTable ct(kGraphs);
  CtRule scrub;
  scrub.src_ip = 0xCB007100;  // 203.0.113.0/24
  scrub.src_mask = 0xFFFFFF00;
  scrub.priority = 100;
  scrub.graph = LiveClassificationTable::kDropGraph;
  ct.add_rule(scrub);
  EXPECT_EQ(ct.classify({0xCB007142, 0, 1, 2, kProtoTcp}),
            LiveClassificationTable::kDropGraph);
  EXPECT_EQ(ct.classify({0xCB007242, 0, 1, 2, kProtoTcp}), 0u);
}

TEST(TupleSpaceClassifier, NonContiguousMasksBypassTriePruning) {
  LiveClassificationTable ct(kGraphs);
  // A mask with holes can't live in the prefix trie; the classifier must
  // still probe its tuple for every packet rather than wrongly pruning it.
  CtRule holes;
  holes.src_ip = 0x0A0000AA;
  holes.src_mask = 0x00FF00FF;  // non-contiguous
  holes.priority = 1;
  holes.graph = 2;
  ct.add_rule(holes);
  // These sources share no leading prefix with the rule's src_ip but do
  // match under the holey mask (masked value 0x000000AA in both).
  EXPECT_EQ(ct.classify({0xFF0012AA, 0, 1, 2, kProtoTcp}), 2u);
  EXPECT_EQ(ct.classify({0xDE00BEAA, 0, 1, 2, kProtoTcp}), 2u);
  // And one that does not (second byte breaks the masked equality).
  EXPECT_EQ(ct.classify({0xFF0112AA, 0, 1, 2, kProtoTcp}), 0u);
}

TEST(TupleSpaceClassifier, TupleCountTracksDistinctMaskSignatures) {
  LiveClassificationTable ct(kGraphs);
  EXPECT_EQ(ct.tuple_count(), 0u);
  CtRule r;
  r.src_ip = 0x0A000000;
  r.src_mask = 0xFF000000;
  ct.add_rule(r);
  r.src_ip = 0x0B000000;  // same signature, different value: same tuple
  ct.add_rule(r);
  EXPECT_EQ(ct.tuple_count(), 1u);
  r.src_mask = 0xFFFF0000;  // new mask: new tuple
  ct.add_rule(r);
  EXPECT_EQ(ct.tuple_count(), 2u);
  r.match_proto = true;  // same masks, new predicate flag: new tuple
  r.proto = kProtoTcp;
  ct.add_rule(r);
  EXPECT_EQ(ct.tuple_count(), 3u);

  const auto synth = synthetic_ct_rules(5'000, 7, kGraphs);
  LiveClassificationTable big(kGraphs);
  big.add_rules(synth);
  EXPECT_EQ(big.rule_entries(), 5'000u);
  // The whole point: tuple count stays tiny relative to rule count.
  EXPECT_LE(big.tuple_count(), 64u);
  EXPECT_GE(big.tuple_count(), 8u);
}

// The TSan workload: readers classify lock-free (direct and through a
// MicroflowCache) while the main thread keeps mutating rules. Any data
// race between snapshot publication, epoch pinning and reclamation shows
// up here; the final verdicts must also match a reference built from the
// same end-state rules.
TEST(TupleSpaceClassifier, ConcurrentClassifyMutateIsRaceFreeAndConverges) {
  constexpr int kReaders = 3;
  constexpr int kMutations = 60;
  LiveClassificationTable ct(kGraphs);
  LinearCtScan reference(kGraphs);

  Rng seed_rng(0xBEEF);
  std::vector<CtRule> all_rules;
  for (int i = 0; i < kMutations; ++i) all_rules.push_back(random_rule(seed_rng));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&ct, &stop, t] {
      Rng rng(100 + static_cast<u64>(t));
      MicroflowCache cache(ct, 128);
      u64 sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        cache.sync_generation();
        for (int i = 0; i < 64; ++i) {
          const FiveTuple probe = random_probe(rng);
          sink += ct.classify(probe);
          sink += cache.classify(probe);
        }
      }
      // Keep the compiler honest about the loop above.
      volatile u64 keep = sink;
      (void)keep;
    });
  }

  for (const CtRule& r : all_rules) {
    ct.add_rule(r);
    reference.add_rule(r);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();

  Rng rng(0xD1FF);
  for (int p = 0; p < 500; ++p) {
    const FiveTuple probe = random_probe(rng);
    EXPECT_EQ(ct.classify(probe), reference.classify(probe));
  }
}

}  // namespace
}  // namespace nfp

// nfp_cli: command-line front end to the orchestrator.
//
//   nfp_cli compile <policy-file>         compile and print the graph
//   nfp_cli tables <policy-file>          print the Fig-4 dataplane tables
//   nfp_cli dot <policy-file>             print Graphviz for the graph
//   nfp_cli plan <policy-file> [cores]    partition across servers (§7)
//   nfp_cli stats                         print the §4.3 pair statistics
//   nfp_cli run <policy-file> [options]   run traffic through the dataplane
//
// `run` options (telemetry):
//   --metrics          per-component utilization/latency report
//   --trace-every=N    trace every Nth packet; prints the first traced
//                      packet's span timeline
//   --json             metrics as JSON
//   --prometheus       metrics in Prometheus text format
//   --packets=N        packets to inject (default 2000)
//   --rate=PPS         injection rate (default 10000)
//   --size=BYTES       frame size (default 128)
//
// Policy files use the text format of src/policy/parser.hpp.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/partition.hpp"
#include "dataplane/nfp_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "orch/compiler.hpp"
#include "orch/pair_stats.hpp"
#include "orch/table_gen.hpp"
#include "policy/parser.hpp"
#include "telemetry/exporters.hpp"
#include "trafficgen/trafficgen.hpp"

namespace {

using namespace nfp;

int usage() {
  std::fprintf(stderr,
               "usage: nfp_cli compile|tables|dot|plan <policy-file> "
               "[cores]\n       nfp_cli stats\n"
               "       nfp_cli run <policy-file> [--metrics] "
               "[--trace-every=N] [--json]\n"
               "               [--prometheus] [--packets=N] [--rate=PPS] "
               "[--size=BYTES]\n");
  return 2;
}

// Parses `--name=value` into out; returns true when argv matches `name`.
bool flag_value(const char* arg, const char* name, u64* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

int run_dataplane(const ServiceGraph& graph, int argc, char** argv) {
  bool want_metrics = false;
  bool want_json = false;
  bool want_prometheus = false;
  u64 trace_every = 0;
  u64 packets = 2'000;
  u64 rate_pps = 10'000;
  u64 frame_size = 128;
  for (int i = 3; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics") == 0) {
      want_metrics = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      want_json = true;
    } else if (std::strcmp(arg, "--prometheus") == 0) {
      want_prometheus = true;
    } else if (flag_value(arg, "--trace-every", &trace_every) ||
               flag_value(arg, "--packets", &packets) ||
               flag_value(arg, "--rate", &rate_pps) ||
               flag_value(arg, "--size", &frame_size)) {
      // parsed into the matching variable
    } else {
      std::fprintf(stderr, "unknown run option '%s'\n", arg);
      return usage();
    }
  }

  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.trace_every = trace_every;
  // Pass-all firewalls: synthetic ACL rules would drop traffic-dependent
  // subsets of the flows and obscure the per-component view.
  cfg.factory = [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kPass);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name, static_cast<u64>(nf.instance_id) + 1);
  };
  NfpDataplane dp(sim, graph, std::move(cfg));

  TrafficConfig traffic;
  traffic.fixed_size = static_cast<std::size_t>(frame_size);
  traffic.rate_pps = static_cast<double>(rate_pps);
  traffic.packets = packets;
  traffic.metrics = &dp.metrics();
  TrafficGenerator gen(sim, dp.pool(), traffic);
  gen.start([&](Packet* p) { dp.inject(p); });
  sim.run();
  dp.snapshot_metrics();

  const DataplaneStats& stats = dp.stats();
  std::printf("ran %llu packets through '%s' (%s): delivered=%llu "
              "dropped_nf=%llu dropped_pool=%llu\n",
              static_cast<unsigned long long>(stats.injected),
              graph.name().c_str(), graph.structure().c_str(),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped_by_nf),
              static_cast<unsigned long long>(stats.dropped_pool));
  if (want_metrics) {
    std::printf("\n%s", telemetry::component_report(dp.metrics()).c_str());
  }
  if (want_prometheus) {
    std::printf("\n%s", telemetry::to_prometheus(dp.metrics()).c_str());
  }
  if (want_json) {
    std::printf("%s\n", telemetry::to_json(dp.metrics()).c_str());
  }
  if (dp.tracer() != nullptr) {
    const auto pids = dp.tracer()->pids();
    if (pids.empty()) {
      std::printf("\ntracer retained no spans\n");
    } else {
      std::printf("\n%s", dp.tracer()->timeline(pids.front()).c_str());
      std::printf("(%llu spans recorded over %zu traced packets; "
                  "`--trace-every=%llu`)\n",
                  static_cast<unsigned long long>(dp.tracer()->recorded()),
                  pids.size(),
                  static_cast<unsigned long long>(dp.tracer()->every()));
    }
  }
  return 0;
}

Result<ServiceGraph> load_and_compile(const std::string& path,
                                      CompileReport* report) {
  std::ifstream in(path);
  if (!in) {
    return Result<ServiceGraph>::error("cannot read '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto policy = parse_policy(buffer.str());
  if (!policy) return Result<ServiceGraph>::error(policy.error());
  const ActionTable table = ActionTable::with_builtin_nfs();
  return compile_policy(policy.value(), table, {}, report);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "stats") {
    const ActionTable table = ActionTable::with_builtin_nfs();
    const PairStats stats = compute_pair_stats(table);
    std::printf("%s", pair_stats_table(stats).c_str());
    return 0;
  }

  if (argc < 3) return usage();
  CompileReport report;
  auto graph = load_and_compile(argv[2], &report);
  if (!graph) {
    std::fprintf(stderr, "error: %s\n", graph.error().c_str());
    return 1;
  }
  for (const auto& warning : report.warnings) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }

  if (command == "compile") {
    std::printf("%s", graph.value().to_string().c_str());
    for (const auto& d : report.decisions) {
      std::printf("  %s | %s -> %s\n", d.nf1.c_str(), d.nf2.c_str(),
                  std::string(pair_parallelism_name(d.verdict)).c_str());
    }
    return 0;
  }
  if (command == "tables") {
    std::printf("%s", tables_to_string(generate_tables(graph.value())).c_str());
    return 0;
  }
  if (command == "dot") {
    std::printf("%s", graph.value().to_dot().c_str());
    return 0;
  }
  if (command == "run") {
    return run_dataplane(graph.value(), argc, argv);
  }
  if (command == "plan") {
    cluster::PartitionOptions options;
    if (argc > 3) {
      options.cores_per_server =
          static_cast<std::size_t>(std::stoul(argv[3]));
    }
    const auto plan = cluster::partition_graph(graph.value(), options);
    if (!plan) {
      std::fprintf(stderr, "error: %s\n", plan.error().c_str());
      return 1;
    }
    std::printf("%s", cluster::plan_to_string(graph.value(), plan.value()).c_str());
    return 0;
  }
  return usage();
}

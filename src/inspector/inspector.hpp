// The NF action inspector (paper §5.4).
//
// "NFP provides an inspection tool for operators that can inspect NF codes
// to find the usage of interfaces that operate on packets, including
// reading, writing, dropping and adding/removing bits. Operators can run
// the inspector against their NF code to automatically generate an action
// profile, which can be registered into NFP."
//
// Our packets are accessed exclusively through PacketView, so the inspector
// instruments the view with an ActionRecorder and replays a battery of
// deterministic sample packets (mixed sizes, protocols and 5-tuples)
// through the NF, unioning the observed actions. Drops are observed from
// the returned verdicts.
#pragma once

#include "actions/action_table.hpp"
#include "actions/profile.hpp"
#include "nfs/nf.hpp"

namespace nfp {

struct InspectionOptions {
  std::size_t sample_packets = 256;
  u64 seed = 7;
};

// Runs `nf` over sample traffic and returns the observed action profile.
ActionProfile inspect_nf(NetworkFunction& nf,
                         const InspectionOptions& options = {});

// Inspects and registers the NF into the action table under its type name,
// the §5.4 onboarding flow for a new NF.
void register_inspected_nf(ActionTable& table, NetworkFunction& nf,
                           double deployment_share = 0.0,
                           const InspectionOptions& options = {});

// Compares an observed profile against a declared one. Returns a
// human-readable list of discrepancies (empty = consistent). Observing
// *fewer* actions than declared is reported too: a declared action the
// inspector never sees may still occur on traffic outside the sample set,
// so it is phrased as "unobserved", not "wrong".
std::vector<std::string> diff_profiles(const ActionProfile& observed,
                                       const ActionProfile& declared);

}  // namespace nfp

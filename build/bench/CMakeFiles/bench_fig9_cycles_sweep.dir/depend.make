# Empty dependencies file for bench_fig9_cycles_sweep.
# This may be replaced when dependencies are built.

// Tests for the dataplane table generation (paper Fig 4).
#include <gtest/gtest.h>

#include "orch/compiler.hpp"
#include "orch/table_gen.hpp"
#include "policy/parser.hpp"

namespace nfp {
namespace {

ServiceGraph compile(const std::string& text) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto graph = compile_policy(parse_policy(text).value(), table);
  EXPECT_TRUE(graph.is_ok()) << graph.error();
  return std::move(graph).take();
}

TEST(TableGen, SequentialChainTables) {
  const DataplaneTables t =
      generate_tables(ServiceGraph::sequential("s", {"monitor", "lb"}));
  ASSERT_EQ(t.ct.size(), 1u);
  EXPECT_EQ(t.ct[0].total_count, 1u);
  ASSERT_EQ(t.ct[0].actions.size(), 1u);
  EXPECT_NE(t.ct[0].actions[0].find("distribute(v1, monitor#"),
            std::string::npos);
  // Last NF outputs; first forwards to the second.
  ASSERT_EQ(t.ft.size(), 2u);
  EXPECT_NE(t.ft[0].actions[0].find("distribute(v1, lb#"), std::string::npos);
  EXPECT_EQ(t.ft[1].actions[0], "output(v1)");
}

TEST(TableGen, WestEastTablesShowCopyAndMergeOps) {
  const DataplaneTables t =
      generate_tables(compile("policy we\nchain(ids, monitor, lb)"),
                      "10.0.0.1");
  ASSERT_EQ(t.ct.size(), 1u);
  const CtEntry& ct = t.ct[0];
  EXPECT_EQ(ct.match, "10.0.0.1");
  EXPECT_EQ(ct.total_count, 3u);
  // Entry actions: one header copy, two distributes (v1 pair + v2 single).
  bool has_copy = false, dist_v1 = false, dist_v2 = false;
  for (const auto& a : ct.actions) {
    has_copy |= a.find("copy(v1, v2)") != std::string::npos;
    dist_v1 |= a.find("distribute(v1, [") != std::string::npos;
    dist_v2 |= a.find("distribute(v2, [") != std::string::npos;
  }
  EXPECT_TRUE(has_copy);
  EXPECT_TRUE(dist_v1);
  EXPECT_TRUE(dist_v2);
  // The merge ops take the LB's rewritten addresses from v2.
  bool sip_op = false;
  for (const auto& mo : ct.merge_ops) {
    sip_op |= mo == "modify(v1.sip, v2.sip)";
  }
  EXPECT_TRUE(sip_op);
  // Each parallel NF forwards to the merger; the firewall-less graph has no
  // drop annotations, but the merger entry must exist and output.
  bool merger_entry = false;
  for (const FtEntry& e : t.ft) {
    if (e.nf == "Merger") {
      merger_entry = true;
      EXPECT_EQ(e.actions.back(), "output(v1)");
    }
  }
  EXPECT_TRUE(merger_entry);
}

TEST(TableGen, AhSyncRendersLikePaperFig6) {
  // NIDS ∥ VPN-style graphs produce add(vK.AH, after, v1.IP) operations
  // when the AH carrier is not version 1; craft one directly.
  MergeOp op{MergeOp::Kind::kSyncAh, 2, Field::kAhHeader};
  EXPECT_EQ(merge_op_to_string(op), "add(v2.AH, after, v1.IP)");
  MergeOp mod{MergeOp::Kind::kModify, 3, Field::kDstPort};
  EXPECT_EQ(merge_op_to_string(mod), "modify(v1.dport, v3.dport)");
}

TEST(TableGen, DropCapableParallelNfsGetNilAnnotation) {
  const DataplaneTables t =
      generate_tables(compile("policy mf\nchain(monitor, firewall)"));
  bool nil_noted = false;
  for (const FtEntry& e : t.ft) {
    for (const auto& a : e.actions) {
      nil_noted |= a.find("nil") != std::string::npos;
    }
  }
  EXPECT_TRUE(nil_noted) << "the firewall can drop; its FT notes the nil "
                            "packet path";
}

TEST(TableGen, RenderingIsReadable) {
  const std::string text = tables_to_string(
      generate_tables(compile("policy we\nchain(ids, monitor, lb)")));
  EXPECT_NE(text.find("Classification Table"), std::string::npos);
  EXPECT_NE(text.find("Forwarding Tables"), std::string::npos);
  EXPECT_NE(text.find("Merger"), std::string::npos);
}

TEST(TableGen, MidsPropagateToEntries) {
  ServiceGraph g = compile("policy ns\nchain(vpn, monitor, firewall, lb)");
  const DataplaneTables t = generate_tables(g);
  EXPECT_EQ(t.ct[0].mid, g.segments()[0].mid);
  // Every FT entry's MID belongs to some segment of the graph.
  for (const FtEntry& e : t.ft) {
    bool found = false;
    for (const Segment& seg : g.segments()) found |= seg.mid == e.mid;
    EXPECT_TRUE(found) << e.nf << " mid " << e.mid;
  }
}

}  // namespace
}  // namespace nfp

// Tests for the scalability profiler: the cycle-accountant's exact
// wall-time partition, synthetic and live attribution reports (per-shard
// bucket shares summing to 100% of accounted shard-seconds), the JSON
// schema, the /scalability.json loopback endpoint, honest hardware-counter
// fallback, and the timeseries probes. The concurrent-scrape test doubles
// as the TSan workload for report() against a running dataplane.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "dataplane/sharded_dataplane.hpp"
#include "orch/compiler.hpp"
#include "packet/builder.hpp"
#include "policy/policy.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scalability_profiler.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/timeseries.hpp"

namespace nfp {
namespace {

using telemetry::CycleAccountant;
using telemetry::CycleBucket;
using telemetry::CycleCounters;
using telemetry::kCycleBucketCount;
using telemetry::ScalabilityProfiler;
using telemetry::ScalabilityProfilerOptions;
using telemetry::ScalabilityReport;
using telemetry::ShardScalabilitySnapshot;

ServiceGraph compile_chain(const std::vector<std::string>& chain) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto g =
      compile_policy(Policy::from_sequential_chain("scal", chain), table);
  EXPECT_TRUE(g.is_ok()) << g.error();
  return std::move(g).take();
}

std::vector<std::vector<u8>> make_flow_frames(std::size_t count,
                                              std::size_t flows) {
  PacketPool pool(4);
  std::vector<std::vector<u8>> frames;
  for (std::size_t i = 0; i < count; ++i) {
    PacketSpec spec;
    spec.tuple = FiveTuple{0x0A500000 + static_cast<u32>(i % flows),
                           0x0A600001, static_cast<u16>(30'000 + i % flows),
                           443, kProtoTcp};
    spec.frame_size = 64 + (i % 4) * 64;
    Packet* p = build_packet(pool, spec);
    frames.emplace_back(p->data(), p->data() + p->length());
    pool.release(p);
  }
  return frames;
}

// Blocks until every fed frame has been delivered or dropped.
void wait_until_done(ShardedDataplane& dp, std::size_t expected) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  u64 done = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    done = 0;
    for (std::size_t s = 0; s < dp.shard_count(); ++s) {
      done += dp.shard_delivered(s) + dp.shard_dropped(s);
    }
    if (done >= expected) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "dataplane stuck: " << done << "/" << expected << " frames";
}

// --- cycle accountant ---------------------------------------------------

TEST(ScalabilityProfilerTest, CycleAccountantPartitionsWallTime) {
  CycleCounters c;
  CycleAccountant acct(&c, 1'000);
  acct.lap(1'400, CycleBucket::kUseful);  // 400ns useful
  // A wait measured inline inside the next iteration: credited to its own
  // bucket and carved out of the enclosing useful lap.
  acct.carve(CycleBucket::kRingWait, 150);
  acct.lap(1'900, CycleBucket::kUseful);  // 500ns span, 350 useful

  EXPECT_EQ(c.get(CycleBucket::kUseful), 750u);
  EXPECT_EQ(c.get(CycleBucket::kRingWait), 150u);
  u64 sum = 0;
  for (std::size_t b = 0; b < kCycleBucketCount; ++b) {
    sum += c.get(static_cast<CycleBucket>(b));
  }
  EXPECT_EQ(sum, 900u) << "buckets must partition the 1000..1900 window";
}

TEST(ScalabilityProfilerTest, CycleAccountantCarveSaturates) {
  // A carve larger than the enclosing lap (clock granularity) must not
  // wrap the lap negative — the lap clamps to zero and the overshoot is
  // the documented source of the ±2% attribution tolerance.
  CycleCounters c;
  CycleAccountant acct(&c, 0);
  acct.carve(CycleBucket::kPoolWait, 600);
  acct.lap(100, CycleBucket::kUseful);
  EXPECT_EQ(c.get(CycleBucket::kUseful), 0u);
  EXPECT_EQ(c.get(CycleBucket::kPoolWait), 600u);
}

TEST(ScalabilityProfilerTest, NullSinkDisablesAccounting) {
  CycleAccountant acct(nullptr, 0);
  EXPECT_FALSE(acct.enabled());
  acct.carve(CycleBucket::kRingWait, 10);
  acct.lap(100, CycleBucket::kUseful);  // must not crash
}

TEST(ScalabilityProfilerTest, SnapshotDeltaSaturates) {
  ShardScalabilitySnapshot then;
  then.ns[0] = 500;
  then.pool_cas_retries = 9;
  ShardScalabilitySnapshot now;
  now.ns[0] = 300;  // restarted counter: below the baseline
  now.pool_cas_retries = 4;
  const ShardScalabilitySnapshot d = telemetry::snapshot_delta(now, then);
  EXPECT_EQ(d.ns[0], 0u);
  EXPECT_EQ(d.pool_cas_retries, 0u);
}

// --- synthetic reports --------------------------------------------------

TEST(ScalabilityProfilerTest, SyntheticSharesSumToOne) {
  u64 clock = 0;
  ScalabilityProfilerOptions opt;
  opt.enable_hw = false;
  opt.clock = [&clock] { return clock; };

  ShardScalabilitySnapshot snap;
  ScalabilityProfiler prof(opt);
  prof.add_shard("s0", [&snap] { return snap; });

  snap.ns = {600'000'000, 200'000'000, 100'000'000,
             50'000'000,  25'000'000,  25'000'000};
  snap.delivered = 1'000;
  snap.threads = 2;
  clock = 2'000'000'000;  // 2s wall

  const ScalabilityReport rep = prof.report();
  ASSERT_EQ(rep.shards.size(), 1u);
  const ScalabilityReport::Shard& sh = rep.shards[0];
  EXPECT_EQ(sh.name, "s0");
  double sum = 0;
  for (const double s : sh.share) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(sh.accounted_seconds, 1.0, 1e-9);
  EXPECT_NEAR(rep.wall_seconds, 2.0, 1e-9);
  EXPECT_NEAR(sh.pps, 500.0, 1e-6);  // 1000 delivered / 2s wall
  EXPECT_NEAR(sh.projected_pps, 500.0 / 0.6, 1e-6);
  // Starved (0.2 share) is idle, not contention: the top contention
  // source is the largest genuine wait bucket — ring_wait at 0.1.
  EXPECT_EQ(rep.top_contention_source(), "ring_wait");
  EXPECT_EQ(rep.hw.source, "software-proxy");
}

TEST(ScalabilityProfilerTest, BaselineResetZeroesTheDelta) {
  u64 clock = 0;
  ScalabilityProfilerOptions opt;
  opt.enable_hw = false;
  opt.clock = [&clock] { return clock; };

  ShardScalabilitySnapshot snap;
  snap.ns[0] = 400;
  snap.delivered = 77;
  ScalabilityProfiler prof(opt);
  prof.add_shard("s0", [&snap] { return snap; });

  clock = 1'000'000'000;
  prof.reset_baseline();
  const ScalabilityReport rep = prof.report();
  ASSERT_EQ(rep.shards.size(), 1u);
  EXPECT_EQ(rep.shards[0].d.accounted_ns(), 0u);
  EXPECT_EQ(rep.shards[0].d.delivered, 0u);
}

TEST(ScalabilityProfilerTest, JsonSchemaParses) {
  u64 clock = 0;
  ScalabilityProfilerOptions opt;
  opt.enable_hw = false;
  opt.clock = [&clock] { return clock; };

  ShardScalabilitySnapshot snap;
  ScalabilityProfiler prof(opt);
  prof.add_shard("shard0", [&snap] { return snap; });
  snap.ns = {80, 10, 5, 3, 1, 1};
  snap.delivered = 42;
  snap.ring_full_events = 7;
  clock = 1'000'000'000;

  const auto doc = json::Value::parse(prof.to_json());
  ASSERT_TRUE(doc.is_ok()) << doc.error();
  const json::Value& root = doc.value();
  EXPECT_GT(root.number_or("wall_seconds", 0), 0.0);
  const json::Value* shards = root.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->items().size(), 1u);
  const json::Value& sh = shards->items()[0];
  EXPECT_EQ(std::string(sh.string_or("name", "")), "shard0");
  const json::Value* shares = sh.find("shares");
  ASSERT_NE(shares, nullptr);
  double sum = 0;
  for (const char* bucket : {"useful", "starved", "ring_wait", "pool_wait",
                             "merge_wait", "classifier_miss"}) {
    const double share = shares->number_or(bucket, -1);
    EXPECT_GE(share, 0.0) << bucket << " missing from shares";
    sum += share;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
  const json::Value* events = sh.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->number_or("ring_full_events", 0), 7.0);
  const json::Value* hw = root.find("hw");
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(std::string(hw->string_or("source", "")), "software-proxy");
  EXPECT_NE(root.find("total"), nullptr);
}

TEST(ScalabilityProfilerTest, HwSourceIsHonest) {
  // Default options attempt perf_event_open. Whatever the kernel decides,
  // the report must say so: either real hardware numbers or an explicit
  // software-proxy fallback with the reason — never fabricated values.
  ScalabilityProfiler prof;
  const ScalabilityReport rep = prof.report();
  if (rep.hw.source == "perf_event") {
    SUCCEED();
  } else {
    EXPECT_EQ(rep.hw.source, "software-proxy");
    EXPECT_FALSE(rep.hw.detail.empty())
        << "fallback must carry the perf_event_open failure reason";
  }
}

// --- live dataplane attribution -----------------------------------------

TEST(ScalabilityProfilerTest, LiveAttributionSumsToAccountedTime) {
  const auto frames = make_flow_frames(4'000, 32);
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"monitor", "lb"})}, {}, opts);

  ScalabilityProfilerOptions popt;
  popt.enable_hw = false;
  ScalabilityProfiler prof(popt);
  dp.register_scalability(prof);
  ASSERT_EQ(prof.shard_count(), 2u);

  ASSERT_TRUE(dp.start().is_ok());
  prof.reset_baseline();
  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, frames.size());
  // Let the loops accumulate some explicitly idle (starved) time too, so
  // the partition is tested across busy and idle regimes.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const ScalabilityReport rep = prof.report();
  const ShardedResult res = dp.drain();
  ASSERT_TRUE(res.status.is_ok());

  EXPECT_EQ(rep.total.delivered + rep.total.dropped, frames.size());
  ASSERT_EQ(rep.shards.size(), 2u);
  for (const ScalabilityReport::Shard& sh : rep.shards) {
    ASSERT_GT(sh.d.accounted_ns(), 0u) << sh.name;
    ASSERT_GT(sh.d.threads, 0u) << sh.name;
    // The acceptance invariant: bucket shares partition the accounted
    // shard-seconds (100 ± 2%).
    double sum = 0;
    for (const double s : sh.share) sum += s;
    EXPECT_NEAR(sum, 1.0, 0.02) << sh.name;
    // And the accounted time itself tracks wall-time x threads: never
    // meaningfully more (nothing is double-counted), and not wildly less
    // (each loop closes an interval every iteration; the only gap is each
    // thread's tail since its last lap, which scheduler noise on loaded
    // CI runners can stretch — hence the loose lower bound). The +1 in
    // the upper bound is the director: its pool/ring waits are booked to
    // the shard that stalled it, but the director thread itself is not in
    // `threads` (one director serves every shard).
    const double per_thread = rep.wall_seconds;
    EXPECT_LE(sh.accounted_seconds,
              per_thread * static_cast<double>(sh.d.threads + 1) * 1.05)
        << sh.name;
    EXPECT_GE(sh.accounted_seconds,
              per_thread * static_cast<double>(sh.d.threads) * 0.50)
        << sh.name;
  }
  // The fold across shards preserves the partition.
  double total_sum = 0;
  for (const double s : rep.total_share) total_sum += s;
  EXPECT_NEAR(total_sum, 1.0, 0.02);
}

TEST(ScalabilityProfilerTest, ServesScalabilityJsonOverLoopback) {
  const auto frames = make_flow_frames(500, 8);
  ShardedDataplaneOptions opts;
  opts.shards = 1;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);

  ScalabilityProfilerOptions popt;
  popt.enable_hw = false;
  ScalabilityProfiler prof(popt);
  dp.register_scalability(prof);
  ASSERT_TRUE(dp.start().is_ok());
  prof.reset_baseline();

  telemetry::StatsServer server;
  telemetry::EndpointSources sources;
  sources.scalability = &prof;
  telemetry::register_standard_endpoints(server, sources);
  ASSERT_TRUE(server.start({}).is_ok());

  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, frames.size());

  const auto res = telemetry::http_get(server.port(), "/scalability.json");
  ASSERT_TRUE(res.is_ok()) << res.error();
  EXPECT_EQ(res.value().status, 200);
  EXPECT_EQ(res.value().content_type, "application/json");
  const auto doc = json::Value::parse(res.value().body);
  ASSERT_TRUE(doc.is_ok()) << doc.error();
  const json::Value* shards = doc.value().find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->items().size(), 1u);
  // The live endpoint serves the same data report() folds: the delivered
  // count must match what the dataplane processed by scrape time.
  EXPECT_GE(shards->items()[0].number_or("delivered", 0), 1.0);

  server.stop();
  const ShardedResult drained = dp.drain();
  EXPECT_TRUE(drained.status.is_ok());
}

TEST(ScalabilityProfilerTest, ConcurrentScrapeIsRaceFree) {
  // TSan workload: report()/to_json() hammered from several threads while
  // the dataplane runs and the director feeds — every counter the
  // callbacks read is written concurrently by the hot path.
  const auto frames = make_flow_frames(2'000, 16);
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"monitor", "lb"})}, {}, opts);

  ScalabilityProfilerOptions popt;
  popt.enable_hw = false;
  ScalabilityProfiler prof(popt);
  dp.register_scalability(prof);
  ASSERT_TRUE(dp.start().is_ok());
  prof.reset_baseline();

  std::atomic<bool> feeding{true};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&prof, &feeding] {
      while (feeding.load(std::memory_order_acquire)) {
        const ScalabilityReport rep = prof.report();
        ASSERT_FALSE(rep.to_json().empty());
      }
    });
  }
  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, frames.size());
  feeding.store(false, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();

  // Report before drain(): drain moves the delivered frames out of the
  // pipelines, so post-drain snapshots legitimately read zero delivered.
  const ScalabilityReport final_rep = prof.report();
  EXPECT_EQ(final_rep.total.delivered + final_rep.total.dropped,
            frames.size());
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
}

// --- timeseries probes --------------------------------------------------

TEST(ScalabilityProfilerTest, ProbesPublishPerShardShares) {
  u64 clock = 0;
  ScalabilityProfilerOptions opt;
  opt.enable_hw = false;
  opt.clock = [&clock] { return clock; };

  ShardScalabilitySnapshot snap;
  ScalabilityProfiler prof(opt);
  prof.add_shard("s0", [&snap] { return snap; });
  snap.ns = {600, 400, 0, 0, 0, 0};
  snap.delivered = 10;
  clock = 1'000'000'000;

  telemetry::MetricsRegistry registry;
  u64 ts_clock = 1;
  telemetry::TimeseriesOptions topt;
  topt.clock = [&ts_clock] { return ts_clock; };
  telemetry::TimeseriesCollector collector(registry, topt);
  prof.register_probes(collector);
  collector.sample_once();

  const auto useful =
      collector.history("scalability_useful_share", {{"shard", "s0"}});
  ASSERT_EQ(useful.size(), 1u);
  EXPECT_NEAR(useful.back().value, 0.6, 1e-9);
  const auto starved =
      collector.history("scalability_starved_share", {{"shard", "s0"}});
  ASSERT_EQ(starved.size(), 1u);
  EXPECT_NEAR(starved.back().value, 0.4, 1e-9);
  const auto projected =
      collector.history("scalability_projected_pps", {{"shard", "s0"}});
  ASSERT_EQ(projected.size(), 1u);
  EXPECT_GT(projected.back().value, 0.0);
}

}  // namespace
}  // namespace nfp

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_openbox.dir/bench_fig15_openbox.cpp.o"
  "CMakeFiles/bench_fig15_openbox.dir/bench_fig15_openbox.cpp.o.d"
  "bench_fig15_openbox"
  "bench_fig15_openbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_openbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "cluster/partition.hpp"

#include <sstream>

namespace nfp::cluster {

Result<std::vector<ServerPlan>> partition_graph(
    const ServiceGraph& graph, const PartitionOptions& options) {
  using R = Result<std::vector<ServerPlan>>;
  if (options.cores_per_server <= options.infra_cores) {
    return R::error("cores_per_server must exceed infra_cores");
  }
  const std::size_t nf_capacity =
      options.cores_per_server - options.infra_cores;

  std::vector<ServerPlan> plan;
  ServerPlan current;
  current.infra_cores = options.infra_cores;

  const auto& segments = graph.segments();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::size_t nfs = segments[i].nfs.size();
    if (nfs > nf_capacity) {
      return R::error("segment " + std::to_string(i) + " needs " +
                      std::to_string(nfs) + " NF cores; a server offers " +
                      std::to_string(nf_capacity));
    }
    if (current.nf_cores + nfs > nf_capacity) {
      current.egress_mid = segments[i].mid;
      plan.push_back(std::move(current));
      current = ServerPlan{};
      current.infra_cores = options.infra_cores;
    }
    current.segments.push_back(i);
    current.nf_cores += nfs;
  }
  if (!current.segments.empty()) plan.push_back(std::move(current));
  if (plan.empty()) return R::error("graph has no segments");
  return plan;
}

std::string plan_to_string(const ServiceGraph& graph,
                           const std::vector<ServerPlan>& plan) {
  std::ostringstream out;
  out << "deployment of graph '" << graph.name() << "' across " << plan.size()
      << " server(s):\n";
  for (std::size_t s = 0; s < plan.size(); ++s) {
    const ServerPlan& server = plan[s];
    out << "  server " << s << " (" << server.nf_cores << " NF cores + "
        << server.infra_cores << " infra): ";
    for (const std::size_t idx : server.segments) {
      const Segment& seg = graph.segments()[idx];
      out << "[";
      for (std::size_t k = 0; k < seg.nfs.size(); ++k) {
        if (k > 0) out << "|";
        out << seg.nfs[k].name;
      }
      out << "] ";
    }
    if (s + 1 < plan.size()) {
      out << "--NSH mid=" << server.egress_mid << "--> server " << s + 1;
    }
    out << "\n";
  }
  return out.str();
}

double inter_server_copies_per_packet(const ServiceGraph& graph,
                                      const std::vector<ServerPlan>& plan) {
  (void)graph;
  // Cuts are only made at segment boundaries, where the merger has already
  // collapsed all versions into one packet.
  return plan.size() > 1 ? 1.0 : 0.0;
}

}  // namespace nfp::cluster

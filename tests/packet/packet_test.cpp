// Unit tests for the packet buffer, metadata word, pool and builder.
#include <gtest/gtest.h>

#include "packet/builder.hpp"
#include "packet/packet.hpp"
#include "packet/packet_pool.hpp"
#include "packet/packet_view.hpp"

namespace nfp {
namespace {

TEST(Metadata, PacksAndUnpacksAllFields) {
  Metadata m;
  m.set_mid(0x12345);
  m.set_pid(0x12'3456'789AULL);
  m.set_version(0xD);
  EXPECT_EQ(m.mid(), 0x12345u);
  EXPECT_EQ(m.pid(), 0x12'3456'789AULL);
  EXPECT_EQ(m.version(), 0xD);
}

TEST(Metadata, FieldsAreIndependent) {
  Metadata m;
  m.set_mid(Metadata::kMaxMid);
  m.set_pid(Metadata::kMaxPid);
  m.set_version(Metadata::kMaxVersion);
  m.set_pid(7);
  EXPECT_EQ(m.mid(), Metadata::kMaxMid);
  EXPECT_EQ(m.pid(), 7u);
  EXPECT_EQ(m.version(), Metadata::kMaxVersion);
  m.set_mid(0);
  EXPECT_EQ(m.pid(), 7u);
  EXPECT_EQ(m.version(), Metadata::kMaxVersion);
}

TEST(Metadata, TruncatesToBitWidths) {
  Metadata m;
  m.set_mid(0xFFFFFFFF);
  EXPECT_EQ(m.mid(), Metadata::kMaxMid);
  m.set_version(0xFF);
  EXPECT_EQ(m.version(), 0xF);
}

TEST(PacketPool, AllocateReleaseCycle) {
  PacketPool pool(4);
  EXPECT_EQ(pool.available(), 4u);
  Packet* a = pool.alloc(100);
  Packet* b = pool.alloc(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.in_use(), 2u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketPool, ExhaustionReturnsNull) {
  PacketPool pool(2);
  Packet* a = pool.alloc();
  Packet* b = pool.alloc();
  EXPECT_EQ(pool.alloc(), nullptr);
  pool.release(a);
  EXPECT_NE(pool.alloc(), nullptr);
  pool.release(b);
}

TEST(PacketPool, RefCountingDelaysReuse) {
  PacketPool pool(1);
  Packet* p = pool.alloc(64);
  pool.add_ref(p);
  EXPECT_EQ(p->ref_count(), 2);
  pool.release(p);
  EXPECT_EQ(pool.alloc(), nullptr) << "still referenced";
  pool.release(p);
  EXPECT_NE(pool.alloc(), nullptr);
}

TEST(Packet, PrependAndTrim) {
  PacketPool pool(1);
  Packet* p = pool.alloc(100);
  const u8* orig = p->data();
  u8* front = p->prepend(24);
  EXPECT_EQ(front + 24, orig);
  EXPECT_EQ(p->length(), 124u);
  p->trim_front(24);
  EXPECT_EQ(p->data(), orig);
  EXPECT_EQ(p->length(), 100u);
  pool.release(p);
}

TEST(Packet, InsertShiftsLeadingBytes) {
  PacketPool pool(1);
  Packet* p = pool.alloc(8);
  for (u8 i = 0; i < 8; ++i) p->data()[i] = i;
  u8* gap = p->insert(4, 2);
  gap[0] = 0xAA;
  gap[1] = 0xBB;
  EXPECT_EQ(p->length(), 10u);
  const u8 expect[] = {0, 1, 2, 3, 0xAA, 0xBB, 4, 5, 6, 7};
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(p->data()[i], expect[i]) << i;
  p->erase(4, 2);
  for (u8 i = 0; i < 8; ++i) EXPECT_EQ(p->data()[i], i) << int(i);
  pool.release(p);
}

TEST(Builder, ProducesValidTcpFrame) {
  PacketPool pool(4);
  PacketSpec spec;
  spec.frame_size = 128;
  Packet* p = build_packet(pool, spec);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->length(), 128u);

  PacketView v(*p);
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.src_ip(), spec.tuple.src_ip);
  EXPECT_EQ(v.dst_ip(), spec.tuple.dst_ip);
  EXPECT_EQ(v.src_port(), spec.tuple.src_port);
  EXPECT_EQ(v.dst_port(), spec.tuple.dst_port);
  EXPECT_EQ(v.protocol(), kProtoTcp);
  EXPECT_TRUE(v.verify_ip_checksum());
  pool.release(p);
}

TEST(Builder, ProducesValidUdpFrame) {
  PacketPool pool(4);
  PacketSpec spec;
  spec.tuple.proto = kProtoUdp;
  spec.frame_size = 200;
  Packet* p = build_packet(pool, spec);
  ASSERT_NE(p, nullptr);
  PacketView v(*p);
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.protocol(), kProtoUdp);
  EXPECT_EQ(v.payload_offset(),
            kEthHeaderLen + kIpv4HeaderLen + kUdpHeaderLen);
  pool.release(p);
}

TEST(Builder, MinimumFrameSizeIs64) {
  PacketPool pool(1);
  PacketSpec spec;
  spec.frame_size = 10;
  Packet* p = build_packet(pool, spec);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->length(), 64u);
  pool.release(p);
}

TEST(Builder, PayloadBytesAreWritten) {
  PacketPool pool(1);
  PacketSpec spec;
  spec.frame_size = 96;
  const u8 payload[] = {1, 2, 3, 4, 5};
  Packet* p = build_packet_with_payload(pool, spec, payload);
  ASSERT_NE(p, nullptr);
  PacketView v(*p);
  auto body = v.payload();
  ASSERT_GE(body.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(body[i], payload[i]);
  EXPECT_EQ(body[5], 0) << "padded with zeros";
  pool.release(p);
}

TEST(HeaderOnlyCopy, CopiesHeadersAndFixesLength) {
  PacketPool pool(2);
  PacketSpec spec;
  spec.frame_size = 1000;
  Packet* orig = build_packet(pool, spec);
  ASSERT_NE(orig, nullptr);

  Packet* copy = pool.clone_header_only(*orig);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->length(), kHeaderCopyBytes);
  EXPECT_EQ(copy->meta().pid(), orig->meta().pid());

  PacketView v(*copy);
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.src_ip(), spec.tuple.src_ip);
  EXPECT_EQ(v.dst_port(), spec.tuple.dst_port);
  // Paper §5.2: the copy's IP length must describe the copy itself.
  Ipv4View ip(copy->data() + kEthHeaderLen);
  EXPECT_EQ(ip.total_length(), kHeaderCopyBytes - kEthHeaderLen);
  pool.release(orig);
  pool.release(copy);
}

TEST(HeaderOnlyCopy, SmallPacketCopiedWhole) {
  PacketPool pool(2);
  PacketSpec spec;
  spec.frame_size = 64;
  Packet* orig = build_packet(pool, spec);
  Packet* copy = pool.clone_header_only(*orig);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->length(), 64u);
  EXPECT_EQ(0, std::memcmp(copy->data(), orig->data(), 64));
  pool.release(orig);
  pool.release(copy);
}

TEST(FullCopy, DuplicatesEntirePacket) {
  PacketPool pool(2);
  PacketSpec spec;
  spec.frame_size = 700;
  Packet* orig = build_packet(pool, spec);
  Packet* copy = pool.clone_full(*orig);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->length(), orig->length());
  EXPECT_EQ(0, std::memcmp(copy->data(), orig->data(), orig->length()));
  pool.release(orig);
  pool.release(copy);
}

}  // namespace
}  // namespace nfp

// L3 Forwarder NF: longest-prefix-match next-hop lookup (paper §6.1,
// "a simple forwarder that obtains the matching entry from a longest prefix
// matching table with 1000 entries to find out the next hop").
#pragma once

#include "lpm/lpm_table.hpp"
#include "nfs/nf.hpp"

namespace nfp {

class L3Forwarder final : public NetworkFunction {
 public:
  explicit L3Forwarder(LpmTable table) : table_(std::move(table)) {}
  static L3Forwarder with_synthetic_routes(std::size_t count = 1000,
                                           u64 seed = 1) {
    return L3Forwarder(LpmTable::with_synthetic_routes(count, seed));
  }

  std::string_view type_name() const override { return "l3fwd"; }

  NfVerdict process(PacketView& packet) override {
    const auto hop = table_.lookup(packet.dst_ip());
    last_next_hop_ = hop.value_or(0);
    ++lookups_;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kDstIp);
    return p;
  }

  u32 last_next_hop() const noexcept { return last_next_hop_; }
  u64 lookups() const noexcept { return lookups_; }

 private:
  LpmTable table_;
  u32 last_next_hop_ = 0;
  u64 lookups_ = 0;
};

}  // namespace nfp

#include "telemetry/exporters.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace nfp::telemetry {

namespace {

const std::string* find_label(const Labels& labels, std::string_view key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels, const char* extra_key = nullptr,
                        const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + prom_escape_label(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + prom_escape_label(extra_value) +
           "\"";
  }
  out += "}";
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  out += "}";
  return out;
}

std::string fmt_double(double v) { return fmt_prom_double(v); }

// JSON has no literal for non-finite numbers; they render as null so the
// output stays machine-parseable.
std::string fmt_json_double(double v) {
  if (!std::isfinite(v)) return "null";
  return fmt_prom_double(v);
}

// Matches a metric against (name, plane label) for the report.
bool in_plane(const MetricKey& key, const std::string& plane) {
  const std::string* p = find_label(key.labels, "plane");
  return p != nullptr && *p == plane;
}

}  // namespace

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_prom_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[48];
  // Integral values render without a fractional part (counter-like gauges).
  // The finiteness check above keeps the cast defined.
  if (v >= -9.2e18 && v <= 9.2e18 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  std::string last_type_line;
  const auto type_line = [&](const std::string& name, const char* type) {
    const std::string line = "# TYPE " + name + " " + type + "\n";
    if (line != last_type_line) {
      out << line;
      last_type_line = line;
    }
  };

  for (const auto& [key, c] : registry.counters()) {
    type_line(key.name, "counter");
    out << key.name << prom_labels(key.labels) << " " << c.value << "\n";
  }
  for (const auto& [key, g] : registry.gauges()) {
    type_line(key.name, "gauge");
    out << key.name << prom_labels(key.labels) << " " << fmt_double(g.value)
        << "\n";
  }
  for (const auto& [key, g] : registry.gauges()) {
    if (g.high_water == 0) continue;
    type_line(key.name + "_high_water", "gauge");
    out << key.name << "_high_water" << prom_labels(key.labels) << " "
        << fmt_double(g.high_water) << "\n";
  }
  for (const auto& [key, h] : registry.histograms()) {
    // Native histogram exposition so external Prometheus/Grafana can
    // re-aggregate quantiles across shards. One cumulative bucket per
    // power of two over the recorded range: powers of two are exact
    // bucket edges of the log-bucketed Histogram (count_below), with the
    // convention that a value exactly equal to a boundary counts in the
    // next bucket up.
    type_line(key.name, "histogram");
    const u64 count = h.count();
    if (count > 0) {
      u64 bound = Histogram::kSubBuckets;  // first log-bucket edge
      while ((bound << 1) != 0 && bound <= h.min()) bound <<= 1;
      for (; bound != 0; bound <<= 1) {
        const u64 below = h.count_below(bound);
        out << key.name << "_bucket"
            << prom_labels(key.labels, "le", std::to_string(bound).c_str())
            << " " << below << "\n";
        if (below == count) break;
      }
    }
    out << key.name << "_bucket" << prom_labels(key.labels, "le", "+Inf")
        << " " << count << "\n";
    out << key.name << "_sum" << prom_labels(key.labels) << " " << h.sum()
        << "\n";
    out << key.name << "_count" << prom_labels(key.labels) << " " << count
        << "\n";
  }
  return out.str();
}

std::string to_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, c] : registry.counters()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.name)
        << "\",\"labels\":" << json_labels(key.labels) << ",\"value\":"
        << c.value << "}";
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& [key, g] : registry.gauges()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.name)
        << "\",\"labels\":" << json_labels(key.labels) << ",\"value\":"
        << fmt_json_double(g.value) << ",\"high_water\":"
        << fmt_json_double(g.high_water) << "}";
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& [key, h] : registry.histograms()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.name)
        << "\",\"labels\":" << json_labels(key.labels) << ",\"count\":"
        << h.count() << ",\"min\":" << h.min() << ",\"mean\":"
        << fmt_json_double(h.mean()) << ",\"p50\":" << h.quantile(0.5)
        << ",\"p90\":" << h.quantile(0.9) << ",\"p99\":" << h.quantile(0.99)
        << ",\"max\":" << h.max() << "}";
  }
  out << "]}";
  return out.str();
}

std::string component_report(const MetricsRegistry& registry) {
  std::ostringstream out;

  // Distinct planes, in insertion-independent (sorted) order.
  std::set<std::string> planes;
  for (const auto& [key, g] : registry.gauges()) {
    if (const std::string* p = find_label(key.labels, "plane")) {
      planes.insert(*p);
    }
  }

  const auto counter_value = [&](const char* name, const std::string& plane,
                                 const char* lk = nullptr,
                                 const char* lv = nullptr) -> u64 {
    u64 sum = 0;
    for (const auto& [key, c] : registry.counters()) {
      if (key.name != name || !in_plane(key, plane)) continue;
      if (lk != nullptr) {
        const std::string* v = find_label(key.labels, lk);
        if (v == nullptr || *v != lv) continue;
      }
      sum += c.value;
    }
    return sum;
  };

  for (const std::string& plane : planes) {
    double now_ns = 0;
    for (const auto& [key, g] : registry.gauges()) {
      if (key.name == "sim_now_ns" && in_plane(key, plane)) now_ns = g.value;
    }

    out << "=== telemetry report (plane=" << plane << ") ===\n";
    char line[256];
    std::snprintf(line, sizeof(line),
                  "sim time %.1f us | injected=%llu delivered=%llu "
                  "dropped(nf)=%llu dropped(pool)=%llu\n",
                  now_ns / 1e3,
                  static_cast<unsigned long long>(
                      counter_value("packets_injected_total", plane)),
                  static_cast<unsigned long long>(
                      counter_value("packets_delivered_total", plane)),
                  static_cast<unsigned long long>(counter_value(
                      "packets_dropped_total", plane, "reason", "nf")),
                  static_cast<unsigned long long>(counter_value(
                      "packets_dropped_total", plane, "reason", "pool")));
    out << line;
    std::snprintf(line, sizeof(line),
                  "copies: header=%llu full=%llu (%llu bytes) | merges=%llu\n",
                  static_cast<unsigned long long>(counter_value(
                      "copies_total", plane, "kind", "header")),
                  static_cast<unsigned long long>(
                      counter_value("copies_total", plane, "kind", "full")),
                  static_cast<unsigned long long>(
                      counter_value("copy_bytes_total", plane)),
                  static_cast<unsigned long long>(
                      counter_value("merges_total", plane)));
    out << line;

    std::snprintf(line, sizeof(line), "%-24s %8s %10s %10s %10s\n",
                  "component", "busy%", "p50(ns)", "p99(ns)", "packets");
    out << line;
    for (const auto& [key, g] : registry.gauges()) {
      if (key.name != "core_busy_ns" || !in_plane(key, plane)) continue;
      const std::string* component = find_label(key.labels, "component");
      if (component == nullptr) continue;
      const double busy_pct = now_ns > 0 ? g.value / now_ns * 100.0 : 0.0;
      // Service-time histogram for the same component, if one exists.
      const Histogram* service = nullptr;
      for (const auto& [hkey, h] : registry.histograms()) {
        if (hkey.name != "nf_service_ns" || !in_plane(hkey, plane)) continue;
        const std::string* nf = find_label(hkey.labels, "nf");
        if (nf != nullptr && *nf == *component) {
          service = &h;
          break;
        }
      }
      if (service != nullptr && service->count() > 0) {
        std::snprintf(line, sizeof(line),
                      "%-24s %7.1f%% %10llu %10llu %10llu\n",
                      component->c_str(), busy_pct,
                      static_cast<unsigned long long>(service->quantile(0.5)),
                      static_cast<unsigned long long>(service->quantile(0.99)),
                      static_cast<unsigned long long>(service->count()));
      } else {
        std::snprintf(line, sizeof(line), "%-24s %7.1f%% %10s %10s %10s\n",
                      component->c_str(), busy_pct, "-", "-", "-");
      }
      out << line;
    }

    for (const auto& [key, h] : registry.histograms()) {
      if (key.name != "packet_latency_ns" || !in_plane(key, plane)) continue;
      std::snprintf(line, sizeof(line),
                    "packet latency: p50=%.1fus p99=%.1fus mean=%.1fus "
                    "max=%.1fus (%llu packets)\n",
                    static_cast<double>(h.quantile(0.5)) / 1e3,
                    static_cast<double>(h.quantile(0.99)) / 1e3, h.mean() / 1e3,
                    static_cast<double>(h.max()) / 1e3,
                    static_cast<unsigned long long>(h.count()));
      out << line;
    }

    for (const auto& [key, g] : registry.gauges()) {
      if (key.name == "pool_in_use" && in_plane(key, plane)) {
        double capacity = 0;
        for (const auto& [ck, cg] : registry.gauges()) {
          if (ck.name == "pool_capacity" && in_plane(ck, plane)) {
            capacity = cg.value;
          }
        }
        std::snprintf(line, sizeof(line),
                      "pool: high-water %.0f / %.0f packets\n",
                      g.high_water.load(), capacity);
        out << line;
      }
      if (key.name == "merger_at_entries" && in_plane(key, plane)) {
        const std::string* merger = find_label(key.labels, "merger");
        std::snprintf(line, sizeof(line),
                      "merger#%s accumulating table: high-water %.0f "
                      "entries\n",
                      merger != nullptr ? merger->c_str() : "?",
                      g.high_water.load());
        out << line;
      }
    }
    out << "\n";
  }

  // Traffic generator block (no plane label).
  u64 gen = 0;
  u64 retries = 0;
  for (const auto& [key, c] : registry.counters()) {
    if (key.name == "trafficgen_packets_total") gen += c.value;
    if (key.name == "trafficgen_backpressure_retries_total") {
      retries += c.value;
    }
  }
  if (gen > 0) {
    out << "trafficgen: generated=" << gen
        << " backpressure_retries=" << retries;
    for (const auto& [key, h] : registry.histograms()) {
      if (key.name == "trafficgen_frame_bytes" && h.count() > 0) {
        char line[96];
        std::snprintf(line, sizeof(line), " mean_frame=%.0fB", h.mean());
        out << line;
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace nfp::telemetry

// Tests for the §7 extensions: OpenBox block-level parallelism (Fig 15)
// and cross-server graph partitioning.
#include <gtest/gtest.h>

#include "cluster/partition.hpp"
#include "openbox/openbox.hpp"
#include "orch/compiler.hpp"
#include "policy/policy.hpp"

namespace nfp {
namespace {

class OpenboxTest : public ::testing::Test {
 protected:
  OpenboxTest() { openbox::register_builtin_blocks(table_); }
  ActionTable table_ = ActionTable::with_builtin_nfs();
};

TEST_F(OpenboxTest, BuiltinBlocksRegistered) {
  for (const char* block :
       {"read_packets", "header_classifier", "fw_alert", "dpi", "ips_alert",
        "output_block"}) {
    EXPECT_TRUE(table_.contains(block)) << block;
  }
}

TEST_F(OpenboxTest, MergeDeduplicatesSharedBlocks) {
  const Policy policy =
      openbox::merge_block_chains(openbox::fig15_firewall_and_ips());
  // Shared prefix appears once: 6 distinct blocks.
  EXPECT_EQ(policy.nf_names().size(), 6u);
  // Shared edges appear once too (read->classifier shared by both chains).
  std::size_t read_to_classify = 0;
  for (const Rule& rule : policy.rules()) {
    if (const auto* o = std::get_if<OrderRule>(&rule)) {
      if (o->before == "read_packets" && o->after == "header_classifier") {
        ++read_to_classify;
      }
    }
  }
  EXPECT_EQ(read_to_classify, 1u);
}

TEST_F(OpenboxTest, Fig15GraphParallelizesAlertAndDpi) {
  auto graph = openbox::compile_block_graph(
      openbox::fig15_firewall_and_ips(), table_);
  ASSERT_TRUE(graph.is_ok()) << graph.error();
  // The merged sequential block chain would be 6 blocks long; block-level
  // parallelism must shorten it.
  EXPECT_LT(graph.value().equivalent_length(), 6u) << graph.value().to_string();
  // fw_alert and dpi share a stage somewhere.
  bool together = false;
  for (const Segment& seg : graph.value().segments()) {
    bool fw = false, dpi = false;
    for (const StageNf& nf : seg.nfs) {
      fw |= nf.name == "fw_alert";
      dpi |= nf.name == "dpi";
    }
    together |= fw && dpi;
  }
  EXPECT_TRUE(together) << graph.value().to_string();
}

TEST_F(OpenboxTest, BlockParallelismIsCopyFree) {
  auto graph = openbox::compile_block_graph(
      openbox::fig15_firewall_and_ips(), table_);
  ASSERT_TRUE(graph.is_ok());
  EXPECT_EQ(graph.value().copies_per_packet(), 0u)
      << "all Fig 15 blocks are readers; no copies needed";
}

TEST(ClusterPartition, SingleServerWhenItFits) {
  const ServiceGraph g = ServiceGraph::sequential(
      "small", {"monitor", "firewall", "lb"});
  cluster::PartitionOptions opt;
  opt.cores_per_server = 10;
  opt.infra_cores = 4;
  const auto plan = cluster::partition_graph(g, opt);
  ASSERT_TRUE(plan.is_ok()) << plan.error();
  ASSERT_EQ(plan.value().size(), 1u);
  EXPECT_EQ(plan.value()[0].nf_cores, 3u);
  EXPECT_EQ(cluster::inter_server_copies_per_packet(g, plan.value()), 0.0);
}

TEST(ClusterPartition, SplitsAtSegmentBoundaries) {
  // 7 sequential NFs, 4 NF cores per server -> 2 servers (4 + 3).
  const ServiceGraph g = ServiceGraph::sequential(
      "long", {"a", "b", "c", "d", "e", "f", "g"});
  cluster::PartitionOptions opt;
  opt.cores_per_server = 6;
  opt.infra_cores = 2;
  const auto plan = cluster::partition_graph(g, opt);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_EQ(plan.value().size(), 2u);
  EXPECT_EQ(plan.value()[0].nf_cores, 4u);
  EXPECT_EQ(plan.value()[1].nf_cores, 3u);
  // One copy per packet crosses the wire (the §7 bandwidth constraint).
  EXPECT_EQ(cluster::inter_server_copies_per_packet(g, plan.value()), 1.0);
  // NSH tag points at the first segment of the next server.
  EXPECT_EQ(plan.value()[0].egress_mid, g.segments()[4].mid);
}

TEST(ClusterPartition, NeverSplitsAParallelStage) {
  ServiceGraph g = ServiceGraph::parallel("wide", {"a", "b", "c", "d"});
  cluster::PartitionOptions opt;
  opt.cores_per_server = 5;
  opt.infra_cores = 2;  // capacity 3 < stage size 4
  const auto plan = cluster::partition_graph(g, opt);
  EXPECT_FALSE(plan.is_ok());
}

TEST(ClusterPartition, RejectsBadOptions) {
  const ServiceGraph g = ServiceGraph::sequential("s", {"a"});
  cluster::PartitionOptions opt;
  opt.cores_per_server = 2;
  opt.infra_cores = 4;
  EXPECT_FALSE(cluster::partition_graph(g, opt).is_ok());
}

TEST(ClusterPartition, PlanRendering) {
  const ServiceGraph g =
      ServiceGraph::sequential("render", {"monitor", "firewall"});
  const auto plan = cluster::partition_graph(g);
  ASSERT_TRUE(plan.is_ok());
  const std::string text = cluster::plan_to_string(g, plan.value());
  EXPECT_NE(text.find("server 0"), std::string::npos);
  EXPECT_NE(text.find("monitor"), std::string::npos);
}

}  // namespace
}  // namespace nfp

// Direct tests of the byte-level merge engine (paper §5.3, Fig 6) — the
// shared core behind both dataplane modes — including a randomized
// write-graft property check.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataplane/merge_ops.hpp"
#include "packet/builder.hpp"
#include "packet/packet_view.hpp"

namespace nfp {
namespace {

Segment two_version_segment(std::vector<MergeOp> ops) {
  Segment seg;
  seg.nfs.push_back(StageNf{"a", 0, 1, 0, false});
  seg.nfs.push_back(StageNf{"b", 1, 2, 1, false});
  seg.num_versions = 2;
  seg.merge.total_count = 2;
  seg.merge.ops = std::move(ops);
  return seg;
}

TEST(MergeOpsTest, Fig6StyleModifyAndAh) {
  // The paper's Fig 6: modify(v1.A, v2.A) + add(v2.AH, after, v1.IP).
  PacketPool pool(4);
  PacketSpec spec;
  spec.frame_size = 300;
  Packet* v1 = build_packet(pool, spec);
  Packet* v2 = pool.clone_full(*v1);
  ASSERT_NE(v2, nullptr);
  v2->meta().set_version(2);

  PacketView v2_view(*v2);
  v2_view.set_src_ip(0xDEADBEEF);
  v2_view.add_ah_header(/*spi=*/0x77, /*seq=*/9);

  const Segment seg = two_version_segment(
      {MergeOp{MergeOp::Kind::kModify, 2, Field::kSrcIp},
       MergeOp{MergeOp::Kind::kSyncAh, 2, Field::kAhHeader}});
  Packet* merged = apply_merge_operations(seg, {{v1, 1}, {v2, 2}});
  ASSERT_EQ(merged, v1) << "version 1 is always the merge base";

  PacketView out(*merged);
  ASSERT_TRUE(out.valid());
  EXPECT_EQ(out.src_ip(), 0xDEADBEEFu);
  EXPECT_TRUE(out.has_ah());
  EXPECT_EQ(out.ah().spi(), 0x77u);
  pool.release(v1);
  pool.release(v2);
}

TEST(MergeOpsTest, PayloadGraft) {
  PacketPool pool(4);
  PacketSpec spec;
  spec.frame_size = 200;
  Packet* v1 = build_packet(pool, spec);
  Packet* v2 = pool.clone_full(*v1);
  PacketView v2_view(*v2);
  auto body = v2_view.mutable_payload();
  for (auto& b : body) b = 0xEE;
  v2_view.resize_payload(body.size() / 2);

  const Segment seg = two_version_segment(
      {MergeOp{MergeOp::Kind::kModify, 2, Field::kPayload}});
  Packet* merged = apply_merge_operations(seg, {{v1, 1}, {v2, 2}});
  ASSERT_EQ(merged, v1);
  PacketView out(*merged);
  EXPECT_EQ(out.payload_len(), body.size() / 2);
  for (const u8 b : out.payload()) EXPECT_EQ(b, 0xEE);
  pool.release(v1);
  pool.release(v2);
}

TEST(MergeOpsTest, MissingBaseReturnsNull) {
  PacketPool pool(2);
  Packet* v2 = build_packet(pool, PacketSpec{});
  v2->meta().set_version(2);
  const Segment seg = two_version_segment({});
  EXPECT_EQ(apply_merge_operations(seg, {{v2, 2}}), nullptr);
  pool.release(v2);
}

TEST(MergeOpsTest, RandomizedFieldGraftsMatchExpectation) {
  // Property: for random disjoint header writes on v1 and v2, applying
  // modify-ops for v2's written fields yields exactly "v1's writes plus
  // v2's writes" — the definition of result correctness for write merges.
  PacketPool pool(4);
  Rng rng(31337);
  const Field header_fields[] = {Field::kSrcIp, Field::kDstIp,
                                 Field::kSrcPort, Field::kDstPort,
                                 Field::kTtl, Field::kTos};

  for (int round = 0; round < 200; ++round) {
    PacketSpec spec;
    spec.frame_size = 64 + rng.bounded(400);
    Packet* v1 = build_packet(pool, spec);
    Packet* v2 = pool.clone_header_only(*v1);
    ASSERT_NE(v2, nullptr);

    // Partition fields: each field written on v2 (and merged) or left alone.
    std::vector<MergeOp> ops;
    u32 expect_sip = spec.tuple.src_ip, expect_dip = spec.tuple.dst_ip;
    u16 expect_sport = spec.tuple.src_port, expect_dport =
        spec.tuple.dst_port;
    u8 expect_ttl = spec.ttl, expect_tos = spec.tos;
    PacketView w2(*v2);
    for (const Field f : header_fields) {
      if (rng.uniform() < 0.5) continue;
      const u32 value = static_cast<u32>(rng.next());
      switch (f) {
        case Field::kSrcIp: w2.set_src_ip(value); expect_sip = value; break;
        case Field::kDstIp: w2.set_dst_ip(value); expect_dip = value; break;
        case Field::kSrcPort:
          w2.set_src_port(static_cast<u16>(value));
          expect_sport = static_cast<u16>(value);
          break;
        case Field::kDstPort:
          w2.set_dst_port(static_cast<u16>(value));
          expect_dport = static_cast<u16>(value);
          break;
        case Field::kTtl:
          w2.set_ttl(static_cast<u8>(value));
          expect_ttl = static_cast<u8>(value);
          break;
        case Field::kTos:
          w2.set_tos(static_cast<u8>(value));
          expect_tos = static_cast<u8>(value);
          break;
        default:
          break;
      }
      ops.push_back(MergeOp{MergeOp::Kind::kModify, 2, f});
    }

    const Segment seg = two_version_segment(std::move(ops));
    Packet* merged = apply_merge_operations(seg, {{v1, 1}, {v2, 2}});
    ASSERT_EQ(merged, v1);
    PacketView out(*merged);
    ASSERT_TRUE(out.valid());
    EXPECT_EQ(out.src_ip(), expect_sip);
    EXPECT_EQ(out.dst_ip(), expect_dip);
    EXPECT_EQ(out.src_port(), expect_sport);
    EXPECT_EQ(out.dst_port(), expect_dport);
    EXPECT_EQ(out.ttl(), expect_ttl);
    EXPECT_EQ(out.tos(), expect_tos);
    // The payload (absent from the header-only copy) is untouched.
    for (const u8 b : out.payload()) ASSERT_EQ(b, spec.payload_byte);

    pool.release(v1);
    pool.release(v2);
  }
}

}  // namespace
}  // namespace nfp

// Reproduces paper Figure 12: six service-graph structures built from the
// same four NFs (paper Fig 14), with and without packet copying.
// "Graphs with shorter equivalent chain length enjoy a bigger latency
// benefit: graph (2) [all-parallel, length 1] gains the most, graph (5)
// [equivalent length 3] sees little reduction."
#include "bench_util.hpp"

using namespace nfp;
using namespace nfp::bench;

namespace {

// Builds one of the Fig 14 structures over four 300-cycle NFs.
// `stage_sizes` gives NFs per segment, e.g. {1,2,1} for structure (4).
ServiceGraph structure(const std::vector<std::size_t>& stage_sizes,
                       bool with_copy) {
  ServiceGraph g("fig14");
  int id = 0;
  u32 mid = 0;
  for (const std::size_t n : stage_sizes) {
    Segment seg;
    seg.mid = mid++;
    for (std::size_t i = 0; i < n; ++i) {
      const u8 version = (with_copy && n > 1) ? static_cast<u8>(i + 1) : u8{1};
      seg.nfs.push_back(
          StageNf{"delaynf", id++, version, static_cast<int>(i), false});
    }
    seg.num_versions = (with_copy && n > 1) ? static_cast<u8>(n) : u8{1};
    seg.merge.total_count = static_cast<u32>(n);
    g.segments().push_back(std::move(seg));
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  BenchServer server(argc, argv);
  // Fig 14's six structures expressed as segment stage sizes:
  //  (1) sequential        1-1-1-1     (len 4)
  //  (2) 1+1+1+1           4 parallel  (len 1)
  //  (3) 1->3              1-3         (len 2)
  //  (4) 1+2+1             1-2-1       (len 3)
  //  (5) 1+3 (deep branch) 1-1-2       (len 3)
  //  (6) 2+2               2-2         (len 2)
  const std::vector<std::vector<std::size_t>> structures = {
      {1, 1, 1, 1}, {4}, {1, 3}, {1, 2, 1}, {1, 1, 2}, {2, 2}};

  DataplaneConfig cfg;
  cfg.delaynf_cycles = 300;

  print_header(
      "Figure 12(a): latency by graph structure, 4 NFs (us, 64B)\n"
      "paper: shorter equivalent chain length => bigger latency benefit");
  std::printf("%-7s %-10s %-6s %-10s %-12s %-10s\n", "graph", "shape", "len",
              "ONV-seq", "NFP-nocopy", "NFP-copy");
  const Measurement onv =
      run_onv(repeat("delaynf", 4), latency_traffic(64), cfg);
  server.observe(onv);
  for (std::size_t i = 0; i < structures.size(); ++i) {
    const ServiceGraph nocopy_graph = structure(structures[i], false);
    const Measurement nocopy =
        run_nfp(nocopy_graph, latency_traffic(64), cfg);
    const Measurement copy =
        run_nfp(structure(structures[i], true), latency_traffic(64), cfg);
    server.observe(nocopy);
    server.observe(copy);
    std::printf("%-7zu %-10s %-6zu %-10.1f %-12.1f %-10.1f\n", i + 1,
                nocopy_graph.structure().c_str(),
                nocopy_graph.equivalent_length(), onv.mean_latency_us,
                nocopy.mean_latency_us, copy.mean_latency_us);
  }

  print_header("Figure 12(b): processing rate by graph structure (Mpps, 64B)");
  std::printf("%-7s %-10s %-10s %-12s %-10s\n", "graph", "shape", "ONV-seq",
              "NFP-nocopy", "NFP-copy");
  const Measurement onv_rate =
      run_onv(repeat("delaynf", 4), saturation_traffic(64, 25'000), cfg);
  server.observe(onv_rate);
  for (std::size_t i = 0; i < structures.size(); ++i) {
    const ServiceGraph shape_graph = structure(structures[i], false);
    const Measurement nocopy =
        run_nfp(shape_graph, saturation_traffic(64, 25'000), cfg);
    const Measurement copy = run_nfp(structure(structures[i], true),
                                     saturation_traffic(64, 25'000), cfg);
    server.observe(nocopy);
    server.observe(copy);
    std::printf("%-7zu %-10s %-10.2f %-12.2f %-10.2f\n", i + 1,
                shape_graph.structure().c_str(), onv_rate.rate_mpps,
                nocopy.rate_mpps, copy.rate_mpps);
  }
  server.finish();
  return 0;
}

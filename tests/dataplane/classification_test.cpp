// Multi-graph classification (§5.1): the Classification Table steers flows
// into different service graphs on the same NFP server; MIDs are globally
// unique across graphs.
#include <gtest/gtest.h>

#include "dataplane/nfp_dataplane.hpp"
#include "nfs/monitor.hpp"
#include "orch/compiler.hpp"
#include "policy/policy.hpp"
#include "trafficgen/trafficgen.hpp"

namespace nfp {
namespace {

TEST(Classification, FlowsSteerToTheirGraphs) {
  sim::Simulator sim;
  std::vector<ServiceGraph> graphs;
  graphs.push_back(ServiceGraph::sequential("g0", {"monitor"}));
  graphs.push_back(ServiceGraph::sequential("g1", {"monitor", "lb"}));
  NfpDataplane dp(sim, std::move(graphs));

  // Flow A -> graph 1; everything else defaults to graph 0.
  const FiveTuple flow_a{0x0A000001, 0x0A000002, 1111, 80, kProtoTcp};
  dp.add_flow_rule(flow_a, 1);

  u64 delivered = 0;
  dp.set_sink([&](Packet* p, SimTime) {
    ++delivered;
    dp.pool().release(p);
  });

  // 20 packets of flow A, 30 of flow B.
  const FiveTuple flow_b{0x0A000003, 0x0A000004, 2222, 80, kProtoTcp};
  for (int i = 0; i < 50; ++i) {
    PacketSpec spec;
    spec.tuple = i < 20 ? flow_a : flow_b;
    Packet* p = build_packet(dp.pool(), spec);
    ASSERT_NE(p, nullptr);
    dp.inject(p);
  }
  sim.run();

  EXPECT_EQ(delivered, 50u);
  auto* mon_g0 = dynamic_cast<Monitor*>(dp.nf_in(0, 0, 0));
  auto* mon_g1 = dynamic_cast<Monitor*>(dp.nf_in(1, 0, 0));
  ASSERT_NE(mon_g0, nullptr);
  ASSERT_NE(mon_g1, nullptr);
  EXPECT_EQ(mon_g1->total_packets(), 20u) << "flow A takes graph 1";
  EXPECT_EQ(mon_g0->total_packets(), 30u) << "flow B defaults to graph 0";
}

TEST(Classification, MidsAreGloballyUnique) {
  sim::Simulator sim;
  std::vector<ServiceGraph> graphs;
  graphs.push_back(ServiceGraph::sequential("g0", {"monitor", "lb"}));
  graphs.push_back(ServiceGraph::sequential("g1", {"gateway", "shaper"}));
  NfpDataplane dp(sim, std::move(graphs));

  std::set<u32> mids;
  for (std::size_t g = 0; g < dp.graph_count(); ++g) {
    for (const Segment& seg : dp.graph(g).segments()) {
      EXPECT_TRUE(mids.insert(seg.mid).second) << "duplicate MID " << seg.mid;
    }
  }
  EXPECT_EQ(mids.size(), 4u);
}

TEST(Classification, ParallelGraphsShareMergerInstances) {
  // Two compiled parallel graphs on one server: the shared mergers keep
  // per-(graph, segment, pid) accumulating state apart.
  const ActionTable table = ActionTable::with_builtin_nfs();
  std::vector<ServiceGraph> graphs;
  graphs.push_back(compile_policy(Policy::from_sequential_chain(
                                      "a", {"monitor", "firewall"}),
                                  table)
                       .take());
  graphs.push_back(compile_policy(Policy::from_sequential_chain(
                                      "b", {"ids", "monitor", "lb"}),
                                  table)
                       .take());

  sim::Simulator sim;
  NfpDataplane dp(sim, std::move(graphs));
  const FiveTuple to_b{0x0A000009, 0x0A000008, 999, 80, kProtoTcp};
  dp.add_flow_rule(to_b, 1);

  u64 delivered = 0;
  dp.set_sink([&](Packet* p, SimTime) {
    ++delivered;
    dp.pool().release(p);
  });
  for (int i = 0; i < 40; ++i) {
    PacketSpec spec;
    if (i % 2 == 0) spec.tuple = to_b;
    Packet* p = build_packet(dp.pool(), spec);
    dp.inject(p);
  }
  sim.run();
  EXPECT_EQ(delivered + dp.stats().dropped_by_nf, 40u);
  EXPECT_EQ(dp.pool().in_use(), 0u);
  EXPECT_GT(dp.stats().merges, 0u);
}

}  // namespace
}  // namespace nfp

// Elastic scaling walkthrough (paper §7): an overloaded monitor NF is
// scaled out to more replicas with exact per-flow state migration, then
// scaled back in — the pipelining-model elasticity the paper contrasts
// against run-to-completion consolidation.
#include <cstdio>

#include "nfs/monitor.hpp"
#include "packet/builder.hpp"
#include "scaling/scaler.hpp"
#include "trafficgen/trafficgen.hpp"

int main() {
  using namespace nfp;

  scaling::ScalableNfGroup<Monitor> group(
      [] { return std::make_unique<Monitor>(); });
  PacketPool pool(8);
  sim::Simulator sim;
  TrafficConfig cfg;
  cfg.flows = 500;
  TrafficGenerator gen(sim, pool, cfg);

  const auto pump = [&](int packets) {
    Rng rng(packets);
    for (int i = 0; i < packets; ++i) {
      Packet* p = gen.make_packet(pool, rng.bounded(cfg.flows),
                                  64 + rng.bounded(1000));
      PacketView v(*p);
      group.process(v);
      pool.release(p);
    }
  };
  const auto report = [&](const char* when) {
    std::printf("%-28s replicas=%zu  flows per replica:", when,
                group.replica_count());
    std::size_t total_flows = 0;
    u64 total_packets = 0;
    for (std::size_t i = 0; i < group.replica_count(); ++i) {
      std::printf(" %zu", group.replica(i).flow_count());
      total_flows += group.replica(i).flow_count();
      total_packets += group.replica(i).total_packets();
    }
    std::printf("   (flows=%zu, observed packets=%llu)\n", total_flows,
                static_cast<unsigned long long>(total_packets));
  };

  std::printf("=== elastic NF scaling (paper §7) ===\n");
  pump(20'000);
  report("initial load:");

  std::size_t migrated = group.scale_up();
  std::printf("scale_up: migrated %zu flows\n", migrated);
  report("after scale-out to 2:");

  migrated = group.scale_up();
  std::printf("scale_up: migrated %zu flows\n", migrated);
  report("after scale-out to 3:");

  pump(20'000);
  report("after more traffic:");

  migrated = group.scale_down();
  std::printf("scale_down: migrated %zu flows back\n", migrated);
  report("after scale-in to 2:");

  // Spot-check that a flow's counters survived every resize.
  Packet* probe = gen.make_packet(pool, 7, 64);
  PacketView v(*probe);
  const FiveTuple flow = v.five_tuple();
  pool.release(probe);
  const auto* stats = group.replica(group.route(flow)).flow(flow);
  if (stats != nullptr) {
    std::printf("flow sample: %llu packets / %llu bytes tracked across "
                "2 scale-outs and 1 scale-in\n",
                static_cast<unsigned long long>(stats->packets),
                static_cast<unsigned long long>(stats->bytes));
  }
  return 0;
}

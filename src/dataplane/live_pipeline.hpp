// Live execution mode: the NFP dataplane on real OS threads.
//
// The simulated-time dataplane (NfpDataplane) is the measurement vehicle;
// this pipeline is the concurrency proof: the same compiled service graphs
// run on actual std::threads connected by the lock-free SPSC rings of
// src/ring — one thread per NF (the paper's one-container-per-core), a
// classifier thread and a merger thread — with packets really copied,
// processed and merged under true parallelism.
//
// Performance numbers from this mode are meaningless on a single-core host
// (threads time-share), so it exposes functional results only: processed
// packets out, drops, and NF state. Tests compare its output against the
// simulated dataplane's byte-for-byte.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/service_graph.hpp"
#include "nfs/nf.hpp"
#include "packet/packet_pool.hpp"
#include "ring/spsc_ring.hpp"

namespace nfp {

struct LiveResult {
  // Delivered packets in merger-completion order, as raw frames.
  std::vector<std::vector<u8>> outputs;
  u64 dropped = 0;
};

class LivePipeline {
 public:
  // `factory` defaults to make_builtin_nf (instance id as seed).
  explicit LivePipeline(ServiceGraph graph,
                        std::function<std::unique_ptr<NetworkFunction>(
                            const StageNf&)> factory = {});
  ~LivePipeline();

  LivePipeline(const LivePipeline&) = delete;
  LivePipeline& operator=(const LivePipeline&) = delete;

  // Feeds `frames` through the graph and blocks until every packet has been
  // delivered or dropped. May be called once per pipeline.
  LiveResult run(const std::vector<std::vector<u8>>& frames);

  NetworkFunction* nf(std::size_t segment, std::size_t index) {
    return segments_.at(segment).at(index).impl.get();
  }

 private:
  struct LiveNf {
    StageNf meta;
    std::unique_ptr<NetworkFunction> impl;
    // Inbound ring; owned here, fed by the classifier/merger thread.
    std::unique_ptr<SpscRing<Packet*>> in;
    // Outbound ring to the merger (parallel) or next hop (sequential).
    std::unique_ptr<SpscRing<Packet*>> out;
    std::thread thread;
  };

  // Thread-safe facade over the packet pool (the pool itself is
  // single-threaded by design; live mode serializes metadata operations).
  Packet* alloc_copy(const Packet& src, bool full);
  void release(Packet* pkt);
  void add_ref(Packet* pkt);

  void nf_loop(std::size_t seg_idx, std::size_t nf_idx);
  void merger_loop();
  // Distributes a packet into segment `seg_idx`; returns false on pool
  // exhaustion (packet released, counted as drop).
  bool enter_segment(std::size_t seg_idx, Packet* pkt);

  ServiceGraph graph_;
  PacketPool pool_;
  std::mutex pool_mu_;
  std::vector<std::vector<LiveNf>> segments_;
  std::thread merger_thread_;

  // Merger bookkeeping (single merger thread => plain maps suffice).
  struct PendingMerge {
    std::vector<std::pair<Packet*, bool>> arrivals;  // packet, drop_intent
  };

  std::atomic<bool> stop_{false};
  std::atomic<u64> in_flight_{0};
  std::mutex result_mu_;
  LiveResult result_;
};

}  // namespace nfp

// Per-thread magazine cache over the shared PacketPool.
//
// The DPDK mempool idiom (and NetVM/OpenNetVM's per-core caches): each
// pipeline thread keeps a small private stack of free slots so the common
// alloc/release cycle never touches the shared free list. Only when the
// magazine runs dry (refill) or overflows (flush) does a *batch* of slots
// move to/from the pool — one CAS per batch thanks to the pool's chain
// push/pop. Refill and flush totals feed the telemetry registry
// (pool_magazine_{refill,flush}_total) so `nfp_cli top` can show allocator
// pressure: a hot magazine shows near-zero refills per packet.
//
// A magazine belongs to exactly one thread. Capacity 0 degrades to direct
// pool calls, and an optional serialization mutex reproduces the pre-batch
// global-lock pool path for apples-to-apples benchmarking.
#pragma once

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "packet/packet_pool.hpp"

namespace nfp {

class PacketMagazine {
 public:
  // `refill_total` / `flush_total` may be shared by several magazines (the
  // live pipeline aggregates all of its threads into two counters); null is
  // fine. `serial_mu` (benchmark baseline only) serializes every pool call.
  PacketMagazine(PacketPool& pool, std::size_t capacity,
                 std::atomic<u64>* refill_total = nullptr,
                 std::atomic<u64>* flush_total = nullptr,
                 std::mutex* serial_mu = nullptr)
      : pool_(pool),
        capacity_(capacity),
        batch_(std::max<std::size_t>(1, capacity / 2)),
        refill_total_(refill_total),
        flush_total_(flush_total),
        serial_mu_(serial_mu) {
    cache_.reserve(capacity);
  }

  ~PacketMagazine() { drain(); }

  PacketMagazine(const PacketMagazine&) = delete;
  PacketMagazine& operator=(const PacketMagazine&) = delete;

  Packet* alloc(std::size_t len) noexcept {
    Packet* p = take_slot();
    if (p == nullptr) return nullptr;
    PacketPool::activate(*p, len);
    return p;
  }

  Packet* clone_full(const Packet& src) noexcept {
    Packet* dst = alloc(src.length());
    if (dst == nullptr) return nullptr;
    PacketPool::copy_packet_full(*dst, src);
    return dst;
  }

  Packet* clone_header_only(const Packet& src) noexcept {
    Packet* dst = alloc(std::min(src.length(), kHeaderCopyBytes));
    if (dst == nullptr) return nullptr;
    PacketPool::copy_packet_header_only(*dst, src);
    return dst;
  }

  void add_ref(Packet* p) noexcept {
    if (serial_mu_ != nullptr) {
      const std::scoped_lock lock(*serial_mu_);
      pool_.add_ref(p);
      return;
    }
    pool_.add_ref(p);
  }

  // Drops one reference; the slot lands in the magazine when this was the
  // last holder.
  void release(Packet* p) noexcept {
    if (serial_mu_ != nullptr) {
      const std::scoped_lock lock(*serial_mu_);
      pool_.release(p);
      return;
    }
    if (!pool_.dec_ref(p)) return;
    if (cache_.size() >= capacity_) {
      if (capacity_ == 0) {
        pool_.free_raw(&p, 1);
        return;
      }
      // Flush the colder (front) half in one chain push; keep the hot half.
      pool_.free_raw(cache_.data(), batch_);
      cache_.erase(cache_.begin(),
                   cache_.begin() + static_cast<std::ptrdiff_t>(batch_));
      if (flush_total_ != nullptr) {
        flush_total_->fetch_add(1, std::memory_order_relaxed);
      }
    }
    cache_.push_back(p);
  }

  // Returns every cached slot to the pool (thread shutdown).
  void drain() noexcept {
    if (!cache_.empty()) {
      pool_.free_raw(cache_.data(), cache_.size());
      cache_.clear();
    }
  }

  std::size_t cached() const noexcept { return cache_.size(); }

 private:
  Packet* take_slot() noexcept {
    if (serial_mu_ != nullptr) {
      const std::scoped_lock lock(*serial_mu_);
      Packet* p = nullptr;
      return pool_.alloc_raw(&p, 1) == 1 ? p : nullptr;
    }
    if (cache_.empty()) {
      if (capacity_ == 0) {
        Packet* p = nullptr;
        return pool_.alloc_raw(&p, 1) == 1 ? p : nullptr;
      }
      cache_.resize(batch_);
      const std::size_t got = pool_.alloc_raw(cache_.data(), batch_);
      cache_.resize(got);
      if (got == 0) return nullptr;
      if (refill_total_ != nullptr) {
        refill_total_->fetch_add(1, std::memory_order_relaxed);
      }
    }
    Packet* p = cache_.back();
    cache_.pop_back();
    return p;
  }

  PacketPool& pool_;
  const std::size_t capacity_;
  const std::size_t batch_;
  std::vector<Packet*> cache_;
  std::atomic<u64>* refill_total_;
  std::atomic<u64>* flush_total_;
  std::mutex* serial_mu_;
};

}  // namespace nfp

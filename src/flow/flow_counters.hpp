// The one per-flow packet/byte counting code path.
//
// Every place that tallies traffic per 5-tuple — the Monitor NF's NetFlow
// table, the flow observatory's heavy-hitter entries and per-graph tenant
// accounting — counts in the same unit (PacketByteCount) through the same
// accumulator so the semantics (what a "packet" and a "byte" mean, how
// state migrates) cannot drift between the NF layer and the telemetry
// layer.
#pragma once

#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "flow/flow_table.hpp"

namespace nfp {

// The counting unit: frames seen and their cumulative wire bytes.
struct PacketByteCount {
  u64 packets = 0;
  u64 bytes = 0;

  PacketByteCount& operator+=(const PacketByteCount& other) noexcept {
    packets += other.packets;
    bytes += other.bytes;
    return *this;
  }
  friend bool operator==(const PacketByteCount&,
                         const PacketByteCount&) = default;
};

// Exact per-flow counters over a bounded LRU FlowTable: the substrate the
// Monitor NF exposes per-flow and the observatory's exact-side tests
// compare sketches against. Single-threaded like the NFs that own it.
class ExactFlowCounters {
 public:
  using ExportedFlow = std::pair<FiveTuple, PacketByteCount>;

  explicit ExactFlowCounters(std::size_t capacity = 65536)
      : flows_(capacity) {}

  PacketByteCount& record(const FiveTuple& key, u64 bytes) {
    PacketByteCount& c = flows_.get_or_create(key);
    ++c.packets;
    c.bytes += bytes;
    ++total_packets_;
    return c;
  }

  const PacketByteCount* flow(const FiveTuple& key) const {
    return flows_.peek(key);
  }

  std::size_t size() const noexcept { return flows_.size(); }
  std::size_t capacity() const noexcept { return flows_.capacity(); }
  u64 evictions() const noexcept { return flows_.evictions(); }
  u64 total_packets() const noexcept { return total_packets_; }

  // Iteration in most-recently-used order (state export / top-N scans).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    flows_.for_each(std::forward<Fn>(fn));
  }

  // --- state migration (paper §7 scaling) -----------------------------------
  // Removes and returns every flow for which `pred(key)` holds.
  template <typename Pred>
  std::vector<ExportedFlow> extract_if(Pred&& pred) {
    std::vector<ExportedFlow> out;
    flows_.for_each([&](const FiveTuple& key, const PacketByteCount& c) {
      if (pred(key)) out.emplace_back(key, c);
    });
    for (const auto& [key, c] : out) flows_.erase(key);
    return out;
  }

  void absorb(const std::vector<ExportedFlow>& flows) {
    for (const auto& [key, c] : flows) flows_.get_or_create(key) = c;
  }

 private:
  FlowTable<PacketByteCount> flows_;
  u64 total_packets_ = 0;
};

}  // namespace nfp

// Tests for the event-driven simulator and the cost model.
#include <gtest/gtest.h>

#include "sim/cost_model.hpp"
#include "sim/simulator.hpp"

namespace nfp::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.schedule_after(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 15u);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, 100u);
}

TEST(SimCore, SerializesOverlappingWork) {
  SimCore core;
  EXPECT_EQ(core.execute(0, 100), 100u);
  EXPECT_EQ(core.execute(50, 100), 200u) << "must queue behind the first job";
  EXPECT_EQ(core.execute(500, 100), 600u) << "idle gap, starts immediately";
  EXPECT_EQ(core.busy_time(), 300u);
}

TEST(SimCore, ReturnsCoreFreeTimeOnly) {
  SimCore core;
  // Latency-only delays are the caller's business: execute() returns when
  // the core is free, so chained jobs never inherit hand-off delays.
  EXPECT_EQ(core.execute(0, 100), 100u);
  EXPECT_EQ(core.execute(100, 50), 150u);
}

TEST(CostModel, WireTimeMatchesLineRate) {
  CostModel costs;
  // 64B + 20B framing at 10 Gbps = 67.2 ns -> 14.88 Mpps.
  EXPECT_EQ(costs.wire_ns(64), 67u);
  EXPECT_NEAR(costs.line_rate_pps(64) / 1e6, 14.88, 0.01);
  EXPECT_NEAR(costs.line_rate_pps(1500) / 1e6, 0.822, 0.01);
}

TEST(CostModel, NfCostOrderingMatchesFig8) {
  CostModel costs;
  const auto fwd = costs.nf_cost("l3fwd", 64);
  const auto lb = costs.nf_cost("lb", 64);
  const auto fw = costs.nf_cost("firewall", 64);
  const auto mon = costs.nf_cost("monitor", 64);
  const auto vpn = costs.nf_cost("vpn", 64);
  const auto ids = costs.nf_cost("ids", 64);
  EXPECT_LT(fwd.delay, lb.delay);
  EXPECT_LT(lb.delay, fw.delay);
  EXPECT_LT(fw.delay, mon.delay);
  EXPECT_LT(mon.delay, ids.delay);
  EXPECT_LT(ids.delay, vpn.delay);
}

TEST(CostModel, DelayNfScalesWithCycles) {
  CostModel costs;
  const auto low = costs.nf_cost("delaynf", 64, 1);
  const auto high = costs.nf_cost("delaynf", 64, 3000);
  EXPECT_LT(low.delay, high.delay);
  EXPECT_LT(low.occ, high.occ);
  EXPECT_NEAR(static_cast<double>(high.occ - low.occ), 2999.0 / 3.0, 2.0);
}

TEST(CostModel, PayloadHeavyNfsScaleWithSize) {
  CostModel costs;
  EXPECT_GT(costs.nf_cost("vpn", 1500).delay, costs.nf_cost("vpn", 64).delay);
  EXPECT_GT(costs.nf_cost("ids", 1500).occ, costs.nf_cost("ids", 64).occ);
  EXPECT_EQ(costs.nf_cost("l3fwd", 1500).delay,
            costs.nf_cost("l3fwd", 64).delay);
}

}  // namespace
}  // namespace nfp::sim

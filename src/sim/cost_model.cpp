#include "sim/cost_model.hpp"

namespace nfp::sim {

OpCost CostModel::nf_cost(std::string_view type, std::size_t frame_len,
                          u32 delay_cycles) const noexcept {
  const auto payload =
      static_cast<double>(frame_len > 54 ? frame_len - 54 : 0);
  const auto with_payload = [payload](SimTime base, double per_byte) {
    return static_cast<SimTime>(static_cast<double>(base) +
                                per_byte * payload);
  };

  // Ordering follows Fig 8: forwarder < LB < firewall < monitor << IDS/VPN.
  // The per-byte latency terms reproduce the paper's real-traffic chain
  // latencies (Fig 13, data-center size distribution).
  if (type == "l3fwd") return {30, 600};
  if (type == "lb") return {40, with_payload(2'500, 8.0)};
  if (type == "firewall") return {75, with_payload(8'800, 23.0)};
  if (type == "monitor") return {55, with_payload(9'000, 45.0)};
  if (type == "gateway") return {30, 1'500};
  if (type == "nat") return {70, 6'000};
  if (type == "proxy") return {45, 4'000};
  if (type == "shaper") return {25, 1'500};
  if (type == "caching") {
    return {with_payload(80, 0.05), with_payload(8'000, 2.0)};
  }
  if (type == "ids" || type == "nids" || type == "ips") {
    return {with_payload(600, 2.2), with_payload(100'000, 25.0)};
  }
  if (type == "vpn" || type == "vpn_decrypt") {
    return {with_payload(700, 2.0), with_payload(120'000, 20.0)};
  }
  if (type == "compression") {
    return {with_payload(350, 1.5), with_payload(15'000, 10.0)};
  }
  if (type == "delaynf") {
    // "cycles" at the paper's 3 GHz clock occupy the core; the latency
    // contribution is calibrated to Fig 9's measurement load (~100 ns of
    // observed latency per busy-loop cycle).
    return {static_cast<SimTime>(53.0 + delay_cycles / 3.0),
            static_cast<SimTime>(2'000.0 + 100.0 * delay_cycles)};
  }
  // OpenBox building blocks (§7/Fig 15): block-granularity costs.
  if (type == "read_packets" || type == "output_block") return {20, 500};
  if (type == "header_classifier") return {40, 1'000};
  if (type == "fw_alert") return {60, 9'000};
  if (type == "ips_alert") return {30, 1'500};
  if (type == "dpi") return {with_payload(300, 2.0),
                             with_payload(25'000, 15.0)};
  return {50, 2'000};  // unknown NF types get a nominal cost
}

}  // namespace nfp::sim

// Tests for the sharded live dataplane: output equivalence with a single
// pipeline, flow-consistent dispatch, live multi-graph classification
// through the microflow cache, CPU-pinning reporting, and the streaming /
// run-once lifecycle contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/cpu_affinity.hpp"
#include "dataplane/live_pipeline.hpp"
#include "dataplane/sharded_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "nfs/monitor.hpp"
#include "orch/compiler.hpp"
#include "packet/builder.hpp"
#include "policy/policy.hpp"

namespace nfp {
namespace {

ServiceGraph compile_chain(const std::vector<std::string>& chain) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto g =
      compile_policy(Policy::from_sequential_chain("shard", chain), table);
  EXPECT_TRUE(g.is_ok()) << g.error();
  return std::move(g).take();
}

FiveTuple test_tuple(std::size_t flow) {
  return FiveTuple{0x0A300000 + static_cast<u32>(flow),
                   0x0A400000 + static_cast<u32>(flow % 11),
                   static_cast<u16>(20'000 + flow),
                   static_cast<u16>(443 + flow % 3), kProtoTcp};
}

// `flows` distinct 5-tuples round-robined across `count` frames, with real
// Ethernet/IPv4/TCP headers so the director can parse them back out.
std::vector<std::vector<u8>> make_flow_frames(std::size_t count,
                                              std::size_t flows) {
  PacketPool pool(4);
  std::vector<std::vector<u8>> frames;
  for (std::size_t i = 0; i < count; ++i) {
    PacketSpec spec;
    spec.tuple = test_tuple(i % flows);
    spec.frame_size = 64 + (i % 4) * 64;
    Packet* p = build_packet(pool, spec);
    frames.emplace_back(p->data(), p->data() + p->length());
    pool.release(p);
  }
  return frames;
}

TEST(ShardedDataplane, EquivalentToSinglePipeline) {
  const auto frames = make_flow_frames(240, 16);

  // monitor + lb: deterministic per 5-tuple (ECMP hash rewrite), so the
  // delivered multiset is shard-count invariant. Order-stamping NFs like
  // vpn (AH sequence numbers) are intentionally not equivalence candidates.
  LivePipeline single(compile_chain({"monitor", "lb"}));
  LiveResult expected = single.run(frames);
  ASSERT_TRUE(expected.status.is_ok());

  ShardedDataplaneOptions opts;
  opts.shards = 4;
  ShardedDataplane sharded({compile_chain({"monitor", "lb"})}, {}, opts);
  ShardedResult got = sharded.run(frames);
  ASSERT_TRUE(got.status.is_ok());

  EXPECT_EQ(got.dropped, expected.dropped);
  ASSERT_EQ(got.outputs.size(), expected.outputs.size());
  // Sharding reorders across flows; the delivered multiset must not change.
  std::sort(got.outputs.begin(), got.outputs.end());
  std::sort(expected.outputs.begin(), expected.outputs.end());
  EXPECT_EQ(got.outputs, expected.outputs);
}

TEST(ShardedDataplane, AllPacketsOfAFlowExitOneShard) {
  // Monitor passes frames through unmodified, so each output frame still
  // carries its flow's 5-tuple and can be attributed.
  const std::size_t kFlows = 24;
  const auto frames = make_flow_frames(360, kFlows);

  ShardedDataplaneOptions opts;
  opts.shards = 4;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  ShardedResult res = dp.run(frames);
  ASSERT_TRUE(res.status.is_ok());
  ASSERT_EQ(res.per_shard.size(), 4u);

  std::map<u16, std::set<std::size_t>> shards_seen;  // src_port -> shards
  std::size_t delivered = 0;
  for (std::size_t s = 0; s < res.per_shard.size(); ++s) {
    for (const auto& frame : res.per_shard[s].outputs) {
      const auto tuple =
          parse_five_tuple({frame.data(), frame.size()});
      ASSERT_TRUE(tuple.has_value());
      shards_seen[tuple->src_port].insert(s);
      // The shard that emitted the frame must be the director's choice.
      EXPECT_EQ(s, dp.shard_for({frame.data(), frame.size()}));
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, frames.size());
  EXPECT_EQ(shards_seen.size(), kFlows);
  for (const auto& [port, shards] : shards_seen) {
    EXPECT_EQ(shards.size(), 1u)
        << "flow with src_port " << port << " crossed shards";
  }
}

TEST(ShardedDataplane, MultiGraphClassificationSteersFlows) {
  // Graph 0 passes everything; graph 1 drops everything. Flows steered to
  // graph 1 by exact CT rules must vanish, the rest must survive.
  const auto drop_factory =
      [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kDrop);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name);
  };

  const std::size_t kFlows = 12;
  const auto frames = make_flow_frames(240, kFlows);

  ShardedDataplaneOptions opts;
  opts.shards = 3;
  std::vector<ServiceGraph> graphs;
  graphs.push_back(compile_chain({"monitor"}));
  graphs.push_back(compile_chain({"firewall"}));
  ShardedDataplane dp(std::move(graphs), drop_factory, opts);
  // Steer the even flows into the dropping graph.
  for (std::size_t f = 0; f < kFlows; f += 2) {
    dp.add_flow_rule(test_tuple(f), 1);
  }

  ShardedResult res = dp.run(frames);
  ASSERT_TRUE(res.status.is_ok());
  EXPECT_EQ(res.dropped, 120u);       // 240 frames, half on even flows
  EXPECT_EQ(res.outputs.size(), 120u);
  for (const auto& frame : res.outputs) {
    const auto tuple = parse_five_tuple({frame.data(), frame.size()});
    ASSERT_TRUE(tuple.has_value());
    EXPECT_EQ(tuple->src_port % 2, 1u) << "even flow escaped graph 1";
  }
  // Per-shard graph counters must account for every frame.
  u64 g0 = 0, g1 = 0;
  for (std::size_t s = 0; s < dp.shard_count(); ++s) {
    g0 += dp.shard_graph_count(s, 0);
    g1 += dp.shard_graph_count(s, 1);
  }
  EXPECT_EQ(g0, 120u);
  EXPECT_EQ(g1, 120u);
}

TEST(ShardedDataplane, MaskedRulesSteerModeInvariantlyThroughCache) {
  // Masked CT rules (the tuple-space path, not exact entries) steering
  // into a dropping graph: the delivered multiset must be identical in
  // both execution modes and the microflow cache must still absorb the
  // steady state — the contract the classifier rewrite has to preserve.
  const auto drop_factory =
      [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kDrop);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name);
  };
  const std::size_t kFlows = 12;
  const auto frames = make_flow_frames(2'400, kFlows);

  const auto run_mode = [&](ExecMode mode) {
    ShardedDataplaneOptions opts;
    opts.shards = 2;
    opts.pipeline.exec_mode = mode;
    std::vector<ServiceGraph> graphs;
    graphs.push_back(compile_chain({"monitor"}));
    graphs.push_back(compile_chain({"firewall"}));
    ShardedDataplane dp(std::move(graphs), drop_factory, opts);
    // Wide low-priority rule keeps the whole test subnet on graph 0; a
    // narrower higher-priority port rule overrides it into the dropping
    // graph — the verdict depends on priority order, not just matching.
    CtRule keep;
    keep.src_ip = 0x0A300000;
    keep.src_mask = 0xFFFF0000;
    keep.priority = 1;
    keep.graph = 0;
    CtRule drop;
    drop.match_dst_port = true;
    drop.dst_port = 444;
    drop.priority = 5;
    drop.graph = 1;
    dp.add_rules({keep, drop});

    ShardedResult res = dp.run(frames);
    EXPECT_TRUE(res.status.is_ok());
    const u64 hits = dp.microflow_hits();
    const u64 misses = dp.microflow_misses();
    EXPECT_EQ(hits + misses, frames.size());
    EXPECT_GE(static_cast<double>(hits) / static_cast<double>(hits + misses),
              0.9);
    std::vector<std::vector<u8>> outputs = std::move(res.outputs);
    std::sort(outputs.begin(), outputs.end());
    return outputs;
  };

  const auto pipelined = run_mode(ExecMode::kPipelined);
  const auto rtc = run_mode(ExecMode::kRtc);
  // dst_port 444 hits flows with index % 3 == 1: 4 of 12 flows, uniformly
  // round-robined -> exactly a third of the frames die in graph 1.
  EXPECT_EQ(pipelined.size(), 1'600u);
  EXPECT_EQ(pipelined, rtc);
  for (const auto& frame : pipelined) {
    const auto tuple = parse_five_tuple({frame.data(), frame.size()});
    ASSERT_TRUE(tuple.has_value());
    EXPECT_NE(tuple->dst_port, 444u) << "flow escaped the masked drop rule";
  }
}

TEST(ShardedDataplane, MicroflowCacheAbsorbsSteadyState) {
  const std::size_t kFlows = 32;
  const auto frames = make_flow_frames(3200, kFlows);

  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  ShardedResult res = dp.run(frames);
  ASSERT_TRUE(res.status.is_ok());

  const u64 hits = dp.microflow_hits();
  const u64 misses = dp.microflow_misses();
  EXPECT_EQ(hits + misses, 3200u);
  // Every flow misses exactly once (capacity far above the flow count),
  // then hits for the rest of the run: >= 99% here, >= 90% demanded.
  EXPECT_EQ(misses, kFlows);
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(hits + misses),
            0.9);
}

TEST(ShardedDataplane, StreamingFeedMatchesBatchRun) {
  const auto frames = make_flow_frames(180, 9);

  LivePipeline batch(compile_chain({"monitor", "lb"}));
  LiveResult expected = batch.run(frames);

  LivePipeline streaming(compile_chain({"monitor", "lb"}));
  ASSERT_TRUE(streaming.start().is_ok());
  for (const auto& frame : frames) {
    streaming.feed({frame.data(), frame.size()});
  }
  LiveResult got = streaming.drain();
  ASSERT_TRUE(got.status.is_ok());

  EXPECT_EQ(got.dropped, expected.dropped);
  ASSERT_EQ(got.outputs.size(), expected.outputs.size());
  std::sort(got.outputs.begin(), got.outputs.end());
  std::sort(expected.outputs.begin(), expected.outputs.end());
  EXPECT_EQ(got.outputs, expected.outputs);
}

TEST(ShardedDataplane, PipelineRunsExactlyOnce) {
  LivePipeline pipe(compile_chain({"monitor"}));
  const auto frames = make_flow_frames(8, 2);
  const LiveResult first = pipe.run(frames);
  EXPECT_TRUE(first.status.is_ok());
  EXPECT_EQ(first.outputs.size(), 8u);

  // The old contract was a comment; now it is a Status.
  const LiveResult second = pipe.run(frames);
  EXPECT_FALSE(second.status.is_ok());
  EXPECT_NE(second.status.message().find("already started"),
            std::string::npos);
  EXPECT_TRUE(second.outputs.empty());

  EXPECT_FALSE(pipe.start().is_ok());
  EXPECT_FALSE(pipe.feed({frames[0].data(), frames[0].size()}));
  EXPECT_FALSE(pipe.drain().status.is_ok());
}

TEST(ShardedDataplane, DataplaneRunsExactlyOnce) {
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  const auto frames = make_flow_frames(8, 2);
  EXPECT_TRUE(dp.run(frames).status.is_ok());
  const ShardedResult again = dp.run(frames);
  EXPECT_FALSE(again.status.is_ok());
  EXPECT_TRUE(again.outputs.empty());
}

TEST(ShardedDataplane, DrainBeforeStartErrors) {
  ShardedDataplaneOptions opts;
  opts.shards = 1;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  EXPECT_FALSE(dp.drain().status.is_ok());
}

TEST(ShardedDataplane, ReportsAffinityOutcome) {
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  opts.pin_threads = true;
  ShardedDataplane dp({compile_chain({"monitor"})}, {}, opts);
  ShardedResult res = dp.run(make_flow_frames(32, 4));
  ASSERT_TRUE(res.status.is_ok());
  // Shard indices wrap modulo the online-CPU count, so pinning succeeds on
  // any Linux host (including single-core containers); elsewhere the no-op
  // fallback must report false rather than pretend.
  EXPECT_EQ(dp.affinity_applied(), cpu_affinity_supported());

  ShardedDataplaneOptions unpinned = opts;
  unpinned.pin_threads = false;
  ShardedDataplane dp2({compile_chain({"monitor"})}, {}, unpinned);
  ASSERT_TRUE(dp2.run(make_flow_frames(8, 2)).status.is_ok());
  EXPECT_FALSE(dp2.affinity_applied());
}

}  // namespace
}  // namespace nfp

// Flow observatory: who the traffic is, where it is dropped, and what each
// tenant graph receives.
//
// The scalability profiler (PR 6) attributes lost throughput and the
// latency observatory (PR 7) lost microseconds; this layer attributes the
// *traffic* itself — the missing axis behind NFP's traffic-steering story
// (paper §4: the classifier steers flows across per-policy service graphs)
// and the multi-tenant setting of the cloud-NFV follow-ups. Three signals:
//
//   * heavy hitters — a Space-Saving top-K table per shard keyed by the
//     5-tuple, counting packets + bytes (PacketByteCount, the same unit as
//     the Monitor NF). Space-Saving guarantees every flow with true count
//     > N/K is present and each entry over-counts by at most its recorded
//     `error` (bounded by N/K for N packets and K slots); tables merge
//     associatively across shards by summing per-key counts — and because
//     the director shards flows disjointly (RSS), the cross-shard merge of
//     the per-shard tables is exactly the single-table result.
//   * flow churn — active-flow cardinality via a 256-register HyperLogLog
//     (standard error 1.04/sqrt(256) ≈ 6.5%, registers merge by max) plus a
//     new-flow counter (a packet whose flow is absent from the shard's
//     heavy-hitter table; exact until the table evicts, approximate after).
//   * a drop-reason taxonomy — every packet the dataplane loses carries a
//     DropReason (sum over reasons == dropped, exactly; a test enforces
//     it), counted per shard and sampled into a bounded exemplar ring
//     (5-tuple, stage, reason, timestamp) for "which flow was hit" triage.
//
// Plus per-service-graph (tenant) accounting: pps/bytes/drops and the p99
// of the latency observatory's total stage, per graph steered by the
// LiveClassificationTable.
//
// Recording contract: the shard worker aggregates packets thread-locally
// into an open-addressed (flow, graph) table and folds whole epochs into
// the shard's accountant under one uncontended mutex acquisition —
// preferentially during idle streaks so the fold overlaps starvation
// rather than displacing forwarding, with a ~64Ki-packet staleness
// backstop under sustained saturation. The sketches never see per-packet
// locking, and scrape threads touch the same mutex only at report time. Drop counters are relaxed atomics (drops are the cold
// path). The director's flow hash is reused for every key, so accounting
// adds no reparse; bench_hotpath_throughput's flow32-acct/noacct pair
// gates the enabled cost at 5%.
//
// Surfaces: /flows.json, flows_active / flow_new_rate / hh_top1_share /
// drops_<reason>_total probes (republished as Prometheus gauges), the
// `nfp_cli top` flows panel and the `nfp_cli flows` zipf elephant/mice
// workload.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "flow/flow_counters.hpp"
#include "telemetry/latency_observatory.hpp"

namespace nfp::telemetry {

class TimeseriesCollector;

// Why the dataplane lost a packet. kCount is the array bound.
enum class DropReason : unsigned {
  kRingFull = 0,     // director RX ring full under drop_on_ingest_backpressure
  kPoolExhausted,    // packet-pool alloc/clone failure (fanout copies, feeds)
  kNfVerdict,        // an NF (or the merge drop-resolution) said kDrop
  kClassifierMiss,   // CT verdict was the drop graph (kDropGraph)
  kMergeOverflow,    // merge accumulation failed (defensive; not reachable
                     // today — MergeTable grows instead of dropping)
  kShutdownDrain,    // frame offered while the plane was not running
  kCount,
};
inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kCount);

// Stable snake_case names used in JSON, tables and probe suffixes.
const char* drop_reason_name(DropReason r) noexcept;

// ---------------------------------------------------------------------------
// Sketches.

// Space-Saving heavy-hitter table (Metwally et al.): at most `capacity`
// monitored flows; a new flow arriving at a full table replaces the current
// minimum and inherits its count as `error`. Guarantees: every flow with
// true count > N/capacity is present, and for every entry
// true_count <= packets <= true_count + error. Single-threaded; the
// accountant serializes access.
class SpaceSaving {
 public:
  struct Entry {
    FiveTuple tuple{};
    u64 hash = 0;
    PacketByteCount count;  // packets is the Space-Saving counter
    u64 error = 0;          // max over-count inherited at replacement
  };

  explicit SpaceSaving(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    map_.reserve(capacity_ * 2);
  }

  // An unmonitored flow waiting to displace the table minimum.
  struct Candidate {
    FiveTuple tuple{};
    u64 hash = 0;
    u64 packets = 0;
    u64 bytes = 0;
  };

  // True when the flow currently holds a slot (the new-flow heuristic).
  bool contains(u64 hash) const { return map_.contains(hash); }

  // Hit path: adds to an already-monitored flow. False when absent — the
  // caller batches the miss into a replace_min_batch() call.
  bool increment(u64 hash, u64 packets, u64 bytes) {
    const auto it = map_.find(hash);
    if (it == map_.end()) return false;
    it->second.count.packets += packets;
    it->second.count.bytes += bytes;
    return true;
  }

  // Miss path: classic Space-Saving replacement for a batch of candidates
  // — each fills a free slot or displaces the then-current minimum,
  // inheriting its count as `error`. Batching lets one O(K) scratch-heap
  // build serve every replacement of an epoch (exact sequential semantics:
  // no increments interleave within a batch).
  void replace_min_batch(std::span<const Candidate> misses);

  // Returns true when the flow was not previously monitored. Convenience
  // single-sample form of increment + replace_min_batch.
  bool record(const FiveTuple& tuple, u64 hash, u64 packets, u64 bytes);

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::vector<Entry> entries() const;  // unsorted

 private:
  struct HeapSlot {
    u64 packets = 0;
    u64 hash = 0;
  };

  std::size_t capacity_;
  // Keyed by the 64-bit flow hash (a collision merges two flows into one
  // entry — acceptable for a sketch, vanishing at these table sizes).
  std::unordered_map<u64, Entry> map_;
  std::vector<HeapSlot> scratch_heap_;  // rebuilt per replace_min_batch
};

// Sums entry lists by flow hash, sorts by descending packets and truncates
// to `capacity` — the associative cross-shard merge. With disjoint key sets
// (RSS sharding) this is exact.
std::vector<SpaceSaving::Entry> merge_topk(
    std::span<const std::vector<SpaceSaving::Entry>> tables,
    std::size_t capacity);

// 256-register HyperLogLog over the 64-bit flow hash: top 8 bits pick the
// register, the leading-zero rank of the rest updates it. Standard error
// 1.04/sqrt(256) ≈ 6.5%; registers merge by element-wise max.
class HyperLogLog {
 public:
  static constexpr std::size_t kRegisters = 256;
  using Registers = std::array<u8, kRegisters>;

  void add(u64 hash) noexcept {
    const std::size_t idx = static_cast<std::size_t>(hash >> 56);
    const u64 rest = hash << 8;
    const u8 rank =
        rest == 0 ? 57 : static_cast<u8>(std::countl_zero(rest) + 1);
    if (rank > regs_[idx]) regs_[idx] = rank;
  }

  const Registers& registers() const noexcept { return regs_; }

  // Cardinality estimate with the standard small-range (linear counting)
  // correction; the 64-bit hash makes large-range correction moot.
  static double estimate(const Registers& regs) noexcept;

 private:
  Registers regs_{};
};

// ---------------------------------------------------------------------------
// Drop exemplars.

// One sampled drop: enough to answer "which flow, where, why, when".
struct DropExemplar {
  FiveTuple tuple{};
  bool tuple_valid = false;
  DropReason reason = DropReason::kNfVerdict;
  std::string stage;  // "director", "feeder", "nf:firewall#2", "merger", ...
  u64 when_ns = 0;    // mono_now_ns at the drop
};

// Bounded ring of recent drops, written from any dataplane thread (drops
// are the cold path, so a plain mutex is fine) and snapshotted at scrape.
class DropExemplarRing {
 public:
  explicit DropExemplarRing(std::size_t capacity = 64)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void record(DropReason reason, const char* stage, const FlowRef* flow,
              u64 when_ns);
  std::vector<DropExemplar> snapshot() const;  // oldest first

 private:
  mutable std::mutex mu_;
  std::vector<DropExemplar> ring_;
  std::size_t next_ = 0;
  u64 total_ = 0;
};

// ---------------------------------------------------------------------------
// Per-shard recording + scrape-time snapshots.

// One packet's contribution, pre-aggregated per burst by the shard worker
// (same-flow packets within a burst collapse into one sample).
struct FlowSample {
  FiveTuple tuple{};
  u64 hash = 0;
  u32 graph = kNoGraph;  // kNoGraph: no graph attribution (classifier drop)
  u32 packets = 0;
  u64 bytes = 0;
  bool tuple_valid = false;

  static constexpr u32 kNoGraph = ~u32{0};
};

// Per-graph (tenant) accounting: traffic in the shared counting unit plus
// drops and the latency observatory's total-stage histogram for that
// graph's pipelines.
struct GraphFlowCounters {
  PacketByteCount traffic;
  u64 drops = 0;
  HdrSnapshot latency;  // total stage; empty unless latency sampling is on

  GraphFlowCounters& operator+=(const GraphFlowCounters& other) noexcept {
    traffic += other.traffic;
    drops += other.drops;
    latency += other.latency;
    return *this;
  }
};

// Scrape-time aggregate for one shard. Mergeable across shards
// (operator+=): counters add, HLL registers max, top-K tables merge by key.
struct ShardFlowSnapshot {
  std::vector<SpaceSaving::Entry> topk;
  std::size_t topk_capacity = 0;
  HyperLogLog::Registers hll{};
  u64 packets = 0;
  u64 bytes = 0;
  u64 new_flows = 0;
  std::array<u64, kDropReasonCount> drops{};
  std::vector<DropExemplar> exemplars;
  std::vector<GraphFlowCounters> graphs;

  u64 total_drops() const noexcept;
  ShardFlowSnapshot& operator+=(const ShardFlowSnapshot& other);
};

// The per-shard recording half: owned by the sharded dataplane, written by
// the shard's worker (record_burst, one mutex acquisition per burst) and by
// any thread that drops a packet (record_drop, atomics + exemplar ring).
class ShardFlowAccountant {
 public:
  ShardFlowAccountant(std::size_t topk_capacity, std::size_t graph_count,
                      std::size_t exemplar_capacity = 64);

  // Folds one burst's deduped samples into the sketches. Worker thread.
  void record_burst(std::span<const FlowSample> samples);

  // Counts a drop and samples it into the exemplar ring. Any thread.
  void record_drop(DropReason reason, const char* stage, const FlowRef* flow,
                   u64 when_ns);

  // Exemplar ring shared with this shard's pipelines (they record their
  // own drop reasons but sample exemplars into the shard's ring).
  DropExemplarRing& exemplars() noexcept { return exemplars_; }

  u64 drops(DropReason r) const noexcept {
    return drops_[static_cast<std::size_t>(r)].load(
        std::memory_order_relaxed);
  }

  // Sketch + counter snapshot (graphs carry traffic only; the dataplane
  // folds pipeline drops and latency in on top).
  ShardFlowSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  SpaceSaving topk_;
  std::vector<SpaceSaving::Candidate> miss_scratch_;  // reused per burst
  HyperLogLog hll_;
  u64 packets_ = 0;
  u64 bytes_ = 0;
  u64 new_flows_ = 0;
  std::vector<PacketByteCount> graphs_;
  std::array<std::atomic<u64>, kDropReasonCount> drops_{};
  DropExemplarRing exemplars_;
};

// ---------------------------------------------------------------------------
// Report + observatory.

struct FlowReport {
  struct Shard {
    std::string name;
    ShardFlowSnapshot d;  // counters are deltas since baseline; sketches
                          // are cumulative (sketches do not subtract)
  };

  std::vector<Shard> shards;
  ShardFlowSnapshot total;  // cross-shard merge of the deltas
  double wall_seconds = 0;
  std::size_t top_k = 10;  // entries rendered in to_json/to_text

  double flows_active() const noexcept {
    return HyperLogLog::estimate(total.hll);
  }
  double new_flow_rate() const noexcept {
    return wall_seconds > 0
               ? static_cast<double>(total.new_flows) / wall_seconds
               : 0.0;
  }
  // Fraction of all counted packets attributed to the top-1 flow.
  double hh_top1_share() const noexcept;
  u64 total_drops() const noexcept { return total.total_drops(); }

  std::string to_json() const;
  // Terminal rendering: top-K table, churn line, drop-reason table,
  // per-graph accounting.
  std::string to_text() const;
  // Native exposition for the flow counters (the probe-derived gauges
  // cover the rest): nfp_flow_drops_total{reason=...,shard=...} counters
  // plus nfp_flow_packets_total / nfp_flow_bytes_total per shard.
  std::string to_prometheus() const;
};

struct FlowObservatoryOptions {
  std::size_t top_k = 10;          // rendered entries
  std::function<u64()> clock;      // ns; defaults to mono_now_ns
};

// Registry of per-shard snapshot callbacks + a counter baseline, mirroring
// LatencyObservatory: add_shard/reset_baseline/report serialize on an
// internal mutex; callbacks read dataplane-owned state that is safe to
// scrape mid-run.
class FlowObservatory {
 public:
  using Options = FlowObservatoryOptions;
  using SnapshotFn = std::function<ShardFlowSnapshot()>;

  explicit FlowObservatory(Options options = {});

  void add_shard(std::string name, SnapshotFn fn);
  std::size_t shard_count() const;

  // Re-zeroes the counter baseline (packets/bytes/new_flows/drops/graphs
  // and the exemplar-time floor). Sketches are cumulative by nature. Call
  // after start() so warm-up traffic is excluded.
  void reset_baseline();

  FlowReport report() const;
  std::string to_json() const { return report().to_json(); }

  // Publishes flows_active, flow_new_rate (per-second, between collector
  // refreshes), hh_top1_share and drops_<reason>_total probes. One
  // underlying report per collector tick via the shared 200ms cache.
  void register_probes(TimeseriesCollector& collector);

 private:
  struct Source {
    std::string name;
    SnapshotFn fn;
    ShardFlowSnapshot baseline;
  };

  struct ProbeCache {
    FlowReport report;
    u64 stamp_ns = 0;
    double new_flow_rate = 0;  // between-refresh rate for the probe
    u64 prev_new_flows = 0;
    u64 prev_stamp_ns = 0;
  };

  FlowReport report_locked() const;

  mutable std::mutex mu_;
  Options options_;
  std::vector<Source> sources_;
  u64 baseline_ns_ = 0;
  std::shared_ptr<ProbeCache> probe_cache_;
};

}  // namespace nfp::telemetry

#include "telemetry/latency_observatory.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>

#include "telemetry/health_sampler.hpp"
#include "telemetry/timeseries.hpp"

namespace nfp::telemetry {

namespace {

constexpr std::array<const char*, kLatencyStageCount> kStageNames = {
    "ingest", "queue", "service", "merge_wait", "egress", "total",
};

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

u64 saturating_sub(u64 a, u64 b) noexcept { return a >= b ? a - b : 0; }

double to_us(u64 ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

const char* latency_stage_name(LatencyStage s) noexcept {
  const auto i = static_cast<std::size_t>(s);
  return i < kStageNames.size() ? kStageNames[i] : "unknown";
}

std::size_t latency_bucket_index(u64 value) noexcept {
  // Same geometry as stats/histogram.hpp: exact below kLatSubBuckets, then
  // log2 buckets split into kLatSubBuckets linear sub-buckets. Values past
  // the 40-exponent range clamp into the last bucket.
  if (value < kLatSubBuckets) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const auto exponent = static_cast<std::size_t>(msb) - 3;
  const std::size_t sub =
      static_cast<std::size_t>(value >> (msb - 4)) & (kLatSubBuckets - 1);
  const std::size_t idx = exponent * kLatSubBuckets + sub;
  return idx < kLatBuckets ? idx : kLatBuckets - 1;
}

u64 latency_bucket_value(std::size_t index) noexcept {
  if (index < kLatSubBuckets) return index;
  const std::size_t exponent = index / kLatSubBuckets;
  const std::size_t sub = index % kLatSubBuckets;
  const int shift = static_cast<int>(exponent) - 1;
  return (u64{kLatSubBuckets} << shift) | (static_cast<u64>(sub) << shift);
}

u64 HdrSnapshot::min() const noexcept {
  if (total == 0) return 0;
  for (std::size_t i = 0; i < kLatBuckets; ++i) {
    if (counts[i] != 0) return latency_bucket_value(i);
  }
  return 0;
}

u64 HdrSnapshot::max() const noexcept {
  if (total == 0) return 0;
  for (std::size_t i = kLatBuckets; i-- > 0;) {
    if (counts[i] != 0) return latency_bucket_value(i);
  }
  return 0;
}

u64 HdrSnapshot::quantile(double q) const noexcept {
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  u64 target = static_cast<u64>(q * static_cast<double>(total - 1)) + 1;
  for (std::size_t i = 0; i < kLatBuckets; ++i) {
    if (counts[i] >= target) return latency_bucket_value(i);
    target -= counts[i];
  }
  return max();
}

HdrSnapshot& HdrSnapshot::operator+=(const HdrSnapshot& other) noexcept {
  for (std::size_t i = 0; i < kLatBuckets; ++i) counts[i] += other.counts[i];
  total += other.total;
  sum += other.sum;
  return *this;
}

HdrSnapshot hdr_delta(const HdrSnapshot& now,
                      const HdrSnapshot& then) noexcept {
  HdrSnapshot d;
  for (std::size_t i = 0; i < kLatBuckets; ++i) {
    d.counts[i] = saturating_sub(now.counts[i], then.counts[i]);
  }
  d.total = saturating_sub(now.total, then.total);
  d.sum = saturating_sub(now.sum, then.sum);
  return d;
}

HdrSnapshot StageLatencyBlock::snapshot(LatencyStage s) const noexcept {
  const Stage& st = stages_[static_cast<std::size_t>(s)];
  HdrSnapshot snap;
  for (std::size_t i = 0; i < kLatBuckets; ++i) {
    snap.counts[i] = st.counts[i].load(std::memory_order_relaxed);
  }
  snap.total = st.total.load(std::memory_order_relaxed);
  snap.sum = st.sum.load(std::memory_order_relaxed);
  return snap;
}

ShardLatencySnapshot& ShardLatencySnapshot::operator+=(
    const ShardLatencySnapshot& other) noexcept {
  for (std::size_t i = 0; i < kLatencyStageCount; ++i) {
    stages[i] += other.stages[i];
  }
  queue_depth += other.queue_depth;
  ingest_queue_depth += other.ingest_queue_depth;
  return *this;
}

// ---------------------------------------------------------------------------
// Report rendering.

namespace {

void stage_json(std::ostringstream& out, const HdrSnapshot& h) {
  out << "{\"count\":" << h.count() << ",\"mean_us\":" << fmt_double(
             h.mean() / 1e3)
      << ",\"p50_us\":" << fmt_double(to_us(h.quantile(0.50)))
      << ",\"p90_us\":" << fmt_double(to_us(h.quantile(0.90)))
      << ",\"p99_us\":" << fmt_double(to_us(h.quantile(0.99)))
      << ",\"p999_us\":" << fmt_double(to_us(h.quantile(0.999)))
      << ",\"max_us\":" << fmt_double(to_us(h.max())) << "}";
}

void stages_json(std::ostringstream& out,
                 const std::array<HdrSnapshot, kLatencyStageCount>& stages) {
  out << "{";
  for (std::size_t i = 0; i < kLatencyStageCount; ++i) {
    if (i > 0) out << ",";
    out << "\"" << kStageNames[i] << "\":";
    stage_json(out, stages[i]);
  }
  out << "}";
}

}  // namespace

std::string LatencyReport::to_json() const {
  std::ostringstream out;
  out << "{\"sample_every\":" << sample_every
      << ",\"wall_seconds\":" << fmt_double(wall_seconds)
      << ",\"sampled\":" << sampled()
      << ",\"error_bound\":\"quantiles are HDR bucket lower bounds, "
         "relative error <= 1/" << kLatSubBuckets << "\",\"shards\":[";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& sh = shards[s];
    if (s > 0) out << ",";
    out << "{\"name\":\"" << escape(sh.name) << "\",\"sampled\":"
        << sh.d.stage(LatencyStage::kTotal).count()
        << ",\"queue_depth\":" << fmt_double(sh.d.queue_depth)
        << ",\"ingest_queue_depth\":" << fmt_double(sh.d.ingest_queue_depth)
        << ",\"stages\":";
    stages_json(out, sh.d.stages);
    out << "}";
  }
  out << "],\"total\":{\"queue_depth\":" << fmt_double(queue_depth)
      << ",\"ingest_queue_depth\":" << fmt_double(ingest_queue_depth)
      << ",\"stages\":";
  stages_json(out, total);
  out << "}}";
  return out.str();
}

std::string LatencyReport::to_text() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-10s %9s %9s %9s %9s %9s %9s %10s\n", "stage", "p50us",
                "p90us", "p99us", "p99.9us", "maxus", "meanus", "samples");
  out << line;
  for (std::size_t i = 0; i < kLatencyStageCount; ++i) {
    const HdrSnapshot& h = total[i];
    std::snprintf(line, sizeof(line),
                  "%-10s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %10llu\n",
                  kStageNames[i], to_us(h.quantile(0.50)),
                  to_us(h.quantile(0.90)), to_us(h.quantile(0.99)),
                  to_us(h.quantile(0.999)), to_us(h.max()), h.mean() / 1e3,
                  static_cast<unsigned long long>(h.count()));
    out << line;
  }
  if (shards.size() > 1) {
    for (const Shard& sh : shards) {
      const HdrSnapshot& t = sh.d.stage(LatencyStage::kTotal);
      std::snprintf(line, sizeof(line),
                    "%-10s total p50=%.1fus p99=%.1fus p99.9=%.1fus "
                    "samples=%llu queue_depth=%.0f\n",
                    sh.name.c_str(), to_us(t.quantile(0.50)),
                    to_us(t.quantile(0.99)), to_us(t.quantile(0.999)),
                    static_cast<unsigned long long>(t.count()),
                    sh.d.queue_depth);
      out << line;
    }
  }
  return out.str();
}

std::string LatencyReport::to_prometheus() const {
  // Native Prometheus histogram exposition over coarse power-of-two
  // boundaries (full 640-bucket fidelity would explode scrape size; the
  // per-power cut keeps <= ~40 le-buckets per series with the same
  // bounded relative error story). `le` is treated as an exclusive upper
  // bound internally; only values exactly equal to a boundary land one
  // bucket higher than a strict <= would place them.
  std::ostringstream out;
  out << "# TYPE nfp_latency_ns histogram\n";
  for (const Shard& sh : shards) {
    for (std::size_t i = 0; i < kLatencyStageCount; ++i) {
      const HdrSnapshot& h = sh.d.stages[i];
      const std::string labels = std::string("{stage=\"") + kStageNames[i] +
                                 "\",shard=\"" + escape(sh.name) + "\"";
      u64 cumulative = 0;
      std::size_t bucket = 0;
      // One le-boundary per power of two: buckets [k*16, (k+1)*16) share
      // the same exponent, so fold each run of 16 into one boundary.
      for (std::size_t exp_end = kLatSubBuckets; bucket < kLatBuckets;
           exp_end += kLatSubBuckets) {
        const std::size_t end = std::min(exp_end, kLatBuckets);
        u64 run = 0;
        for (; bucket < end; ++bucket) run += h.counts[bucket];
        cumulative += run;
        if (cumulative == 0) continue;  // skip the empty low tail
        if (end < kLatBuckets) {
          out << "nfp_latency_ns_bucket" << labels << ",le=\""
              << latency_bucket_value(end) << "\"} " << cumulative << "\n";
        }
        if (cumulative == h.total) break;  // tail is flat from here
      }
      // The +Inf bucket is mandatory in the exposition format, even for
      // empty series and even when a finite boundary already covers the
      // whole population.
      out << "nfp_latency_ns_bucket" << labels << ",le=\"+Inf\"} "
          << h.total << "\n";
      out << "nfp_latency_ns_sum" << labels << "} " << h.sum << "\n";
      out << "nfp_latency_ns_count" << labels << "} " << h.total << "\n";
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Observatory.

LatencyObservatory::LatencyObservatory(Options options)
    : options_(std::move(options)),
      probe_cache_(std::make_shared<ProbeCache>()) {
  if (!options_.clock) options_.clock = [] { return mono_now_ns(); };
  baseline_ns_ = options_.clock();
}

void LatencyObservatory::add_shard(std::string name, SnapshotFn fn) {
  if (!fn) return;
  const std::scoped_lock lock(mu_);
  Source src;
  src.name = std::move(name);
  src.baseline = fn();
  src.fn = std::move(fn);
  sources_.push_back(std::move(src));
}

std::size_t LatencyObservatory::shard_count() const {
  const std::scoped_lock lock(mu_);
  return sources_.size();
}

void LatencyObservatory::reset_baseline() {
  const std::scoped_lock lock(mu_);
  for (Source& src : sources_) src.baseline = src.fn();
  baseline_ns_ = options_.clock();
}

LatencyReport LatencyObservatory::report_locked() const {
  LatencyReport rep;
  rep.sample_every = options_.sample_every;
  const u64 now = options_.clock();
  rep.wall_seconds =
      static_cast<double>(saturating_sub(now, baseline_ns_)) / 1e9;
  for (const Source& src : sources_) {
    LatencyReport::Shard sh;
    sh.name = src.name;
    ShardLatencySnapshot current = src.fn();
    for (std::size_t i = 0; i < kLatencyStageCount; ++i) {
      sh.d.stages[i] = hdr_delta(current.stages[i], src.baseline.stages[i]);
      rep.total[i] += sh.d.stages[i];
    }
    // Queue depths are point-in-time gauges, not counters: no delta.
    sh.d.queue_depth = current.queue_depth;
    sh.d.ingest_queue_depth = current.ingest_queue_depth;
    rep.queue_depth += current.queue_depth;
    rep.ingest_queue_depth += current.ingest_queue_depth;
    rep.shards.push_back(std::move(sh));
  }
  return rep;
}

LatencyReport LatencyObservatory::report() const {
  const std::scoped_lock lock(mu_);
  return report_locked();
}

void LatencyObservatory::register_probes(TimeseriesCollector& collector) {
  const std::size_t shard_total = shard_count();
  // One report per collector tick: the first probe sampled inside a 200ms
  // window refreshes the cache, the rest read it (all probes run on the
  // collector thread, so the cache needs no lock of its own).
  std::shared_ptr<ProbeCache> cache = probe_cache_;
  auto refreshed = [this, cache]() -> const LatencyReport& {
    const u64 now = options_.clock();
    if (cache->stamp_ns == 0 ||
        saturating_sub(now, cache->stamp_ns) > 200ull * 1000 * 1000) {
      cache->report = report();
      cache->stamp_ns = now;
    }
    return cache->report;
  };
  for (std::size_t s = 0; s < shard_total; ++s) {
    std::string shard_name;
    {
      const std::scoped_lock lock(mu_);
      shard_name = sources_[s].name;
    }
    const Labels labels{{"shard", shard_name}};
    for (std::size_t b = 0; b < kLatencyStageCount; ++b) {
      collector.add_probe(
          std::string("latency_") + kStageNames[b] + "_p99", labels,
          [refreshed, s, b] {
            const LatencyReport& rep = refreshed();
            return s < rep.shards.size()
                       ? to_us(rep.shards[s].d.stages[b].quantile(0.99))
                       : 0.0;
          });
    }
    collector.add_probe("latency_total_p50", labels, [refreshed, s] {
      const LatencyReport& rep = refreshed();
      return s < rep.shards.size()
                 ? to_us(rep.shards[s]
                             .d.stage(LatencyStage::kTotal)
                             .quantile(0.50))
                 : 0.0;
    });
    collector.add_probe("latency_total_p999", labels, [refreshed, s] {
      const LatencyReport& rep = refreshed();
      return s < rep.shards.size()
                 ? to_us(rep.shards[s]
                             .d.stage(LatencyStage::kTotal)
                             .quantile(0.999))
                 : 0.0;
    });
    collector.add_probe("latency_queue_depth", labels, [refreshed, s] {
      const LatencyReport& rep = refreshed();
      return s < rep.shards.size() ? rep.shards[s].d.queue_depth : 0.0;
    });
    collector.add_probe("latency_ingest_queue_depth", labels,
                        [refreshed, s] {
                          const LatencyReport& rep = refreshed();
                          return s < rep.shards.size()
                                     ? rep.shards[s].d.ingest_queue_depth
                                     : 0.0;
                        });
  }
}

}  // namespace nfp::telemetry

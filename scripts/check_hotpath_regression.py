#!/usr/bin/env python3
"""Compare a bench's --json output against a checked-in baseline and fail
on a >30% per-series throughput regression.

Usage:
  check_hotpath_regression.py --baseline bench/baselines/BENCH_hotpath_throughput.json \
      --current current.jsonl [--threshold 0.7] [--bench hotpath_throughput]
  check_hotpath_regression.py --merge-min run1.jsonl run2.jsonl ... > baseline.json
  check_hotpath_regression.py --overhead current.jsonl [--overhead-threshold 0.05]
  check_hotpath_regression.py --burst-monotonic current.jsonl

--bench selects which bench's rows to read (default hotpath_throughput;
shard_scaling for bench_shard_scaling output, classifier_scale for
bench_classifier_scale output — its series are named
`<hit|miss>/<tuple|linear>/rules<N>k` and pps is classifier lookups per
second). shard_scaling series are
named `<shape>/<mode>/shards<N>` (e.g. par4/rtc/shards2) where mode is the
execution mode — `pipelined` (thread-per-NF + rings + merger) or `rtc`
(fused run-to-completion) — so each mode carries its own baseline and a
regression in either path is caught independently.

--burst-monotonic is a warn-level sanity gate on one hotpath run: for every
`<base>/burst32` / `<base>/burst64` series pair, print WARN when the larger
burst is slower. Burst 64 amortises ring and magazine hand-offs over twice
the packets, so it should never lose to burst 32 except through scheduler
noise — a consistent inversion usually means a batching path picked up
per-packet work. Noise on small CI hosts is real, so this mode always
exits 0; it flags, it does not fail.

--overhead gates instrumentation cost: for every `<base>-acct` /
`<base>-noacct` pair in one run of bench_hotpath_throughput, fail when the
accounting-on series is more than --overhead-threshold (default 5%) slower
than its accounting-off control. Run position is a real confound (later
identical runs measure faster on small hosts), so the bench interleaves the
sides within one process invocation; `<base>-noacct` pairs with
`<base>-acct` when present, else with the plain `<base>` series. When a
series has several lines (the bench emits one line per rep), lines are
paired in emission order — back-to-back reps share the host's load regime —
and the *median* paired overhead is gated, so a transient load spike that
taints a couple of reps cannot fail an otherwise healthy run.

Both files hold one JSON object per line as emitted by the bench:
  {"bench":"hotpath_throughput","series":"par4/burst32",...,"pps":1234.5,...}
When a file contains several lines for one series (e.g. concatenated runs),
the *minimum* pps per series is used — conservative for the baseline and
forgiving of scheduler noise in the current run. `--merge-min` prints that
reduction, which is how the checked-in baseline is produced.
"""

import argparse
import json
import sys


def load_series_lines(path, bench):
    """dict series -> list of rows in file (emission) order."""
    series = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if row.get("bench") != bench:
                continue
            if row.get("series") is None or row.get("pps") is None:
                continue
            series.setdefault(row["series"], []).append(row)
    return series


def load_series(path, bench):
    """dict series -> min pps across the file's lines."""
    series = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if row.get("bench") != bench:
                continue
            name, pps = row.get("series"), row.get("pps")
            if name is None or pps is None:
                continue
            if name not in series or pps < series[name]["pps"]:
                series[name] = row
    return series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument("--threshold", type=float, default=0.7,
                        help="fail when current < threshold * baseline")
    parser.add_argument("--merge-min", nargs="+", metavar="RUN",
                        help="merge runs into a min-per-series baseline")
    parser.add_argument("--bench", default="hotpath_throughput",
                        help="bench name whose JSON rows to compare")
    parser.add_argument("--overhead", metavar="RUN",
                        help="check acct/noacct series pairs in one run")
    parser.add_argument("--overhead-threshold", type=float, default=0.05,
                        help="max tolerated accounting overhead (fraction)")
    parser.add_argument("--burst-monotonic", metavar="RUN",
                        help="warn when a burst64 series is slower than its "
                             "burst32 sibling (always exits 0)")
    args = parser.parse_args()

    if args.burst_monotonic:
        current = load_series(args.burst_monotonic, args.bench)
        pairs = []
        for name in sorted(current):
            if not name.endswith("/burst32"):
                continue
            sibling = name[: -len("32")] + "64"
            if sibling in current:
                pairs.append((name, sibling))
        if not pairs:
            print(f"error: no burst32/burst64 series pairs in "
                  f"{args.burst_monotonic}", file=sys.stderr)
            return 2
        warned = 0
        for b32_name, b64_name in pairs:
            b32 = current[b32_name]["pps"]
            b64 = current[b64_name]["pps"]
            ratio = b64 / b32 if b32 > 0 else float("inf")
            status = "ok" if ratio >= 1.0 else "WARN: burst64 slower"
            print(f"{b64_name:24s} burst32={b32:12.0f} burst64={b64:12.0f} "
                  f"ratio={ratio:5.2f}  {status}")
            if ratio < 1.0:
                warned += 1
        if warned:
            print(f"\n{warned}/{len(pairs)} shapes lose throughput at the "
                  f"larger burst (warn-only: scheduler noise on small hosts "
                  f"makes this gate advisory)")
        else:
            print(f"\nall {len(pairs)} shapes monotone in burst size")
        return 0

    if args.overhead:
        current = load_series_lines(args.overhead, args.bench)
        pairs = []
        for name in sorted(current):
            if not name.endswith("-noacct"):
                continue
            base = name[: -len("-noacct")]
            acct_name = base + "-acct" if base + "-acct" in current else base
            if acct_name in current:
                pairs.append((acct_name, name))
        if not pairs:
            print(f"error: no acct/noacct series pairs in {args.overhead}",
                  file=sys.stderr)
            return 2
        failures = []
        for acct_name, noacct_name in pairs:
            acct_pps = [row["pps"] for row in current[acct_name]]
            noacct_pps = [row["pps"] for row in current[noacct_name]]
            # Pair reps in emission order (adjacent reps share the host's
            # load regime); with a single line per side this degenerates to
            # the plain ratio. Gate the median paired overhead.
            per_rep = [1 - a / n if n > 0 else 0.0
                       for a, n in zip(acct_pps, noacct_pps)]
            per_rep.sort()
            overhead = per_rep[len(per_rep) // 2]
            acct = max(acct_pps)
            noacct = max(noacct_pps)
            status = ("ok" if overhead <= args.overhead_threshold
                      else "OVERHEAD")
            print(f"{acct_name:24s} acct={acct:12.0f} noacct={noacct:12.0f} "
                  f"median-paired-overhead={overhead:7.1%} "
                  f"({len(per_rep)} reps)  {status}")
            if overhead > args.overhead_threshold:
                failures.append(
                    f"{acct_name}: accounting costs {overhead:.1%} pps "
                    f"(median of {len(per_rep)} paired reps, "
                    f"> {args.overhead_threshold:.0%})")
        if failures:
            print(f"\n{len(failures)} series exceed the accounting-overhead "
                  f"budget:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"\nall {len(pairs)} acct/noacct pairs within "
              f"{args.overhead_threshold:.0%} overhead")
        return 0

    if args.merge_min:
        merged = {}
        for path in args.merge_min:
            for name, row in load_series(path, args.bench).items():
                if name not in merged or row["pps"] < merged[name]["pps"]:
                    merged[name] = row
        for name in sorted(merged):
            print(json.dumps(merged[name], sort_keys=True))
        return 0

    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or --merge-min)")

    baseline = load_series(args.baseline, args.bench)
    current = load_series(args.current, args.bench)
    if not baseline:
        print(f"error: no baseline series in {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"error: no current series in {args.current}", file=sys.stderr)
        return 2

    failures = []
    for name in sorted(baseline):
        base_pps = baseline[name]["pps"]
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        cur_pps = current[name]["pps"]
        ratio = cur_pps / base_pps if base_pps > 0 else float("inf")
        status = "ok" if ratio >= args.threshold else "REGRESSION"
        print(f"{name:24s} baseline={base_pps:12.0f} current={cur_pps:12.0f} "
              f"ratio={ratio:5.2f}  {status}")
        if ratio < args.threshold:
            failures.append(
                f"{name}: {cur_pps:.0f} pps < {args.threshold:.0%} of "
                f"baseline {base_pps:.0f} pps")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:24s} (new series, no baseline)")

    if failures:
        print(f"\n{len(failures)} series regressed >"
              f"{(1 - args.threshold):.0%}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} series within "
          f"{(1 - args.threshold):.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Latency and throughput accounting for benches and tests.
//
// Retained samples are capped: below the cap every sample is kept and the
// percentiles are exact (interpolated between ranks, as before); past it
// the recorder switches to uniform reservoir sampling (Algorithm R with a
// deterministic xorshift64 stream), so count/mean/max stay exact while
// memory stays O(cap) — the property long `--serve` daemon runs need.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace nfp {

class LatencyRecorder {
 public:
  static constexpr std::size_t kDefaultCap = std::size_t{1} << 16;

  explicit LatencyRecorder(std::size_t cap = kDefaultCap)
      : cap_(cap == 0 ? 1 : cap) {}

  void record(SimTime inject_ns, SimTime out_ns) {
    const SimTime sample = out_ns - inject_ns;
    ++count_;
    sum_ += static_cast<double>(sample);
    if (sample > max_) max_ = sample;
    if (samples_.size() < cap_) {
      samples_.push_back(sample);
      sorted_valid_ = false;
    } else {
      // Reservoir replacement: keep with probability cap/count, evicting a
      // uniformly random retained sample.
      const u64 slot = next_random() % count_;
      if (slot < cap_) {
        samples_[static_cast<std::size_t>(slot)] = sample;
        sorted_valid_ = false;
      }
    }
    if (first_out_ == 0 || out_ns < first_out_) first_out_ = out_ns;
    if (out_ns > last_out_) last_out_ = out_ns;
  }

  std::size_t count() const noexcept { return count_; }
  // Samples currently held; == count() until the cap is reached.
  std::size_t retained() const noexcept { return samples_.size(); }
  std::size_t capacity() const noexcept { return cap_; }

  double mean_us() const {
    if (count_ == 0) return 0;
    return sum_ / static_cast<double>(count_) / 1e3;
  }

  // Linear interpolation between the two nearest ranks, so e.g. the median
  // of {1, 2} is 1.5 rather than the truncated lower sample. Exact below
  // the cap, reservoir-estimated above it. The sorted copy is cached
  // across calls and invalidated by record().
  double percentile_us(double p) const {
    if (samples_.empty()) return 0;
    if (!sorted_valid_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    p = std::min(std::max(p, 0.0), 1.0);
    const double rank = p * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    const double ns = static_cast<double>(sorted_[lo]) +
                      frac * (static_cast<double>(sorted_[hi]) -
                              static_cast<double>(sorted_[lo]));
    return ns / 1e3;
  }
  double median_us() const { return percentile_us(0.5); }
  double p99_us() const { return percentile_us(0.99); }

  double max_us() const {
    return count_ == 0 ? 0 : static_cast<double>(max_) / 1e3;
  }

  // Egress rate over the output interval, in Mpps.
  double rate_mpps() const {
    if (count_ < 2 || last_out_ <= first_out_) return 0;
    return static_cast<double>(count_ - 1) /
           (static_cast<double>(last_out_ - first_out_) / 1e3);
  }

 private:
  u64 next_random() noexcept {
    // xorshift64: deterministic, fast, and plenty for eviction slots.
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_;
  }

  std::size_t cap_;
  std::vector<SimTime> samples_;         // the reservoir
  mutable std::vector<SimTime> sorted_;  // cache for percentile queries
  mutable bool sorted_valid_ = false;
  std::size_t count_ = 0;  // exact, independent of the cap
  double sum_ = 0;         // exact running sum (ns)
  SimTime max_ = 0;        // exact running max
  SimTime first_out_ = 0;
  SimTime last_out_ = 0;
  u64 rng_ = 0x9E3779B97F4A7C15ull;
};

}  // namespace nfp

// Time-series collection over a MetricsRegistry.
//
// The registry holds cumulative state (monotone counters, point-in-time
// gauges, cumulative histograms); operators debugging a *running*
// dataplane need rates and short histories: packets/s now, drop/s over the
// last minute, which NF's p99 is climbing. The TimeseriesCollector bridges
// the two: on a fixed cadence (background thread, or manual sample_once()
// from a driver loop) it snapshots every series and appends one point per
// series into a bounded ring-buffer history.
//
// Derivations per tick:
//  * every counter        -> "<name>:rate"  (delta / elapsed seconds)
//  * every histogram      -> "<name>:p50" and "<name>:p99" (cumulative)
//  * every gauge          -> raw value history
//  * core_busy_ns + sim_now_ns pairs -> "core_util{component=...}" in
//    [0,1]: delta(busy)/delta(sim clock), the live utilization share
//  * registered probes    -> arbitrary derived values (e.g. the CLI feeds
//    the critical-path profiler's merge-wait share through one)
//
// Rate/util series are additionally published as gauges into an optional
// target registry, so a plain /metrics scrape sees `pps` and friends
// without a second collector. Histories are bounded (`capacity` points per
// series, `max_series` series total — overflow is counted and reported in
// the JSON, never silent). `/timeseries.json` renders everything for
// `nfp_cli top` and offline tooling.
//
// Threading: sample_once() runs on the collector (or caller) thread. If a
// mutex is provided via set_mutex(), the tick and to_json() run under it —
// share that mutex with whatever thread structurally mutates the source
// registry (creating series) and with the stats server. Metric cell
// *values* are relaxed atomics and need no lock.
#pragma once

#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"

namespace nfp::telemetry {

struct TimeseriesOptions {
  u64 period_ms = 1000;        // background cadence
  std::size_t capacity = 600;  // points retained per series
  std::size_t max_series = 512;
  std::function<u64()> clock;  // ns; defaults to mono_now_ns
};

class TimeseriesCollector {
 public:
  using Options = TimeseriesOptions;

  struct Point {
    u64 t_ns = 0;
    double value = 0;
  };

  explicit TimeseriesCollector(const MetricsRegistry& source,
                               Options options = {});
  ~TimeseriesCollector();

  TimeseriesCollector(const TimeseriesCollector&) = delete;
  TimeseriesCollector& operator=(const TimeseriesCollector&) = delete;

  // Derived rate/util gauges are published into `target` (may be the
  // source registry itself, or null to disable). Call before sampling.
  void publish_derived(MetricsRegistry* target) { derived_target_ = target; }

  // Custom derived series sampled each tick on the collector thread.
  void add_probe(std::string name, Labels labels,
                 std::function<double()> read);

  // Mutex shared with the source registry's structural writer and the
  // stats server; held across each tick and across to_json().
  void set_mutex(std::mutex* mu) { external_mu_ = mu; }

  void sample_once();
  void start();
  void stop();
  bool running() const { return thread_.joinable(); }
  u64 ticks() const { return ticks_.load(std::memory_order_acquire); }

  // History of one series (empty when unknown). Name is the derived name,
  // e.g. "packets_delivered_total:rate".
  std::vector<Point> history(const std::string& name,
                             const Labels& labels) const;

  // {"period_ms":...,"ticks":...,"dropped_series":...,"series":[
  //   {"name":...,"labels":{...},"kind":"rate|gauge|quantile|probe",
  //    "last":...,"points":[[t_ms,value],...]},...]}
  std::string to_json() const;

 private:
  struct Series {
    MetricKey key;
    std::string kind;
    std::deque<Point> points;  // bounded by options_.capacity
    double last = 0;
    Gauge* derived = nullptr;  // published gauge, when enabled
  };
  struct CounterState {
    u64 last = 0;
    bool primed = false;
  };
  struct Probe {
    MetricKey key;
    std::function<double()> read;
  };

  // Appends one point, enforcing per-series capacity and the global
  // series cap. Returns false when the series table is full.
  bool append(const MetricKey& key, const std::string& kind, u64 t_ns,
              double value, bool publish);
  void tick_locked();

  const MetricsRegistry& source_;
  Options options_;
  MetricsRegistry* derived_target_ = nullptr;
  std::mutex* external_mu_ = nullptr;

  mutable std::mutex mu_;  // guards series_/counter_state_ vs to_json()
  std::map<MetricKey, Series> series_;
  std::map<MetricKey, CounterState> counter_state_;
  std::vector<Probe> probes_;
  u64 dropped_series_ = 0;
  u64 last_tick_ns_ = 0;
  u64 first_tick_ns_ = 0;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<u64> ticks_{0};
};

}  // namespace nfp::telemetry

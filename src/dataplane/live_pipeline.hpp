// Live execution mode: the NFP dataplane on real OS threads.
//
// The simulated-time dataplane (NfpDataplane) is the measurement vehicle;
// this pipeline is the concurrency proof: the same compiled service graphs
// run on actual std::threads connected by the lock-free SPSC rings of
// src/ring — one thread per NF (the paper's one-container-per-core), a
// classifier thread and a merger thread — with packets really copied,
// processed and merged under true parallelism.
//
// The hot path is built on the DPDK idioms of the paper's infrastructure
// layer (§5, Fig 3):
//   * burst ring I/O — packets move between threads in bursts with one
//     index publish per burst (SpscRing::push_burst/pop_burst),
//   * per-thread magazine caches over a lock-free packet pool — alloc,
//     release and add_ref never take a lock (PacketMagazine / PacketPool),
//   * precomputed fanout plans — each segment's version-copy list and
//     per-version reference counts are resolved at construction, not per
//     packet,
//   * a sharded, allocation-free merge table — one open-addressing
//     MergeTable per parallel segment with fixed-capacity arrival rows,
//   * batched result delivery — completed outputs and drops are buffered
//     thread-locally and the result lock is taken once per burst.
// bench_hotpath_throughput measures the effect; `per_packet_compat` in the
// options reproduces the old serialized per-packet path as its baseline.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "dataplane/fanout_plan.hpp"
#include "graph/service_graph.hpp"
#include "nfs/nf.hpp"
#include "packet/packet_magazine.hpp"
#include "packet/packet_pool.hpp"
#include "ring/spsc_ring.hpp"
#include "telemetry/flow_observatory.hpp"
#include "telemetry/latency_observatory.hpp"
#include "telemetry/scalability_profiler.hpp"

namespace nfp {

class RtcExecutor;

namespace telemetry {
class HealthSampler;
class Watchdog;
}  // namespace telemetry

// How the compiled graph executes on the live dataplane:
//   kPipelined  one thread per NF plus a merger, connected by SPSC burst
//               rings — the paper's one-container-per-core deployment and
//               the mode every PR up to now ran exclusively;
//   kRtc        fused run-to-completion — the caller's thread walks the
//               graph inline per packet (RtcExecutor): sequential hops are
//               direct calls, parallel segments fused branch-sequences
//               with an inline merge. No rings, no merger thread;
//   kAuto       resolved per graph at construction: sequential graphs take
//               kRtc (a pure win — the rings only added hand-off cost),
//               graphs with parallel segments keep kPipelined, whose
//               cross-thread execution is the paper's actual latency
//               mechanism. DESIGN.md "Execution modes" has the full rule.
enum class ExecMode : u8 { kPipelined = 0, kRtc = 1, kAuto = 2 };

// "pipelined" / "rtc" / "auto" (kAuto only appears pre-resolution).
const char* exec_mode_name(ExecMode mode) noexcept;
// Parses the CLI spelling; nullopt for anything else.
std::optional<ExecMode> parse_exec_mode(std::string_view name) noexcept;

struct LiveResult {
  // Delivered packets in merger-completion order, as raw frames.
  std::vector<std::vector<u8>> outputs;
  u64 dropped = 0;
  // Error status for misuse (run()/start() on an already-used pipeline);
  // ok on every normal completion.
  Status status;
};

// Hot-path knobs, constructor-configurable so benches can sweep them.
struct LivePipelineOptions {
  std::size_t ring_depth = 256;     // per-NF RX/TX ring capacity (pow2)
  std::size_t pool_size = 4096;     // shared packet-pool slots
  std::size_t in_flight_window = 0; // 0 => ring_depth / 4
  std::size_t magazine_size = 64;   // per-thread free-slot cache; 0 = none
  std::size_t burst_size = 32;      // ring burst granularity
  // Reproduces the pre-batching hot path — burst 1, no magazines, every
  // pool operation behind one global mutex — as the measurable baseline
  // for bench_hotpath_throughput. Output-equivalent to the batched path.
  bool per_packet_compat = false;
  // When >= 0, every pipeline thread (NFs + merger) pins itself to this
  // core via cpu_affinity — the sharded dataplane's shared-nothing
  // one-core-per-shard placement. Pin failures degrade to unpinned
  // threads; affinity_applied() reports the outcome.
  int pin_core = -1;
  // Per-thread cycle accounting for the scalability profiler. On by
  // default: the hot-path cost is one relaxed add to a thread-private
  // cacheline per loop iteration (bench_hotpath_throughput's noacct series
  // measures it). Off disables all bucket/wait attribution.
  bool cycle_accounting = true;
  // Latency-observatory sampling: stamp and stage-time 1 in N packets
  // (0 = off, the default). feed() samples pid % N; feed_stamped() lets the
  // sharded director pass its own flow-hash decision + origin stamp in.
  // Unsampled packets pay one zero-check branch per hop; sampled ones two
  // clock reads per NF hop (bench's lat32-acct/noacct pair gates the cost).
  std::size_t latency_sample_every = 0;
  // Execution mode (see ExecMode above). kAuto resolves at construction;
  // exec_mode() reports the resolved choice. per_packet_compat forces
  // kPipelined — compat exists to reproduce the old pipelined hot path.
  ExecMode exec_mode = ExecMode::kPipelined;
};

class LivePipeline {
 public:
  // `factory` defaults to make_builtin_nf (instance id as seed).
  explicit LivePipeline(ServiceGraph graph,
                        std::function<std::unique_ptr<NetworkFunction>(
                            const StageNf&)> factory = {},
                        LivePipelineOptions options = {});
  ~LivePipeline();

  LivePipeline(const LivePipeline&) = delete;
  LivePipeline& operator=(const LivePipeline&) = delete;

  // Feeds `frames` through the graph and blocks until every packet has been
  // delivered or dropped. May be called once per pipeline; a second call
  // returns a LiveResult whose status carries the violation.
  LiveResult run(const std::vector<std::vector<u8>>& frames);

  // Streaming ingest, the API the sharded dataplane drives continuously:
  //   start()  spawn the worker threads (once per pipeline — a second call
  //            errors, enforcing the old run()-once contract in code);
  //   feed()   copy one frame in (blocking under the in-flight window and
  //            pool backpressure); single-ingest-thread discipline — only
  //            one thread may call feed(), segment-0 rings are SPSC;
  //   drain()  wait for every in-flight packet, stop and join the workers,
  //            and hand back the accumulated result.
  // run() is now a start + feed-loop + drain composition.
  Status start();
  bool feed(std::span<const u8> frame);
  // feed() with the latency-sampling decision made by the caller:
  // origin_ns != 0 marks the packet sampled with that ingest timestamp
  // (the sharded director stamps at its own feed() so the span includes
  // director pool/ring/classify time); origin_ns == 0 means unsampled —
  // no fallback to the pid heuristic. Plain feed() self-samples by
  // pid % latency_sample_every when the knob is set.
  // `flow` (optional) is the caller's already-parsed flow identity (the
  // sharded director computes it once per frame); it is copied onto the
  // pipeline's packet so drop exemplars and flow accounting reuse it
  // instead of reparsing. nullptr leaves the packet's FlowRef invalid and
  // drop paths parse lazily (they are cold).
  bool feed_stamped(std::span<const u8> frame, u64 origin_ns,
                    const FlowRef* flow = nullptr);
  LiveResult drain();

  NetworkFunction* nf(std::size_t segment, std::size_t index);

  const LivePipelineOptions& options() const noexcept { return opts_; }
  // The resolved execution mode (never kAuto after construction).
  ExecMode exec_mode() const noexcept { return opts_.exec_mode; }

  // Health-instrumentation surface. Workers are indexed NFs-in-graph-order
  // first, then the merger last; all reads are safe from a sampler thread
  // while run() executes.
  std::size_t worker_count() const;
  std::string worker_name(std::size_t w) const;
  // Steady-clock ns of the worker's last loop iteration; 0 until the worker
  // starts. A worker wedged inside an NF's process() stops beating.
  u64 worker_heartbeat_ns(std::size_t w) const;
  u64 worker_packets(std::size_t w) const;
  std::size_t ring_depth_in(std::size_t w) const;   // merger: 0
  std::size_t ring_depth_out(std::size_t w) const;  // merger: 0
  std::size_t pool_in_use() const { return pool_.in_use(); }
  std::size_t pool_capacity() const { return pool_.capacity(); }
  u64 dropped_so_far();
  u64 delivered_so_far();
  // Per-reason drop attribution: every path that counts a drop into the
  // result also tags exactly one DropReason, so the sum over reasons
  // equals dropped_so_far() once the pipeline is drained (the flow
  // observatory's taxonomy invariant).
  u64 dropped_by(telemetry::DropReason reason) const;
  // Optional sink for sampled drop exemplars (5-tuple, stage, reason,
  // timestamp); the sharded dataplane points every pipeline of a shard at
  // the shard's ring. Call before start().
  void set_drop_exemplar_ring(telemetry::DropExemplarRing* ring);
  // Allocator-pressure counters: batch refills/flushes between the
  // per-thread magazines and the shared pool, and detected refcount
  // underflows. Exported via register_health for `nfp_cli top`.
  u64 magazine_refills() const {
    return mag_refill_total_.load(std::memory_order_relaxed);
  }
  u64 magazine_flushes() const {
    return mag_flush_total_.load(std::memory_order_relaxed);
  }
  u64 refcnt_underflows() const { return pool_.refcnt_underflow_total(); }
  // Pin outcome under options().pin_core: true once every spawned thread
  // that attempted a pin succeeded (false with pin_core < 0, on platforms
  // without affinity support, or when the kernel rejected the mask).
  bool affinity_applied() const {
    const u64 attempts = affinity_attempts_.load(std::memory_order_relaxed);
    return attempts > 0 &&
           affinity_ok_.load(std::memory_order_relaxed) == attempts;
  }
  u64 affinity_attempts() const {
    return affinity_attempts_.load(std::memory_order_relaxed);
  }
  // Scrape-time fold of every thread's cycle buckets plus the pool/ring
  // contention evidence (zeroed buckets when cycle_accounting is off).
  // Safe from a profiler/sampler thread while the pipeline runs.
  telemetry::ShardScalabilitySnapshot scalability_snapshot();
  // Scrape-time fold of every thread's stage-latency histograms plus the
  // current ring occupancy (queue_depth). Zero histograms when
  // latency_sample_every is 0. Safe from an observatory thread while the
  // pipeline runs.
  telemetry::ShardLatencySnapshot latency_snapshot() const;
  // Feed-side wait time (in-flight window + pool alloc + segment-0 ring),
  // already inside the snapshot's ring/pool buckets; exposed separately so
  // the sharded dataplane can carve it out of its worker's useful time.
  u64 feeder_wait_ns() const;
  // Registers ring/pool/heartbeat probes on `sampler` and stall / pool /
  // drop-spike rules on `watchdog` (null to skip). Call before run().
  // A non-empty `shard` tags every probe with a {"shard", ...} label and
  // prefixes watchdog component names so S shards coexist in one registry.
  void register_health(telemetry::HealthSampler& sampler,
                       telemetry::Watchdog* watchdog,
                       const std::string& shard = {});

 private:
  // NF → merger hand-off. The drop intent travels out-of-band rather than
  // on the packet's nil bit: parallel NFs sharing one packet version would
  // otherwise race writing set_nil() on the same Packet (TSan-visible, and
  // one sender's intent could clobber another's).
  struct MergeEnvelope {
    Packet* pkt = nullptr;
    bool drop_intent = false;
    // Latency spans for sampled packets (zero otherwise): parallel NFs
    // report out-of-band for the same no-shared-packet-writes reason as
    // drop_intent. out_ns is the push timestamp the merger subtracts to
    // get merge-wait on the critical branch.
    u64 queue_ns = 0;
    u64 service_ns = 0;
    u64 out_ns = 0;
  };

  struct LiveNf {
    StageNf meta;
    std::unique_ptr<NetworkFunction> impl;
    // Inbound ring; owned here, fed by the classifier/merger thread.
    std::unique_ptr<SpscRing<Packet*>> in;
    // Outbound ring to the merger; unused on sequential hops.
    std::unique_ptr<SpscRing<MergeEnvelope>> out;
    std::thread thread;
    // Heap-allocated: LiveNf is moved into segments_ and atomics can't move.
    std::unique_ptr<std::atomic<u64>> heartbeat_ns;
    std::unique_ptr<std::atomic<u64>> processed;
    // Thread-private cycle buckets; null when cycle_accounting is off.
    std::unique_ptr<telemetry::CycleCounters> cycles;
    // Thread-private stage-latency histograms; null when
    // latency_sample_every is 0.
    std::unique_ptr<telemetry::StageLatencyBlock> lat_block;
  };

  // Builds a thread's magazine wired to this pipeline's counters (and the
  // compat mutex in per-packet mode).
  PacketMagazine make_magazine();

  // Applies opts_.pin_core to the calling pipeline thread, keeping the
  // attempt/success tally behind affinity_applied().
  void maybe_pin_current_thread();

  void nf_loop(std::size_t seg_idx, std::size_t nf_idx);
  void merger_loop();
  // Distributes a packet into segment `seg_idx` using the caller's
  // magazine; returns false on pool exhaustion (fanout copies already made
  // are released; `pkt` itself stays with the caller, which records the
  // drop reason and releases it). Contended ring pushes are credited to
  // the caller's accountant as ring_wait (null to skip).
  bool enter_segment(std::size_t seg_idx, Packet* pkt, PacketMagazine& mag,
                     telemetry::CycleAccountant* acct);

  // Tags one dropped packet with its reason (relaxed counter) and samples
  // it into the exemplar ring when one is attached. Cold path by
  // definition — dropping is the exception.
  void note_drop(telemetry::DropReason reason, const char* stage,
                 const FlowRef* flow);

  // Flushes a thread-local result batch under one result_mu_ acquisition
  // and retires the completed packets from the in-flight window.
  void commit_batch(std::vector<std::vector<u8>>& outputs, u64 drops,
                    u64 completed);

  // Records all six stage spans for a sampled packet into `block` at
  // delivery time `now` (egress = saturating remainder, so the stages
  // telescope to total by construction). No-op when origin_ns == 0.
  static void finalize_latency(const Packet& pkt,
                               telemetry::StageLatencyBlock* block, u64 now);

  // Resolves a worker index to its LiveNf, or nullptr for the merger slot.
  const LiveNf* worker_nf(std::size_t w) const;

  ServiceGraph graph_;
  LivePipelineOptions opts_;
  PacketPool pool_;
  // Set when the resolved mode is kRtc: the fused executor replaces the
  // thread/ring machinery below wholesale (segments_ stays empty, no
  // threads spawn) and every lifecycle/telemetry call delegates to it. The
  // pool and magazine counters are shared, so health probes read the same
  // cells in both modes.
  std::unique_ptr<RtcExecutor> rtc_;
  std::vector<std::vector<LiveNf>> segments_;
  std::vector<FanoutPlan> fanout_;
  std::thread merger_thread_;
  std::atomic<u64> merger_heartbeat_ns_{0};
  std::atomic<u64> merger_merges_{0};
  // Merger / feed-side accounting blocks; null when accounting is off.
  std::unique_ptr<telemetry::CycleCounters> merger_cycles_;
  std::unique_ptr<telemetry::CycleCounters> feeder_cycles_;
  // Merger-thread stage-latency block (the merger finalizes every sampled
  // packet that exits through a parallel segment); null when sampling off.
  std::unique_ptr<telemetry::StageLatencyBlock> merger_lat_block_;
  // Backoff::pause calls spent in feed()'s window/alloc waits.
  std::atomic<u64> feeder_spin_total_{0};

  // Aggregated magazine traffic across all pipeline threads.
  std::atomic<u64> mag_refill_total_{0};
  std::atomic<u64> mag_flush_total_{0};
  // Serializes pool access in per_packet_compat mode only.
  std::mutex compat_mu_;

  // Streaming lifecycle: kNew --start()--> kRunning --drain()--> kFinished.
  // The CAS in start() is what turns the documented run-once contract into
  // an enforced one.
  enum class RunState : int { kNew = 0, kRunning = 1, kFinished = 2 };
  std::atomic<RunState> state_{RunState::kNew};
  // Ingest-thread state; feed() is single-threaded by contract, so these
  // need no synchronisation beyond the pipeline lifecycle itself.
  std::unique_ptr<PacketMagazine> feeder_mag_;
  u64 next_pid_ = 0;

  std::atomic<u64> affinity_attempts_{0};
  std::atomic<u64> affinity_ok_{0};

  std::atomic<bool> stop_{false};
  std::atomic<u64> in_flight_{0};
  std::mutex result_mu_;
  LiveResult result_;

  // Drop-reason taxonomy: one relaxed counter per reason (any pipeline
  // thread may drop) plus the optional shared exemplar ring.
  std::array<std::atomic<u64>, telemetry::kDropReasonCount> drop_reasons_{};
  telemetry::DropExemplarRing* drop_exemplars_ = nullptr;
};

}  // namespace nfp

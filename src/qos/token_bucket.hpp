// Token-bucket rate limiter on simulated time.
//
// Substrate for the traffic shaper NF: classic single-rate bucket with a
// byte budget refilled continuously at `rate_bytes_per_sec` and capped at
// `burst_bytes`. conform() answers whether a frame fits the profile at time
// `now` (and spends tokens when it does).
#pragma once

#include <algorithm>

#include "common/types.hpp"

namespace nfp {

class TokenBucket {
 public:
  TokenBucket(u64 rate_bytes_per_sec, u64 burst_bytes)
      : rate_(rate_bytes_per_sec),
        burst_(burst_bytes),
        tokens_(static_cast<double>(burst_bytes)) {}

  // Refills for the elapsed time and, if `bytes` tokens are available,
  // spends them and returns true; returns false (non-conforming) otherwise.
  bool conform(SimTime now, std::size_t bytes) noexcept {
    refill(now);
    if (tokens_ >= static_cast<double>(bytes)) {
      tokens_ -= static_cast<double>(bytes);
      return true;
    }
    return false;
  }

  // Earliest time at which a frame of `bytes` would conform (now if it
  // already does). Used for pacing instead of dropping.
  SimTime next_conform_time(SimTime now, std::size_t bytes) noexcept {
    refill(now);
    if (tokens_ >= static_cast<double>(bytes)) return now;
    const double missing = static_cast<double>(bytes) - tokens_;
    const double wait_sec = missing / static_cast<double>(rate_);
    return now + static_cast<SimTime>(wait_sec * 1e9) + 1;
  }

  double tokens() const noexcept { return tokens_; }
  u64 rate() const noexcept { return rate_; }

 private:
  void refill(SimTime now) noexcept {
    if (now <= last_) return;
    const double elapsed_sec =
        static_cast<double>(now - last_) / 1e9;
    tokens_ = std::min(static_cast<double>(burst_),
                       tokens_ + elapsed_sec * static_cast<double>(rate_));
    last_ = now;
  }

  u64 rate_;
  u64 burst_;
  double tokens_;
  SimTime last_ = 0;
};

}  // namespace nfp

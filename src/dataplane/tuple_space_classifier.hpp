// Tuple-space search classifier for the live Classification Table.
//
// The compiler's CT holds masked 5-tuple rules; at 100k rules the old
// priority-ordered linear scan costs O(rules) per microflow-cache miss. This
// is the same wall OVS hit, and we adopt the same answer (its megaflow
// classifier): group rules by *mask signature* — the (src_mask, dst_mask,
// match_src_port, match_dst_port, match_proto) quintuple — into one
// exact-match hash table per distinct signature. A lookup masks the packet's
// 5-tuple with each signature and probes once per table, so cost is
// O(distinct masks), not O(rules); real rule sets reuse a handful of mask
// shapes no matter how many rules they hold.
//
// Two prunes keep the tuple walk short:
//  - Priority: tuples are sorted by descending max rule priority, so the
//    walk stops as soon as the best verdict found so far outranks every
//    rule a remaining tuple could produce. Ties continue the walk
//    (an equal-priority rule inserted earlier still has to win).
//  - Prefix (OVS's staged-lookup trick, via src/lpm): all contiguous
//    src/dst prefixes live in two binary tries; one trie walk per lookup
//    yields a bitmask of prefix lengths under which this address matches
//    *some* rule, and tuples whose prefix length bit is clear are skipped
//    without hashing. Non-contiguous and wildcard masks opt out of the
//    prune (always probed) — pruning is conservative-only.
//
// A TupleSpaceClassifier is an immutable snapshot: build() constructs one
// from the authoritative rule list, classify() is const and touches no
// shared mutable state, so readers need no lock — LiveClassificationTable
// publishes snapshots through an atomic pointer under epoch protection.
//
// LinearCtScan is the original scan kept verbatim as the differential-
// testing reference: the tuple-space verdict must match it bit-for-bit,
// including priority tie-breaks (earliest-inserted wins), drop verdicts and
// the graph-0 default.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "lpm/lpm_table.hpp"

namespace nfp {

// One masked Classification Table rule (the live analogue of the compiler's
// CtEntry match spec): every enabled predicate must hold. mask == 0
// wildcards an address; the port/proto predicates are opt-in flags.
struct CtRule {
  u32 src_ip = 0;
  u32 src_mask = 0;
  u32 dst_ip = 0;
  u32 dst_mask = 0;
  u16 src_port = 0;
  bool match_src_port = false;
  u16 dst_port = 0;
  bool match_dst_port = false;
  u8 proto = 0;
  bool match_proto = false;
  int priority = 0;          // higher wins among matching rules
  std::size_t graph = 0;     // verdict: index of the service graph

  bool matches(const FiveTuple& t) const noexcept {
    if ((t.src_ip & src_mask) != (src_ip & src_mask)) return false;
    if ((t.dst_ip & dst_mask) != (dst_ip & dst_mask)) return false;
    if (match_src_port && t.src_port != src_port) return false;
    if (match_dst_port && t.dst_port != dst_port) return false;
    if (match_proto && t.proto != proto) return false;
    return true;
  }
};

using ExactCtMap = std::unordered_map<FiveTuple, std::size_t, FiveTupleHash>;

// Sentinel verdict: drop the flow at classification time (a CT drop rule —
// the DDoS-scrubbing use in the paper's policy examples).
inline constexpr std::size_t kCtDropGraph = static_cast<std::size_t>(-1);

// The pre-tuple-space classifier, preserved as the semantic reference for
// differential tests and the baseline side of bench_classifier_scale. Not
// thread-safe; single-owner use only.
class LinearCtScan {
 public:
  explicit LinearCtScan(std::size_t graph_count = 1)
      : graph_count_(graph_count == 0 ? 1 : graph_count) {}

  void add_exact(const FiveTuple& flow, std::size_t graph);
  void add_rule(CtRule rule);
  // Bulk append with a single stable sort (per-insert re-sorting is
  // quadratic at benchmark scale).
  void add_rules(const std::vector<CtRule>& rules);

  // Exact match, else best (priority desc, insertion order asc) masked
  // rule, else graph 0.
  std::size_t classify(const FiveTuple& flow) const;

  std::size_t graph_count() const noexcept { return graph_count_; }
  std::size_t rule_entries() const noexcept { return rules_.size(); }

 private:
  std::size_t clamp_graph(std::size_t g) const noexcept {
    if (g == kCtDropGraph) return g;
    return g < graph_count_ ? g : 0;
  }

  const std::size_t graph_count_;
  ExactCtMap exact_;
  std::vector<CtRule> rules_;  // kept stable-sorted by descending priority
};

// Immutable tuple-space snapshot. Thread-safe for concurrent classify()
// because nothing mutates after build().
class TupleSpaceClassifier {
 public:
  // Builds a snapshot from the authoritative state. `rules` must be in
  // insertion order — the index is the priority tie-break. Out-of-range
  // graphs clamp to 0 (kCtDropGraph survives clamping).
  static std::shared_ptr<const TupleSpaceClassifier> build(
      const ExactCtMap& exact, std::span<const CtRule> rules,
      std::size_t graph_count);

  std::size_t classify(const FiveTuple& flow) const;

  std::size_t graph_count() const noexcept { return graph_count_; }
  // Distinct mask signatures — the number a miss-path lookup is linear in.
  std::size_t tuple_count() const noexcept { return tuples_.size(); }
  std::size_t rule_count() const noexcept { return rule_count_; }

 private:
  // Winning rule for one (tuple, masked key): max by (priority desc,
  // insertion order asc). Rules sharing both have identical match
  // predicates, so only the winner is reachable.
  struct Candidate {
    int priority = 0;
    u32 seq = 0;       // insertion index; lower wins priority ties
    std::size_t graph = 0;
  };

  // One distinct mask signature and its exact-match table of masked keys.
  struct Tuple {
    u32 src_mask = 0;
    u32 dst_mask = 0;
    bool match_src_port = false;
    bool match_dst_port = false;
    bool match_proto = false;
    int max_priority = 0;      // walk-pruning bound over entries
    i8 src_prefix_len = -1;    // 0..32 when the mask is a prefix, else -1
    i8 dst_prefix_len = -1;
    std::unordered_map<FiveTuple, Candidate, FiveTupleHash> entries;
  };

  explicit TupleSpaceClassifier(std::size_t graph_count)
      : graph_count_(graph_count == 0 ? 1 : graph_count) {}

  std::size_t clamp_graph(std::size_t g) const noexcept {
    if (g == kCtDropGraph) return g;
    return g < graph_count_ ? g : 0;
  }

  std::size_t graph_count_;
  std::size_t rule_count_ = 0;
  ExactCtMap exact_;
  std::vector<Tuple> tuples_;  // sorted by descending max_priority
  // All contiguous rule prefixes, for the staged-lookup prune. The stored
  // next-hop value is unused; only "does a prefix of length L cover this
  // address" matters (LpmTable::match_length_mask).
  bool src_trie_used_ = false;
  bool dst_trie_used_ = false;
  LpmTable src_trie_;
  LpmTable dst_trie_;
};

// Deterministic synthetic rule set for benchmarks and stress tests: `count`
// rules cycling through ~56 mask signatures. Every rule constrains src to a
// prefix of at least /8 inside 10.0.0.0/8, so traffic from e.g. 192.168/16
// is guaranteed to miss every rule and exercise the full walk. Priorities
// collide heavily (0..15) to stress the tie-break; ~1% of rules are drop
// rules (graph == kCtDropGraph).
std::vector<CtRule> synthetic_ct_rules(std::size_t count, u64 seed,
                                       std::size_t graph_count);

}  // namespace nfp

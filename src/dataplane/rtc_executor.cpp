#include "dataplane/rtc_executor.hpp"

#include <cstring>

#include "dataplane/live_pipeline.hpp"
#include "dataplane/merge_ops.hpp"
#include "packet/packet_view.hpp"
#include "telemetry/health_sampler.hpp"

namespace nfp {

namespace {
inline u64 sat_sub(u64 a, u64 b) noexcept { return a >= b ? a - b : 0; }
}  // namespace

RtcExecutor::RtcExecutor(
    ServiceGraph& graph,
    const std::function<std::unique_ptr<NetworkFunction>(const StageNf&)>&
        factory,
    const LivePipelineOptions& opts, PacketPool& pool,
    std::atomic<u64>* mag_refill_total, std::atomic<u64>* mag_flush_total)
    : graph_(graph),
      opts_(opts),
      pool_(pool),
      mag_refill_total_(mag_refill_total),
      mag_flush_total_(mag_flush_total) {
  // Same instance-id assignment as the pipelined constructor, so factories
  // and drop exemplars see identical NF identities in both modes.
  int instance = 0;
  for (Segment& seg : graph_.segments()) {
    std::vector<RtcNf> nfs;
    for (StageNf& meta : seg.nfs) {
      meta.instance_id = instance++;
      RtcNf nf;
      nf.meta = meta;
      nf.impl = factory ? factory(meta)
                        : make_builtin_nf(
                              meta.name,
                              static_cast<u64>(meta.instance_id) + 1);
      if (nf.impl == nullptr) nf.impl = make_builtin_nf("monitor");
      nf.stage =
          "rtc:" + meta.name + "#" + std::to_string(meta.instance_id);
      nfs.push_back(std::move(nf));
    }
    segments_.push_back(std::move(nfs));
    fanout_.push_back(build_fanout_plan(seg));
  }
  if (opts_.latency_sample_every > 0) {
    lat_block_ = std::make_unique<telemetry::StageLatencyBlock>();
  }
}

RtcExecutor::~RtcExecutor() {
  if (mag_ != nullptr) mag_->drain();
}

void RtcExecutor::note_drop(telemetry::DropReason reason, const char* stage,
                            const FlowRef* flow) {
  drop_reasons_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  if (drop_exemplars_ != nullptr) {
    drop_exemplars_->record(reason, stage, flow, telemetry::mono_now_ns());
  }
}

Status RtcExecutor::start() {
  RunState expected = RunState::kNew;
  if (!state_.compare_exchange_strong(expected, RunState::kRunning,
                                      std::memory_order_acq_rel)) {
    return Status::error(
        "RtcExecutor::start(): executor already started — each "
        "run-to-completion executor runs exactly once; construct a fresh "
        "instance for another run");
  }
  mag_ = std::make_unique<PacketMagazine>(pool_, opts_.magazine_size,
                                          mag_refill_total_,
                                          mag_flush_total_, nullptr);
  return Status::ok();
}

bool RtcExecutor::feed(std::span<const u8> frame) {
  // Standalone sampling: no flow hash at this layer, so sample by pid —
  // the same heuristic as the pipelined feed().
  u64 origin = 0;
  if (opts_.latency_sample_every != 0 &&
      next_pid_ % opts_.latency_sample_every == 0) {
    origin = telemetry::mono_now_ns();
  }
  return feed_stamped(frame, origin);
}

bool RtcExecutor::feed_stamped(std::span<const u8> frame, u64 origin_ns,
                               const FlowRef* flow) {
  if (state_.load(std::memory_order_acquire) != RunState::kRunning) {
    return false;
  }
  if (lat_block_ == nullptr) origin_ns = 0;
  PacketMagazine& mag = *mag_;
  Packet* pkt = mag.alloc(frame.size());
  if (pkt == nullptr) {
    // Run-to-completion holds at most (1 + fanout copies) slots and this is
    // the only allocating thread, so a dry pool is a sizing error, not
    // transient backpressure — blocking here would spin forever. Tail-drop
    // with the taxonomy reason instead.
    note_drop(telemetry::DropReason::kPoolExhausted, "rtc:feeder", flow);
    dropped_.increment();
    return false;
  }
  std::memcpy(pkt->data(), frame.data(), frame.size());
  pkt->meta().set_pid(next_pid_++ & Metadata::kMaxPid);
  if (flow != nullptr) pkt->flow() = *flow;
  if (origin_ns != 0) {
    // Ingest closes here, as on the pipelined path: origin -> ready-to-run
    // covers the caller's spans (director pool/ring/classify). The mark
    // opens the first queue span.
    const u64 now = telemetry::mono_now_ns();
    LatencyStamps& lat = pkt->lat();
    lat.origin_ns = origin_ns;
    lat.ingest_ns = sat_sub(now, origin_ns);
    lat.mark_ns = now;
  }
  execute(pkt);
  return true;
}

Packet* RtcExecutor::run_parallel_segment(std::size_t seg_idx, Packet* pkt) {
  const Segment& seg = graph_.segments()[seg_idx];
  const FanoutPlan& plan = fanout_[seg_idx];
  auto& nfs = segments_[seg_idx];
  PacketMagazine& mag = *mag_;

  pkt->meta().set_mid(seg.mid);
  pkt->meta().set_version(1);
  pkt->set_nil(false);

  std::array<Packet*, Metadata::kMaxVersion + 2> version_pkt{};
  version_pkt[1] = pkt;
  for (const FanoutPlan::Copy& c : plan.copies) {
    Packet* copy =
        c.full ? mag.clone_full(*pkt) : mag.clone_header_only(*pkt);
    if (copy == nullptr) {
      for (const FanoutPlan::Copy& made : plan.copies) {
        if (made.version == c.version) break;
        mag.release(version_pkt[made.version]);
      }
      note_drop(telemetry::DropReason::kPoolExhausted, "rtc:fanout",
                &pkt->flow());
      mag.release(pkt);
      dropped_.increment();
      return nullptr;
    }
    copy->meta().set_version(c.version);
    copy->set_nil(false);
    version_pkt[c.version] = copy;
  }
  // No extra references, unlike enter_segment: the branches run one after
  // another on this thread, so a version shared by several NFs needs no
  // concurrent-consumer refcount — each distinct version is released
  // exactly once after the merge.

  const bool sampled = pkt->lat().origin_ns != 0;
  if (sampled) {
    const u64 t0 = telemetry::mono_now_ns();
    pkt->lat().queue_ns += sat_sub(t0, pkt->lat().mark_ns);
    pkt->lat().mark_ns = t0;
  }
  // The fused branch-sequence: every branch NF in declaration order on its
  // version's packet. Drop intents collect out-of-band like the pipelined
  // envelopes — siblings sharing a version must not race on the nil bit,
  // and here "race" degenerates to "clobber in order", which is just as
  // wrong for the merge's drop resolution.
  intent_.assign(nfs.size(), 0);
  for (std::size_t k = 0; k < nfs.size(); ++k) {
    Packet* version = version_pkt[plan.nf_version[k]];
    PacketView view(*version);
    NfVerdict verdict = NfVerdict::kPass;
    if (view.valid()) verdict = nfs[k].impl->process(view);
    ++nfs[k].processed;
    intent_[k] = verdict == NfVerdict::kDrop ? 1 : 0;
  }
  if (sampled) {
    // The whole fused sequence is service time. merge_ns / merges stay
    // untouched: an inline merge has no cross-thread wait, so the
    // merge_wait stage records no sample for this packet (its count keeps
    // meaning "packets that waited at a merge point").
    const u64 t1 = telemetry::mono_now_ns();
    pkt->lat().service_ns += sat_sub(t1, pkt->lat().mark_ns);
    pkt->lat().mark_ns = t1;
  }

  // Drop resolution, same policies as the merger thread (§5.2's nil-packet
  // semantics): any-drop ORs the intents; priority takes the intent of the
  // highest-priority can_drop branch.
  bool dropped = false;
  if (seg.merge.drop_resolution == DropResolution::kAnyDrop) {
    for (const u8 i : intent_) dropped |= i != 0;
  } else {
    i32 best = -1;
    for (std::size_t k = 0; k < nfs.size(); ++k) {
      if (nfs[k].meta.can_drop && nfs[k].meta.priority > best) {
        best = nfs[k].meta.priority;
        dropped = intent_[k] != 0;
      }
    }
  }

  Packet* merged = nullptr;
  if (!dropped) {
    pairs_.clear();
    for (std::size_t v = 1; v < version_pkt.size(); ++v) {
      if (version_pkt[v] != nullptr) {
        pairs_.emplace_back(version_pkt[v], static_cast<u8>(v));
      }
    }
    merged = apply_merge_operations(seg, pairs_);
  }
  if (merged == nullptr) {
    note_drop(telemetry::DropReason::kNfVerdict, "rtc:merge", &pkt->flow());
  }
  for (std::size_t v = 1; v < version_pkt.size(); ++v) {
    if (version_pkt[v] != nullptr && version_pkt[v] != merged) {
      mag.release(version_pkt[v]);
    }
  }
  if (merged == nullptr) {
    dropped_.increment();
    return nullptr;
  }
  merged->set_nil(false);
  return merged;
}

void RtcExecutor::execute(Packet* pkt) {
  PacketMagazine& mag = *mag_;
  const auto& segs = graph_.segments();
  for (std::size_t s = 0; s < segs.size(); ++s) {
    const Segment& seg = segs[s];
    if (seg.is_parallel()) {
      pkt = run_parallel_segment(s, pkt);
      if (pkt == nullptr) return;  // dropped; reason already tagged
      continue;
    }
    // Sequential hop: a direct function call — the whole point. Telescoping
    // marks live on the packet exactly as on a pipelined sequential hop.
    RtcNf& nf = segments_[s][0];
    pkt->meta().set_mid(seg.mid);
    pkt->meta().set_version(1);
    const bool sampled = pkt->lat().origin_ns != 0;
    if (sampled) {
      const u64 t0 = telemetry::mono_now_ns();
      pkt->lat().queue_ns += sat_sub(t0, pkt->lat().mark_ns);
      pkt->lat().mark_ns = t0;
    }
    PacketView view(*pkt);
    NfVerdict verdict = NfVerdict::kPass;
    if (view.valid()) verdict = nf.impl->process(view);
    ++nf.processed;
    if (sampled) {
      const u64 t1 = telemetry::mono_now_ns();
      pkt->lat().service_ns += sat_sub(t1, pkt->lat().mark_ns);
      pkt->lat().mark_ns = t1;
    }
    if (verdict == NfVerdict::kDrop) {
      note_drop(telemetry::DropReason::kNfVerdict, nf.stage.c_str(),
                &pkt->flow());
      mag.release(pkt);
      dropped_.increment();
      return;
    }
  }

  // Delivered. Same egress convention as the pipelined finalize: the last
  // mark is "now", so egress = total - accounted covers only clock quirks.
  outputs_.emplace_back(pkt->data(), pkt->data() + pkt->length());
  const LatencyStamps& lat = pkt->lat();
  if (lat.origin_ns != 0 && lat_block_ != nullptr) {
    const u64 total = sat_sub(lat.mark_ns, lat.origin_ns);
    const u64 accounted =
        lat.ingest_ns + lat.queue_ns + lat.service_ns + lat.merge_ns;
    lat_block_->record(telemetry::LatencyStage::kIngest, lat.ingest_ns);
    lat_block_->record(telemetry::LatencyStage::kQueue, lat.queue_ns);
    lat_block_->record(telemetry::LatencyStage::kService, lat.service_ns);
    // Fused merges never bump lat.merges: the merge_wait stage stays empty
    // in RTC mode by construction (stage sums still equal totals).
    if (lat.merges != 0) {
      lat_block_->record(telemetry::LatencyStage::kMergeWait, lat.merge_ns);
    }
    lat_block_->record(telemetry::LatencyStage::kEgress,
                       sat_sub(total, accounted));
    lat_block_->record(telemetry::LatencyStage::kTotal, total);
  }
  mag.release(pkt);
  delivered_.increment();
}

LiveResult RtcExecutor::drain() {
  LiveResult res;
  RunState expected = RunState::kRunning;
  if (!state_.compare_exchange_strong(expected, RunState::kFinished,
                                      std::memory_order_acq_rel)) {
    res.status = Status::error(
        "RtcExecutor::drain(): executor is not running (call start() "
        "first; drain() may only be called once)");
    return res;
  }
  mag_->drain();
  mag_.reset();
  res.outputs = std::move(outputs_);
  res.dropped = dropped_.read();
  return res;
}

telemetry::ShardScalabilitySnapshot RtcExecutor::scalability_snapshot()
    const {
  telemetry::ShardScalabilitySnapshot snap;
  // No pipeline threads, no rings, no merger: the executor's cycles are its
  // caller's useful time (the shard worker's lap covers them), so only the
  // pool evidence and progress counters report here. ring_full_events and
  // every ring_wait/merge_wait bucket are structurally zero — the
  // attribution collapse the profiler verifies.
  snap.pool_cas_retries = pool_.cas_retry_total();
  snap.delivered = delivered_.read();
  snap.dropped = dropped_.read();
  return snap;
}

telemetry::ShardLatencySnapshot RtcExecutor::latency_snapshot() const {
  telemetry::ShardLatencySnapshot snap;
  if (lat_block_ != nullptr) {
    for (std::size_t s = 0; s < telemetry::kLatencyStageCount; ++s) {
      snap.stages[s] +=
          lat_block_->snapshot(static_cast<telemetry::LatencyStage>(s));
    }
  }
  // queue_depth stays 0: there are no rings to occupy.
  return snap;
}

u64 RtcExecutor::feeder_wait_ns() const {
  // The executor never waits: pool exhaustion tail-drops instead of
  // blocking and there are no rings or windows to back-pressure on.
  return 0;
}

}  // namespace nfp

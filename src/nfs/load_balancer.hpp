// Load Balancer NF: ECMP over a backend pool (paper §6.1: "the commonly
// used ECMP mechanism in data centers that hashed the 5-tuple of the packet
// to balance the load"). The chosen backend is written into the destination
// address (virtual-IP to direct-IP translation), which is what makes the LB
// a writer in the action table.
#pragma once

#include <vector>

#include "nfs/nf.hpp"

namespace nfp {

class LoadBalancer final : public NetworkFunction {
 public:
  explicit LoadBalancer(std::vector<u32> backends)
      : backends_(std::move(backends)) {}
  static LoadBalancer with_backends(std::size_t count = 8,
                                    u32 base_addr = 0x0A640000) {
    std::vector<u32> b;
    for (std::size_t i = 0; i < count; ++i) {
      b.push_back(base_addr + static_cast<u32>(i) + 1);
    }
    return LoadBalancer(std::move(b));
  }

  std::string_view type_name() const override { return "lb"; }

  NfVerdict process(PacketView& packet) override {
    const u64 h = hash_five_tuple(packet.five_tuple());
    const u32 backend = backends_[h % backends_.size()];
    packet.set_dst_ip(backend);
    // Source rewrite to the LB's own address (full-proxy mode, like F5).
    packet.set_src_ip(kLbAddress);
    ++balanced_;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_write(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_write(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kProto);  // 5-tuple hash input
    return p;
  }

  u64 balanced() const noexcept { return balanced_; }
  static constexpr u32 kLbAddress = 0x0A630001;

 private:
  std::vector<u32> backends_;
  u64 balanced_ = 0;
};

}  // namespace nfp

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cycles_sweep.dir/bench_fig9_cycles_sweep.cpp.o"
  "CMakeFiles/bench_fig9_cycles_sweep.dir/bench_fig9_cycles_sweep.cpp.o.d"
  "bench_fig9_cycles_sweep"
  "bench_fig9_cycles_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cycles_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

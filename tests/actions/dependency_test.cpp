// Tests for the Table 3 reconstruction and Algorithm 1 — including the
// headline validation: the deployment-weighted pair statistics of paper
// §4.3 (53.8% / 41.5% / 12.3%) emerge from this dependency table.
#include <gtest/gtest.h>

#include "actions/action_table.hpp"
#include "actions/dependency.hpp"
#include "orch/pair_stats.hpp"

namespace nfp {
namespace {

Action read(Field f) { return {ActionType::kRead, f}; }
Action write(Field f) { return {ActionType::kWrite, f}; }
Action addrm() { return {ActionType::kAddRm, Field::kAhHeader}; }
Action drop() { return {ActionType::kDrop, Field::kCount}; }

TEST(DependencyTable, ReadReadSharesCopy) {
  EXPECT_EQ(action_pair_parallelism(read(Field::kSrcIp), read(Field::kSrcIp)),
            PairParallelism::kNoCopy);
}

TEST(DependencyTable, ReadThenWriteSameFieldNeedsCopy) {
  EXPECT_EQ(action_pair_parallelism(read(Field::kSrcIp), write(Field::kSrcIp)),
            PairParallelism::kWithCopy);
}

TEST(DependencyTable, ReadThenWriteDifferentFieldReusesDirtyMemory) {
  EXPECT_EQ(action_pair_parallelism(read(Field::kSrcIp), write(Field::kDstIp)),
            PairParallelism::kNoCopy);
}

TEST(DependencyTable, DirtyMemoryReusingCanBeDisabled) {
  AnalysisOptions opt;
  opt.dirty_memory_reusing = false;
  EXPECT_EQ(action_pair_parallelism(read(Field::kSrcIp), write(Field::kDstIp),
                                    opt),
            PairParallelism::kWithCopy);
  EXPECT_EQ(action_pair_parallelism(write(Field::kTtl), read(Field::kTos),
                                    opt),
            PairParallelism::kWithCopy);
}

TEST(DependencyTable, WriteThenReadSameFieldIsSequential) {
  // §4.1: "NF1 first writes a packet header and later NF2 reads this
  // header ... the two NFs should work in sequence."
  EXPECT_EQ(action_pair_parallelism(write(Field::kDstIp), read(Field::kDstIp)),
            PairParallelism::kNotParallelizable);
}

TEST(DependencyTable, WriteThenReadDifferentFieldParallel) {
  EXPECT_EQ(action_pair_parallelism(write(Field::kDstIp), read(Field::kTtl)),
            PairParallelism::kNoCopy);
}

TEST(DependencyTable, WriteWriteSameFieldCopiesAndMerges) {
  EXPECT_EQ(action_pair_parallelism(write(Field::kSrcIp), write(Field::kSrcIp)),
            PairParallelism::kWithCopy);
}

TEST(DependencyTable, PayloadWritersStaySequentialUnderHeaderOnlyCopying) {
  EXPECT_EQ(
      action_pair_parallelism(write(Field::kPayload), write(Field::kPayload)),
      PairParallelism::kNotParallelizable);
  AnalysisOptions opt;
  opt.header_only_copying = false;
  EXPECT_EQ(action_pair_parallelism(write(Field::kPayload),
                                    write(Field::kPayload), opt),
            PairParallelism::kWithCopy);
}

TEST(DependencyTable, PayloadReadThenWriteNeedsFullCopy) {
  EXPECT_EQ(
      action_pair_parallelism(read(Field::kPayload), write(Field::kPayload)),
      PairParallelism::kWithCopy);
}

TEST(DependencyTable, AddRmAsFirstActionIsSequential) {
  EXPECT_EQ(action_pair_parallelism(addrm(), read(Field::kSrcIp)),
            PairParallelism::kNotParallelizable);
  EXPECT_EQ(action_pair_parallelism(addrm(), write(Field::kSrcIp)),
            PairParallelism::kNotParallelizable);
}

TEST(DependencyTable, AddRmAsSecondActionCopies) {
  EXPECT_EQ(action_pair_parallelism(read(Field::kSrcIp), addrm()),
            PairParallelism::kWithCopy);
  EXPECT_EQ(action_pair_parallelism(write(Field::kSrcIp), addrm()),
            PairParallelism::kWithCopy);
  EXPECT_EQ(action_pair_parallelism(addrm(), addrm()),
            PairParallelism::kWithCopy);
}

TEST(DependencyTable, DropRowIsSequential) {
  // NF1 may drop: NF2 must not process (and build state from) packets NF1
  // would have dropped.
  EXPECT_EQ(action_pair_parallelism(drop(), read(Field::kSrcIp)),
            PairParallelism::kNotParallelizable);
  EXPECT_EQ(action_pair_parallelism(drop(), write(Field::kSrcIp)),
            PairParallelism::kNotParallelizable);
  EXPECT_EQ(action_pair_parallelism(drop(), addrm()),
            PairParallelism::kNotParallelizable);
  EXPECT_EQ(action_pair_parallelism(drop(), drop()),
            PairParallelism::kNotParallelizable);
}

TEST(DependencyTable, DropColumnIsFree) {
  // NF2 may drop: the nil-packet mechanism reproduces sequential semantics.
  EXPECT_EQ(action_pair_parallelism(read(Field::kSrcIp), drop()),
            PairParallelism::kNoCopy);
  EXPECT_EQ(action_pair_parallelism(write(Field::kSrcIp), drop()),
            PairParallelism::kNoCopy);
  EXPECT_EQ(action_pair_parallelism(addrm(), drop()),
            PairParallelism::kNoCopy);
}

// ---- Algorithm 1 on real NF profiles ----------------------------------------

class Algorithm1Test : public ::testing::Test {
 protected:
  ActionTable table_ = ActionTable::with_builtin_nfs();
  const ActionProfile& p(const std::string& name) {
    return table_.profile(name);
  }
};

TEST_F(Algorithm1Test, MonitorThenFirewallParallelNoCopy) {
  // The Fig 1(b) pair: Monitor reads, Firewall reads + drops (as NF2).
  const PairAnalysis a = analyze_pair(p("monitor"), p("firewall"));
  EXPECT_EQ(a.verdict(), PairParallelism::kNoCopy);
}

TEST_F(Algorithm1Test, FirewallThenMonitorSequential) {
  // Reversed: the dropping NF comes first.
  const PairAnalysis a = analyze_pair(p("firewall"), p("monitor"));
  EXPECT_EQ(a.verdict(), PairParallelism::kNotParallelizable);
}

TEST_F(Algorithm1Test, MonitorThenLbNeedsCopy) {
  // West-east chain pair: LB writes addresses the monitor reads.
  const PairAnalysis a = analyze_pair(p("monitor"), p("lb"));
  EXPECT_EQ(a.verdict(), PairParallelism::kWithCopy);
  EXPECT_FALSE(a.conflicts.empty());
}

TEST_F(Algorithm1Test, LbThenMonitorSequential) {
  const PairAnalysis a = analyze_pair(p("lb"), p("monitor"));
  EXPECT_EQ(a.verdict(), PairParallelism::kNotParallelizable);
}

TEST_F(Algorithm1Test, NatThenLbSequential) {
  // §4.1's example: NAT rewrites ports the LB reads.
  const PairAnalysis a = analyze_pair(p("nat"), p("lb"));
  EXPECT_EQ(a.verdict(), PairParallelism::kNotParallelizable);
}

TEST_F(Algorithm1Test, VpnFirstThenReadersSequential) {
  // The VPN adds an AH; downstream NFs must see the restructured packet.
  EXPECT_EQ(analyze_pair(p("vpn"), p("monitor")).verdict(),
            PairParallelism::kNotParallelizable);
}

TEST_F(Algorithm1Test, MonitorThenVpnCopies) {
  EXPECT_EQ(analyze_pair(p("monitor"), p("vpn")).verdict(),
            PairParallelism::kWithCopy);
}

TEST_F(Algorithm1Test, IdsMonitorFreeParallelism) {
  EXPECT_EQ(analyze_pair(p("ids"), p("monitor")).verdict(),
            PairParallelism::kNoCopy);
  EXPECT_EQ(analyze_pair(p("monitor"), p("ids")).verdict(),
            PairParallelism::kNoCopy);
}

TEST_F(Algorithm1Test, ConflictsIdentifyTheFields) {
  const PairAnalysis a = analyze_pair(p("monitor"), p("lb"));
  ASSERT_TRUE(a.needs_copy());
  bool sip = false, dip = false;
  for (const auto& c : a.conflicts) {
    if (c.first.field == Field::kSrcIp && c.second.field == Field::kSrcIp) {
      sip = true;
    }
    if (c.first.field == Field::kDstIp && c.second.field == Field::kDstIp) {
      dip = true;
    }
  }
  EXPECT_TRUE(sip);
  EXPECT_TRUE(dip);
}

TEST_F(Algorithm1Test, ShaperParallelWithEverything) {
  // The traffic shaper touches no fields; both orientations are free with
  // every non-dropping NF.
  for (const char* other : {"monitor", "lb", "nat", "vpn", "ids"}) {
    EXPECT_EQ(analyze_pair(p("shaper"), p(other)).verdict(),
              PairParallelism::kNoCopy)
        << other;
  }
}

// ---- The §4.3 headline statistics ---------------------------------------------

TEST(PairStatsTest, ReproducesPaperSection43Numbers) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  const PairStats stats = compute_pair_stats(table, /*weighted=*/true,
                                             /*deployed_only=*/true);
  // Paper §4.3: 53.8% parallelizable, 41.5% without extra resource overhead.
  EXPECT_NEAR(stats.parallelizable, 0.538, 0.002);
  EXPECT_NEAR(stats.no_copy, 0.415, 0.002);
  EXPECT_NEAR(stats.with_copy, 0.123, 0.002);
}

TEST(PairStatsTest, FractionsSumToOne) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  for (const bool weighted : {true, false}) {
    for (const bool deployed : {true, false}) {
      const PairStats stats = compute_pair_stats(table, weighted, deployed);
      EXPECT_NEAR(
          stats.no_copy + stats.with_copy + stats.sequential_only, 1.0, 1e-9);
      EXPECT_GT(stats.pair_count, 0u);
    }
  }
}

TEST(PairStatsTest, DeployedOnlyUsesSixNfs) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  const PairStats stats = compute_pair_stats(table, true, true);
  EXPECT_EQ(stats.pair_count, 30u);  // 6 NFs, ordered pairs
}

TEST(PairStatsTest, DisablingDirtyMemoryReusingMovesPairsToCopy) {
  // Monitor (reads the 5-tuple) vs Compression (writes only the payload):
  // disjoint fields, so OP#1 lets them share one packet copy. Without OP#1
  // the pair still parallelizes but needs a copy.
  const ActionTable table = ActionTable::with_builtin_nfs();
  const auto& mon = table.profile("monitor");
  const auto& comp = table.profile("compression");
  EXPECT_EQ(analyze_pair(mon, comp).verdict(), PairParallelism::kNoCopy);

  AnalysisOptions opt;
  opt.dirty_memory_reusing = false;
  EXPECT_EQ(analyze_pair(mon, comp, opt).verdict(),
            PairParallelism::kWithCopy);
  // The full-table statistics never lose parallelizable pairs to OP#1.
  const PairStats base = compute_pair_stats(table, true, true);
  const PairStats nodmr = compute_pair_stats(table, true, true, opt);
  EXPECT_NEAR(nodmr.parallelizable, base.parallelizable, 1e-9);
  EXPECT_LE(nodmr.no_copy, base.no_copy);
}

}  // namespace
}  // namespace nfp

// Fundamental aliases and constants shared across the NFP codebase.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nfp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

inline constexpr std::size_t kCacheLineSize = 64;

// Simulated time is kept in nanoseconds throughout the framework.
using SimTime = u64;

inline constexpr SimTime kNsPerUs = 1'000;
inline constexpr SimTime kNsPerMs = 1'000'000;
inline constexpr SimTime kNsPerSec = 1'000'000'000;

}  // namespace nfp

// Tests for the live (real-threads) pipeline: functional equivalence with
// the simulated dataplane on the same compiled graphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "dataplane/live_pipeline.hpp"
#include "dataplane/nfp_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "nfs/monitor.hpp"
#include "orch/compiler.hpp"
#include "packet/builder.hpp"
#include "policy/policy.hpp"

namespace nfp {
namespace {

ServiceGraph compile_chain(const std::vector<std::string>& chain) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto g = compile_policy(Policy::from_sequential_chain("live", chain), table);
  EXPECT_TRUE(g.is_ok()) << g.error();
  return std::move(g).take();
}

std::vector<std::vector<u8>> make_frames(std::size_t count) {
  PacketPool pool(count + 1);
  std::vector<std::vector<u8>> frames;
  for (std::size_t i = 0; i < count; ++i) {
    PacketSpec spec;
    spec.tuple.src_port = static_cast<u16>(7000 + i % 13);
    spec.tuple.dst_port = static_cast<u16>(80 + i % 3);
    spec.frame_size = 64 + (i % 5) * 100;
    Packet* p = build_packet(pool, spec);
    frames.emplace_back(p->data(), p->data() + p->length());
    pool.release(p);
  }
  return frames;
}

TEST(LivePipeline, SequentialChainDeliversEverything) {
  LivePipeline pipe(ServiceGraph::sequential("seq", {"monitor", "lb"}));
  const auto frames = make_frames(64);
  const LiveResult result = pipe.run(frames);
  EXPECT_EQ(result.outputs.size(), 64u);
  EXPECT_EQ(result.dropped, 0u);
  auto* mon = dynamic_cast<Monitor*>(pipe.nf(0, 0));
  ASSERT_NE(mon, nullptr);
  EXPECT_EQ(mon->total_packets(), 64u);
}

TEST(LivePipeline, ParallelStageMergesOnRealThreads) {
  // IDS ∥ Monitor ∥ LB with a real header copy, merged by the merger thread.
  LivePipeline pipe(compile_chain({"ids", "monitor", "lb"}));
  const auto frames = make_frames(48);
  const LiveResult result = pipe.run(frames);
  ASSERT_EQ(result.outputs.size(), 48u);
  for (const auto& bytes : result.outputs) {
    Ipv4View ip(const_cast<u8*>(bytes.data()) + kEthHeaderLen);
    EXPECT_EQ(ip.dst_ip() & 0xFFFF0000, 0x0A640000u)
        << "LB's rewrite must survive the merge";
  }
  auto* mon = dynamic_cast<Monitor*>(pipe.nf(0, 1));
  ASSERT_NE(mon, nullptr);
  EXPECT_EQ(mon->total_packets(), 48u);
}

TEST(LivePipeline, MatchesSimulatedDataplaneOutputs) {
  const auto frames = make_frames(32);

  // Live run.
  LivePipeline pipe(compile_chain({"monitor", "vpn"}));
  LiveResult live = pipe.run(frames);

  // Simulated run over identical frames.
  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.merger_instances = 1;
  NfpDataplane dp(sim, compile_chain({"monitor", "vpn"}), std::move(cfg));
  std::vector<std::vector<u8>> sim_out;
  dp.set_sink([&](Packet* p, SimTime) {
    sim_out.emplace_back(p->data(), p->data() + p->length());
    dp.pool().release(p);
  });
  for (std::size_t i = 0; i < frames.size(); ++i) {
    sim.schedule_at(i * 10'000, [&dp, &frames, i] {
      Packet* p = dp.pool().alloc(frames[i].size());
      ASSERT_NE(p, nullptr);
      std::memcpy(p->data(), frames[i].data(), frames[i].size());
      dp.inject(p);
    });
  }
  sim.run();

  // The live pipeline may reorder across flows; compare as multisets.
  ASSERT_EQ(live.outputs.size(), sim_out.size());
  std::sort(live.outputs.begin(), live.outputs.end());
  std::sort(sim_out.begin(), sim_out.end());
  EXPECT_EQ(live.outputs, sim_out);
}

TEST(LivePipeline, DropsPropagateThroughNilPackets) {
  // Firewall drops everything; monitor runs in parallel and still sees all.
  LivePipeline pipe(
      compile_chain({"monitor", "firewall"}),
      [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
        if (nf.name == "firewall") {
          AclTable acl;
          acl.set_default_action(AclAction::kDrop);
          return std::make_unique<Firewall>(std::move(acl));
        }
        return make_builtin_nf(nf.name);
      });
  const auto frames = make_frames(40);
  const LiveResult result = pipe.run(frames);
  EXPECT_TRUE(result.outputs.empty());
  EXPECT_EQ(result.dropped, 40u);
  auto* mon = dynamic_cast<Monitor*>(pipe.nf(0, 0));
  EXPECT_EQ(mon->total_packets(), 40u);
}

}  // namespace
}  // namespace nfp

// Longest-prefix-match table for IPv4 (binary trie).
//
// Substrate for the L3 forwarder NF (paper §6.1: "obtains the matching
// entry from a longest prefix matching table with 1000 entries").
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace nfp {

class LpmTable {
 public:
  LpmTable();
  ~LpmTable();
  LpmTable(LpmTable&&) noexcept;
  LpmTable& operator=(LpmTable&&) noexcept;
  LpmTable(const LpmTable&) = delete;
  LpmTable& operator=(const LpmTable&) = delete;

  // Inserts `prefix`/`prefix_len` -> next_hop; replaces an existing entry.
  void insert(u32 prefix, u8 prefix_len, u32 next_hop);

  // Longest-prefix lookup; nullopt when nothing matches (no default route).
  std::optional<u32> lookup(u32 addr) const;

  // Bitmask of prefix lengths at which `addr` matches a stored entry: bit L
  // (0..32) is set when a length-L prefix on addr's path holds a value. One
  // trie walk answers "which prefix widths could possibly match this
  // address" for every width at once — the tuple-space classifier uses it
  // to skip whole mask groups without probing their hash tables.
  u64 match_length_mask(u32 addr) const;

  // Removes the exact prefix entry; returns whether it existed.
  bool remove(u32 prefix, u8 prefix_len);

  std::size_t size() const noexcept { return size_; }

  // Fills the table with `count` deterministic /24-ish routes (the 1000-entry
  // table of the paper's evaluation), including a default route.
  static LpmTable with_synthetic_routes(std::size_t count, u64 seed = 1);

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace nfp

// The remaining Table 2 NFs: gateway, caching, proxy, compression, traffic
// shaper — plus DelayNf, the configurable-cost firewall variant used by the
// paper's complexity sweep (Fig 9: "busily loops for a given number of
// cycles after modifying the packet").
#pragma once

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "nfs/nf.hpp"
#include "qos/token_bucket.hpp"

namespace nfp {

// Gateway (Cisco MGX row): reads src/dst addresses to select an uplink.
class Gateway final : public NetworkFunction {
 public:
  std::string_view type_name() const override { return "gateway"; }

  NfVerdict process(PacketView& packet) override {
    last_uplink_ = (packet.src_ip() ^ packet.dst_ip()) & 0x3;
    ++forwarded_;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    return p;
  }

  u32 last_uplink() const noexcept { return last_uplink_; }
  u64 forwarded() const noexcept { return forwarded_; }

 private:
  u32 last_uplink_ = 0;
  u64 forwarded_ = 0;
};

// Caching (nginx row): tracks hot objects keyed by destination + payload
// fingerprint; read-only on the packet.
class Caching final : public NetworkFunction {
 public:
  std::string_view type_name() const override { return "caching"; }

  NfVerdict process(PacketView& packet) override {
    u64 key = (static_cast<u64>(packet.dst_ip()) << 16) | packet.dst_port();
    const auto body = packet.payload();
    for (std::size_t i = 0; i < body.size() && i < 16; ++i) {
      key = key * 31 + body[i];
    }
    if (!cache_.insert(key).second) ++hits_;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kDstIp);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kPayload);
    return p;
  }

  u64 hits() const noexcept { return hits_; }
  std::size_t entries() const noexcept { return cache_.size(); }

 private:
  std::unordered_set<u64> cache_;
  u64 hits_ = 0;
};

// Proxy (squid row): terminates the client side and re-originates the
// connection — rewrites both addresses.
class Proxy final : public NetworkFunction {
 public:
  explicit Proxy(u32 proxy_ip = 0x0A0A0A0A, u32 origin_ip = 0x0A0A0A0B)
      : proxy_ip_(proxy_ip), origin_ip_(origin_ip) {}

  std::string_view type_name() const override { return "proxy"; }

  NfVerdict process(PacketView& packet) override {
    (void)packet.src_ip();
    (void)packet.dst_ip();
    packet.set_src_ip(proxy_ip_);
    packet.set_dst_ip(origin_ip_);
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_write(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_write(Field::kDstIp);
    return p;
  }

 private:
  u32 proxy_ip_;
  u32 origin_ip_;
};

// Compression (Cisco IOS row): run-length encodes the payload in place —
// a payload writer, used to exercise full-copy parallelism.
class Compression final : public NetworkFunction {
 public:
  std::string_view type_name() const override { return "compression"; }

  NfVerdict process(PacketView& packet) override {
    auto body = packet.mutable_payload();
    if (body.size() < 2) return NfVerdict::kPass;
    // In-place RLE: byte,count pairs; falls back to no-op if it would grow.
    std::vector<u8> out;
    out.reserve(body.size());
    std::size_t i = 0;
    while (i < body.size() && out.size() + 2 <= body.size()) {
      const u8 value = body[i];
      std::size_t run = 1;
      while (i + run < body.size() && body[i + run] == value && run < 255) {
        ++run;
      }
      out.push_back(value);
      out.push_back(static_cast<u8>(run));
      i += run;
    }
    if (i < body.size()) return NfVerdict::kPass;  // incompressible
    std::copy(out.begin(), out.end(), body.begin());
    packet.resize_payload(out.size());
    ++compressed_;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kPayload);
    p.add_write(Field::kPayload);
    return p;
  }

  u64 compressed() const noexcept { return compressed_; }

 private:
  u64 compressed_ = 0;
};

// Traffic shaper (linux tc row): token-bucket profile measurement; touches
// no packet fields (the pacing delay itself is applied by the simulator's
// cost model). The default mode only *marks* non-conforming traffic in its
// statistics, matching Table 2's shaper (no drop action); policing mode
// (drop out-of-profile packets, like `tc police`) is opt-in and changes the
// declared profile accordingly.
class TrafficShaper final : public NetworkFunction {
 public:
  explicit TrafficShaper(u64 rate_bytes_per_sec = 1'250'000'000,
                         u64 burst_bytes = 64 * 1024, bool policing = false)
      : bucket_(rate_bytes_per_sec, burst_bytes), policing_(policing) {}

  std::string_view type_name() const override { return "shaper"; }

  NfVerdict process(PacketView& packet) override {
    const std::size_t len = packet.packet().length();
    bytes_seen_ += len;
    // Simulated arrival time: the injection timestamp carried on the buffer.
    const bool conforms =
        bucket_.conform(packet.packet().inject_time(), len);
    if (!conforms) {
      ++out_of_profile_;
      if (policing_) return NfVerdict::kDrop;
    }
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    if (policing_) p.add_drop();
    return p;
  }

  u64 bytes_seen() const noexcept { return bytes_seen_; }
  u64 out_of_profile() const noexcept { return out_of_profile_; }
  u64 rate() const noexcept { return bucket_.rate(); }

 private:
  TokenBucket bucket_;
  bool policing_;
  u64 bytes_seen_ = 0;
  u64 out_of_profile_ = 0;
};

// DelayNf: the paper's modified Firewall whose per-packet processing cost is
// a configurable number of CPU cycles (Fig 9). It performs the firewall's
// field reads plus a write (the paper's variant "modif[ies] the packet"),
// and its `cycles` parameter drives the simulator's service time.
class DelayNf final : public NetworkFunction {
 public:
  explicit DelayNf(u32 cycles) : cycles_(cycles) {}

  std::string_view type_name() const override { return "delaynf"; }

  NfVerdict process(PacketView& packet) override {
    (void)packet.five_tuple();
    packet.set_tos(static_cast<u8>(packet.tos() | 0x4));  // mark as inspected
    // The busy loop is virtual: the simulator charges `cycles_` of service
    // time; a small real loop keeps the functional path honest.
    volatile u32 sink = 0;
    for (u32 i = 0; i < cycles_ % 64; ++i) sink += i;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kProto);
    p.add_read(Field::kTos);
    p.add_write(Field::kTos);
    return p;
  }

  u32 cycles() const noexcept { return cycles_; }

 private:
  u32 cycles_;
};

}  // namespace nfp

// BESS-style run-to-completion baseline (paper §7, Table 4).
//
// The whole service chain is consolidated as function calls on one core;
// given k cores, k chain replicas run side by side and the NIC's RSS
// hashing splits flows across them. No rings, no copies, no merging —
// maximum throughput, minimum latency, but none of NFV's per-NF elasticity
// (the trade-off §7 discusses).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataplane/nfp_dataplane.hpp"
#include "nfs/nf.hpp"
#include "packet/packet_pool.hpp"
#include "sim/simulator.hpp"

namespace nfp::baseline {

class RtcDataplane {
 public:
  using Sink = std::function<void(Packet*, SimTime out_time)>;

  // `cores`: number of chain replicas (the paper gives each system n+2
  // cores for a chain of n NFs; BESS uses all of them for replicas).
  RtcDataplane(sim::Simulator& sim, std::vector<std::string> chain,
               std::size_t cores, DataplaneConfig config = {});

  void inject(Packet* pkt);
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  PacketPool& pool() noexcept { return *pool_; }
  const DataplaneStats& stats() const noexcept { return stats_; }
  NetworkFunction* nf(std::size_t replica, std::size_t index) {
    return replicas_.at(replica).nfs.at(index).get();
  }

  // Same metric names as NfpDataplane, labelled plane="rtc".
  telemetry::MetricsRegistry& metrics() noexcept { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  void snapshot_metrics();

  // Non-null when config.trace_every > 0. The chain runs as one fused
  // occupancy block on the replica core, so per-NF enter/exit spans are
  // synthesized from the block's start time and each NF's occupancy share.
  telemetry::Tracer* tracer() noexcept { return tracer_.get(); }

 private:
  struct Replica {
    std::vector<std::unique_ptr<NetworkFunction>> nfs;
    sim::SimCore core;
  };

  void run_chain(std::size_t replica, Packet* pkt, SimTime ready);
  void output(Packet* pkt, SimTime t);

  sim::Simulator& sim_;
  std::vector<std::string> chain_;
  DataplaneConfig config_;
  std::unique_ptr<PacketPool> pool_;
  Sink sink_;
  DataplaneStats stats_;

  telemetry::MetricsRegistry metrics_;
  telemetry::Counter* m_injected_ = nullptr;
  telemetry::Counter* m_delivered_ = nullptr;
  telemetry::Counter* m_dropped_nf_ = nullptr;
  Histogram* m_latency_ = nullptr;
  // Per chain position: service time of that NF, aggregated over replicas.
  std::vector<Histogram*> m_service_;

  std::unique_ptr<telemetry::Tracer> tracer_;
  u64 next_pid_ = 0;

  sim::SimCore rx_link_;
  sim::SimCore tx_link_;
  std::vector<Replica> replicas_;
};

}  // namespace nfp::baseline

#include "graph/service_graph.hpp"

#include <algorithm>

namespace nfp {

std::size_t ServiceGraph::nf_count() const {
  std::size_t n = 0;
  for (const Segment& s : segments_) n += s.nfs.size();
  return n;
}

std::size_t ServiceGraph::copies_per_packet() const {
  std::size_t n = 0;
  for (const Segment& s : segments_) n += s.copies();
  return n;
}

bool ServiceGraph::is_sequential() const {
  return std::all_of(segments_.begin(), segments_.end(),
                     [](const Segment& s) { return !s.is_parallel(); });
}

std::string ServiceGraph::structure() const {
  std::string out;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) out += '+';
    out += std::to_string(segments_[i].nfs.size());
  }
  return out;
}

std::string ServiceGraph::to_string() const {
  std::string out = "graph " + name_ + " (len=" +
                    std::to_string(equivalent_length()) +
                    ", copies=" + std::to_string(copies_per_packet()) + ")\n";
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    out += "  [" + std::to_string(i) + "] ";
    if (!s.is_parallel()) {
      out += s.nfs.empty() ? "(empty)" : s.nfs.front().name;
    } else {
      out += "{ ";
      for (std::size_t j = 0; j < s.nfs.size(); ++j) {
        if (j > 0) out += " | ";
        out += s.nfs[j].name + ":v" + std::to_string(s.nfs[j].version);
      }
      out += " } -> merge(" + std::to_string(s.merge.total_count) + ")";
    }
    out += '\n';
  }
  return out;
}

std::string ServiceGraph::to_dot() const {
  std::string out = "digraph \"" + name_ + "\" {\n  rankdir=LR;\n"
                    "  node [shape=box];\n  classifier [shape=oval];\n"
                    "  output [shape=oval];\n";
  const auto node_id = [](const StageNf& nf) {
    return nf.name + "_" + std::to_string(nf.instance_id);
  };
  std::vector<std::string> prev = {"classifier"};
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const Segment& seg = segments_[s];
    std::vector<std::string> current;
    for (const StageNf& nf : seg.nfs) {
      const std::string id = node_id(nf);
      out += "  " + id + " [label=\"" + nf.name + "\\nv" +
             std::to_string(nf.version) + "\"];\n";
      for (const auto& p : prev) out += "  " + p + " -> " + id + ";\n";
      current.push_back(id);
    }
    if (seg.is_parallel()) {
      const std::string merger = "merger_" + std::to_string(s);
      out += "  " + merger + " [shape=diamond, label=\"merge\"];\n";
      for (const auto& c : current) out += "  " + c + " -> " + merger + ";\n";
      prev = {merger};
    } else {
      prev = std::move(current);
    }
  }
  for (const auto& p : prev) out += "  " + p + " -> output;\n";
  out += "}\n";
  return out;
}

ServiceGraph ServiceGraph::sequential(std::string name,
                                      const std::vector<std::string>& chain) {
  ServiceGraph g(std::move(name));
  int id = 0;
  for (const auto& nf : chain) {
    Segment seg;
    seg.nfs.push_back(StageNf{nf, id++, 1, 0, false});
    g.segments_.push_back(std::move(seg));
  }
  return g;
}

ServiceGraph ServiceGraph::parallel(std::string name,
                                    const std::vector<std::string>& nfs,
                                    const std::vector<u8>& versions,
                                    std::vector<MergeOp> ops) {
  ServiceGraph g(std::move(name));
  Segment seg;
  u8 max_version = 1;
  for (std::size_t i = 0; i < nfs.size(); ++i) {
    const u8 v = i < versions.size() ? versions[i] : u8{1};
    max_version = std::max(max_version, v);
    seg.nfs.push_back(
        StageNf{nfs[i], static_cast<int>(i), v, static_cast<int>(i), false});
  }
  seg.num_versions = max_version;
  seg.merge.total_count = static_cast<u32>(nfs.size());
  seg.merge.ops = std::move(ops);
  g.segments_.push_back(std::move(seg));
  return g;
}

}  // namespace nfp

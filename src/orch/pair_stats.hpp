// Pairwise parallelism statistics over the NF action table (paper §4.3).
//
// The paper feeds every NF pair from Table 2 through Algorithm 1 and weights
// the verdicts by the pairs' appearance probabilities, reporting that 53.8%
// of NF pairs can work in parallel and 41.5% parallelize without copying.
#pragma once

#include <string>
#include <vector>

#include "actions/action_table.hpp"
#include "actions/dependency.hpp"

namespace nfp {

struct PairStatEntry {
  std::string nf1;
  std::string nf2;
  PairParallelism verdict = PairParallelism::kNoCopy;
  double weight = 0.0;  // normalized appearance probability (0 if unweighted)
};

struct PairStats {
  // Fractions over all ordered pairs (NF1 != NF2).
  double parallelizable = 0.0;  // no-copy + with-copy
  double no_copy = 0.0;
  double with_copy = 0.0;
  double sequential_only = 0.0;
  std::size_t pair_count = 0;
  std::vector<PairStatEntry> entries;
};

// `weighted`: weight each ordered pair (i, j) by share_i * share_j over the
// NFs with a known deployment share, matching the paper's methodology;
// unweighted treats every pair equally.
// `deployed_only`: restrict to NFs with a deployment share > 0 (the six
// NFs the paper's enterprise statistics cover).
PairStats compute_pair_stats(const ActionTable& table, bool weighted = true,
                             bool deployed_only = true,
                             const AnalysisOptions& options = {});

// Renders the per-pair verdict matrix as text (benches and examples).
std::string pair_stats_table(const PairStats& stats);

}  // namespace nfp

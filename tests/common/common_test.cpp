// Tests for shared utilities: RNG determinism, hashing, string helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace nfp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.bounded(13), 13u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<u64> seen;
  for (int i = 0; i < 10'000; ++i) {
    const u64 v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u) << "all values in [5,8] should appear";
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Hash, FiveTupleEqualityAndHash) {
  FiveTuple a{1, 2, 3, 4, 6};
  FiveTuple b{1, 2, 3, 4, 6};
  FiveTuple c{1, 2, 3, 5, 6};
  EXPECT_EQ(a, b);
  EXPECT_EQ(hash_five_tuple(a), hash_five_tuple(b));
  EXPECT_NE(hash_five_tuple(a), hash_five_tuple(c));
}

TEST(Hash, Mix64SpreadsSequentialValues) {
  // The merger agent hashes sequential PIDs; buckets must balance (§5.3).
  constexpr int kN = 100'000;
  constexpr int kBuckets = 4;
  int counts[kBuckets] = {};
  for (int i = 0; i < kN; ++i) {
    counts[mix64(static_cast<u64>(i)) % kBuckets]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.05);
  }
}

TEST(Hash, Fnv1aKnownValue) {
  EXPECT_EQ(fnv1a64(std::string_view("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cULL);
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, CaseHelpers) {
  EXPECT_EQ(to_lower("FireWall"), "firewall");
  EXPECT_TRUE(iequals("VPN", "vpn"));
  EXPECT_FALSE(iequals("VPN", "vp"));
}

TEST(StringUtil, Ipv4RoundTrip) {
  unsigned addr = 0;
  ASSERT_TRUE(parse_ipv4("10.1.2.3", addr));
  EXPECT_EQ(addr, 0x0A010203u);
  EXPECT_EQ(ipv4_to_string(addr), "10.1.2.3");
  EXPECT_FALSE(parse_ipv4("10.1.2", addr));
  EXPECT_FALSE(parse_ipv4("10.1.2.256", addr));
  EXPECT_FALSE(parse_ipv4("banana", addr));
}

}  // namespace
}  // namespace nfp

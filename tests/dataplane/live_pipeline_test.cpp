// Tests for the live (real-threads) pipeline: functional equivalence with
// the simulated dataplane on the same compiled graphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "dataplane/live_pipeline.hpp"
#include "dataplane/nfp_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "nfs/monitor.hpp"
#include "orch/compiler.hpp"
#include "packet/builder.hpp"
#include "policy/policy.hpp"

namespace nfp {
namespace {

ServiceGraph compile_chain(const std::vector<std::string>& chain) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto g = compile_policy(Policy::from_sequential_chain("live", chain), table);
  EXPECT_TRUE(g.is_ok()) << g.error();
  return std::move(g).take();
}

std::vector<std::vector<u8>> make_frames(std::size_t count) {
  PacketPool pool(count + 1);
  std::vector<std::vector<u8>> frames;
  for (std::size_t i = 0; i < count; ++i) {
    PacketSpec spec;
    spec.tuple.src_port = static_cast<u16>(7000 + i % 13);
    spec.tuple.dst_port = static_cast<u16>(80 + i % 3);
    spec.frame_size = 64 + (i % 5) * 100;
    Packet* p = build_packet(pool, spec);
    frames.emplace_back(p->data(), p->data() + p->length());
    pool.release(p);
  }
  return frames;
}

TEST(LivePipeline, SequentialChainDeliversEverything) {
  LivePipeline pipe(ServiceGraph::sequential("seq", {"monitor", "lb"}));
  const auto frames = make_frames(64);
  const LiveResult result = pipe.run(frames);
  EXPECT_EQ(result.outputs.size(), 64u);
  EXPECT_EQ(result.dropped, 0u);
  auto* mon = dynamic_cast<Monitor*>(pipe.nf(0, 0));
  ASSERT_NE(mon, nullptr);
  EXPECT_EQ(mon->total_packets(), 64u);
}

TEST(LivePipeline, ParallelStageMergesOnRealThreads) {
  // IDS ∥ Monitor ∥ LB with a real header copy, merged by the merger thread.
  LivePipeline pipe(compile_chain({"ids", "monitor", "lb"}));
  const auto frames = make_frames(48);
  const LiveResult result = pipe.run(frames);
  ASSERT_EQ(result.outputs.size(), 48u);
  for (const auto& bytes : result.outputs) {
    Ipv4View ip(const_cast<u8*>(bytes.data()) + kEthHeaderLen);
    EXPECT_EQ(ip.dst_ip() & 0xFFFF0000, 0x0A640000u)
        << "LB's rewrite must survive the merge";
  }
  auto* mon = dynamic_cast<Monitor*>(pipe.nf(0, 1));
  ASSERT_NE(mon, nullptr);
  EXPECT_EQ(mon->total_packets(), 48u);
}

TEST(LivePipeline, MatchesSimulatedDataplaneOutputs) {
  const auto frames = make_frames(32);

  // Live run.
  LivePipeline pipe(compile_chain({"monitor", "vpn"}));
  LiveResult live = pipe.run(frames);

  // Simulated run over identical frames.
  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.merger_instances = 1;
  NfpDataplane dp(sim, compile_chain({"monitor", "vpn"}), std::move(cfg));
  std::vector<std::vector<u8>> sim_out;
  dp.set_sink([&](Packet* p, SimTime) {
    sim_out.emplace_back(p->data(), p->data() + p->length());
    dp.pool().release(p);
  });
  for (std::size_t i = 0; i < frames.size(); ++i) {
    sim.schedule_at(i * 10'000, [&dp, &frames, i] {
      Packet* p = dp.pool().alloc(frames[i].size());
      ASSERT_NE(p, nullptr);
      std::memcpy(p->data(), frames[i].data(), frames[i].size());
      dp.inject(p);
    });
  }
  sim.run();

  // The live pipeline may reorder across flows; compare as multisets.
  ASSERT_EQ(live.outputs.size(), sim_out.size());
  std::sort(live.outputs.begin(), live.outputs.end());
  std::sort(sim_out.begin(), sim_out.end());
  EXPECT_EQ(live.outputs, sim_out);
}

// Hand-built 1 + 4 + 1 tree: a sequential monitor, then a 4-NF parallel
// stage spanning two packet versions with a kModify merge op, then a
// sequential hop. Exercises fanout copies, extra refs on shared versions,
// the merge table, and merge-op application.
ServiceGraph make_tree_graph() {
  ServiceGraph g("tree");
  Segment pre;
  pre.nfs.push_back({"monitor", 0, 1, 0, false});
  pre.mid = 1;
  g.segments().push_back(std::move(pre));

  // Three readers share version 1; lb writes the IP header so it gets its
  // own version (the compiler's OP#1 would assign the same split).
  Segment par;
  par.nfs.push_back({"ids", 1, 1, 0, false});
  par.nfs.push_back({"monitor", 2, 1, 0, false});
  par.nfs.push_back({"lb", 3, 2, 1, false});
  par.nfs.push_back({"monitor", 4, 1, 0, false});
  par.num_versions = 2;
  par.merge.total_count = 4;
  par.merge.ops.push_back({MergeOp::Kind::kModify, 2, Field::kSrcIp});
  par.merge.ops.push_back({MergeOp::Kind::kModify, 2, Field::kDstIp});
  par.mid = 2;
  g.segments().push_back(std::move(par));

  Segment post;
  post.nfs.push_back({"monitor", 5, 1, 0, false});
  post.mid = 3;
  g.segments().push_back(std::move(post));
  return g;
}

// The batched hot path (burst rings, magazines, merge table, batched
// commits) must be output-equivalent to the per-packet compat path, which
// reproduces the pre-batching serialized pipeline.
TEST(LivePipeline, BatchedPathMatchesPerPacketCompat) {
  const auto frames = make_frames(200);

  LivePipelineOptions batched;
  batched.burst_size = 16;
  batched.magazine_size = 32;
  LivePipeline fast(make_tree_graph(), {}, batched);
  LiveResult fast_result = fast.run(frames);

  LivePipelineOptions compat;
  compat.per_packet_compat = true;
  LivePipeline slow(make_tree_graph(), {}, compat);
  LiveResult slow_result = slow.run(frames);

  EXPECT_EQ(fast_result.dropped, slow_result.dropped);
  ASSERT_EQ(fast_result.outputs.size(), slow_result.outputs.size());
  // Completion order may differ across runs; compare as multisets.
  std::sort(fast_result.outputs.begin(), fast_result.outputs.end());
  std::sort(slow_result.outputs.begin(), slow_result.outputs.end());
  EXPECT_EQ(fast_result.outputs, slow_result.outputs);

  // The batched run must not have tripped the underflow detector, and with
  // 200 packets through hot magazines, refills stay well under 1/packet.
  EXPECT_EQ(fast.refcnt_underflows(), 0u);
  EXPECT_LT(fast.magazine_refills(), 200u);
}

// Tiny rings, tiny pool, burst larger than the ring: the clamps and the
// in-flight window must keep the pipeline live under heavy backpressure.
TEST(LivePipeline, SurvivesAggressiveOptionSweep) {
  const auto frames = make_frames(120);
  const LivePipelineOptions sweeps[] = {
      {.ring_depth = 4, .pool_size = 16, .in_flight_window = 0,
       .magazine_size = 2, .burst_size = 64},   // burst > depth: clamped
      {.ring_depth = 8, .pool_size = 24, .in_flight_window = 1,
       .magazine_size = 0, .burst_size = 1},    // no magazines, min window
      {.ring_depth = 512, .pool_size = 4096, .in_flight_window = 128,
       .magazine_size = 128, .burst_size = 64},  // oversized everything
  };
  for (const auto& opts : sweeps) {
    LivePipeline pipe(make_tree_graph(), {}, opts);
    const LiveResult result = pipe.run(frames);
    EXPECT_EQ(result.outputs.size(), 120u)
        << "ring_depth=" << opts.ring_depth << " pool=" << opts.pool_size;
    EXPECT_EQ(result.dropped, 0u);
    EXPECT_EQ(pipe.refcnt_underflows(), 0u);
    EXPECT_EQ(pipe.pool_in_use(), 0u) << "leak under backpressure";
  }
}

TEST(LivePipeline, DropsPropagateThroughNilPackets) {
  // Firewall drops everything; monitor runs in parallel and still sees all.
  LivePipeline pipe(
      compile_chain({"monitor", "firewall"}),
      [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
        if (nf.name == "firewall") {
          AclTable acl;
          acl.set_default_action(AclAction::kDrop);
          return std::make_unique<Firewall>(std::move(acl));
        }
        return make_builtin_nf(nf.name);
      });
  const auto frames = make_frames(40);
  const LiveResult result = pipe.run(frames);
  EXPECT_TRUE(result.outputs.empty());
  EXPECT_EQ(result.dropped, 40u);
  auto* mon = dynamic_cast<Monitor*>(pipe.nf(0, 0));
  EXPECT_EQ(mon->total_packets(), 40u);
}

}  // namespace
}  // namespace nfp

// ActionProfile: the full set of packet actions an NF performs.
//
// Profiles come from two sources: the built-in action table (paper Table 2)
// and the dynamic inspector (§5.4), which derives a profile by replaying
// instrumented packets through an NF.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "actions/action.hpp"

namespace nfp {

class ActionProfile {
 public:
  ActionProfile() = default;
  explicit ActionProfile(std::vector<Action> actions)
      : actions_(std::move(actions)) {
    normalize();
  }

  void add(Action a) {
    actions_.push_back(a);
    normalize();
  }
  void add_read(Field f) { add({ActionType::kRead, f}); }
  void add_write(Field f) { add({ActionType::kWrite, f}); }
  void add_add_rm(Field f) { add({ActionType::kAddRm, f}); }
  void add_drop() { add({ActionType::kDrop, Field::kCount}); }

  const std::vector<Action>& actions() const noexcept { return actions_; }
  bool empty() const noexcept { return actions_.empty(); }

  bool reads(Field f) const { return has(ActionType::kRead, f); }
  bool writes(Field f) const { return has(ActionType::kWrite, f); }
  bool adds_removes() const {
    return std::any_of(actions_.begin(), actions_.end(), [](const Action& a) {
      return a.type == ActionType::kAddRm;
    });
  }
  bool drops() const {
    return std::any_of(actions_.begin(), actions_.end(), [](const Action& a) {
      return a.type == ActionType::kDrop;
    });
  }

  FieldSet read_set() const { return field_set(ActionType::kRead); }
  FieldSet write_set() const { return field_set(ActionType::kWrite); }

  std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (i > 0) out += ", ";
      out += action_to_string(actions_[i]);
    }
    out += "}";
    return out;
  }

  friend bool operator==(const ActionProfile&, const ActionProfile&) = default;

 private:
  bool has(ActionType t, Field f) const {
    return std::any_of(actions_.begin(), actions_.end(), [&](const Action& a) {
      return a.type == t && a.field == f;
    });
  }

  FieldSet field_set(ActionType t) const {
    FieldSet set;
    for (const Action& a : actions_) {
      if (a.type == t) set.insert(a.field);
    }
    return set;
  }

  // Sort + dedup so profiles compare structurally regardless of the order in
  // which the inspector observed accesses.
  void normalize() {
    const auto key = [](const Action& a) {
      return (static_cast<int>(a.type) << 8) | static_cast<int>(a.field);
    };
    std::sort(actions_.begin(), actions_.end(),
              [&](const Action& x, const Action& y) { return key(x) < key(y); });
    actions_.erase(std::unique(actions_.begin(), actions_.end()),
                   actions_.end());
  }

  std::vector<Action> actions_;
};

}  // namespace nfp

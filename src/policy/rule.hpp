// NFP policy rules (paper §3).
//
// Operators compose chaining intents out of three rule types:
//   Order(NF1, before, NF2)  — sequential intent; the orchestrator may still
//                              parallelize the pair if they are independent,
//   Priority(NF1 > NF2)      — parallel intent with conflict priority,
//   Position(NF, first|last) — pin an NF to the head/tail of the graph.
#pragma once

#include <string>
#include <variant>
#include <vector>

namespace nfp {

struct OrderRule {
  std::string before;  // NF1: executes (logically) first
  std::string after;   // NF2

  friend bool operator==(const OrderRule&, const OrderRule&) = default;
};

struct PriorityRule {
  std::string high;  // NF1: wins on conflicting actions
  std::string low;   // NF2

  friend bool operator==(const PriorityRule&, const PriorityRule&) = default;
};

enum class Placement { kFirst, kLast };

struct PositionRule {
  std::string nf;
  Placement placement = Placement::kFirst;

  friend bool operator==(const PositionRule&, const PositionRule&) = default;
};

using Rule = std::variant<OrderRule, PriorityRule, PositionRule>;

std::string rule_to_string(const Rule& rule);

}  // namespace nfp

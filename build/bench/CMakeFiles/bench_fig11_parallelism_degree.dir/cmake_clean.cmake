file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_parallelism_degree.dir/bench_fig11_parallelism_degree.cpp.o"
  "CMakeFiles/bench_fig11_parallelism_degree.dir/bench_fig11_parallelism_degree.cpp.o.d"
  "bench_fig11_parallelism_degree"
  "bench_fig11_parallelism_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_parallelism_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Stress and property tests for the packet pool and metadata word.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "packet/packet_magazine.hpp"
#include "packet/packet_pool.hpp"

namespace nfp {
namespace {

TEST(PoolStress, RandomAllocReleaseNeverLeaksOrDoubles) {
  PacketPool pool(128);
  Rng rng(42);
  std::vector<Packet*> live;

  for (int step = 0; step < 100'000; ++step) {
    const double p = rng.uniform();
    if (p < 0.45) {
      Packet* pkt = pool.alloc(rng.range(0, 1500));
      if (pkt != nullptr) {
        EXPECT_EQ(pkt->ref_count(), 1u);
        live.push_back(pkt);
      } else {
        EXPECT_EQ(pool.available(), 0u);
      }
    } else if (p < 0.6 && !live.empty()) {
      // Take an extra reference on a random live packet; each entry in
      // `live` represents one reference to release.
      Packet* target = live[rng.bounded(live.size())];
      pool.add_ref(target);
      live.push_back(target);
    } else if (!live.empty()) {
      const std::size_t idx = rng.bounded(live.size());
      pool.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_LE(pool.in_use(), 128u);
  }
  for (Packet* pkt : live) pool.release(pkt);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PoolStress, AddRefTracking) {
  PacketPool pool(4);
  Packet* a = pool.alloc(64);
  for (int i = 0; i < 10; ++i) pool.add_ref(a);
  EXPECT_EQ(a->ref_count(), 11u);
  for (int i = 0; i < 11; ++i) pool.release(a);
  EXPECT_EQ(pool.in_use(), 0u);
  // The slot is reusable and comes back clean.
  Packet* b = pool.alloc(32);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->ref_count(), 1u);
  EXPECT_FALSE(b->is_nil());
  EXPECT_EQ(b->meta().raw(), 0u);
  pool.release(b);
}

TEST(PoolStress, BulkAllocFreeRoundTrip) {
  PacketPool pool(64);
  Packet* batch[64] = {};
  // Chain pop: one CAS hands out the whole batch.
  EXPECT_EQ(pool.alloc_raw(batch, 64), 64u);
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.alloc_raw(batch, 1), 0u);  // exhausted
  // Chain push returns them all; every slot must be allocatable again and
  // distinct (a corrupted chain would hand out duplicates or lose slots).
  pool.free_raw(batch, 64);
  EXPECT_EQ(pool.available(), 64u);
  Packet* again[64] = {};
  EXPECT_EQ(pool.alloc_raw(again, 64), 64u);
  std::sort(std::begin(again), std::end(again));
  EXPECT_EQ(std::unique(std::begin(again), std::end(again)), std::end(again));
  pool.free_raw(again, 64);
  EXPECT_EQ(pool.in_use(), 0u);
}

// Double-release must not corrupt the free list in release builds: the
// refcount is pinned at zero, the slot is NOT freed a second time, and the
// incident is counted for telemetry.
TEST(PoolStress, ReleaseUnderflowIsDetectedNotCorrupting) {
  PacketPool pool(8);
  Packet* a = pool.alloc(64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.refcnt_underflow_total(), 0u);
  EXPECT_TRUE(pool.dec_ref(a));   // legitimate last release
  pool.free_raw(&a, 1);
  EXPECT_FALSE(pool.dec_ref(a));  // double release: detected, not freed
  EXPECT_EQ(pool.refcnt_underflow_total(), 1u);
  EXPECT_EQ(a->ref_count(), 0u);  // pinned, not wrapped to 0xFFFFFFFF

  // The free list still holds exactly 8 distinct slots.
  Packet* all[8] = {};
  EXPECT_EQ(pool.alloc_raw(all, 8), 8u);
  std::sort(std::begin(all), std::end(all));
  EXPECT_EQ(std::unique(std::begin(all), std::end(all)), std::end(all));
  pool.free_raw(all, 8);
  EXPECT_EQ(pool.in_use(), 0u);
}

// Many threads hammer the pool through private magazines: alloc, clone,
// add_ref/release of shared packets, random churn. TSan-covered in CI; the
// invariant check is that everything drains back to in_use()==0 with no
// underflow ever detected.
TEST(PoolStress, ConcurrentMagazineChurn) {
  constexpr int kThreads = 4;
  constexpr int kSteps = 30'000;
  PacketPool pool(512);
  std::atomic<u64> refills{0};
  std::atomic<u64> flushes{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      PacketMagazine mag(pool, 32, &refills, &flushes);
      Rng rng(static_cast<u64>(t) * 7919 + 1);
      std::vector<Packet*> live;
      for (int step = 0; step < kSteps; ++step) {
        const double p = rng.uniform();
        if (p < 0.40) {
          if (Packet* pkt = mag.alloc(rng.range(0, 1500))) live.push_back(pkt);
        } else if (p < 0.55 && !live.empty()) {
          Packet* target = live[rng.bounded(live.size())];
          mag.add_ref(target);
          live.push_back(target);
        } else if (p < 0.65 && !live.empty()) {
          Packet* src = live[rng.bounded(live.size())];
          if (Packet* c = mag.clone_header_only(*src)) live.push_back(c);
        } else if (!live.empty()) {
          const std::size_t idx = rng.bounded(live.size());
          mag.release(live[idx]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
      }
      for (Packet* pkt : live) mag.release(pkt);
      // drain() on scope exit returns the cached slots.
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.available(), 512u);
  EXPECT_EQ(pool.refcnt_underflow_total(), 0u);
  // With hot magazines, refills should be far rarer than allocations.
  EXPECT_GT(refills.load(), 0u);
}

// Cross-thread handoff: producers allocate via their magazine and push raw
// pointers into a shared vector; consumers release through a *different*
// magazine. Exercises the atomic refcount + cross-magazine free path.
TEST(PoolStress, CrossThreadReleaseThroughForeignMagazine) {
  constexpr int kPerProducer = 20'000;
  PacketPool pool(256);
  std::atomic<Packet*> mailbox{nullptr};
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    PacketMagazine mag(pool, 16);
    while (true) {
      Packet* p = mailbox.exchange(nullptr, std::memory_order_acq_rel);
      if (p != nullptr) {
        mag.release(p);
      } else if (done.load(std::memory_order_acquire)) {
        break;
      } else {
        std::this_thread::yield();
      }
    }
  });

  {
    PacketMagazine mag(pool, 16);
    for (int i = 0; i < kPerProducer; ++i) {
      Packet* p = nullptr;
      while ((p = mag.alloc(64)) == nullptr) std::this_thread::yield();
      Packet* expected = nullptr;
      while (!mailbox.compare_exchange_weak(expected, p,
                                            std::memory_order_acq_rel)) {
        expected = nullptr;
        std::this_thread::yield();
      }
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  // The consumer may still have drained its magazine; the pool must balance.
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.refcnt_underflow_total(), 0u);
}

TEST(MetadataFuzz, RandomRoundTrips) {
  Rng rng(7);
  for (int i = 0; i < 50'000; ++i) {
    const u32 mid = static_cast<u32>(rng.next()) & Metadata::kMaxMid;
    const u64 pid = rng.next() & Metadata::kMaxPid;
    const u8 version = static_cast<u8>(rng.bounded(16));
    Metadata m;
    // Apply in random order; the fields must never interfere.
    switch (rng.bounded(3)) {
      case 0:
        m.set_mid(mid);
        m.set_pid(pid);
        m.set_version(version);
        break;
      case 1:
        m.set_pid(pid);
        m.set_version(version);
        m.set_mid(mid);
        break;
      default:
        m.set_version(version);
        m.set_mid(mid);
        m.set_pid(pid);
        break;
    }
    ASSERT_EQ(m.mid(), mid);
    ASSERT_EQ(m.pid(), pid);
    ASSERT_EQ(m.version(), version);
  }
}

}  // namespace
}  // namespace nfp

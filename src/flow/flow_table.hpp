// Bounded per-flow state table with LRU eviction.
//
// Generic substrate behind stateful NFs (monitor counters, NAT bindings).
// Real middleboxes bound their flow state and evict least-recently-used
// entries under pressure; the unordered_map + intrusive LRU list here gives
// O(1) lookup/insert/evict and makes eviction observable for tests.
#pragma once

#include <cassert>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace nfp {

template <typename Value>
class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity = 65536) : capacity_(capacity) {
    assert(capacity > 0);
  }

  // Returns the entry for `key`, creating it (possibly evicting the LRU
  // entry) when absent. The returned reference is valid until the next
  // mutation of the table.
  Value& get_or_create(const FiveTuple& key) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    if (map_.size() >= capacity_) {
      const auto& victim = lru_.back();
      map_.erase(victim.first);
      lru_.pop_back();
      ++evictions_;
    }
    lru_.emplace_front(key, Value{});
    map_[key] = lru_.begin();
    return lru_.begin()->second;
  }

  // Lookup that refreshes the LRU position on a hit; nullptr when absent.
  // One hash walk — the hit path of a cache built on this table should be
  // touch(), not peek() followed by get_or_create().
  Value* touch(const FiveTuple& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
  }

  // Lookup without touching LRU order; nullptr when absent.
  const Value* peek(const FiveTuple& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second->second;
  }

  bool erase(const FiveTuple& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    lru_.erase(it->second);
    map_.erase(it);
    return true;
  }

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  u64 evictions() const noexcept { return evictions_; }

  // Iteration in most-recently-used order (state export).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, value] : lru_) fn(key, value);
  }

  void clear() {
    map_.clear();
    lru_.clear();
  }

 private:
  using Entry = std::pair<FiveTuple, Value>;

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<FiveTuple, typename std::list<Entry>::iterator,
                     FiveTupleHash>
      map_;
  u64 evictions_ = 0;
};

}  // namespace nfp

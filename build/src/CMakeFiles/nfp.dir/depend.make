# Empty dependencies file for nfp.
# This may be replaced when dependencies are built.

// Pre-allocated packet pool.
//
// The paper stores packets in shared memory allocated on huge pages at
// system initialization so that header copies never hit the allocator
// (§5.2: "we prepare memory blocks to store input or copied packets during
// the system initialization"). This pool is the equivalent: a fixed arena of
// Packet buffers with an O(1) free-list and intrusive reference counts.
//
// Reference counting exists because `distribute` can hand the *same* packet
// version to several parallel NFs (§5.2); the buffer returns to the pool
// only when the last holder releases it.
//
// Concurrency: the free list is a lock-free Treiber stack of slot indices
// whose head packs a 32-bit ABA tag next to the index, so alloc/release are
// safe from any number of threads without a mutex — the DPDK-mempool role
// in the live pipeline. Chains of slots push/pop with a single CAS, which
// is what makes per-thread magazine caches (packet_magazine.hpp) cheap:
// a 32-slot refill is one CAS, not 32. Single-threaded users (the
// deterministic simulator) pay only an uncontended CAS per operation.
#pragma once

#include <cassert>
#include <memory>

#include "packet/packet.hpp"

namespace nfp {

class PacketPool {
 public:
  explicit PacketPool(std::size_t capacity)
      : slots_(std::make_unique<Packet[]>(capacity)),
        next_(std::make_unique<std::atomic<u32>[]>(capacity)),
        capacity_(capacity),
        free_count_(capacity) {
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].pool_index_ = static_cast<u32>(i);
      next_[i].store(i + 1 < capacity ? static_cast<u32>(i + 1) : kNilIndex,
                     std::memory_order_relaxed);
    }
    free_head_.store(pack(0, capacity > 0 ? 0 : kNilIndex),
                     std::memory_order_relaxed);
  }

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Allocates a packet with `len` data bytes (refcount = 1).
  // Returns nullptr when the pool is exhausted (callers treat this as packet
  // loss, as a NIC would under mempool pressure).
  Packet* alloc(std::size_t len = 0) noexcept {
    Packet* p = nullptr;
    if (alloc_raw(&p, 1) == 0) return nullptr;
    activate(*p, len);
    return p;
  }

  void add_ref(Packet* p) noexcept {
    assert(p != nullptr && p->ref_count() > 0);
    p->refcnt_.fetch_add(1, std::memory_order_relaxed);
  }

  void release(Packet* p) noexcept {
    assert(p != nullptr);
    if (dec_ref(p)) free_raw(&p, 1);
  }

  // Drops one reference; true when this was the last holder and the slot is
  // ready for the free list (the caller owns returning it — magazines cache
  // it, release() pushes it straight back). A double-release reads refcount
  // 0 here: the old assert vanished under NDEBUG and the slot was pushed to
  // the free list twice, silently corrupting it. Now the underflow is
  // detected in every build, logged once, and counted.
  bool dec_ref(Packet* p) noexcept {
    const u32 prev = p->refcnt_.fetch_sub(1, std::memory_order_acq_rel);
    if (prev == 0) [[unlikely]] {
      p->refcnt_.store(0, std::memory_order_relaxed);
      note_underflow(p->pool_index_);
      return false;
    }
    return prev == 1;
  }

  // Pops up to `n` raw slots (refcount 0, contents stale) in one CAS.
  // Returns the count delivered; 0 when exhausted. Callers activate() each
  // slot before use.
  std::size_t alloc_raw(Packet** out, std::size_t n) noexcept {
    if (n == 0) return 0;
    u64 head = free_head_.load(std::memory_order_acquire);
    for (;;) {
      u32 cur = head_index(head);
      if (cur == kNilIndex) return 0;
      // Walk the chain optimistically; stale links only make the CAS fail.
      std::size_t got = 0;
      while (got < n && cur != kNilIndex) {
        out[got++] = &slots_[cur];
        cur = next_[cur].load(std::memory_order_relaxed);
      }
      const u64 replacement = pack(head_tag(head) + 1, cur);
      if (free_head_.compare_exchange_weak(head, replacement,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        free_count_.fetch_sub(got, std::memory_order_relaxed);
        return got;
      }
      cas_retry_total_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Returns `n` slots (refcount must already be 0) in one CAS.
  void free_raw(Packet* const* items, std::size_t n) noexcept {
    if (n == 0) return;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      next_[items[i]->pool_index_].store(items[i + 1]->pool_index_,
                                         std::memory_order_relaxed);
    }
    const u32 first = items[0]->pool_index_;
    const u32 last = items[n - 1]->pool_index_;
    u64 head = free_head_.load(std::memory_order_relaxed);
    for (;;) {
      next_[last].store(head_index(head), std::memory_order_relaxed);
      const u64 replacement = pack(head_tag(head) + 1, first);
      if (free_head_.compare_exchange_weak(head, replacement,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        free_count_.fetch_add(n, std::memory_order_relaxed);
        return;
      }
      cas_retry_total_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Readies a raw slot for hand-out: fresh metadata, refcount 1.
  static void activate(Packet& p, std::size_t len) noexcept {
    p.reset(len);
    p.refcnt_.store(1, std::memory_order_relaxed);
  }

  // Full copy of data + metadata (used when Header-Only Copying is disabled
  // for ablation studies).
  Packet* clone_full(const Packet& src) noexcept {
    Packet* dst = alloc(src.length());
    if (dst == nullptr) return nullptr;
    copy_packet_full(*dst, src);
    return dst;
  }

  // Header-Only Copying (paper §4.2 OP#2): copies only the Ethernet + IP +
  // L4 header region and sets the copied packet's IP total-length field to
  // the header length itself so parallel NFs still see a valid packet.
  // Returns the copy, or nullptr on pool exhaustion.
  Packet* clone_header_only(const Packet& src) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t in_use() const noexcept { return capacity_ - available(); }
  std::size_t available() const noexcept {
    const std::size_t free = free_count_.load(std::memory_order_relaxed);
    return free > capacity_ ? capacity_ : free;
  }
  // Detected release-after-free attempts (see dec_ref). Exported as
  // pool_refcnt_underflow_total by the live pipeline's health probes.
  u64 refcnt_underflow_total() const noexcept {
    return underflow_total_.load(std::memory_order_relaxed);
  }
  // Failed head-CAS attempts across alloc_raw/free_raw: direct evidence of
  // cross-thread free-list contention (each retry is one extra bounce of
  // the free_head_ cacheline). Read by the scalability profiler.
  u64 cas_retry_total() const noexcept {
    return cas_retry_total_.load(std::memory_order_relaxed);
  }

  // The copy bodies behind clone_full/clone_header_only, usable on slots
  // allocated elsewhere (magazine caches).
  static void copy_packet_full(Packet& dst, const Packet& src) noexcept;
  static void copy_packet_header_only(Packet& dst, const Packet& src) noexcept;

 private:
  static constexpr u32 kNilIndex = 0xFFFFFFFFu;
  static constexpr u64 pack(u64 tag, u32 index) noexcept {
    return (tag << 32) | index;
  }
  static constexpr u32 head_index(u64 head) noexcept {
    return static_cast<u32>(head);
  }
  static constexpr u64 head_tag(u64 head) noexcept { return head >> 32; }

  void note_underflow(u32 slot) noexcept;  // cold path: count + log once

  std::unique_ptr<Packet[]> slots_;
  // next_[i] chains free slot i to its successor; atomic because a raced
  // optimistic walk in alloc_raw may read a link another thread is relinking.
  std::unique_ptr<std::atomic<u32>[]> next_;
  std::size_t capacity_;
  // {tag:32, head index:32}; the tag increments on every successful CAS so
  // a pop-repush of the same head slot cannot ABA a concurrent chain walk.
  alignas(kCacheLineSize) std::atomic<u64> free_head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> free_count_{0};
  // Diagnostic counters each on their own line: free_count_ is hammered by
  // every alloc/free batch, and the cold underflow counter would otherwise
  // ride (and bounce) that same cacheline for every telemetry read.
  // cas_retry_total_ is separated from underflow_total_ too — it is bumped
  // on every lost head CAS, i.e. precisely when multiple threads are
  // already fighting over the pool, the worst moment to share a line with
  // a telemetry-read counter.
  alignas(kCacheLineSize) std::atomic<u64> underflow_total_{0};
  alignas(kCacheLineSize) std::atomic<u64> cas_retry_total_{0};
};

// Length in bytes of the region copied by Header-Only Copying. The paper
// reports a fixed 64 B for TCP traffic on Ethernet (14 + 20 + 20 = 54,
// padded to the 64 B minimum frame / cache line).
inline constexpr std::size_t kHeaderCopyBytes = 64;

}  // namespace nfp

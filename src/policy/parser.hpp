// Text format for NFP policies.
//
// Grammar (one statement per line, '#' starts a comment):
//   policy <name>
//   order(<nf1>, before, <nf2>)
//   priority(<nf1> > <nf2>)
//   position(<nf>, first|last)
//   nf(<name>)                      # register a free NF
//   chain(<nf1>, <nf2>, ...)        # legacy sequential description (§3)
//
// NF names are case-insensitive identifiers; they are lower-cased on parse.
#pragma once

#include <string_view>

#include "common/status.hpp"
#include "policy/policy.hpp"

namespace nfp {

Result<Policy> parse_policy(std::string_view text);

}  // namespace nfp

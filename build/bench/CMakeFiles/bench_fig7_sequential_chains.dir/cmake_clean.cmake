file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sequential_chains.dir/bench_fig7_sequential_chains.cpp.o"
  "CMakeFiles/bench_fig7_sequential_chains.dir/bench_fig7_sequential_chains.cpp.o.d"
  "bench_fig7_sequential_chains"
  "bench_fig7_sequential_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sequential_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

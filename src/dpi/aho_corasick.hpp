// Aho–Corasick multi-pattern matcher.
//
// Substrate for signature-based deep packet inspection: matches all
// signatures in a single pass over the payload, the way Snort's core
// matcher works (vs the naive per-signature scan). Used by the IDS/IPS NFs
// and benchmarked against the naive scan in bench_micro_components.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nfp {

class AhoCorasick {
 public:
  // Builds the automaton over `patterns` (indices into this vector are the
  // pattern ids reported by match callbacks). Empty patterns are ignored.
  explicit AhoCorasick(const std::vector<std::string>& patterns);

  // Returns true iff any pattern occurs in `text`.
  bool contains(std::span<const u8> text) const noexcept;

  // Returns the ids of all patterns occurring in `text` (deduplicated,
  // ascending).
  std::vector<std::size_t> find_all(std::span<const u8> text) const;

  std::size_t pattern_count() const noexcept { return pattern_count_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    std::array<i32, 256> next;  // goto + failure-resolved transitions
    i32 fail = 0;
    std::vector<std::size_t> outputs;  // pattern ids ending here
    bool any_output = false;           // outputs here or on the fail chain

    Node() { next.fill(-1); }
  };

  std::vector<Node> nodes_;
  std::size_t pattern_count_ = 0;
};

}  // namespace nfp

#include "stats/histogram.hpp"

#include <sstream>

namespace nfp {

std::string Histogram::summary() const {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed;
  out << "count=" << total_ << " min=" << min() << " mean=" << mean()
      << " p50=" << quantile(0.5) << " p90=" << quantile(0.9)
      << " p99=" << quantile(0.99) << " max=" << max_;
  return out.str();
}

}  // namespace nfp

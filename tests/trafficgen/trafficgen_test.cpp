// Tests for the traffic generator and latency recorder.
#include <gtest/gtest.h>

#include "trafficgen/latency_recorder.hpp"
#include "trafficgen/trafficgen.hpp"

namespace nfp {
namespace {

TEST(TrafficGen, FixedSizeModel) {
  sim::Simulator sim;
  PacketPool pool(64);
  TrafficConfig cfg;
  cfg.size_model = SizeModel::kFixed;
  cfg.fixed_size = 256;
  TrafficGenerator gen(sim, pool, cfg);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.next_size(), 256u);
}

TEST(TrafficGen, DataCenterSizesInRangeAndBimodal) {
  sim::Simulator sim;
  PacketPool pool(64);
  TrafficConfig cfg;
  cfg.size_model = SizeModel::kDataCenter;
  TrafficGenerator gen(sim, pool, cfg);
  double sum = 0;
  int small = 0, large = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const std::size_t s = gen.next_size();
    ASSERT_GE(s, 64u);
    ASSERT_LE(s, 1500u);
    sum += static_cast<double>(s);
    if (s <= 300) ++small;
    if (s >= 1400) ++large;
  }
  // The paper quotes ~724B average in data centers [4].
  EXPECT_NEAR(sum / kN, TrafficGenerator::dc_mean_frame_size(), 25.0);
  EXPECT_NEAR(TrafficGenerator::dc_mean_frame_size(), 724.0, 40.0);
  EXPECT_GT(small, kN / 3) << "mice missing";
  EXPECT_GT(large, kN / 3) << "elephants missing";
}

TEST(TrafficGen, DeterministicAcrossRuns) {
  const auto sizes_of = [](u64 seed) {
    sim::Simulator sim;
    PacketPool pool(8);
    TrafficConfig cfg;
    cfg.size_model = SizeModel::kDataCenter;
    cfg.seed = seed;
    TrafficGenerator gen(sim, pool, cfg);
    std::vector<std::size_t> sizes;
    for (int i = 0; i < 50; ++i) sizes.push_back(gen.next_size());
    return sizes;
  };
  EXPECT_EQ(sizes_of(1), sizes_of(1));
  EXPECT_NE(sizes_of(1), sizes_of(2));
}

TEST(TrafficGen, UniformSkewSpreadsFlowsEvenly) {
  sim::Simulator sim;
  PacketPool pool(8);
  TrafficConfig cfg;
  cfg.flows = 10;
  cfg.flow_skew = FlowSkew::kUniform;
  TrafficGenerator gen(sim, pool, cfg);
  std::vector<int> counts(cfg.flows, 0);
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) ++counts[gen.next_flow()];
  for (std::size_t f = 0; f < cfg.flows; ++f) {
    EXPECT_NEAR(counts[f], kN / 10, kN / 40) << "flow " << f;
  }
}

TEST(TrafficGen, ZipfSkewConcentratesOnHeadFlows) {
  sim::Simulator sim;
  PacketPool pool(8);
  TrafficConfig cfg;
  cfg.flows = 100;
  cfg.flow_skew = FlowSkew::kZipf;
  cfg.zipf_s = 1.0;
  TrafficGenerator gen(sim, pool, cfg);
  std::vector<int> counts(cfg.flows, 0);
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const std::size_t f = gen.next_flow();
    ASSERT_LT(f, cfg.flows);
    ++counts[f];
  }
  // Rank-0 carries ~1/H(100) ≈ 19% of the traffic; under uniform it would
  // be 1%. The tail must still be reachable.
  EXPECT_GT(counts[0], kN / 8);
  EXPECT_GT(counts[0], counts[9] * 4);
  EXPECT_GT(counts[99], 0);
}

TEST(TrafficGen, InjectsRequestedPacketCountAtRate) {
  sim::Simulator sim;
  PacketPool pool(512);
  TrafficConfig cfg;
  cfg.packets = 100;
  cfg.rate_pps = 1e6;  // 1us apart
  TrafficGenerator gen(sim, pool, cfg);
  std::vector<SimTime> times;
  gen.start([&](Packet* p) {
    times.push_back(sim.now());
    pool.release(p);
  });
  sim.run();
  ASSERT_EQ(times.size(), 100u);
  EXPECT_EQ(gen.generated(), 100u);
  EXPECT_EQ(times[1] - times[0], 1'000u);
  EXPECT_EQ(times.back(), 99'000u);
}

TEST(TrafficGen, BackpressureRetriesInsteadOfLosing) {
  sim::Simulator sim;
  PacketPool pool(24);  // adaptive reserve = 24/4 = 6 buffers
  TrafficConfig cfg;
  cfg.packets = 50;
  cfg.rate_pps = 1e9;  // all at once
  TrafficGenerator gen(sim, pool, cfg);
  u64 received = 0;
  std::vector<Packet*> held;
  gen.start([&](Packet* p) {
    ++received;
    // Hold the first 18 packets: the pool then sits at the reserve level
    // and the generator must back off until they are released.
    if (received <= 18) {
      held.push_back(p);
    } else {
      pool.release(p);
    }
  });
  sim.schedule_at(5'000, [&] {
    for (Packet* h : held) pool.release(h);
    held.clear();
  });
  sim.run();
  EXPECT_EQ(received, 50u) << "back-pressure must not lose packets";
  EXPECT_GT(gen.backpressure_retries(), 0u);
}

TEST(LatencyRecorderTest, Statistics) {
  LatencyRecorder rec;
  rec.record(0, 1'000);
  rec.record(0, 2'000);
  rec.record(0, 3'000);
  rec.record(0, 10'000);
  EXPECT_EQ(rec.count(), 4u);
  EXPECT_NEAR(rec.mean_us(), 4.0, 1e-9);
  EXPECT_NEAR(rec.median_us(), 2.0, 1.01);
  EXPECT_NEAR(rec.max_us(), 10.0, 1e-9);
}

TEST(LatencyRecorderTest, PercentilesInterpolateBetweenRanks) {
  LatencyRecorder rec;
  rec.record(0, 1'000);
  rec.record(0, 2'000);
  // Median of {1us, 2us} interpolates to 1.5us, not the truncated lower
  // sample.
  EXPECT_NEAR(rec.median_us(), 1.5, 1e-9);
  EXPECT_NEAR(rec.percentile_us(0.0), 1.0, 1e-9);
  EXPECT_NEAR(rec.percentile_us(1.0), 2.0, 1e-9);
  EXPECT_NEAR(rec.percentile_us(0.25), 1.25, 1e-9);
  // Out-of-range requests clamp instead of reading out of bounds.
  EXPECT_NEAR(rec.percentile_us(-0.5), 1.0, 1e-9);
  EXPECT_NEAR(rec.percentile_us(1.5), 2.0, 1e-9);
  // The cached sorted copy is invalidated by new samples.
  rec.record(0, 3'000);
  EXPECT_NEAR(rec.median_us(), 2.0, 1e-9);
  EXPECT_NEAR(rec.p99_us(), 2.98, 1e-9);
}

TEST(LatencyRecorderTest, RateFromOutputSpan) {
  LatencyRecorder rec;
  // 11 packets leaving 100ns apart -> 10 Mpps.
  for (int i = 0; i <= 10; ++i) {
    rec.record(0, 1'000 + static_cast<SimTime>(i) * 100);
  }
  EXPECT_NEAR(rec.rate_mpps(), 10.0, 1e-9);
}

TEST(LatencyRecorderTest, ReservoirCapsRetainedSamples) {
  LatencyRecorder rec(64);
  for (SimTime i = 0; i < 10'000; ++i) {
    rec.record(0, 1'000 + i);
  }
  // Exact counters keep counting past the cap; retained memory does not.
  EXPECT_EQ(rec.count(), 10'000u);
  EXPECT_EQ(rec.retained(), 64u);
  EXPECT_EQ(rec.capacity(), 64u);
  EXPECT_NEAR(rec.max_us(), (1'000.0 + 9'999.0) / 1e3, 1e-9);
  EXPECT_NEAR(rec.mean_us(), (1'000.0 + (9'999.0 / 2)) / 1e3, 1e-6);
  // The reservoir is a uniform sample, so the median estimate stays in
  // the central region of the true distribution.
  EXPECT_GT(rec.median_us(), 2.0);
  EXPECT_LT(rec.median_us(), 10.0);
}

TEST(LatencyRecorderTest, BelowCapStaysExact) {
  LatencyRecorder rec(1'000);
  for (SimTime i = 1; i <= 100; ++i) rec.record(0, i * 1'000);
  EXPECT_EQ(rec.count(), rec.retained());
  EXPECT_NEAR(rec.median_us(), 50.5, 1e-9);  // interpolated, exact samples
}

TEST(LatencyRecorderTest, EmptyIsSafe) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.mean_us(), 0.0);
  EXPECT_EQ(rec.rate_mpps(), 0.0);
  EXPECT_EQ(rec.p99_us(), 0.0);
}

}  // namespace
}  // namespace nfp

# Empty dependencies file for pcap_capture.
# This may be replaced when dependencies are built.

#include "baseline/rtc_dataplane.hpp"

#include "common/hash.hpp"
#include "packet/packet_view.hpp"

namespace nfp::baseline {

namespace {
constexpr char kPlane[] = "rtc";
}  // namespace

RtcDataplane::RtcDataplane(sim::Simulator& sim, std::vector<std::string> chain,
                           std::size_t cores, DataplaneConfig config)
    : sim_(sim),
      chain_(std::move(chain)),
      config_(std::move(config)),
      pool_(std::make_unique<PacketPool>(config_.pool_packets)) {
  replicas_.resize(cores == 0 ? 1 : cores);
  int id = 0;
  for (Replica& replica : replicas_) {
    for (const std::string& type : chain_) {
      if (config_.factory) {
        StageNf meta{type, id, 1, 0, false};
        replica.nfs.push_back(config_.factory(meta));
      } else {
        replica.nfs.push_back(
            make_builtin_nf(type, static_cast<u64>(id) + 1));
      }
      ++id;
    }
  }
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    m_service_.push_back(&metrics_.histogram(
        "nf_service_ns",
        {{"plane", kPlane},
         {"nf", "nf:" + chain_[i] + "@" + std::to_string(i)}}));
  }
  m_injected_ = &metrics_.counter("packets_injected_total", {{"plane", kPlane}});
  m_delivered_ =
      &metrics_.counter("packets_delivered_total", {{"plane", kPlane}});
  m_dropped_nf_ = &metrics_.counter("packets_dropped_total",
                                    {{"plane", kPlane}, {"reason", "nf"}});
  m_latency_ = &metrics_.histogram("packet_latency_ns", {{"plane", kPlane}});
  metrics_.gauge("pool_capacity", {{"plane", kPlane}})
      .set(static_cast<double>(pool_->capacity()));
  if (config_.trace_every > 0) {
    tracer_ = std::make_unique<telemetry::Tracer>(config_.trace_every,
                                                  config_.trace_capacity);
  }
}

void RtcDataplane::snapshot_metrics() {
  metrics_.gauge("sim_now_ns", {{"plane", kPlane}})
      .set(static_cast<double>(sim_.now()));
  metrics_.gauge("pool_in_use", {{"plane", kPlane}})
      .set(static_cast<double>(pool_->in_use()));
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    metrics_
        .gauge("core_busy_ns", {{"plane", kPlane},
                                {"component", "replica#" + std::to_string(r)}})
        .set(static_cast<double>(replicas_[r].core.busy_time()));
  }
}

void RtcDataplane::inject(Packet* pkt) {
  ++stats_.injected;
  m_injected_->inc();
  pkt->set_inject_time(sim_.now());
  pkt->meta().set_pid(next_pid_++ & Metadata::kMaxPid);
  if (tracer_ != nullptr && tracer_->sampled(pkt->meta().pid())) {
    tracer_->record(pkt->meta().pid(), telemetry::SpanKind::kInject,
                    sim_.now(), "rx-link");
  }
  const SimTime ready =
      rx_link_.execute(sim_.now(), config_.costs.wire_ns(pkt->length()));

  // NIC RSS: flows hash onto replicas.
  PacketView view(*pkt);
  const std::size_t replica =
      view.valid()
          ? static_cast<std::size_t>(hash_five_tuple(view.five_tuple()) %
                                     replicas_.size())
          : 0;
  sim_.schedule_at(ready, [this, replica, pkt, ready] {
    run_chain(replica, pkt, ready);
  });
}

void RtcDataplane::run_chain(std::size_t replica_idx, Packet* pkt,
                             SimTime ready) {
  Replica& replica = replicas_[replica_idx];

  // The replica core runs RX, every NF, and TX back-to-back.
  const u64 pid = pkt->meta().pid();
  const bool traced = tracer_ != nullptr && tracer_->sampled(pid);
  std::vector<std::pair<std::size_t, SimTime>> nf_occ;  // (chain pos, occ)
  SimTime occ = config_.costs.rtc_rx.occ;
  SimTime delay = config_.costs.rtc_rx.delay;
  NfVerdict verdict = NfVerdict::kPass;
  for (std::size_t i = 0; i < replica.nfs.size(); ++i) {
    const sim::OpCost nf_cost = config_.costs.nf_cost(
        chain_[i], pkt->length(), config_.delaynf_cycles);
    // Run-to-completion executes the NF logic in place: the compute cost is
    // the occupancy (which already contributes to latency); pipelining-mode
    // batching delays do not apply.
    occ += nf_cost.occ + config_.costs.rtc_call_ns;
    if (traced) {
      nf_occ.emplace_back(i, nf_cost.occ + config_.costs.rtc_call_ns);
    }
    m_service_[i]->record(static_cast<u64>(nf_cost.occ));
    PacketView view(*pkt);
    if (view.valid() && verdict == NfVerdict::kPass) {
      verdict = replica.nfs[i]->process(view);
    }
    if (verdict == NfVerdict::kDrop) break;
  }
  occ += config_.costs.rtc_tx.occ;
  delay += config_.costs.rtc_tx.delay;

  const SimTime free = replica.core.execute(ready, occ);
  const SimTime done = free + delay;
  if (traced) {
    // Synthesize per-NF enter/exit spans from the fused occupancy block:
    // the block ran [free - occ, free]; RX occupies the first slice, then
    // each NF its own occupancy share.
    SimTime cursor = free - occ + config_.costs.rtc_rx.occ;
    for (const auto& [i, nf_ns] : nf_occ) {
      const std::string component =
          "nf:" + chain_[i] + "@" + std::to_string(i);
      tracer_->record(pid, telemetry::SpanKind::kNfEnter, cursor, component);
      cursor += nf_ns;
      tracer_->record(pid, telemetry::SpanKind::kNfExit, cursor, component);
    }
  }
  if (verdict == NfVerdict::kDrop) {
    ++stats_.dropped_by_nf;
    m_dropped_nf_->inc();
    if (traced) {
      tracer_->record(pid, telemetry::SpanKind::kDrop, free, "rtc-chain");
    }
    pool_->release(pkt);
    return;
  }
  sim_.schedule_at(done, [this, pkt] { output(pkt, sim_.now()); });
}

void RtcDataplane::output(Packet* pkt, SimTime t) {
  const SimTime done =
      tx_link_.execute(t, config_.costs.wire_ns(pkt->length()));
  ++stats_.delivered;
  m_delivered_->inc();
  m_latency_->record(static_cast<u64>(done - pkt->inject_time()));
  if (tracer_ != nullptr && tracer_->sampled(pkt->meta().pid())) {
    tracer_->record(pkt->meta().pid(), telemetry::SpanKind::kOutput, done,
                    "tx-link");
  }
  if (sink_) {
    sink_(pkt, done);
  } else {
    pool_->release(pkt);
  }
}

}  // namespace nfp::baseline

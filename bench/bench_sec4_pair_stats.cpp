// Reproduces the headline statistics of paper §4.3: feeding every NF pair
// of Table 2 through Algorithm 1, weighted by enterprise deployment shares:
// "53.8% NF pairs can work in parallel. In particular, 41.5% pairs can be
// parallelized without causing extra resource overhead."
#include <cstdio>

#include "actions/action_table.hpp"
#include "orch/pair_stats.hpp"

using namespace nfp;

int main() {
  const ActionTable table = ActionTable::with_builtin_nfs();

  std::printf("NF action table (paper Table 2):\n");
  for (const NfTypeInfo* info : table.all()) {
    std::printf("  %-12s %5.1f%%  %s\n", info->name.c_str(),
                info->deployment_share * 100, info->profile.to_string().c_str());
  }

  std::printf("\nPairwise verdicts, deployment-weighted (paper Table 2 NFs):\n");
  const PairStats weighted = compute_pair_stats(table, /*weighted=*/true,
                                                /*deployed_only=*/true);
  std::printf("%s\n", pair_stats_table(weighted).c_str());
  std::printf("paper §4.3:      parallelizable 53.8%%, no-copy 41.5%%, "
              "with-copy 12.3%%\n");
  std::printf("this reproduction: parallelizable %.1f%%, no-copy %.1f%%, "
              "with-copy %.1f%%\n",
              weighted.parallelizable * 100, weighted.no_copy * 100,
              weighted.with_copy * 100);

  const PairStats unweighted = compute_pair_stats(table, false, true);
  std::printf("\nunweighted over the same pairs: parallelizable %.1f%%, "
              "no-copy %.1f%%, with-copy %.1f%%\n",
              unweighted.parallelizable * 100, unweighted.no_copy * 100,
              unweighted.with_copy * 100);

  const PairStats all_nfs = compute_pair_stats(table, false, false);
  std::printf("unweighted over all %zu registered NF pairs: parallelizable "
              "%.1f%%, no-copy %.1f%%\n",
              all_nfs.pair_count, all_nfs.parallelizable * 100,
              all_nfs.no_copy * 100);

  AnalysisOptions no_dmr;
  no_dmr.dirty_memory_reusing = false;
  const PairStats ablation = compute_pair_stats(table, true, true, no_dmr);
  std::printf("\nablation, Dirty Memory Reusing off: no-copy %.1f%% "
              "(vs %.1f%%), with-copy %.1f%%\n",
              ablation.no_copy * 100, weighted.no_copy * 100,
              ablation.with_copy * 100);

  AnalysisOptions full_copies;
  full_copies.header_only_copying = false;
  const PairStats ablation2 =
      compute_pair_stats(table, true, true, full_copies);
  std::printf("ablation, Header-Only Copying off (full copies allowed): "
              "parallelizable %.1f%% (vs %.1f%%)\n",
              ablation2.parallelizable * 100, weighted.parallelizable * 100);
  return 0;
}

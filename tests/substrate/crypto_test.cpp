// AES-128 validation against the FIPS-197 appendix vectors, plus CTR-mode
// and ICV behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/aes128.hpp"

namespace nfp {
namespace {

TEST(Aes128Test, Fips197AppendixBVector) {
  const Aes128::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const u8 plain[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                        0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const u8 expect[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                         0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  u8 out[16];
  aes.encrypt_block(plain, out);
  EXPECT_EQ(0, std::memcmp(out, expect, 16));
}

TEST(Aes128Test, Fips197AppendixCVector) {
  const Aes128::Key key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                           0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const u8 plain[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                        0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const u8 expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                         0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  u8 out[16];
  aes.encrypt_block(plain, out);
  EXPECT_EQ(0, std::memcmp(out, expect, 16));
}

TEST(Aes128Test, DecryptInvertsEncrypt) {
  const Aes128::Key key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                           16};
  Aes128 aes(key);
  u8 plain[16], cipher[16], round_trip[16];
  for (int i = 0; i < 16; ++i) plain[i] = static_cast<u8>(i * 17 + 3);
  aes.encrypt_block(plain, cipher);
  EXPECT_NE(0, std::memcmp(plain, cipher, 16));
  aes.decrypt_block(cipher, round_trip);
  EXPECT_EQ(0, std::memcmp(plain, round_trip, 16));
}

TEST(Aes128Test, CtrIsSymmetric) {
  Aes128 aes(Aes128::Key{0xaa});
  std::vector<u8> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<u8>(i & 0xff);
  }
  const std::vector<u8> original = data;
  aes.ctr_crypt(0x1234, data);
  EXPECT_NE(data, original);
  aes.ctr_crypt(0x1234, data);
  EXPECT_EQ(data, original);
}

TEST(Aes128Test, CtrNonceChangesKeystream) {
  Aes128 aes(Aes128::Key{0xaa});
  std::vector<u8> a(64, 0), b(64, 0);
  aes.ctr_crypt(1, a);
  aes.ctr_crypt(2, b);
  EXPECT_NE(a, b);
}

TEST(Aes128Test, CtrHandlesNonBlockMultiples) {
  Aes128 aes(Aes128::Key{0x3c});
  std::vector<u8> data(33, 0x55);
  const std::vector<u8> original = data;
  aes.ctr_crypt(9, data);
  aes.ctr_crypt(9, data);
  EXPECT_EQ(data, original);
}

TEST(Aes128Test, IcvDetectsTampering) {
  Aes128 aes(Aes128::Key{0x11});
  std::vector<u8> data(100, 0x42);
  const auto mac1 = aes.icv(data);
  data[50] ^= 1;
  const auto mac2 = aes.icv(data);
  EXPECT_NE(mac1, mac2);
}

TEST(Aes128Test, IcvDeterministic) {
  Aes128 aes(Aes128::Key{0x11});
  const std::vector<u8> data(100, 0x42);
  EXPECT_EQ(aes.icv(data), aes.icv(data));
  EXPECT_EQ(aes.icv({}), aes.icv({}));
}

}  // namespace
}  // namespace nfp

// Tests for the metrics registry: identity of (name, labels) series, label
// normalization, and cross-registry merging.
#include <gtest/gtest.h>

#include "telemetry/registry.hpp"

namespace nfp::telemetry {
namespace {

TEST(RegistryTest, SameNameAndLabelsIsSameSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("packets_total", {{"plane", "nfp"}});
  Counter& b = reg.counter("packets_total", {{"plane", "nfp"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value, 3u);
}

TEST(RegistryTest, LabelOrderIsNormalized) {
  MetricsRegistry reg;
  Counter& a = reg.counter("c", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("c", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(RegistryTest, DifferentLabelsAreDifferentSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("c", {{"plane", "nfp"}});
  Counter& b = reg.counter("c", {{"plane", "onv"}});
  Counter& c = reg.counter("c");
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.counters().size(), 3u);
}

TEST(RegistryTest, PointersStableAcrossInserts) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("series_" + std::to_string(i));
    reg.histogram("hist_" + std::to_string(i));
  }
  first.inc();
  EXPECT_EQ(reg.counter("first").value, 1u);
}

TEST(RegistryTest, GaugeTracksHighWater) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("pool_in_use");
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value, 3.0);
  EXPECT_EQ(g.high_water, 12.0);
}

TEST(RegistryTest, MergeCombinesAllMetricKinds) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("packets", {{"plane", "nfp"}}).inc(10);
  b.counter("packets", {{"plane", "nfp"}}).inc(5);
  b.counter("packets", {{"plane", "onv"}}).inc(7);  // only in b

  a.gauge("pool").set(4);
  b.gauge("pool").set(9);

  a.histogram("lat").record(100);
  b.histogram("lat").record(300);

  a.merge(b);
  EXPECT_EQ(a.counter("packets", {{"plane", "nfp"}}).value, 15u);
  EXPECT_EQ(a.counter("packets", {{"plane", "onv"}}).value, 7u);
  EXPECT_EQ(a.gauge("pool").high_water, 9.0);
  EXPECT_EQ(a.histogram("lat").count(), 2u);
  EXPECT_EQ(a.histogram("lat").min(), 100u);
  EXPECT_EQ(a.histogram("lat").max(), 300u);
  // b is untouched.
  EXPECT_EQ(b.counter("packets", {{"plane", "nfp"}}).value, 5u);
}

TEST(RegistryTest, MergeIntoEmptyRegistryCopiesSeries) {
  MetricsRegistry a;
  MetricsRegistry b;
  b.counter("c").inc(2);
  b.histogram("h").record(42);
  a.merge(b);
  EXPECT_EQ(a.series_count(), 2u);
  EXPECT_EQ(a.histogram("h").min(), 42u);
}

}  // namespace
}  // namespace nfp::telemetry

// Unit tests for the live Classification Table, the microflow cache in
// front of it, and raw-frame 5-tuple parsing.
#include <gtest/gtest.h>

#include "dataplane/live_classifier.hpp"
#include "packet/builder.hpp"
#include "packet/packet_pool.hpp"

namespace nfp {
namespace {

FiveTuple tuple(u32 src_ip, u16 src_port) {
  return FiveTuple{src_ip, 0x0B000001, src_port, 80, kProtoTcp};
}

TEST(LiveClassifier, ExactRulesBeatMaskedRulesBeatDefault) {
  LiveClassificationTable ct(3);
  CtRule subnet;
  subnet.src_ip = 0x0A000000;
  subnet.src_mask = 0xFF000000;
  subnet.priority = 1;
  subnet.graph = 1;
  ct.add_rule(subnet);
  ct.add_exact(tuple(0x0A000005, 1000), 2);

  EXPECT_EQ(ct.classify(tuple(0x0A000005, 1000)), 2u);  // exact wins
  EXPECT_EQ(ct.classify(tuple(0x0A000006, 1000)), 1u);  // subnet rule
  EXPECT_EQ(ct.classify(tuple(0x0C000001, 1000)), 0u);  // default graph
}

TEST(LiveClassifier, HigherPriorityRuleWins) {
  LiveClassificationTable ct(3);
  CtRule broad;
  broad.priority = 1;
  broad.graph = 1;  // matches everything
  CtRule narrow;
  narrow.proto = kProtoTcp;
  narrow.match_proto = true;
  narrow.priority = 5;
  narrow.graph = 2;
  ct.add_rule(broad);
  ct.add_rule(narrow);
  EXPECT_EQ(ct.classify(tuple(1, 1)), 2u);
  FiveTuple udp = tuple(1, 1);
  udp.proto = kProtoUdp;
  EXPECT_EQ(ct.classify(udp), 1u);
}

TEST(LiveClassifier, OutOfRangeGraphClampsToDefault) {
  LiveClassificationTable ct(2);
  ct.add_exact(tuple(1, 1), 9);
  EXPECT_EQ(ct.classify(tuple(1, 1)), 0u);
}

TEST(LiveClassifier, MicroflowCacheHitsAfterFirstLookup) {
  LiveClassificationTable ct(2);
  ct.add_exact(tuple(1, 1), 1);
  MicroflowCache cache(ct, 64);
  cache.sync_generation();
  EXPECT_EQ(cache.classify(tuple(1, 1)), 1u);
  EXPECT_EQ(cache.classify(tuple(1, 1)), 1u);
  EXPECT_EQ(cache.classify(tuple(2, 2)), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(LiveClassifier, RuleChangeInvalidatesCachedVerdicts) {
  LiveClassificationTable ct(2);
  MicroflowCache cache(ct, 64);
  cache.sync_generation();
  EXPECT_EQ(cache.classify(tuple(1, 1)), 0u);  // cached: default

  ct.add_exact(tuple(1, 1), 1);
  // Until the generation sync the stale verdict is served (bounded by one
  // burst in the dataplane)...
  EXPECT_EQ(cache.classify(tuple(1, 1)), 0u);
  // ...and the sync drops it.
  cache.sync_generation();
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.classify(tuple(1, 1)), 1u);
}

TEST(LiveClassifier, EvictionKeepsVerdictsCorrect) {
  LiveClassificationTable ct(2);
  ct.add_exact(tuple(1, 1), 1);
  MicroflowCache cache(ct, 2);
  cache.sync_generation();
  // Three flows through a 2-entry cache: evictions happen, answers do not
  // change.
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(cache.classify(tuple(1, 1)), 1u);
    EXPECT_EQ(cache.classify(tuple(2, 2)), 0u);
    EXPECT_EQ(cache.classify(tuple(3, 3)), 0u);
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.size(), 2u);
}

TEST(LiveClassifier, ParsesFiveTupleFromBuiltFrames) {
  PacketPool pool(2);
  PacketSpec spec;
  spec.tuple = FiveTuple{0x0A0B0C0D, 0x01020304, 4321, 443, kProtoTcp};
  Packet* p = build_packet(pool, spec);
  const auto parsed = parse_five_tuple({p->data(), p->length()});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_ip, spec.tuple.src_ip);
  EXPECT_EQ(parsed->dst_ip, spec.tuple.dst_ip);
  EXPECT_EQ(parsed->src_port, spec.tuple.src_port);
  EXPECT_EQ(parsed->dst_port, spec.tuple.dst_port);
  EXPECT_EQ(parsed->proto, spec.tuple.proto);
  pool.release(p);
}

TEST(LiveClassifier, RejectsTruncatedAndNonIpFrames) {
  const std::vector<u8> tiny(10, 0);
  EXPECT_FALSE(parse_five_tuple({tiny.data(), tiny.size()}).has_value());
  std::vector<u8> arp(64, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;  // EtherType ARP
  EXPECT_FALSE(parse_five_tuple({arp.data(), arp.size()}).has_value());
}

}  // namespace
}  // namespace nfp


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/actions/dependency_test.cpp" "tests/CMakeFiles/nfp_tests.dir/actions/dependency_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/actions/dependency_test.cpp.o.d"
  "/root/repo/tests/actions/verdict_matrix_test.cpp" "tests/CMakeFiles/nfp_tests.dir/actions/verdict_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/actions/verdict_matrix_test.cpp.o.d"
  "/root/repo/tests/baseline/baseline_test.cpp" "tests/CMakeFiles/nfp_tests.dir/baseline/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/baseline/baseline_test.cpp.o.d"
  "/root/repo/tests/common/common_test.cpp" "tests/CMakeFiles/nfp_tests.dir/common/common_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/common/common_test.cpp.o.d"
  "/root/repo/tests/dataplane/classification_test.cpp" "tests/CMakeFiles/nfp_tests.dir/dataplane/classification_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/dataplane/classification_test.cpp.o.d"
  "/root/repo/tests/dataplane/dataplane_test.cpp" "tests/CMakeFiles/nfp_tests.dir/dataplane/dataplane_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/dataplane/dataplane_test.cpp.o.d"
  "/root/repo/tests/dataplane/drop_resolution_test.cpp" "tests/CMakeFiles/nfp_tests.dir/dataplane/drop_resolution_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/dataplane/drop_resolution_test.cpp.o.d"
  "/root/repo/tests/dataplane/live_pipeline_test.cpp" "tests/CMakeFiles/nfp_tests.dir/dataplane/live_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/dataplane/live_pipeline_test.cpp.o.d"
  "/root/repo/tests/dataplane/merge_ops_test.cpp" "tests/CMakeFiles/nfp_tests.dir/dataplane/merge_ops_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/dataplane/merge_ops_test.cpp.o.d"
  "/root/repo/tests/e2e/equivalence_test.cpp" "tests/CMakeFiles/nfp_tests.dir/e2e/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/e2e/equivalence_test.cpp.o.d"
  "/root/repo/tests/extensions/openbox_cluster_test.cpp" "tests/CMakeFiles/nfp_tests.dir/extensions/openbox_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/extensions/openbox_cluster_test.cpp.o.d"
  "/root/repo/tests/extensions/scaling_nsh_flow_test.cpp" "tests/CMakeFiles/nfp_tests.dir/extensions/scaling_nsh_flow_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/extensions/scaling_nsh_flow_test.cpp.o.d"
  "/root/repo/tests/graph/service_graph_test.cpp" "tests/CMakeFiles/nfp_tests.dir/graph/service_graph_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/graph/service_graph_test.cpp.o.d"
  "/root/repo/tests/inspector/inspector_test.cpp" "tests/CMakeFiles/nfp_tests.dir/inspector/inspector_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/inspector/inspector_test.cpp.o.d"
  "/root/repo/tests/nfs/nf_test.cpp" "tests/CMakeFiles/nfp_tests.dir/nfs/nf_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/nfs/nf_test.cpp.o.d"
  "/root/repo/tests/orch/compiler_property_test.cpp" "tests/CMakeFiles/nfp_tests.dir/orch/compiler_property_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/orch/compiler_property_test.cpp.o.d"
  "/root/repo/tests/orch/compiler_test.cpp" "tests/CMakeFiles/nfp_tests.dir/orch/compiler_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/orch/compiler_test.cpp.o.d"
  "/root/repo/tests/orch/pair_stats_render_test.cpp" "tests/CMakeFiles/nfp_tests.dir/orch/pair_stats_render_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/orch/pair_stats_render_test.cpp.o.d"
  "/root/repo/tests/orch/table_gen_test.cpp" "tests/CMakeFiles/nfp_tests.dir/orch/table_gen_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/orch/table_gen_test.cpp.o.d"
  "/root/repo/tests/packet/packet_test.cpp" "tests/CMakeFiles/nfp_tests.dir/packet/packet_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/packet/packet_test.cpp.o.d"
  "/root/repo/tests/packet/packet_view_test.cpp" "tests/CMakeFiles/nfp_tests.dir/packet/packet_view_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/packet/packet_view_test.cpp.o.d"
  "/root/repo/tests/packet/pool_stress_test.cpp" "tests/CMakeFiles/nfp_tests.dir/packet/pool_stress_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/packet/pool_stress_test.cpp.o.d"
  "/root/repo/tests/policy/parser_robustness_test.cpp" "tests/CMakeFiles/nfp_tests.dir/policy/parser_robustness_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/policy/parser_robustness_test.cpp.o.d"
  "/root/repo/tests/policy/policy_test.cpp" "tests/CMakeFiles/nfp_tests.dir/policy/policy_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/policy/policy_test.cpp.o.d"
  "/root/repo/tests/ring/ring_test.cpp" "tests/CMakeFiles/nfp_tests.dir/ring/ring_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/ring/ring_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/nfp_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/nfp_tests.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/substrate/aho_corasick_test.cpp" "tests/CMakeFiles/nfp_tests.dir/substrate/aho_corasick_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/substrate/aho_corasick_test.cpp.o.d"
  "/root/repo/tests/substrate/crypto_test.cpp" "tests/CMakeFiles/nfp_tests.dir/substrate/crypto_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/substrate/crypto_test.cpp.o.d"
  "/root/repo/tests/substrate/lpm_acl_test.cpp" "tests/CMakeFiles/nfp_tests.dir/substrate/lpm_acl_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/substrate/lpm_acl_test.cpp.o.d"
  "/root/repo/tests/trafficgen/pcap_test.cpp" "tests/CMakeFiles/nfp_tests.dir/trafficgen/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/trafficgen/pcap_test.cpp.o.d"
  "/root/repo/tests/trafficgen/trafficgen_test.cpp" "tests/CMakeFiles/nfp_tests.dir/trafficgen/trafficgen_test.cpp.o" "gcc" "tests/CMakeFiles/nfp_tests.dir/trafficgen/trafficgen_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

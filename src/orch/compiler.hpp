// The NFP policy compiler (paper §4.4).
//
// Turns a policy into a high-performance service graph in three steps that
// mirror Fig 2 of the paper:
//   1. Transform rules into intermediate representations: Position pins and
//      analyzed NF pairs (Algorithm 1 verdict + conflicting actions).
//   2. Compile the pair relations into execution stages: NFs connected by
//      "must stay sequential" verdicts are levelled one after another; all
//      NFs on the same level form a parallel stage (micrograph merging).
//   3. Emit the final ServiceGraph: Position-first NFs at the head,
//      parallel stages with version assignments and merge operations, and
//      Position-last NFs at the tail.
//
// Version assignment is a greedy colouring over the "needs a copy" conflict
// edges, so the number of packet copies per stage is minimised; NFs that
// touch the payload are pinned to version 1 because Header-Only copies
// carry no payload (§4.2 OP#2).
#pragma once

#include <string>
#include <vector>

#include "actions/action_table.hpp"
#include "actions/dependency.hpp"
#include "common/status.hpp"
#include "graph/service_graph.hpp"
#include "policy/policy.hpp"

namespace nfp {

struct CompilerOptions {
  AnalysisOptions analysis;
  // Accept "parallelizable with copy" verdicts when forming stages. When
  // false, only no-copy pairs parallelize (zero resource overhead mode);
  // explicit Priority rules still force parallelism.
  bool parallelize_with_copy = true;
  // Treat every Order rule as a hard sequential edge regardless of the
  // dependency analysis. Used for OpenBox block graphs (§7/Fig 15), where
  // chain edges carry block-to-block *metadata* dependencies the packet
  // action model cannot see; Priority rules still force parallelism and
  // rule-free pairs are still analyzed normally.
  bool hard_order_rules = false;
};

// One analyzed NF pair, kept for inspection by tests and the examples.
struct PairDecision {
  std::string nf1;
  std::string nf2;
  PairParallelism verdict = PairParallelism::kNoCopy;
  bool from_priority_rule = false;
  std::size_t conflict_count = 0;
};

struct CompileReport {
  std::vector<PairDecision> decisions;
  std::vector<std::string> warnings;
};

// Compiles `policy` against the NF action table. Returns an error for
// invalid policies (conflicts, unknown NF names, unresolvable ordering).
Result<ServiceGraph> compile_policy(const Policy& policy,
                                    const ActionTable& table,
                                    const CompilerOptions& options = {},
                                    CompileReport* report = nullptr);

}  // namespace nfp

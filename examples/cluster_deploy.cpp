// Deployment planning walkthrough: compile a long policy, print the
// dataplane tables the chaining manager would install (paper Fig 4), and
// partition the graph across servers under the §7 one-copy-per-hop
// constraint.
#include <cstdio>

#include "cluster/partition.hpp"
#include "orch/compiler.hpp"
#include "orch/table_gen.hpp"
#include "policy/parser.hpp"

int main() {
  using namespace nfp;

  const char* policy_text = R"(
    policy enterprise_edge
    position(vpn, first)
    chain(ids, monitor, firewall, gateway, lb)
    nf(caching)
  )";
  const auto policy = parse_policy(policy_text);
  if (!policy) {
    std::printf("parse error: %s\n", policy.error().c_str());
    return 1;
  }

  const ActionTable table = ActionTable::with_builtin_nfs();
  auto compiled = compile_policy(policy.value(), table);
  if (!compiled) {
    std::printf("compile error: %s\n", compiled.error().c_str());
    return 1;
  }
  const ServiceGraph& graph = compiled.value();
  std::printf("%s\n", graph.to_string().c_str());

  // The tables the orchestrator installs into the infrastructure (Fig 4).
  std::printf("%s\n",
              tables_to_string(generate_tables(graph, "192.168.0.0/16"))
                  .c_str());

  // Plan the deployment onto small servers to force a split.
  cluster::PartitionOptions options;
  options.cores_per_server = 7;
  options.infra_cores = 3;
  const auto plan = cluster::partition_graph(graph, options);
  if (!plan) {
    std::printf("partition error: %s\n", plan.error().c_str());
    return 1;
  }
  std::printf("%s", cluster::plan_to_string(graph, plan.value()).c_str());
  std::printf("inter-server copies per packet: %.1f (the §7 constraint)\n",
              cluster::inter_server_copies_per_packet(graph, plan.value()));
  return 0;
}

// A policy: a named set of rules describing one service graph, plus the
// helpers the orchestrator needs (NF inventory, conversion from legacy
// sequential chain descriptions).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "policy/rule.hpp"

namespace nfp {

class Policy {
 public:
  Policy() = default;
  explicit Policy(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add(Rule rule) { rules_.push_back(std::move(rule)); }
  void add_order(std::string before, std::string after) {
    rules_.push_back(OrderRule{std::move(before), std::move(after)});
  }
  void add_priority(std::string high, std::string low) {
    rules_.push_back(PriorityRule{std::move(high), std::move(low)});
  }
  void add_position(std::string nf, Placement placement) {
    rules_.push_back(PositionRule{std::move(nf), placement});
  }

  const std::vector<Rule>& rules() const noexcept { return rules_; }
  bool empty() const noexcept { return rules_.empty(); }

  // Registers an NF that appears in no rule ("free NF", paper Fig 2: NF8).
  void add_free_nf(std::string nf) { free_nfs_.push_back(std::move(nf)); }
  const std::vector<std::string>& free_nfs() const noexcept {
    return free_nfs_;
  }

  // Every NF mentioned by any rule or registered as free, in first-mention
  // order (duplicates removed).
  std::vector<std::string> nf_names() const;

  // Compatibility path (paper §3, Order rule): converts a traditional
  // sequential chain description [nf0, nf1, ...] into Order rules between
  // neighbours, letting the orchestrator hunt for parallelism.
  static Policy from_sequential_chain(std::string name,
                                      const std::vector<std::string>& chain);

  std::string to_string() const;

 private:
  std::string name_ = "policy";
  std::vector<Rule> rules_;
  std::vector<std::string> free_nfs_;
};

}  // namespace nfp

// The paper's real-world scenario (§6.4): the north-south and west-east
// data-center service chains, compared across three deployments:
//   - OpenNetVM-style sequential chain behind a centralized switch,
//   - the compiled NFP service graph with parallel NFs,
//   - a BESS-style run-to-completion consolidation (for context, §7).
//
// Prints per-chain latency/throughput and the NFP resource overhead.
#include <cstdio>

#include "baseline/onv_dataplane.hpp"
#include "baseline/rtc_dataplane.hpp"
#include "dataplane/nfp_dataplane.hpp"
#include "orch/compiler.hpp"
#include "policy/policy.hpp"
#include "trafficgen/latency_recorder.hpp"
#include "trafficgen/trafficgen.hpp"

namespace {

using namespace nfp;

struct Numbers {
  double mean_us;
  double p99_us;
  u64 delivered;
};

template <typename Dataplane>
Numbers measure(sim::Simulator& sim, Dataplane& dp, u64 packets) {
  LatencyRecorder lat;
  dp.set_sink([&](Packet* p, SimTime t) {
    lat.record(p->inject_time(), t);
    dp.pool().release(p);
  });
  TrafficConfig traffic;
  traffic.size_model = SizeModel::kDataCenter;
  traffic.packets = packets;
  traffic.rate_pps = 20'000;
  traffic.flows = 128;
  TrafficGenerator gen(sim, dp.pool(), traffic);
  gen.start([&](Packet* p) { dp.inject(p); });
  sim.run();
  return {lat.mean_us(), lat.p99_us(), static_cast<u64>(lat.count())};
}

void run_chain(const char* name, const std::vector<std::string>& chain) {
  std::printf("\n=== %s chain: ", name);
  for (const auto& nf : chain) std::printf("%s ", nf.c_str());
  std::printf("===\n");

  const ActionTable table = ActionTable::with_builtin_nfs();
  auto graph = compile_policy(
      Policy::from_sequential_chain(name, chain), table);
  if (!graph) {
    std::printf("compile error: %s\n", graph.error().c_str());
    return;
  }
  std::printf("NFP graph: %s (equivalent length %zu, %zu copies/pkt)\n",
              graph.value().structure().c_str(),
              graph.value().equivalent_length(),
              graph.value().copies_per_packet());

  constexpr u64 kPackets = 5'000;
  Numbers onv{}, nfp{}, rtc{};
  u64 copy_bytes = 0;
  {
    sim::Simulator sim;
    baseline::OnvDataplane dp(sim, chain);
    onv = measure(sim, dp, kPackets);
  }
  {
    sim::Simulator sim;
    NfpDataplane dp(sim, graph.value());
    nfp = measure(sim, dp, kPackets);
    copy_bytes = dp.stats().copy_bytes;
  }
  {
    sim::Simulator sim;
    baseline::RtcDataplane dp(sim, chain, chain.size() + 2);
    rtc = measure(sim, dp, kPackets);
  }

  std::printf("%-22s %12s %12s %12s\n", "", "OpenNetVM", "NFP", "BESS/RTC");
  std::printf("%-22s %10.1fus %10.1fus %10.1fus\n", "mean latency",
              onv.mean_us, nfp.mean_us, rtc.mean_us);
  std::printf("%-22s %10.1fus %10.1fus %10.1fus\n", "p99 latency", onv.p99_us,
              nfp.p99_us, rtc.p99_us);
  std::printf("NFP latency reduction vs OpenNetVM: %.1f%%\n",
              (onv.mean_us - nfp.mean_us) / onv.mean_us * 100);
  const double traffic_bytes =
      TrafficGenerator::dc_mean_frame_size() * static_cast<double>(kPackets);
  std::printf("NFP resource overhead: %.1f%% (%llu copy bytes)\n",
              static_cast<double>(copy_bytes) / traffic_bytes * 100,
              static_cast<unsigned long long>(copy_bytes));
}

}  // namespace

int main() {
  std::printf("Real-world data-center service chains (paper Fig 13)\n");
  run_chain("north-south", {"vpn", "monitor", "firewall", "lb"});
  run_chain("west-east", {"ids", "monitor", "lb"});
  return 0;
}

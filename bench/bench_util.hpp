// Shared harness for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (§6): it builds the relevant service graphs, replays seeded
// traffic through the simulated dataplanes, and prints the same rows/series
// the paper reports. See EXPERIMENTS.md for paper-vs-measured values.
#pragma once

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baseline/onv_dataplane.hpp"
#include "baseline/rtc_dataplane.hpp"
#include "dataplane/nfp_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "nfs/misc_nfs.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/stats_server.hpp"
#include "trafficgen/latency_recorder.hpp"
#include "trafficgen/trafficgen.hpp"

namespace nfp::bench {

// NF factory for performance benches: firewalls with an empty pass-all ACL
// (no traffic-dependent drops perturbing the measurements) and DelayNf
// instances with the requested busy-loop cycles.
inline NfFactory perf_factory(u32 delay_cycles = 300) {
  return [delay_cycles](const StageNf& nf)
             -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kPass);
      return std::make_unique<Firewall>(std::move(acl));
    }
    if (nf.name == "delaynf") return std::make_unique<DelayNf>(delay_cycles);
    return make_builtin_nf(nf.name, static_cast<u64>(nf.instance_id) + 1);
  };
}

struct Measurement {
  double mean_latency_us = 0;
  double p99_latency_us = 0;
  double rate_mpps = 0;
  DataplaneStats stats;
  // Full metrics snapshot of the run (dataplane + trafficgen series), for
  // machine-readable emission alongside the printed tables.
  telemetry::MetricsRegistry metrics;
  // Critical-path bottleneck report, captured when the dataplane ran with
  // tracing enabled (cfg.trace_every > 0); empty otherwise.
  std::string profile_json;
};

inline TrafficConfig latency_traffic(std::size_t frame_size, u64 packets = 2000) {
  TrafficConfig t;
  t.size_model = SizeModel::kFixed;
  t.fixed_size = frame_size;
  t.rate_pps = 10'000;  // low load: pure path latency
  t.packets = packets;
  t.flows = 32;
  return t;
}

inline TrafficConfig saturation_traffic(std::size_t frame_size,
                                        u64 packets = 30'000) {
  TrafficConfig t;
  t.size_model = SizeModel::kFixed;
  t.fixed_size = frame_size;
  t.rate_pps = 40e6;  // far above any capacity: measures the bottleneck
  t.packets = packets;
  t.flows = 2048;  // enough flows for even RSS spread across RTC replicas
  return t;
}

// Generic runner over any dataplane exposing inject/set_sink/pool() and the
// telemetry surface (metrics()/snapshot_metrics()).
template <typename Dataplane>
Measurement run(Dataplane& dp, sim::Simulator& sim,
                const TrafficConfig& traffic) {
  LatencyRecorder lat;
  dp.set_sink([&](Packet* p, SimTime t) {
    lat.record(p->inject_time(), t);
    dp.pool().release(p);
  });
  TrafficConfig tcfg = traffic;
  tcfg.metrics = &dp.metrics();  // trafficgen series join the dataplane's
  TrafficGenerator gen(sim, dp.pool(), tcfg);
  gen.start([&](Packet* p) { dp.inject(p); });
  sim.run();
  Measurement m;
  m.mean_latency_us = lat.mean_us();
  m.p99_latency_us = lat.p99_us();
  m.rate_mpps = lat.rate_mpps();
  m.stats = dp.stats();
  dp.snapshot_metrics();
  m.metrics = dp.metrics();
  if (dp.tracer() != nullptr) {
    m.profile_json =
        telemetry::CriticalPathProfiler(*dp.tracer()).report().to_json();
  }
  return m;
}

inline Measurement run_nfp(const ServiceGraph& graph,
                           const TrafficConfig& traffic,
                           DataplaneConfig cfg = {}) {
  if (!cfg.factory) cfg.factory = perf_factory(cfg.delaynf_cycles);
  sim::Simulator sim;
  NfpDataplane dp(sim, graph, std::move(cfg));
  return run(dp, sim, traffic);
}

inline Measurement run_onv(const std::vector<std::string>& chain,
                           const TrafficConfig& traffic,
                           DataplaneConfig cfg = {}) {
  if (!cfg.factory) cfg.factory = perf_factory(cfg.delaynf_cycles);
  sim::Simulator sim;
  baseline::OnvDataplane dp(sim, chain, std::move(cfg));
  return run(dp, sim, traffic);
}

inline Measurement run_rtc(const std::vector<std::string>& chain,
                           std::size_t cores, const TrafficConfig& traffic,
                           DataplaneConfig cfg = {}) {
  if (!cfg.factory) cfg.factory = perf_factory(cfg.delaynf_cycles);
  sim::Simulator sim;
  baseline::RtcDataplane dp(sim, chain, cores, std::move(cfg));
  return run(dp, sim, traffic);
}

// --- graph builders for the bench setups (paper Fig 10 / Fig 14) -------------

// N instances of `type` in one parallel stage. `with_copy` assigns each
// instance its own packet version (the paper's "NFP-parallel-copy" setup);
// otherwise all instances share version 1 ("NFP-parallel-no copy").
inline ServiceGraph parallel_stage(const std::string& type, std::size_t n,
                                   bool with_copy,
                                   bool payload_heavy = false) {
  ServiceGraph g("par-" + type);
  Segment seg;
  seg.mid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u8 version = with_copy ? static_cast<u8>(i + 1) : u8{1};
    seg.nfs.push_back(StageNf{type, static_cast<int>(i), version,
                              static_cast<int>(i), false});
    if (with_copy && version > 1 && payload_heavy) {
      seg.full_copy_mask |= static_cast<u16>(1u << version);
    }
  }
  seg.num_versions = with_copy ? static_cast<u8>(n) : u8{1};
  seg.merge.total_count = static_cast<u32>(n);
  g.segments().push_back(std::move(seg));
  return g;
}

inline std::vector<std::string> repeat(const std::string& type,
                                       std::size_t n) {
  return std::vector<std::string>(n, type);
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// --- machine-readable metrics emission ---------------------------------------
//
// Benches keep their human tables; passing --json (or setting NFP_BENCH_JSON)
// additionally emits one JSON line per measurement so scripts can consume
// the same numbers:
//   {"bench":...,"series":...,"meta":{...},"metrics":{...}}
// `meta` stamps the run for provenance: bench name, the config knobs the
// series varied, and a UTC timestamp (so archived lines remain
// interpretable). With tracing on, a "profile" object rides along too.

inline bool json_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return true;
  }
  return std::getenv("NFP_BENCH_JSON") != nullptr;
}

inline std::string iso8601_utc_now() {
  char buf[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

// `knobs` is a JSON object of the config values this series ran with, e.g.
// R"({"cycles":500,"degree":4})"; defaults to empty.
inline void emit_metrics_json(const char* bench, const std::string& series,
                              const Measurement& m,
                              const std::string& knobs = "{}") {
  std::printf("{\"bench\":\"%s\",\"series\":\"%s\"", bench, series.c_str());
  std::printf(",\"meta\":{\"bench\":\"%s\",\"timestamp\":\"%s\",\"knobs\":%s}",
              bench, iso8601_utc_now().c_str(),
              knobs.empty() ? "{}" : knobs.c_str());
  if (!m.profile_json.empty()) {
    std::printf(",\"profile\":%s", m.profile_json.c_str());
  }
  std::printf(",\"metrics\":%s}\n", telemetry::to_json(m.metrics).c_str());
}

// --- live serving of bench metrics (--serve=PORT) ----------------------------
//
// Passing --serve=PORT to any bench serves the accumulated metrics of every
// measurement so far on 127.0.0.1:PORT (/metrics, /metrics.json, /healthz)
// while the bench runs, and keeps serving the final merged registry after
// the tables have printed until Ctrl-C. Wiring per bench:
//
//   BenchServer server(argc, argv);   // no-op without --serve
//   ... server.observe(m); ...        // after each Measurement
//   server.finish();                  // before return — blocks if serving

inline volatile std::sig_atomic_t g_bench_stop = 0;
inline void bench_stop_handler(int) { g_bench_stop = 1; }

class BenchServer {
 public:
  BenchServer(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--serve=", 8) == 0) {
        port_ = std::strtoull(argv[i] + 8, nullptr, 10);
      }
    }
    if (port_ == 0) return;
    telemetry::EndpointSources sources;
    sources.registry = &merged_;
    sources.mu = &mu_;
    telemetry::register_standard_endpoints(server_, sources);
    telemetry::StatsServer::Options options;
    options.port = static_cast<std::uint16_t>(port_);
    const Status started = server_.start(options);
    if (!started) {
      std::fprintf(stderr, "bench --serve: %s\n", started.message().c_str());
      port_ = 0;
      return;
    }
    std::fprintf(stderr,
                 "serving bench metrics on http://127.0.0.1:%u "
                 "(/metrics /metrics.json /healthz)\n",
                 static_cast<unsigned>(server_.port()));
  }

  bool serving() const noexcept { return port_ != 0; }

  // Merges a finished measurement into the served registry.
  void observe(const Measurement& m) {
    if (port_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    merged_.merge(m.metrics);
  }

  // After the bench's tables have printed: keep the final merged registry
  // scrapeable until Ctrl-C. No-op without --serve.
  void finish() {
    if (port_ == 0) return;
    std::signal(SIGINT, bench_stop_handler);
    std::signal(SIGTERM, bench_stop_handler);
    std::fprintf(stderr, "bench complete — serving until Ctrl-C\n");
    while (g_bench_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server_.stop();
    port_ = 0;
  }

 private:
  u64 port_ = 0;
  std::mutex mu_;
  telemetry::MetricsRegistry merged_;
  telemetry::StatsServer server_;
};

}  // namespace nfp::bench

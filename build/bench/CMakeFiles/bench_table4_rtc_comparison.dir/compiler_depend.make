# Empty compiler generated dependencies file for bench_table4_rtc_comparison.
# This may be replaced when dependencies are built.

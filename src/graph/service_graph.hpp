// Compiled service graph.
//
// The orchestrator compiles a policy into a sequence of *segments*. Each
// segment is either a single NF (sequential hop) or a parallel stage of NFs.
// Within a parallel stage every NF is assigned a packet *version*: NFs that
// may share one packet copy (no conflicting actions, §4.2 OP#1) share a
// version; each extra version is one Header-Only copy. A parallel stage ends
// at the merger, which combines versions using the segment's merge
// operations (paper §5.3) and forwards the result to the next segment.
//
// The *equivalent chain length* of the graph — the quantity the paper's
// latency model is built on — is the number of segments.
#pragma once

#include <string>
#include <vector>

#include "actions/action.hpp"
#include "packet/fields.hpp"

namespace nfp {

// One NF instance inside a segment.
struct StageNf {
  std::string name;     // NF type name (key into the action table / registry)
  int instance_id = 0;  // unique within the graph; names NF instances
  u8 version = 1;       // packet version this NF processes (1 = original)
  int priority = 0;     // merge priority; higher wins conflicting fields
  bool can_drop = false;
};

// Merge operations (paper §5.3, Fig 6). The base of the merged output is
// version 1; operations graft data from other versions onto it.
struct MergeOp {
  enum class Kind : u8 {
    kModify,  // overwrite field of v1 with the field from src_version
    // Align v1's AH header with src_version: insert the AH carried by
    // src_version after v1's IP header (paper Fig 6 "add(v2.AH, after,
    // v1.IP)"), or remove v1's AH if src_version's NF removed it.
    kSyncAh,
  };
  Kind kind = Kind::kModify;
  u8 src_version = 1;
  Field field = Field::kCount;

  friend bool operator==(const MergeOp&, const MergeOp&) = default;
};

// How parallel drop verdicts combine (see DESIGN.md): Order-derived
// parallelism preserves sequential semantics with "any drop wins";
// explicit Priority rules let the highest-priority drop-capable NF decide.
enum class DropResolution : u8 { kAnyDrop, kPriority };

struct MergeSpec {
  u32 total_count = 0;  // packet arrivals the merger expects per PID
  std::vector<MergeOp> ops;
  DropResolution drop_resolution = DropResolution::kAnyDrop;
};

struct Segment {
  std::vector<StageNf> nfs;  // one entry => sequential hop, no merger
  u8 num_versions = 1;       // copies made on segment entry = num_versions-1
  MergeSpec merge;           // meaningful when nfs.size() > 1
  u32 mid = 0;               // Match ID tagged on packets in this segment
  // Bit v set => version v must be a full-packet copy because an NF on that
  // version reads or writes the payload (Header-Only copies carry none).
  u16 full_copy_mask = 0;

  bool is_parallel() const noexcept { return nfs.size() > 1; }
  std::size_t copies() const noexcept { return num_versions - 1u; }
  bool version_needs_full_copy(u8 v) const noexcept {
    return (full_copy_mask & (1u << v)) != 0;
  }
};

class ServiceGraph {
 public:
  ServiceGraph() = default;
  explicit ServiceGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  std::vector<Segment>& segments() noexcept { return segments_; }
  const std::vector<Segment>& segments() const noexcept { return segments_; }

  // The paper's "equivalent chain length": sequential hops on the packet path.
  std::size_t equivalent_length() const noexcept { return segments_.size(); }

  // Total NF instances in the graph.
  std::size_t nf_count() const;
  // Header copies made per packet across all segments.
  std::size_t copies_per_packet() const;
  // True when no segment runs NFs in parallel.
  bool is_sequential() const;

  // Structure string in the style of paper Fig 14, e.g. "1+2+1" for a graph
  // with a single NF, then two parallel NFs, then a single NF.
  std::string structure() const;

  // Multi-line human-readable rendering (used by examples and logs).
  std::string to_string() const;

  // Graphviz rendering: classifier -> segments (parallel stages as
  // clusters feeding a merger node) -> output.
  std::string to_dot() const;

  // Convenience constructors for benches/tests that need a specific shape
  // without going through the policy compiler.
  static ServiceGraph sequential(std::string name,
                                 const std::vector<std::string>& chain);
  // One parallel stage; `versions[i]` gives the version of stage NF i
  // (pass {} for all-version-1 / no-copy parallelism).
  static ServiceGraph parallel(std::string name,
                               const std::vector<std::string>& nfs,
                               const std::vector<u8>& versions = {},
                               std::vector<MergeOp> ops = {});

 private:
  std::string name_ = "graph";
  std::vector<Segment> segments_;
};

}  // namespace nfp

// Monitor NF: per-flow packet/byte counters keyed by the 5-tuple
// (paper §6.1: "maintains per-flow counters ... the counter table uses the
// hash value of the 5-tuple as the key"), NetFlow-style.
//
// State lives in a bounded LRU FlowTable and is exportable/importable so an
// overloaded monitor can be scaled out with flow migration (paper §7's
// "migrate some states ... redirect some flows to the new instance").
#pragma once

#include <utility>
#include <vector>

#include "flow/flow_table.hpp"
#include "nfs/nf.hpp"

namespace nfp {

class Monitor final : public NetworkFunction {
 public:
  struct FlowStats {
    u64 packets = 0;
    u64 bytes = 0;

    friend bool operator==(const FlowStats&, const FlowStats&) = default;
  };
  using ExportedFlow = std::pair<FiveTuple, FlowStats>;

  explicit Monitor(std::size_t flow_capacity = 65536)
      : flows_(flow_capacity) {}

  std::string_view type_name() const override { return "monitor"; }

  NfVerdict process(PacketView& packet) override {
    FlowStats& stats = flows_.get_or_create(packet.five_tuple());
    ++stats.packets;
    stats.bytes += packet.packet().length();
    ++total_packets_;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kProto);  // 5-tuple flow key
    return p;
  }

  std::size_t flow_count() const noexcept { return flows_.size(); }
  u64 total_packets() const noexcept { return total_packets_; }
  u64 evictions() const noexcept { return flows_.evictions(); }
  const FlowStats* flow(const FiveTuple& t) const { return flows_.peek(t); }

  // --- state migration (§7 scaling) ------------------------------------------
  // Removes and returns every flow for which `pred(key)` holds.
  template <typename Pred>
  std::vector<ExportedFlow> extract_flows(Pred&& pred) {
    std::vector<ExportedFlow> out;
    flows_.for_each([&](const FiveTuple& key, const FlowStats& stats) {
      if (pred(key)) out.emplace_back(key, stats);
    });
    for (const auto& [key, stats] : out) flows_.erase(key);
    return out;
  }

  void absorb_flows(const std::vector<ExportedFlow>& flows) {
    for (const auto& [key, stats] : flows) {
      flows_.get_or_create(key) = stats;
    }
  }

 private:
  FlowTable<FlowStats> flows_;
  u64 total_packets_ = 0;
};

}  // namespace nfp

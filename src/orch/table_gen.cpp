#include "orch/table_gen.hpp"

#include <sstream>

namespace nfp {

namespace {

std::string instance_label(const StageNf& nf) {
  return nf.name + "#" + std::to_string(nf.instance_id);
}

// Entry actions performed when a packet enters `seg`: copies for every
// extra version, then one distribute per version listing its consumers.
std::vector<std::string> entry_actions(const Segment& seg) {
  std::vector<std::string> actions;
  if (!seg.is_parallel()) {
    actions.push_back("distribute(v1, " + instance_label(seg.nfs.front()) +
                      ")");
    return actions;
  }
  for (u8 v = 2; v <= seg.num_versions; ++v) {
    std::string copy = "copy(v1, v" + std::to_string(v) + ")";
    if (seg.version_needs_full_copy(v)) copy += " [full]";
    actions.push_back(std::move(copy));
  }
  for (u8 v = 1; v <= seg.num_versions; ++v) {
    std::string targets;
    for (const StageNf& nf : seg.nfs) {
      if (nf.version != v) continue;
      if (!targets.empty()) targets += ", ";
      targets += instance_label(nf);
    }
    if (!targets.empty()) {
      actions.push_back("distribute(v" + std::to_string(v) + ", [" +
                        targets + "])");
    }
  }
  return actions;
}

}  // namespace

std::string merge_op_to_string(const MergeOp& op) {
  std::ostringstream out;
  switch (op.kind) {
    case MergeOp::Kind::kModify:
      out << "modify(v1." << field_name(op.field) << ", v"
          << static_cast<int>(op.src_version) << "." << field_name(op.field)
          << ")";
      break;
    case MergeOp::Kind::kSyncAh:
      out << "add(v" << static_cast<int>(op.src_version)
          << ".AH, after, v1.IP)";
      break;
  }
  return out.str();
}

DataplaneTables generate_tables(const ServiceGraph& graph,
                                const std::string& match) {
  DataplaneTables tables;
  const auto& segments = graph.segments();
  if (segments.empty()) return tables;

  // Classification Table entry: first segment's entry actions.
  CtEntry ct;
  ct.match = match;
  ct.mid = segments.front().mid;
  ct.total_count = segments.front().is_parallel()
                       ? segments.front().merge.total_count
                       : 1;
  for (const MergeOp& op : segments.front().merge.ops) {
    ct.merge_ops.push_back(merge_op_to_string(op));
  }
  ct.actions = entry_actions(segments.front());
  tables.ct.push_back(std::move(ct));

  // Forwarding Tables: every NF forwards to the merger (parallel stage) or
  // performs the next segment's entry actions / output (sequential hop).
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const Segment& seg = segments[s];
    const bool last = s + 1 == segments.size();
    for (const StageNf& nf : seg.nfs) {
      FtEntry entry;
      entry.nf = instance_label(nf);
      entry.mid = seg.mid;
      if (seg.is_parallel()) {
        entry.actions.push_back("distribute(v" +
                                std::to_string(nf.version) + ", Merger)");
        if (nf.can_drop) entry.actions.push_back("on-drop: nil -> Merger");
      } else if (last) {
        entry.actions.push_back("output(v1)");
      } else {
        for (auto& action : entry_actions(segments[s + 1])) {
          entry.actions.push_back(std::move(action));
        }
      }
      tables.ft.push_back(std::move(entry));
    }
    // The merger's own forwarding entry for parallel non-final segments.
    if (seg.is_parallel()) {
      FtEntry merger;
      merger.nf = "Merger";
      merger.mid = seg.mid;
      for (const MergeOp& op : seg.merge.ops) {
        merger.actions.push_back(merge_op_to_string(op));
      }
      if (last) {
        merger.actions.push_back("output(v1)");
      } else {
        for (auto& action : entry_actions(segments[s + 1])) {
          merger.actions.push_back(std::move(action));
        }
      }
      tables.ft.push_back(std::move(merger));
    }
  }
  return tables;
}

std::string tables_to_string(const DataplaneTables& tables) {
  std::ostringstream out;
  out << "Classification Table (CT)\n";
  for (const CtEntry& e : tables.ct) {
    out << "  match=" << e.match << " MID=" << e.mid
        << " total_count=" << e.total_count << "\n";
    for (const auto& mo : e.merge_ops) out << "    MO: " << mo << "\n";
    for (const auto& a : e.actions) out << "    action: " << a << "\n";
  }
  out << "Forwarding Tables (FT)\n";
  for (const FtEntry& e : tables.ft) {
    out << "  [" << e.nf << "] MID=" << e.mid << "\n";
    for (const auto& a : e.actions) out << "    " << a << "\n";
  }
  return out.str();
}

}  // namespace nfp

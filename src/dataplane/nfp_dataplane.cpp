#include "dataplane/nfp_dataplane.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/logging.hpp"
#include "dataplane/merge_ops.hpp"
#include "packet/packet_view.hpp"

namespace nfp {

namespace {

std::unique_ptr<NetworkFunction> default_factory(const StageNf& nf) {
  return make_builtin_nf(nf.name, static_cast<u64>(nf.instance_id) + 1);
}

constexpr char kPlane[] = "nfp";

}  // namespace

NfpDataplane::NfpDataplane(sim::Simulator& sim, ServiceGraph graph,
                           DataplaneConfig config)
    : NfpDataplane(sim,
                   [&] {
                     std::vector<ServiceGraph> graphs;
                     graphs.push_back(std::move(graph));
                     return graphs;
                   }(),
                   std::move(config)) {}

NfpDataplane::NfpDataplane(sim::Simulator& sim,
                           std::vector<ServiceGraph> graphs,
                           DataplaneConfig config)
    : sim_(sim),
      config_(std::move(config)),
      pool_(std::make_unique<PacketPool>(config_.pool_packets)),
      merger_cores_(config_.merger_instances),
      merger_out_(config_.merger_instances),
      at_(config_.merger_instances) {
  assert(!graphs.empty());
  const NfFactory& factory =
      config_.factory ? config_.factory : NfFactory(default_factory);

  u32 next_mid = 0;
  int next_instance = 0;
  for (ServiceGraph& graph : graphs) {
    GraphRuntime runtime;
    runtime.graph = std::move(graph);
    for (Segment& seg : runtime.graph.segments()) {
      seg.mid = next_mid++ & Metadata::kMaxMid;  // globally unique MIDs
      std::vector<NfInstance> instances;
      for (StageNf& nf : seg.nfs) {
        nf.instance_id = next_instance++;
        NfInstance inst;
        inst.meta = nf;
        inst.impl = factory(nf);
        if (inst.impl == nullptr) {
          // Unknown NF type: fall back to a pass-through monitor so the
          // graph still runs; cost accounting uses the type name regardless.
          log_warn("no implementation for NF type '", nf.name,
                   "'; using monitor as a stand-in");
          inst.impl = make_builtin_nf("monitor");
        }
        instances.push_back(std::move(inst));
      }
      runtime.segments.push_back(std::move(instances));
    }
    graphs_.push_back(std::move(runtime));
  }

  if (config_.trace_every > 0) {
    tracer_ = std::make_unique<telemetry::Tracer>(config_.trace_every,
                                                  config_.trace_capacity);
  }
  bind_metrics();
}

void NfpDataplane::bind_metrics() {
  const telemetry::Labels plane{{"plane", kPlane}};
  m_injected_ = &metrics_.counter("packets_injected_total", plane);
  m_delivered_ = &metrics_.counter("packets_delivered_total", plane);
  m_dropped_nf_ = &metrics_.counter("packets_dropped_total",
                                    {{"plane", kPlane}, {"reason", "nf"}});
  m_dropped_pool_ = &metrics_.counter("packets_dropped_total",
                                      {{"plane", kPlane}, {"reason", "pool"}});
  m_copies_header_ =
      &metrics_.counter("copies_total", {{"plane", kPlane}, {"kind", "header"}});
  m_copies_full_ =
      &metrics_.counter("copies_total", {{"plane", kPlane}, {"kind", "full"}});
  m_copy_bytes_ = &metrics_.counter("copy_bytes_total", plane);
  m_merges_ = &metrics_.counter("merges_total", plane);
  m_latency_ = &metrics_.histogram("packet_latency_ns", plane);
  m_pool_in_use_ = &metrics_.gauge("pool_in_use", plane);
  metrics_.gauge("pool_capacity", plane)
      .set(static_cast<double>(pool_->capacity()));
  for (std::size_t i = 0; i < merger_cores_.size(); ++i) {
    m_at_entries_.push_back(&metrics_.gauge(
        "merger_at_entries",
        {{"plane", kPlane}, {"merger", std::to_string(i)}}));
  }
  for (std::size_t g = 0; g < graphs_.size(); ++g) {
    GraphRuntime& runtime = graphs_[g];
    for (std::size_t s = 0; s < runtime.segments.size(); ++s) {
      for (NfInstance& inst : runtime.segments[s]) {
        inst.component =
            "nf:" + inst.meta.name + "#" + std::to_string(inst.meta.instance_id);
        inst.service = &metrics_.histogram(
            "nf_service_ns", {{"plane", kPlane},
                              {"graph", std::to_string(g)},
                              {"segment", std::to_string(s)},
                              {"nf", inst.component}});
      }
    }
  }
}

void NfpDataplane::snapshot_metrics() {
  const auto busy = [this](const std::string& component, SimTime ns) {
    metrics_
        .gauge("core_busy_ns",
               {{"plane", kPlane}, {"component", component}})
        .set(static_cast<double>(ns));
  };
  metrics_.gauge("sim_now_ns", {{"plane", kPlane}})
      .set(static_cast<double>(sim_.now()));
  busy("classifier", classifier_core_.busy_time());
  busy("merger-agent", agent_core_.busy_time());
  busy("rx-link", rx_link_.busy_time());
  busy("tx-link", tx_link_.busy_time());
  for (std::size_t i = 0; i < merger_cores_.size(); ++i) {
    busy("merger#" + std::to_string(i), merger_cores_[i].busy_time());
  }
  for (GraphRuntime& runtime : graphs_) {
    for (auto& segment : runtime.segments) {
      for (NfInstance& inst : segment) {
        busy(inst.component, inst.core.busy_time());
      }
    }
  }
  m_pool_in_use_->set(static_cast<double>(pool_->in_use()));
}

std::string NfpDataplane::post_mortem(std::string_view reason) {
  snapshot_metrics();  // gauges are point-in-time; refresh before dumping
  return flight_.dump(&metrics_, reason);
}

void NfpDataplane::trace(u64 pid, telemetry::SpanKind kind, SimTime at,
                         const char* component, u8 version) {
  if (tracer_ != nullptr && tracer_->sampled(pid)) {
    tracer_->record(pid, kind, at, component, version);
  }
}

NfpDataplane::~NfpDataplane() = default;

NetworkFunction* NfpDataplane::nf_in(std::size_t graph_index,
                                     std::size_t segment, std::size_t index) {
  return graphs_.at(graph_index).segments.at(segment).at(index).impl.get();
}

void NfpDataplane::add_flow_rule(const FiveTuple& flow,
                                 std::size_t graph_index) {
  assert(graph_index < graphs_.size());
  ct_[flow] = graph_index;
}

void NfpDataplane::inject(Packet* pkt) {
  ++stats_.injected;
  m_injected_->inc();
  m_pool_in_use_->set(static_cast<double>(pool_->in_use()));
  pkt->set_inject_time(sim_.now());
  // The PID is assigned at ingress so the inject span (the packet's e2e
  // anchor for critical-path attribution) can be recorded.
  pkt->meta().set_pid(next_pid_++ & Metadata::kMaxPid);
  trace(pkt->meta().pid(), telemetry::SpanKind::kInject, sim_.now(),
        "rx-link");
  // RX link: wire serialization occupies the link; NIC/driver adds delay.
  const SimTime link_free =
      rx_link_.execute(sim_.now(), config_.costs.wire_ns(pkt->length()));
  sim_.schedule_at(link_free + config_.costs.nic_delay_ns,
                   [this, pkt] { classify(pkt); });
}

void NfpDataplane::classify(Packet* pkt) {
  const SimTime free =
      classifier_core_.execute(sim_.now(), config_.costs.classifier.occ);
  pkt->meta().set_version(1);
  trace(pkt->meta().pid(), telemetry::SpanKind::kClassify, free, "classifier");

  // Classification Table lookup (§5.1): exact flow match, default graph 0.
  std::size_t g = 0;
  if (!ct_.empty()) {
    PacketView view(*pkt);
    if (view.valid()) {
      const auto it = ct_.find(view.five_tuple());
      if (it != ct_.end()) g = it->second;
    }
  }
  enter_segment(g, 0, pkt, free, &classifier_core_,
                config_.costs.classifier.delay, &classifier_out_);
}

// `t` is when the entry core can start the segment's entry actions;
// `carry_delay` is packet latency accumulated on this core that applies to
// the hand-off into the segment's NFs.
void NfpDataplane::enter_segment(std::size_t g, std::size_t seg_idx,
                                 Packet* pkt, SimTime t,
                                 sim::SimCore* entry_core,
                                 SimTime carry_delay,
                                 sim::FifoChannel* channel) {
  GraphRuntime& runtime = graphs_[g];
  const Segment& seg = runtime.graph.segments()[seg_idx];
  auto& instances = runtime.segments[seg_idx];
  pkt->meta().set_mid(seg.mid);
  pkt->meta().set_version(1);

  if (!seg.is_parallel()) {
    const SimTime free =
        entry_core->execute(t, config_.costs.ring_enqueue.occ);
    const SimTime handoff = channel->stamp(
        free + carry_delay + config_.costs.ring_enqueue.delay);
    sim_.schedule_at(handoff, [this, g, seg_idx, pkt, handoff] {
      run_nf(g, seg_idx, 0, pkt, handoff);
    });
    return;
  }

  // Create the packet copies for versions 2..num_versions on the entry core
  // (paper §5.2 `copy` action; memory comes from the pre-allocated pool).
  std::vector<Packet*> version_pkt(
      static_cast<std::size_t>(seg.num_versions) + 1, nullptr);
  version_pkt[1] = pkt;
  SimTime free = t;
  SimTime copy_delay = 0;
  for (u8 v = 2; v <= seg.num_versions; ++v) {
    const bool full = seg.version_needs_full_copy(v);
    Packet* copy =
        full ? pool_->clone_full(*pkt) : pool_->clone_header_only(*pkt);
    if (copy == nullptr) {
      ++stats_.dropped_pool;
      m_dropped_pool_->inc();
      if (!warned_pool_exhausted_) {
        warned_pool_exhausted_ = true;
        log_warn("packet pool exhausted (", pool_->capacity(),
                 " packets); dropping packet and its copies — further "
                 "exhaustion drops are counted silently");
      }
      flight_.note(telemetry::Severity::kCritical, sim_.now(), "pool",
                   "exhausted at " + std::to_string(pool_->capacity()) +
                       " packets; copy dropped (total pool drops: " +
                       std::to_string(stats_.dropped_pool) + ")");
      trace(pkt->meta().pid(), telemetry::SpanKind::kDrop, sim_.now(), "pool");
      for (u8 w = 2; w < v; ++w) pool_->release(version_pkt[w]);
      pool_->release(pkt);
      return;
    }
    copy->meta().set_version(v);
    version_pkt[v] = copy;
    SimTime occ = config_.costs.copy_header.occ;
    if (full) {
      ++stats_.copies_full;
      m_copies_full_->inc();
      occ += static_cast<SimTime>(config_.costs.copy_full_per_byte_occ *
                                  static_cast<double>(copy->length()));
    } else {
      ++stats_.copies_header;
      m_copies_header_->inc();
    }
    stats_.copy_bytes += copy->length();
    m_copy_bytes_->inc(copy->length());
    free = entry_core->execute(free, occ);
    copy_delay += config_.costs.copy_header.delay;
    // Stamped at free + carry_delay so copy spans never sort before the
    // upstream nf-exit span (which includes its carried latency).
    trace(pkt->meta().pid(), telemetry::SpanKind::kCopy, free + carry_delay,
          full ? "copy-full" : "copy-header", v);
  }
  m_pool_in_use_->set(static_cast<double>(pool_->in_use()));

  // Reference counting: each version is consumed by every NF on it.
  for (u8 v = 1; v <= seg.num_versions; ++v) {
    const auto consumers = static_cast<std::size_t>(std::count_if(
        seg.nfs.begin(), seg.nfs.end(),
        [v](const StageNf& nf) { return nf.version == v; }));
    if (consumers == 0) {
      if (v > 1) pool_->release(version_pkt[v]);  // defensive: unused version
      continue;
    }
    for (std::size_t extra = 1; extra < consumers; ++extra) {
      pool_->add_ref(version_pkt[v]);
    }
  }

  // Distributed delivery: one reference write per target NF.
  const SimTime handoff_delay =
      carry_delay + copy_delay + config_.costs.ring_enqueue.delay;
  for (std::size_t k = 0; k < instances.size(); ++k) {
    Packet* version = version_pkt[seg.nfs[k].version];
    free = entry_core->execute(free, config_.costs.ring_enqueue.occ);
    const SimTime handoff = channel->stamp(free + handoff_delay);
    sim_.schedule_at(handoff, [this, g, seg_idx, k, version, handoff] {
      run_nf(g, seg_idx, k, version, handoff);
    });
  }
}

void NfpDataplane::run_nf(std::size_t g, std::size_t seg_idx,
                          std::size_t nf_idx, Packet* pkt, SimTime ready) {
  GraphRuntime& runtime = graphs_[g];
  const Segment& seg = runtime.graph.segments()[seg_idx];
  NfInstance& inst = runtime.segments[seg_idx][nf_idx];

  const sim::OpCost deq = config_.costs.nf_dequeue;
  const sim::OpCost nf_cost = config_.costs.nf_cost(
      inst.meta.name, pkt->length(), config_.delaynf_cycles);

  const u64 pid = pkt->meta().pid();
  trace(pid, telemetry::SpanKind::kNfEnter, ready, inst.component.c_str(),
        pkt->meta().version());

  // Real packet processing.
  PacketView view(*pkt);
  NfVerdict verdict = NfVerdict::kPass;
  if (view.valid()) {
    verdict = inst.impl->process(view);
  }

  const SimTime free = inst.core.execute(ready, deq.occ + nf_cost.occ);
  const SimTime latency = deq.delay + nf_cost.delay;
  // Service time at this NF: core queueing wait + dequeue + compute; the
  // p99/p50 gap of this histogram is the NF's queueing under load.
  inst.service->record(static_cast<u64>(free - ready));
  // The exit span includes the NF's pipeline latency (deq + compute delay)
  // so the profiler books it as service time, not downstream queueing.
  trace(pid, telemetry::SpanKind::kNfExit, free + latency,
        inst.component.c_str(), pkt->meta().version());

  if (!seg.is_parallel()) {
    if (verdict == NfVerdict::kDrop) {
      ++stats_.dropped_by_nf;
      m_dropped_nf_->inc();
      trace(pid, telemetry::SpanKind::kDrop, free, inst.component.c_str());
      log_debug("NF ", inst.component, " dropped packet pid=", pid);
      pool_->release(pkt);
      return;
    }
    // The NF's outbound FIFO channel keeps hand-offs ordered: a small
    // packet's shorter processing latency cannot let it overtake an earlier
    // packet on the same ring.
    leave_segment(g, seg_idx, pkt, free, &inst.core, latency, &inst.out);
    return;
  }

  // Parallel stage: forward to the merger (nil packets signal drops, §5.2).
  MergeItem item;
  item.pkt = pkt;
  item.version = inst.meta.version;
  item.drop_intent = verdict == NfVerdict::kDrop;
  item.priority = inst.meta.priority;
  item.can_drop = inst.meta.can_drop;
  item.sender = &inst.component;
  const SimTime enq_free =
      inst.core.execute(free, config_.costs.ring_enqueue.occ);
  const SimTime handoff = inst.out.stamp(enq_free + latency +
                                         config_.costs.ring_enqueue.delay);
  sim_.schedule_at(handoff, [this, g, seg_idx, item, handoff] {
    to_merger(g, seg_idx, item, handoff);
  });
}

void NfpDataplane::to_merger(std::size_t g, std::size_t seg_idx,
                             MergeItem item, SimTime t) {
  // Merger agent: hash the immutable PID and steer to an instance (§5.3).
  const SimTime free = agent_core_.execute(t, config_.costs.merger_agent.occ);
  const std::size_t instance = static_cast<std::size_t>(
      mix64(item.pkt->meta().pid()) % merger_cores_.size());
  const SimTime handoff = free + config_.costs.merger_agent.delay;
  sim_.schedule_at(handoff, [this, g, seg_idx, instance, item, handoff] {
    merger_arrival(g, seg_idx, instance, item, handoff);
  });
}

void NfpDataplane::merger_arrival(std::size_t g, std::size_t seg_idx,
                                  std::size_t instance, MergeItem item,
                                  SimTime t) {
  const Segment& seg = graphs_[g].graph.segments()[seg_idx];
  const SimTime free =
      merger_cores_[instance].execute(t, config_.costs.merge_arrival.occ);

  const u64 pid = item.pkt->meta().pid();
  if (tracer_ != nullptr && tracer_->sampled(pid)) {
    // The arrival span carries the *sender* NF's component so the profiler
    // can pair each parallel branch's arrival with its enter/exit spans.
    tracer_->record(pid, telemetry::SpanKind::kMergerArrival, free,
                    item.sender != nullptr
                        ? *item.sender
                        : "merger#" + std::to_string(instance),
                    item.version);
  }
  const AtKey key{g, seg_idx, pid};
  MergeState& state = at_[instance][key];
  state.items.push_back(item);
  m_at_entries_[instance]->set(static_cast<double>(at_[instance].size()));
  if (state.items.size() < seg.merge.total_count) return;

  MergeState complete = std::move(state);
  at_[instance].erase(key);
  complete_merge(g, seg_idx, instance, std::move(complete),
                 free + config_.costs.merge_arrival.delay);
}

void NfpDataplane::drop_all(MergeState& state) {
  for (const MergeItem& item : state.items) pool_->release(item.pkt);
  state.items.clear();
}

Packet* NfpDataplane::apply_merge_ops(const Segment& seg, MergeState& state) {
  std::vector<std::pair<Packet*, u8>> arrivals;
  arrivals.reserve(state.items.size());
  for (const MergeItem& item : state.items) {
    arrivals.emplace_back(item.pkt, item.version);
  }
  return apply_merge_operations(seg, arrivals);
}

void NfpDataplane::complete_merge(std::size_t g, std::size_t seg_idx,
                                  std::size_t instance, MergeState state,
                                  SimTime t) {
  const Segment& seg = graphs_[g].graph.segments()[seg_idx];

  // Drop resolution (§5.2/§5.3 nil packets; DESIGN.md).
  bool dropped = false;
  if (seg.merge.drop_resolution == DropResolution::kAnyDrop) {
    dropped = std::any_of(state.items.begin(), state.items.end(),
                          [](const MergeItem& i) { return i.drop_intent; });
  } else {
    int best_priority = -1;
    for (const MergeItem& item : state.items) {
      if (item.can_drop && item.priority > best_priority) {
        best_priority = item.priority;
        dropped = item.drop_intent;
      }
    }
  }

  const SimTime ops_occ = config_.costs.merge_per_op_ns * seg.merge.ops.size();
  const SimTime free = merger_cores_[instance].execute(
      t, config_.costs.merge_final.occ + ops_occ);
  const SimTime latency =
      config_.costs.merge_final.delay +
      config_.costs.merge_per_arrival_delay_ns * seg.merge.total_count;
  ++stats_.merges;
  m_merges_->inc();
  const u64 pid =
      state.items.empty() ? 0 : state.items.front().pkt->meta().pid();
  if (tracer_ != nullptr && tracer_->sampled(pid)) {
    tracer_->record(pid, telemetry::SpanKind::kMergeComplete, free,
                    "merger#" + std::to_string(instance));
  }

  if (dropped) {
    ++stats_.dropped_by_nf;
    m_dropped_nf_->inc();
    trace(pid, telemetry::SpanKind::kDrop, free, "merger-drop-resolution");
    log_debug("merger resolved drop for pid=", pid);
    drop_all(state);
    return;
  }

  Packet* merged = apply_merge_ops(seg, state);
  if (merged == nullptr) {
    drop_all(state);
    return;
  }
  // Release every reference except one to the output packet.
  bool kept_one = false;
  for (const MergeItem& item : state.items) {
    if (item.pkt == merged && !kept_one) {
      kept_one = true;
      continue;
    }
    pool_->release(item.pkt);
  }

  leave_segment(g, seg_idx, merged, free, &merger_cores_[instance], latency,
                &merger_out_[instance]);
}

void NfpDataplane::leave_segment(std::size_t g, std::size_t seg_idx,
                                 Packet* pkt, SimTime t, sim::SimCore* core,
                                 SimTime carry_delay,
                                 sim::FifoChannel* channel) {
  if (seg_idx + 1 < graphs_[g].graph.segments().size()) {
    enter_segment(g, seg_idx + 1, pkt, t, core, carry_delay, channel);
    return;
  }
  const SimTime free = core->execute(t, config_.costs.output_queue.occ);
  const SimTime handoff = channel->stamp(
      free + carry_delay + config_.costs.output_queue.delay);
  sim_.schedule_at(handoff, [this, pkt] { output(pkt, sim_.now()); });
}

void NfpDataplane::output(Packet* pkt, SimTime t) {
  const SimTime free =
      tx_link_.execute(t, config_.costs.wire_ns(pkt->length()));
  const SimTime done = free + config_.costs.nic_delay_ns;
  ++stats_.delivered;
  m_delivered_->inc();
  m_latency_->record(static_cast<u64>(done - pkt->inject_time()));
  trace(pkt->meta().pid(), telemetry::SpanKind::kOutput, done, "tx-link");
  if (sink_) {
    sink_(pkt, done);
  } else {
    pool_->release(pkt);
  }
}

}  // namespace nfp

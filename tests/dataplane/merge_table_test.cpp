// MergeTable: the merger's per-segment open-addressing arrival table.
// Unit tests for the completion contract plus a randomized differential
// test against a std::map reference model that forces growth and the
// backward-shift deletion path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/merge_table.hpp"

namespace nfp {
namespace {

MergeArrival arrival(u8 version, bool drop = false, i32 prio = 0) {
  MergeArrival a;
  a.pkt = nullptr;
  a.version = version;
  a.drop_intent = drop;
  a.priority = prio;
  a.can_drop = drop;
  return a;
}

TEST(MergeTable, CompletesOnlyWhenAllArrivalsLand) {
  MergeTable table(8, 3);
  EXPECT_EQ(table.arrivals_per_pid(), 3u);
  EXPECT_TRUE(table.add(7, arrival(1)).empty());
  EXPECT_TRUE(table.add(7, arrival(2)).empty());
  EXPECT_EQ(table.pending(), 1u);
  const auto done = table.add(7, arrival(3, true, 5));
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].version, 1);
  EXPECT_EQ(done[1].version, 2);
  EXPECT_EQ(done[2].version, 3);
  EXPECT_TRUE(done[2].drop_intent);
  EXPECT_EQ(done[2].priority, 5);
  EXPECT_EQ(table.pending(), 0u);
}

TEST(MergeTable, SingleArrivalCompletesImmediately) {
  MergeTable table(4, 1);
  const auto done = table.add(42, arrival(1));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].version, 1);
  EXPECT_EQ(table.pending(), 0u);
}

TEST(MergeTable, InterleavedPidsDoNotCrossTalk) {
  MergeTable table(4, 2);
  EXPECT_TRUE(table.add(1, arrival(10)).empty());
  EXPECT_TRUE(table.add(2, arrival(20)).empty());
  const auto first = table.add(2, arrival(21));
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].version, 20);
  EXPECT_EQ(first[1].version, 21);
  const auto second = table.add(1, arrival(11));
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].version, 10);
  EXPECT_EQ(second[1].version, 11);
}

TEST(MergeTable, CompletedSpanValidUntilNextAdd) {
  MergeTable table(4, 1);
  const auto done = table.add(5, arrival(7));
  ASSERT_EQ(done.size(), 1u);
  // The span aliases internal scratch; copy before the next add.
  const MergeArrival copy = done[0];
  (void)table.add(6, arrival(8));
  EXPECT_EQ(copy.version, 7);
}

TEST(MergeTable, GrowsBeyondExpectedPids) {
  // expected_pids=2 -> tiny table; 1000 simultaneously-open pids force
  // several grow() rehashes.
  MergeTable table(2, 2);
  for (u64 pid = 0; pid < 1000; ++pid) {
    EXPECT_TRUE(table.add(pid, arrival(1)).empty());
  }
  EXPECT_EQ(table.pending(), 1000u);
  for (u64 pid = 0; pid < 1000; ++pid) {
    const auto done = table.add(pid, arrival(2));
    ASSERT_EQ(done.size(), 2u) << "pid " << pid;
    EXPECT_EQ(done[0].version, 1);
    EXPECT_EQ(done[1].version, 2);
  }
  EXPECT_EQ(table.pending(), 0u);
}

// Differential fuzz against a std::map model. Random pids collide in the
// table's probe clusters; completions erase from the middle of clusters,
// exercising backward-shift deletion under every interleaving the rng
// produces.
TEST(MergeTable, RandomizedMatchesReferenceModel) {
  Rng rng(1234);
  constexpr u32 kPerPid = 4;
  MergeTable table(8, kPerPid);
  std::map<u64, std::vector<MergeArrival>> model;

  for (int step = 0; step < 200'000; ++step) {
    // Small pid range => heavy clustering; occasional wide pid => spread.
    const u64 pid = rng.uniform() < 0.9 ? rng.bounded(64)
                                        : (rng.next() & 0xFFFFFF);
    auto& ref = model[pid];
    if (ref.size() >= kPerPid) continue;  // completed and reopened later
    const MergeArrival a =
        arrival(static_cast<u8>(ref.size() + 1), rng.uniform() < 0.2,
                static_cast<i32>(rng.bounded(10)));
    ref.push_back(a);
    const auto done = table.add(pid, a);
    if (ref.size() < kPerPid) {
      ASSERT_TRUE(done.empty()) << "premature completion for pid " << pid;
    } else {
      ASSERT_EQ(done.size(), static_cast<std::size_t>(kPerPid));
      for (u32 i = 0; i < kPerPid; ++i) {
        ASSERT_EQ(done[i].version, ref[i].version);
        ASSERT_EQ(done[i].drop_intent, ref[i].drop_intent);
        ASSERT_EQ(done[i].priority, ref[i].priority);
      }
      model.erase(pid);
    }
    ASSERT_EQ(table.pending(), model.size());
  }

  // Flush every open pid; order and contents must still match.
  for (auto& [pid, ref] : model) {
    while (ref.size() < kPerPid) {
      const MergeArrival a = arrival(static_cast<u8>(ref.size() + 1));
      ref.push_back(a);
      const auto done = table.add(pid, a);
      if (ref.size() == kPerPid) {
        ASSERT_EQ(done.size(), static_cast<std::size_t>(kPerPid));
        for (u32 i = 0; i < kPerPid; ++i) {
          ASSERT_EQ(done[i].version, ref[i].version);
        }
      } else {
        ASSERT_TRUE(done.empty());
      }
    }
  }
  EXPECT_EQ(table.pending(), 0u);
}

}  // namespace
}  // namespace nfp

// Network Service Header encapsulation for cross-server delivery (§7).
//
// The paper points to NSH [51] / FlowTags [16] for steering packets between
// NFP servers. We implement an NSH-style shim carrying exactly the state
// the next server needs: the service path (the graph), the next segment's
// MID, and the NFP packet metadata (PID and version survive the hop, so a
// downstream merger keeps accumulating correctly).
//
// Layout (8 bytes, inserted between the Ethernet and IP headers, signalled
// by a dedicated EtherType):
//   0      : version (0x1)
//   1      : flags
//   2..4   : service path = next segment MID (24 bits, holds the 20-bit MID)
//   5..7   : reserved / service index
// The original NFP metadata word travels out-of-band in the paper (packet
// descriptor); across servers we re-tag it from the shim + a fresh PID
// namespace per hop is avoided by carrying the PID in an 8-byte context
// extension when `with_context` is set.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "packet/packet.hpp"

namespace nfp::cluster {

inline constexpr u16 kEtherTypeNsh = 0x894F;  // IETF-assigned NSH ethertype
inline constexpr std::size_t kNshBaseLen = 8;
inline constexpr std::size_t kNshContextLen = 8;

struct NshInfo {
  u32 next_mid = 0;        // segment MID on the next server
  std::optional<u64> pid;  // NFP packet id carried across the hop
};

// Encapsulates `pkt` (an Ethernet/IPv4 frame) with the NSH shim; returns
// false when the packet has no room or is too short for a frame header.
bool nsh_encap(Packet& pkt, const NshInfo& info);

// Removes the shim and returns its contents; nullopt if `pkt` is not
// NSH-encapsulated.
std::optional<NshInfo> nsh_decap(Packet& pkt);

// True when the frame carries the NSH ethertype.
bool is_nsh(const Packet& pkt);

}  // namespace nfp::cluster

#include "common/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "common/types.hpp"

namespace nfp {

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ipv4_to_string(unsigned int addr) {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((addr >> shift) & 0xff);
    if (shift > 0) out += '.';
  }
  return out;
}

bool parse_ipv4(std::string_view text, unsigned int& out) {
  u32 addr = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (octets < 4) {
    std::size_t end = text.find('.', pos);
    std::string_view part = (end == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, end - pos);
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc{} || ptr != part.data() + part.size() || value > 255) {
      return false;
    }
    addr = (addr << 8) | value;
    ++octets;
    if (end == std::string_view::npos) break;
    pos = end + 1;
  }
  if (octets != 4) return false;
  out = addr;
  return true;
}

}  // namespace nfp

# Empty compiler generated dependencies file for bench_fig8_nf_complexity.
# This may be replaced when dependencies are built.

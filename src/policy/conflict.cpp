#include "policy/conflict.hpp"

#include <map>
#include <optional>
#include <set>
#include <utility>

namespace nfp {

namespace {

// Reports one representative cycle through the Order edges, if any.
// Iterative DFS with colors; returns the cycle as "a -> b -> ... -> a".
std::optional<std::string> find_order_cycle(
    const std::map<std::string, std::set<std::string>>& edges) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [node, _] : edges) color[node] = Color::kWhite;

  std::vector<std::string> stack;
  // Recursive lambda via explicit stack of (node, next-neighbor iterator).
  for (const auto& [start, _] : edges) {
    if (color[start] != Color::kWhite) continue;
    std::vector<std::pair<std::string, std::set<std::string>::const_iterator>>
        frames;
    color[start] = Color::kGray;
    stack.push_back(start);
    frames.emplace_back(start, edges.at(start).begin());
    while (!frames.empty()) {
      auto& [node, it] = frames.back();
      const auto& succ = edges.at(node);
      if (it == succ.end()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string next = *it++;
      if (!edges.contains(next)) continue;
      if (color[next] == Color::kGray) {
        // Reconstruct the cycle from the gray stack.
        std::string cycle;
        bool in_cycle = false;
        for (const auto& n : stack) {
          if (n == next) in_cycle = true;
          if (in_cycle) cycle += n + " -> ";
        }
        cycle += next;
        return cycle;
      }
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.push_back(next);
        frames.emplace_back(next, edges.at(next).begin());
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<PolicyConflict> detect_conflicts(const Policy& policy) {
  std::vector<PolicyConflict> conflicts;
  std::map<std::string, std::set<std::string>> order_edges;
  std::set<std::pair<std::string, std::string>> priorities;
  std::map<std::string, Placement> positions;

  for (const Rule& rule : policy.rules()) {
    if (const auto* o = std::get_if<OrderRule>(&rule)) {
      if (o->before == o->after) {
        conflicts.push_back({PolicyConflict::Kind::kSelfReference,
                             "Order(" + o->before + ", before, " + o->after +
                                 ") references the same NF twice"});
        continue;
      }
      order_edges[o->before].insert(o->after);
      order_edges.try_emplace(o->after);
    } else if (const auto* p = std::get_if<PriorityRule>(&rule)) {
      if (p->high == p->low) {
        conflicts.push_back({PolicyConflict::Kind::kSelfReference,
                             "Priority(" + p->high + " > " + p->low +
                                 ") references the same NF twice"});
        continue;
      }
      if (priorities.contains({p->low, p->high})) {
        conflicts.push_back({PolicyConflict::Kind::kPriorityContradiction,
                             "Priority(" + p->high + " > " + p->low +
                                 ") contradicts an earlier Priority(" +
                                 p->low + " > " + p->high + ")"});
      }
      priorities.insert({p->high, p->low});
    } else {
      const auto& pos = std::get<PositionRule>(rule);
      const auto [it, inserted] = positions.try_emplace(pos.nf, pos.placement);
      if (!inserted && it->second != pos.placement) {
        conflicts.push_back({PolicyConflict::Kind::kPositionContradiction,
                             "NF '" + pos.nf +
                                 "' is assigned both first and last"});
      }
    }
  }

  if (const auto cycle = find_order_cycle(order_edges)) {
    conflicts.push_back({PolicyConflict::Kind::kOrderCycle,
                         "Order rules form a cycle: " + *cycle});
  }
  return conflicts;
}

Status validate_policy(const Policy& policy) {
  const auto conflicts = detect_conflicts(policy);
  if (conflicts.empty()) return Status::ok();
  return Status::error(conflicts.front().description);
}

}  // namespace nfp

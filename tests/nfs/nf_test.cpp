// Behavioural tests for every NF implementation (paper §6.1).
#include <gtest/gtest.h>

#include "nfs/firewall.hpp"
#include "nfs/ids.hpp"
#include "nfs/l3_forwarder.hpp"
#include "nfs/load_balancer.hpp"
#include "nfs/misc_nfs.hpp"
#include "nfs/monitor.hpp"
#include "nfs/nat.hpp"
#include "nfs/vpn.hpp"
#include "packet/builder.hpp"

namespace nfp {
namespace {

class NfTest : public ::testing::Test {
 protected:
  Packet* make(const PacketSpec& spec) {
    Packet* p = build_packet(pool_, spec);
    EXPECT_NE(p, nullptr);
    return p;
  }
  Packet* make() { return make(PacketSpec{}); }

  PacketPool pool_{32};
};

TEST_F(NfTest, L3ForwarderResolvesNextHop) {
  LpmTable table;
  table.insert(0x0A000000, 8, 42);
  L3Forwarder fwd(std::move(table));
  Packet* p = make();
  PacketView v(*p);
  EXPECT_EQ(fwd.process(v), NfVerdict::kPass);
  EXPECT_EQ(fwd.last_next_hop(), 42u);
  EXPECT_EQ(fwd.lookups(), 1u);
  pool_.release(p);
}

TEST_F(NfTest, LoadBalancerPicksConsistentBackend) {
  LoadBalancer lb = LoadBalancer::with_backends(4);
  Packet* p1 = make();
  Packet* p2 = make();  // same 5-tuple
  PacketView v1(*p1), v2(*p2);
  lb.process(v1);
  lb.process(v2);
  EXPECT_EQ(PacketView(*p1).dst_ip(), PacketView(*p2).dst_ip())
      << "ECMP must be flow-consistent";
  EXPECT_EQ(PacketView(*p1).src_ip(), LoadBalancer::kLbAddress);
  pool_.release(p1);
  pool_.release(p2);
}

TEST_F(NfTest, LoadBalancerSpreadsFlows) {
  LoadBalancer lb = LoadBalancer::with_backends(4);
  std::set<u32> backends;
  for (u16 port = 1000; port < 1100; ++port) {
    PacketSpec spec;
    spec.tuple.src_port = port;
    Packet* p = make(spec);
    PacketView v(*p);
    lb.process(v);
    backends.insert(PacketView(*p).dst_ip());
    pool_.release(p);
  }
  EXPECT_EQ(backends.size(), 4u) << "all backends used across 100 flows";
}

TEST_F(NfTest, FirewallDropsByAcl) {
  AclTable acl;
  AclRule r;
  r.dst_prefix = 0x0A000002;
  r.dst_prefix_len = 32;
  r.action = AclAction::kDrop;
  acl.add(r);
  acl.set_default_action(AclAction::kPass);
  Firewall fw(std::move(acl));

  Packet* hit = make();  // default spec dst 10.0.0.2
  PacketView v(*hit);
  EXPECT_EQ(fw.process(v), NfVerdict::kDrop);
  EXPECT_EQ(fw.dropped(), 1u);

  PacketSpec other;
  other.tuple.dst_ip = 0x0B000001;
  Packet* miss = make(other);
  PacketView v2(*miss);
  EXPECT_EQ(fw.process(v2), NfVerdict::kPass);
  EXPECT_EQ(fw.passed(), 1u);
  pool_.release(hit);
  pool_.release(miss);
}

TEST_F(NfTest, IdsAlertsButPasses) {
  Ids ids({"EVILPAYLOAD"});
  PacketSpec spec;
  spec.frame_size = 200;
  const char* sig = "xxEVILPAYLOADxx";
  Packet* p = build_packet_with_payload(
      pool_, spec,
      {reinterpret_cast<const u8*>(sig), std::strlen(sig)});
  PacketView v(*p);
  EXPECT_EQ(ids.process(v), NfVerdict::kPass);
  EXPECT_EQ(ids.alerts(), 1u);

  Packet* clean = make();
  PacketView v2(*clean);
  EXPECT_EQ(ids.process(v2), NfVerdict::kPass);
  EXPECT_EQ(ids.alerts(), 1u);
  pool_.release(p);
  pool_.release(clean);
}

TEST_F(NfTest, IpsDropsOnMatch) {
  Ips ips({"EVILPAYLOAD"});
  PacketSpec spec;
  spec.frame_size = 200;
  const char* sig = "EVILPAYLOAD";
  Packet* p = build_packet_with_payload(
      pool_, spec,
      {reinterpret_cast<const u8*>(sig), std::strlen(sig)});
  PacketView v(*p);
  EXPECT_EQ(ips.process(v), NfVerdict::kDrop);
  EXPECT_EQ(ips.blocked(), 1u);
  pool_.release(p);
}

TEST_F(NfTest, VpnEncryptsAndAddsAh) {
  Vpn vpn;
  PacketSpec spec;
  spec.frame_size = 256;
  Packet* p = make(spec);
  const std::vector<u8> original(p->data(), p->data() + p->length());

  PacketView v(*p);
  EXPECT_EQ(vpn.process(v), NfVerdict::kPass);
  EXPECT_TRUE(v.has_ah());
  EXPECT_EQ(p->length(), original.size() + kAhHeaderLen);
  EXPECT_EQ(vpn.sequence(), 1u);
  // Payload must be transformed.
  const auto body = v.payload();
  const std::size_t payload_off = original.size() - body.size();
  EXPECT_NE(0, std::memcmp(body.data(), original.data() + payload_off,
                           body.size()));
  pool_.release(p);
}

TEST_F(NfTest, VpnRoundTripsWithDecrypt) {
  Vpn enc;
  VpnDecrypt dec;
  PacketSpec spec;
  spec.frame_size = 300;
  Packet* p = make(spec);
  const std::vector<u8> original(p->data(), p->data() + p->length());

  PacketView v(*p);
  ASSERT_EQ(enc.process(v), NfVerdict::kPass);
  PacketView v2(*p);
  ASSERT_EQ(dec.process(v2), NfVerdict::kPass);

  ASSERT_EQ(p->length(), original.size());
  EXPECT_EQ(0, std::memcmp(p->data(), original.data(), original.size()));
  pool_.release(p);
}

TEST_F(NfTest, VpnDecryptRejectsTamperedPacket) {
  Vpn enc;
  VpnDecrypt dec;
  PacketSpec spec;
  spec.frame_size = 300;
  Packet* p = make(spec);
  PacketView v(*p);
  ASSERT_EQ(enc.process(v), NfVerdict::kPass);
  p->data()[p->length() - 1] ^= 0xff;  // corrupt the encrypted payload
  PacketView v2(*p);
  EXPECT_EQ(dec.process(v2), NfVerdict::kDrop);
  pool_.release(p);
}

TEST_F(NfTest, MonitorCountsPerFlow) {
  Monitor mon;
  Packet* p = make();
  PacketView v(*p);
  mon.process(v);
  mon.process(v);
  PacketSpec other;
  other.tuple.src_port = 999;
  Packet* p2 = make(other);
  PacketView v2(*p2);
  mon.process(v2);

  EXPECT_EQ(mon.flow_count(), 2u);
  EXPECT_EQ(mon.total_packets(), 3u);
  const auto* stats = mon.flow(PacketSpec{}.tuple);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->packets, 2u);
  EXPECT_EQ(stats->bytes, 2u * p->length());
  pool_.release(p);
  pool_.release(p2);
}

TEST_F(NfTest, NatRewritesFiveTupleConsistently) {
  Nat nat;
  Packet* p1 = make();
  Packet* p2 = make();  // same flow
  PacketView v1(*p1), v2(*p2);
  nat.process(v1);
  nat.process(v2);
  EXPECT_EQ(nat.binding_count(), 1u);
  EXPECT_EQ(PacketView(*p1).src_port(), PacketView(*p2).src_port());
  EXPECT_EQ(PacketView(*p1).src_ip(), 0xC0A80001u);

  PacketSpec other;
  other.tuple.src_port = 555;
  Packet* p3 = make(other);
  PacketView v3(*p3);
  nat.process(v3);
  EXPECT_EQ(nat.binding_count(), 2u);
  EXPECT_NE(PacketView(*p3).src_port(), PacketView(*p1).src_port());
  pool_.release(p1);
  pool_.release(p2);
  pool_.release(p3);
}

TEST_F(NfTest, CompressionShrinksRepetitivePayload) {
  Compression comp;
  PacketSpec spec;
  spec.frame_size = 500;
  spec.payload_byte = 0x77;  // highly compressible
  Packet* p = make(spec);
  PacketView v(*p);
  const std::size_t before = v.payload_len();
  EXPECT_EQ(comp.process(v), NfVerdict::kPass);
  EXPECT_LT(v.payload_len(), before);
  EXPECT_EQ(comp.compressed(), 1u);
  pool_.release(p);
}

TEST_F(NfTest, CompressionLeavesIncompressibleAlone) {
  Compression comp;
  PacketSpec spec;
  spec.frame_size = 200;
  std::vector<u8> noise;
  for (int i = 0; i < 160; ++i) noise.push_back(static_cast<u8>(i * 37));
  Packet* p = build_packet_with_payload(pool_, spec, noise);
  PacketView v(*p);
  const std::size_t before = v.payload_len();
  comp.process(v);
  EXPECT_EQ(v.payload_len(), before);
  EXPECT_EQ(comp.compressed(), 0u);
  pool_.release(p);
}

TEST_F(NfTest, GatewayAndShaperAndCachingPass) {
  Gateway gw;
  TrafficShaper shaper;
  Caching cache;
  Packet* p = make();
  PacketView v(*p);
  EXPECT_EQ(gw.process(v), NfVerdict::kPass);
  EXPECT_EQ(shaper.process(v), NfVerdict::kPass);
  EXPECT_EQ(cache.process(v), NfVerdict::kPass);
  EXPECT_EQ(cache.process(v), NfVerdict::kPass);
  EXPECT_EQ(cache.hits(), 1u) << "second identical packet hits the cache";
  EXPECT_EQ(shaper.bytes_seen(), 2u * 0 + p->length());
  pool_.release(p);
}

TEST_F(NfTest, FactoryCreatesAllBuiltins) {
  for (const char* name :
       {"l3fwd", "lb", "firewall", "ids", "ips", "vpn", "vpn_decrypt",
        "monitor", "nat", "gateway", "caching", "proxy", "compression",
        "shaper", "delaynf"}) {
    const auto nf = make_builtin_nf(name);
    ASSERT_NE(nf, nullptr) << name;
    EXPECT_FALSE(nf->declared_profile().actions().empty() &&
                 std::string_view(name) != "shaper")
        << name;
  }
  EXPECT_EQ(make_builtin_nf("nope"), nullptr);
}

}  // namespace
}  // namespace nfp

// Live tail-latency observatory: sampled per-packet stage timing across
// the sharded dataplane.
//
// NFP's headline result is latency — parallel NF graphs cut packet latency
// vs. the sequential chain (§6) — and the scalability profiler (PR 6) only
// attributes lost *throughput*. This observatory attributes every lost
// microsecond: deterministic 1-in-N sampling stamps selected packets at
// each hop and the egress thread decomposes the end-to-end time into an
// exact stage partition,
//
//   ingest      director feed() -> pipeline feed() (director pool/ring,
//               shard-worker classify, pipeline alloc + window waits)
//   queue       ring residency: enqueue -> the consuming NF reaches the
//               packet (includes in-burst head-of-line blocking)
//   service     inside NetworkFunction::process() calls
//   merge_wait  last sibling's out-ring push -> merge resolution (the
//               merger's reaction time; a slow sibling's cost lands in
//               queue/service of the critical branch, where it belongs)
//   egress      the saturating remainder to end-to-end (result commit,
//               clock quantization) — ~0 by construction
//   total       origin stamp -> delivery
//
// Stage spans telescope hop by hop (each hop contributes exactly
// next_mark - prev_mark), so ingest+queue+service+merge_wait+egress ==
// total per packet, which is the invariant the live 2-shard test asserts.
// In a parallel segment the merger follows the *critical branch* (the
// arrival whose out-push completed the merge set): its queue/service are
// accumulated and merge_wait is the span from its push to resolution.
//
// The recording contract mirrors ScalabilityProfiler: samples land in
// per-thread, cacheline-aligned StageLatencyBlocks written by exactly one
// thread (relaxed atomics); aggregation happens only at scrape time via
// per-shard snapshot callbacks. Storage is a fixed-footprint HDR-style
// histogram — log2 buckets with kLatSubBuckets linear sub-buckets — so
// quantiles carry a bounded relative error of 1/kLatSubBuckets (6.25%:
// a bucket's reported lower bound b satisfies b <= v < b + b/16 for every
// value v it holds) and snapshots merge associatively across shards.
//
// Surfaces: /latency.json, latency_<stage>_p99{shard=N} timeseries probes,
// per-shard queue-depth probes (SpscRing::size() sampled at scrape), the
// `nfp_cli top` latency panel and the `nfp_cli latency` seq-vs-parallel
// comparison. Overhead when off: one branch per packet per hop (the
// origin-stamp zero check); bench_hotpath_throughput's lat32-acct /
// lat32-noacct pair gates the enabled cost at 5%.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nfp::telemetry {

class TimeseriesCollector;

// Hop-resolved stage set. kCount is the array bound.
enum class LatencyStage : unsigned {
  kIngest = 0,
  kQueue,
  kService,
  kMergeWait,
  kEgress,
  kTotal,
  kCount,
};
inline constexpr std::size_t kLatencyStageCount =
    static_cast<std::size_t>(LatencyStage::kCount);

// Stable snake_case names used in JSON, tables and timeseries probes.
const char* latency_stage_name(LatencyStage s) noexcept;

// Deterministic flow-hash sampling decision: all packets of a flow are
// sampled or none are, with no cross-thread coordination. The multiplier
// decorrelates the decision from shard selection (hash % shards).
constexpr bool latency_sample_hash(u64 flow_hash, std::size_t every) noexcept {
  if (every == 0) return false;
  if (every <= 1) return true;
  return ((flow_hash * 0x9E3779B97F4A7C15ull) >> 32) % every == 0;
}

// HDR-style log-bucketed histogram geometry: values 0..15 are exact, above
// that each power of two splits into kLatSubBuckets linear sub-buckets.
// 40 exponents cover ~18 minutes in nanoseconds — any live packet latency.
inline constexpr std::size_t kLatSubBuckets = 16;
inline constexpr std::size_t kLatBuckets = 40 * kLatSubBuckets;

std::size_t latency_bucket_index(u64 value) noexcept;
u64 latency_bucket_value(std::size_t index) noexcept;  // lower bound

// Plain-value histogram snapshot for one stage: mergeable (operator+=),
// subtractable (delta vs. a baseline) and quantile-queryable. min/max are
// derived from the occupied buckets, so they carry the same bounded
// relative error as the quantiles.
struct HdrSnapshot {
  std::array<u64, kLatBuckets> counts{};
  u64 total = 0;
  u64 sum = 0;  // exact sum of recorded values

  u64 count() const noexcept { return total; }
  double mean() const noexcept {
    return total ? static_cast<double>(sum) / static_cast<double>(total) : 0.0;
  }
  u64 min() const noexcept;
  u64 max() const noexcept;
  // Bucket lower bound at quantile q in [0,1]; relative error bounded by
  // 1/kLatSubBuckets (the reported value never exceeds the true one).
  u64 quantile(double q) const noexcept;

  HdrSnapshot& operator+=(const HdrSnapshot& other) noexcept;
};

// now - then per bucket, saturating (baselines may outlive a dataplane).
HdrSnapshot hdr_delta(const HdrSnapshot& now, const HdrSnapshot& then) noexcept;

// One thread's recording block: written by exactly one thread with relaxed
// adds into its own cachelines, folded by scrape-side readers. Nothing
// shared is written on the hot path (the ScalabilityProfiler contract).
struct alignas(kCacheLineSize) StageLatencyBlock {
  void record(LatencyStage s, u64 ns) noexcept {
    auto& st = stages_[static_cast<std::size_t>(s)];
    st.counts[latency_bucket_index(ns)].fetch_add(1,
                                                  std::memory_order_relaxed);
    st.total.fetch_add(1, std::memory_order_relaxed);
    st.sum.fetch_add(ns, std::memory_order_relaxed);
  }

  HdrSnapshot snapshot(LatencyStage s) const noexcept;

 private:
  struct Stage {
    std::array<std::atomic<u64>, kLatBuckets> counts{};
    std::atomic<u64> total{0};
    std::atomic<u64> sum{0};
  };
  std::array<Stage, kLatencyStageCount> stages_{};
};

// Scrape-time aggregate for one shard: the stage histograms folded across
// the shard's threads, plus point-in-time queue occupancy (sampled
// SpscRing::size() sums) as the correlating queue-depth signal.
struct ShardLatencySnapshot {
  std::array<HdrSnapshot, kLatencyStageCount> stages{};
  double queue_depth = 0;        // packets resident in this shard's rings
  double ingest_queue_depth = 0; // director -> shard RX ring occupancy

  const HdrSnapshot& stage(LatencyStage s) const noexcept {
    return stages[static_cast<std::size_t>(s)];
  }
  ShardLatencySnapshot& operator+=(const ShardLatencySnapshot& other) noexcept;
};

// The folded report: per-shard and merged stage summaries in microseconds.
struct LatencyReport {
  struct Shard {
    std::string name;
    ShardLatencySnapshot d;  // delta since baseline
  };

  std::vector<Shard> shards;
  std::array<HdrSnapshot, kLatencyStageCount> total{};
  double queue_depth = 0;
  double ingest_queue_depth = 0;
  std::size_t sample_every = 0;
  double wall_seconds = 0;

  u64 sampled() const noexcept {
    return total[static_cast<std::size_t>(LatencyStage::kTotal)].count();
  }
  const HdrSnapshot& stage(LatencyStage s) const noexcept {
    return total[static_cast<std::size_t>(s)];
  }

  std::string to_json() const;
  // Fixed-width stage table for terminals (p50/p90/p99/p99.9/max/mean).
  std::string to_text() const;
  // Native Prometheus histogram exposition for the stage histograms:
  // nfp_latency_ns_bucket{stage=...,shard=...,le=...} + _sum + _count.
  std::string to_prometheus() const;
};

struct LatencyObservatoryOptions {
  std::size_t sample_every = 64;  // reported, not enforced here: the
                                  // dataplane options carry the knob
  std::function<u64()> clock;     // ns; defaults to mono_now_ns
};

// Registry of per-shard snapshot callbacks + a baseline. Thread-safe:
// add_shard/reset_baseline/report serialize on an internal mutex; the
// callbacks only read relaxed atomics owned by dataplane threads.
class LatencyObservatory {
 public:
  using Options = LatencyObservatoryOptions;
  using SnapshotFn = std::function<ShardLatencySnapshot()>;

  explicit LatencyObservatory(Options options = {});

  void add_shard(std::string name, SnapshotFn fn);
  std::size_t shard_count() const;

  // Re-zeroes the report: subsequent report() deltas are relative to the
  // counter values and wall-clock now. Call after start() so spawn cost
  // and warm-up samples are excluded.
  void reset_baseline();

  LatencyReport report() const;
  std::string to_json() const { return report().to_json(); }

  // Publishes latency_<stage>_p99{shard=...} (plus latency_total_p50 /
  // latency_total_p999) and latency_queue_depth probes. One underlying
  // report per tick: the first probe sampled refreshes a cached report.
  void register_probes(TimeseriesCollector& collector);

 private:
  struct Source {
    std::string name;
    SnapshotFn fn;
    ShardLatencySnapshot baseline;
  };

  struct ProbeCache {
    LatencyReport report;
    u64 stamp_ns = 0;
  };

  LatencyReport report_locked() const;

  mutable std::mutex mu_;
  Options options_;
  std::vector<Source> sources_;
  u64 baseline_ns_ = 0;
  std::shared_ptr<ProbeCache> probe_cache_;
};

}  // namespace nfp::telemetry

// Metrics registry: named counters, gauges and latency histograms with
// labels (graph, segment, NF type, merger instance, plane).
//
// The paper evaluates NFP purely from the outside (end-to-end latency and
// throughput, §6); this registry is the inside view. Design constraints:
//
//  * Always-on in the simulated hot path. Components resolve a metric once
//    (a map lookup at construction) and keep the returned pointer; the
//    per-packet cost is then a single increment / histogram record. The
//    returned pointers are stable: metrics live in node-based maps and the
//    registry never erases.
//  * Mergeable. Counters add, histograms merge bucket-wise, gauges keep the
//    max of their high-water marks — so per-component registries (NFP
//    dataplane, baselines, traffic generator) can be combined into one
//    export for apples-to-apples comparison.
//  * Exportable. Exporters (exporters.hpp) iterate the maps and render
//    Prometheus text, JSON, or the human per-component report.
#pragma once

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "stats/histogram.hpp"

namespace nfp::telemetry {

// Label set, kept sorted by key so that {a=1,b=2} and {b=2,a=1} name the
// same time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Tear-free metric cell: a relaxed atomic with value semantics, so
// registries stay copyable/mergeable while live-pipeline workers, the
// health sampler and the stats-server / timeseries threads read and write
// concurrently. Relaxed ordering is sufficient — each cell is an
// independent statistic, not a synchronization point. Structural registry
// mutation (creating new series) is still single-threaded; only the cell
// values are cross-thread.
template <typename T>
class Cell {
 public:
  Cell() noexcept = default;
  Cell(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
  Cell(const Cell& other) noexcept : v_(other.load()) {}
  Cell& operator=(const Cell& other) noexcept {
    store(other.load());
    return *this;
  }
  Cell& operator=(T v) noexcept {
    store(v);
    return *this;
  }
  T load() const noexcept { return v_.load(std::memory_order_relaxed); }
  void store(T v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(T v) noexcept { v_.fetch_add(v, std::memory_order_relaxed); }
  operator T() const noexcept { return load(); }  // NOLINT

 private:
  std::atomic<T> v_{};
};

// Monotone event count.
struct Counter {
  Cell<u64> value;
  void inc(u64 n = 1) noexcept { value.add(n); }
};

// Point-in-time value with a high-water mark (e.g. packet-pool occupancy,
// merger accumulating-table size). `set` is the hot-path call. Writers are
// single-threaded per gauge (the owning component or the sampler thread);
// the atomic cells make concurrent *reads* from exporter/server threads
// tear-free.
struct Gauge {
  Cell<double> value;
  Cell<double> high_water;
  void set(double v) noexcept {
    value.store(v);
    if (v > high_water.load()) high_water.store(v);
  }
};

struct MetricKey {
  std::string name;
  Labels labels;

  friend bool operator<(const MetricKey& a, const MetricKey& b) noexcept {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  }
  friend bool operator==(const MetricKey& a, const MetricKey& b) = default;
};

class MetricsRegistry {
 public:
  // Lookup-or-create. The same (name, labels) pair always returns the same
  // object; labels are normalized (sorted by key) before lookup.
  Counter& counter(std::string name, Labels labels = {}) {
    return counters_[key(std::move(name), std::move(labels))];
  }
  Gauge& gauge(std::string name, Labels labels = {}) {
    return gauges_[key(std::move(name), std::move(labels))];
  }
  Histogram& histogram(std::string name, Labels labels = {}) {
    return histograms_[key(std::move(name), std::move(labels))];
  }

  // Combines `other` into this registry: counters add, histograms merge,
  // gauges keep the larger value and high-water mark. Series present only
  // in `other` are created.
  void merge(const MetricsRegistry& other) {
    for (const auto& [k, c] : other.counters_) {
      counters_[k].value.add(c.value.load());
    }
    for (const auto& [k, g] : other.gauges_) {
      Gauge& mine = gauges_[k];
      mine.value.store(std::max(mine.value.load(), g.value.load()));
      mine.high_water.store(
          std::max(mine.high_water.load(), g.high_water.load()));
    }
    for (const auto& [k, h] : other.histograms_) histograms_[k].merge(h);
  }

  const std::map<MetricKey, Counter>& counters() const noexcept {
    return counters_;
  }
  const std::map<MetricKey, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<MetricKey, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  std::size_t series_count() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  static MetricKey key(std::string name, Labels labels) {
    std::sort(labels.begin(), labels.end());
    return MetricKey{std::move(name), std::move(labels)};
  }

  std::map<MetricKey, Counter> counters_;
  std::map<MetricKey, Gauge> gauges_;
  std::map<MetricKey, Histogram> histograms_;
};

}  // namespace nfp::telemetry

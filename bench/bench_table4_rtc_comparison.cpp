// Reproduces paper Table 4: OpenNetVM vs NFP vs BESS for firewall chains of
// length 1-3 (64 B packets). Each system gets n+2 CPU cores: NFP uses them
// for NFs + classifier + merger, BESS replicates the whole chain on every
// core with NIC RSS.
// paper:            latency (us)             rate (Mpps)
//   chain 1:  ONV 25   NFP 23   BESS 11.308   9.38 / 10.92 / 14.7
//   chain 2:  ONV 33   NFP 27   BESS 11.370   9.36 / 10.92 / 14.7
//   chain 3:  ONV 47   NFP 31   BESS 11.407   9.38 / 10.90 / 14.7
#include "bench_util.hpp"

using namespace nfp;
using namespace nfp::bench;

int main(int argc, char** argv) {
  BenchServer server(argc, argv);
  print_header(
      "Table 4: OpenNetVM vs NFP (all-parallel) vs BESS (run-to-completion)\n"
      "firewall chains, 64B packets; chain of n uses n+2 cores per system");
  std::printf("%-7s %-6s | %-10s %-10s %-10s | %-10s %-10s %-10s\n", "chain",
              "cores", "ONV lat", "NFP lat", "BESS lat", "ONV Mpps",
              "NFP Mpps", "BESS Mpps");
  for (std::size_t n = 1; n <= 3; ++n) {
    const auto chain = repeat("firewall", n);
    // Latency at low load.
    const Measurement onv_l = run_onv(chain, latency_traffic(64));
    const Measurement nfp_l = run_nfp(parallel_stage("firewall", n, false),
                                      latency_traffic(64));
    const Measurement rtc_l = run_rtc(chain, n + 2, latency_traffic(64));
    // Rate at saturation.
    const Measurement onv_r = run_onv(chain, saturation_traffic(64));
    const Measurement nfp_r = run_nfp(parallel_stage("firewall", n, false),
                                      saturation_traffic(64));
    const Measurement rtc_r = run_rtc(chain, n + 2, saturation_traffic(64));
    server.observe(onv_l);
    server.observe(nfp_l);
    server.observe(rtc_l);
    server.observe(onv_r);
    server.observe(nfp_r);
    server.observe(rtc_r);
    std::printf(
        "%-7zu %-6zu | %-10.1f %-10.1f %-10.3f | %-10.2f %-10.2f %-10.2f\n",
        n, n + 2, onv_l.mean_latency_us, nfp_l.mean_latency_us,
        rtc_l.mean_latency_us, onv_r.rate_mpps, nfp_r.rate_mpps,
        rtc_r.rate_mpps);
  }
  std::printf(
      "\nNote (paper §7): RTC wins on raw performance but gives up NFV's\n"
      "per-NF elasticity: scaling one overloaded NF means replicating the\n"
      "entire chain or paying cross-core state migration.\n");
  server.finish();
  return 0;
}

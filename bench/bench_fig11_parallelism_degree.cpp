// Reproduces paper Figure 11: effect of the parallelism degree — 2 to 5
// instances of the 300-cycle firewall NF, sequential vs parallel with and
// without copying, 64 B packets.
// "With the increase of parallelism degree, the latency reduction rises
// from 33% to 52% for no-copy setups, and up to 32% for copy setups ...
// the throughput is not much affected."
#include "bench_util.hpp"

using namespace nfp;
using namespace nfp::bench;

int main(int argc, char** argv) {
  const bool json = json_enabled(argc, argv);
  BenchServer server(argc, argv);
  DataplaneConfig base_cfg;
  base_cfg.delaynf_cycles = 300;

  print_header(
      "Figure 11(a): latency vs parallelism degree (us, 64B, 300-cycle NF)");
  std::printf("%-8s %-10s %-10s %-12s %-10s %-14s %-12s\n", "degree",
              "ONV-seq", "NFP-seq", "NFP-nocopy", "NFP-copy",
              "red(nocopy)", "red(copy)");
  for (std::size_t degree = 2; degree <= 5; ++degree) {
    const auto traffic = latency_traffic(64);
    const Measurement onv =
        run_onv(repeat("delaynf", degree), traffic, base_cfg);
    const Measurement nfp_seq =
        run_nfp(ServiceGraph::sequential("seq", repeat("delaynf", degree)),
                traffic, base_cfg);
    const Measurement nocopy =
        run_nfp(parallel_stage("delaynf", degree, false), traffic, base_cfg);
    const Measurement copy =
        run_nfp(parallel_stage("delaynf", degree, true), traffic, base_cfg);
    server.observe(onv);
    server.observe(nfp_seq);
    server.observe(nocopy);
    server.observe(copy);
    std::printf("%-8zu %-10.1f %-10.1f %-12.1f %-10.1f %9.1f%%    %7.1f%%\n",
                degree, onv.mean_latency_us, nfp_seq.mean_latency_us,
                nocopy.mean_latency_us, copy.mean_latency_us,
                (onv.mean_latency_us - nocopy.mean_latency_us) /
                    onv.mean_latency_us * 100,
                (onv.mean_latency_us - copy.mean_latency_us) /
                    onv.mean_latency_us * 100);
    if (json) {
      const std::string knobs = "{\"degree\":" + std::to_string(degree) +
                                ",\"cycles\":300,\"frame_size\":64}";
      emit_metrics_json("fig11a", "onv", onv, knobs);
      emit_metrics_json("fig11a", "nfp-seq", nfp_seq, knobs);
      emit_metrics_json("fig11a", "nfp-nocopy", nocopy, knobs);
      emit_metrics_json("fig11a", "nfp-copy", copy, knobs);
    }
  }

  print_header(
      "Figure 11(b): processing rate vs parallelism degree (Mpps, 64B)");
  std::printf("%-8s %-10s %-10s %-12s %-10s\n", "degree", "ONV-seq",
              "NFP-seq", "NFP-nocopy", "NFP-copy");
  for (std::size_t degree = 2; degree <= 5; ++degree) {
    const auto traffic = saturation_traffic(64, 25'000);
    const Measurement onv =
        run_onv(repeat("delaynf", degree), traffic, base_cfg);
    const Measurement nfp_seq =
        run_nfp(ServiceGraph::sequential("seq", repeat("delaynf", degree)),
                traffic, base_cfg);
    const Measurement nocopy =
        run_nfp(parallel_stage("delaynf", degree, false), traffic, base_cfg);
    const Measurement copy =
        run_nfp(parallel_stage("delaynf", degree, true), traffic, base_cfg);
    server.observe(onv);
    server.observe(nfp_seq);
    server.observe(nocopy);
    server.observe(copy);
    std::printf("%-8zu %-10.2f %-10.2f %-12.2f %-10.2f\n", degree,
                onv.rate_mpps, nfp_seq.rate_mpps, nocopy.rate_mpps,
                copy.rate_mpps);
    if (json) {
      const std::string knobs = "{\"degree\":" + std::to_string(degree) +
                                ",\"cycles\":300,\"frame_size\":64}";
      emit_metrics_json("fig11b", "onv", onv, knobs);
      emit_metrics_json("fig11b", "nfp-seq", nfp_seq, knobs);
      emit_metrics_json("fig11b", "nfp-nocopy", nocopy, knobs);
      emit_metrics_json("fig11b", "nfp-copy", copy, knobs);
    }
  }
  server.finish();
  return 0;
}

// Tests for the LPM table and ACL matcher substrates.
#include <gtest/gtest.h>

#include "acl/acl.hpp"
#include "packet/headers.hpp"
#include "lpm/lpm_table.hpp"

namespace nfp {
namespace {

TEST(Lpm, LongestPrefixWins) {
  LpmTable t;
  t.insert(0x0A000000, 8, 1);   // 10.0.0.0/8
  t.insert(0x0A010000, 16, 2);  // 10.1.0.0/16
  t.insert(0x0A010200, 24, 3);  // 10.1.2.0/24
  EXPECT_EQ(t.lookup(0x0A010203).value(), 3u);
  EXPECT_EQ(t.lookup(0x0A01FF01).value(), 2u);
  EXPECT_EQ(t.lookup(0x0AFF0001).value(), 1u);
  EXPECT_FALSE(t.lookup(0x0B000001).has_value());
}

TEST(Lpm, DefaultRouteMatchesEverything) {
  LpmTable t;
  t.insert(0, 0, 99);
  EXPECT_EQ(t.lookup(0x12345678).value(), 99u);
  EXPECT_EQ(t.lookup(0).value(), 99u);
}

TEST(Lpm, InsertReplacesExisting) {
  LpmTable t;
  t.insert(0x0A000000, 8, 1);
  t.insert(0x0A000000, 8, 7);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(0x0A000001).value(), 7u);
}

TEST(Lpm, RemoveRestoresShorterMatch) {
  LpmTable t;
  t.insert(0x0A000000, 8, 1);
  t.insert(0x0A010000, 16, 2);
  ASSERT_TRUE(t.remove(0x0A010000, 16));
  EXPECT_EQ(t.lookup(0x0A010001).value(), 1u);
  EXPECT_FALSE(t.remove(0x0A010000, 16)) << "already removed";
  EXPECT_FALSE(t.remove(0x0C000000, 8)) << "never existed";
}

TEST(Lpm, HostRoute) {
  LpmTable t;
  t.insert(0x0A000001, 32, 5);
  EXPECT_EQ(t.lookup(0x0A000001).value(), 5u);
  EXPECT_FALSE(t.lookup(0x0A000002).has_value());
}

TEST(Lpm, SyntheticTableHasRequestedSizeAndDefault) {
  const LpmTable t = LpmTable::with_synthetic_routes(1000);
  EXPECT_GE(t.size(), 1000u);
  EXPECT_TRUE(t.lookup(0xDEADBEEF).has_value()) << "default route";
}

TEST(Acl, FirstMatchWins) {
  AclTable t;
  AclRule drop_rule;
  drop_rule.dst_prefix = 0x0A000000;
  drop_rule.dst_prefix_len = 8;
  drop_rule.action = AclAction::kDrop;
  AclRule pass_rule;  // matches everything
  t.add(drop_rule);
  t.add(pass_rule);
  EXPECT_EQ(t.evaluate({1, 0x0A000005, 1, 1, 6}), AclAction::kDrop);
  EXPECT_EQ(t.evaluate({1, 0x0B000005, 1, 1, 6}), AclAction::kPass);
}

TEST(Acl, PortRangesAndProto) {
  AclRule r;
  r.dst_port_lo = 80;
  r.dst_port_hi = 90;
  r.proto = kProtoTcp;
  EXPECT_TRUE(r.matches({1, 2, 3, 85, kProtoTcp}));
  EXPECT_FALSE(r.matches({1, 2, 3, 91, kProtoTcp}));
  EXPECT_FALSE(r.matches({1, 2, 3, 85, 17}));
}

TEST(Acl, DefaultActionApplies) {
  AclTable t;
  t.set_default_action(AclAction::kDrop);
  EXPECT_EQ(t.evaluate({1, 2, 3, 4, 6}), AclAction::kDrop);
}

TEST(Acl, SyntheticRulesDropSomeTraffic) {
  const AclTable t = AclTable::with_synthetic_rules(100, 0.5);
  EXPECT_EQ(t.size(), 100u);
  int drops = 0;
  for (u32 i = 0; i < 10'000; ++i) {
    const FiveTuple tuple{i * 2654435761u, i * 2246822519u,
                          static_cast<u16>(i), static_cast<u16>(i * 7), 6};
    if (t.evaluate(tuple) == AclAction::kDrop) ++drops;
  }
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 10'000);
}

}  // namespace
}  // namespace nfp

#include "telemetry/timeseries.hpp"

#include <chrono>
#include <sstream>

#include "common/json.hpp"
#include "telemetry/health_sampler.hpp"

namespace nfp::telemetry {

namespace {

// Gauge histories for series the collector itself derived would feed back
// into the scan on the next tick (rate-of-a-rate and so on); derived
// names are marked with ':' or listed here and skipped.
bool is_derived_name(const std::string& name) {
  return name.find(':') != std::string::npos || name == "core_util";
}

}  // namespace

TimeseriesCollector::TimeseriesCollector(const MetricsRegistry& source,
                                         Options options)
    : source_(source), options_(std::move(options)) {
  if (!options_.clock) options_.clock = mono_now_ns;
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.period_ms == 0) options_.period_ms = 1;
}

TimeseriesCollector::~TimeseriesCollector() { stop(); }

void TimeseriesCollector::add_probe(std::string name, Labels labels,
                                    std::function<double()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.push_back(
      Probe{MetricKey{std::move(name), std::move(labels)}, std::move(read)});
}

bool TimeseriesCollector::append(const MetricKey& key, const std::string& kind,
                                 u64 t_ns, double value, bool publish) {
  auto it = series_.find(key);
  if (it == series_.end()) {
    if (series_.size() >= options_.max_series) {
      ++dropped_series_;
      return false;
    }
    Series s;
    s.key = key;
    s.kind = kind;
    if (publish && derived_target_ != nullptr) {
      s.derived = &derived_target_->gauge(key.name, key.labels);
    }
    it = series_.emplace(key, std::move(s)).first;
  }
  Series& s = it->second;
  s.points.push_back(Point{t_ns, value});
  while (s.points.size() > options_.capacity) s.points.pop_front();
  s.last = value;
  if (s.derived != nullptr) s.derived->set(value);
  return true;
}

void TimeseriesCollector::tick_locked() {
  const u64 now = options_.clock();
  if (first_tick_ns_ == 0) first_tick_ns_ = now;
  const double elapsed_s =
      last_tick_ns_ == 0 ? 0 : static_cast<double>(now - last_tick_ns_) / 1e9;

  // Counters -> ":rate" (events/s over the tick interval). The first tick
  // only primes the deltas; rates start with the second.
  for (const auto& [key, c] : source_.counters()) {
    const u64 value = c.value.load();
    CounterState& st = counter_state_[key];
    if (st.primed && elapsed_s > 0) {
      // A value below the primed base means the counter reset (pipeline
      // restart re-registering the series, or a producer-side u64 wrap).
      // The raw subtraction would wrap to a colossal positive rate — and
      // a signed reading of it to a negative one — so apply the standard
      // counter-reset convention: the post-reset value IS the delta
      // (everything since the restart), which is always >= 0.
      const u64 delta = value >= st.last ? value - st.last : value;
      append(MetricKey{key.name + ":rate", key.labels}, "rate", now,
             static_cast<double>(delta) / elapsed_s, /*publish=*/true);
    }
    st.last = value;
    st.primed = true;
  }

  // Gauges -> raw histories. Skip series the collector itself published.
  for (const auto& [key, g] : source_.gauges()) {
    if (is_derived_name(key.name)) continue;
    append(key, "gauge", now, g.value.load(), /*publish=*/false);
  }

  // core_busy_ns / sim_now_ns -> per-component utilization share. Both are
  // gauges that only grow (cumulative busy time, the sim clock), so the
  // delta ratio is the share of simulated time the component spent busy
  // since the last tick.
  const auto& util_gauges = source_.gauges();
  std::map<Labels, u64> sim_now;  // plane label set -> sim clock
  for (const auto& [key, g] : util_gauges) {
    if (key.name == "sim_now_ns") {
      sim_now[key.labels] = static_cast<u64>(g.value.load());
    }
  }
  for (const auto& [key, g] : util_gauges) {
    if (key.name != "core_busy_ns") continue;
    // Match the sim clock sharing every label except `component`.
    Labels base;
    for (const auto& kv : key.labels) {
      if (kv.first != "component") base.push_back(kv);
    }
    u64 clock_now = 0;
    if (const auto it = sim_now.find(base); it != sim_now.end()) {
      clock_now = it->second;
    } else if (!sim_now.empty()) {
      clock_now = sim_now.begin()->second;
    }
    const MetricKey busy_clock{key.name + "#clock", key.labels};
    CounterState& clock_st = counter_state_[busy_clock];
    CounterState& busy_st = counter_state_[key];
    const u64 busy_now = static_cast<u64>(g.value.load());
    if (busy_st.primed && clock_st.primed && clock_now > clock_st.last) {
      const u64 busy_delta =
          busy_now >= busy_st.last ? busy_now - busy_st.last : 0;
      const double util = static_cast<double>(busy_delta) /
                          static_cast<double>(clock_now - clock_st.last);
      append(MetricKey{"core_util", key.labels}, "util", now,
             util > 1.0 ? 1.0 : util, /*publish=*/true);
    }
    busy_st.last = busy_now;
    busy_st.primed = true;
    clock_st.last = clock_now;
    clock_st.primed = true;
  }

  // Histograms -> cumulative p50/p99/p999 (quantiles over everything
  // recorded so far; the interesting movement is in fresh runs, and
  // cumulative avoids holding per-tick histogram snapshots).
  for (const auto& [key, h] : source_.histograms()) {
    if (h.count() == 0) continue;
    append(MetricKey{key.name + ":p50", key.labels}, "quantile", now,
           h.quantile(0.50), /*publish=*/true);
    append(MetricKey{key.name + ":p99", key.labels}, "quantile", now,
           h.quantile(0.99), /*publish=*/true);
    append(MetricKey{key.name + ":p999", key.labels}, "quantile", now,
           h.quantile(0.999), /*publish=*/true);
  }

  // Custom probes (critical-path shares, watchdog counts, ...).
  for (const Probe& p : probes_) {
    append(p.key, "probe", now, p.read(), /*publish=*/true);
  }

  last_tick_ns_ = now;
  ticks_.fetch_add(1, std::memory_order_release);
}

void TimeseriesCollector::sample_once() {
  if (external_mu_ != nullptr) {
    std::lock_guard<std::mutex> outer(*external_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    tick_locked();
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    tick_locked();
  }
}

void TimeseriesCollector::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      sample_once();
      // Sleep in short slices so stop() is prompt at any period.
      u64 remaining_ms = options_.period_ms;
      while (remaining_ms > 0 && !stop_.load(std::memory_order_acquire)) {
        const u64 slice = remaining_ms < 20 ? remaining_ms : 20;
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        remaining_ms -= slice;
      }
    }
  });
}

void TimeseriesCollector::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

std::vector<TimeseriesCollector::Point> TimeseriesCollector::history(
    const std::string& name, const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(MetricKey{name, labels});
  if (it == series_.end()) return {};
  return std::vector<Point>(it->second.points.begin(),
                            it->second.points.end());
}

std::string TimeseriesCollector::to_json() const {
  std::unique_lock<std::mutex> outer;
  if (external_mu_ != nullptr) {
    outer = std::unique_lock<std::mutex>(*external_mu_);
  }
  std::lock_guard<std::mutex> lock(mu_);

  std::ostringstream out;
  out << "{\"period_ms\":" << options_.period_ms
      << ",\"ticks\":" << ticks_.load(std::memory_order_acquire)
      << ",\"dropped_series\":" << dropped_series_ << ",\"series\":[";
  bool first_series = true;
  for (const auto& [key, s] : series_) {
    if (!first_series) out << ",";
    first_series = false;
    out << "{\"name\":\"" << json::escape(key.name) << "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : key.labels) {
      if (!first_label) out << ",";
      first_label = false;
      out << "\"" << json::escape(k) << "\":\"" << json::escape(v) << "\"";
    }
    out << "},\"kind\":\"" << s.kind << "\",\"last\":"
        << json::Value::number(s.last).dump() << ",\"points\":[";
    bool first_point = true;
    for (const Point& p : s.points) {
      if (!first_point) out << ",";
      first_point = false;
      // Milliseconds since the first tick: small numbers, exact doubles.
      const double t_ms =
          static_cast<double>(p.t_ns - first_tick_ns_) / 1e6;
      out << "[" << json::Value::number(t_ms).dump() << ","
          << json::Value::number(p.value).dump() << "]";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace nfp::telemetry

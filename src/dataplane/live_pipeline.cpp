#include "dataplane/live_pipeline.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/cpu_affinity.hpp"
#include "dataplane/live_classifier.hpp"
#include "dataplane/merge_ops.hpp"
#include "dataplane/merge_table.hpp"
#include "dataplane/rtc_executor.hpp"
#include "packet/packet_view.hpp"
#include "ring/backoff.hpp"
#include "telemetry/health_sampler.hpp"

namespace nfp {

namespace {
inline u64 sat_sub(u64 a, u64 b) noexcept { return a >= b ? a - b : 0; }
}  // namespace

const char* exec_mode_name(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::kPipelined: return "pipelined";
    case ExecMode::kRtc: return "rtc";
    case ExecMode::kAuto: return "auto";
  }
  return "pipelined";
}

std::optional<ExecMode> parse_exec_mode(std::string_view name) noexcept {
  if (name == "pipelined") return ExecMode::kPipelined;
  if (name == "rtc") return ExecMode::kRtc;
  if (name == "auto") return ExecMode::kAuto;
  return std::nullopt;
}

LivePipeline::LivePipeline(
    ServiceGraph graph,
    std::function<std::unique_ptr<NetworkFunction>(const StageNf&)> factory,
    LivePipelineOptions options)
    : graph_(std::move(graph)),
      opts_(options),
      pool_(std::max<std::size_t>(1, options.pool_size)) {
  if (opts_.per_packet_compat) {
    opts_.burst_size = 1;
    opts_.magazine_size = 0;
  }
  opts_.ring_depth = std::max<std::size_t>(4, opts_.ring_depth);
  opts_.burst_size =
      std::clamp<std::size_t>(opts_.burst_size, 1, opts_.ring_depth);
  // Bound the in-flight window well below the ring depth so a full ring
  // can never wedge the merger thread against an NF thread (the merger
  // re-enters segments and would otherwise spin on a ring an NF cannot
  // drain because its own output ring is full). Each in-flight packet puts
  // at most one entry on any single ring, so window <= depth/2 keeps every
  // ring drainable.
  if (opts_.in_flight_window == 0) {
    opts_.in_flight_window = opts_.ring_depth / 4;
  }
  opts_.in_flight_window = std::clamp<std::size_t>(opts_.in_flight_window, 1,
                                                   opts_.ring_depth / 2);

  // Resolve the execution mode. compat exists to reproduce the old
  // pipelined hot path, so it pins the mode; auto fuses sequential graphs
  // (rings would only add hand-off cost between single-consumer hops) and
  // keeps parallel graphs pipelined, where cross-thread execution is the
  // paper's actual mechanism.
  if (opts_.per_packet_compat) {
    opts_.exec_mode = ExecMode::kPipelined;
  } else if (opts_.exec_mode == ExecMode::kAuto) {
    opts_.exec_mode = graph_.is_sequential() ? ExecMode::kRtc
                                             : ExecMode::kPipelined;
  }
  if (opts_.exec_mode == ExecMode::kRtc) {
    rtc_ = std::make_unique<RtcExecutor>(graph_, factory, opts_, pool_,
                                         &mag_refill_total_,
                                         &mag_flush_total_);
    return;
  }

  int instance = 0;
  for (Segment& seg : graph_.segments()) {
    std::vector<LiveNf> nfs;
    for (StageNf& meta : seg.nfs) {
      meta.instance_id = instance++;
      LiveNf nf;
      nf.meta = meta;
      nf.impl = factory ? factory(meta)
                        : make_builtin_nf(
                              meta.name,
                              static_cast<u64>(meta.instance_id) + 1);
      if (nf.impl == nullptr) nf.impl = make_builtin_nf("monitor");
      nf.in = std::make_unique<SpscRing<Packet*>>(opts_.ring_depth);
      nf.out = std::make_unique<SpscRing<MergeEnvelope>>(opts_.ring_depth);
      nf.heartbeat_ns = std::make_unique<std::atomic<u64>>(0);
      nf.processed = std::make_unique<std::atomic<u64>>(0);
      nfs.push_back(std::move(nf));
    }
    segments_.push_back(std::move(nfs));
    // Fanout plan: resolve the segment's copy list and reference counts
    // once (fanout_plan.hpp, shared with RtcExecutor), instead of a
    // vector + count_if per packet in enter_segment.
    fanout_.push_back(build_fanout_plan(seg));
  }
  if (opts_.cycle_accounting) {
    for (auto& seg : segments_) {
      for (LiveNf& nf : seg) {
        nf.cycles = std::make_unique<telemetry::CycleCounters>();
      }
    }
    merger_cycles_ = std::make_unique<telemetry::CycleCounters>();
    feeder_cycles_ = std::make_unique<telemetry::CycleCounters>();
  }
  if (opts_.latency_sample_every > 0) {
    for (auto& seg : segments_) {
      for (LiveNf& nf : seg) {
        nf.lat_block = std::make_unique<telemetry::StageLatencyBlock>();
      }
    }
    merger_lat_block_ = std::make_unique<telemetry::StageLatencyBlock>();
  }
}

void LivePipeline::finalize_latency(const Packet& pkt,
                                    telemetry::StageLatencyBlock* block,
                                    u64 now) {
  const LatencyStamps& lat = pkt.lat();
  if (lat.origin_ns == 0 || block == nullptr) return;
  const u64 total = sat_sub(now, lat.origin_ns);
  const u64 accounted =
      lat.ingest_ns + lat.queue_ns + lat.service_ns + lat.merge_ns;
  block->record(telemetry::LatencyStage::kIngest, lat.ingest_ns);
  block->record(telemetry::LatencyStage::kQueue, lat.queue_ns);
  block->record(telemetry::LatencyStage::kService, lat.service_ns);
  // merge_wait only counts packets that actually crossed a merge point:
  // a purely sequential path contributes no sample rather than a zero,
  // so the stage's count doubles as "packets merged" in reports.
  if (lat.merges != 0) {
    block->record(telemetry::LatencyStage::kMergeWait, lat.merge_ns);
  }
  block->record(telemetry::LatencyStage::kEgress, sat_sub(total, accounted));
  block->record(telemetry::LatencyStage::kTotal, total);
}

LivePipeline::~LivePipeline() {
  stop_.store(true, std::memory_order_release);
  for (auto& seg : segments_) {
    for (auto& nf : seg) {
      if (nf.thread.joinable()) nf.thread.join();
    }
  }
  if (merger_thread_.joinable()) merger_thread_.join();
}

PacketMagazine LivePipeline::make_magazine() {
  return PacketMagazine(pool_, opts_.magazine_size, &mag_refill_total_,
                        &mag_flush_total_,
                        opts_.per_packet_compat ? &compat_mu_ : nullptr);
}

void LivePipeline::maybe_pin_current_thread() {
  if (opts_.pin_core < 0) return;
  affinity_attempts_.fetch_add(1, std::memory_order_relaxed);
  if (pin_current_thread_to_core(static_cast<std::size_t>(opts_.pin_core))) {
    affinity_ok_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool LivePipeline::enter_segment(std::size_t seg_idx, Packet* pkt,
                                 PacketMagazine& mag,
                                 telemetry::CycleAccountant* acct) {
  const Segment& seg = graph_.segments()[seg_idx];
  const FanoutPlan& plan = fanout_[seg_idx];
  auto& nfs = segments_[seg_idx];
  pkt->meta().set_mid(seg.mid);
  pkt->meta().set_version(1);
  pkt->set_nil(false);

  std::array<Packet*, Metadata::kMaxVersion + 2> version_pkt{};
  version_pkt[1] = pkt;
  for (const FanoutPlan::Copy& c : plan.copies) {
    Packet* copy = c.full ? mag.clone_full(*pkt) : mag.clone_header_only(*pkt);
    if (copy == nullptr) {
      for (const FanoutPlan::Copy& made : plan.copies) {
        if (made.version == c.version) break;
        mag.release(version_pkt[made.version]);
      }
      // The original stays with the caller: it still carries the FlowRef
      // the drop exemplar needs, so the caller tags the reason first and
      // releases it after.
      return false;
    }
    copy->meta().set_version(c.version);
    copy->set_nil(false);
    version_pkt[c.version] = copy;
  }
  for (std::size_t v = 1; v < plan.extra_refs.size(); ++v) {
    for (u32 r = 0; r < plan.extra_refs[v]; ++r) mag.add_ref(version_pkt[v]);
  }
  for (std::size_t k = 0; k < nfs.size(); ++k) {
    Packet* version = version_pkt[plan.nf_version[k]];
    if (nfs[k].in->push(version)) continue;
    // Contended: the consumer NF is behind. Timestamps only on this slow
    // path; the span is carved out of the caller's current lap.
    const bool timed = acct != nullptr && acct->enabled();
    const u64 t0 = timed ? telemetry::mono_now_ns() : 0;
    Backoff backoff;
    do {
      backoff.pause();
    } while (!nfs[k].in->push(version));
    if (timed) {
      acct->carve(telemetry::CycleBucket::kRingWait,
                  telemetry::mono_now_ns() - t0);
    }
  }
  return true;
}

void LivePipeline::note_drop(telemetry::DropReason reason, const char* stage,
                             const FlowRef* flow) {
  drop_reasons_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  if (drop_exemplars_ != nullptr) {
    drop_exemplars_->record(reason, stage, flow, telemetry::mono_now_ns());
  }
}

void LivePipeline::commit_batch(std::vector<std::vector<u8>>& outputs,
                                u64 drops, u64 completed) {
  if (!outputs.empty() || drops > 0) {
    const std::scoped_lock lock(result_mu_);
    for (auto& frame : outputs) result_.outputs.push_back(std::move(frame));
    result_.dropped += drops;
  }
  outputs.clear();
  // After the results are visible: run() treats in_flight_ == 0 as "all
  // packets accounted for", so the decrement must come last.
  if (completed > 0) {
    in_flight_.fetch_sub(completed, std::memory_order_acq_rel);
  }
}

void LivePipeline::nf_loop(std::size_t seg_idx, std::size_t nf_idx) {
  maybe_pin_current_thread();
  const Segment& seg = graph_.segments()[seg_idx];
  LiveNf& self = segments_[seg_idx][nf_idx];
  const bool parallel = seg.is_parallel();
  const bool last_segment = seg_idx + 1 == graph_.segments().size();
  const std::size_t burst = opts_.burst_size;
  const std::string stage_name =
      "nf:" + self.meta.name + "#" + std::to_string(self.meta.instance_id);

  PacketMagazine mag = make_magazine();
  std::vector<Packet*> in_burst(burst);
  std::vector<MergeEnvelope> envelopes;
  envelopes.reserve(burst);
  std::vector<std::vector<u8>> out_batch;
  Backoff idle;

  // Cycle accounting reuses the one clock read per iteration the heartbeat
  // already pays: `beat` closes the previous interval and opens the next,
  // so every iteration's wall time lands in exactly one bucket.
  u64 beat = telemetry::mono_now_ns();
  telemetry::CycleAccountant acct(self.cycles.get(), beat);

  for (;;) {
    // Beat on every iteration, busy or idle: an idle-but-responsive worker
    // keeps beating, one wedged inside process() stops.
    self.heartbeat_ns->store(beat, std::memory_order_relaxed);
    const std::size_t n = self.in->pop_burst({in_burst.data(), burst});
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) return;
      idle.pause();
      beat = telemetry::mono_now_ns();
      acct.lap(beat, telemetry::CycleBucket::kStarved);
      continue;
    }
    idle.reset();
    self.processed->fetch_add(n, std::memory_order_relaxed);

    if (parallel) {
      // Nil-packet mechanism (§5.2): the drop intention travels to the
      // merger with the packet. It rides the envelope, not the packet's
      // nil bit — siblings sharing a packet version would race on it.
      envelopes.clear();
      for (std::size_t i = 0; i < n; ++i) {
        Packet* pkt = in_burst[i];
        // Sampled packets: time the hop, but report through the envelope —
        // siblings share this packet version, so its stamp bytes are
        // read-only here (same rule as drop_intent).
        const bool sampled = pkt->lat().origin_ns != 0;
        const u64 t0 = sampled ? telemetry::mono_now_ns() : 0;
        PacketView view(*pkt);
        NfVerdict verdict = NfVerdict::kPass;
        if (view.valid()) verdict = self.impl->process(view);
        MergeEnvelope env{pkt, verdict == NfVerdict::kDrop};
        if (sampled) {
          const u64 t1 = telemetry::mono_now_ns();
          env.queue_ns = sat_sub(t0, pkt->lat().mark_ns);
          env.service_ns = sat_sub(t1, t0);
          env.out_ns = t1;
        }
        envelopes.push_back(env);
      }
      std::size_t sent = 0;
      Backoff backoff;
      u64 wait_start = 0;
      while (sent < n) {
        const std::size_t m = self.out->push_burst(
            {envelopes.data() + sent, n - sent});
        if (m == 0) {
          if (acct.enabled() && wait_start == 0) {
            wait_start = telemetry::mono_now_ns();
          }
          backoff.pause();
        } else {
          if (wait_start != 0) {
            acct.carve(telemetry::CycleBucket::kRingWait,
                       telemetry::mono_now_ns() - wait_start);
            wait_start = 0;
          }
          sent += m;
          backoff.reset();
        }
      }
      beat = telemetry::mono_now_ns();
      acct.lap(beat, telemetry::CycleBucket::kUseful);
      continue;
    }

    u64 drops = 0;
    u64 completed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Packet* pkt = in_burst[i];
      // Sequential hop: this thread owns the packet, so the telescoping
      // marks live on the packet itself. queue = mark -> pre-process clock
      // (includes in-burst head-of-line time), service = the process span.
      const bool sampled = pkt->lat().origin_ns != 0;
      u64 t1 = 0;
      if (sampled) {
        const u64 t0 = telemetry::mono_now_ns();
        pkt->lat().queue_ns += sat_sub(t0, pkt->lat().mark_ns);
        pkt->lat().mark_ns = t0;
      }
      PacketView view(*pkt);
      NfVerdict verdict = NfVerdict::kPass;
      if (view.valid()) verdict = self.impl->process(view);
      if (sampled) {
        t1 = telemetry::mono_now_ns();
        pkt->lat().service_ns += sat_sub(t1, pkt->lat().mark_ns);
        pkt->lat().mark_ns = t1;
      }

      if (verdict == NfVerdict::kDrop) {
        note_drop(telemetry::DropReason::kNfVerdict, stage_name.c_str(),
                  &pkt->flow());
        mag.release(pkt);
        ++drops;
        ++completed;
        continue;
      }
      if (last_segment) {
        out_batch.emplace_back(pkt->data(), pkt->data() + pkt->length());
        if (sampled) finalize_latency(*pkt, self.lat_block.get(), t1);
        mag.release(pkt);
        ++completed;
        continue;
      }
      if (!enter_segment(seg_idx + 1, pkt, mag, &acct)) {
        note_drop(telemetry::DropReason::kPoolExhausted, stage_name.c_str(),
                  &pkt->flow());
        mag.release(pkt);
        ++drops;
        ++completed;
      }
    }
    commit_batch(out_batch, drops, completed);
    beat = telemetry::mono_now_ns();
    acct.lap(beat, telemetry::CycleBucket::kUseful);
  }
}

void LivePipeline::merger_loop() {
  maybe_pin_current_thread();
  PacketMagazine mag = make_magazine();
  const std::size_t burst = opts_.burst_size;

  // One accumulation table per parallel segment (merge_table.hpp).
  std::vector<std::unique_ptr<MergeTable>> tables(segments_.size());
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const Segment& seg = graph_.segments()[s];
    if (seg.is_parallel()) {
      tables[s] = std::make_unique<MergeTable>(opts_.in_flight_window,
                                               seg.merge.total_count);
    }
  }

  std::vector<MergeEnvelope> burst_buf(burst);
  std::vector<std::pair<Packet*, u8>> pairs;
  std::vector<std::vector<u8>> out_batch;
  Backoff idle_backoff;

  u64 beat = telemetry::mono_now_ns();
  telemetry::CycleAccountant acct(merger_cycles_.get(), beat);

  for (;;) {
    merger_heartbeat_ns_.store(beat, std::memory_order_relaxed);
    bool idle = true;
    u64 drops = 0;
    u64 completed = 0;
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      const Segment& seg = graph_.segments()[s];
      if (!seg.is_parallel()) continue;
      MergeTable& table = *tables[s];
      for (std::size_t k = 0; k < segments_[s].size(); ++k) {
        LiveNf& nf = segments_[s][k];
        std::size_t n;
        while ((n = nf.out->pop_burst({burst_buf.data(), burst})) > 0) {
          idle = false;
          for (std::size_t i = 0; i < n; ++i) {
            const MergeEnvelope& env = burst_buf[i];
            const std::span<MergeArrival> done = table.add(
                env.pkt->meta().pid(),
                MergeArrival{env.pkt, nf.meta.version, env.drop_intent,
                             nf.meta.priority, nf.meta.can_drop,
                             env.queue_ns, env.service_ns, env.out_ns});
            if (done.empty()) continue;
            merger_merges_.fetch_add(1, std::memory_order_relaxed);

            // Complete: resolve drops, merge, forward.
            bool dropped = false;
            if (seg.merge.drop_resolution == DropResolution::kAnyDrop) {
              for (const MergeArrival& a : done) dropped |= a.drop_intent;
            } else {
              i32 best = -1;
              for (const MergeArrival& a : done) {
                if (a.can_drop && a.priority > best) {
                  best = a.priority;
                  dropped = a.drop_intent;
                }
              }
            }

            Packet* merged = nullptr;
            if (!dropped) {
              pairs.clear();
              for (const MergeArrival& a : done) {
                pairs.emplace_back(a.pkt, a.version);
              }
              merged = apply_merge_operations(seg, pairs);
            }
            // Critical-branch latency combining: the arrival whose out-push
            // completed the set defines the segment's span. Its queue /
            // service accumulate onto the survivor and merge-wait is the
            // merger's reaction time from that push — the telescoping marks
            // stay exact (queue+service+merge == now - prev mark).
            if (merged != nullptr && merged->lat().origin_ns != 0) {
              const MergeArrival* critical = &done[0];
              for (const MergeArrival& a : done) {
                if (a.out_ns > critical->out_ns) critical = &a;
              }
              const u64 tm = telemetry::mono_now_ns();
              LatencyStamps& lat = merged->lat();
              lat.queue_ns += critical->queue_ns;
              lat.service_ns += critical->service_ns;
              lat.merge_ns += sat_sub(tm, critical->out_ns);
              lat.merges += 1;
              lat.mark_ns = tm;
            }
            // The merge drop-resolution is an NF verdict exercised at the
            // merge point; tag it while the arrivals are still alive so
            // the exemplar carries the flow.
            if (merged == nullptr) {
              note_drop(telemetry::DropReason::kNfVerdict, "merger",
                        &done[0].pkt->flow());
            }
            bool kept_one = false;
            for (const MergeArrival& a : done) {
              if (a.pkt == merged && !kept_one) {
                kept_one = true;
                continue;
              }
              mag.release(a.pkt);
            }

            if (merged == nullptr) {
              ++drops;
              ++completed;
            } else if (s + 1 == segments_.size()) {
              out_batch.emplace_back(merged->data(),
                                     merged->data() + merged->length());
              finalize_latency(*merged, merger_lat_block_.get(),
                               merged->lat().mark_ns);
              merged->set_nil(false);
              mag.release(merged);
              ++completed;
            } else {
              merged->set_nil(false);
              if (!enter_segment(s + 1, merged, mag, &acct)) {
                note_drop(telemetry::DropReason::kPoolExhausted, "merger",
                          &merged->flow());
                mag.release(merged);
                ++drops;
                ++completed;
              }
            }
          }
          if (n < burst) break;  // ring drained for now; visit the next one
        }
      }
    }
    commit_batch(out_batch, drops, completed);
    if (idle) {
      if (stop_.load(std::memory_order_acquire)) return;
      idle_backoff.pause();
      beat = telemetry::mono_now_ns();
      // Idle with packets in flight is the merge-wait the paper's §5.2
      // mergers exist to hide: siblings of accepted packets are still
      // upstream. Idle with nothing in flight is plain ingest starvation.
      acct.lap(beat, in_flight_.load(std::memory_order_acquire) > 0
                         ? telemetry::CycleBucket::kMergeWait
                         : telemetry::CycleBucket::kStarved);
    } else {
      idle_backoff.reset();
      beat = telemetry::mono_now_ns();
      acct.lap(beat, telemetry::CycleBucket::kUseful);
    }
  }
}

NetworkFunction* LivePipeline::nf(std::size_t segment, std::size_t index) {
  if (rtc_ != nullptr) return rtc_->nf(segment, index);
  return segments_.at(segment).at(index).impl.get();
}

u64 LivePipeline::dropped_by(telemetry::DropReason reason) const {
  if (rtc_ != nullptr) return rtc_->dropped_by(reason);
  return drop_reasons_[static_cast<std::size_t>(reason)].load(
      std::memory_order_relaxed);
}

void LivePipeline::set_drop_exemplar_ring(telemetry::DropExemplarRing* ring) {
  if (rtc_ != nullptr) {
    rtc_->set_drop_exemplar_ring(ring);
    return;
  }
  drop_exemplars_ = ring;
}

const LivePipeline::LiveNf* LivePipeline::worker_nf(std::size_t w) const {
  std::size_t i = 0;
  for (const auto& seg : segments_) {
    for (const LiveNf& nf : seg) {
      if (i++ == w) return &nf;
    }
  }
  return nullptr;  // the merger slot (w == NF count)
}

std::size_t LivePipeline::worker_count() const {
  // RTC mode spawns no threads: there is nothing to heartbeat-watch here
  // (in the sharded dataplane the shard worker's own heartbeat covers the
  // inline execution).
  if (rtc_ != nullptr) return 0;
  std::size_t n = 0;
  for (const auto& seg : segments_) n += seg.size();
  return n + 1;  // + merger
}

std::string LivePipeline::worker_name(std::size_t w) const {
  const LiveNf* nf = worker_nf(w);
  if (nf == nullptr) return "merger";
  return "nf:" + nf->meta.name + "#" + std::to_string(nf->meta.instance_id);
}

u64 LivePipeline::worker_heartbeat_ns(std::size_t w) const {
  const LiveNf* nf = worker_nf(w);
  if (nf == nullptr) {
    return merger_heartbeat_ns_.load(std::memory_order_relaxed);
  }
  return nf->heartbeat_ns->load(std::memory_order_relaxed);
}

u64 LivePipeline::worker_packets(std::size_t w) const {
  const LiveNf* nf = worker_nf(w);
  if (nf == nullptr) return merger_merges_.load(std::memory_order_relaxed);
  return nf->processed->load(std::memory_order_relaxed);
}

std::size_t LivePipeline::ring_depth_in(std::size_t w) const {
  const LiveNf* nf = worker_nf(w);
  return nf == nullptr ? 0 : nf->in->size();
}

std::size_t LivePipeline::ring_depth_out(std::size_t w) const {
  const LiveNf* nf = worker_nf(w);
  return nf == nullptr ? 0 : nf->out->size();
}

u64 LivePipeline::dropped_so_far() {
  if (rtc_ != nullptr) return rtc_->dropped_so_far();
  const std::scoped_lock lock(result_mu_);
  return result_.dropped;
}

u64 LivePipeline::delivered_so_far() {
  if (rtc_ != nullptr) return rtc_->delivered_so_far();
  const std::scoped_lock lock(result_mu_);
  return result_.outputs.size();
}

telemetry::ShardScalabilitySnapshot LivePipeline::scalability_snapshot() {
  if (rtc_ != nullptr) return rtc_->scalability_snapshot();
  telemetry::ShardScalabilitySnapshot snap;
  auto fold = [&snap](const telemetry::CycleCounters* cycles) {
    if (cycles == nullptr) return;
    for (std::size_t b = 0; b < telemetry::kCycleBucketCount; ++b) {
      snap.ns[b] += cycles->get(static_cast<telemetry::CycleBucket>(b));
    }
  };
  for (const auto& seg : segments_) {
    for (const LiveNf& nf : seg) {
      fold(nf.cycles.get());
      snap.ring_full_events += nf.in->full_events() + nf.out->full_events();
      ++snap.threads;
    }
  }
  fold(merger_cycles_.get());
  ++snap.threads;  // merger
  // The feeder is the caller's thread, not a pipeline thread: its waits
  // count, its useful time belongs to the caller.
  fold(feeder_cycles_.get());
  snap.pool_cas_retries = pool_.cas_retry_total();
  snap.backoff_spins = feeder_spin_total_.load(std::memory_order_relaxed);
  snap.delivered = delivered_so_far();
  snap.dropped = dropped_so_far();
  return snap;
}

telemetry::ShardLatencySnapshot LivePipeline::latency_snapshot() const {
  if (rtc_ != nullptr) return rtc_->latency_snapshot();
  telemetry::ShardLatencySnapshot snap;
  auto fold = [&snap](const telemetry::StageLatencyBlock* block) {
    if (block == nullptr) return;
    for (std::size_t s = 0; s < telemetry::kLatencyStageCount; ++s) {
      snap.stages[s] +=
          block->snapshot(static_cast<telemetry::LatencyStage>(s));
    }
  };
  for (const auto& seg : segments_) {
    for (const LiveNf& nf : seg) {
      fold(nf.lat_block.get());
      snap.queue_depth += static_cast<double>(nf.in->size() + nf.out->size());
    }
  }
  fold(merger_lat_block_.get());
  return snap;
}

u64 LivePipeline::feeder_wait_ns() const {
  if (rtc_ != nullptr) return rtc_->feeder_wait_ns();
  if (feeder_cycles_ == nullptr) return 0;
  u64 total = 0;
  for (std::size_t b = 0; b < telemetry::kCycleBucketCount; ++b) {
    total += feeder_cycles_->get(static_cast<telemetry::CycleBucket>(b));
  }
  return total;
}

void LivePipeline::register_health(telemetry::HealthSampler& sampler,
                                   telemetry::Watchdog* watchdog,
                                   const std::string& shard) {
  // With a shard tag every probe carries a {"shard", N} label and every
  // watchdog component gets a "shardN/" prefix, so S pipelines share one
  // registry without metric collisions.
  telemetry::Labels plane_labels{{"plane", "live"}};
  if (!shard.empty()) plane_labels.emplace_back("shard", shard);
  const std::string prefix = shard.empty() ? "" : "shard" + shard + "/";

  const std::size_t workers = worker_count();
  for (std::size_t w = 0; w < workers; ++w) {
    const std::string name = worker_name(w);
    telemetry::Labels labels = plane_labels;
    labels.emplace_back("worker", name);
    sampler.add_probe("worker_heartbeat_ns", labels, [this, w] {
      return static_cast<double>(worker_heartbeat_ns(w));
    });
    sampler.add_probe("worker_packets", labels, [this, w] {
      return static_cast<double>(worker_packets(w));
    });
    sampler.add_probe("ring_depth_in", labels, [this, w] {
      return static_cast<double>(ring_depth_in(w));
    });
    sampler.add_probe("ring_depth_out", labels, [this, w] {
      return static_cast<double>(ring_depth_out(w));
    });
    if (watchdog != nullptr) {
      watchdog->watch_heartbeat(
          prefix + name, [this, w] { return worker_heartbeat_ns(w); });
    }
  }
  sampler.add_probe("pool_in_use", plane_labels, [this] {
    return static_cast<double>(pool_in_use());
  });
  // Allocator pressure: magazine↔pool batch traffic and refcount misuse.
  sampler.add_probe("pool_magazine_refill_total", plane_labels, [this] {
    return static_cast<double>(magazine_refills());
  });
  sampler.add_probe("pool_magazine_flush_total", plane_labels, [this] {
    return static_cast<double>(magazine_flushes());
  });
  sampler.add_probe("pool_refcnt_underflow_total", plane_labels,
                    [this] {
                      return static_cast<double>(refcnt_underflows());
                    });
  if (watchdog != nullptr) {
    watchdog->watch_pool(
        prefix + "live-pool",
        [this] { return static_cast<u64>(pool_in_use()); },
        pool_capacity());
    watchdog->watch_drop_counter(prefix + "live-pipeline",
                                 [this] { return dropped_so_far(); });
  }
}

Status LivePipeline::start() {
  if (rtc_ != nullptr) return rtc_->start();
  RunState expected = RunState::kNew;
  if (!state_.compare_exchange_strong(expected, RunState::kRunning,
                                      std::memory_order_acq_rel)) {
    return Status::error(
        "LivePipeline::start(): pipeline already started — each LivePipeline "
        "runs exactly once; construct a fresh instance for another run");
  }
  feeder_mag_ = std::make_unique<PacketMagazine>(
      pool_, opts_.magazine_size, &mag_refill_total_, &mag_flush_total_,
      opts_.per_packet_compat ? &compat_mu_ : nullptr);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    for (std::size_t k = 0; k < segments_[s].size(); ++k) {
      segments_[s][k].thread =
          std::thread([this, s, k] { nf_loop(s, k); });
    }
  }
  merger_thread_ = std::thread([this] { merger_loop(); });
  return Status::ok();
}

bool LivePipeline::feed(std::span<const u8> frame) {
  if (rtc_ != nullptr) return rtc_->feed(frame);
  // Standalone sampling: no flow hash at this layer, so sample by pid.
  u64 origin = 0;
  if (opts_.latency_sample_every != 0 &&
      next_pid_ % opts_.latency_sample_every == 0) {
    origin = telemetry::mono_now_ns();
  }
  return feed_stamped(frame, origin);
}

bool LivePipeline::feed_stamped(std::span<const u8> frame, u64 origin_ns,
                                const FlowRef* flow) {
  if (rtc_ != nullptr) return rtc_->feed_stamped(frame, origin_ns, flow);
  if (state_.load(std::memory_order_acquire) != RunState::kRunning) {
    return false;
  }
  // No recording blocks (latency_sample_every == 0) means nowhere to land
  // the sample — drop the stamp rather than half-instrument the packet.
  if (merger_lat_block_ == nullptr) origin_ns = 0;
  PacketMagazine& mag = *feeder_mag_;
  telemetry::CycleAccountant facct(feeder_cycles_.get(), 0);
  // Window full means downstream (rings/merger) has not retired packets
  // fast enough — ingest backpressure, timed only when actually contended.
  if (in_flight_.load(std::memory_order_acquire) >= opts_.in_flight_window) {
    const u64 t0 = facct.enabled() ? telemetry::mono_now_ns() : 0;
    Backoff window_backoff;
    do {
      window_backoff.pause();
    } while (in_flight_.load(std::memory_order_acquire) >=
             opts_.in_flight_window);
    if (t0 != 0) {
      facct.carve(telemetry::CycleBucket::kRingWait,
                  telemetry::mono_now_ns() - t0);
      feeder_spin_total_.fetch_add(window_backoff.total_pauses(),
                                   std::memory_order_relaxed);
    }
  }
  Packet* pkt = mag.alloc(frame.size());
  if (pkt == nullptr) {
    const u64 t0 = facct.enabled() ? telemetry::mono_now_ns() : 0;
    Backoff alloc_backoff;
    do {
      alloc_backoff.pause();
    } while ((pkt = mag.alloc(frame.size())) == nullptr);
    if (t0 != 0) {
      facct.carve(telemetry::CycleBucket::kPoolWait,
                  telemetry::mono_now_ns() - t0);
      feeder_spin_total_.fetch_add(alloc_backoff.total_pauses(),
                                   std::memory_order_relaxed);
    }
  }
  std::memcpy(pkt->data(), frame.data(), frame.size());
  pkt->meta().set_pid(next_pid_++ & Metadata::kMaxPid);
  if (flow != nullptr) pkt->flow() = *flow;
  if (origin_ns != 0) {
    // Ingest closes here: origin -> ready-to-enqueue covers the caller's
    // spans (director pool/ring/classify) plus this feed's window + alloc
    // backpressure. The mark opens the first queue span.
    const u64 now = telemetry::mono_now_ns();
    LatencyStamps& lat = pkt->lat();
    lat.origin_ns = origin_ns;
    lat.ingest_ns = sat_sub(now, origin_ns);
    lat.mark_ns = now;
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (!enter_segment(0, pkt, mag, &facct)) {
    // Standalone feeds have no caller-parsed FlowRef; parse it here — the
    // drop path is cold — so the exemplar still names the flow.
    if (!pkt->flow().valid && flow == nullptr) {
      if (const auto parsed = parse_five_tuple(frame)) {
        pkt->flow().tuple = *parsed;
        pkt->flow().hash = hash_five_tuple(*parsed);
        pkt->flow().valid = true;
      }
    }
    note_drop(telemetry::DropReason::kPoolExhausted, "feeder", &pkt->flow());
    mag.release(pkt);
    const std::scoped_lock lock(result_mu_);
    ++result_.dropped;
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

LiveResult LivePipeline::drain() {
  if (rtc_ != nullptr) return rtc_->drain();
  if (state_.load(std::memory_order_acquire) != RunState::kRunning) {
    LiveResult bad;
    bad.status = Status::error(
        "LivePipeline::drain(): pipeline is not running (call start() first; "
        "drain() may only be called once)");
    return bad;
  }
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  stop_.store(true, std::memory_order_release);
  for (auto& seg : segments_) {
    for (auto& nf : seg) {
      if (nf.thread.joinable()) nf.thread.join();
    }
  }
  if (merger_thread_.joinable()) merger_thread_.join();
  feeder_mag_->drain();
  feeder_mag_.reset();
  state_.store(RunState::kFinished, std::memory_order_release);

  const std::scoped_lock lock(result_mu_);
  return std::move(result_);
}

LiveResult LivePipeline::run(const std::vector<std::vector<u8>>& frames) {
  if (Status st = start(); !st.is_ok()) {
    LiveResult bad;
    bad.status = std::move(st);
    return bad;
  }
  for (const auto& frame : frames) {
    feed(std::span<const u8>(frame.data(), frame.size()));
  }
  return drain();
}

}  // namespace nfp

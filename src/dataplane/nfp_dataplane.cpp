#include "dataplane/nfp_dataplane.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/logging.hpp"
#include "dataplane/merge_ops.hpp"
#include "packet/packet_view.hpp"

namespace nfp {

namespace {

std::unique_ptr<NetworkFunction> default_factory(const StageNf& nf) {
  return make_builtin_nf(nf.name, static_cast<u64>(nf.instance_id) + 1);
}

}  // namespace

NfpDataplane::NfpDataplane(sim::Simulator& sim, ServiceGraph graph,
                           DataplaneConfig config)
    : NfpDataplane(sim,
                   [&] {
                     std::vector<ServiceGraph> graphs;
                     graphs.push_back(std::move(graph));
                     return graphs;
                   }(),
                   std::move(config)) {}

NfpDataplane::NfpDataplane(sim::Simulator& sim,
                           std::vector<ServiceGraph> graphs,
                           DataplaneConfig config)
    : sim_(sim),
      config_(std::move(config)),
      pool_(std::make_unique<PacketPool>(config_.pool_packets)),
      merger_cores_(config_.merger_instances),
      merger_out_(config_.merger_instances),
      at_(config_.merger_instances) {
  assert(!graphs.empty());
  const NfFactory& factory =
      config_.factory ? config_.factory : NfFactory(default_factory);

  u32 next_mid = 0;
  int next_instance = 0;
  for (ServiceGraph& graph : graphs) {
    GraphRuntime runtime;
    runtime.graph = std::move(graph);
    for (Segment& seg : runtime.graph.segments()) {
      seg.mid = next_mid++ & Metadata::kMaxMid;  // globally unique MIDs
      std::vector<NfInstance> instances;
      for (StageNf& nf : seg.nfs) {
        nf.instance_id = next_instance++;
        NfInstance inst;
        inst.meta = nf;
        inst.impl = factory(nf);
        if (inst.impl == nullptr) {
          // Unknown NF type: fall back to a pass-through monitor so the
          // graph still runs; cost accounting uses the type name regardless.
          log_warn("no implementation for NF type '", nf.name,
                   "'; using monitor as a stand-in");
          inst.impl = make_builtin_nf("monitor");
        }
        instances.push_back(std::move(inst));
      }
      runtime.segments.push_back(std::move(instances));
    }
    graphs_.push_back(std::move(runtime));
  }
}

NfpDataplane::~NfpDataplane() = default;

NetworkFunction* NfpDataplane::nf_in(std::size_t graph_index,
                                     std::size_t segment, std::size_t index) {
  return graphs_.at(graph_index).segments.at(segment).at(index).impl.get();
}

void NfpDataplane::add_flow_rule(const FiveTuple& flow,
                                 std::size_t graph_index) {
  assert(graph_index < graphs_.size());
  ct_[flow] = graph_index;
}

void NfpDataplane::inject(Packet* pkt) {
  ++stats_.injected;
  pkt->set_inject_time(sim_.now());
  // RX link: wire serialization occupies the link; NIC/driver adds delay.
  const SimTime link_free =
      rx_link_.execute(sim_.now(), config_.costs.wire_ns(pkt->length()));
  sim_.schedule_at(link_free + config_.costs.nic_delay_ns,
                   [this, pkt] { classify(pkt); });
}

void NfpDataplane::classify(Packet* pkt) {
  const SimTime free =
      classifier_core_.execute(sim_.now(), config_.costs.classifier.occ);
  pkt->meta().set_pid(next_pid_++ & Metadata::kMaxPid);
  pkt->meta().set_version(1);

  // Classification Table lookup (§5.1): exact flow match, default graph 0.
  std::size_t g = 0;
  if (!ct_.empty()) {
    PacketView view(*pkt);
    if (view.valid()) {
      const auto it = ct_.find(view.five_tuple());
      if (it != ct_.end()) g = it->second;
    }
  }
  enter_segment(g, 0, pkt, free, &classifier_core_,
                config_.costs.classifier.delay, &classifier_out_);
}

// `t` is when the entry core can start the segment's entry actions;
// `carry_delay` is packet latency accumulated on this core that applies to
// the hand-off into the segment's NFs.
void NfpDataplane::enter_segment(std::size_t g, std::size_t seg_idx,
                                 Packet* pkt, SimTime t,
                                 sim::SimCore* entry_core,
                                 SimTime carry_delay,
                                 sim::FifoChannel* channel) {
  GraphRuntime& runtime = graphs_[g];
  const Segment& seg = runtime.graph.segments()[seg_idx];
  auto& instances = runtime.segments[seg_idx];
  pkt->meta().set_mid(seg.mid);
  pkt->meta().set_version(1);

  if (!seg.is_parallel()) {
    const SimTime free =
        entry_core->execute(t, config_.costs.ring_enqueue.occ);
    const SimTime handoff = channel->stamp(
        free + carry_delay + config_.costs.ring_enqueue.delay);
    sim_.schedule_at(handoff, [this, g, seg_idx, pkt, handoff] {
      run_nf(g, seg_idx, 0, pkt, handoff);
    });
    return;
  }

  // Create the packet copies for versions 2..num_versions on the entry core
  // (paper §5.2 `copy` action; memory comes from the pre-allocated pool).
  std::vector<Packet*> version_pkt(
      static_cast<std::size_t>(seg.num_versions) + 1, nullptr);
  version_pkt[1] = pkt;
  SimTime free = t;
  SimTime copy_delay = 0;
  for (u8 v = 2; v <= seg.num_versions; ++v) {
    const bool full = seg.version_needs_full_copy(v);
    Packet* copy =
        full ? pool_->clone_full(*pkt) : pool_->clone_header_only(*pkt);
    if (copy == nullptr) {
      ++stats_.dropped_pool;
      for (u8 w = 2; w < v; ++w) pool_->release(version_pkt[w]);
      pool_->release(pkt);
      return;
    }
    copy->meta().set_version(v);
    version_pkt[v] = copy;
    SimTime occ = config_.costs.copy_header.occ;
    if (full) {
      ++stats_.copies_full;
      occ += static_cast<SimTime>(config_.costs.copy_full_per_byte_occ *
                                  static_cast<double>(copy->length()));
    } else {
      ++stats_.copies_header;
    }
    stats_.copy_bytes += copy->length();
    free = entry_core->execute(free, occ);
    copy_delay += config_.costs.copy_header.delay;
  }

  // Reference counting: each version is consumed by every NF on it.
  for (u8 v = 1; v <= seg.num_versions; ++v) {
    const auto consumers = static_cast<std::size_t>(std::count_if(
        seg.nfs.begin(), seg.nfs.end(),
        [v](const StageNf& nf) { return nf.version == v; }));
    if (consumers == 0) {
      if (v > 1) pool_->release(version_pkt[v]);  // defensive: unused version
      continue;
    }
    for (std::size_t extra = 1; extra < consumers; ++extra) {
      pool_->add_ref(version_pkt[v]);
    }
  }

  // Distributed delivery: one reference write per target NF.
  const SimTime handoff_delay =
      carry_delay + copy_delay + config_.costs.ring_enqueue.delay;
  for (std::size_t k = 0; k < instances.size(); ++k) {
    Packet* version = version_pkt[seg.nfs[k].version];
    free = entry_core->execute(free, config_.costs.ring_enqueue.occ);
    const SimTime handoff = channel->stamp(free + handoff_delay);
    sim_.schedule_at(handoff, [this, g, seg_idx, k, version, handoff] {
      run_nf(g, seg_idx, k, version, handoff);
    });
  }
}

void NfpDataplane::run_nf(std::size_t g, std::size_t seg_idx,
                          std::size_t nf_idx, Packet* pkt, SimTime ready) {
  GraphRuntime& runtime = graphs_[g];
  const Segment& seg = runtime.graph.segments()[seg_idx];
  NfInstance& inst = runtime.segments[seg_idx][nf_idx];

  const sim::OpCost deq = config_.costs.nf_dequeue;
  const sim::OpCost nf_cost = config_.costs.nf_cost(
      inst.meta.name, pkt->length(), config_.delaynf_cycles);

  // Real packet processing.
  PacketView view(*pkt);
  NfVerdict verdict = NfVerdict::kPass;
  if (view.valid()) {
    verdict = inst.impl->process(view);
  }

  const SimTime free = inst.core.execute(ready, deq.occ + nf_cost.occ);
  const SimTime latency = deq.delay + nf_cost.delay;

  if (!seg.is_parallel()) {
    if (verdict == NfVerdict::kDrop) {
      ++stats_.dropped_by_nf;
      pool_->release(pkt);
      return;
    }
    // The NF's outbound FIFO channel keeps hand-offs ordered: a small
    // packet's shorter processing latency cannot let it overtake an earlier
    // packet on the same ring.
    leave_segment(g, seg_idx, pkt, free, &inst.core, latency, &inst.out);
    return;
  }

  // Parallel stage: forward to the merger (nil packets signal drops, §5.2).
  MergeItem item;
  item.pkt = pkt;
  item.version = inst.meta.version;
  item.drop_intent = verdict == NfVerdict::kDrop;
  item.priority = inst.meta.priority;
  item.can_drop = inst.meta.can_drop;
  const SimTime enq_free =
      inst.core.execute(free, config_.costs.ring_enqueue.occ);
  const SimTime handoff = inst.out.stamp(enq_free + latency +
                                         config_.costs.ring_enqueue.delay);
  sim_.schedule_at(handoff, [this, g, seg_idx, item, handoff] {
    to_merger(g, seg_idx, item, handoff);
  });
}

void NfpDataplane::to_merger(std::size_t g, std::size_t seg_idx,
                             MergeItem item, SimTime t) {
  // Merger agent: hash the immutable PID and steer to an instance (§5.3).
  const SimTime free = agent_core_.execute(t, config_.costs.merger_agent.occ);
  const std::size_t instance = static_cast<std::size_t>(
      mix64(item.pkt->meta().pid()) % merger_cores_.size());
  const SimTime handoff = free + config_.costs.merger_agent.delay;
  sim_.schedule_at(handoff, [this, g, seg_idx, instance, item, handoff] {
    merger_arrival(g, seg_idx, instance, item, handoff);
  });
}

void NfpDataplane::merger_arrival(std::size_t g, std::size_t seg_idx,
                                  std::size_t instance, MergeItem item,
                                  SimTime t) {
  const Segment& seg = graphs_[g].graph.segments()[seg_idx];
  const SimTime free =
      merger_cores_[instance].execute(t, config_.costs.merge_arrival.occ);

  const u64 pid = item.pkt->meta().pid();
  const AtKey key{g, seg_idx, pid};
  MergeState& state = at_[instance][key];
  state.items.push_back(item);
  if (state.items.size() < seg.merge.total_count) return;

  MergeState complete = std::move(state);
  at_[instance].erase(key);
  complete_merge(g, seg_idx, instance, std::move(complete),
                 free + config_.costs.merge_arrival.delay);
}

void NfpDataplane::drop_all(MergeState& state) {
  for (const MergeItem& item : state.items) pool_->release(item.pkt);
  state.items.clear();
}

Packet* NfpDataplane::apply_merge_ops(const Segment& seg, MergeState& state) {
  std::vector<std::pair<Packet*, u8>> arrivals;
  arrivals.reserve(state.items.size());
  for (const MergeItem& item : state.items) {
    arrivals.emplace_back(item.pkt, item.version);
  }
  return apply_merge_operations(seg, arrivals);
}

void NfpDataplane::complete_merge(std::size_t g, std::size_t seg_idx,
                                  std::size_t instance, MergeState state,
                                  SimTime t) {
  const Segment& seg = graphs_[g].graph.segments()[seg_idx];

  // Drop resolution (§5.2/§5.3 nil packets; DESIGN.md).
  bool dropped = false;
  if (seg.merge.drop_resolution == DropResolution::kAnyDrop) {
    dropped = std::any_of(state.items.begin(), state.items.end(),
                          [](const MergeItem& i) { return i.drop_intent; });
  } else {
    int best_priority = -1;
    for (const MergeItem& item : state.items) {
      if (item.can_drop && item.priority > best_priority) {
        best_priority = item.priority;
        dropped = item.drop_intent;
      }
    }
  }

  const SimTime ops_occ = config_.costs.merge_per_op_ns * seg.merge.ops.size();
  const SimTime free = merger_cores_[instance].execute(
      t, config_.costs.merge_final.occ + ops_occ);
  const SimTime latency =
      config_.costs.merge_final.delay +
      config_.costs.merge_per_arrival_delay_ns * seg.merge.total_count;
  ++stats_.merges;

  if (dropped) {
    ++stats_.dropped_by_nf;
    drop_all(state);
    return;
  }

  Packet* merged = apply_merge_ops(seg, state);
  if (merged == nullptr) {
    drop_all(state);
    return;
  }
  // Release every reference except one to the output packet.
  bool kept_one = false;
  for (const MergeItem& item : state.items) {
    if (item.pkt == merged && !kept_one) {
      kept_one = true;
      continue;
    }
    pool_->release(item.pkt);
  }

  leave_segment(g, seg_idx, merged, free, &merger_cores_[instance], latency,
                &merger_out_[instance]);
}

void NfpDataplane::leave_segment(std::size_t g, std::size_t seg_idx,
                                 Packet* pkt, SimTime t, sim::SimCore* core,
                                 SimTime carry_delay,
                                 sim::FifoChannel* channel) {
  if (seg_idx + 1 < graphs_[g].graph.segments().size()) {
    enter_segment(g, seg_idx + 1, pkt, t, core, carry_delay, channel);
    return;
  }
  const SimTime free = core->execute(t, config_.costs.output_queue.occ);
  const SimTime handoff = channel->stamp(
      free + carry_delay + config_.costs.output_queue.delay);
  sim_.schedule_at(handoff, [this, pkt] { output(pkt, sim_.now()); });
}

void NfpDataplane::output(Packet* pkt, SimTime t) {
  const SimTime free =
      tx_link_.execute(t, config_.costs.wire_ns(pkt->length()));
  const SimTime done = free + config_.costs.nic_delay_ns;
  ++stats_.delivered;
  if (sink_) {
    sink_(pkt, done);
  } else {
    pool_->release(pkt);
  }
}

}  // namespace nfp

// Named traffic scenarios for `nfp_cli live --scenario=`.
//
// Each preset reproduces one of the traffic shapes the paper's evaluation
// leans on, prebuilt as raw Ethernet frames plus an inter-frame gap so the
// CLI can replay them open-loop against the sharded dataplane:
//
//   bursty        on/off bursts — queue build-up and drain, the tail-latency
//                 shape §6.2 measures under
//   elephant-mice zipf flow mix where the few hottest flows carry near-MTU
//                 frames and the long tail sends mice (Benson et al. shape)
//   syn-flood     pure flow churn: every packet opens a fresh 5-tuple, so
//                 every flow cache misses — worst case for the classifier
//   ddos          ~30% of traffic from one attack subnet; carries subnet
//                 metadata so the CLI installs a CT drop rule and the run
//                 demonstrates classification-time scrubbing
//
// The scenarios only *describe* traffic (frames + metadata); wiring drop
// rules or drains is the caller's job, keeping trafficgen free of dataplane
// dependencies.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace nfp {

struct ScenarioFrame {
  std::vector<u8> bytes;
  u64 gap_ns = 0;  // idle time to wait before injecting this frame
};

struct Scenario {
  std::string name;
  std::string summary;           // one-line description for the CLI banner
  std::vector<ScenarioFrame> frames;
  std::size_t flows = 0;         // distinct 5-tuples the preset emits
  // ddos only: the subnet the caller should install a drop rule for.
  bool has_attack_subnet = false;
  u32 attack_subnet = 0;
  u32 attack_mask = 0;
};

// Names accepted by make_scenario, in presentation order.
std::vector<std::string> scenario_names();

// Builds `packets` frames of the named preset; nullopt for unknown names.
std::optional<Scenario> make_scenario(std::string_view name, u64 packets,
                                      u64 seed);

}  // namespace nfp

file(REMOVE_RECURSE
  "CMakeFiles/nfp_cli.dir/nfp_cli.cpp.o"
  "CMakeFiles/nfp_cli.dir/nfp_cli.cpp.o.d"
  "nfp_cli"
  "nfp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Pre-allocated packet pool.
//
// The paper stores packets in shared memory allocated on huge pages at
// system initialization so that header copies never hit the allocator
// (§5.2: "we prepare memory blocks to store input or copied packets during
// the system initialization"). This pool is the equivalent: a fixed arena of
// Packet buffers with an O(1) free-list and intrusive reference counts.
//
// Reference counting exists because `distribute` can hand the *same* packet
// version to several parallel NFs (§5.2); the buffer returns to the pool
// only when the last holder releases it.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "packet/packet.hpp"

namespace nfp {

class PacketPool {
 public:
  explicit PacketPool(std::size_t capacity)
      : slots_(std::make_unique<Packet[]>(capacity)), capacity_(capacity) {
    free_.reserve(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].pool_index_ = static_cast<u32>(i);
      free_.push_back(static_cast<u32>(capacity - 1 - i));
    }
  }

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Allocates a packet with `len` data bytes (refcount = 1).
  // Returns nullptr when the pool is exhausted (callers treat this as packet
  // loss, as a NIC would under mempool pressure).
  Packet* alloc(std::size_t len = 0) noexcept {
    if (free_.empty()) return nullptr;
    const u32 idx = free_.back();
    free_.pop_back();
    Packet& p = slots_[idx];
    p.reset(len);
    p.refcnt_ = 1;
    return &p;
  }

  void add_ref(Packet* p) noexcept {
    assert(p != nullptr && p->refcnt_ > 0);
    ++p->refcnt_;
  }

  void release(Packet* p) noexcept {
    assert(p != nullptr && p->refcnt_ > 0);
    if (--p->refcnt_ == 0) {
      free_.push_back(p->pool_index_);
    }
  }

  // Full copy of data + metadata (used when Header-Only Copying is disabled
  // for ablation studies).
  Packet* clone_full(const Packet& src) noexcept {
    Packet* dst = alloc(src.length());
    if (dst == nullptr) return nullptr;
    std::memcpy(dst->data(), src.data(), src.length());
    dst->meta() = src.meta();
    dst->set_inject_time(src.inject_time());
    return dst;
  }

  // Header-Only Copying (paper §4.2 OP#2): copies only the Ethernet + IP +
  // L4 header region and sets the copied packet's IP total-length field to
  // the header length itself so parallel NFs still see a valid packet.
  // Returns the copy, or nullptr on pool exhaustion.
  Packet* clone_header_only(const Packet& src) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t in_use() const noexcept { return capacity_ - free_.size(); }
  std::size_t available() const noexcept { return free_.size(); }

 private:
  std::unique_ptr<Packet[]> slots_;
  std::size_t capacity_;
  std::vector<u32> free_;
};

// Length in bytes of the region copied by Header-Only Copying. The paper
// reports a fixed 64 B for TCP traffic on Ethernet (14 + 20 + 20 = 54,
// padded to the 64 B minimum frame / cache line).
inline constexpr std::size_t kHeaderCopyBytes = 64;

}  // namespace nfp

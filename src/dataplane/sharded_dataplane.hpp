// Sharded multi-core live dataplane: RSS-style flow sharding over S
// LivePipeline shards.
//
// NFP's server dataplane (§5) is single-box but multi-core: the NIC's RSS
// hash spreads flows across cores and every core runs the full NF graph on
// its own slice of the traffic, shared-nothing. This layer reproduces that
// scaling model in software:
//
//   * a flow-consistent director — the software RSS — parses each frame's
//     5-tuple and dispatches it to shard hash_five_tuple(t) % S, so every
//     packet of a flow lands on the same shard. Per-flow ordering and
//     shard-local NF state (monitors, NAT maps, shapers) follow for free;
//     cross-flow ordering is intentionally unspecified, exactly as with
//     hardware RSS.
//   * one worker thread + G LivePipelines per shard, all pinned to the
//     shard's core (cpu_affinity; graceful no-op where pinning is denied,
//     reported via affinity_applied()).
//   * live multi-graph classification: the shard worker consults the shared
//     LiveClassificationTable through a per-shard exact-match microflow
//     cache (live_classifier.hpp), so steady-state classification is one
//     bounded-LRU lookup instead of a mutex-guarded rule scan.
//
// Dataflow per frame: director copies it into the shard's ingest pool and
// SPSC ring (the RX queue); the shard worker classifies it and feeds the
// bytes into the verdict graph's pipeline. The second copy at the pipeline
// boundary is the software analogue of the NIC-to-mbuf RX copy and keeps
// every pipeline's pool strictly shard-private.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "dataplane/live_classifier.hpp"
#include "dataplane/live_pipeline.hpp"
#include "graph/service_graph.hpp"
#include "nfs/nf.hpp"
#include "packet/packet_pool.hpp"
#include "ring/spsc_ring.hpp"
#include "telemetry/flow_observatory.hpp"
#include "telemetry/owned_counter.hpp"

namespace nfp {

namespace telemetry {
class FlowObservatory;
class HealthSampler;
class LatencyObservatory;
class ScalabilityProfiler;
class Watchdog;
}  // namespace telemetry

struct ShardedDataplaneOptions {
  // Shard count; 0 = one shard per online CPU (the RSS default).
  std::size_t shards = 0;
  // Applied to every shard pipeline. pin_core is overwritten per shard
  // when pin_threads is set.
  LivePipelineOptions pipeline;
  // Pin each shard's worker + pipeline threads to core (shard % online).
  bool pin_threads = true;
  // Per-shard microflow-cache entries (bounded LRU ahead of the CT).
  std::size_t microflow_capacity = 1024;
  // Director -> shard-worker RX ring and its backing pool.
  std::size_t ingest_ring_depth = 1024;
  std::size_t ingest_pool_size = 2048;
  // Worker-side dequeue burst.
  std::size_t ingest_burst = 32;
  // Flow observatory recording (heavy hitters, churn, per-graph traffic).
  // On by default like cycle_accounting: the per-burst amortized cost is
  // gated at 5% by bench_hotpath_throughput's flow32-acct/noacct pair.
  // Drop-reason counting is NOT gated by this — drops always carry a
  // reason; this only disables the per-burst sketch updates.
  bool flow_accounting = true;
  // Space-Saving slots per shard (flows with count > N/capacity are
  // guaranteed present).
  std::size_t heavy_hitter_capacity = 128;
  // Sampled drop exemplars retained per shard.
  std::size_t drop_exemplar_capacity = 64;
  // When set, the director drops (with a reason) instead of blocking when
  // a shard's ingest pool is dry or its RX ring is full — the NIC-like
  // tail-drop policy. Default keeps the lossless blocking behaviour.
  bool drop_on_ingest_backpressure = false;
};

// Aggregate of one run. `outputs` concatenates shards in shard order (order
// across shards is not meaningful — per-flow order within a shard is).
struct ShardedResult {
  std::vector<std::vector<u8>> outputs;
  u64 dropped = 0;
  // Per-shard results, each merged across the shard's G graph pipelines.
  std::vector<LiveResult> per_shard;
  Status status;
};

class ShardedDataplane {
 public:
  using NfFactory =
      std::function<std::unique_ptr<NetworkFunction>(const StageNf&)>;

  // One pipeline per (shard, graph); `graphs` must be non-empty and
  // unmatched flows take graphs[0].
  explicit ShardedDataplane(std::vector<ServiceGraph> graphs,
                            NfFactory factory = {},
                            ShardedDataplaneOptions options = {});
  ~ShardedDataplane();

  ShardedDataplane(const ShardedDataplane&) = delete;
  ShardedDataplane& operator=(const ShardedDataplane&) = delete;

  // Classification Table management; safe before start() and mid-run
  // (workers observe the version bump and invalidate their caches).
  void add_flow_rule(const FiveTuple& flow, std::size_t graph);
  void add_rule(const CtRule& rule);
  // Bulk variant: one classifier-snapshot rebuild for the whole batch.
  void add_rules(std::vector<CtRule> rules);
  // Distinct mask signatures in the live classifier snapshot.
  std::size_t classifier_tuple_count() const;

  // Streaming lifecycle, mirroring LivePipeline: start() spawns the shard
  // workers and their pipelines (once per instance), feed() dispatches one
  // frame (single director thread; blocks while the target ring is full),
  // drain() flushes everything and joins. run() composes the three.
  Status start();
  bool feed(std::span<const u8> frame);
  ShardedResult drain();
  ShardedResult run(const std::vector<std::vector<u8>>& frames);

  // The director's dispatch decision for `frame`, exposed so tests can
  // assert flow affinity without reaching into the hash.
  std::size_t shard_for(std::span<const u8> frame) const;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t graph_count() const noexcept { return graphs_.size(); }

  // The execution mode graph g's pipelines resolved to (identical across
  // shards — every shard runs the same graph under the same options). With
  // exec_mode == kAuto in the options this reports the concrete choice.
  ExecMode exec_mode(std::size_t g = 0) const {
    return shards_.at(0).pipelines.at(g)->exec_mode();
  }

  // True once every pin attempt across shard workers and pipeline threads
  // succeeded (requires pin_threads and a started dataplane; false in
  // containers that deny sched_setaffinity).
  bool affinity_applied() const;

  // Microflow-cache telemetry, aggregated and per shard.
  u64 microflow_hits() const;
  u64 microflow_misses() const;
  u64 microflow_invalidations() const;
  u64 shard_hits(std::size_t s) const;
  u64 shard_misses(std::size_t s) const;
  // Frames the director dispatched to shard s.
  u64 shard_received(std::size_t s) const;
  // Frames shard s classified into graph g.
  u64 shard_graph_count(std::size_t s, std::size_t g) const;
  // Cumulative wall-clock ns shard s's worker spent processing bursts
  // (excludes idle polling) — the numerator of its core utilization.
  u64 shard_busy_ns(std::size_t s) const;
  // Live progress across a shard's pipelines (safe from a sampler thread).
  u64 shard_delivered(std::size_t s);
  u64 shard_dropped(std::size_t s);

  // Registers every shard pipeline's probes (tagged {"shard", "<s>"} or
  // "<s>.g<g>" with multiple graphs) plus shard-level rx/microflow/ring
  // probes and worker-stall watchdog rules. Call before start().
  void register_health(telemetry::HealthSampler& sampler,
                       telemetry::Watchdog* watchdog);

  // Shard-level cycle/contention fold for the scalability profiler: the
  // worker's buckets (classifier-miss and pipeline feed waits carved out
  // of useful), every pipeline thread's buckets, the director's waits on
  // this shard, and the pool/ring contention evidence. Scrape-time only.
  telemetry::ShardScalabilitySnapshot scalability_snapshot(std::size_t s);
  // add_shard("shard<s>", ...) for every shard. Call before start();
  // reset the profiler's baseline after start() to exclude spawn cost.
  void register_scalability(telemetry::ScalabilityProfiler& profiler);

  // Shard-level latency fold: every pipeline's stage histograms plus the
  // shard's current ring occupancies (queue_depth from the NF rings,
  // ingest_queue_depth from the director RX ring). Histograms are empty
  // unless options.pipeline.latency_sample_every > 0 — the director then
  // samples by flow hash (latency_sample_hash) and stamps origin at its
  // own feed(), so ingest covers director pool/ring + classify time.
  telemetry::ShardLatencySnapshot latency_snapshot(std::size_t s) const;
  // add_shard("shard<s>", ...) for every shard. Call before start();
  // reset the observatory's baseline after start().
  void register_latency(telemetry::LatencyObservatory& observatory);

  // Shard-level flow fold: the shard accountant's sketches + director drop
  // counters, plus every pipeline's per-reason drops folded into both the
  // per-reason totals and the per-graph accounting (with the graph's
  // total-stage latency histogram). Scrape-safe mid-run.
  telemetry::ShardFlowSnapshot flow_snapshot(std::size_t s);
  // add_shard("shard<s>", ...) for every shard. Call before start();
  // reset the observatory's baseline after start().
  void register_flows(telemetry::FlowObservatory& observatory);
  // Director-recorded drops for shard s (ring_full/pool_exhausted under
  // drop_on_ingest_backpressure, classifier_miss, shutdown_drain) — the
  // part of shard_dropped() that never reached a pipeline.
  u64 shard_director_dropped(std::size_t s) const;

 private:
  struct Shard {
    std::unique_ptr<PacketPool> ingest_pool;
    std::unique_ptr<SpscRing<Packet*>> ring;
    std::thread worker;
    std::vector<std::unique_ptr<LivePipeline>> pipelines;  // [graph]
    std::unique_ptr<MicroflowCache> cache;
    // Flow sketches + drop taxonomy; always present (drop reasons are not
    // optional), sketch recording gated by opts_.flow_accounting.
    std::unique_ptr<telemetry::ShardFlowAccountant> flows;
    // Heap-allocated (Shard lives in a vector; atomics are immovable).
    // The hot progress counters are single-writer — received by the
    // director, busy_ns/graph_counts by the shard worker — so they are
    // OwnedCounters: plain shadow bump + relaxed publish instead of a
    // lock-prefixed RMW per packet, each on its own cacheline so a scrape
    // never steals a line the writer is about to dirty. heartbeat_ns stays
    // a bare atomic: it is already a plain store per iteration.
    std::unique_ptr<telemetry::OwnedCounter> received;
    std::unique_ptr<std::atomic<u64>> heartbeat_ns;
    std::unique_ptr<telemetry::OwnedCounter> busy_ns;
    std::vector<std::unique_ptr<telemetry::OwnedCounter>> graph_counts;
    // Cycle accounting (null when pipeline.cycle_accounting is off):
    // `cycles` is written by the shard worker, `director_cycles` by the
    // director when it waits on this shard's pool/ring — separate blocks,
    // so neither thread dirties the other's line.
    std::unique_ptr<telemetry::CycleCounters> cycles;
    std::unique_ptr<telemetry::CycleCounters> director_cycles;
    std::unique_ptr<std::atomic<u64>> director_spins;
  };

  void worker_loop(std::size_t shard_idx);

  std::vector<ServiceGraph> graphs_;
  ShardedDataplaneOptions opts_;
  LiveClassificationTable ct_;
  std::vector<Shard> shards_;

  enum class RunState : int { kNew = 0, kRunning = 1, kFinished = 2 };
  std::atomic<RunState> state_{RunState::kNew};
  std::atomic<bool> ingest_stop_{false};
  std::atomic<u64> affinity_attempts_{0};
  std::atomic<u64> affinity_ok_{0};
};

}  // namespace nfp

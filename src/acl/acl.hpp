// Access control list: first-match rule evaluation over the 5-tuple.
//
// Substrate for the Firewall NF (paper §6.1: "passes or drops packets
// according to the Access Control List (ACL) containing 100 rules",
// similar to the Click IPFilter element).
#pragma once

#include <optional>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace nfp {

enum class AclAction : u8 { kPass, kDrop };

struct AclRule {
  u32 src_prefix = 0;
  u8 src_prefix_len = 0;  // 0 = any
  u32 dst_prefix = 0;
  u8 dst_prefix_len = 0;
  u16 src_port_lo = 0;
  u16 src_port_hi = 0xffff;
  u16 dst_port_lo = 0;
  u16 dst_port_hi = 0xffff;
  std::optional<u8> proto;  // nullopt = any
  AclAction action = AclAction::kPass;

  bool matches(const FiveTuple& t) const noexcept;
};

class AclTable {
 public:
  AclTable() = default;
  explicit AclTable(std::vector<AclRule> rules, AclAction default_action)
      : rules_(std::move(rules)), default_action_(default_action) {}

  void add(AclRule rule) { rules_.push_back(rule); }
  void set_default_action(AclAction action) { default_action_ = action; }

  // First matching rule wins; the default action applies otherwise.
  AclAction evaluate(const FiveTuple& t) const noexcept;

  std::size_t size() const noexcept { return rules_.size(); }

  // Deterministic synthetic ACL in the spirit of the paper's evaluation:
  // `count` rules, a `drop_fraction` of which drop, default pass.
  static AclTable with_synthetic_rules(std::size_t count,
                                       double drop_fraction = 0.5,
                                       u64 seed = 2);

 private:
  std::vector<AclRule> rules_;
  AclAction default_action_ = AclAction::kPass;
};

}  // namespace nfp

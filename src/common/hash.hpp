// Small non-cryptographic hashes used for flow classification and the
// merger agent's PID-based load balancing (§5.3 of the paper).
#pragma once

#include <cstring>
#include <span>
#include <string_view>

#include "common/types.hpp"

namespace nfp {

// 64-bit FNV-1a over arbitrary bytes.
constexpr u64 fnv1a64(std::span<const u8> bytes) noexcept {
  u64 h = 0xcbf29ce484222325ULL;
  for (u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr u64 fnv1a64(std::string_view s) noexcept {
  u64 h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Stafford mix13 finalizer: turns a counter-like value (e.g. a packet ID)
// into a well-distributed hash. Used by the merger agent so consecutive PIDs
// spread evenly across merger instances.
constexpr u64 mix64(u64 x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Hash of an IPv4 5-tuple; the canonical key for per-flow state (monitor
// counters, ECMP load balancing, classification).
struct FiveTuple {
  u32 src_ip = 0;
  u32 dst_ip = 0;
  u16 src_port = 0;
  u16 dst_port = 0;
  u8 proto = 0;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
};

constexpr u64 hash_five_tuple(const FiveTuple& t) noexcept {
  u64 a = (static_cast<u64>(t.src_ip) << 32) | t.dst_ip;
  u64 b = (static_cast<u64>(t.src_port) << 24) |
          (static_cast<u64>(t.dst_port) << 8) | t.proto;
  return mix64(a ^ mix64(b));
}

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(hash_five_tuple(t));
  }
};

// A parsed-and-hashed flow identity, computed exactly once per frame (the
// sharded director's parse_five_tuple + hash_five_tuple) and carried on the
// packet so every later hop — shard selection, latency sampling,
// classification, heavy-hitter accounting, drop exemplars — reuses it
// instead of re-deriving it. `valid` is false for frames that are not
// IPv4/TCP/UDP; those hash the default tuple (one "anonymous" flow).
struct FlowRef {
  FiveTuple tuple{};
  u64 hash = hash_five_tuple(FiveTuple{});
  bool valid = false;
};

}  // namespace nfp

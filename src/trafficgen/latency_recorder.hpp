// Latency and throughput accounting for benches and tests.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace nfp {

class LatencyRecorder {
 public:
  void record(SimTime inject_ns, SimTime out_ns) {
    samples_.push_back(out_ns - inject_ns);
    if (first_out_ == 0 || out_ns < first_out_) first_out_ = out_ns;
    if (out_ns > last_out_) last_out_ = out_ns;
  }

  std::size_t count() const noexcept { return samples_.size(); }

  double mean_us() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (const SimTime s : samples_) sum += static_cast<double>(s);
    return sum / static_cast<double>(samples_.size()) / 1e3;
  }

  double percentile_us(double p) const {
    if (samples_.empty()) return 0;
    std::vector<SimTime> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return static_cast<double>(sorted[idx]) / 1e3;
  }
  double median_us() const { return percentile_us(0.5); }
  double p99_us() const { return percentile_us(0.99); }

  double max_us() const {
    if (samples_.empty()) return 0;
    return static_cast<double>(
               *std::max_element(samples_.begin(), samples_.end())) /
           1e3;
  }

  // Egress rate over the output interval, in Mpps.
  double rate_mpps() const {
    if (samples_.size() < 2 || last_out_ <= first_out_) return 0;
    return static_cast<double>(samples_.size() - 1) /
           (static_cast<double>(last_out_ - first_out_) / 1e3) ;
  }

 private:
  std::vector<SimTime> samples_;
  SimTime first_out_ = 0;
  SimTime last_out_ = 0;
};

}  // namespace nfp

#include "actions/action_table.hpp"

#include <stdexcept>

namespace nfp {

void ActionTable::register_nf(std::string name, ActionProfile profile,
                              double deployment_share) {
  auto [it, inserted] = types_.try_emplace(name);
  it->second = NfTypeInfo{name, std::move(profile), deployment_share};
  if (inserted) order_.push_back(name);
}

bool ActionTable::contains(const std::string& name) const {
  return types_.contains(name);
}

const NfTypeInfo* ActionTable::find(const std::string& name) const {
  const auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

const ActionProfile& ActionTable::profile(const std::string& name) const {
  const NfTypeInfo* info = find(name);
  if (info == nullptr) {
    throw std::out_of_range("ActionTable: unknown NF type '" + name + "'");
  }
  return info->profile;
}

std::vector<const NfTypeInfo*> ActionTable::all() const {
  std::vector<const NfTypeInfo*> out;
  out.reserve(order_.size());
  for (const auto& name : order_) out.push_back(&types_.at(name));
  return out;
}

ActionTable ActionTable::with_builtin_nfs() {
  // Paper Table 2. Cells the text dump renders ambiguously are reconstructed
  // (see DESIGN.md §4) and marked below.
  ActionTable at;

  {  // Firewall (iptables, 26%): reads the 5-tuple, may drop.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_drop();
    at.register_nf("firewall", p, 0.26);
  }
  {  // NIDS (NIDS cluster, 20%): reads 5-tuple + payload; detection only.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kPayload);
    at.register_nf("nids", p, 0.20);
  }
  {  // Gateway (Cisco MGX, 19%): reads src/dst addresses.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    at.register_nf("gateway", p, 0.19);
  }
  {  // Load Balancer (F5/A10, 10%): rewrites addresses, reads ports.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_write(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_write(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    at.register_nf("lb", p, 0.10);
  }
  {  // Caching (nginx, 10%). Reconstructed cells: reads dst address, dst
     // port and payload (cache key + content).
    ActionProfile p;
    p.add_read(Field::kDstIp);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kPayload);
    at.register_nf("caching", p, 0.10);
  }
  {  // VPN (OpenVPN, 7%): reads addresses, encrypts payload, adds AH.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kPayload);
    p.add_write(Field::kPayload);
    p.add_add_rm(Field::kAhHeader);
    at.register_nf("vpn", p, 0.07);
  }
  {  // NAT (iptables): rewrites the whole 5-tuple (no deployment share).
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_write(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_write(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_write(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_write(Field::kDstPort);
    at.register_nf("nat", p, 0.0);
  }
  {  // Proxy (squid): rewrites src/dst addresses. Reconstructed cells.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_write(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_write(Field::kDstIp);
    at.register_nf("proxy", p, 0.0);
  }
  {  // Compression (Cisco IOS): rewrites the payload.
    ActionProfile p;
    p.add_read(Field::kPayload);
    p.add_write(Field::kPayload);
    at.register_nf("compression", p, 0.0);
  }
  {  // Traffic shaper (linux tc): delays packets; touches nothing.
    at.register_nf("shaper", ActionProfile{}, 0.0);
  }
  {  // Monitor (NetFlow): reads the 5-tuple.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    at.register_nf("monitor", p, 0.0);
  }

  // Additional NFs from the paper's evaluation (§6.1) not in Table 2.
  {  // L3 forwarder: LPM lookup on the destination address.
    ActionProfile p;
    p.add_read(Field::kDstIp);
    at.register_nf("l3fwd", p, 0.0);
  }
  {  // IDS (Snort-like signature matching; same footprint as NIDS).
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kPayload);
    at.register_nf("ids", p, 0.0);
  }
  {  // IPS: IDS that can drop (used by the Priority rule example, §3).
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kPayload);
    p.add_drop();
    at.register_nf("ips", p, 0.0);
  }
  return at;
}

}  // namespace nfp

// Tests for the OpenNetVM-style and BESS-style baseline dataplanes:
// functional correctness and output equivalence with the NFP sequential
// graph of the same NFs.
#include <gtest/gtest.h>

#include <map>

#include "baseline/onv_dataplane.hpp"
#include "baseline/rtc_dataplane.hpp"
#include "dataplane/nfp_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "nfs/monitor.hpp"
#include "trafficgen/latency_recorder.hpp"
#include "trafficgen/trafficgen.hpp"

namespace nfp {
namespace {

using Outputs = std::map<SimTime, std::vector<u8>>;

template <typename Dataplane>
Outputs collect(sim::Simulator& sim, Dataplane& dp,
                const TrafficConfig& traffic) {
  Outputs out;
  dp.set_sink([&](Packet* p, SimTime) {
    out.emplace(p->inject_time(),
                std::vector<u8>(p->data(), p->data() + p->length()));
    dp.pool().release(p);
  });
  TrafficGenerator gen(sim, dp.pool(), traffic);
  gen.start([&](Packet* p) { dp.inject(p); });
  sim.run();
  return out;
}

TrafficConfig small_traffic() {
  TrafficConfig t;
  t.packets = 200;
  t.flows = 16;
  t.rate_pps = 100'000;
  t.size_model = SizeModel::kDataCenter;
  return t;
}

TEST(OnvBaseline, DeliversThroughChain) {
  sim::Simulator sim;
  baseline::OnvDataplane dp(sim, {"monitor", "lb"});
  const Outputs out = collect(sim, dp, small_traffic());
  EXPECT_EQ(out.size(), 200u);
  EXPECT_EQ(dp.stats().delivered, 200u);
  auto* mon = dynamic_cast<Monitor*>(dp.nf(0));
  ASSERT_NE(mon, nullptr);
  EXPECT_EQ(mon->total_packets(), 200u);
  EXPECT_EQ(dp.pool().in_use(), 0u);
}

TEST(OnvBaseline, DropsStopTheChain) {
  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.factory = [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kDrop);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name);
  };
  baseline::OnvDataplane dp(sim, {"firewall", "monitor"}, std::move(cfg));
  const Outputs out = collect(sim, dp, small_traffic());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dp.stats().dropped_by_nf, 200u);
  // Sequential semantics: the monitor after the dropping firewall sees none.
  auto* mon = dynamic_cast<Monitor*>(dp.nf(1));
  EXPECT_EQ(mon->total_packets(), 0u);
}

TEST(RtcBaseline, DeliversAndBalancesReplicas) {
  sim::Simulator sim;
  baseline::RtcDataplane dp(sim, {"monitor", "lb"}, 4);
  const Outputs out = collect(sim, dp, small_traffic());
  EXPECT_EQ(out.size(), 200u);
  // Several replicas saw traffic (RSS across 16 flows).
  int active = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    auto* mon = dynamic_cast<Monitor*>(dp.nf(r, 0));
    ASSERT_NE(mon, nullptr);
    if (mon->total_packets() > 0) ++active;
  }
  EXPECT_GE(active, 2);
  EXPECT_EQ(dp.pool().in_use(), 0u);
}

TEST(Baselines, OutputsMatchNfpSequentialGraph) {
  // All three systems must produce identical processed packets for the
  // same sequential chain (one RTC replica keeps state order identical).
  const std::vector<std::string> chain = {"monitor", "nat", "lb"};
  const TrafficConfig traffic = small_traffic();

  Outputs nfp_out, onv_out, rtc_out;
  {
    sim::Simulator sim;
    NfpDataplane dp(sim, ServiceGraph::sequential("s", chain));
    nfp_out = collect(sim, dp, traffic);
  }
  {
    sim::Simulator sim;
    baseline::OnvDataplane dp(sim, chain);
    onv_out = collect(sim, dp, traffic);
  }
  {
    sim::Simulator sim;
    baseline::RtcDataplane dp(sim, chain, 1);
    rtc_out = collect(sim, dp, traffic);
  }
  ASSERT_EQ(nfp_out.size(), onv_out.size());
  ASSERT_EQ(nfp_out.size(), rtc_out.size());
  for (const auto& [t, bytes] : nfp_out) {
    EXPECT_EQ(bytes, onv_out.at(t));
    EXPECT_EQ(bytes, rtc_out.at(t));
  }
}

TEST(RtcBaseline, LatencyBelowPipelinedSystems) {
  // Table 4's qualitative claim: RTC latency is far below pipelining-mode
  // latency for the same chain.
  const std::vector<std::string> chain = {"firewall", "firewall"};
  TrafficConfig traffic;
  traffic.packets = 500;
  traffic.rate_pps = 10'000;
  // Pass-all firewalls: this test measures latency, not ACL behaviour.
  const NfFactory pass_all =
      [](const StageNf&) -> std::unique_ptr<NetworkFunction> {
    AclTable acl;
    acl.set_default_action(AclAction::kPass);
    return std::make_unique<Firewall>(std::move(acl));
  };

  double rtc_mean = 0, onv_mean = 0;
  {
    sim::Simulator sim;
    DataplaneConfig cfg;
    cfg.factory = pass_all;
    baseline::RtcDataplane dp(sim, chain, 4, std::move(cfg));
    LatencyRecorder lat;
    dp.set_sink([&](Packet* p, SimTime t) {
      lat.record(p->inject_time(), t);
      dp.pool().release(p);
    });
    TrafficGenerator gen(sim, dp.pool(), traffic);
    gen.start([&](Packet* p) { dp.inject(p); });
    sim.run();
    rtc_mean = lat.mean_us();
  }
  {
    sim::Simulator sim;
    DataplaneConfig cfg;
    cfg.factory = pass_all;
    baseline::OnvDataplane dp(sim, chain, std::move(cfg));
    LatencyRecorder lat;
    dp.set_sink([&](Packet* p, SimTime t) {
      lat.record(p->inject_time(), t);
      dp.pool().release(p);
    });
    TrafficGenerator gen(sim, dp.pool(), traffic);
    gen.start([&](Packet* p) { dp.inject(p); });
    sim.run();
    onv_mean = lat.mean_us();
  }
  EXPECT_GT(rtc_mean, 0.0);
  EXPECT_LT(rtc_mean, onv_mean / 2);
}

}  // namespace
}  // namespace nfp

#include "packet/packet_pool.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "packet/headers.hpp"

namespace nfp {

void PacketPool::copy_packet_full(Packet& dst, const Packet& src) noexcept {
  std::memcpy(dst.data(), src.data(), src.length());
  dst.meta() = src.meta();
  dst.set_inject_time(src.inject_time());
  dst.lat() = src.lat();
  dst.flow() = src.flow();
}

void PacketPool::copy_packet_header_only(Packet& dst,
                                         const Packet& src) noexcept {
  const std::size_t copy_len = std::min(src.length(), kHeaderCopyBytes);
  std::memcpy(dst.data(), src.data(), copy_len);
  dst.meta() = src.meta();
  dst.set_inject_time(src.inject_time());
  dst.lat() = src.lat();
  dst.flow() = src.flow();

  // Fix up the copied IP total-length so the truncated copy is a valid
  // packet from the parallel NF's point of view (§5.2 "copy" action).
  if (copy_len >= kEthHeaderLen + kIpv4HeaderLen) {
    Ipv4View ip(dst.data() + kEthHeaderLen);
    if (ip.version() == 4) {
      const std::size_t ip_bytes = copy_len - kEthHeaderLen;
      ip.set_total_length(static_cast<u16>(ip_bytes));
    }
  }
}

Packet* PacketPool::clone_header_only(const Packet& src) noexcept {
  const std::size_t copy_len = std::min(src.length(), kHeaderCopyBytes);
  Packet* dst = alloc(copy_len);
  if (dst == nullptr) return nullptr;
  copy_packet_header_only(*dst, src);
  return dst;
}

void PacketPool::note_underflow(u32 slot) noexcept {
  if (underflow_total_.fetch_add(1, std::memory_order_relaxed) == 0) {
    log_error("PacketPool: refcount underflow on slot ", slot,
              " (double release?) — slot withheld from the free list");
  }
}

}  // namespace nfp

#include "packet/packet_pool.hpp"

#include <algorithm>

#include "packet/headers.hpp"

namespace nfp {

Packet* PacketPool::clone_header_only(const Packet& src) noexcept {
  const std::size_t copy_len = std::min(src.length(), kHeaderCopyBytes);
  Packet* dst = alloc(copy_len);
  if (dst == nullptr) return nullptr;
  std::memcpy(dst->data(), src.data(), copy_len);
  dst->meta() = src.meta();
  dst->set_inject_time(src.inject_time());

  // Fix up the copied IP total-length so the truncated copy is a valid
  // packet from the parallel NF's point of view (§5.2 "copy" action).
  if (copy_len >= kEthHeaderLen + kIpv4HeaderLen) {
    Ipv4View ip(dst->data() + kEthHeaderLen);
    if (ip.version() == 4) {
      const std::size_t ip_bytes = copy_len - kEthHeaderLen;
      ip.set_total_length(static_cast<u16>(ip_bytes));
    }
  }
  return dst;
}

}  // namespace nfp

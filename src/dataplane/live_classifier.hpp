// Live multi-graph classification (paper §5.1) for the sharded dataplane.
//
// The compiler's Classification Table steers each flow into one of the
// service graphs deployed on a server. The simulated dataplane consults an
// exact-match map per packet; at live speeds that full lookup — exact rules
// first, then a priority-ordered masked-rule scan — is the expensive slow
// path, so every shard puts an exact-match *microflow cache* in front of it
// (the role OVS's EMC plays in front of its megaflow classifier): the first
// packet of a flow pays the full classification, every later packet is one
// bounded-LRU hash lookup, O(1) amortized.
//
// Concurrency: the table is shared by all shard workers. classify() and the
// rule mutators serialize on an internal mutex — acceptable because workers
// only call classify() on a microflow-cache miss. Rule mutations bump a
// version counter that shard workers poll (relaxed) once per burst; on a
// change each worker clears its own cache, so stale verdicts never outlive
// the burst that observed the bump.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "flow/flow_table.hpp"
#include "telemetry/owned_counter.hpp"

namespace nfp {

namespace telemetry {
u64 mono_now_ns() noexcept;  // health_sampler.hpp
}  // namespace telemetry

// One masked Classification Table rule (the live analogue of the compiler's
// CtEntry match spec): every enabled predicate must hold. mask == 0
// wildcards an address; the port/proto predicates are opt-in flags.
struct CtRule {
  u32 src_ip = 0;
  u32 src_mask = 0;
  u32 dst_ip = 0;
  u32 dst_mask = 0;
  u16 src_port = 0;
  bool match_src_port = false;
  u16 dst_port = 0;
  bool match_dst_port = false;
  u8 proto = 0;
  bool match_proto = false;
  int priority = 0;          // higher wins among matching rules
  std::size_t graph = 0;     // verdict: index of the service graph

  bool matches(const FiveTuple& t) const noexcept {
    if ((t.src_ip & src_mask) != (src_ip & src_mask)) return false;
    if ((t.dst_ip & dst_mask) != (dst_ip & dst_mask)) return false;
    if (match_src_port && t.src_port != src_port) return false;
    if (match_dst_port && t.dst_port != dst_port) return false;
    if (match_proto && t.proto != proto) return false;
    return true;
  }
};

class LiveClassificationTable {
 public:
  // Sentinel verdict: drop the flow at classification time (a CT drop rule
  // — the DDoS-scrubbing use in the paper's policy examples). Shard workers
  // count these under DropReason::kClassifierMiss.
  static constexpr std::size_t kDropGraph = static_cast<std::size_t>(-1);

  explicit LiveClassificationTable(std::size_t graph_count = 1)
      : graph_count_(graph_count == 0 ? 1 : graph_count) {}

  // Exact 5-tuple rule (mirrors NfpDataplane::add_flow_rule). Out-of-range
  // graph indices clamp to graph 0, matching the "unmatched flows take
  // graph 0" default.
  void add_exact(const FiveTuple& flow, std::size_t graph);
  // Masked rule; matched after the exact rules, highest priority first.
  void add_rule(CtRule rule);

  // Full classification: exact match, then best masked rule, else graph 0.
  std::size_t classify(const FiveTuple& flow) const;

  std::size_t graph_count() const noexcept { return graph_count_; }
  std::size_t exact_entries() const;
  std::size_t rule_entries() const;

  // Monotone generation stamp; bumped by every rule mutation. Shard workers
  // compare it (relaxed) against their cache's stamp once per burst and
  // clear the cache on mismatch.
  u64 version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

 private:
  std::size_t clamp_graph(std::size_t g) const noexcept {
    if (g == kDropGraph) return g;  // the drop verdict survives clamping
    return g < graph_count_ ? g : 0;
  }

  const std::size_t graph_count_;
  // The table is the one structure every shard touches: version_ is polled
  // (relaxed) once per burst by every worker, and mu_ is locked by every
  // microflow miss. Each gets its own cacheline so a miss-path lock on one
  // shard does not invalidate the version poll line of all the others —
  // exactly the cross-shard bouncing ROADMAP item 2 names.
  alignas(kCacheLineSize) mutable std::mutex mu_;
  std::unordered_map<FiveTuple, std::size_t, FiveTupleHash> exact_;
  std::vector<CtRule> rules_;  // kept sorted by descending priority
  alignas(kCacheLineSize) std::atomic<u64> version_{0};
};

// Per-shard exact-match microflow cache over the CT verdict. Owned and
// touched by exactly one shard worker; the hit/miss counters are
// single-writer OwnedCounters — the worker bumps a plain shadow and
// publishes with one relaxed store, so the per-packet hit path carries no
// lock-prefixed RMW and each counter sits on its own cacheline, private to
// the shard until a telemetry scrape folds it.
class MicroflowCache {
 public:
  explicit MicroflowCache(const LiveClassificationTable& ct,
                          std::size_t capacity)
      : ct_(ct), table_(capacity == 0 ? 1 : capacity) {}

  // Classifies through the cache; O(1) amortized per packet.
  std::size_t classify(const FiveTuple& flow) {
    const std::size_t* cached = table_.peek(flow);
    if (cached != nullptr) {
      hits_.increment();
      // Refresh LRU position without a second hash walk being observable to
      // callers; get_or_create on a present key is the splice-only path.
      return table_.get_or_create(flow);
    }
    misses_.increment();
    // The miss path crosses into the mutex-guarded shared CT — the slow
    // path whose latency the scalability profiler attributes. Misses are
    // rare (first packet of a flow / post-invalidation), so two clock
    // reads here cost nothing on the steady-state path.
    const u64 t0 = telemetry::mono_now_ns();
    const std::size_t verdict = ct_.classify(flow);
    miss_ns_.add(telemetry::mono_now_ns() - t0);
    table_.get_or_create(flow) = verdict;
    return verdict;
  }

  // Drops every cached verdict when the CT generation moved (rule change);
  // call once per burst, before classifying it.
  void sync_generation() {
    const u64 v = ct_.version();
    if (v != seen_version_) {
      table_.clear();
      invalidations_.increment();
      seen_version_ = v;
    }
  }

  u64 hits() const noexcept { return hits_.read(); }
  u64 misses() const noexcept { return misses_.read(); }
  // Cumulative wall time the owning worker spent inside CT lookups on the
  // miss path (lock wait + rule scan).
  u64 miss_ns() const noexcept { return miss_ns_.read(); }
  u64 invalidations() const noexcept { return invalidations_.read(); }
  u64 evictions() const noexcept { return table_.evictions(); }
  std::size_t size() const noexcept { return table_.size(); }
  std::size_t capacity() const noexcept { return table_.capacity(); }

 private:
  const LiveClassificationTable& ct_;
  FlowTable<std::size_t> table_;
  u64 seen_version_ = 0;
  // Worker-written, scrape-read; each on its own line (OwnedCounter is
  // alignas(kCacheLineSize)) so a sampler read pulls one counter's line
  // instead of stealing the FlowTable's LRU bookkeeping from the worker.
  // invalidations_ included: it was previously a plain u64 read racily by
  // sampler probes.
  telemetry::OwnedCounter hits_;
  telemetry::OwnedCounter misses_;
  telemetry::OwnedCounter miss_ns_;
  telemetry::OwnedCounter invalidations_;
};

// Parses the IPv4 5-tuple out of a raw Ethernet frame (the director needs
// it before any Packet object exists). Returns nullopt for frames that are
// not IPv4/TCP/UDP — callers treat those as one anonymous flow.
std::optional<FiveTuple> parse_five_tuple(std::span<const u8> frame) noexcept;

}  // namespace nfp

# Empty dependencies file for bench_fig15_openbox.
# This may be replaced when dependencies are built.

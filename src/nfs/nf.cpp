#include "nfs/nf.hpp"

#include "nfs/firewall.hpp"
#include "nfs/ids.hpp"
#include "nfs/l3_forwarder.hpp"
#include "nfs/load_balancer.hpp"
#include "nfs/misc_nfs.hpp"
#include "nfs/monitor.hpp"
#include "nfs/nat.hpp"
#include "nfs/vpn.hpp"

namespace nfp {

std::unique_ptr<NetworkFunction> make_builtin_nf(std::string_view type_name,
                                                 u64 seed) {
  if (type_name == "l3fwd") {
    return std::make_unique<L3Forwarder>(
        L3Forwarder::with_synthetic_routes(1000, seed));
  }
  if (type_name == "lb") {
    return std::make_unique<LoadBalancer>(LoadBalancer::with_backends(8));
  }
  if (type_name == "firewall") {
    return std::make_unique<Firewall>(
        Firewall::with_synthetic_rules(100, seed));
  }
  if (type_name == "ids" || type_name == "nids") {
    return std::make_unique<Ids>(Ids::synthetic_signatures(100, seed));
  }
  if (type_name == "ips") {
    return std::make_unique<Ips>(Ids::synthetic_signatures(100, seed));
  }
  if (type_name == "vpn") return std::make_unique<Vpn>();
  if (type_name == "vpn_decrypt") return std::make_unique<VpnDecrypt>();
  if (type_name == "monitor") return std::make_unique<Monitor>();
  if (type_name == "nat") return std::make_unique<Nat>();
  if (type_name == "gateway") return std::make_unique<Gateway>();
  if (type_name == "caching") return std::make_unique<Caching>();
  if (type_name == "proxy") return std::make_unique<Proxy>();
  if (type_name == "compression") return std::make_unique<Compression>();
  if (type_name == "shaper") return std::make_unique<TrafficShaper>();
  if (type_name == "delaynf") return std::make_unique<DelayNf>(300);
  return nullptr;
}

}  // namespace nfp

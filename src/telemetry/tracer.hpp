// Per-packet trace spans.
//
// An opt-in Tracer records span events (classify, copy, nf-enter/exit,
// merger-arrival, merge-complete, output, drop) with simulated timestamps
// and the packet's PID, so a single packet's journey through a parallel
// segment can be reconstructed and printed as a timeline. Retention is a
// fixed ring buffer (old events are overwritten) and sampling is
// deterministic: "trace every Nth packet" keyed on the PID, so repeated
// runs trace the same packets.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nfp::telemetry {

enum class SpanKind : u8 {
  kInject,
  kClassify,
  kCopy,
  kNfEnter,
  kNfExit,
  kMergerArrival,
  kMergeComplete,
  kOutput,
  kDrop,
};

std::string_view span_kind_name(SpanKind kind) noexcept;

struct SpanEvent {
  u64 pid = 0;
  SpanKind kind = SpanKind::kInject;
  SimTime at = 0;          // simulated time the event was recorded
  u8 version = 1;          // packet version the event applies to
  std::string component;   // e.g. "classifier", "nf:firewall#1", "merger#0"
};

class Tracer {
 public:
  // Traces packets whose PID is a multiple of `every` (0 disables tracing
  // entirely); keeps the most recent `capacity` events.
  explicit Tracer(u64 every = 1, std::size_t capacity = 8192)
      : every_(every), capacity_(capacity == 0 ? 1 : capacity) {}

  u64 every() const noexcept { return every_; }
  std::size_t capacity() const noexcept { return capacity_; }

  // Deterministic sampling decision; callers gate both the event recording
  // and any string formatting on this so unsampled packets cost one branch.
  bool sampled(u64 pid) const noexcept {
    return every_ != 0 && pid % every_ == 0;
  }

  void record(u64 pid, SpanKind kind, SimTime at, std::string component,
              u8 version = 1);

  u64 recorded() const noexcept { return recorded_; }
  // Events evicted by the ring buffer.
  u64 evicted() const noexcept {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  // Retained events for `pid`, oldest first, sorted by timestamp.
  std::vector<SpanEvent> events_for(u64 pid) const;

  // All retained events grouped by PID, each list time-sorted — one ring
  // scan instead of one per PID (the critical-path profiler's bulk path).
  std::map<u64, std::vector<SpanEvent>> events_by_pid() const;

  // Distinct PIDs with at least one retained event, ascending.
  std::vector<u64> pids() const;

  // Human-readable timeline for one packet: one line per span with the
  // offset from the packet's first event and the inter-span delta.
  std::string timeline(u64 pid) const;

 private:
  u64 every_;
  std::size_t capacity_;
  std::size_t head_ = 0;   // next ring slot to write
  u64 recorded_ = 0;
  std::vector<SpanEvent> ring_;
};

}  // namespace nfp::telemetry

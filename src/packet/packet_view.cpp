#include "packet/packet_view.hpp"

#include <cassert>
#include <cstring>

#include "packet/checksum.hpp"

namespace nfp {

void PacketView::parse() {
  valid_ = false;
  ah_off_.reset();
  if (pkt_->length() < kEthHeaderLen + kIpv4HeaderLen) return;

  EthView eth(pkt_->data());
  if (eth.ether_type() != kEtherTypeIpv4) return;
  l3_off_ = kEthHeaderLen;

  Ipv4View ipv4(pkt_->data() + l3_off_);
  if (ipv4.version() != 4 || ipv4.header_len() < kIpv4HeaderLen) return;

  std::size_t next_off = l3_off_ + ipv4.header_len();
  u8 proto = ipv4.protocol();

  if (proto == kProtoAh) {
    if (pkt_->length() < next_off + kAhHeaderLen) return;
    ah_off_ = next_off;
    AhView ah_view(pkt_->data() + next_off);
    proto = ah_view.next_header();
    next_off += kAhHeaderLen;
  }

  proto_ = proto;
  l4_off_ = next_off;

  std::size_t l4_len = 0;
  if (proto_ == kProtoTcp) {
    if (pkt_->length() < l4_off_ + kTcpHeaderLen) return;
    TcpView tcp(pkt_->data() + l4_off_);
    l4_len = std::size_t{tcp.data_offset()} * 4;
    if (l4_len < kTcpHeaderLen) return;
  } else if (proto_ == kProtoUdp) {
    if (pkt_->length() < l4_off_ + kUdpHeaderLen) return;
    l4_len = kUdpHeaderLen;
  } else {
    return;  // only TCP/UDP traffic is modelled
  }

  payload_off_ = l4_off_ + l4_len;
  if (payload_off_ > pkt_->length()) return;
  valid_ = true;
}

void PacketView::resize_payload(std::size_t new_len) {
  record_write(Field::kPayload);
  assert(payload_off_ + new_len <= Packet::kMaxDataLen);
  pkt_->set_length(payload_off_ + new_len);
  Ipv4View ipv4 = ip();
  ipv4.set_total_length(static_cast<u16>(pkt_->length() - l3_off_));
  if (proto_ == kProtoUdp && !ah_off_) {
    UdpView udp(pkt_->data() + l4_off_);
    udp.set_length(static_cast<u16>(kUdpHeaderLen + new_len));
  }
}

AhView PacketView::add_ah_header(u32 spi, u32 sequence) {
  assert(valid_ && !ah_off_);
  record_add_remove(Field::kAhHeader);

  Ipv4View ipv4 = ip();
  const u8 inner_proto = ipv4.protocol();
  const std::size_t insert_at = l3_off_ + ipv4.header_len();

  u8* ah_bytes = pkt_->insert(insert_at, kAhHeaderLen);
  std::memset(ah_bytes, 0, kAhHeaderLen);

  // insert() shifted everything before insert_at; re-establish views.
  Ipv4View new_ip(pkt_->data() + l3_off_);
  new_ip.set_protocol(kProtoAh);
  new_ip.set_total_length(static_cast<u16>(pkt_->length() - l3_off_));

  AhView ah_view(ah_bytes);
  ah_view.set_next_header(inner_proto);
  // AH payload length is in 32-bit words minus 2 (RFC 4302).
  ah_view.set_payload_len(static_cast<u8>(kAhHeaderLen / 4 - 2));
  ah_view.set_spi(spi);
  ah_view.set_sequence(sequence);

  parse();
  return AhView(pkt_->data() + *ah_off_);
}

void PacketView::remove_ah_header() {
  assert(valid_ && ah_off_);
  record_add_remove(Field::kAhHeader);

  AhView ah_view(pkt_->data() + *ah_off_);
  const u8 inner_proto = ah_view.next_header();
  const std::size_t remove_at = *ah_off_;

  pkt_->erase(remove_at, kAhHeaderLen);

  Ipv4View new_ip(pkt_->data() + l3_off_);
  new_ip.set_protocol(inner_proto);
  new_ip.set_total_length(static_cast<u16>(pkt_->length() - l3_off_));

  parse();
}

void PacketView::update_checksums(bool include_l4) {
  record_write(Field::kChecksum);
  Ipv4View ipv4 = ip();
  ipv4.set_checksum(0);
  const std::span<const u8> ip_hdr{pkt_->data() + l3_off_, ipv4.header_len()};
  ipv4.set_checksum(ipv4_checksum(ip_hdr));

  if (!include_l4 || !valid_) return;
  const std::size_t l4_len = pkt_->length() - l4_off_;
  if (proto_ == kProtoTcp) {
    TcpView tcp(pkt_->data() + l4_off_);
    tcp.set_checksum(0);
    tcp.set_checksum(l4_checksum(ipv4.src_ip(), ipv4.dst_ip(), kProtoTcp,
                                 {pkt_->data() + l4_off_, l4_len}));
  } else if (proto_ == kProtoUdp) {
    UdpView udp(pkt_->data() + l4_off_);
    udp.set_checksum(0);
    udp.set_checksum(l4_checksum(ipv4.src_ip(), ipv4.dst_ip(), kProtoUdp,
                                 {pkt_->data() + l4_off_, l4_len}));
  }
}

bool PacketView::verify_ip_checksum() const {
  Ipv4View ipv4 = ip();
  const std::span<const u8> ip_hdr{pkt_->data() + l3_off_, ipv4.header_len()};
  return checksum_fold(ip_hdr) == 0xffff;
}

}  // namespace nfp

// Tests for the fused run-to-completion executor: output equivalence with
// the pipelined path (delivered multisets and drop-reason totals), the
// auto-mode resolution rule, the latency-telescoping contract with fused
// merges (merge_wait stays empty), and a 2-shard sharded run under
// concurrent telemetry scrapes (the TSan workload).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "dataplane/live_pipeline.hpp"
#include "dataplane/sharded_dataplane.hpp"
#include "graph/service_graph.hpp"
#include "nfs/firewall.hpp"
#include "orch/compiler.hpp"
#include "packet/builder.hpp"
#include "policy/policy.hpp"
#include "telemetry/latency_observatory.hpp"
#include "telemetry/scalability_profiler.hpp"

namespace nfp {
namespace {

ServiceGraph compile_chain(const std::vector<std::string>& chain) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto g = compile_policy(Policy::from_sequential_chain("rtc", chain), table);
  EXPECT_TRUE(g.is_ok()) << g.error();
  return std::move(g).take();
}

std::vector<std::vector<u8>> make_frames(std::size_t count,
                                         std::size_t flows = 13) {
  PacketPool pool(4);
  std::vector<std::vector<u8>> frames;
  for (std::size_t i = 0; i < count; ++i) {
    PacketSpec spec;
    spec.tuple = FiveTuple{0x0A500000 + static_cast<u32>(i % flows),
                           0x0A800001, static_cast<u16>(7'000 + i % flows),
                           443, kProtoTcp};
    spec.frame_size = 64 + (i % 5) * 100;
    Packet* p = build_packet(pool, spec);
    frames.emplace_back(p->data(), p->data() + p->length());
    pool.release(p);
  }
  return frames;
}

// Same hand-built 1 + 4 + 1 tree as live_pipeline_test: a parallel stage
// spanning two packet versions with kModify merge ops — the shape that
// exercises fanout copies, inline merge and merge-op application in the
// fused path.
ServiceGraph make_tree_graph() {
  ServiceGraph g("tree");
  Segment pre;
  pre.nfs.push_back({"monitor", 0, 1, 0, false});
  pre.mid = 1;
  g.segments().push_back(std::move(pre));

  Segment par;
  par.nfs.push_back({"ids", 1, 1, 0, false});
  par.nfs.push_back({"monitor", 2, 1, 0, false});
  par.nfs.push_back({"lb", 3, 2, 1, false});
  par.nfs.push_back({"monitor", 4, 1, 0, false});
  par.num_versions = 2;
  par.merge.total_count = 4;
  par.merge.ops.push_back({MergeOp::Kind::kModify, 2, Field::kSrcIp});
  par.merge.ops.push_back({MergeOp::Kind::kModify, 2, Field::kDstIp});
  par.mid = 2;
  g.segments().push_back(std::move(par));

  Segment post;
  post.nfs.push_back({"monitor", 5, 1, 0, false});
  post.mid = 3;
  g.segments().push_back(std::move(post));
  return g;
}

// Runs the same graph + frames under both execution modes and asserts the
// delivered multisets and per-reason drop totals are identical.
void check_mode_equivalence(
    const ServiceGraph& graph, const std::vector<std::vector<u8>>& frames,
    const std::function<std::unique_ptr<NetworkFunction>(const StageNf&)>&
        factory = {}) {
  LivePipelineOptions rtc_opts;
  rtc_opts.exec_mode = ExecMode::kRtc;
  LivePipeline rtc(ServiceGraph(graph), factory, rtc_opts);
  ASSERT_EQ(rtc.exec_mode(), ExecMode::kRtc);
  LiveResult rtc_result = rtc.run(frames);

  LivePipelineOptions piped_opts;
  piped_opts.exec_mode = ExecMode::kPipelined;
  LivePipeline piped(ServiceGraph(graph), factory, piped_opts);
  ASSERT_EQ(piped.exec_mode(), ExecMode::kPipelined);
  LiveResult piped_result = piped.run(frames);

  EXPECT_TRUE(rtc_result.status.is_ok());
  EXPECT_TRUE(piped_result.status.is_ok());
  EXPECT_EQ(rtc_result.dropped, piped_result.dropped);
  for (std::size_t r = 0; r < telemetry::kDropReasonCount; ++r) {
    const auto reason = static_cast<telemetry::DropReason>(r);
    EXPECT_EQ(rtc.dropped_by(reason), piped.dropped_by(reason))
        << telemetry::drop_reason_name(reason);
  }
  ASSERT_EQ(rtc_result.outputs.size(), piped_result.outputs.size());
  // The pipelined path may reorder across flows; compare as multisets.
  std::sort(rtc_result.outputs.begin(), rtc_result.outputs.end());
  std::sort(piped_result.outputs.begin(), piped_result.outputs.end());
  EXPECT_EQ(rtc_result.outputs, piped_result.outputs);
}

TEST(RtcExecutor, TreeGraphMatchesPipelinedMultiset) {
  check_mode_equivalence(make_tree_graph(), make_frames(200));
}

TEST(RtcExecutor, VpnChainMatchesPipelined) {
  check_mode_equivalence(
      ServiceGraph::sequential("chain", {"vpn", "monitor", "lb"}),
      make_frames(150));
}

TEST(RtcExecutor, DropReasonTotalsMatchPipelined) {
  // Firewall drops everything inside a compiled parallel stage: the fused
  // merge's drop resolution must tag the same kNfVerdict totals as the
  // merger thread's.
  const auto factory =
      [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kDrop);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name);
  };
  check_mode_equivalence(compile_chain({"monitor", "firewall"}),
                         make_frames(120), factory);
}

TEST(RtcExecutor, AutoModeFusesSequentialGraphsOnly) {
  const auto frames = make_frames(16);

  // Sequential chain: rings would only add hand-off cost — auto fuses.
  LivePipelineOptions auto_opts;
  auto_opts.exec_mode = ExecMode::kAuto;
  LivePipeline seq(ServiceGraph::sequential("s", {"monitor", "lb"}), {},
                   auto_opts);
  EXPECT_EQ(seq.exec_mode(), ExecMode::kRtc);
  EXPECT_EQ(seq.run(frames).outputs.size(), frames.size());

  // Parallel graph: cross-thread execution is the paper's mechanism — auto
  // keeps it pipelined.
  LivePipeline par(compile_chain({"ids", "monitor", "lb"}), {}, auto_opts);
  EXPECT_EQ(par.exec_mode(), ExecMode::kPipelined);
  EXPECT_EQ(par.run(frames).outputs.size(), frames.size());

  // Explicit rtc fuses parallel stages too.
  LivePipelineOptions rtc_opts;
  rtc_opts.exec_mode = ExecMode::kRtc;
  LivePipeline fused(compile_chain({"ids", "monitor", "lb"}), {}, rtc_opts);
  EXPECT_EQ(fused.exec_mode(), ExecMode::kRtc);
  EXPECT_EQ(fused.run(frames).outputs.size(), frames.size());

  // compat reproduces the pre-batching pipelined path; it pins the mode.
  LivePipelineOptions compat;
  compat.exec_mode = ExecMode::kRtc;
  compat.per_packet_compat = true;
  LivePipeline pinned(ServiceGraph::sequential("s", {"monitor"}), {}, compat);
  EXPECT_EQ(pinned.exec_mode(), ExecMode::kPipelined);

  EXPECT_NE(parse_exec_mode("rtc"), std::nullopt);
  EXPECT_EQ(parse_exec_mode("bogus"), std::nullopt);
  EXPECT_STREQ(exec_mode_name(ExecMode::kRtc), "rtc");
}

// --- sharded runs --------------------------------------------------------

std::vector<std::vector<u8>> make_flow_frames(std::size_t count,
                                              std::size_t flows) {
  return make_frames(count, flows);
}

void wait_until_done(ShardedDataplane& dp, std::size_t expected) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  u64 done = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    done = 0;
    for (std::size_t s = 0; s < dp.shard_count(); ++s) {
      done += dp.shard_delivered(s) + dp.shard_dropped(s);
    }
    if (done >= expected) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "dataplane stuck: " << done << "/" << expected << " frames";
}

// The TSan workload: two RTC shards (fused parallel graph — every worker
// runs the whole graph inline) while a scrape thread hammers the profiler
// and observatory folds. Every telemetry cell the scraper touches is
// written concurrently by the workers.
TEST(RtcExecutor, TwoShardRunSurvivesConcurrentScrapes) {
  const std::size_t kPackets = 4'000;
  const auto frames = make_flow_frames(kPackets, 32);
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  opts.pipeline.exec_mode = ExecMode::kRtc;
  opts.pipeline.latency_sample_every = 1;
  ShardedDataplane dp({compile_chain({"ids", "monitor", "lb"})}, {}, opts);
  ASSERT_EQ(dp.exec_mode(), ExecMode::kRtc);

  telemetry::ScalabilityProfilerOptions popt;
  popt.enable_hw = false;
  telemetry::ScalabilityProfiler prof(popt);
  dp.register_scalability(prof);
  telemetry::LatencyObservatory::Options lopt;
  lopt.sample_every = 1;
  telemetry::LatencyObservatory obs(lopt);
  dp.register_latency(obs);

  ASSERT_TRUE(dp.start().is_ok());
  prof.reset_baseline();
  obs.reset_baseline();

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    u64 scrapes = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const telemetry::ScalabilityReport srep = prof.report();
      EXPECT_EQ(srep.shards.size(), 2u);
      const telemetry::LatencyReport lrep = obs.report();
      EXPECT_LE(lrep.sampled(), kPackets);
      ++scrapes;
    }
    EXPECT_GT(scrapes, 0u);
  });

  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, kPackets);
  stop.store(true, std::memory_order_release);
  scraper.join();

  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
  EXPECT_EQ(res.outputs.size() + res.dropped, kPackets);
}

// Telescoping in RTC mode: stage sums still add up to the end-to-end
// total, and the merge_wait stage stays EMPTY even on a parallel graph —
// a fused merge has no cross-thread wait to measure.
TEST(RtcExecutor, FusedMergeKeepsMergeWaitEmpty) {
  const std::size_t kPackets = 3'000;
  const auto frames = make_flow_frames(kPackets, 32);
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  opts.pipeline.exec_mode = ExecMode::kRtc;
  opts.pipeline.latency_sample_every = 1;
  ShardedDataplane dp(
      {ServiceGraph::parallel("par", {"monitor", "monitor", "monitor"})}, {},
      opts);
  ASSERT_EQ(dp.exec_mode(), ExecMode::kRtc);

  telemetry::LatencyObservatory::Options lopt;
  lopt.sample_every = 1;
  telemetry::LatencyObservatory obs(lopt);
  dp.register_latency(obs);
  ASSERT_TRUE(dp.start().is_ok());
  obs.reset_baseline();
  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, kPackets);
  const telemetry::LatencyReport rep = obs.report();
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
  ASSERT_EQ(res.outputs.size(), kPackets);

  using telemetry::LatencyStage;
  const telemetry::HdrSnapshot& total = rep.stage(LatencyStage::kTotal);
  ASSERT_EQ(total.count(), kPackets);
  for (const LatencyStage s :
       {LatencyStage::kIngest, LatencyStage::kQueue, LatencyStage::kService,
        LatencyStage::kEgress}) {
    EXPECT_EQ(rep.stage(s).count(), kPackets)
        << telemetry::latency_stage_name(s);
  }
  // No merger, no merge crossing: the stage is structurally empty.
  EXPECT_EQ(rep.stage(LatencyStage::kMergeWait).count(), 0u);
  EXPECT_EQ(rep.stage(LatencyStage::kMergeWait).sum, 0u);
  // Stage spans telescope exactly; tolerance covers clock quirks only.
  u64 stage_sum = 0;
  for (const LatencyStage s :
       {LatencyStage::kIngest, LatencyStage::kQueue, LatencyStage::kService,
        LatencyStage::kMergeWait, LatencyStage::kEgress}) {
    stage_sum += rep.stage(s).sum;
  }
  EXPECT_NEAR(static_cast<double>(stage_sum),
              static_cast<double>(total.sum),
              0.01 * static_cast<double>(total.sum) + 1.0);
}

}  // namespace
}  // namespace nfp

// Packet buffer with NFP metadata.
//
// Mirrors the DPDK mbuf + NFP metadata design of the paper (§5.1, Fig 5):
// every packet carries a 64-bit metadata word holding
//   - Match ID  (MID, 20 bits): identifies the service graph the packet
//     follows; keys the forwarding and merging tables,
//   - Packet ID (PID, 40 bits): unique per input packet; all copies of one
//     packet share the PID so the merger can accumulate them,
//   - Version   (4 bits): distinguishes copies of the same packet.
//
// Buffers live in a pre-allocated pool ("shared memory on huge pages" in the
// paper); ownership between components is transferred by reference, never by
// copying payload bytes, except where the service graph explicitly requires
// a packet copy (then Header-Only Copying applies, §4.2 OP#2).
#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <span>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "packet/headers.hpp"

namespace nfp {

class PacketPool;

// 64-bit NFP metadata word (paper Fig 5).
class Metadata {
 public:
  constexpr Metadata() = default;

  constexpr u32 mid() const noexcept { return static_cast<u32>(raw_ >> 44); }
  constexpr u64 pid() const noexcept {
    return (raw_ >> 4) & ((u64{1} << 40) - 1);
  }
  constexpr u8 version() const noexcept { return static_cast<u8>(raw_ & 0xf); }

  constexpr void set_mid(u32 mid) noexcept {
    raw_ = (raw_ & ~(u64{0xFFFFF} << 44)) |
           (static_cast<u64>(mid & 0xFFFFF) << 44);
  }
  constexpr void set_pid(u64 pid) noexcept {
    raw_ = (raw_ & ~(((u64{1} << 40) - 1) << 4)) |
           ((pid & ((u64{1} << 40) - 1)) << 4);
  }
  constexpr void set_version(u8 v) noexcept {
    raw_ = (raw_ & ~u64{0xf}) | (v & 0xf);
  }

  constexpr u64 raw() const noexcept { return raw_; }

  static constexpr u32 kMaxMid = (1u << 20) - 1;
  static constexpr u64 kMaxPid = (u64{1} << 40) - 1;
  static constexpr u8 kMaxVersion = 15;

 private:
  u64 raw_ = 0;
};

// Latency-observatory stamps carried by sampled packets (all zero — in
// particular origin_ns == 0 — on unsampled ones, so the hot path pays one
// branch). Written only by the thread that currently owns the packet
// version: parallel NFs sharing a version report their spans through the
// merge envelope instead of touching these bytes.
struct LatencyStamps {
  u64 origin_ns = 0;   // director/pipeline ingest stamp; 0 = not sampled
  u64 mark_ns = 0;     // last hop boundary (telescoping mark)
  u64 ingest_ns = 0;   // origin -> first pipeline feed
  u64 queue_ns = 0;    // accumulated ring-residency spans
  u64 service_ns = 0;  // accumulated NetworkFunction::process spans
  u64 merge_ns = 0;    // accumulated merge-wait spans
  u64 merges = 0;      // merge points traversed; 0 = purely sequential path
};

class Packet {
 public:
  static constexpr std::size_t kBufferSize = 2048;
  static constexpr std::size_t kHeadroom = 128;
  static constexpr std::size_t kMaxDataLen = kBufferSize - kHeadroom;

  Packet() = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  // --- data region ----------------------------------------------------------
  u8* data() noexcept { return buf_.data() + data_off_; }
  const u8* data() const noexcept { return buf_.data() + data_off_; }
  std::size_t length() const noexcept { return data_len_; }
  std::span<u8> bytes() noexcept { return {data(), data_len_}; }
  std::span<const u8> bytes() const noexcept { return {data(), data_len_}; }

  void reset(std::size_t len) noexcept {
    data_off_ = kHeadroom;
    data_len_ = len;
    meta_ = Metadata{};
    nil_ = false;
    inject_time_ = 0;
    lat_ = LatencyStamps{};
    flow_ = FlowRef{};
  }
  void set_length(std::size_t len) noexcept { data_len_ = len; }

  // Grows the packet at the front (header insertion); returns the new start.
  u8* prepend(std::size_t n) noexcept {
    data_off_ -= static_cast<u32>(n);
    data_len_ += n;
    return data();
  }
  // Shrinks the packet at the front (header removal).
  void trim_front(std::size_t n) noexcept {
    data_off_ += static_cast<u32>(n);
    data_len_ -= n;
  }
  std::size_t headroom() const noexcept { return data_off_; }

  // Inserts `n` bytes at `offset` from the packet start by shifting the
  // preceding bytes into headroom (cheap for header insertion near the top).
  u8* insert(std::size_t offset, std::size_t n) noexcept {
    u8* old_start = data();
    prepend(n);
    std::memmove(data(), old_start, offset);
    return data() + offset;
  }
  // Removes `n` bytes at `offset` by shifting the preceding bytes down.
  void erase(std::size_t offset, std::size_t n) noexcept {
    u8* old_start = data();
    std::memmove(old_start + n, old_start, offset);
    trim_front(n);
  }

  // --- metadata ---------------------------------------------------------------
  Metadata& meta() noexcept { return meta_; }
  const Metadata& meta() const noexcept { return meta_; }

  bool is_nil() const noexcept { return nil_; }
  void set_nil(bool v) noexcept { nil_ = v; }

  SimTime inject_time() const noexcept { return inject_time_; }
  void set_inject_time(SimTime t) noexcept { inject_time_ = t; }

  LatencyStamps& lat() noexcept { return lat_; }
  const LatencyStamps& lat() const noexcept { return lat_; }

  // Flow identity, parsed + hashed exactly once (by the sharded director or
  // the pipeline feeder) and reused by every later hop: shard-worker
  // classification, heavy-hitter keys, drop exemplars. Written only by the
  // thread that owns the packet, like LatencyStamps.
  FlowRef& flow() noexcept { return flow_; }
  const FlowRef& flow() const noexcept { return flow_; }

  // --- pool bookkeeping -------------------------------------------------------
  u32 pool_index() const noexcept { return pool_index_; }
  u32 ref_count() const noexcept {
    return refcnt_.load(std::memory_order_relaxed);
  }

 private:
  friend class PacketPool;

  alignas(kCacheLineSize) std::array<u8, kBufferSize> buf_{};
  u32 data_off_ = kHeadroom;
  u32 data_len_ = 0;
  Metadata meta_{};
  SimTime inject_time_ = 0;
  LatencyStamps lat_{};
  FlowRef flow_{};
  bool nil_ = false;
  // Atomic so parallel NFs sharing one packet version can add_ref/release
  // without a pool lock (paper §5.2 reference-counted zero-copy delivery).
  std::atomic<u32> refcnt_{0};
  u32 pool_index_ = 0;
};

}  // namespace nfp

// Tests for the service-graph representation.
#include <gtest/gtest.h>

#include "graph/service_graph.hpp"

namespace nfp {
namespace {

TEST(ServiceGraphTest, SequentialBuilder) {
  const ServiceGraph g =
      ServiceGraph::sequential("s", {"a", "b", "c"});
  EXPECT_EQ(g.equivalent_length(), 3u);
  EXPECT_EQ(g.nf_count(), 3u);
  EXPECT_TRUE(g.is_sequential());
  EXPECT_EQ(g.copies_per_packet(), 0u);
  EXPECT_EQ(g.structure(), "1+1+1");
}

TEST(ServiceGraphTest, ParallelBuilderNoCopy) {
  const ServiceGraph g = ServiceGraph::parallel("p", {"a", "b", "c"});
  EXPECT_EQ(g.equivalent_length(), 1u);
  EXPECT_FALSE(g.is_sequential());
  EXPECT_EQ(g.copies_per_packet(), 0u);
  EXPECT_EQ(g.segments()[0].merge.total_count, 3u);
  EXPECT_EQ(g.structure(), "3");
}

TEST(ServiceGraphTest, ParallelBuilderWithVersions) {
  const ServiceGraph g =
      ServiceGraph::parallel("p", {"a", "b"}, {1, 2},
                             {MergeOp{MergeOp::Kind::kModify, 2,
                                      Field::kDstIp}});
  EXPECT_EQ(g.copies_per_packet(), 1u);
  EXPECT_EQ(g.segments()[0].num_versions, 2);
  ASSERT_EQ(g.segments()[0].merge.ops.size(), 1u);
  EXPECT_EQ(g.segments()[0].merge.ops[0].src_version, 2);
}

TEST(ServiceGraphTest, FullCopyMask) {
  Segment seg;
  seg.full_copy_mask = 1u << 3;
  EXPECT_TRUE(seg.version_needs_full_copy(3));
  EXPECT_FALSE(seg.version_needs_full_copy(2));
}

TEST(ServiceGraphTest, ToStringMentionsStructure) {
  ServiceGraph g = ServiceGraph::parallel("demo", {"x", "y"}, {1, 2});
  const std::string text = g.to_string();
  EXPECT_NE(text.find("x:v1"), std::string::npos);
  EXPECT_NE(text.find("y:v2"), std::string::npos);
  EXPECT_NE(text.find("merge(2)"), std::string::npos);
}

TEST(ServiceGraphTest, MixedStructureString) {
  ServiceGraph g = ServiceGraph::sequential("m", {"head"});
  Segment par;
  par.nfs.push_back(StageNf{"a", 1, 1, 0, false});
  par.nfs.push_back(StageNf{"b", 2, 1, 0, false});
  par.merge.total_count = 2;
  g.segments().push_back(par);
  EXPECT_EQ(g.structure(), "1+2");
  EXPECT_EQ(g.equivalent_length(), 2u);
  EXPECT_EQ(g.nf_count(), 3u);
}

TEST(ServiceGraphTest, DotExportHasNodesAndMerger) {
  ServiceGraph g = ServiceGraph::sequential("d", {"vpn"});
  Segment par;
  par.nfs.push_back(StageNf{"monitor", 1, 1, 0, false});
  par.nfs.push_back(StageNf{"firewall", 2, 1, 0, true});
  par.merge.total_count = 2;
  g.segments().push_back(par);

  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("vpn_0"), std::string::npos);
  EXPECT_NE(dot.find("monitor_1"), std::string::npos);
  EXPECT_NE(dot.find("merger_1"), std::string::npos);
  EXPECT_NE(dot.find("-> output"), std::string::npos);
  // The VPN fans out to both parallel NFs.
  EXPECT_NE(dot.find("vpn_0 -> monitor_1"), std::string::npos);
  EXPECT_NE(dot.find("vpn_0 -> firewall_2"), std::string::npos);
}

}  // namespace
}  // namespace nfp

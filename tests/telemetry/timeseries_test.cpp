// Tests for the TimeseriesCollector: rate/util derivation with an
// injectable clock, bounded histories, the series cap, probes, and the
// /timeseries.json document round-tripped through the JSON parser.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "telemetry/timeseries.hpp"

namespace nfp::telemetry {
namespace {

constexpr u64 kSecond = 1'000'000'000;

TimeseriesOptions manual_clock(u64* now) {
  TimeseriesOptions opt;
  opt.clock = [now] { return *now; };
  return opt;
}

TEST(TimeseriesTest, CounterDeltasBecomeRates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("packets_delivered_total", {{"plane", "nfp"}});
  u64 now = kSecond;
  TimeseriesCollector collector(reg, manual_clock(&now));

  c.inc(100);
  collector.sample_once();  // primes the delta; no rate yet
  EXPECT_TRUE(
      collector.history("packets_delivered_total:rate", {{"plane", "nfp"}})
          .empty());

  now += 2 * kSecond;
  c.inc(50);
  collector.sample_once();
  const auto points =
      collector.history("packets_delivered_total:rate", {{"plane", "nfp"}});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].value, 25.0);  // 50 events over 2s
  EXPECT_EQ(collector.ticks(), 2u);
}

TEST(TimeseriesTest, CounterResetYieldsPostResetRate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("packets_delivered_total", {{"plane", "nfp"}});
  u64 now = kSecond;
  TimeseriesCollector collector(reg, manual_clock(&now));

  c.inc(1'000);
  collector.sample_once();  // primes the delta at 1000

  // The producer restarts and re-counts from zero: the sampled value drops
  // below the primed base. Prometheus counter-reset convention: the
  // post-reset total IS the delta — the rate must never go negative or
  // wrap to a colossal positive from the u64 subtraction.
  now += 2 * kSecond;
  c.value.store(250);
  collector.sample_once();
  const auto points =
      collector.history("packets_delivered_total:rate", {{"plane", "nfp"}});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].value, 125.0);  // 250 post-reset events / 2s
  EXPECT_GE(points[0].value, 0.0);
}

TEST(TimeseriesTest, PublishesDerivedRatesAsGauges) {
  MetricsRegistry reg;
  Counter& c = reg.counter("packets_injected_total", {});
  u64 now = kSecond;
  TimeseriesCollector collector(reg, manual_clock(&now));
  collector.publish_derived(&reg);

  c.inc(10);
  collector.sample_once();
  now += kSecond;
  c.inc(30);
  collector.sample_once();
  EXPECT_DOUBLE_EQ(reg.gauge("packets_injected_total:rate", {}).value.load(),
                   30.0);
}

TEST(TimeseriesTest, HistoriesAreBoundedByCapacity) {
  MetricsRegistry reg;
  reg.gauge("pool_in_use", {}).set(1);
  u64 now = kSecond;
  TimeseriesOptions opt = manual_clock(&now);
  opt.capacity = 2;
  TimeseriesCollector collector(reg, opt);

  for (int i = 0; i < 5; ++i) {
    reg.gauge("pool_in_use", {}).set(i);
    collector.sample_once();
    now += kSecond;
  }
  const auto points = collector.history("pool_in_use", {});
  ASSERT_EQ(points.size(), 2u);  // oldest points evicted
  EXPECT_DOUBLE_EQ(points[0].value, 3.0);
  EXPECT_DOUBLE_EQ(points[1].value, 4.0);
}

TEST(TimeseriesTest, SeriesCapCountsDrops) {
  MetricsRegistry reg;
  reg.gauge("a", {}).set(1);
  reg.gauge("b", {}).set(2);
  reg.gauge("c", {}).set(3);
  u64 now = kSecond;
  TimeseriesOptions opt = manual_clock(&now);
  opt.max_series = 1;
  TimeseriesCollector collector(reg, opt);
  collector.sample_once();

  const auto parsed = json::Value::parse(collector.to_json());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_DOUBLE_EQ(parsed.value().number_or("dropped_series", 0), 2.0);
  const json::Value* series = parsed.value().find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 1u);
}

TEST(TimeseriesTest, DerivesCoreUtilizationFromBusyAndClockGauges) {
  MetricsRegistry reg;
  const Labels busy_labels = {{"component", "nf:firewall#0"},
                              {"plane", "nfp"}};
  reg.gauge("sim_now_ns", {{"plane", "nfp"}}).set(1'000);
  reg.gauge("core_busy_ns", busy_labels).set(200);
  u64 now = kSecond;
  TimeseriesCollector collector(reg, manual_clock(&now));
  collector.sample_once();  // primes both deltas

  reg.gauge("sim_now_ns", {{"plane", "nfp"}}).set(2'000);
  reg.gauge("core_busy_ns", busy_labels).set(450);
  now += kSecond;
  collector.sample_once();

  const auto points = collector.history("core_util", busy_labels);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].value, 0.25);  // 250ns busy of 1000ns sim time
}

TEST(TimeseriesTest, CoreUtilizationClampsToOne) {
  MetricsRegistry reg;
  const Labels busy_labels = {{"component", "classifier"}};
  reg.gauge("sim_now_ns", {}).set(0);
  reg.gauge("core_busy_ns", busy_labels).set(0);
  u64 now = kSecond;
  TimeseriesCollector collector(reg, manual_clock(&now));
  collector.sample_once();

  reg.gauge("sim_now_ns", {}).set(100);
  reg.gauge("core_busy_ns", busy_labels).set(500);  // busier than elapsed
  now += kSecond;
  collector.sample_once();
  const auto points = collector.history("core_util", busy_labels);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.0);
}

TEST(TimeseriesTest, HistogramsYieldQuantileSeries) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("nf_service_ns", {{"nf", "nf:ids#0"}});
  for (u64 v = 1; v <= 100; ++v) h.record(v);
  u64 now = kSecond;
  TimeseriesCollector collector(reg, manual_clock(&now));
  collector.sample_once();

  const auto p50 =
      collector.history("nf_service_ns:p50", {{"nf", "nf:ids#0"}});
  const auto p99 =
      collector.history("nf_service_ns:p99", {{"nf", "nf:ids#0"}});
  const auto p999 =
      collector.history("nf_service_ns:p999", {{"nf", "nf:ids#0"}});
  ASSERT_EQ(p50.size(), 1u);
  ASSERT_EQ(p99.size(), 1u);
  ASSERT_EQ(p999.size(), 1u);
  EXPECT_GE(p99[0].value, p50[0].value);
  EXPECT_GE(p999[0].value, p99[0].value);
}

TEST(TimeseriesTest, ProbesSampleEachTick) {
  MetricsRegistry reg;
  u64 now = kSecond;
  TimeseriesCollector collector(reg, manual_clock(&now));
  double share = 0.25;
  collector.add_probe("merge_wait_share", {}, [&share] { return share; });

  collector.sample_once();
  share = 0.75;
  now += kSecond;
  collector.sample_once();

  const auto points = collector.history("merge_wait_share", {});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 0.25);
  EXPECT_DOUBLE_EQ(points[1].value, 0.75);
}

TEST(TimeseriesTest, ToJsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  Counter& c = reg.counter("packets_injected_total", {{"plane", "nfp"}});
  u64 now = kSecond;
  TimeseriesOptions opt = manual_clock(&now);
  opt.period_ms = 500;
  TimeseriesCollector collector(reg, opt);
  c.inc(10);
  collector.sample_once();
  now += kSecond;
  c.inc(20);
  collector.sample_once();

  const auto parsed = json::Value::parse(collector.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.error();
  const json::Value& doc = parsed.value();
  EXPECT_DOUBLE_EQ(doc.number_or("period_ms", 0), 500.0);
  EXPECT_DOUBLE_EQ(doc.number_or("ticks", 0), 2.0);
  const json::Value* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  bool found_rate = false;
  for (const json::Value& s : series->items()) {
    if (s.string_or("name", "") != "packets_injected_total:rate") continue;
    found_rate = true;
    EXPECT_EQ(s.string_or("kind", ""), "rate");
    const json::Value* labels = s.find("labels");
    ASSERT_NE(labels, nullptr);
    EXPECT_EQ(labels->string_or("plane", ""), "nfp");
    const json::Value* points = s.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->size(), 1u);
    EXPECT_DOUBLE_EQ(points->items()[0].items()[1].as_number(), 20.0);
  }
  EXPECT_TRUE(found_rate);
}

TEST(TimeseriesTest, BackgroundThreadTicksAndStops) {
  MetricsRegistry reg;
  reg.counter("ticks_total", {}).inc(1);
  TimeseriesOptions opt;
  opt.period_ms = 5;
  TimeseriesCollector collector(reg, opt);
  collector.start();
  while (collector.ticks() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  collector.stop();
  EXPECT_FALSE(collector.running());
  const u64 ticks_at_stop = collector.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_EQ(collector.ticks(), ticks_at_stop);
}

}  // namespace
}  // namespace nfp::telemetry

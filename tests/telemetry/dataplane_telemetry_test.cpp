// Integration of the telemetry layer with the dataplanes: always-on
// metrics agree with DataplaneStats, the tracer reconstructs a packet's
// journey through a parallel segment, and all three planes expose the same
// metric names for apples-to-apples comparison.
#include <gtest/gtest.h>

#include "baseline/onv_dataplane.hpp"
#include "baseline/rtc_dataplane.hpp"
#include "dataplane/nfp_dataplane.hpp"
#include "telemetry/exporters.hpp"
#include "trafficgen/trafficgen.hpp"

namespace nfp {
namespace {

using telemetry::SpanKind;

template <typename Dataplane>
void drive(sim::Simulator& sim, Dataplane& dp, TrafficConfig traffic) {
  traffic.metrics = &dp.metrics();
  TrafficGenerator gen(sim, dp.pool(), traffic);
  gen.start([&](Packet* pkt) { dp.inject(pkt); });
  sim.run();
  dp.snapshot_metrics();
}

ServiceGraph parallel_graph() {
  // Two parallel monitors (shared version) then a single lb.
  ServiceGraph g = ServiceGraph::parallel("par", {"monitor", "monitor"});
  Segment tail;
  tail.nfs.push_back(StageNf{"lb", 2, 1, 0, false});
  g.segments().push_back(std::move(tail));
  return g;
}

TEST(DataplaneTelemetry, CountersAgreeWithStats) {
  sim::Simulator sim;
  NfpDataplane dp(sim, parallel_graph());
  TrafficConfig traffic;
  traffic.packets = 150;
  drive(sim, dp, traffic);

  const DataplaneStats& stats = dp.stats();
  telemetry::MetricsRegistry& m = dp.metrics();
  EXPECT_EQ(m.counter("packets_injected_total", {{"plane", "nfp"}}).value,
            stats.injected);
  EXPECT_EQ(m.counter("packets_delivered_total", {{"plane", "nfp"}}).value,
            stats.delivered);
  EXPECT_EQ(m.counter("merges_total", {{"plane", "nfp"}}).value, stats.merges);
  EXPECT_EQ(
      m.counter("copies_total", {{"plane", "nfp"}, {"kind", "header"}}).value,
      stats.copies_header);
  EXPECT_EQ(
      m.histogram("packet_latency_ns", {{"plane", "nfp"}}).count(),
      stats.delivered);
  EXPECT_GT(m.counter("trafficgen_packets_total").value, 0u);
}

TEST(DataplaneTelemetry, PerNfServiceHistogramsSeeEveryPacket) {
  sim::Simulator sim;
  NfpDataplane dp(sim, parallel_graph());
  TrafficConfig traffic;
  traffic.packets = 100;
  drive(sim, dp, traffic);

  // Parallel stage: each of the two monitors saw all 100 packets.
  u64 nf_histograms = 0;
  for (const auto& [key, h] : dp.metrics().histograms()) {
    if (key.name != "nf_service_ns") continue;
    ++nf_histograms;
    EXPECT_EQ(h.count(), 100u) << "series " << key.labels.back().second;
    EXPECT_GT(h.max(), 0u);
  }
  EXPECT_EQ(nf_histograms, 3u);  // monitor#0, monitor#1, lb#2
}

TEST(DataplaneTelemetry, TracerReconstructsParallelSegmentJourney) {
  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.trace_every = 1;
  NfpDataplane dp(sim, parallel_graph(), cfg);
  ASSERT_NE(dp.tracer(), nullptr);
  TrafficConfig traffic;
  traffic.packets = 5;
  drive(sim, dp, traffic);

  const auto events = dp.tracer()->events_for(0);
  ASSERT_FALSE(events.empty());
  const auto count_kind = [&](SpanKind k) {
    u64 n = 0;
    for (const auto& ev : events) n += ev.kind == k ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count_kind(SpanKind::kInject), 1u);
  EXPECT_EQ(count_kind(SpanKind::kClassify), 1u);
  EXPECT_EQ(count_kind(SpanKind::kNfEnter), 3u);   // 2 parallel + 1 tail
  EXPECT_EQ(count_kind(SpanKind::kNfExit), 3u);
  EXPECT_EQ(count_kind(SpanKind::kMergerArrival), 2u);
  EXPECT_EQ(count_kind(SpanKind::kMergeComplete), 1u);
  EXPECT_EQ(count_kind(SpanKind::kOutput), 1u);
  // Chronology: inject first, output last.
  EXPECT_EQ(events.front().kind, SpanKind::kInject);
  EXPECT_EQ(events.back().kind, SpanKind::kOutput);

  const std::string timeline = dp.tracer()->timeline(0);
  EXPECT_NE(timeline.find("merger-arrival"), std::string::npos);
  EXPECT_NE(timeline.find("merge-complete"), std::string::npos);
}

TEST(DataplaneTelemetry, TraceEveryNSamplesDeterministically) {
  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.trace_every = 4;
  NfpDataplane dp(sim, ServiceGraph::sequential("seq", {"monitor"}), cfg);
  TrafficConfig traffic;
  traffic.packets = 20;
  drive(sim, dp, traffic);
  for (const u64 pid : dp.tracer()->pids()) {
    EXPECT_EQ(pid % 4, 0u) << "only every 4th PID may be traced";
  }
  EXPECT_EQ(dp.tracer()->pids().size(), 5u);  // pids 0,4,8,12,16
}

TEST(DataplaneTelemetry, TracingOffByDefaultAndMetricsStillOn) {
  sim::Simulator sim;
  NfpDataplane dp(sim, ServiceGraph::sequential("seq", {"monitor"}));
  EXPECT_EQ(dp.tracer(), nullptr);
  TrafficConfig traffic;
  traffic.packets = 10;
  drive(sim, dp, traffic);
  EXPECT_EQ(dp.metrics().counter("packets_delivered_total", {{"plane", "nfp"}})
                .value,
            10u);
}

TEST(DataplaneTelemetry, BaselinesPublishComparableSeries) {
  const std::vector<std::string> chain{"monitor", "lb"};
  TrafficConfig traffic;
  traffic.packets = 50;

  sim::Simulator s1;
  baseline::OnvDataplane onv(s1, chain);
  drive(s1, onv, traffic);
  sim::Simulator s2;
  baseline::RtcDataplane rtc(s2, chain, /*cores=*/2);
  drive(s2, rtc, traffic);

  EXPECT_EQ(
      onv.metrics().counter("packets_delivered_total", {{"plane", "onv"}})
          .value,
      50u);
  EXPECT_EQ(
      rtc.metrics().counter("packets_delivered_total", {{"plane", "rtc"}})
          .value,
      50u);
  EXPECT_EQ(
      onv.metrics().histogram("packet_latency_ns", {{"plane", "onv"}}).count(),
      50u);

  // Merged registries render one report with a section per plane.
  sim::Simulator s3;
  NfpDataplane nfp(s3, ServiceGraph::sequential("seq", chain));
  drive(s3, nfp, traffic);
  telemetry::MetricsRegistry combined = nfp.metrics();
  combined.merge(onv.metrics());
  combined.merge(rtc.metrics());
  const std::string report = telemetry::component_report(combined);
  EXPECT_NE(report.find("plane=nfp"), std::string::npos);
  EXPECT_NE(report.find("plane=onv"), std::string::npos);
  EXPECT_NE(report.find("plane=rtc"), std::string::npos);
}

TEST(DataplaneTelemetry, SnapshotPublishesUtilizationGauges) {
  sim::Simulator sim;
  NfpDataplane dp(sim, parallel_graph());
  TrafficConfig traffic;
  traffic.packets = 100;
  drive(sim, dp, traffic);

  telemetry::MetricsRegistry& m = dp.metrics();
  EXPECT_GT(m.gauge("sim_now_ns", {{"plane", "nfp"}}).value, 0.0);
  EXPECT_GT(m.gauge("core_busy_ns",
                    {{"plane", "nfp"}, {"component", "classifier"}})
                .value,
            0.0);
  // The parallel stage put at least one entry in an accumulating table.
  double at_high_water = 0;
  for (const auto& [key, g] : m.gauges()) {
    if (key.name == "merger_at_entries") {
      at_high_water = std::max(at_high_water, g.high_water.load());
    }
  }
  EXPECT_GE(at_high_water, 1.0);
  // Pool high-water: base packet + 0 copies (shared version), >= 1.
  EXPECT_GE(m.gauge("pool_in_use", {{"plane", "nfp"}}).high_water, 1.0);
  // All packets returned: current pool occupancy is zero again.
  EXPECT_EQ(m.gauge("pool_in_use", {{"plane", "nfp"}}).value, 0.0);
}

}  // namespace
}  // namespace nfp

// Live execution mode: the NFP dataplane on real OS threads.
//
// The simulated-time dataplane (NfpDataplane) is the measurement vehicle;
// this pipeline is the concurrency proof: the same compiled service graphs
// run on actual std::threads connected by the lock-free SPSC rings of
// src/ring — one thread per NF (the paper's one-container-per-core), a
// classifier thread and a merger thread — with packets really copied,
// processed and merged under true parallelism.
//
// Performance numbers from this mode are meaningless on a single-core host
// (threads time-share), so it exposes functional results only: processed
// packets out, drops, and NF state. Tests compare its output against the
// simulated dataplane's byte-for-byte.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/service_graph.hpp"
#include "nfs/nf.hpp"
#include "packet/packet_pool.hpp"
#include "ring/spsc_ring.hpp"

namespace nfp {

namespace telemetry {
class HealthSampler;
class Watchdog;
}  // namespace telemetry

struct LiveResult {
  // Delivered packets in merger-completion order, as raw frames.
  std::vector<std::vector<u8>> outputs;
  u64 dropped = 0;
};

class LivePipeline {
 public:
  // `factory` defaults to make_builtin_nf (instance id as seed).
  explicit LivePipeline(ServiceGraph graph,
                        std::function<std::unique_ptr<NetworkFunction>(
                            const StageNf&)> factory = {});
  ~LivePipeline();

  LivePipeline(const LivePipeline&) = delete;
  LivePipeline& operator=(const LivePipeline&) = delete;

  // Feeds `frames` through the graph and blocks until every packet has been
  // delivered or dropped. May be called once per pipeline.
  LiveResult run(const std::vector<std::vector<u8>>& frames);

  NetworkFunction* nf(std::size_t segment, std::size_t index) {
    return segments_.at(segment).at(index).impl.get();
  }

  // Health-instrumentation surface. Workers are indexed NFs-in-graph-order
  // first, then the merger last; all reads are safe from a sampler thread
  // while run() executes.
  std::size_t worker_count() const;
  std::string worker_name(std::size_t w) const;
  // Steady-clock ns of the worker's last loop iteration; 0 until the worker
  // starts. A worker wedged inside an NF's process() stops beating.
  u64 worker_heartbeat_ns(std::size_t w) const;
  u64 worker_packets(std::size_t w) const;
  std::size_t ring_depth_in(std::size_t w) const;   // merger: 0
  std::size_t ring_depth_out(std::size_t w) const;  // merger: 0
  std::size_t pool_in_use();
  std::size_t pool_capacity() const { return pool_.capacity(); }
  u64 dropped_so_far();
  // Registers ring/pool/heartbeat probes on `sampler` and stall / pool /
  // drop-spike rules on `watchdog` (null to skip). Call before run().
  void register_health(telemetry::HealthSampler& sampler,
                       telemetry::Watchdog* watchdog);

 private:
  // NF → merger hand-off. The drop intent travels out-of-band rather than
  // on the packet's nil bit: parallel NFs sharing one packet version would
  // otherwise race writing set_nil() on the same Packet (TSan-visible, and
  // one sender's intent could clobber another's).
  struct MergeEnvelope {
    Packet* pkt = nullptr;
    bool drop_intent = false;
  };

  struct LiveNf {
    StageNf meta;
    std::unique_ptr<NetworkFunction> impl;
    // Inbound ring; owned here, fed by the classifier/merger thread.
    std::unique_ptr<SpscRing<Packet*>> in;
    // Outbound ring to the merger; unused on sequential hops.
    std::unique_ptr<SpscRing<MergeEnvelope>> out;
    std::thread thread;
    // Heap-allocated: LiveNf is moved into segments_ and atomics can't move.
    std::unique_ptr<std::atomic<u64>> heartbeat_ns;
    std::unique_ptr<std::atomic<u64>> processed;
  };

  // Thread-safe facade over the packet pool (the pool itself is
  // single-threaded by design; live mode serializes metadata operations).
  Packet* alloc_copy(const Packet& src, bool full);
  void release(Packet* pkt);
  void add_ref(Packet* pkt);

  void nf_loop(std::size_t seg_idx, std::size_t nf_idx);
  void merger_loop();
  // Distributes a packet into segment `seg_idx`; returns false on pool
  // exhaustion (packet released, counted as drop).
  bool enter_segment(std::size_t seg_idx, Packet* pkt);

  // Resolves a worker index to its LiveNf, or nullptr for the merger slot.
  const LiveNf* worker_nf(std::size_t w) const;

  ServiceGraph graph_;
  PacketPool pool_;
  std::mutex pool_mu_;
  std::vector<std::vector<LiveNf>> segments_;
  std::thread merger_thread_;
  std::atomic<u64> merger_heartbeat_ns_{0};
  std::atomic<u64> merger_merges_{0};

  // Merger bookkeeping (single merger thread => plain maps suffice).
  struct PendingMerge {
    std::vector<std::pair<Packet*, bool>> arrivals;  // packet, drop_intent
  };

  std::atomic<bool> stop_{false};
  std::atomic<u64> in_flight_{0};
  std::mutex result_mu_;
  LiveResult result_;
};

}  // namespace nfp

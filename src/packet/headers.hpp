// Wire-format protocol headers: Ethernet, IPv4, TCP, UDP and the IPsec
// Authentication Header used by the VPN NF (paper §6.1).
//
// Headers are manipulated through offset-based views over the packet buffer
// (no casting of packed structs; keeps the code free of alignment UB and
// strict-aliasing violations).
#pragma once

#include <array>

#include "common/types.hpp"
#include "packet/endian.hpp"

namespace nfp {

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpv4HeaderLen = 20;  // no options
inline constexpr std::size_t kTcpHeaderLen = 20;   // no options
inline constexpr std::size_t kUdpHeaderLen = 8;
// AH: 2B (next hdr, len) + 2B reserved + 4B SPI + 4B seq + 12B ICV.
inline constexpr std::size_t kAhHeaderLen = 24;

inline constexpr u16 kEtherTypeIpv4 = 0x0800;
inline constexpr u8 kProtoTcp = 6;
inline constexpr u8 kProtoUdp = 17;
inline constexpr u8 kProtoAh = 51;

// --- Ethernet ---------------------------------------------------------------
class EthView {
 public:
  explicit EthView(u8* base) noexcept : p_(base) {}

  std::array<u8, 6> dst_mac() const noexcept { return mac(0); }
  std::array<u8, 6> src_mac() const noexcept { return mac(6); }
  u16 ether_type() const noexcept { return load_be16(p_ + 12); }

  void set_dst_mac(const std::array<u8, 6>& m) noexcept { set_mac(0, m); }
  void set_src_mac(const std::array<u8, 6>& m) noexcept { set_mac(6, m); }
  void set_ether_type(u16 t) noexcept { store_be16(p_ + 12, t); }

 private:
  std::array<u8, 6> mac(std::size_t off) const noexcept {
    std::array<u8, 6> m;
    for (std::size_t i = 0; i < 6; ++i) m[i] = p_[off + i];
    return m;
  }
  void set_mac(std::size_t off, const std::array<u8, 6>& m) noexcept {
    for (std::size_t i = 0; i < 6; ++i) p_[off + i] = m[i];
  }
  u8* p_;
};

// --- IPv4 -------------------------------------------------------------------
class Ipv4View {
 public:
  explicit Ipv4View(u8* base) noexcept : p_(base) {}

  u8 version() const noexcept { return p_[0] >> 4; }
  u8 ihl() const noexcept { return p_[0] & 0x0f; }
  std::size_t header_len() const noexcept { return std::size_t{ihl()} * 4; }
  u8 tos() const noexcept { return p_[1]; }
  u16 total_length() const noexcept { return load_be16(p_ + 2); }
  u16 identification() const noexcept { return load_be16(p_ + 4); }
  u16 flags_fragment() const noexcept { return load_be16(p_ + 6); }
  u8 ttl() const noexcept { return p_[8]; }
  u8 protocol() const noexcept { return p_[9]; }
  u16 checksum() const noexcept { return load_be16(p_ + 10); }
  u32 src_ip() const noexcept { return load_be32(p_ + 12); }
  u32 dst_ip() const noexcept { return load_be32(p_ + 16); }

  void set_version_ihl(u8 version, u8 ihl) noexcept {
    p_[0] = static_cast<u8>((version << 4) | (ihl & 0x0f));
  }
  void set_tos(u8 v) noexcept { p_[1] = v; }
  void set_total_length(u16 v) noexcept { store_be16(p_ + 2, v); }
  void set_identification(u16 v) noexcept { store_be16(p_ + 4, v); }
  void set_flags_fragment(u16 v) noexcept { store_be16(p_ + 6, v); }
  void set_ttl(u8 v) noexcept { p_[8] = v; }
  void set_protocol(u8 v) noexcept { p_[9] = v; }
  void set_checksum(u16 v) noexcept { store_be16(p_ + 10, v); }
  void set_src_ip(u32 v) noexcept { store_be32(p_ + 12, v); }
  void set_dst_ip(u32 v) noexcept { store_be32(p_ + 16, v); }

  const u8* data() const noexcept { return p_; }
  u8* data() noexcept { return p_; }

 private:
  u8* p_;
};

// --- TCP --------------------------------------------------------------------
class TcpView {
 public:
  explicit TcpView(u8* base) noexcept : p_(base) {}

  u16 src_port() const noexcept { return load_be16(p_); }
  u16 dst_port() const noexcept { return load_be16(p_ + 2); }
  u32 seq() const noexcept { return load_be32(p_ + 4); }
  u32 ack() const noexcept { return load_be32(p_ + 8); }
  u8 data_offset() const noexcept { return p_[12] >> 4; }
  u8 flags() const noexcept { return p_[13]; }
  u16 window() const noexcept { return load_be16(p_ + 14); }
  u16 checksum() const noexcept { return load_be16(p_ + 16); }

  void set_src_port(u16 v) noexcept { store_be16(p_, v); }
  void set_dst_port(u16 v) noexcept { store_be16(p_ + 2, v); }
  void set_seq(u32 v) noexcept { store_be32(p_ + 4, v); }
  void set_ack(u32 v) noexcept { store_be32(p_ + 8, v); }
  void set_data_offset(u8 words) noexcept {
    p_[12] = static_cast<u8>(words << 4);
  }
  void set_flags(u8 v) noexcept { p_[13] = v; }
  void set_window(u16 v) noexcept { store_be16(p_ + 14, v); }
  void set_checksum(u16 v) noexcept { store_be16(p_ + 16, v); }

 private:
  u8* p_;
};

// --- UDP --------------------------------------------------------------------
class UdpView {
 public:
  explicit UdpView(u8* base) noexcept : p_(base) {}

  u16 src_port() const noexcept { return load_be16(p_); }
  u16 dst_port() const noexcept { return load_be16(p_ + 2); }
  u16 length() const noexcept { return load_be16(p_ + 4); }
  u16 checksum() const noexcept { return load_be16(p_ + 6); }

  void set_src_port(u16 v) noexcept { store_be16(p_, v); }
  void set_dst_port(u16 v) noexcept { store_be16(p_ + 2, v); }
  void set_length(u16 v) noexcept { store_be16(p_ + 4, v); }
  void set_checksum(u16 v) noexcept { store_be16(p_ + 6, v); }

 private:
  u8* p_;
};

// --- IPsec Authentication Header ---------------------------------------------
class AhView {
 public:
  explicit AhView(u8* base) noexcept : p_(base) {}

  u8 next_header() const noexcept { return p_[0]; }
  u8 payload_len() const noexcept { return p_[1]; }
  u32 spi() const noexcept { return load_be32(p_ + 4); }
  u32 sequence() const noexcept { return load_be32(p_ + 8); }
  const u8* icv() const noexcept { return p_ + 12; }
  u8* icv() noexcept { return p_ + 12; }

  void set_next_header(u8 v) noexcept { p_[0] = v; }
  void set_payload_len(u8 v) noexcept { p_[1] = v; }
  void set_reserved(u16 v) noexcept { store_be16(p_ + 2, v); }
  void set_spi(u32 v) noexcept { store_be32(p_ + 4, v); }
  void set_sequence(u32 v) noexcept { store_be32(p_ + 8, v); }

 private:
  u8* p_;
};

}  // namespace nfp

// Minimal leveled logger. Benchmarks print their own tables; the logger is
// for diagnostics from the orchestrator and dataplane.
//
// The sink is injectable (tests point it at a std::ostringstream to capture
// and assert on output) and timestamps are optional — off by default so
// captured output stays deterministic.
#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace nfp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Redirects output; nullptr restores the default (std::clog).
  void set_sink(std::ostream* sink) {
    const std::scoped_lock lock(mu_);
    sink_ = sink;
  }

  // Prefixes each line with wall-clock HH:MM:SS.mmm when enabled.
  void set_timestamps(bool on) { timestamps_ = on; }

  void log(LogLevel level, std::string_view msg) {
    if (level < level_) return;
    const std::scoped_lock lock(mu_);
    std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
    if (timestamps_) out << timestamp() << ' ';
    out << "[" << name(level) << "] " << msg << '\n';
  }

 private:
  static std::string_view name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }

  static std::string timestamp() {
    const auto now = std::chrono::system_clock::now();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch()) %
                    1000;
    const std::time_t t = std::chrono::system_clock::to_time_t(now);
    std::tm tm{};
    localtime_r(&t, &tm);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", tm.tm_hour,
                  tm.tm_min, tm.tm_sec, static_cast<int>(ms.count()));
    return buf;
  }

  LogLevel level_ = LogLevel::kWarn;
  bool timestamps_ = false;
  std::ostream* sink_ = nullptr;  // null => std::clog
  std::mutex mu_;
};

namespace detail {
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < Logger::instance().level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  Logger::instance().log(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace nfp

// Reproduces paper Figure 9: the modified Firewall NF that busy-loops for a
// configurable number of cycles per packet (NF complexity sweep), two
// instances, 64 B packets.
// "The forwarding latency optimization effect rises with the increase of NF
// complexity. For the most complex NF (3000 cycles), NFP brings around 45%
// latency reduction. The performance overhead brought by packet copying is
// minimal."
#include "bench_util.hpp"

using namespace nfp;
using namespace nfp::bench;

int main(int argc, char** argv) {
  const bool json = json_enabled(argc, argv);
  BenchServer server(argc, argv);
  print_header(
      "Figure 9(a): latency vs processing cycles per packet (us, 64B)\n"
      "setups: 2 delay-NF instances; Fig 10 composition");
  std::printf("%-8s %-10s %-10s %-12s %-10s %-12s\n", "cycles", "ONV-seq",
              "NFP-seq", "NFP-nocopy", "NFP-copy", "reduction");
  const u32 cycle_steps[] = {1,    300,  600,  900,  1200, 1500,
                             1800, 2100, 2400, 2700, 3000};
  for (const u32 cycles : cycle_steps) {
    DataplaneConfig cfg;
    cfg.delaynf_cycles = cycles;
    const auto traffic = latency_traffic(64);
    const Measurement onv = run_onv(repeat("delaynf", 2), traffic, cfg);
    const Measurement nfp_seq = run_nfp(
        ServiceGraph::sequential("seq", repeat("delaynf", 2)), traffic, cfg);
    const Measurement nocopy =
        run_nfp(parallel_stage("delaynf", 2, false), traffic, cfg);
    const Measurement copy =
        run_nfp(parallel_stage("delaynf", 2, true), traffic, cfg);
    server.observe(onv);
    server.observe(nfp_seq);
    server.observe(nocopy);
    server.observe(copy);
    const double reduction =
        (onv.mean_latency_us - nocopy.mean_latency_us) / onv.mean_latency_us;
    std::printf("%-8u %-10.1f %-10.1f %-12.1f %-10.1f %5.1f%%\n", cycles,
                onv.mean_latency_us, nfp_seq.mean_latency_us,
                nocopy.mean_latency_us, copy.mean_latency_us,
                reduction * 100);
    if (json) {
      const std::string knobs = "{\"cycles\":" + std::to_string(cycles) +
                                ",\"frame_size\":64,\"instances\":2}";
      emit_metrics_json("fig9a", "onv", onv, knobs);
      emit_metrics_json("fig9a", "nfp-seq", nfp_seq, knobs);
      emit_metrics_json("fig9a", "nfp-nocopy", nocopy, knobs);
      emit_metrics_json("fig9a", "nfp-copy", copy, knobs);
    }
  }

  print_header(
      "Figure 9(b): processing rate vs cycles (Mpps, 64B)\n"
      "paper: rate falls from ~12 Mpps to ~1 Mpps as the NF reaches 3000\n"
      "cycles; parallel setups track the sequential rate");
  std::printf("%-8s %-10s %-10s %-12s %-10s\n", "cycles", "ONV-seq",
              "NFP-seq", "NFP-nocopy", "NFP-copy");
  for (const u32 cycles : cycle_steps) {
    DataplaneConfig cfg;
    cfg.delaynf_cycles = cycles;
    const auto traffic = saturation_traffic(64, 25'000);
    const Measurement onv = run_onv(repeat("delaynf", 2), traffic, cfg);
    const Measurement nfp_seq = run_nfp(
        ServiceGraph::sequential("seq", repeat("delaynf", 2)), traffic, cfg);
    const Measurement nocopy =
        run_nfp(parallel_stage("delaynf", 2, false), traffic, cfg);
    const Measurement copy =
        run_nfp(parallel_stage("delaynf", 2, true), traffic, cfg);
    server.observe(onv);
    server.observe(nfp_seq);
    server.observe(nocopy);
    server.observe(copy);
    std::printf("%-8u %-10.2f %-10.2f %-12.2f %-10.2f\n", cycles,
                onv.rate_mpps, nfp_seq.rate_mpps, nocopy.rate_mpps,
                copy.rate_mpps);
    if (json) {
      const std::string knobs = "{\"cycles\":" + std::to_string(cycles) +
                                ",\"frame_size\":64,\"instances\":2}";
      emit_metrics_json("fig9b", "onv", onv, knobs);
      emit_metrics_json("fig9b", "nfp-seq", nfp_seq, knobs);
      emit_metrics_json("fig9b", "nfp-nocopy", nocopy, knobs);
      emit_metrics_json("fig9b", "nfp-copy", copy, knobs);
    }
  }
  server.finish();
  return 0;
}

// The NF onboarding flow of paper §5.4: run the action inspector against an
// NF implementation, derive its action profile, diff it against the
// developer's declaration, and register it into the orchestrator's action
// table so policies can use it immediately.
#include <cstdio>

#include "actions/action_table.hpp"
#include "inspector/inspector.hpp"
#include "nfs/nf.hpp"
#include "orch/compiler.hpp"
#include "orch/pair_stats.hpp"
#include "policy/policy.hpp"

namespace {

using namespace nfp;

// A third-party NF the built-in table knows nothing about: a DSCP remarker
// that reads the destination and rewrites the TOS byte.
class DscpRemarker final : public NetworkFunction {
 public:
  std::string_view type_name() const override { return "dscp_remarker"; }

  NfVerdict process(PacketView& packet) override {
    const u32 dst = packet.dst_ip();
    packet.set_tos(static_cast<u8>((dst & 0x3) << 2));
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kDstIp);
    p.add_read(Field::kTos);  // deliberately over-declared (never read)
    p.add_write(Field::kTos);
    return p;
  }
};

}  // namespace

int main() {
  std::printf("=== NF action inspector (paper §5.4) ===\n\n");

  // Inspect every built-in NF and print observed vs declared profiles.
  std::printf("%-14s %-55s\n", "NF", "observed action profile");
  for (const char* name :
       {"l3fwd", "lb", "firewall", "ids", "ips", "vpn", "monitor", "nat",
        "gateway", "caching", "proxy", "compression", "shaper"}) {
    const auto nf = make_builtin_nf(name);
    const ActionProfile observed = inspect_nf(*nf);
    std::printf("%-14s %-55s\n", name, observed.to_string().c_str());
    for (const auto& diff : diff_profiles(observed, nf->declared_profile())) {
      std::printf("%-14s   note: %s\n", "", diff.c_str());
    }
  }

  // Onboard the custom NF.
  std::printf("\n--- onboarding a new NF: dscp_remarker ---\n");
  DscpRemarker remarker;
  const ActionProfile observed = inspect_nf(remarker);
  std::printf("observed:  %s\n", observed.to_string().c_str());
  std::printf("declared:  %s\n",
              remarker.declared_profile().to_string().c_str());
  for (const auto& diff :
       diff_profiles(observed, remarker.declared_profile())) {
    std::printf("diff:      %s\n", diff.c_str());
  }

  ActionTable table = ActionTable::with_builtin_nfs();
  register_inspected_nf(table, remarker);
  std::printf("registered '%s' into the action table (%zu NF types)\n",
              "dscp_remarker", table.size());

  // The orchestrator can now reason about it: compile a chain that uses it.
  auto graph = compile_policy(
      Policy::from_sequential_chain(
          "custom", {"monitor", "dscp_remarker", "firewall"}),
      table);
  if (graph) {
    std::printf("\ncompiled chain(monitor, dscp_remarker, firewall):\n%s\n",
                graph.value().to_string().c_str());
  } else {
    std::printf("compile error: %s\n", graph.error().c_str());
  }
  return 0;
}

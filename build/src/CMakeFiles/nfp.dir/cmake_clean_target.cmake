file(REMOVE_RECURSE
  "libnfp.a"
)

// Cross-server NF parallelism (paper §7, "NFP Scalability").
//
// When a service graph has too many NFs for one server, NFP must partition
// it across machines while keeping the bandwidth overhead at zero: "each
// server sends only one copy of a packet to the next server". Segment
// boundaries have exactly that property — every parallel stage ends at the
// merger, which emits a single merged packet — so the partitioner cuts the
// compiled graph *between segments*, never inside one.
//
// Inter-server delivery is tagged NSH-style: each hand-off carries the next
// server's first MID, mirroring the paper's pointer to Flowtags/NSH.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "graph/service_graph.hpp"

namespace nfp::cluster {

struct ServerPlan {
  std::vector<std::size_t> segments;  // indices into the graph's segments
  std::size_t nf_cores = 0;           // cores running NFs
  std::size_t infra_cores = 0;        // classifier/agent/mergers
  // MID the next server expects on ingress (NSH service-path tag);
  // 0 on the last server.
  u32 egress_mid = 0;
};

struct PartitionOptions {
  std::size_t cores_per_server = 20;  // the paper's testbed: 2x10 cores
  // Infrastructure cores per server: classifier + merger agent + mergers.
  std::size_t infra_cores = 4;
};

// Packs consecutive segments onto servers, never splitting a segment.
// Fails when one parallel stage alone exceeds a server's NF capacity.
Result<std::vector<ServerPlan>> partition_graph(
    const ServiceGraph& graph, const PartitionOptions& options = {});

// Human-readable deployment plan.
std::string plan_to_string(const ServiceGraph& graph,
                           const std::vector<ServerPlan>& plan);

// Packets crossing a server boundary carry one copy only; this computes the
// inter-server bandwidth amplification of a plan (always 1.0 by
// construction — exposed so tests and benches can assert the §7 property).
double inter_server_copies_per_packet(const ServiceGraph& graph,
                                      const std::vector<ServerPlan>& plan);

}  // namespace nfp::cluster

// The paper's §6.4 correctness verification: "we generate a series of
// packets ..., replay them to the sequential service chain and the
// optimized NFP service graph. We compare the processed packets and find
// that [the] NFP service graph could provide the same execution results as
// the sequential service chain" (the result correctness principle, §4.1).
//
// These tests replay identical traffic through (a) the plain sequential
// chain and (b) the compiled NFP graph of the same NFs, then compare the
// delivered packets byte by byte, the drop sets, and the NFs' internal
// state.
#include <gtest/gtest.h>

#include <map>

#include "dataplane/nfp_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "nfs/monitor.hpp"
#include "orch/compiler.hpp"
#include "policy/policy.hpp"
#include "trafficgen/trafficgen.hpp"

namespace nfp {
namespace {

struct RunResult {
  // Keyed by injection time (unique per generated packet and identical
  // across runs of the same seeded generator).
  std::map<SimTime, std::vector<u8>> outputs;
  u64 dropped = 0;
  u64 monitor_packets = 0;  // first monitor instance's counter, if any
};

RunResult run_graph(ServiceGraph graph, const TrafficConfig& traffic,
                    DataplaneConfig cfg = {}) {
  // One merger instance: with several instances NFP (like the real system,
  // §5.3) does not guarantee inter-packet order across flows, which would
  // perturb order-sensitive NF state (NAT port allocation, AH sequence
  // numbers). Packet *contents* remain equivalent either way.
  cfg.merger_instances = 1;
  sim::Simulator sim;
  NfpDataplane dp(sim, std::move(graph), std::move(cfg));
  RunResult result;
  dp.set_sink([&](Packet* pkt, SimTime) {
    result.outputs.emplace(
        pkt->inject_time(),
        std::vector<u8>(pkt->data(), pkt->data() + pkt->length()));
    dp.pool().release(pkt);
  });
  TrafficGenerator gen(sim, dp.pool(), traffic);
  gen.start([&](Packet* p) { dp.inject(p); });
  sim.run();
  result.dropped = dp.stats().dropped_by_nf;
  EXPECT_EQ(dp.pool().in_use(), 0u) << "leaked packet references";
  for (std::size_t s = 0; s < dp.graph().segments().size(); ++s) {
    for (std::size_t k = 0; k < dp.graph().segments()[s].nfs.size(); ++k) {
      if (auto* mon = dynamic_cast<Monitor*>(dp.nf(s, k))) {
        result.monitor_packets = mon->total_packets();
      }
    }
  }
  return result;
}

// Compiles `chain` into an NFP graph and checks output equivalence against
// the sequential composition of the same NFs under `traffic`.
void expect_equivalent(const std::vector<std::string>& chain,
                       TrafficConfig traffic,
                       bool expect_parallelism = true) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  const Policy policy = Policy::from_sequential_chain("chain", chain);
  auto compiled = compile_policy(policy, table);
  ASSERT_TRUE(compiled.is_ok()) << compiled.error();
  ServiceGraph nfp_graph = std::move(compiled).take();
  if (expect_parallelism) {
    ASSERT_LT(nfp_graph.equivalent_length(), chain.size())
        << "expected the compiler to parallelize: " << nfp_graph.to_string();
  }

  const RunResult seq =
      run_graph(ServiceGraph::sequential("seq", chain), traffic);
  const RunResult par = run_graph(std::move(nfp_graph), traffic);

  EXPECT_EQ(seq.dropped, par.dropped) << "drop behaviour must match";
  ASSERT_EQ(seq.outputs.size(), par.outputs.size());
  for (const auto& [inject, bytes] : seq.outputs) {
    const auto it = par.outputs.find(inject);
    ASSERT_NE(it, par.outputs.end()) << "packet missing from NFP output";
    EXPECT_EQ(bytes, it->second) << "payload/headers diverged";
  }
}

TrafficConfig default_traffic() {
  TrafficConfig t;
  t.packets = 300;
  t.flows = 24;
  t.rate_pps = 200'000;
  t.size_model = SizeModel::kDataCenter;
  return t;
}

TEST(Equivalence, MonitorParallelFirewall) {
  // Fig 1(b)'s no-copy pair, with real ACL drops in the mix.
  expect_equivalent({"monitor", "firewall"}, default_traffic());
}

TEST(Equivalence, WestEastChain) {
  // IDS ∥ Monitor ∥ LB-on-copy: merge ops graft the LB's writes.
  expect_equivalent({"ids", "monitor", "lb"}, default_traffic());
}

TEST(Equivalence, NorthSouthChain) {
  // VPN -> {Monitor ∥ Firewall} -> LB (Fig 13).
  expect_equivalent({"vpn", "monitor", "firewall", "lb"}, default_traffic());
}

TEST(Equivalence, MonitorParallelVpn) {
  // AH insertion + payload encryption on version 1, monitor on the copy.
  expect_equivalent({"monitor", "vpn"}, default_traffic());
}

TEST(Equivalence, PayloadReaderWithPayloadWriter) {
  // NIDS reads the payload, compression rewrites it: full-copy parallelism
  // with a payload merge operation.
  expect_equivalent({"nids", "compression"}, default_traffic());
}

TEST(Equivalence, GatewayCachingMonitorAllParallel) {
  expect_equivalent({"gateway", "caching", "monitor"}, default_traffic());
}

TEST(Equivalence, SequentialOnlyChainStillMatches) {
  // NAT -> LB cannot parallelize; the compiled graph equals the chain.
  expect_equivalent({"nat", "lb"}, default_traffic(),
                    /*expect_parallelism=*/false);
}

TEST(Equivalence, LongMixedChain) {
  expect_equivalent({"vpn", "monitor", "ids", "firewall", "gateway", "lb"},
                    default_traffic());
}

TEST(Equivalence, MonitorStateMatchesSequentialSemantics) {
  // Order(Monitor, before, Firewall): in the sequential chain the monitor
  // counts every packet (it runs before the drop); the parallel graph must
  // preserve that state too.
  const ActionTable table = ActionTable::with_builtin_nfs();
  const Policy policy =
      Policy::from_sequential_chain("mf", {"monitor", "firewall"});
  auto compiled = compile_policy(policy, table);
  ASSERT_TRUE(compiled.is_ok());

  // Firewall that drops dst ports 80-82 (a third of the generator's flows).
  DataplaneConfig cfg;
  cfg.factory = [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      AclRule r;
      r.dst_port_lo = 80;
      r.dst_port_hi = 82;
      r.action = AclAction::kDrop;
      acl.add(r);
      return std::make_unique<Firewall>(std::move(acl));
    }
    return make_builtin_nf(nf.name);
  };

  TrafficConfig traffic = default_traffic();
  const RunResult seq =
      run_graph(ServiceGraph::sequential("seq", {"monitor", "firewall"}),
                traffic, cfg);
  const RunResult par = run_graph(std::move(compiled).take(), traffic, cfg);
  EXPECT_GT(seq.dropped, 0u) << "test should exercise drops";
  EXPECT_EQ(seq.dropped, par.dropped);
  EXPECT_EQ(seq.monitor_packets, par.monitor_packets);
}

// Property-style sweep: every 2-NF combination from the builtin NF set must
// be output-equivalent after compilation, whatever the verdict was.
class PairEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(PairEquivalence, CompiledPairMatchesSequential) {
  const auto& [a, b] = GetParam();
  if (a == b) GTEST_SKIP();
  TrafficConfig traffic;
  traffic.packets = 120;
  traffic.flows = 16;
  traffic.rate_pps = 150'000;
  traffic.size_model = SizeModel::kDataCenter;
  expect_equivalent({a, b}, traffic, /*expect_parallelism=*/false);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, PairEquivalence,
    ::testing::Combine(
        ::testing::Values("monitor", "firewall", "lb", "vpn", "ids",
                          "gateway", "nat", "caching", "compression",
                          "shaper"),
        ::testing::Values("monitor", "firewall", "lb", "vpn", "ids",
                          "gateway", "nat", "caching", "compression",
                          "shaper")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_then_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace nfp

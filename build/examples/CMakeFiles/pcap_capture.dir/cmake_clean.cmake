file(REMOVE_RECURSE
  "CMakeFiles/pcap_capture.dir/pcap_capture.cpp.o"
  "CMakeFiles/pcap_capture.dir/pcap_capture.cpp.o.d"
  "pcap_capture"
  "pcap_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

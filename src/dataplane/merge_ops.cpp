#include "dataplane/merge_ops.hpp"

#include <cstring>

#include "packet/packet_view.hpp"

namespace nfp {

Packet* apply_merge_operations(
    const Segment& seg, const std::vector<std::pair<Packet*, u8>>& arrivals) {
  Packet* base = nullptr;
  std::vector<Packet*> by_version(
      static_cast<std::size_t>(seg.num_versions) + 1, nullptr);
  for (const auto& [pkt, version] : arrivals) {
    if (version <= seg.num_versions) by_version[version] = pkt;
    if (version == 1) base = pkt;
  }
  if (base == nullptr) return nullptr;

  PacketView base_view(*base);
  for (const MergeOp& op : seg.merge.ops) {
    Packet* src = by_version[op.src_version];
    if (src == nullptr) continue;
    PacketView src_view(*src);
    if (!src_view.valid() || !base_view.valid()) continue;
    switch (op.kind) {
      case MergeOp::Kind::kModify:
        switch (op.field) {
          case Field::kSrcIp: base_view.set_src_ip(src_view.src_ip()); break;
          case Field::kDstIp: base_view.set_dst_ip(src_view.dst_ip()); break;
          case Field::kSrcPort:
            base_view.set_src_port(src_view.src_port());
            break;
          case Field::kDstPort:
            base_view.set_dst_port(src_view.dst_port());
            break;
          case Field::kTtl: base_view.set_ttl(src_view.ttl()); break;
          case Field::kTos: base_view.set_tos(src_view.tos()); break;
          case Field::kPayload: {
            const auto src_body = src_view.payload();
            base_view.resize_payload(src_body.size());
            auto dst_body = base_view.mutable_payload();
            std::memcpy(dst_body.data(), src_body.data(), src_body.size());
            break;
          }
          default:
            break;
        }
        break;
      case MergeOp::Kind::kSyncAh: {
        if (src_view.has_ah() && !base_view.has_ah()) {
          // add(v2.AH, after, v1.IP) — paper Fig 6.
          AhView src_ah(src->data() + src_view.l3_offset() + kIpv4HeaderLen);
          AhView dst_ah =
              base_view.add_ah_header(src_ah.spi(), src_ah.sequence());
          std::memcpy(dst_ah.icv(), src_ah.icv(), 12);
          dst_ah.set_next_header(src_ah.next_header());
        } else if (!src_view.has_ah() && base_view.has_ah()) {
          base_view.remove_ah_header();
        }
        break;
      }
    }
  }
  return base;
}

}  // namespace nfp

# Empty compiler generated dependencies file for bench_fig11_parallelism_degree.
# This may be replaced when dependencies are built.

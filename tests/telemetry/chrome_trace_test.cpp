// Tests for the Chrome trace-event exporter: the emitted document must be
// well-formed JSON (parsed back with the in-tree parser, the same check
// Perfetto's loader would make), slices must nest inside the packet's
// end-to-end window, and merge-wait must appear as paired flow arrows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/tracer.hpp"

namespace nfp::telemetry {
namespace {

// One packet through a two-branch parallel segment, plus one dropped
// packet — covers every span kind the exporter maps.
Tracer parallel_segment_tracer() {
  Tracer tracer(/*every=*/1, /*capacity=*/64);
  const u64 pid = 0;
  tracer.record(pid, SpanKind::kInject, 0, "rx-link");
  tracer.record(pid, SpanKind::kClassify, 100, "classifier");
  tracer.record(pid, SpanKind::kCopy, 150, "copy-1", /*version=*/2);
  tracer.record(pid, SpanKind::kNfEnter, 200, "nf:firewall#0", 1);
  tracer.record(pid, SpanKind::kNfEnter, 210, "nf:ids#1", 2);
  tracer.record(pid, SpanKind::kNfExit, 300, "nf:firewall#0", 1);
  tracer.record(pid, SpanKind::kMergerArrival, 310, "nf:firewall#0", 1);
  tracer.record(pid, SpanKind::kNfExit, 400, "nf:ids#1", 2);
  tracer.record(pid, SpanKind::kMergerArrival, 410, "nf:ids#1", 2);
  tracer.record(pid, SpanKind::kMergeComplete, 420, "merger#0");
  tracer.record(pid, SpanKind::kOutput, 500, "tx-link");

  tracer.record(1, SpanKind::kInject, 1000, "rx-link");
  tracer.record(1, SpanKind::kClassify, 1050, "classifier");
  tracer.record(1, SpanKind::kDrop, 1060, "classifier");
  return tracer;
}

std::vector<const json::Value*> events_with_phase(const json::Value& doc,
                                                 std::string_view ph) {
  std::vector<const json::Value*> out;
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr) return out;
  for (const json::Value& ev : events->items()) {
    if (ev.string_or("ph", "") == ph) out.push_back(&ev);
  }
  return out;
}

TEST(ChromeTraceTest, EmitsWellFormedJson) {
  const Tracer tracer = parallel_segment_tracer();
  const std::string text = to_chrome_trace(tracer);
  const auto parsed = json::Value::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error();
  const json::Value& doc = parsed.value();
  EXPECT_EQ(doc.string_or("displayTimeUnit", ""), "ns");
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  EXPECT_GT(events->size(), 0u);
}

TEST(ChromeTraceTest, EmitsMetadataTracksInPipelineOrder) {
  const json::Value doc =
      json::Value::parse(to_chrome_trace(parallel_segment_tracer())).value();
  bool process_named = false;
  int rx_sort = -1, nf_sort = -1, tx_sort = -1;
  std::string current_thread;
  for (const json::Value* ev : events_with_phase(doc, "M")) {
    const json::Value* args = ev->find("args");
    ASSERT_NE(args, nullptr);
    if (ev->string_or("name", "") == "process_name") process_named = true;
    if (ev->string_or("name", "") == "thread_name") {
      current_thread = args->string_or("name", "");
    }
    if (ev->string_or("name", "") == "thread_sort_index") {
      const int sort = static_cast<int>(args->number_or("sort_index", -1));
      if (current_thread == "rx-link") rx_sort = sort;
      if (current_thread == "nf:firewall#0") nf_sort = sort;
      if (current_thread == "tx-link") tx_sort = sort;
    }
  }
  EXPECT_TRUE(process_named);
  // RX before the NFs before TX on the timeline.
  ASSERT_GE(rx_sort, 0);
  EXPECT_LT(rx_sort, nf_sort);
  EXPECT_LT(nf_sort, tx_sort);
}

TEST(ChromeTraceTest, SlicesNestInsidePacketWindow) {
  const json::Value doc =
      json::Value::parse(to_chrome_trace(parallel_segment_tracer())).value();
  const auto slices = events_with_phase(doc, "X");
  ASSERT_FALSE(slices.empty());
  // Packet 0's journey spans [0ns, 500ns] = [0us, 0.5us].
  bool saw_service = false, saw_merge = false;
  double merge_ts = 0, merge_end = 0;
  for (const json::Value* ev : slices) {
    const json::Value* args = ev->find("args");
    ASSERT_NE(args, nullptr);
    if (args->number_or("packet", -1) != 0) continue;
    const double ts = ev->number_or("ts", -1);
    const double dur = ev->number_or("dur", -1);
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    EXPECT_LE(ts + dur, 0.5 + 1e-9);  // inside the packet window (us)
    if (ev->string_or("cat", "") == "merge") {
      saw_merge = true;
      merge_ts = ts;
      merge_end = ts + dur;
    }
    if (ev->string_or("cat", "") == "service") saw_service = true;
  }
  EXPECT_TRUE(saw_service);
  ASSERT_TRUE(saw_merge);
  // The merge slice opens at the first arrival (310ns) and closes at the
  // merge-complete (420ns); every service slice ends at or before it.
  EXPECT_DOUBLE_EQ(merge_ts, 0.310);
  EXPECT_DOUBLE_EQ(merge_end, 0.420);
  for (const json::Value* ev : slices) {
    const json::Value* args = ev->find("args");
    if (args->number_or("packet", -1) != 0) continue;
    if (ev->string_or("cat", "") != "service") continue;
    EXPECT_LE(ev->number_or("ts", 0) + ev->number_or("dur", 0),
              merge_end + 1e-9);
  }
}

TEST(ChromeTraceTest, MergeWaitRendersPairedFlowArrows) {
  const json::Value doc =
      json::Value::parse(to_chrome_trace(parallel_segment_tracer())).value();
  const auto starts = events_with_phase(doc, "s");
  const auto finishes = events_with_phase(doc, "f");
  // One arrow per merger arrival: two branches -> two start/finish pairs.
  ASSERT_EQ(starts.size(), 2u);
  ASSERT_EQ(finishes.size(), 2u);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_DOUBLE_EQ(starts[i]->number_or("id", -1),
                     finishes[i]->number_or("id", -2));
    // Arrows land on the merge-complete timestamp (420ns = 0.42us).
    EXPECT_DOUBLE_EQ(finishes[i]->number_or("ts", -1), 0.420);
    // ...and leave from the sending branch's exit, before the merge.
    EXPECT_LE(starts[i]->number_or("ts", 999), 0.420);
  }
}

TEST(ChromeTraceTest, DropsBecomeInstantEvents) {
  const json::Value doc =
      json::Value::parse(to_chrome_trace(parallel_segment_tracer())).value();
  const auto instants = events_with_phase(doc, "i");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_DOUBLE_EQ(instants[0]->number_or("ts", -1), 1.060);
  const json::Value* args = instants[0]->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->number_or("packet", -1), 1.0);
}

TEST(ChromeTraceTest, EmptyTracerStillParses) {
  Tracer tracer(/*every=*/0);
  const auto parsed = json::Value::parse(to_chrome_trace(tracer));
  ASSERT_TRUE(parsed.is_ok());
  const json::Value* events = parsed.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Only the process-name metadata record.
  EXPECT_EQ(events->size(), 1u);
}

TEST(ChromeTraceTest, EscapesComponentNames) {
  Tracer tracer(1, 16);
  tracer.record(0, SpanKind::kInject, 0, "rx-link");
  tracer.record(0, SpanKind::kClassify, 10, "weird\"name");
  const auto parsed = json::Value::parse(to_chrome_trace(tracer));
  ASSERT_TRUE(parsed.is_ok()) << parsed.error();
}

}  // namespace
}  // namespace nfp::telemetry

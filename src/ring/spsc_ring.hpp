// Lock-free single-producer/single-consumer ring.
//
// This is the receive/transmit ring of the paper's infrastructure (§5,
// Fig 3): each NF owns an RX and a TX ring stored in shared memory, and
// packet delivery writes *references* into the next NF's RX ring
// (zero-copy delivery as in NetVM/OpenNetVM).
//
// The implementation is a classic bounded power-of-two ring with
// acquire/release indices and cache-line padding to avoid false sharing.
// It is safe for exactly one producer thread and one consumer thread; the
// deterministic simulator also uses it single-threaded.
//
// Burst variants (push_burst/pop_burst) mirror DPDK's rte_ring enqueue/
// dequeue-burst: one index load, one span copy, one index publish per
// burst, so the cross-core cache-line traffic is amortized over the whole
// batch instead of paid per packet.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <span>

#include "common/types.hpp"

namespace nfp {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2 = 1024)
      : capacity_(round_up_pow2(capacity_pow2)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Returns false when the ring is full (caller drops or retries).
  bool push(T value) noexcept {
    const u64 head = head_.load(std::memory_order_relaxed);
    const u64 tail = tail_cache_;
    if (head - tail >= capacity_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= capacity_) {
        full_events_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Returns false when the ring is empty.
  bool pop(T& out) noexcept {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Pushes up to items.size() values in one burst; returns the count
  // actually enqueued (0 when full). The producer index is published once
  // for the whole burst and the consumer index is re-read at most once.
  std::size_t push_burst(std::span<const T> items) noexcept {
    const u64 head = head_.load(std::memory_order_relaxed);
    u64 free = capacity_ - (head - tail_cache_);
    if (free < items.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      free = capacity_ - (head - tail_cache_);
      if (free == 0) {
        full_events_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
    }
    const std::size_t n = std::min<std::size_t>(items.size(), free);
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(head + i) & mask_] = items[i];
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  // Pops up to out.size() values in one burst; returns the count dequeued
  // (0 when empty). Single index publish per burst, as push_burst.
  std::size_t pop_burst(std::span<T> out) noexcept {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    u64 avail = head_cache_ - tail;
    if (avail < out.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      avail = head_cache_ - tail;
      if (avail == 0) return 0;
    }
    const std::size_t n = std::min<std::size_t>(out.size(), avail);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  // Occupancy as seen by a third-party observer (telemetry probes read this
  // cross-thread). `tail_` is loaded *before* `head_` — the reverse order
  // would let a pop between the two loads make head - tail wrap to a huge
  // value — and the result is clamped to [0, capacity] because pushes
  // between the loads can make the difference exceed capacity.
  std::size_t size() const noexcept {
    const u64 tail = tail_.load(std::memory_order_acquire);
    const u64 head = head_.load(std::memory_order_acquire);
    const u64 used = head >= tail ? head - tail : 0;
    return static_cast<std::size_t>(std::min<u64>(used, capacity_));
  }

  std::size_t capacity() const noexcept { return capacity_; }

  // Failed pushes against a genuinely full ring (after the consumer index
  // re-read). Producer-written on the already-slow full path only;
  // backpressure evidence for the scalability profiler.
  u64 full_events() const noexcept {
    return full_events_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;

  alignas(kCacheLineSize) std::atomic<u64> head_{0};  // producer index
  alignas(kCacheLineSize) u64 tail_cache_ = 0;        // producer's view
  alignas(kCacheLineSize) std::atomic<u64> tail_{0};  // consumer index
  alignas(kCacheLineSize) u64 head_cache_ = 0;        // consumer's view
  // Own line: written by the producer on full pushes, read by scrapers —
  // must not share the consumer's head_cache_ line.
  alignas(kCacheLineSize) std::atomic<u64> full_events_{0};
};

}  // namespace nfp

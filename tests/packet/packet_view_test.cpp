// Tests for the PacketView accessor layer: parsing, field access, AH
// insertion/removal, checksums and payload resizing.
#include <gtest/gtest.h>

#include "packet/builder.hpp"
#include "packet/checksum.hpp"
#include "packet/packet_pool.hpp"
#include "packet/packet_view.hpp"

namespace nfp {
namespace {

class PacketViewTest : public ::testing::Test {
 protected:
  Packet* make(u8 proto = kProtoTcp, std::size_t size = 128) {
    PacketSpec spec;
    spec.tuple.proto = proto;
    spec.frame_size = size;
    Packet* p = build_packet(pool_, spec);
    EXPECT_NE(p, nullptr);
    return p;
  }

  PacketPool pool_{16};
};

TEST_F(PacketViewTest, FieldWritesStick) {
  Packet* p = make();
  PacketView v(*p);
  v.set_src_ip(0xC0A80101);
  v.set_dst_ip(0xC0A80102);
  v.set_src_port(1111);
  v.set_dst_port(2222);
  v.set_ttl(9);
  v.set_tos(0x20);

  PacketView reread(*p);
  EXPECT_EQ(reread.src_ip(), 0xC0A80101u);
  EXPECT_EQ(reread.dst_ip(), 0xC0A80102u);
  EXPECT_EQ(reread.src_port(), 1111);
  EXPECT_EQ(reread.dst_port(), 2222);
  EXPECT_EQ(reread.ttl(), 9);
  EXPECT_EQ(reread.tos(), 0x20);
  pool_.release(p);
}

TEST_F(PacketViewTest, ChecksumUpdateAfterWrite) {
  Packet* p = make();
  PacketView v(*p);
  v.set_dst_ip(0x08080808);
  EXPECT_FALSE(v.verify_ip_checksum()) << "stale checksum after write";
  v.update_checksums();
  EXPECT_TRUE(v.verify_ip_checksum());
  pool_.release(p);
}

TEST_F(PacketViewTest, AddAhHeaderInsertsAndParses) {
  Packet* p = make(kProtoTcp, 256);
  const std::size_t before_len = p->length();
  PacketView v(*p);
  const u16 orig_sport = v.src_port();

  AhView ah = v.add_ah_header(/*spi=*/0xAABB, /*seq=*/42);
  EXPECT_EQ(p->length(), before_len + kAhHeaderLen);
  EXPECT_EQ(ah.spi(), 0xAABBu);
  EXPECT_EQ(ah.sequence(), 42u);
  EXPECT_EQ(ah.next_header(), kProtoTcp);

  // The view re-parses: L4 fields must still resolve through the AH.
  ASSERT_TRUE(v.valid());
  EXPECT_TRUE(v.has_ah());
  EXPECT_EQ(v.protocol(), kProtoTcp);
  EXPECT_EQ(v.src_port(), orig_sport);

  Ipv4View ip(p->data() + kEthHeaderLen);
  EXPECT_EQ(ip.protocol(), kProtoAh);
  EXPECT_EQ(ip.total_length(), p->length() - kEthHeaderLen);
  pool_.release(p);
}

TEST_F(PacketViewTest, RemoveAhRestoresOriginalBytes) {
  Packet* p = make(kProtoTcp, 200);
  std::vector<u8> original(p->data(), p->data() + p->length());

  PacketView v(*p);
  v.add_ah_header(1, 1);
  v.remove_ah_header();

  ASSERT_EQ(p->length(), original.size());
  EXPECT_EQ(0, std::memcmp(p->data(), original.data(), original.size()));
  EXPECT_FALSE(v.has_ah());
  pool_.release(p);
}

TEST_F(PacketViewTest, PayloadAccessAndResize) {
  Packet* p = make(kProtoUdp, 150);
  PacketView v(*p);
  const std::size_t orig_payload = v.payload_len();
  ASSERT_GT(orig_payload, 0u);

  auto body = v.mutable_payload();
  body[0] = 0x5A;
  EXPECT_EQ(v.payload()[0], 0x5A);

  v.resize_payload(orig_payload / 2);
  EXPECT_EQ(v.payload_len(), orig_payload / 2);
  Ipv4View ip(p->data() + kEthHeaderLen);
  EXPECT_EQ(ip.total_length(), p->length() - kEthHeaderLen);
  UdpView udp(p->data() + v.l4_offset());
  EXPECT_EQ(udp.length(), kUdpHeaderLen + orig_payload / 2);
  pool_.release(p);
}

TEST_F(PacketViewTest, RejectsNonIpv4) {
  Packet* p = pool_.alloc(64);
  std::memset(p->data(), 0, 64);
  EthView eth(p->data());
  eth.set_ether_type(0x86DD);  // IPv6
  PacketView v(*p);
  EXPECT_FALSE(v.valid());
  pool_.release(p);
}

TEST_F(PacketViewTest, RejectsTruncatedPacket) {
  Packet* p = pool_.alloc(20);
  std::memset(p->data(), 0, 20);
  PacketView v(*p);
  EXPECT_FALSE(v.valid());
  pool_.release(p);
}

// Action recording: the hooks the inspector relies on.
class RecordingProbe : public ActionRecorder {
 public:
  void on_read(Field f) override { reads.insert(f); }
  void on_write(Field f) override { writes.insert(f); }
  void on_add_remove(Field f) override { addrm.insert(f); }
  FieldSet reads, writes, addrm;
 private:
};

TEST_F(PacketViewTest, RecorderSeesReadsAndWrites) {
  Packet* p = make();
  RecordingProbe probe;
  PacketView v(*p, &probe);
  (void)v.src_ip();
  (void)v.dst_port();
  v.set_dst_ip(5);
  EXPECT_TRUE(probe.reads.contains(Field::kSrcIp));
  EXPECT_TRUE(probe.reads.contains(Field::kDstPort));
  EXPECT_TRUE(probe.writes.contains(Field::kDstIp));
  EXPECT_FALSE(probe.writes.contains(Field::kSrcIp));
  pool_.release(p);
}

TEST_F(PacketViewTest, RecorderSeesAddRemove) {
  Packet* p = make(kProtoTcp, 256);
  RecordingProbe probe;
  PacketView v(*p, &probe);
  v.add_ah_header(1, 1);
  EXPECT_TRUE(probe.addrm.contains(Field::kAhHeader));
  pool_.release(p);
}

TEST(Checksum, KnownVector) {
  // RFC 1071 style check on a fixed IPv4 header.
  const u8 hdr[20] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
                      0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
                      0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(ipv4_checksum(hdr), 0xb861);
}

}  // namespace
}  // namespace nfp

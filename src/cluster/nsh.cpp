#include "cluster/nsh.hpp"

#include <cstring>

#include "packet/endian.hpp"
#include "packet/headers.hpp"

namespace nfp::cluster {

namespace {

constexpr u8 kNshVersion = 0x1;
constexpr u8 kFlagHasContext = 0x01;

}  // namespace

bool is_nsh(const Packet& pkt) {
  if (pkt.length() < kEthHeaderLen) return false;
  return load_be16(pkt.data() + 12) == kEtherTypeNsh;
}

bool nsh_encap(Packet& pkt, const NshInfo& info) {
  if (pkt.length() < kEthHeaderLen) return false;
  const std::size_t shim_len =
      kNshBaseLen + (info.pid ? kNshContextLen : 0);
  if (pkt.headroom() < shim_len) return false;

  EthView eth(pkt.data());
  const u16 inner_type = eth.ether_type();

  u8* shim = pkt.insert(kEthHeaderLen, shim_len);
  std::memset(shim, 0, shim_len);
  shim[0] = kNshVersion;
  shim[1] = info.pid ? kFlagHasContext : 0;
  shim[2] = static_cast<u8>(info.next_mid >> 16);
  shim[3] = static_cast<u8>(info.next_mid >> 8);
  shim[4] = static_cast<u8>(info.next_mid);
  // shim[5..6] reserved; shim[7] records the inner ethertype's low byte is
  // not enough — store the full inner type in reserved bytes 5..6.
  store_be16(shim + 5, inner_type);

  if (info.pid) {
    for (int i = 0; i < 8; ++i) {
      shim[kNshBaseLen + static_cast<std::size_t>(i)] =
          static_cast<u8>(*info.pid >> (56 - 8 * i));
    }
  }

  EthView new_eth(pkt.data());
  new_eth.set_ether_type(kEtherTypeNsh);
  return true;
}

std::optional<NshInfo> nsh_decap(Packet& pkt) {
  if (!is_nsh(pkt)) return std::nullopt;
  if (pkt.length() < kEthHeaderLen + kNshBaseLen) return std::nullopt;

  const u8* shim = pkt.data() + kEthHeaderLen;
  if (shim[0] != kNshVersion) return std::nullopt;

  NshInfo info;
  info.next_mid = (static_cast<u32>(shim[2]) << 16) |
                  (static_cast<u32>(shim[3]) << 8) | shim[4];
  const u16 inner_type = load_be16(shim + 5);
  const bool has_context = (shim[1] & kFlagHasContext) != 0;
  std::size_t shim_len = kNshBaseLen;
  if (has_context) {
    if (pkt.length() < kEthHeaderLen + kNshBaseLen + kNshContextLen) {
      return std::nullopt;
    }
    u64 pid = 0;
    for (int i = 0; i < 8; ++i) {
      pid = (pid << 8) | shim[kNshBaseLen + static_cast<std::size_t>(i)];
    }
    info.pid = pid;
    shim_len += kNshContextLen;
  }

  pkt.erase(kEthHeaderLen, shim_len);
  EthView eth(pkt.data());
  eth.set_ether_type(inner_type);
  return info;
}

}  // namespace nfp::cluster

// Micro-benchmarks (google-benchmark) of the real data-structure hot paths
// backing the simulated dataplane: rings, pool, header/full copies, LPM,
// ACL, AES, checksums, merging and policy compilation. These measure the
// actual C++ implementations on this host (not simulated time).
#include <benchmark/benchmark.h>

#include "acl/acl.hpp"
#include "crypto/aes128.hpp"
#include "dpi/aho_corasick.hpp"
#include "lpm/lpm_table.hpp"
#include "orch/compiler.hpp"
#include "packet/builder.hpp"
#include "packet/checksum.hpp"
#include "packet/packet_pool.hpp"
#include "common/rng.hpp"
#include "policy/parser.hpp"
#include "ring/spsc_ring.hpp"

namespace nfp {
namespace {

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<void*> ring(1024);
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push(&x));
    void* out;
    benchmark::DoNotOptimize(ring.pop(out));
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_PoolAllocRelease(benchmark::State& state) {
  PacketPool pool(256);
  for (auto _ : state) {
    Packet* p = pool.alloc(64);
    benchmark::DoNotOptimize(p);
    pool.release(p);
  }
}
BENCHMARK(BM_PoolAllocRelease);

void BM_HeaderOnlyCopy(benchmark::State& state) {
  PacketPool pool(8);
  PacketSpec spec;
  spec.frame_size = static_cast<std::size_t>(state.range(0));
  Packet* src = build_packet(pool, spec);
  for (auto _ : state) {
    Packet* copy = pool.clone_header_only(*src);
    benchmark::DoNotOptimize(copy);
    pool.release(copy);
  }
  pool.release(src);
}
BENCHMARK(BM_HeaderOnlyCopy)->Arg(64)->Arg(724)->Arg(1500);

void BM_FullCopy(benchmark::State& state) {
  PacketPool pool(8);
  PacketSpec spec;
  spec.frame_size = static_cast<std::size_t>(state.range(0));
  Packet* src = build_packet(pool, spec);
  for (auto _ : state) {
    Packet* copy = pool.clone_full(*src);
    benchmark::DoNotOptimize(copy);
    pool.release(copy);
  }
  pool.release(src);
}
BENCHMARK(BM_FullCopy)->Arg(64)->Arg(724)->Arg(1500);

void BM_LpmLookup(benchmark::State& state) {
  const LpmTable table = LpmTable::with_synthetic_routes(1000);
  u32 addr = 0x0A000001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(addr));
    addr = addr * 2654435761u + 1;
  }
}
BENCHMARK(BM_LpmLookup);

void BM_AclEvaluate(benchmark::State& state) {
  const AclTable table = AclTable::with_synthetic_rules(100);
  u32 x = 1;
  for (auto _ : state) {
    const FiveTuple t{x, x * 3, static_cast<u16>(x), static_cast<u16>(x * 7),
                      6};
    benchmark::DoNotOptimize(table.evaluate(t));
    x = x * 2654435761u + 1;
  }
}
BENCHMARK(BM_AclEvaluate);

void BM_AesEncryptBlock(benchmark::State& state) {
  Aes128 aes(Aes128::Key{0x2b});
  u8 block[16] = {1, 2, 3};
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_AesEncryptBlock);

void BM_AesCtrPayload(benchmark::State& state) {
  Aes128 aes(Aes128::Key{0x2b});
  std::vector<u8> payload(static_cast<std::size_t>(state.range(0)), 0x5c);
  for (auto _ : state) {
    aes.ctr_crypt(0x1234, payload);
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCtrPayload)->Arg(64)->Arg(724)->Arg(1460);

// Multi-pattern matching: Aho-Corasick single pass vs naive per-signature
// scan over a 1KB payload with 100 signatures (the IDS workload).
void BM_AhoCorasick100Sigs(benchmark::State& state) {
  std::vector<std::string> sigs;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::string sig;
    for (int j = 0; j < 8; ++j) {
      sig.push_back(static_cast<char>('A' + rng.bounded(26)));
    }
    sigs.push_back(std::move(sig));
  }
  const AhoCorasick ac(sigs);
  std::vector<u8> payload(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.contains(payload));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 1024);
}
BENCHMARK(BM_AhoCorasick100Sigs);

void BM_NaiveScan100Sigs(benchmark::State& state) {
  std::vector<std::string> sigs;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::string sig;
    for (int j = 0; j < 8; ++j) {
      sig.push_back(static_cast<char>('A' + rng.bounded(26)));
    }
    sigs.push_back(std::move(sig));
  }
  const std::string payload(1024, 'x');
  for (auto _ : state) {
    bool hit = false;
    for (const auto& sig : sigs) {
      hit |= payload.find(sig) != std::string::npos;
    }
    benchmark::DoNotOptimize(hit);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 1024);
}
BENCHMARK(BM_NaiveScan100Sigs);

void BM_Ipv4Checksum(benchmark::State& state) {
  u8 header[20] = {0x45, 0, 0, 0x73};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ipv4_checksum(header));
  }
}
BENCHMARK(BM_Ipv4Checksum);

void BM_PolicyCompile(benchmark::State& state) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  const auto policy = parse_policy(
      "policy p\nchain(vpn, monitor, ids, firewall, gateway, lb)");
  for (auto _ : state) {
    auto graph = compile_policy(policy.value(), table);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_PolicyCompile);

void BM_PolicyParse(benchmark::State& state) {
  const char* text =
      "policy p\nposition(vpn, first)\norder(firewall, before, lb)\n"
      "order(monitor, before, lb)\npriority(ips > firewall)\nnf(shaper)";
  for (auto _ : state) {
    auto policy = parse_policy(text);
    benchmark::DoNotOptimize(policy);
  }
}
BENCHMARK(BM_PolicyParse);

}  // namespace
}  // namespace nfp

BENCHMARK_MAIN();

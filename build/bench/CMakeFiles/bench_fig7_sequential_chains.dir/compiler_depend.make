# Empty compiler generated dependencies file for bench_fig7_sequential_chains.
# This may be replaced when dependencies are built.

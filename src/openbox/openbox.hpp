// Combining parallelism and modularity (paper §7, Fig 15).
//
// OpenBox decomposes NFs into building blocks and shares common blocks
// between NFs. NFP then applies its dependency analysis at *block*
// granularity: after merging the NFs' block chains (deduplicating shared
// blocks), independent blocks — e.g. the firewall's Alert and the IPS's
// DPI — run in parallel.
//
// The implementation reuses the NFP orchestrator wholesale: blocks are
// registered in an ActionTable with block-level action profiles, each NF
// contributes Order rules along its block chain, and compile_policy()
// produces the optimized block graph.
#pragma once

#include <string>
#include <vector>

#include <memory>

#include "actions/action_table.hpp"
#include "common/status.hpp"
#include "graph/service_graph.hpp"
#include "nfs/nf.hpp"
#include "policy/policy.hpp"

namespace nfp::openbox {

// One modular NF: an ordered chain of building-block names.
struct BlockChain {
  std::string nf_name;
  std::vector<std::string> blocks;
};

// Registers the standard OpenBox building blocks (Fig 15's vocabulary) into
// `table`: read_packets, header_classifier, fw_alert, dpi, ips_alert,
// output_block — with block-granularity action profiles.
void register_builtin_blocks(ActionTable& table);

// Merges several NFs' block chains into one policy:
//  - shared blocks (same name) appear once (OpenBox block sharing),
//  - Order rules preserve each chain's sequencing,
//  - compile_policy() then parallelizes independent blocks.
Policy merge_block_chains(const std::vector<BlockChain>& chains);

// Convenience: merge + compile in one step.
Result<ServiceGraph> compile_block_graph(
    const std::vector<BlockChain>& chains, const ActionTable& table);

// The Fig 15 example: a modular Firewall and a modular IPS.
std::vector<BlockChain> fig15_firewall_and_ips();

// Lightweight executable implementations of the builtin blocks (readers
// matching their registered profiles); nullptr for unknown names. Lets the
// dataplane run block graphs without NF stand-ins.
std::unique_ptr<NetworkFunction> make_block_nf(std::string_view name);

}  // namespace nfp::openbox

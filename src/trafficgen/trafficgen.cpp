#include "trafficgen/trafficgen.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/registry.hpp"

namespace nfp {

namespace {

// Benson et al. data-center packet-size mix: most packets are mice or
// near-MTU elephants. Buckets chosen so the mean lands near the 724 B the
// paper quotes from [4].
struct SizeBucket {
  double weight;
  std::size_t lo;
  std::size_t hi;
};
constexpr SizeBucket kDcBuckets[] = {
    {0.35, 64, 100},
    {0.12, 100, 300},
    {0.10, 300, 900},
    {0.43, 1400, 1500},
};

}  // namespace

TrafficGenerator::TrafficGenerator(sim::Simulator& sim, PacketPool& pool,
                                   TrafficConfig config)
    : sim_(sim), pool_(pool), config_(config), rng_(config.seed) {
  if (config_.flows == 0) config_.flows = 1;
  if (config_.flow_skew == FlowSkew::kZipf) {
    // CDF over ranks: weight(k) = 1/(k+1)^s, normalised. Built once; each
    // draw is then one uniform + binary search.
    zipf_cdf_.reserve(config_.flows);
    double total = 0;
    for (std::size_t k = 0; k < config_.flows; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), config_.zipf_s);
      zipf_cdf_.push_back(total);
    }
    for (double& c : zipf_cdf_) c /= total;
  }
  if (config_.metrics != nullptr) {
    m_generated_ = &config_.metrics->counter("trafficgen_packets_total");
    m_retries_ =
        &config_.metrics->counter("trafficgen_backpressure_retries_total");
    m_frame_bytes_ = &config_.metrics->histogram("trafficgen_frame_bytes");
  }
}

double TrafficGenerator::dc_mean_frame_size() {
  double mean = 0;
  for (const auto& b : kDcBuckets) {
    mean += b.weight * (static_cast<double>(b.lo + b.hi) / 2.0);
  }
  return mean;
}

std::size_t TrafficGenerator::next_size() {
  if (config_.size_model == SizeModel::kFixed) return config_.fixed_size;
  double p = rng_.uniform();
  for (const auto& b : kDcBuckets) {
    if (p < b.weight) {
      return static_cast<std::size_t>(rng_.range(b.lo, b.hi));
    }
    p -= b.weight;
  }
  return 1500;
}

std::size_t TrafficGenerator::next_flow() {
  if (config_.flow_churn) return static_cast<std::size_t>(churn_counter_++);
  if (zipf_cdf_.empty()) {
    return static_cast<std::size_t>(rng_.bounded(config_.flows));
  }
  const double p = rng_.uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), p);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - zipf_cdf_.begin(),
                               static_cast<std::ptrdiff_t>(config_.flows) - 1));
}

FiveTuple TrafficGenerator::flow_tuple(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A100000 + static_cast<u32>(flow % 251);
  t.dst_ip = 0x0A200000 + static_cast<u32>(flow % 127);
  t.src_port = static_cast<u16>(10'000 + flow);
  t.dst_port = static_cast<u16>(80 + (flow % 7));
  t.proto = (flow % 5 == 4) ? kProtoUdp : kProtoTcp;
  return t;
}

Packet* TrafficGenerator::make_packet(PacketPool& pool, std::size_t flow,
                                      std::size_t size) {
  PacketSpec spec;
  spec.tuple = flow_tuple(flow);
  spec.frame_size = size;
  spec.payload_byte = config_.payload_byte;
  return build_packet(pool, spec);
}

void TrafficGenerator::start(Injector inject) {
  const double gap_ns = 1e9 / config_.rate_pps;
  for (u64 i = 0; i < config_.packets; ++i) {
    const SimTime at =
        sim_.now() + static_cast<SimTime>(gap_ns * static_cast<double>(i));
    sim_.schedule_at(at, [this, inject, i] { try_inject(inject, i); });
  }
}

void TrafficGenerator::try_inject(const Injector& inject, u64 index) {
  Packet* pkt = nullptr;
  // The reserve keeps headroom for in-flight packet copies; scaled down for
  // tiny pools so the generator can always make progress.
  const std::size_t reserve =
      std::min<std::size_t>(kPoolReserve, pool_.capacity() / 4);
  if (pool_.available() > reserve) {
    pkt = make_packet(pool_, next_flow(), next_size());
  }
  if (pkt == nullptr) {
    // Pool back-pressure: at saturation the generator is pacing the
    // dataplane's drain rate, exactly like a lossless-throughput search on
    // a real testbed. Retry shortly.
    ++backpressure_retries_;
    if (m_retries_ != nullptr) m_retries_->inc();
    sim_.schedule_after(500, [this, inject, index] {
      try_inject(inject, index);
    });
    return;
  }
  ++generated_;
  if (m_generated_ != nullptr) {
    m_generated_->inc();
    m_frame_bytes_->record(pkt->length());
  }
  inject(pkt);
}

}  // namespace nfp

// Reproduces paper Figure 8: sequential vs parallel composition of two
// instances of each NF type (setup of Fig 10), 64 B packets.
// Series: OpenNetVM-sequential, NFP-sequential, NFP-parallel-no-copy,
// NFP-parallel-copy. The paper's observation: the latency benefit of NF
// parallelism grows with NF complexity, and the copy overhead is minimal.
#include "bench_util.hpp"

using namespace nfp;
using namespace nfp::bench;

int main(int argc, char** argv) {
  BenchServer server(argc, argv);
  const char* types[] = {"l3fwd", "lb", "firewall", "monitor", "vpn", "ids"};
  const char* labels[] = {"Forwarder", "LB", "Firewall",
                          "Monitor",   "VPN", "IDS"};

  print_header(
      "Figure 8(a): latency by NF type, 2 instances, 64B packets (us)\n"
      "paper: parallel < sequential, gap grows with NF complexity");
  std::printf("%-11s %-10s %-10s %-12s %-10s\n", "NF", "ONV-seq", "NFP-seq",
              "NFP-nocopy", "NFP-copy");
  for (std::size_t i = 0; i < 6; ++i) {
    const std::string type = types[i];
    const bool payload_heavy =
        type == "vpn" || type == "ids";  // copies must be full copies
    const auto traffic = latency_traffic(64);
    const Measurement onv = run_onv(repeat(type, 2), traffic);
    const Measurement nfp_seq =
        run_nfp(ServiceGraph::sequential("seq", repeat(type, 2)), traffic);
    const Measurement nocopy =
        run_nfp(parallel_stage(type, 2, /*with_copy=*/false), traffic);
    const Measurement copy = run_nfp(
        parallel_stage(type, 2, /*with_copy=*/true, payload_heavy), traffic);
    server.observe(onv);
    server.observe(nfp_seq);
    server.observe(nocopy);
    server.observe(copy);
    std::printf("%-11s %-10.1f %-10.1f %-12.1f %-10.1f\n", labels[i],
                onv.mean_latency_us, nfp_seq.mean_latency_us,
                nocopy.mean_latency_us, copy.mean_latency_us);
  }

  print_header(
      "Figure 8(b): processing rate by NF type, 2 instances, 64B (Mpps)\n"
      "paper: parallelism does not hurt throughput; heavy NFs are\n"
      "compute-bound at far lower rates");
  std::printf("%-11s %-10s %-10s %-12s %-10s\n", "NF", "ONV-seq", "NFP-seq",
              "NFP-nocopy", "NFP-copy");
  for (std::size_t i = 0; i < 6; ++i) {
    const std::string type = types[i];
    const bool payload_heavy = type == "vpn" || type == "ids";
    const auto traffic = saturation_traffic(64, 25'000);
    const Measurement onv = run_onv(repeat(type, 2), traffic);
    const Measurement nfp_seq =
        run_nfp(ServiceGraph::sequential("seq", repeat(type, 2)), traffic);
    const Measurement nocopy =
        run_nfp(parallel_stage(type, 2, false), traffic);
    const Measurement copy =
        run_nfp(parallel_stage(type, 2, true, payload_heavy), traffic);
    server.observe(onv);
    server.observe(nfp_seq);
    server.observe(nocopy);
    server.observe(copy);
    std::printf("%-11s %-10.2f %-10.2f %-12.2f %-10.2f\n", labels[i],
                onv.rate_mpps, nfp_seq.rate_mpps, nocopy.rate_mpps,
                copy.rate_mpps);
  }
  server.finish();
  return 0;
}

// Minimal pcap (libpcap classic format) reader/writer.
//
// Lets the traffic generator dump what it sends — and the dataplane dump
// what it emits — into standard capture files inspectable with
// tcpdump/wireshark, and lets tests and examples replay captures through a
// dataplane. Classic 24-byte header, LINKTYPE_ETHERNET, microsecond
// timestamps.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace nfp {

struct PcapRecord {
  SimTime timestamp_ns = 0;
  std::vector<u8> bytes;

  friend bool operator==(const PcapRecord&, const PcapRecord&) = default;
};

// Writes records in capture order. Overwrites an existing file.
Status write_pcap(const std::string& path,
                  const std::vector<PcapRecord>& records);

// Reads a classic little-endian pcap file.
Result<std::vector<PcapRecord>> read_pcap(const std::string& path);

}  // namespace nfp

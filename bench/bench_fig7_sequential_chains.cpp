// Reproduces paper Figure 7: performance of sequential service chains of
// 1-5 L3 forwarders — (a) latency for 64 B packets, (b) processing rate vs
// packet size for NFP and OpenNetVM, against the 10GbE line rate.
#include "bench_util.hpp"

using namespace nfp;
using namespace nfp::bench;

int main(int argc, char** argv) {
  const bool json = json_enabled(argc, argv);
  BenchServer server(argc, argv);
  print_header(
      "Figure 7(a): sequential chain latency, 64B packets (microseconds)\n"
      "paper: OpenNetVM and NFP nearly overlap; both grow linearly with\n"
      "chain length and stay within a few microseconds of each other");
  std::printf("%-8s %-14s %-14s\n", "NFs", "OpenNetVM", "NFP");
  for (std::size_t n = 1; n <= 5; ++n) {
    const auto chain = repeat("l3fwd", n);
    const Measurement onv = run_onv(chain, latency_traffic(64));
    const Measurement nfp =
        run_nfp(ServiceGraph::sequential("seq", chain), latency_traffic(64));
    server.observe(onv);
    server.observe(nfp);
    std::printf("%-8zu %-14.1f %-14.1f\n", n, onv.mean_latency_us,
                nfp.mean_latency_us);
    if (json) {
      emit_metrics_json("fig7a", "onv,n=" + std::to_string(n), onv);
      emit_metrics_json("fig7a", "nfp,n=" + std::to_string(n), nfp);
    }
  }

  print_header(
      "Figure 7(b): processing rate vs packet size (Mpps)\n"
      "paper: NFP sustains line rate at every size and chain length;\n"
      "OpenNetVM saturates below line rate and degrades with chain length");
  const std::size_t sizes[] = {64, 128, 256, 512, 1024, 1500};
  std::printf("%-8s %-10s %-12s", "size", "LineRate", "NFP(1-5NF)");
  for (std::size_t n = 1; n <= 5; ++n) std::printf(" ONV-%zuNF ", n);
  std::printf("\n");
  sim::CostModel costs;
  for (const std::size_t size : sizes) {
    std::printf("%-8zu %-10.2f", size, costs.line_rate_pps(size) / 1e6);
    // NFP: identical rate for chains of 1..5 (verified for n=3).
    const Measurement nfp = run_nfp(
        ServiceGraph::sequential("seq", repeat("l3fwd", 3)),
        saturation_traffic(size, 20'000));
    server.observe(nfp);
    std::printf(" %-11.2f", nfp.rate_mpps);
    for (std::size_t n = 1; n <= 5; ++n) {
      const Measurement onv =
          run_onv(repeat("l3fwd", n), saturation_traffic(size, 20'000));
      server.observe(onv);
      std::printf(" %-8.2f", onv.rate_mpps);
    }
    std::printf("\n");
  }
  server.finish();
  return 0;
}

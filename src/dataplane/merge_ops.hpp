// Byte-level application of a segment's merge operations (paper §5.3,
// Fig 6). Shared by the simulated-time dataplane and the live threaded
// pipeline.
#pragma once

#include <utility>
#include <vector>

#include "graph/service_graph.hpp"
#include "packet/packet.hpp"

namespace nfp {

// `arrivals` lists (packet, version) pairs received by the merger; several
// arrivals may reference the same packet. Applies the segment's merge
// operations onto the version-1 packet and returns it; nullptr when no
// version-1 packet is present (malformed hand-built graph).
// Checksums are left exactly as the winning NFs wrote them so the merged
// packet is byte-identical to the sequential execution (§6.4).
Packet* apply_merge_operations(
    const Segment& seg, const std::vector<std::pair<Packet*, u8>>& arrivals);

}  // namespace nfp

// Stress and property tests for the packet pool and metadata word.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "packet/packet_pool.hpp"

namespace nfp {
namespace {

TEST(PoolStress, RandomAllocReleaseNeverLeaksOrDoubles) {
  PacketPool pool(128);
  Rng rng(42);
  std::vector<Packet*> live;

  for (int step = 0; step < 100'000; ++step) {
    const double p = rng.uniform();
    if (p < 0.45) {
      Packet* pkt = pool.alloc(rng.range(0, 1500));
      if (pkt != nullptr) {
        EXPECT_EQ(pkt->ref_count(), 1);
        live.push_back(pkt);
      } else {
        EXPECT_EQ(pool.available(), 0u);
      }
    } else if (p < 0.6 && !live.empty()) {
      // Take an extra reference on a random live packet; each entry in
      // `live` represents one reference to release.
      Packet* target = live[rng.bounded(live.size())];
      pool.add_ref(target);
      live.push_back(target);
    } else if (!live.empty()) {
      const std::size_t idx = rng.bounded(live.size());
      pool.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_LE(pool.in_use(), 128u);
  }
  for (Packet* pkt : live) pool.release(pkt);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PoolStress, AddRefTracking) {
  PacketPool pool(4);
  Packet* a = pool.alloc(64);
  for (int i = 0; i < 10; ++i) pool.add_ref(a);
  EXPECT_EQ(a->ref_count(), 11);
  for (int i = 0; i < 11; ++i) pool.release(a);
  EXPECT_EQ(pool.in_use(), 0u);
  // The slot is reusable and comes back clean.
  Packet* b = pool.alloc(32);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->ref_count(), 1);
  EXPECT_FALSE(b->is_nil());
  EXPECT_EQ(b->meta().raw(), 0u);
  pool.release(b);
}

TEST(MetadataFuzz, RandomRoundTrips) {
  Rng rng(7);
  for (int i = 0; i < 50'000; ++i) {
    const u32 mid = static_cast<u32>(rng.next()) & Metadata::kMaxMid;
    const u64 pid = rng.next() & Metadata::kMaxPid;
    const u8 version = static_cast<u8>(rng.bounded(16));
    Metadata m;
    // Apply in random order; the fields must never interfere.
    switch (rng.bounded(3)) {
      case 0:
        m.set_mid(mid);
        m.set_pid(pid);
        m.set_version(version);
        break;
      case 1:
        m.set_pid(pid);
        m.set_version(version);
        m.set_mid(mid);
        break;
      default:
        m.set_version(version);
        m.set_mid(mid);
        m.set_pid(pid);
        break;
    }
    ASSERT_EQ(m.mid(), mid);
    ASSERT_EQ(m.pid(), pid);
    ASSERT_EQ(m.version(), version);
  }
}

}  // namespace
}  // namespace nfp

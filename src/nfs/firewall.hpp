// Firewall NF: first-match ACL filter (paper §6.1: "similar to the Click
// IPFilter element ... Access Control List (ACL) containing 100 rules").
#pragma once

#include "acl/acl.hpp"
#include "nfs/nf.hpp"

namespace nfp {

class Firewall final : public NetworkFunction {
 public:
  explicit Firewall(AclTable acl) : acl_(std::move(acl)) {}
  static Firewall with_synthetic_rules(std::size_t count = 100, u64 seed = 2) {
    return Firewall(AclTable::with_synthetic_rules(count, 0.5, seed));
  }

  std::string_view type_name() const override { return "firewall"; }

  NfVerdict process(PacketView& packet) override {
    const AclAction action = acl_.evaluate(packet.five_tuple());
    if (action == AclAction::kDrop) {
      ++dropped_;
      return NfVerdict::kDrop;
    }
    ++passed_;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kProto);  // 5-tuple ACL key
    p.add_drop();
    return p;
  }

  u64 dropped() const noexcept { return dropped_; }
  u64 passed() const noexcept { return passed_; }

 private:
  AclTable acl_;
  u64 dropped_ = 0;
  u64 passed_ = 0;
};

}  // namespace nfp

// SPSC ring correctness: single-threaded semantics plus a 2-thread
// stress test for the acquire/release protocol.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "ring/mpmc_queue.hpp"
#include "ring/spsc_ring.hpp"

namespace nfp {
namespace {

TEST(SpscRing, PushPopFifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  int out;
  EXPECT_FALSE(ring.pop(out));
}

TEST(SpscRing, FullRingRejectsPush) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));
  int out;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_TRUE(ring.push(99));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, SizeTracksOccupancy) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.size(), 2u);
  int out;
  ring.pop(out);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  int expected = 0;
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(ring.push(round));
    int out;
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, expected++);
  }
}

TEST(SpscRing, BurstPushPopSemantics) {
  SpscRing<int> ring(8);
  const std::array<int, 5> first{0, 1, 2, 3, 4};
  EXPECT_EQ(ring.push_burst(first), 5u);
  // Only 3 slots left: the burst is truncated, not rejected.
  const std::array<int, 6> second{5, 6, 7, 8, 9, 10};
  EXPECT_EQ(ring.push_burst(second), 3u);
  EXPECT_EQ(ring.push_burst(second), 0u);  // full

  std::array<int, 6> out{};
  EXPECT_EQ(ring.pop_burst(out), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(ring.pop_burst(out), 2u);  // the remainder
  EXPECT_EQ(out[0], 6);
  EXPECT_EQ(out[1], 7);
  EXPECT_EQ(ring.pop_burst(out), 0u);  // empty
}

TEST(SpscRing, BurstInteroperatesWithSingleOps) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.push(1));
  const std::array<int, 2> burst{2, 3};
  EXPECT_EQ(ring.push_burst(burst), 2u);
  int v = 0;
  ASSERT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 1);
  std::array<int, 4> out{};
  EXPECT_EQ(ring.pop_burst(out), 2u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
}

// Mixed burst sizes across the thread boundary: the acquire/release pairing
// of the single-publish-per-burst protocol must deliver every element
// exactly once, in order. (Runs under TSan in CI.)
TEST(SpscRing, BurstTwoThreadStress) {
  constexpr int kCount = 200'000;
  SpscRing<int> ring(128);

  std::thread consumer([&] {
    std::array<int, 17> buf{};  // deliberately co-prime with producer bursts
    int expect = 0;
    while (expect < kCount) {
      const std::size_t n = ring.pop_burst(buf);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], expect++) << "burst order violated";
      }
    }
  });

  std::array<int, 23> staged{};
  int next = 0;
  while (next < kCount) {
    std::size_t len = 0;
    while (len < staged.size() && next < kCount) staged[len++] = next++;
    std::size_t sent = 0;
    while (sent < len) {
      const std::size_t m =
          ring.push_burst(std::span<const int>(staged.data() + sent,
                                               len - sent));
      if (m == 0) {
        std::this_thread::yield();
      } else {
        sent += m;
      }
    }
  }
  consumer.join();
}

// Telemetry probes call size() from a third thread while both ends run.
// The old implementation loaded head before tail, so a pop between the two
// loads produced a wrapped-around huge value; size() must stay within
// [0, capacity] no matter the interleaving.
TEST(SpscRing, SizeStaysClampedUnderConcurrentObserver) {
  SpscRing<int> ring(64);
  std::atomic<bool> done{false};
  std::atomic<bool> violation{false};

  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t s = ring.size();
      if (s > ring.capacity()) violation.store(true);
    }
  });

  std::thread consumer([&] {
    int got = 0;
    int v;
    while (got < 100'000) {
      if (ring.pop(v)) {
        ++got;
      }
    }
  });

  for (int i = 0; i < 100'000; ++i) {
    while (!ring.push(i)) std::this_thread::yield();
  }
  consumer.join();
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_FALSE(violation.load()) << "size() exceeded capacity";
}

TEST(SpscRing, TwoThreadStress) {
  constexpr int kCount = 200'000;
  SpscRing<int> ring(256);
  std::vector<int> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    int got = 0;
    while (got < kCount) {
      int v;
      if (ring.pop(v)) {
        received.push_back(v);
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kCount; ++i) {
    while (!ring.push(i)) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[static_cast<std::size_t>(i)], i) << "order violated";
  }
}

TEST(MpmcQueue, BasicPushPop) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, RespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(MpmcQueue, SizeHintTracksOccupancyWithoutLocking) {
  MpmcQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  EXPECT_EQ(q.size_hint(), 0u);
  q.try_push(1);
  q.try_push(2);
  q.try_push(3);
  EXPECT_EQ(q.size_hint(), 3u);
  (void)q.try_pop();
  EXPECT_EQ(q.size_hint(), 2u);
  (void)q.pop_wait();
  (void)q.try_pop();
  EXPECT_EQ(q.size_hint(), 0u);
}

TEST(MpmcQueue, MultiProducerMultiConsumer) {
  constexpr int kPerProducer = 10'000;
  constexpr int kProducers = 2;
  MpmcQueue<int> q(1024);
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (consumed.load() < kPerProducer * kProducers) {
        if (auto v = q.try_pop()) {
          sum += *v;
          consumed++;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) {
        while (!q.try_push(i)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  const long long expect =
      static_cast<long long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expect);
}

}  // namespace
}  // namespace nfp

// Byte-order helpers. All header fields are stored on the wire in network
// (big-endian) order; accessors convert to/from host order explicitly.
#pragma once

#include "common/types.hpp"

namespace nfp {

constexpr u16 load_be16(const u8* p) noexcept {
  return static_cast<u16>((static_cast<u16>(p[0]) << 8) | p[1]);
}

constexpr u32 load_be32(const u8* p) noexcept {
  return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
         (static_cast<u32>(p[2]) << 8) | p[3];
}

constexpr void store_be16(u8* p, u16 v) noexcept {
  p[0] = static_cast<u8>(v >> 8);
  p[1] = static_cast<u8>(v);
}

constexpr void store_be32(u8* p, u32 v) noexcept {
  p[0] = static_cast<u8>(v >> 24);
  p[1] = static_cast<u8>(v >> 16);
  p[2] = static_cast<u8>(v >> 8);
  p[3] = static_cast<u8>(v);
}

}  // namespace nfp

// Tests for the bounded LRU flow table: insert/lookup semantics, LRU
// eviction at capacity, erase/clear, MRU iteration order, and a
// differential check against std::unordered_map as the reference model
// (while the table stays under capacity, the two must agree exactly).
#include <gtest/gtest.h>

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "flow/flow_table.hpp"
#include "packet/headers.hpp"

namespace nfp {
namespace {

FiveTuple tuple(std::size_t flow) {
  return FiveTuple{0x0A000000 + static_cast<u32>(flow),
                   0x0B000000 + static_cast<u32>(flow % 7),
                   static_cast<u16>(10'000 + flow),
                   static_cast<u16>(80 + flow % 2), kProtoTcp};
}

u64 splitmix(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(FlowTableTest, InsertAndLookup) {
  FlowTable<u64> table(16);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.peek(tuple(1)), nullptr);

  table.get_or_create(tuple(1)) = 42;
  ASSERT_NE(table.peek(tuple(1)), nullptr);
  EXPECT_EQ(*table.peek(tuple(1)), 42u);
  EXPECT_EQ(table.size(), 1u);

  // get_or_create on an existing key returns the same slot.
  table.get_or_create(tuple(1)) += 1;
  EXPECT_EQ(*table.peek(tuple(1)), 43u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.evictions(), 0u);
}

TEST(FlowTableTest, EvictsLeastRecentlyUsedAtCapacity) {
  FlowTable<u64> table(3);
  table.get_or_create(tuple(0)) = 0;
  table.get_or_create(tuple(1)) = 1;
  table.get_or_create(tuple(2)) = 2;
  // Touch flow 0 so flow 1 becomes the LRU victim.
  table.get_or_create(tuple(0));
  table.get_or_create(tuple(3)) = 3;

  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_EQ(table.peek(tuple(1)), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(table.peek(tuple(0)), nullptr);
  EXPECT_NE(table.peek(tuple(2)), nullptr);
  EXPECT_NE(table.peek(tuple(3)), nullptr);
}

TEST(FlowTableTest, PeekDoesNotTouchLruOrder) {
  FlowTable<u64> table(2);
  table.get_or_create(tuple(0)) = 0;
  table.get_or_create(tuple(1)) = 1;
  // peek must not rescue flow 0 from eviction.
  EXPECT_NE(table.peek(tuple(0)), nullptr);
  table.get_or_create(tuple(2)) = 2;
  EXPECT_EQ(table.peek(tuple(0)), nullptr);
  EXPECT_NE(table.peek(tuple(1)), nullptr);
}

TEST(FlowTableTest, TouchReturnsValueAndRefreshesLruInOneProbe) {
  FlowTable<u64> table(3);
  EXPECT_EQ(table.touch(tuple(1)), nullptr);  // miss: no insert, no evict
  EXPECT_EQ(table.size(), 0u);

  table.get_or_create(tuple(1)) = 11;
  table.get_or_create(tuple(2)) = 22;
  table.get_or_create(tuple(3)) = 33;

  u64* hit = table.touch(tuple(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 11u);
  *hit = 111;  // the pointer is writable (cache refresh in place)

  // The touch moved flow 1 to MRU: inserting one more evicts flow 2, the
  // now-least-recent entry, not flow 1.
  table.get_or_create(tuple(4)) = 44;
  EXPECT_EQ(table.peek(tuple(2)), nullptr);
  ASSERT_NE(table.peek(tuple(1)), nullptr);
  EXPECT_EQ(*table.peek(tuple(1)), 111u);
  EXPECT_EQ(table.evictions(), 1u);
}

TEST(FlowTableTest, EraseAndClear) {
  FlowTable<u64> table(8);
  table.get_or_create(tuple(0)) = 0;
  table.get_or_create(tuple(1)) = 1;
  EXPECT_TRUE(table.erase(tuple(0)));
  EXPECT_FALSE(table.erase(tuple(0)));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.peek(tuple(0)), nullptr);

  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.peek(tuple(1)), nullptr);
}

TEST(FlowTableTest, ForEachIteratesMostRecentFirst) {
  FlowTable<u64> table(8);
  table.get_or_create(tuple(0)) = 0;
  table.get_or_create(tuple(1)) = 1;
  table.get_or_create(tuple(2)) = 2;
  table.get_or_create(tuple(1));  // touch: 1 becomes most recent

  std::vector<u64> order;
  table.for_each([&order](const FiveTuple&, const u64& v) {
    order.push_back(v);
  });
  EXPECT_EQ(order, (std::vector<u64>{1, 2, 0}));
}

TEST(FlowTableTest, DifferentialAgainstUnorderedMap) {
  // Under capacity the table must behave exactly like a plain map: a
  // pseudo-random workload of inserts, increments and erases over a key
  // space smaller than capacity never evicts, so the end states match.
  constexpr std::size_t kKeys = 64;
  FlowTable<u64> table(kKeys + 1);
  std::unordered_map<u32, u64> model;

  for (u64 i = 0; i < 20'000; ++i) {
    const u64 r = splitmix(i);
    const std::size_t f = r % kKeys;
    if (r % 13 == 0) {
      const bool erased = table.erase(tuple(f));
      EXPECT_EQ(erased, model.erase(static_cast<u32>(f)) > 0) << "step " << i;
    } else {
      table.get_or_create(tuple(f)) += 1;
      model[static_cast<u32>(f)] += 1;
    }
  }

  EXPECT_EQ(table.evictions(), 0u);
  EXPECT_EQ(table.size(), model.size());
  for (const auto& [key, count] : model) {
    const u64* got = table.peek(tuple(key));
    ASSERT_NE(got, nullptr) << "flow " << key;
    EXPECT_EQ(*got, count) << "flow " << key;
  }
  table.for_each([&model](const FiveTuple& key, const u64& count) {
    const auto it = model.find(key.src_ip - 0x0A000000);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(it->second, count);
  });
}

}  // namespace
}  // namespace nfp

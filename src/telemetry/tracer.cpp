#include "telemetry/tracer.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace nfp::telemetry {

std::string_view span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kInject: return "inject";
    case SpanKind::kClassify: return "classify";
    case SpanKind::kCopy: return "copy";
    case SpanKind::kNfEnter: return "nf-enter";
    case SpanKind::kNfExit: return "nf-exit";
    case SpanKind::kMergerArrival: return "merger-arrival";
    case SpanKind::kMergeComplete: return "merge-complete";
    case SpanKind::kOutput: return "output";
    case SpanKind::kDrop: return "drop";
  }
  return "?";
}

void Tracer::record(u64 pid, SpanKind kind, SimTime at,
                    std::string component, u8 version) {
  SpanEvent ev{pid, kind, at, version, std::move(component)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[head_] = std::move(ev);
  }
  head_ = (head_ + 1) % capacity_;
  ++recorded_;
}

std::vector<SpanEvent> Tracer::events_for(u64 pid) const {
  std::vector<SpanEvent> out;
  for (const SpanEvent& ev : ring_) {
    if (ev.pid == pid) out.push_back(ev);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::map<u64, std::vector<SpanEvent>> Tracer::events_by_pid() const {
  std::map<u64, std::vector<SpanEvent>> out;
  for (const SpanEvent& ev : ring_) out[ev.pid].push_back(ev);
  for (auto& [pid, events] : out) {
    (void)pid;
    std::stable_sort(events.begin(), events.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       return a.at < b.at;
                     });
  }
  return out;
}

std::vector<u64> Tracer::pids() const {
  std::set<u64> distinct;
  for (const SpanEvent& ev : ring_) distinct.insert(ev.pid);
  return {distinct.begin(), distinct.end()};
}

std::string Tracer::timeline(u64 pid) const {
  const std::vector<SpanEvent> events = events_for(pid);
  std::ostringstream out;
  if (events.empty()) {
    out << "packet " << pid << ": no retained spans\n";
    return out.str();
  }
  const SimTime start = events.front().at;
  const SimTime end = events.back().at;
  out << "packet " << pid << " trace: " << events.size() << " spans, "
      << (end - start) << " ns from " << span_kind_name(events.front().kind)
      << " to " << span_kind_name(events.back().kind) << "\n";
  SimTime prev = start;
  for (const SpanEvent& ev : events) {
    char line[128];
    std::snprintf(line, sizeof(line), "  +%-10llu (+%-8llu) %-14s %-20s v%u\n",
                  static_cast<unsigned long long>(ev.at - start),
                  static_cast<unsigned long long>(ev.at - prev),
                  std::string(span_kind_name(ev.kind)).c_str(),
                  ev.component.c_str(), static_cast<unsigned>(ev.version));
    out << line;
    prev = ev.at;
  }
  return out.str();
}

}  // namespace nfp::telemetry

// Classifier scaling: tuple-space search vs the linear scan it replaced.
//
// The paper's Classification Table is consulted on every microflow-cache
// miss; this bench measures that lookup at 1k / 10k / 100k masked rules on
// both the hit path (flows that match some rule) and the miss path (flows
// matching nothing — the worst case, which must examine every candidate).
// The old priority-ordered linear scan is kept (LinearCtScan) as the
// baseline series, so the same binary both proves the speedup and
// differential-checks the verdicts before timing anything.
//
// Expected shape: the linear series degrade ~linearly with rule count; the
// tuple-space series stay near-flat because a lookup is bounded by the
// distinct mask-signature count (56 here), not the rule count, with the
// priority and LPM-prefix prunes cutting most tuples before they are
// hashed. CI asserts miss/tuple at 100k rules is >= 20x miss/linear and
// that tuple-space growth 1k -> 100k stays sublinear.
//
// The tuple-space series time LiveClassificationTable::classify — epoch
// guard, acquire load and snapshot search — i.e. the real read path a shard
// worker pays, not a bare data-structure probe.
//
// Output: one table row and (with --json / NFP_BENCH_JSON) one JSON line
// per series:
//   {"bench":"classifier_scale","series":"miss/tuple/rules100k",
//    "meta":{...},"pps":<lookups per second>,"ns_per_lookup":...}
// scripts/check_hotpath_regression.py --bench classifier_scale compares
// the pps values against bench/baselines/BENCH_classifier_scale.json.
//
// Flags: --json, --max-rules=N (skip scales above N; local quick runs).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dataplane/live_classifier.hpp"
#include "dataplane/tuple_space_classifier.hpp"

namespace nfp {
namespace {

constexpr std::size_t kGraphs = 4;
constexpr u64 kRuleSeed = 7;

// Flows that match some rule: take a random rule and fill every bit its
// mask wildcards with noise, so the probe exercises real masking.
std::vector<FiveTuple> make_hit_flows(const std::vector<CtRule>& rules,
                                      std::size_t count, u64 seed) {
  Rng rng(seed);
  std::vector<FiveTuple> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const CtRule& r = rules[rng.bounded(rules.size())];
    FiveTuple t;
    t.src_ip = (r.src_ip & r.src_mask) |
               (static_cast<u32>(rng.next()) & ~r.src_mask);
    t.dst_ip = (r.dst_ip & r.dst_mask) |
               (static_cast<u32>(rng.next()) & ~r.dst_mask);
    t.src_port = r.match_src_port ? r.src_port
                                  : static_cast<u16>(rng.bounded(65'536));
    t.dst_port = r.match_dst_port ? r.dst_port
                                  : static_cast<u16>(rng.bounded(65'536));
    t.proto = r.match_proto ? r.proto : u8{6};
    flows.push_back(t);
  }
  return flows;
}

// Flows that match nothing: every synthetic rule constrains src to within
// 10.0.0.0/8, so 192.168/16 sources walk the entire candidate space.
std::vector<FiveTuple> make_miss_flows(std::size_t count, u64 seed) {
  Rng rng(seed);
  std::vector<FiveTuple> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FiveTuple t;
    t.src_ip = 0xC0A80000u | static_cast<u32>(rng.bounded(65'536));
    t.dst_ip = 0x08080000u | static_cast<u32>(rng.bounded(65'536));
    t.src_port = static_cast<u16>(rng.bounded(65'536));
    t.dst_port = static_cast<u16>(rng.bounded(65'536));
    t.proto = 6;
    flows.push_back(t);
  }
  return flows;
}

struct Series {
  double pps = 0;
  double ns_per_lookup = 0;
  u64 checksum = 0;  // defeats dead-code elimination; printed in meta
};

template <typename Classifier>
Series time_lookups(const Classifier& classifier,
                    const std::vector<FiveTuple>& flows, u64 lookups) {
  u64 checksum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (u64 i = 0; i < lookups; ++i) {
    checksum += classifier.classify(flows[i % flows.size()]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  Series s;
  s.checksum = checksum;
  s.pps = seconds > 0 ? static_cast<double>(lookups) / seconds : 0;
  s.ns_per_lookup = s.pps > 0 ? 1e9 / s.pps : 0;
  return s;
}

void emit(bool json, const std::string& series, std::size_t rule_count,
          std::size_t tuple_count, const Series& s) {
  std::printf("%-24s %14.0f %12.1f\n", series.c_str(), s.pps,
              s.ns_per_lookup);
  if (json) {
    std::printf("{\"bench\":\"classifier_scale\",\"series\":\"%s\","
                "\"meta\":{\"rules\":%zu,\"tuples\":%zu,\"checksum\":%llu,"
                "\"timestamp\":\"%s\"},"
                "\"pps\":%.0f,\"ns_per_lookup\":%.1f}\n",
                series.c_str(), rule_count, tuple_count,
                static_cast<unsigned long long>(s.checksum),
                bench::iso8601_utc_now().c_str(), s.pps, s.ns_per_lookup);
  }
  std::fflush(stdout);
}

}  // namespace
}  // namespace nfp

int main(int argc, char** argv) {
  using namespace nfp;
  const bool json = bench::json_enabled(argc, argv);
  std::size_t max_rules = 100'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-rules=", 12) == 0) {
      max_rules = std::strtoull(argv[i] + 12, nullptr, 10);
    }
  }

  bench::print_header("Classifier scaling: tuple-space vs linear scan");
  std::printf("%-24s %14s %12s\n", "series", "lookups/s", "ns/lookup");

  const std::size_t scales[] = {1'000, 10'000, 100'000};
  for (const std::size_t rule_count : scales) {
    if (rule_count > max_rules) continue;
    const std::string suffix =
        "/rules" + std::to_string(rule_count / 1'000) + "k";
    const auto rules = synthetic_ct_rules(rule_count, kRuleSeed, kGraphs);

    LiveClassificationTable tuple_table(kGraphs);
    tuple_table.add_rules(rules);
    LinearCtScan linear(kGraphs);
    linear.add_rules(rules);

    const auto hit_flows = make_hit_flows(rules, 4'096, 11);
    const auto miss_flows = make_miss_flows(4'096, 13);

    // Differential guard before timing: the optimized path must agree with
    // the reference on every probe flow, drop verdicts included.
    for (const auto& flows : {hit_flows, miss_flows}) {
      for (const FiveTuple& f : flows) {
        if (tuple_table.classify(f) != linear.classify(f)) {
          std::fprintf(stderr, "BUG: verdict mismatch at %zu rules\n",
                       rule_count);
          return 1;
        }
      }
    }

    // The linear scan at 100k rules runs ~three orders of magnitude
    // slower; scale its lookup count down so the bench stays a smoke test.
    const u64 tuple_lookups = 400'000;
    const u64 linear_lookups =
        std::max<u64>(2'000, 50'000'000 / rule_count);

    emit(json, "hit/tuple" + suffix, rule_count, tuple_table.tuple_count(),
         time_lookups(tuple_table, hit_flows, tuple_lookups));
    emit(json, "hit/linear" + suffix, rule_count, tuple_table.tuple_count(),
         time_lookups(linear, hit_flows, linear_lookups));
    emit(json, "miss/tuple" + suffix, rule_count, tuple_table.tuple_count(),
         time_lookups(tuple_table, miss_flows, tuple_lookups));
    emit(json, "miss/linear" + suffix, rule_count,
         tuple_table.tuple_count(),
         time_lookups(linear, miss_flows, linear_lookups));
  }
  return 0;
}

// Small string helpers used by the policy parser and table renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nfp {

std::string_view trim(std::string_view s);
std::vector<std::string> split(std::string_view s, char delim);
std::string to_lower(std::string_view s);
bool iequals(std::string_view a, std::string_view b);

// Formats an IPv4 address in host byte order as dotted quad.
std::string ipv4_to_string(unsigned int addr);

// Parses "a.b.c.d" into a host-byte-order address; returns false on error.
bool parse_ipv4(std::string_view text, unsigned int& out);

}  // namespace nfp

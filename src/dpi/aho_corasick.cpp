#include "dpi/aho_corasick.hpp"

#include <algorithm>
#include <queue>

namespace nfp {

AhoCorasick::AhoCorasick(const std::vector<std::string>& patterns) {
  nodes_.emplace_back();  // root

  // Phase 1: trie construction.
  for (std::size_t id = 0; id < patterns.size(); ++id) {
    const std::string& pattern = patterns[id];
    if (pattern.empty()) continue;
    i32 node = 0;
    for (const char c : pattern) {
      const auto byte = static_cast<u8>(c);
      if (nodes_[static_cast<std::size_t>(node)].next[byte] < 0) {
        nodes_[static_cast<std::size_t>(node)].next[byte] =
            static_cast<i32>(nodes_.size());
        nodes_.emplace_back();
      }
      node = nodes_[static_cast<std::size_t>(node)].next[byte];
    }
    nodes_[static_cast<std::size_t>(node)].outputs.push_back(id);
    ++pattern_count_;
  }

  // Phase 2: BFS failure links, resolving transitions into a full DFA so
  // matching is a single table walk per byte.
  std::queue<i32> queue;
  for (int c = 0; c < 256; ++c) {
    const i32 child = nodes_[0].next[static_cast<std::size_t>(c)];
    if (child < 0) {
      nodes_[0].next[static_cast<std::size_t>(c)] = 0;
    } else {
      nodes_[static_cast<std::size_t>(child)].fail = 0;
      queue.push(child);
    }
  }
  while (!queue.empty()) {
    const i32 node = queue.front();
    queue.pop();
    Node& n = nodes_[static_cast<std::size_t>(node)];
    const Node& fail_node = nodes_[static_cast<std::size_t>(n.fail)];
    n.any_output = !n.outputs.empty() || fail_node.any_output;
    for (int c = 0; c < 256; ++c) {
      const auto cu = static_cast<std::size_t>(c);
      const i32 child = n.next[cu];
      if (child < 0) {
        n.next[cu] = fail_node.next[cu];
      } else {
        nodes_[static_cast<std::size_t>(child)].fail = fail_node.next[cu];
        queue.push(child);
      }
    }
  }
}

bool AhoCorasick::contains(std::span<const u8> text) const noexcept {
  i32 state = 0;
  for (const u8 byte : text) {
    state = nodes_[static_cast<std::size_t>(state)].next[byte];
    if (nodes_[static_cast<std::size_t>(state)].any_output) return true;
  }
  return false;
}

std::vector<std::size_t> AhoCorasick::find_all(
    std::span<const u8> text) const {
  std::vector<std::size_t> hits;
  i32 state = 0;
  for (const u8 byte : text) {
    state = nodes_[static_cast<std::size_t>(state)].next[byte];
    if (!nodes_[static_cast<std::size_t>(state)].any_output) continue;
    // Walk the fail chain collecting outputs.
    for (i32 n = state; n != 0; n = nodes_[static_cast<std::size_t>(n)].fail) {
      for (const std::size_t id : nodes_[static_cast<std::size_t>(n)].outputs) {
        hits.push_back(id);
      }
      if (!nodes_[static_cast<std::size_t>(n)].any_output) break;
    }
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

}  // namespace nfp

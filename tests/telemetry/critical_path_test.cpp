// Tests for the critical-path profiler: the stage attribution must
// partition end-to-end latency exactly, identify the slow branch of an
// asymmetric parallel segment as the bottleneck, and charge the merge-wait
// tax to the NF that caused it.
#include <gtest/gtest.h>

#include "dataplane/nfp_dataplane.hpp"
#include "telemetry/critical_path.hpp"
#include "trafficgen/trafficgen.hpp"

namespace nfp {
namespace {

using telemetry::CriticalPathProfiler;
using telemetry::CriticalPathReport;
using telemetry::PacketAttribution;
using telemetry::SegmentAttribution;
using telemetry::SpanEvent;
using telemetry::SpanKind;
using telemetry::Stage;

void drive(sim::Simulator& sim, NfpDataplane& dp, TrafficConfig traffic) {
  traffic.metrics = &dp.metrics();
  TrafficGenerator gen(sim, dp.pool(), traffic);
  gen.start([&](Packet* pkt) { dp.inject(pkt); });
  sim.run();
  dp.snapshot_metrics();
}

// A tree-shaped graph with asymmetric branches: a slow IDS in parallel
// with a cheap monitor (shared version: both read-only), then a sequential
// lb tail. Per the cost model, IDS service is ~10x the monitor's, so the
// IDS must own essentially every critical path.
ServiceGraph tree_graph() {
  ServiceGraph g = ServiceGraph::parallel("tree", {"ids", "monitor"});
  Segment tail;
  tail.nfs.push_back(StageNf{"lb", 2, 1, 0, false});
  g.segments().push_back(std::move(tail));
  return g;
}

// Low enough injection rate that the slow IDS drains between packets;
// merge-wait then reflects the branch service gap, not queue buildup.
TrafficConfig slow_traffic(u64 packets) {
  TrafficConfig traffic;
  traffic.packets = packets;
  traffic.rate_pps = 4'000;  // 250 us spacing vs ~110 us IDS service
  return traffic;
}

TEST(CriticalPath, StageSumsEqualEndToEndExactly) {
  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.trace_every = 1;
  cfg.trace_capacity = 1 << 14;
  NfpDataplane dp(sim, tree_graph(), cfg);
  drive(sim, dp, slow_traffic(40));

  CriticalPathProfiler profiler(*dp.tracer());
  u64 attributed = 0;
  for (const u64 pid : dp.tracer()->pids()) {
    const std::optional<PacketAttribution> attr = profiler.attribute(pid);
    ASSERT_TRUE(attr.has_value()) << "pid " << pid;
    ++attributed;
    // The stages partition [inject, output]: the sum is exact, not ~1%.
    EXPECT_EQ(attr->attributed_ns(), attr->total_ns()) << "pid " << pid;
    EXPECT_GT(attr->total_ns(), 0u);
    // Tree shape: one parallel segment (2 branches) + one sequential hop.
    ASSERT_EQ(attr->segments.size(), 2u);
    EXPECT_TRUE(attr->segments[0].parallel());
    ASSERT_EQ(attr->segments[0].branches.size(), 2u);
    EXPECT_FALSE(attr->segments[1].parallel());
  }
  EXPECT_EQ(attributed, 40u);

  const CriticalPathReport rep = profiler.report();
  EXPECT_EQ(rep.attributed, 40u);
  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_EQ(rep.incomplete, 0u);
  SimTime booked = 0;
  for (const SimTime ns : rep.stage_ns) booked += ns;
  EXPECT_EQ(booked, rep.total_latency_ns);
}

TEST(CriticalPath, SlowBranchOwnsTheCriticalPath) {
  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.trace_every = 1;
  cfg.trace_capacity = 1 << 14;
  NfpDataplane dp(sim, tree_graph(), cfg);
  drive(sim, dp, slow_traffic(40));

  CriticalPathProfiler profiler(*dp.tracer());
  const CriticalPathReport rep = profiler.report();
  ASSERT_EQ(rep.attributed, 40u);

  // The IDS is the bottleneck on (at least) ~all packets and is charged
  // with the merge-wait it caused; the cheap monitor never is.
  ASSERT_FALSE(rep.nfs.empty());
  EXPECT_NE(rep.nfs.front().component.find("ids"), std::string::npos);
  EXPECT_GE(rep.bottleneck_share(rep.nfs.front()), 0.9);
  EXPECT_GT(rep.nfs.front().wait_caused_ns_total, 0u);
  for (const auto& nf : rep.nfs) {
    if (nf.component.find("monitor") != std::string::npos) {
      EXPECT_EQ(nf.critical, 0u);
      EXPECT_EQ(nf.wait_caused_ns_total, 0u);
    }
    if (nf.component.find("lb") != std::string::npos) {
      // Sequential hops are always on the critical path.
      EXPECT_EQ(nf.critical, rep.attributed);
    }
  }

  // Merge-wait was recorded for every attributed packet and tracks the
  // branch service gap at this (uncongested) injection rate.
  EXPECT_EQ(rep.merge_wait_ns.count(), rep.attributed);
  EXPECT_GT(rep.merge_wait_ns.mean(), 0.0);
  const std::optional<PacketAttribution> attr = profiler.attribute(0);
  ASSERT_TRUE(attr.has_value());
  const SegmentAttribution& seg = attr->segments[0];
  const auto service = [](const telemetry::BranchTiming& b) {
    return static_cast<double>(b.exit - b.enter);
  };
  EXPECT_NE(seg.branches[seg.critical].component.find("ids"),
            std::string::npos);
  double slow = 0;
  double fast = 0;
  for (const auto& b : seg.branches) {
    (b.component.find("ids") != std::string::npos ? slow : fast) = service(b);
  }
  ASSERT_GT(slow, fast);
  const double gap = slow - fast;
  const double wait = static_cast<double>(seg.merge_wait_ns);
  EXPECT_NEAR(wait, gap, 0.2 * gap)
      << "merge-wait should approximate the service gap when uncongested";

  // The rendered report carries the same story.
  const std::string text = rep.to_text();
  EXPECT_NE(text.find("critical-path attribution"), std::string::npos);
  EXPECT_NE(text.find("coverage 100.00%"), std::string::npos);
  EXPECT_NE(text.find("merge-wait tax"), std::string::npos);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"attributed\":40"), std::string::npos);
  EXPECT_NE(json.find("\"merge_wait\""), std::string::npos);
}

TEST(CriticalPath, SequentialChainHasNoMergeWait) {
  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.trace_every = 1;
  cfg.trace_capacity = 1 << 14;
  NfpDataplane dp(sim, ServiceGraph::sequential("seq", {"monitor", "lb"}),
                  cfg);
  TrafficConfig traffic;
  traffic.packets = 20;
  drive(sim, dp, traffic);

  CriticalPathProfiler profiler(*dp.tracer());
  const CriticalPathReport rep = profiler.report();
  EXPECT_EQ(rep.attributed, 20u);
  EXPECT_EQ(rep.stage_ns[static_cast<std::size_t>(Stage::kMergeWait)], 0u);
  EXPECT_EQ(rep.stage_fraction(Stage::kMergeWait), 0.0);
  // Every NF sits on every packet's critical path in a chain.
  ASSERT_EQ(rep.nfs.size(), 2u);
  for (const auto& nf : rep.nfs) {
    EXPECT_EQ(nf.packets, 20u);
    EXPECT_EQ(nf.critical, 20u);
    EXPECT_DOUBLE_EQ(rep.bottleneck_share(nf), 1.0);
    EXPECT_EQ(nf.wait_caused_ns_total, 0u);
  }
  SimTime booked = 0;
  for (const SimTime ns : rep.stage_ns) booked += ns;
  EXPECT_EQ(booked, rep.total_latency_ns);
}

// Unit-level grammar checks over hand-built span vectors.

SpanEvent ev(SpanKind kind, SimTime at, std::string component) {
  SpanEvent e;
  e.pid = 7;
  e.kind = kind;
  e.at = at;
  e.component = std::move(component);
  return e;
}

TEST(CriticalPath, AttributesSyntheticSequentialSpans) {
  const std::vector<SpanEvent> events{
      ev(SpanKind::kInject, 1'000, "rx-link"),
      ev(SpanKind::kClassify, 1'200, "classifier"),
      ev(SpanKind::kNfEnter, 1'350, "nf:fw#0"),
      ev(SpanKind::kNfExit, 1'950, "nf:fw#0"),
      ev(SpanKind::kOutput, 2'400, "tx-link"),
  };
  PacketAttribution attr;
  ASSERT_EQ(CriticalPathProfiler::attribute_events(events, &attr),
            CriticalPathProfiler::Outcome::kAttributed);
  EXPECT_EQ(attr.pid, 7u);
  EXPECT_EQ(attr.total_ns(), 1'400u);
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kClassify)], 200u);
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kQueue)], 150u);
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kService)], 600u);
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kOutput)], 450u);
  EXPECT_EQ(attr.attributed_ns(), attr.total_ns());
}

TEST(CriticalPath, AttributesSyntheticParallelSpans) {
  // Two branches: "a" is fast (arrives at 3000), "b" slow (arrives 5000).
  const std::vector<SpanEvent> events{
      ev(SpanKind::kInject, 0, "rx-link"),
      ev(SpanKind::kClassify, 500, "classifier"),
      ev(SpanKind::kNfEnter, 700, "nf:a#0"),
      ev(SpanKind::kNfEnter, 800, "nf:b#1"),
      ev(SpanKind::kNfExit, 2'500, "nf:a#0"),
      ev(SpanKind::kMergerArrival, 3'000, "nf:a#0"),
      ev(SpanKind::kNfExit, 4'500, "nf:b#1"),
      ev(SpanKind::kMergerArrival, 5'000, "nf:b#1"),
      ev(SpanKind::kMergeComplete, 5'400, "merger#0"),
      ev(SpanKind::kOutput, 6'000, "tx-link"),
  };
  PacketAttribution attr;
  ASSERT_EQ(CriticalPathProfiler::attribute_events(events, &attr),
            CriticalPathProfiler::Outcome::kAttributed);
  ASSERT_EQ(attr.segments.size(), 1u);
  const SegmentAttribution& seg = attr.segments[0];
  ASSERT_TRUE(seg.parallel());
  EXPECT_EQ(seg.branches[seg.critical].component, "nf:b#1");
  EXPECT_EQ(seg.merge_wait_ns, 2'000u);
  // Walk follows branch "a" (earliest arrival): queue 200 (classify→enter)
  // + 500 (exit→arrival), service 1800, merge-wait 2000, merge 400.
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kQueue)], 700u);
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kService)], 1'800u);
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kMergeWait)],
            2'000u);
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kMerge)], 400u);
  EXPECT_EQ(attr.stage_ns[static_cast<std::size_t>(Stage::kOutput)], 600u);
  EXPECT_EQ(attr.attributed_ns(), attr.total_ns());
}

TEST(CriticalPath, ClassifiesDroppedAndIncompleteSpanSets) {
  PacketAttribution attr;
  // A drop span anywhere marks the packet dropped.
  EXPECT_EQ(CriticalPathProfiler::attribute_events(
                {ev(SpanKind::kInject, 0, "rx-link"),
                 ev(SpanKind::kNfEnter, 100, "nf:fw#0"),
                 ev(SpanKind::kDrop, 300, "nf:fw#0")},
                &attr),
            CriticalPathProfiler::Outcome::kDropped);
  // Missing output span (e.g. evicted from the ring) => incomplete.
  EXPECT_EQ(CriticalPathProfiler::attribute_events(
                {ev(SpanKind::kInject, 0, "rx-link"),
                 ev(SpanKind::kClassify, 100, "classifier")},
                &attr),
            CriticalPathProfiler::Outcome::kIncomplete);
  // Missing inject span => incomplete.
  EXPECT_EQ(CriticalPathProfiler::attribute_events(
                {ev(SpanKind::kClassify, 100, "classifier"),
                 ev(SpanKind::kOutput, 400, "tx-link")},
                &attr),
            CriticalPathProfiler::Outcome::kIncomplete);
  EXPECT_EQ(CriticalPathProfiler::attribute_events({}, nullptr),
            CriticalPathProfiler::Outcome::kIncomplete);
}

}  // namespace
}  // namespace nfp

// CPU pinning for the sharded live dataplane.
//
// The paper's infrastructure (and Maestro-style shared-nothing scaling)
// assumes each shard's threads own a core. This wrapper applies
// sched_setaffinity on Linux and degrades to a graceful no-op elsewhere
// (or inside restricted containers), reporting whether the pin actually
// took effect so tests and CI can branch on `affinity_applied` instead of
// silently assuming multi-core behaviour.
#pragma once

#include <cstddef>

namespace nfp {

// True when this platform/build can pin threads at all (compile-time
// capability; a runtime sched_setaffinity failure is still reported as a
// false return from pin_current_thread_to_core).
bool cpu_affinity_supported() noexcept;

// Number of CPUs this process may run on (the affinity mask's popcount on
// Linux, falling back to hardware_concurrency; never 0).
std::size_t online_cpu_count() noexcept;

// Pins the calling thread to `core` (taken modulo online_cpu_count so shard
// indices above the host's core count wrap instead of failing). Returns
// true when the affinity call succeeded, false on unsupported platforms or
// when the kernel rejected the mask (e.g. a cgroup-restricted container).
bool pin_current_thread_to_core(std::size_t core) noexcept;

}  // namespace nfp

// Property-based tests: random policies compile into graphs that always
// satisfy NFP's structural invariants, whatever the rule mix.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "actions/dependency.hpp"
#include "common/rng.hpp"
#include "orch/compiler.hpp"
#include "policy/policy.hpp"

namespace nfp {
namespace {

const std::vector<std::string>& nf_universe() {
  static const std::vector<std::string> kNfs = {
      "monitor", "firewall", "lb",    "vpn",         "ids",   "gateway",
      "nat",     "caching",  "proxy", "compression", "shaper"};
  return kNfs;
}

// Draws a random acyclic policy over 3-6 distinct NFs.
Policy random_policy(Rng& rng) {
  const auto& universe = nf_universe();
  std::vector<std::string> nfs = universe;
  // Fisher-Yates prefix shuffle.
  for (std::size_t i = 0; i < nfs.size(); ++i) {
    std::swap(nfs[i], nfs[i + rng.bounded(nfs.size() - i)]);
  }
  nfs.resize(3 + rng.bounded(4));

  Policy policy("random");
  for (std::size_t i = 0; i < nfs.size(); ++i) {
    for (std::size_t j = i + 1; j < nfs.size(); ++j) {
      // Forward-only edges keep the Order relation acyclic.
      if (rng.uniform() < 0.45) policy.add_order(nfs[i], nfs[j]);
    }
  }
  if (rng.uniform() < 0.3) policy.add_position(nfs.front(), Placement::kFirst);
  if (rng.uniform() < 0.3) policy.add_position(nfs.back(), Placement::kLast);
  for (const auto& nf : nfs) policy.add_free_nf(nf);  // ensure all appear
  return policy;
}

class CompilerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CompilerPropertyTest, RandomPoliciesYieldWellFormedGraphs) {
  Rng rng(static_cast<u64>(GetParam()) * 7919 + 13);
  const ActionTable table = ActionTable::with_builtin_nfs();
  const Policy policy = random_policy(rng);

  CompileReport report;
  auto result = compile_policy(policy, table, {}, &report);
  ASSERT_TRUE(result.is_ok()) << result.error() << "\n" << policy.to_string();
  const ServiceGraph& graph = result.value();

  // (1) Every NF appears exactly once.
  std::multiset<std::string> in_graph;
  for (const Segment& seg : graph.segments()) {
    for (const StageNf& nf : seg.nfs) in_graph.insert(nf.name);
  }
  const auto names = policy.nf_names();
  EXPECT_EQ(in_graph.size(), names.size());
  for (const auto& name : names) {
    EXPECT_EQ(in_graph.count(name), 1u) << name;
  }

  // (2) Structural invariants per segment.
  std::map<std::string, std::size_t> segment_of;
  for (std::size_t s = 0; s < graph.segments().size(); ++s) {
    const Segment& seg = graph.segments()[s];
    ASSERT_FALSE(seg.nfs.empty());
    bool has_v1 = false;
    for (const StageNf& nf : seg.nfs) {
      segment_of[nf.name] = s;
      ASSERT_GE(nf.version, 1);
      ASSERT_LE(nf.version, seg.num_versions);
      has_v1 |= nf.version == 1;
      // Payload-touching NFs off version 1 need full copies.
      const auto& profile = table.profile(nf.name);
      if (nf.version != 1 && (profile.reads(Field::kPayload) ||
                              profile.writes(Field::kPayload))) {
        EXPECT_TRUE(seg.version_needs_full_copy(nf.version))
            << nf.name << " in " << graph.to_string();
      }
    }
    EXPECT_TRUE(has_v1) << "version 1 must have a consumer";
    if (seg.is_parallel()) {
      EXPECT_EQ(seg.merge.total_count, seg.nfs.size());
      for (const MergeOp& op : seg.merge.ops) {
        EXPECT_GT(op.src_version, 1);
        EXPECT_LE(op.src_version, seg.num_versions);
      }
    } else {
      EXPECT_EQ(seg.num_versions, 1);
    }
  }

  // (3) Order rules over non-parallelizable pairs stay sequential and
  //     keep their direction.
  for (const Rule& rule : policy.rules()) {
    const auto* o = std::get_if<OrderRule>(&rule);
    if (o == nullptr) continue;
    if (!segment_of.contains(o->before) || !segment_of.contains(o->after)) {
      continue;
    }
    const PairAnalysis analysis = analyze_pair(table.profile(o->before),
                                               table.profile(o->after));
    if (!analysis.parallelizable) {
      EXPECT_LT(segment_of[o->before], segment_of[o->after])
          << rule_to_string(rule) << "\n"
          << graph.to_string();
    } else {
      EXPECT_LE(segment_of[o->before], segment_of[o->after])
          << rule_to_string(rule) << "\n"
          << graph.to_string();
    }
  }

  // (4) Copies accounted consistently.
  std::size_t copies = 0;
  for (const Segment& seg : graph.segments()) copies += seg.copies();
  EXPECT_EQ(copies, graph.copies_per_packet());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerPropertyTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace nfp

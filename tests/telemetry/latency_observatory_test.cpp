// Tests for the latency observatory: HDR bucket geometry and the bounded
// quantile error vs. exact sorted samples (uniform/zipf/bimodal inputs),
// cross-shard merge associativity, concurrent record/scrape (the TSan
// workload), the live sharded-dataplane stage decomposition — per-stage
// sums telescoping to the end-to-end total — and the /latency.json
// loopback endpoint plus timeseries probes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "dataplane/sharded_dataplane.hpp"
#include "graph/service_graph.hpp"
#include "packet/builder.hpp"
#include "telemetry/latency_observatory.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/timeseries.hpp"

namespace nfp {
namespace {

using telemetry::HdrSnapshot;
using telemetry::kLatBuckets;
using telemetry::kLatencyStageCount;
using telemetry::kLatSubBuckets;
using telemetry::LatencyObservatory;
using telemetry::LatencyReport;
using telemetry::LatencyStage;
using telemetry::ShardLatencySnapshot;
using telemetry::StageLatencyBlock;

u64 xorshift(u64* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

// Exact quantile with the same rank convention as HdrSnapshot::quantile:
// the ceil(q * (n-1) + 1)-th smallest value -> index floor(q * (n-1)).
u64 exact_quantile(std::vector<u64> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

// Asserts the HDR quantile is the bucket lower bound of a value close to
// the exact one: hdr <= exact (lower bounds never overshoot) and
// hdr >= exact - exact/kLatSubBuckets - 1 (bounded relative error).
void check_quantile_error(const HdrSnapshot& snap,
                          const std::vector<u64>& values, double q,
                          const char* label) {
  const u64 exact = exact_quantile(values, q);
  const u64 hdr = snap.quantile(q);
  EXPECT_LE(hdr, exact) << label << " q=" << q;
  EXPECT_GE(hdr + exact / kLatSubBuckets + 1, exact) << label << " q=" << q;
}

void check_distribution(const std::vector<u64>& values, const char* label) {
  StageLatencyBlock block;
  for (const u64 v : values) block.record(LatencyStage::kTotal, v);
  const HdrSnapshot snap = block.snapshot(LatencyStage::kTotal);
  ASSERT_EQ(snap.count(), values.size()) << label;
  u64 sum = 0;
  for (const u64 v : values) sum += v;
  EXPECT_EQ(snap.sum, sum) << label;
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    check_quantile_error(snap, values, q, label);
  }
}

// --- HDR geometry and quantile error bound ------------------------------

TEST(LatencyObservatoryTest, BucketGeometryRoundTrips) {
  // Values 0..15 are exact; above that the bucket lower bound is within
  // 1/kLatSubBuckets of the value, and bucket_value(bucket_index(v)) <= v.
  for (u64 v = 0; v < 16; ++v) {
    EXPECT_EQ(telemetry::latency_bucket_value(
                  telemetry::latency_bucket_index(v)),
              v);
  }
  u64 seed = 99;
  for (int i = 0; i < 10'000; ++i) {
    const u64 v = xorshift(&seed) >> (i % 40);
    const std::size_t idx = telemetry::latency_bucket_index(v);
    ASSERT_LT(idx, kLatBuckets);
    const u64 lo = telemetry::latency_bucket_value(idx);
    if (idx + 1 < kLatBuckets &&
        telemetry::latency_bucket_value(idx + 1) > lo) {
      EXPECT_LE(lo, v);
      EXPECT_GT(telemetry::latency_bucket_value(idx + 1), v);
      EXPECT_LE(telemetry::latency_bucket_value(idx + 1) - lo,
                lo / kLatSubBuckets + 1);
    }
  }
}

TEST(LatencyObservatoryTest, QuantileErrorBoundUniform) {
  std::vector<u64> values;
  u64 seed = 1;
  for (int i = 0; i < 20'000; ++i) {
    values.push_back(xorshift(&seed) % 1'000'000);
  }
  check_distribution(values, "uniform");
}

TEST(LatencyObservatoryTest, QuantileErrorBoundZipf) {
  // Heavy-tailed: value ~ 1/rank over 1000 ranks, scaled to microseconds.
  std::vector<u64> values;
  u64 seed = 2;
  for (int i = 0; i < 20'000; ++i) {
    const u64 r = 1 + xorshift(&seed) % 1'000;
    values.push_back(50'000'000 / r);
  }
  check_distribution(values, "zipf");
}

TEST(LatencyObservatoryTest, QuantileErrorBoundBimodal) {
  // 95% fast path around 8us, 5% slow outliers around 2ms — the shape
  // whose p99/p999 split the observatory exists to expose.
  std::vector<u64> values;
  u64 seed = 3;
  for (int i = 0; i < 20'000; ++i) {
    if (xorshift(&seed) % 100 < 95) {
      values.push_back(7'000 + xorshift(&seed) % 2'000);
    } else {
      values.push_back(1'900'000 + xorshift(&seed) % 200'000);
    }
  }
  check_distribution(values, "bimodal");
}

// --- merge semantics ----------------------------------------------------

HdrSnapshot snapshot_of(const std::vector<u64>& values) {
  StageLatencyBlock block;
  for (const u64 v : values) block.record(LatencyStage::kTotal, v);
  return block.snapshot(LatencyStage::kTotal);
}

TEST(LatencyObservatoryTest, MergeIsAssociativeAndLossless) {
  u64 seed = 7;
  std::vector<u64> va;
  std::vector<u64> vb;
  std::vector<u64> vc;
  std::vector<u64> all;
  for (int i = 0; i < 5'000; ++i) {
    va.push_back(xorshift(&seed) % 100'000);
    vb.push_back(xorshift(&seed) % 10'000'000);
    vc.push_back(xorshift(&seed) % 1'000);
  }
  all.insert(all.end(), va.begin(), va.end());
  all.insert(all.end(), vb.begin(), vb.end());
  all.insert(all.end(), vc.begin(), vc.end());

  const HdrSnapshot a = snapshot_of(va);
  const HdrSnapshot b = snapshot_of(vb);
  const HdrSnapshot c = snapshot_of(vc);

  HdrSnapshot left = a;
  left += b;
  left += c;  // (a + b) + c
  HdrSnapshot bc = b;
  bc += c;
  HdrSnapshot right = a;
  right += bc;  // a + (b + c)

  EXPECT_EQ(left.total, right.total);
  EXPECT_EQ(left.sum, right.sum);
  for (std::size_t i = 0; i < kLatBuckets; ++i) {
    ASSERT_EQ(left.counts[i], right.counts[i]) << "bucket " << i;
  }
  // The merged snapshot answers quantiles as if all samples were recorded
  // into one histogram — same bounded error vs. the pooled exact values.
  ASSERT_EQ(left.count(), all.size());
  for (const double q : {0.5, 0.99, 0.999}) {
    check_quantile_error(left, all, q, "merged");
  }
}

TEST(LatencyObservatoryTest, DeltaSubtractsBaseline) {
  StageLatencyBlock block;
  block.record(LatencyStage::kTotal, 100);
  block.record(LatencyStage::kTotal, 200);
  const HdrSnapshot baseline = block.snapshot(LatencyStage::kTotal);
  block.record(LatencyStage::kTotal, 300'000);
  const HdrSnapshot now = block.snapshot(LatencyStage::kTotal);
  const HdrSnapshot d = telemetry::hdr_delta(now, baseline);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_EQ(d.sum, 300'000u);
  EXPECT_LE(d.quantile(0.5), 300'000u);
  EXPECT_GE(d.quantile(0.5), 300'000u - 300'000u / kLatSubBuckets - 1);
}

// --- concurrent record/scrape (TSan workload) ---------------------------

TEST(LatencyObservatoryTest, ConcurrentRecordAndScrape) {
  auto block = std::make_shared<StageLatencyBlock>();
  LatencyObservatory::Options options;
  options.sample_every = 1;
  LatencyObservatory obs(options);
  obs.add_shard("shard0", [block] {
    ShardLatencySnapshot snap;
    for (std::size_t i = 0; i < kLatencyStageCount; ++i) {
      snap.stages[i] += block->snapshot(static_cast<LatencyStage>(i));
    }
    return snap;
  });
  obs.reset_baseline();

  constexpr int kWrites = 200'000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    u64 seed = 11;
    for (int i = 0; i < kWrites; ++i) {
      block->record(LatencyStage::kTotal, xorshift(&seed) % 1'000'000);
      block->record(LatencyStage::kService, xorshift(&seed) % 100'000);
    }
    done.store(true, std::memory_order_release);
  });
  u64 scrapes = 0;
  u64 last_count = 0;
  while (!done.load(std::memory_order_acquire)) {
    const LatencyReport rep = obs.report();
    const u64 count = rep.sampled();
    EXPECT_GE(count, last_count) << "scrape went backwards";
    last_count = count;
    ++scrapes;
  }
  writer.join();
  EXPECT_GT(scrapes, 0u);
  const LatencyReport rep = obs.report();
  EXPECT_EQ(rep.sampled(), static_cast<u64>(kWrites));
  EXPECT_EQ(rep.stage(LatencyStage::kService).count(),
            static_cast<u64>(kWrites));
}

// --- live sharded dataplane ---------------------------------------------

std::vector<std::vector<u8>> make_flow_frames(std::size_t count,
                                              std::size_t flows) {
  PacketPool pool(4);
  std::vector<std::vector<u8>> frames;
  for (std::size_t i = 0; i < count; ++i) {
    PacketSpec spec;
    spec.tuple = FiveTuple{0x0A700000 + static_cast<u32>(i % flows),
                           0x0A800001, static_cast<u16>(20'000 + i % flows),
                           443, kProtoTcp};
    spec.frame_size = 64 + (i % 4) * 64;
    Packet* p = build_packet(pool, spec);
    frames.emplace_back(p->data(), p->data() + p->length());
    pool.release(p);
  }
  return frames;
}

void wait_until_done(ShardedDataplane& dp, std::size_t expected) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  u64 done = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    done = 0;
    for (std::size_t s = 0; s < dp.shard_count(); ++s) {
      done += dp.shard_delivered(s) + dp.shard_dropped(s);
    }
    if (done >= expected) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "dataplane stuck: " << done << "/" << expected << " frames";
}

// Runs `graph` on a 2-shard live dataplane with every flow sampled and
// returns the observatory report for the run.
LatencyReport run_live(const ServiceGraph& graph, std::size_t packets) {
  const auto frames = make_flow_frames(packets, 32);
  ShardedDataplaneOptions opts;
  opts.shards = 2;
  opts.pipeline.latency_sample_every = 1;
  ShardedDataplane dp({graph}, {}, opts);

  LatencyObservatory::Options lat_options;
  lat_options.sample_every = 1;
  LatencyObservatory obs(lat_options);
  dp.register_latency(obs);
  EXPECT_EQ(obs.shard_count(), 2u);

  EXPECT_TRUE(dp.start().is_ok());
  obs.reset_baseline();
  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, frames.size());
  const LatencyReport rep = obs.report();
  const ShardedResult res = dp.drain();
  EXPECT_TRUE(res.status.is_ok());
  return rep;
}

void check_stage_sums_telescope(const LatencyReport& rep,
                                std::size_t packets) {
  // Every delivered packet was sampled (sample_every=1, pass-all NFs).
  const HdrSnapshot& total = rep.stage(LatencyStage::kTotal);
  ASSERT_EQ(total.count(), packets);
  for (const LatencyStage s :
       {LatencyStage::kIngest, LatencyStage::kQueue, LatencyStage::kService,
        LatencyStage::kEgress}) {
    EXPECT_EQ(rep.stage(s).count(), packets)
        << telemetry::latency_stage_name(s);
  }
  // The acceptance invariant: stage spans telescope, so the per-stage
  // sums add up to the end-to-end sum. The decomposition is exact by
  // construction; the tolerance only covers clock quirks under load.
  u64 stage_sum = 0;
  for (const LatencyStage s :
       {LatencyStage::kIngest, LatencyStage::kQueue, LatencyStage::kService,
        LatencyStage::kMergeWait, LatencyStage::kEgress}) {
    stage_sum += rep.stage(s).sum;
  }
  EXPECT_NEAR(static_cast<double>(stage_sum),
              static_cast<double>(total.sum),
              0.01 * static_cast<double>(total.sum) + 1.0);
}

TEST(LatencyObservatoryTest, LiveSequentialStagesSumToTotal) {
  const std::size_t kPackets = 3'000;
  const LatencyReport rep = run_live(
      ServiceGraph::sequential("chain", {"monitor", "lb", "monitor"}),
      kPackets);
  check_stage_sums_telescope(rep, kPackets);
  // No merger on a sequential chain: merge_wait never fires.
  EXPECT_EQ(rep.stage(LatencyStage::kMergeWait).count(), 0u);
  ASSERT_EQ(rep.shards.size(), 2u);
  // RSS spread 32 flows across 2 shards; both saw sampled traffic.
  for (const LatencyReport::Shard& sh : rep.shards) {
    EXPECT_GT(sh.d.stage(LatencyStage::kTotal).count(), 0u) << sh.name;
  }
}

TEST(LatencyObservatoryTest, LiveParallelStagesSumToTotal) {
  const std::size_t kPackets = 3'000;
  const LatencyReport rep = run_live(
      ServiceGraph::parallel("par", {"monitor", "monitor", "monitor"}),
      kPackets);
  check_stage_sums_telescope(rep, kPackets);
  // Every packet crosses the 3-arrival merger exactly once.
  EXPECT_EQ(rep.stage(LatencyStage::kMergeWait).count(), kPackets);
  EXPECT_GT(rep.stage(LatencyStage::kMergeWait).sum, 0u);
}

// --- report surfaces ----------------------------------------------------

TEST(LatencyObservatoryTest, ReportJsonAndPrometheusShapes) {
  const LatencyReport rep = run_live(
      ServiceGraph::sequential("chain", {"monitor"}), 500);

  const auto doc = json::Value::parse(rep.to_json());
  ASSERT_TRUE(doc.is_ok()) << doc.error();
  const json::Value& root = doc.value();
  EXPECT_EQ(root.number_or("sample_every", -1), 1.0);
  EXPECT_EQ(root.number_or("sampled", -1), 500.0);
  const json::Value* shards = root.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->items().size(), 2u);
  const json::Value* total = root.find("total");
  ASSERT_NE(total, nullptr);
  const json::Value* stages = total->find("stages");
  ASSERT_NE(stages, nullptr);
  for (const char* stage : {"ingest", "queue", "service", "merge_wait",
                            "egress", "total"}) {
    const json::Value* s = stages->find(stage);
    ASSERT_NE(s, nullptr) << stage;
    EXPECT_GE(s->number_or("p99_us", -1), 0.0) << stage;
  }

  const std::string prom = rep.to_prometheus();
  EXPECT_NE(prom.find("# TYPE nfp_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("nfp_latency_ns_bucket{stage=\"total\",shard="
                      "\"shard0\",le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(prom.find("nfp_latency_ns_count{stage=\"service\",shard="
                      "\"shard1\"} "),
            std::string::npos);

  const std::string text = rep.to_text();
  EXPECT_NE(text.find("stage"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
  EXPECT_NE(text.find("p99.9us"), std::string::npos);
}

TEST(LatencyObservatoryTest, ServesLatencyJsonOverLoopback) {
  const auto frames = make_flow_frames(500, 8);
  ShardedDataplaneOptions opts;
  opts.shards = 1;
  opts.pipeline.latency_sample_every = 1;
  ShardedDataplane dp(
      {ServiceGraph::sequential("chain", {"monitor"})}, {}, opts);

  LatencyObservatory::Options lat_options;
  lat_options.sample_every = 1;
  LatencyObservatory obs(lat_options);
  dp.register_latency(obs);
  ASSERT_TRUE(dp.start().is_ok());
  obs.reset_baseline();

  telemetry::StatsServer server;
  telemetry::EndpointSources sources;
  sources.latency = &obs;
  telemetry::register_standard_endpoints(server, sources);
  ASSERT_TRUE(server.start({}).is_ok());

  for (const auto& frame : frames) {
    dp.feed({frame.data(), frame.size()});
  }
  wait_until_done(dp, frames.size());

  const auto res = telemetry::http_get(server.port(), "/latency.json");
  ASSERT_TRUE(res.is_ok()) << res.error();
  EXPECT_EQ(res.value().status, 200);
  EXPECT_EQ(res.value().content_type, "application/json");
  const auto doc = json::Value::parse(res.value().body);
  ASSERT_TRUE(doc.is_ok()) << doc.error();
  EXPECT_EQ(doc.value().number_or("sampled", -1), 500.0);

  server.stop();
  const ShardedResult drained = dp.drain();
  EXPECT_TRUE(drained.status.is_ok());
}

TEST(LatencyObservatoryTest, RegistersTimeseriesProbes) {
  auto block = std::make_shared<StageLatencyBlock>();
  block->record(LatencyStage::kTotal, 64'000);
  block->record(LatencyStage::kQueue, 8'000);
  LatencyObservatory obs;
  obs.add_shard("shard0", [block] {
    ShardLatencySnapshot snap;
    for (std::size_t i = 0; i < kLatencyStageCount; ++i) {
      snap.stages[i] += block->snapshot(static_cast<LatencyStage>(i));
    }
    snap.queue_depth = 5;
    return snap;
  });
  // add_shard captured the two records above as the baseline; record the
  // deltas the probes should see.
  block->record(LatencyStage::kTotal, 128'000);
  block->record(LatencyStage::kQueue, 16'000);

  telemetry::MetricsRegistry reg;
  u64 now = 1'000'000'000;
  telemetry::TimeseriesCollector::Options copts;
  copts.clock = [&now] { return now; };
  telemetry::TimeseriesCollector collector(reg, copts);
  obs.register_probes(collector);
  collector.sample_once();

  const auto total_p99 =
      collector.history("latency_total_p99", {{"shard", "shard0"}});
  ASSERT_EQ(total_p99.size(), 1u);
  EXPECT_GT(total_p99[0].value, 0.0);
  const auto queue_p99 =
      collector.history("latency_queue_p99", {{"shard", "shard0"}});
  ASSERT_EQ(queue_p99.size(), 1u);
  EXPECT_GT(queue_p99[0].value, 0.0);
  const auto depth =
      collector.history("latency_queue_depth", {{"shard", "shard0"}});
  ASSERT_EQ(depth.size(), 1u);
  EXPECT_DOUBLE_EQ(depth[0].value, 5.0);
}

}  // namespace
}  // namespace nfp

// Drop-conflict resolution in the merger (§3's Priority example and §5.2's
// nil packets): Order-derived parallelism uses "any drop wins" (sequential
// semantics); Priority-declared parallelism lets the highest-priority
// drop-capable NF decide — Priority(IPS > Firewall) adopts the IPS result.
#include <gtest/gtest.h>

#include "dataplane/nfp_dataplane.hpp"
#include "nfs/firewall.hpp"
#include "nfs/ids.hpp"
#include "orch/compiler.hpp"
#include "policy/parser.hpp"
#include "trafficgen/trafficgen.hpp"

namespace nfp {
namespace {

// Deterministic stand-ins: a firewall that drops everything and an IPS that
// passes everything (their verdicts conflict on every packet).
NfFactory conflicting_factory(bool ips_drops) {
  return [ips_drops](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
    if (nf.name == "firewall") {
      AclTable acl;
      acl.set_default_action(AclAction::kDrop);
      return std::make_unique<Firewall>(std::move(acl));
    }
    if (nf.name == "ips") {
      if (ips_drops) {
        // Signature matching everything our generator sends (payload 0x5c
        // = '\\').
        return std::make_unique<Ips>(std::vector<std::string>{
            std::string(6, '\x5c')});
      }
      return std::make_unique<Ips>(std::vector<std::string>{"NOMATCH"});
    }
    return make_builtin_nf(nf.name);
  };
}

u64 run_and_count_delivered(const std::string& policy_text, bool ips_drops) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto graph = compile_policy(parse_policy(policy_text).value(), table);
  EXPECT_TRUE(graph.is_ok()) << graph.error();

  sim::Simulator sim;
  DataplaneConfig cfg;
  cfg.factory = conflicting_factory(ips_drops);
  NfpDataplane dp(sim, std::move(graph).take(), std::move(cfg));
  u64 delivered = 0;
  dp.set_sink([&](Packet* p, SimTime) {
    ++delivered;
    dp.pool().release(p);
  });
  TrafficConfig traffic;
  traffic.packets = 50;
  traffic.fixed_size = 128;
  TrafficGenerator gen(sim, dp.pool(), traffic);
  gen.start([&](Packet* p) { dp.inject(p); });
  sim.run();
  EXPECT_EQ(dp.pool().in_use(), 0u);
  return delivered;
}

TEST(DropResolution, PriorityRuleAdoptsHighPriorityVerdict) {
  // Priority(IPS > Firewall): firewall drops, IPS passes => IPS wins, the
  // packets go through (§3: "adopt the processing result of IPS").
  EXPECT_EQ(run_and_count_delivered(
                "policy p\npriority(ips > firewall)", /*ips_drops=*/false),
            50u);
}

TEST(DropResolution, PriorityRuleDropsWhenHighPriorityDrops) {
  EXPECT_EQ(run_and_count_delivered(
                "policy p\npriority(ips > firewall)", /*ips_drops=*/true),
            0u);
}

TEST(DropResolution, OrderDerivedParallelismAnyDropWins) {
  // Monitor before Firewall compiles to parallel with kAnyDrop: the
  // firewall's drop always kills the packet (sequential semantics).
  EXPECT_EQ(run_and_count_delivered(
                "policy p\nchain(monitor, firewall)", /*ips_drops=*/false),
            0u);
}

TEST(DropResolution, CompilerMarksResolutionModes) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto prio = compile_policy(
      parse_policy("priority(ips > firewall)").value(), table);
  ASSERT_TRUE(prio.is_ok());
  EXPECT_EQ(prio.value().segments()[0].merge.drop_resolution,
            DropResolution::kPriority);

  auto order = compile_policy(
      parse_policy("chain(monitor, firewall)").value(), table);
  ASSERT_TRUE(order.is_ok());
  EXPECT_EQ(order.value().segments()[0].merge.drop_resolution,
            DropResolution::kAnyDrop);
}

}  // namespace
}  // namespace nfp

// Tests for the dynamic NF action inspector (§5.4): observed profiles must
// match the declared Table 2 profiles for every built-in NF.
#include <gtest/gtest.h>

#include "actions/action_table.hpp"
#include "inspector/inspector.hpp"
#include "nfs/firewall.hpp"
#include "nfs/load_balancer.hpp"
#include "nfs/monitor.hpp"
#include "nfs/vpn.hpp"

namespace nfp {
namespace {

TEST(Inspector, MonitorProfileObserved) {
  Monitor mon;
  const ActionProfile observed = inspect_nf(mon);
  EXPECT_TRUE(observed.reads(Field::kSrcIp));
  EXPECT_TRUE(observed.reads(Field::kDstIp));
  EXPECT_TRUE(observed.reads(Field::kSrcPort));
  EXPECT_TRUE(observed.reads(Field::kDstPort));
  EXPECT_FALSE(observed.drops());
  EXPECT_TRUE(observed.write_set().empty());
}

TEST(Inspector, LoadBalancerWritesObserved) {
  LoadBalancer lb = LoadBalancer::with_backends(4);
  const ActionProfile observed = inspect_nf(lb);
  EXPECT_TRUE(observed.writes(Field::kSrcIp));
  EXPECT_TRUE(observed.writes(Field::kDstIp));
  EXPECT_FALSE(observed.adds_removes());
}

TEST(Inspector, FirewallDropObserved) {
  // Synthetic ACL with a high drop fraction: random sample traffic will hit
  // a drop rule within the sample budget.
  Firewall fw(AclTable::with_synthetic_rules(200, 0.9, 5));
  const ActionProfile observed = inspect_nf(fw);
  EXPECT_TRUE(observed.drops());
  EXPECT_TRUE(observed.reads(Field::kSrcIp));
}

TEST(Inspector, VpnAddRemoveObserved) {
  Vpn vpn;
  const ActionProfile observed = inspect_nf(vpn);
  EXPECT_TRUE(observed.adds_removes());
  EXPECT_TRUE(observed.writes(Field::kPayload));
  EXPECT_TRUE(observed.reads(Field::kPayload));
}

TEST(Inspector, ObservedMatchesDeclaredForAllBuiltins) {
  // The onboarding invariant: for every built-in NF, the inspector-derived
  // profile contains no action the declaration lacks.
  for (const char* name :
       {"l3fwd", "lb", "firewall", "ids", "ips", "vpn", "monitor", "nat",
        "gateway", "caching", "proxy", "compression", "shaper"}) {
    const auto nf = make_builtin_nf(name, /*seed=*/11);
    ASSERT_NE(nf, nullptr) << name;
    const ActionProfile observed = inspect_nf(*nf);
    const ActionProfile declared = nf->declared_profile();
    for (const Action& a : observed.actions()) {
      EXPECT_NE(std::find(declared.actions().begin(),
                          declared.actions().end(), a),
                declared.actions().end())
          << name << " performed undeclared " << action_to_string(a);
    }
  }
}

TEST(Inspector, RegisterInspectedNfEntersActionTable) {
  ActionTable table;
  Monitor mon;
  register_inspected_nf(table, mon, 0.05);
  ASSERT_TRUE(table.contains("monitor"));
  EXPECT_TRUE(table.profile("monitor").reads(Field::kSrcIp));
  EXPECT_NEAR(table.find("monitor")->deployment_share, 0.05, 1e-12);
}

TEST(Inspector, DiffProfilesReportsBothDirections) {
  ActionProfile observed, declared;
  observed.add_read(Field::kSrcIp);
  observed.add_write(Field::kTtl);
  declared.add_read(Field::kSrcIp);
  declared.add_drop();
  const auto diffs = diff_profiles(observed, declared);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_NE(diffs[0].find("undeclared"), std::string::npos);
  EXPECT_NE(diffs[1].find("unobserved"), std::string::npos);
}

TEST(Inspector, DiffProfilesEmptyWhenConsistent) {
  ActionProfile p;
  p.add_read(Field::kDstIp);
  EXPECT_TRUE(diff_profiles(p, p).empty());
}

TEST(Inspector, InspectionIsDeterministic) {
  Monitor a, b;
  EXPECT_EQ(inspect_nf(a), inspect_nf(b));
}

}  // namespace
}  // namespace nfp

// Loopback integration tests for the embedded HTTP stats server: every
// standard endpoint answers with the right status and content type, the
// /metrics payload round-trips through a minimal Prometheus line parser,
// /healthz flips to 503 while a watchdog rule fires, and malformed /
// oversized / non-GET requests get their 4xx without wedging the server.
// The concurrent-scrape test doubles as the TSan workload for the server
// and collector threads.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/health_sampler.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/tracer.hpp"

namespace nfp::telemetry {
namespace {

// --- minimal Prometheus text parser ------------------------------------------
// Parses exposition lines of the form `name{k="v",...} value` (comments
// skipped) into a flat map keyed by the verbatim series part. Quantile and
// histogram helper lines simply become their own entries.

std::map<std::string, double> parse_prometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // The value follows the last space; label values never contain one
    // unescaped in this codebase's exposition.
    const std::size_t sep = line.rfind(' ');
    if (sep == std::string::npos) continue;
    out[line.substr(0, sep)] = std::strtod(line.c_str() + sep + 1, nullptr);
  }
  return out;
}

// Raw request helper for the malformed-input tests (http_get only speaks
// well-formed GET). Sends `request` verbatim, returns the status line.
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  (void)!::write(fd, request.data(), request.size());
  std::string reply;
  char buf[512];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t eol = reply.find("\r\n");
  return eol == std::string::npos ? reply : reply.substr(0, eol);
}

// A fully-populated observability stack behind one server: registry with
// all three metric kinds, a traced parallel segment, a flight-recorder
// event, a watchdog, and a primed timeseries collector.
struct Stack {
  MetricsRegistry registry;
  Tracer tracer{1, 256};
  FlightRecorder recorder;
  Watchdog watchdog{recorder};
  std::mutex mu;
  u64 clock_ns = 1'000'000'000;
  TimeseriesCollector collector;
  StatsServer server;

  Stack()
      : collector(registry, [this] {
          TimeseriesOptions opt;
          opt.clock = [this] { return clock_ns; };
          return opt;
        }()) {
    registry.counter("packets_injected_total", {{"plane", "nfp"}}).inc(100);
    registry.gauge("pool_in_use", {{"plane", "nfp"}}).set(7);
    Histogram& h =
        registry.histogram("packet_latency_ns", {{"plane", "nfp"}});
    for (u64 v = 1; v <= 10; ++v) h.record(v * 100);

    tracer.record(0, SpanKind::kInject, 0, "rx-link");
    tracer.record(0, SpanKind::kClassify, 100, "classifier");
    tracer.record(0, SpanKind::kNfEnter, 200, "nf:firewall#0");
    tracer.record(0, SpanKind::kNfExit, 300, "nf:firewall#0");
    tracer.record(0, SpanKind::kOutput, 400, "tx-link");

    recorder.note(Severity::kWarn, 42, "pool", "pool pressure test event");

    collector.set_mutex(&mu);
    collector.publish_derived(&registry);
    collector.sample_once();
    clock_ns += 1'000'000'000;
    registry.counter("packets_injected_total", {{"plane", "nfp"}}).inc(50);
    collector.sample_once();

    EndpointSources sources;
    sources.registry = &registry;
    sources.tracer = &tracer;
    sources.recorder = &recorder;
    sources.watchdog = &watchdog;
    sources.timeseries = &collector;
    sources.mu = &mu;
    register_standard_endpoints(server, sources);
  }

  std::uint16_t start() {
    StatsServer::Options options;  // port 0: ephemeral
    const Status started = server.start(options);
    EXPECT_TRUE(started.is_ok()) << started.message();
    return server.port();
  }
};

TEST(StatsServerTest, ServesAllStandardEndpoints) {
  Stack stack;
  const std::uint16_t port = stack.start();
  ASSERT_NE(port, 0);

  const struct {
    const char* path;
    const char* content_type;
  } endpoints[] = {
      {"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
      {"/metrics.json", "application/json"},
      {"/timeseries.json", "application/json"},
      {"/profile.json", "application/json"},
      {"/recorder.json", "application/json"},
      {"/trace.json", "application/json"},
      {"/healthz", "application/json"},
  };
  for (const auto& ep : endpoints) {
    const auto result = http_get(port, ep.path);
    ASSERT_TRUE(result.is_ok()) << ep.path << ": " << result.error();
    EXPECT_EQ(result.value().status, 200) << ep.path;
    EXPECT_EQ(result.value().content_type, ep.content_type) << ep.path;
    EXPECT_FALSE(result.value().body.empty()) << ep.path;
  }
  // Every *.json endpoint parses.
  for (const auto& ep : endpoints) {
    if (std::strcmp(ep.path, "/metrics") == 0) continue;
    const auto result = http_get(port, ep.path);
    ASSERT_TRUE(result.is_ok());
    EXPECT_TRUE(json::Value::parse(result.value().body).is_ok()) << ep.path;
  }
  EXPECT_GE(stack.server.requests_served(), 13u);
}

TEST(StatsServerTest, MetricsRoundTripThroughPrometheusParser) {
  Stack stack;
  const std::uint16_t port = stack.start();
  const auto result = http_get(port, "/metrics");
  ASSERT_TRUE(result.is_ok());
  const auto series = parse_prometheus(result.value().body);
  ASSERT_FALSE(series.empty());
  EXPECT_DOUBLE_EQ(series.at("packets_injected_total{plane=\"nfp\"}"), 150.0);
  EXPECT_DOUBLE_EQ(series.at("pool_in_use{plane=\"nfp\"}"), 7.0);
  EXPECT_DOUBLE_EQ(series.at("packet_latency_ns_count{plane=\"nfp\"}"), 10.0);
  // The collector published its derived rate back into the registry:
  // 50 packets over the 1s between the two priming ticks.
  EXPECT_DOUBLE_EQ(
      series.at("packets_injected_total:rate{plane=\"nfp\"}"), 50.0);
}

TEST(StatsServerTest, HealthzFlipsTo503WhileWatchdogFires) {
  Stack stack;
  u64 drops = 0;
  stack.watchdog.watch_drop_counter("nf:firewall#0", [&drops] {
    return drops;
  });
  stack.watchdog.evaluate();  // primes the drop delta
  const std::uint16_t port = stack.start();

  auto result = http_get(port, "/healthz");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().status, 200);

  drops += 100'000;  // spike far above the threshold
  EXPECT_TRUE(stack.watchdog.evaluate());
  result = http_get(port, "/healthz");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().status, 503);
  const auto doc = json::Value::parse(result.value().body);
  ASSERT_TRUE(doc.is_ok());
  const json::Value* firing = doc.value().find("firing");
  ASSERT_NE(firing, nullptr);
  ASSERT_EQ(firing->size(), 1u);
  EXPECT_NE(firing->items()[0].as_string().find("nf:firewall#0"),
            std::string::npos);
  // The triage view carries the recorder's recent warn/critical events.
  EXPECT_NE(result.value().body.find("drop"), std::string::npos);

  // Condition clears (no new drops) -> healthy again.
  EXPECT_FALSE(stack.watchdog.evaluate());
  result = http_get(port, "/healthz");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().status, 200);
}

TEST(StatsServerTest, UnknownPathIs404WithEndpointIndex) {
  Stack stack;
  const std::uint16_t port = stack.start();
  const auto result = http_get(port, "/nope");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().status, 404);
  EXPECT_NE(result.value().body.find("/metrics"), std::string::npos);
  EXPECT_NE(result.value().body.find("/healthz"), std::string::npos);
}

TEST(StatsServerTest, RejectsNonGetMalformedAndOversizedRequests) {
  Stack stack;
  StatsServer::Options options;
  options.max_request_bytes = 256;
  const Status started = stack.server.start(options);
  ASSERT_TRUE(started.is_ok()) << started.message();
  const std::uint16_t port = stack.server.port();

  EXPECT_NE(raw_request(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(raw_request(port, "garbage\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(raw_request(port, std::string(1024, 'A')).find("413"),
            std::string::npos);
  // The server survives all of the above.
  const auto result = http_get(port, "/healthz");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().status, 200);
}

TEST(StatsServerTest, StopReleasesPortAndRefusesConnections) {
  Stack stack;
  const std::uint16_t port = stack.start();
  ASSERT_TRUE(http_get(port, "/healthz").is_ok());
  stack.server.stop();
  EXPECT_FALSE(stack.server.running());
  EXPECT_FALSE(http_get(port, "/healthz").is_ok());
  // The same object restarts cleanly with its handlers intact.
  StatsServer::Options options;
  const Status restarted = stack.server.start(options);
  ASSERT_TRUE(restarted.is_ok()) << restarted.message();
  const auto result = http_get(stack.server.port(), "/metrics");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().status, 200);
}

// TSan workload: scraping threads hammer every endpoint while the "wave
// loop" thread keeps mutating the registry (new series under the shared
// mutex, cell updates outside it) and ticking the collector — the exact
// interleaving `nfp_cli run --serve` produces.
TEST(StatsServerTest, ConcurrentScrapesDuringLiveMutation) {
  Stack stack;
  const std::uint16_t port = stack.start();

  std::atomic<bool> done{false};
  std::thread mutator([&] {
    for (int i = 0; i < 60; ++i) {
      {
        std::lock_guard<std::mutex> lock(stack.mu);
        stack.registry
            .counter("wave_packets_total",
                     {{"wave", std::to_string(i % 8)}})
            .inc(17);
        stack.tracer.record(static_cast<u64>(i), SpanKind::kInject,
                            static_cast<SimTime>(i) * 10, "rx-link");
        stack.tracer.record(static_cast<u64>(i), SpanKind::kClassify,
                            static_cast<SimTime>(i) * 10 + 5, "classifier");
      }
      stack.registry.counter("packets_injected_total", {{"plane", "nfp"}})
          .inc(1);  // cell update: no structural lock needed
      stack.clock_ns += 10'000'000;
      stack.collector.sample_once();
    }
    done.store(true);
  });

  std::vector<std::thread> scrapers;
  const char* paths[] = {"/metrics", "/metrics.json", "/timeseries.json",
                         "/trace.json"};
  for (const char* path : paths) {
    scrapers.emplace_back([&, path] {
      while (!done.load()) {
        const auto result = http_get(port, path);
        ASSERT_TRUE(result.is_ok()) << path;
        ASSERT_EQ(result.value().status, 200) << path;
      }
    });
  }
  mutator.join();
  for (std::thread& t : scrapers) t.join();

  const auto result = http_get(port, "/metrics.json");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(json::Value::parse(result.value().body).is_ok());
}

}  // namespace
}  // namespace nfp::telemetry

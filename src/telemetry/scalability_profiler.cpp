#include "telemetry/scalability_profiler.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "telemetry/health_sampler.hpp"
#include "telemetry/timeseries.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define NFP_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define NFP_HAVE_PERF_EVENT 0
#endif

namespace nfp::telemetry {

namespace {

constexpr std::array<const char*, kCycleBucketCount> kBucketNames = {
    "useful",     "starved",    "ring_wait",
    "pool_wait",  "merge_wait", "classifier_miss",
};

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

u64 saturating_sub(u64 a, u64 b) noexcept { return a >= b ? a - b : 0; }

}  // namespace

const char* cycle_bucket_name(CycleBucket b) noexcept {
  const auto i = static_cast<std::size_t>(b);
  return i < kBucketNames.size() ? kBucketNames[i] : "unknown";
}

u64 ShardScalabilitySnapshot::accounted_ns() const noexcept {
  u64 total = 0;
  for (const u64 v : ns) total += v;
  return total;
}

ShardScalabilitySnapshot& ShardScalabilitySnapshot::operator+=(
    const ShardScalabilitySnapshot& other) noexcept {
  for (std::size_t i = 0; i < kCycleBucketCount; ++i) ns[i] += other.ns[i];
  pool_cas_retries += other.pool_cas_retries;
  ring_full_events += other.ring_full_events;
  backoff_spins += other.backoff_spins;
  classifier_hits += other.classifier_hits;
  classifier_misses += other.classifier_misses;
  delivered += other.delivered;
  dropped += other.dropped;
  threads += other.threads;
  return *this;
}

ShardScalabilitySnapshot snapshot_delta(
    const ShardScalabilitySnapshot& now,
    const ShardScalabilitySnapshot& then) noexcept {
  ShardScalabilitySnapshot d;
  for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
    d.ns[i] = saturating_sub(now.ns[i], then.ns[i]);
  }
  d.pool_cas_retries = saturating_sub(now.pool_cas_retries,
                                      then.pool_cas_retries);
  d.ring_full_events = saturating_sub(now.ring_full_events,
                                      then.ring_full_events);
  d.backoff_spins = saturating_sub(now.backoff_spins, then.backoff_spins);
  d.classifier_hits = saturating_sub(now.classifier_hits,
                                     then.classifier_hits);
  d.classifier_misses = saturating_sub(now.classifier_misses,
                                       then.classifier_misses);
  d.delivered = saturating_sub(now.delivered, then.delivered);
  d.dropped = saturating_sub(now.dropped, then.dropped);
  d.threads = now.threads;
  return d;
}

// ---------------------------------------------------------------------------
// Hardware counters.

#if NFP_HAVE_PERF_EVENT
namespace {
int perf_open(u32 type, u64 config, std::string* error) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Count children too: the dataplane threads are spawned after open().
  attr.inherit = 1;
  const long fd = syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0);
  if (fd < 0 && error != nullptr && error->empty()) {
    *error = std::string("perf_event_open: ") + std::strerror(errno);
  }
  return static_cast<int>(fd);
}
}  // namespace
#endif

HwCounterGroup::~HwCounterGroup() {
#if NFP_HAVE_PERF_EVENT
  if (fd_cache_ >= 0) close(fd_cache_);
  if (fd_stall_ >= 0) close(fd_stall_);
#endif
}

bool HwCounterGroup::open() {
  if (attempted_) return opened();
  attempted_ = true;
#if NFP_HAVE_PERF_EVENT
  fd_cache_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
                        &error_);
  fd_stall_ = perf_open(PERF_TYPE_HARDWARE,
                        PERF_COUNT_HW_STALLED_CYCLES_BACKEND, &error_);
  // All-or-nothing: a half-open group would report a misleading zero for
  // the missing counter.
  if (fd_cache_ < 0 || fd_stall_ < 0) {
    if (fd_cache_ >= 0) close(fd_cache_);
    if (fd_stall_ >= 0) close(fd_stall_);
    fd_cache_ = fd_stall_ = -1;
    if (error_.empty()) error_ = "perf_event_open: unavailable";
    return false;
  }
  return true;
#else
  error_ = "perf_event_open: not supported on this platform";
  return false;
#endif
}

HwSample HwCounterGroup::read() const {
  HwSample s;
#if NFP_HAVE_PERF_EVENT
  if (fd_cache_ >= 0 && fd_stall_ >= 0) {
    u64 cache = 0;
    u64 stall = 0;
    const bool ok =
        ::read(fd_cache_, &cache, sizeof(cache)) == sizeof(cache) &&
        ::read(fd_stall_, &stall, sizeof(stall)) == sizeof(stall);
    if (ok) {
      s.source = "perf_event";
      s.cache_misses = cache;
      s.stalled_cycles = stall;
      return s;
    }
    s.detail = "perf_event read failed";
    return s;
  }
#endif
  s.detail = error_;
  return s;
}

// ---------------------------------------------------------------------------
// Report rendering.

std::string ScalabilityReport::top_contention_source() const {
  // Useful is the goal and starved is the absence of demand — neither is
  // contention. The answer is the largest genuine wait bucket: ring
  // backpressure, pool exhaustion, merge-order waits, or classifier
  // misses.
  double best = 0;
  std::size_t best_i = kCycleBucketCount;
  for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
    if (i == static_cast<std::size_t>(CycleBucket::kUseful) ||
        i == static_cast<std::size_t>(CycleBucket::kStarved)) {
      continue;
    }
    if (total_share[i] > best) {
      best = total_share[i];
      best_i = i;
    }
  }
  if (best_i == kCycleBucketCount) return {};
  return kBucketNames[best_i];
}

std::string ScalabilityReport::to_json() const {
  std::ostringstream out;
  auto snapshot_json = [&out](const ShardScalabilitySnapshot& d,
                              const std::array<double, kCycleBucketCount>&
                                  share) {
    out << "\"shares\":{";
    for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
      if (i > 0) out << ",";
      out << "\"" << kBucketNames[i] << "\":" << fmt_double(share[i]);
    }
    out << "},\"ns\":{";
    for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
      if (i > 0) out << ",";
      out << "\"" << kBucketNames[i] << "\":" << d.ns[i];
    }
    out << "},\"events\":{\"pool_cas_retries\":" << d.pool_cas_retries
        << ",\"ring_full_events\":" << d.ring_full_events
        << ",\"backoff_spins\":" << d.backoff_spins
        << ",\"classifier_hits\":" << d.classifier_hits
        << ",\"classifier_misses\":" << d.classifier_misses
        << "},\"delivered\":" << d.delivered << ",\"dropped\":" << d.dropped
        << ",\"threads\":" << d.threads;
  };

  out << "{\"wall_seconds\":" << fmt_double(wall_seconds) << ",\"shards\":[";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& sh = shards[s];
    if (s > 0) out << ",";
    out << "{\"name\":\"" << escape(sh.name) << "\",\"accounted_seconds\":"
        << fmt_double(sh.accounted_seconds) << ",\"pps\":"
        << fmt_double(sh.pps) << ",\"projected_pps\":"
        << fmt_double(sh.projected_pps) << ",";
    snapshot_json(sh.d, sh.share);
    out << "}";
  }
  out << "],\"total\":{\"accounted_seconds\":"
      << fmt_double(total_accounted_seconds) << ",\"pps\":"
      << fmt_double(total_pps) << ",";
  snapshot_json(total, total_share);
  out << "},\"top_contention_source\":\"" << escape(top_contention_source())
      << "\",\"hw\":{\"source\":\"" << escape(hw.source) << "\"";
  if (hw.source == "perf_event") {
    out << ",\"cache_misses\":" << hw.cache_misses
        << ",\"stalled_cycles\":" << hw.stalled_cycles;
  } else {
    out << ",\"reason\":\"" << escape(hw.detail)
        << "\",\"proxy\":{\"pool_cas_retries\":" << total.pool_cas_retries
        << ",\"ring_full_events\":" << total.ring_full_events
        << ",\"backoff_spins\":" << total.backoff_spins << "}";
  }
  out << "}}";
  return out.str();
}

std::string ScalabilityReport::to_text() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-10s %8s %11s  %7s %7s %7s %7s %7s %7s\n", "shard",
                "acct_s", "pps", "useful", "starve", "ring", "pool", "merge",
                "miss");
  out << line;
  auto row = [&](const std::string& name, double acct_s, double pps,
                 const std::array<double, kCycleBucketCount>& share) {
    std::snprintf(
        line, sizeof(line),
        "%-10s %8.3f %11.0f  %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
        name.c_str(), acct_s, pps,
        100 * share[static_cast<std::size_t>(CycleBucket::kUseful)],
        100 * share[static_cast<std::size_t>(CycleBucket::kStarved)],
        100 * share[static_cast<std::size_t>(CycleBucket::kRingWait)],
        100 * share[static_cast<std::size_t>(CycleBucket::kPoolWait)],
        100 * share[static_cast<std::size_t>(CycleBucket::kMergeWait)],
        100 * share[static_cast<std::size_t>(CycleBucket::kClassifierMiss)]);
    out << line;
  };
  for (const Shard& sh : shards) {
    row(sh.name, sh.accounted_seconds, sh.pps, sh.share);
  }
  if (shards.size() > 1) {
    row("TOTAL", total_accounted_seconds, total_pps, total_share);
  }
  if (hw.source == "perf_event") {
    out << "hw: perf_event cache_misses=" << hw.cache_misses
        << " stalled_cycles=" << hw.stalled_cycles << "\n";
  } else {
    out << "hw: " << hw.source;
    if (!hw.detail.empty()) out << " (" << hw.detail << ")";
    out << "; proxies: cas_retries=" << total.pool_cas_retries
        << " ring_full=" << total.ring_full_events
        << " backoff_spins=" << total.backoff_spins << "\n";
  }
  const std::string top = top_contention_source();
  if (!top.empty()) out << "top contention source: " << top << "\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Profiler.

ScalabilityProfiler::ScalabilityProfiler(Options options)
    : options_(std::move(options)),
      probe_cache_(std::make_shared<ProbeCache>()) {
  if (!options_.clock) options_.clock = [] { return mono_now_ns(); };
  baseline_ns_ = options_.clock();
  // Open before the dataplane spawns its threads so inherit=1 covers them.
  if (options_.enable_hw) hw_.open();
}

void ScalabilityProfiler::add_shard(std::string name, SnapshotFn fn) {
  if (!fn) return;
  const std::scoped_lock lock(mu_);
  Source src;
  src.name = std::move(name);
  src.baseline = fn();
  src.fn = std::move(fn);
  sources_.push_back(std::move(src));
}

std::size_t ScalabilityProfiler::shard_count() const {
  const std::scoped_lock lock(mu_);
  return sources_.size();
}

void ScalabilityProfiler::reset_baseline() {
  const std::scoped_lock lock(mu_);
  for (Source& src : sources_) src.baseline = src.fn();
  baseline_ns_ = options_.clock();
  if (hw_.opened()) {
    hw_baseline_ = hw_.read();
    hw_baseline_set_ = true;
  }
}

ScalabilityReport ScalabilityProfiler::report() const {
  const std::scoped_lock lock(mu_);
  ScalabilityReport rep;
  const u64 now = options_.clock();
  rep.wall_seconds =
      static_cast<double>(saturating_sub(now, baseline_ns_)) / 1e9;

  for (const Source& src : sources_) {
    ScalabilityReport::Shard sh;
    sh.name = src.name;
    sh.d = snapshot_delta(src.fn(), src.baseline);
    const u64 accounted = sh.d.accounted_ns();
    sh.accounted_seconds = static_cast<double>(accounted) / 1e9;
    for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
      sh.share[i] = accounted > 0 ? static_cast<double>(sh.d.ns[i]) /
                                        static_cast<double>(accounted)
                                  : 0.0;
    }
    sh.pps = rep.wall_seconds > 0
                 ? static_cast<double>(sh.d.delivered) / rep.wall_seconds
                 : 0.0;
    const double useful =
        sh.share[static_cast<std::size_t>(CycleBucket::kUseful)];
    sh.projected_pps = useful > 1e-9 ? sh.pps / useful : sh.pps;
    rep.total += sh.d;
    rep.shards.push_back(std::move(sh));
  }

  const u64 total_accounted = rep.total.accounted_ns();
  rep.total_accounted_seconds = static_cast<double>(total_accounted) / 1e9;
  for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
    rep.total_share[i] =
        total_accounted > 0 ? static_cast<double>(rep.total.ns[i]) /
                                  static_cast<double>(total_accounted)
                            : 0.0;
  }
  rep.total_pps = rep.wall_seconds > 0
                      ? static_cast<double>(rep.total.delivered) /
                            rep.wall_seconds
                      : 0.0;

  if (hw_.opened()) {
    rep.hw = hw_.read();
    if (rep.hw.source == "perf_event" && hw_baseline_set_) {
      rep.hw.cache_misses =
          saturating_sub(rep.hw.cache_misses, hw_baseline_.cache_misses);
      rep.hw.stalled_cycles =
          saturating_sub(rep.hw.stalled_cycles, hw_baseline_.stalled_cycles);
    }
  } else {
    rep.hw.source = "software-proxy";
    rep.hw.detail = hw_.error();
  }
  return rep;
}

void ScalabilityProfiler::register_probes(TimeseriesCollector& collector) {
  const std::size_t shard_total = shard_count();
  // One report per collector tick: the first probe sampled inside a 200ms
  // window refreshes the cache, the rest read it. shared_ptr keeps the
  // cache alive even if probes outlive a re-registered profiler.
  std::shared_ptr<ProbeCache> cache = probe_cache_;
  auto refreshed = [this, cache]() -> const ScalabilityReport& {
    const u64 now = options_.clock();
    if (cache->stamp_ns == 0 || saturating_sub(now, cache->stamp_ns) >
                                    200ull * 1000 * 1000) {
      cache->report = report();
      cache->stamp_ns = now;
    }
    return cache->report;
  };
  for (std::size_t s = 0; s < shard_total; ++s) {
    std::string shard_name;
    {
      const std::scoped_lock lock(mu_);
      shard_name = sources_[s].name;
    }
    const Labels labels{{"shard", shard_name}};
    for (std::size_t b = 0; b < kCycleBucketCount; ++b) {
      collector.add_probe(
          std::string("scalability_") + kBucketNames[b] + "_share", labels,
          [refreshed, s, b] {
            const ScalabilityReport& rep = refreshed();
            return s < rep.shards.size() ? rep.shards[s].share[b] : 0.0;
          });
    }
    collector.add_probe("scalability_projected_pps", labels, [refreshed, s] {
      const ScalabilityReport& rep = refreshed();
      return s < rep.shards.size() ? rep.shards[s].projected_pps : 0.0;
    });
  }
}

}  // namespace nfp::telemetry

# Empty dependencies file for action_inspector.
# This may be replaced when dependencies are built.

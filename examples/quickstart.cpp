// Quickstart: the complete NFP workflow in one file.
//
//   1. Write a policy (Order/Priority/Position rules, §3).
//   2. Compile it into a service graph with the orchestrator (§4).
//   3. Run traffic through the NFP dataplane (§5) and look at the results.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "dataplane/nfp_dataplane.hpp"
#include "nfs/monitor.hpp"
#include "orch/compiler.hpp"
#include "policy/parser.hpp"
#include "trafficgen/latency_recorder.hpp"
#include "trafficgen/trafficgen.hpp"

int main() {
  using namespace nfp;

  // 1. A chaining policy. chain(...) is the traditional sequential
  //    description; NFP hunts for parallelism inside it automatically.
  const char* policy_text = R"(
    policy quickstart
    chain(ids, monitor, lb)
  )";
  const auto policy = parse_policy(policy_text);
  if (!policy) {
    std::printf("policy error: %s\n", policy.error().c_str());
    return 1;
  }
  std::printf("%s\n\n", policy.value().to_string().c_str());

  // 2. Compile against the built-in NF action table (paper Table 2).
  const ActionTable table = ActionTable::with_builtin_nfs();
  CompileReport report;
  auto compiled = compile_policy(policy.value(), table, {}, &report);
  if (!compiled) {
    std::printf("compile error: %s\n", compiled.error().c_str());
    return 1;
  }
  const ServiceGraph graph = std::move(compiled).take();
  std::printf("%s\n", graph.to_string().c_str());
  for (const auto& d : report.decisions) {
    std::printf("  pair %-10s -> %-10s : %s\n", d.nf1.c_str(), d.nf2.c_str(),
                std::string(pair_parallelism_name(d.verdict)).c_str());
  }

  // 3. Run 10k packets of data-center traffic through the graph.
  sim::Simulator sim;
  NfpDataplane dataplane(sim, graph);
  LatencyRecorder latency;
  dataplane.set_sink([&](Packet* pkt, SimTime out) {
    latency.record(pkt->inject_time(), out);
    dataplane.pool().release(pkt);
  });

  TrafficConfig traffic;
  traffic.size_model = SizeModel::kDataCenter;
  traffic.packets = 10'000;
  traffic.rate_pps = 100'000;
  TrafficGenerator generator(sim, dataplane.pool(), traffic);
  generator.start([&](Packet* pkt) { dataplane.inject(pkt); });
  sim.run();

  const auto& stats = dataplane.stats();
  std::printf("\ninjected %llu, delivered %llu, dropped by NFs %llu\n",
              static_cast<unsigned long long>(stats.injected),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped_by_nf));
  std::printf("copies per packet: %zu (64B header-only)\n",
              graph.copies_per_packet());
  std::printf("latency: mean %.1f us, p50 %.1f us, p99 %.1f us\n",
              latency.mean_us(), latency.median_us(), latency.p99_us());

  // NF state is inspectable after the run.
  for (std::size_t s = 0; s < graph.segments().size(); ++s) {
    for (std::size_t k = 0; k < graph.segments()[s].nfs.size(); ++k) {
      if (auto* mon = dynamic_cast<Monitor*>(dataplane.nf(s, k))) {
        std::printf("monitor saw %llu packets across %zu flows\n",
                    static_cast<unsigned long long>(mon->total_packets()),
                    mon->flow_count());
      }
    }
  }
  return 0;
}

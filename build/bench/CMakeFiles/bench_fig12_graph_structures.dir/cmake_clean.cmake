file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_graph_structures.dir/bench_fig12_graph_structures.cpp.o"
  "CMakeFiles/bench_fig12_graph_structures.dir/bench_fig12_graph_structures.cpp.o.d"
  "bench_fig12_graph_structures"
  "bench_fig12_graph_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_graph_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

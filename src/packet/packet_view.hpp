// PacketView: the accessor layer through which NFs read and modify packets.
//
// This is NFP's "DPDK based interfaces for NFs to access and modify packets"
// (paper §5.4). Every access goes through a typed getter/setter so that the
// action inspector can attach an ActionRecorder and derive an NF's action
// profile automatically (reads, writes, header add/remove, drops) — the
// same mechanism the paper's inspection tool uses on the packet data
// structure calls.
#pragma once

#include <optional>
#include <span>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "packet/fields.hpp"
#include "packet/headers.hpp"
#include "packet/packet.hpp"

namespace nfp {

// Receives a callback for each packet access; implemented by the inspector.
class ActionRecorder {
 public:
  virtual ~ActionRecorder() = default;
  virtual void on_read(Field field) = 0;
  virtual void on_write(Field field) = 0;
  virtual void on_add_remove(Field field) = 0;
};

class PacketView {
 public:
  explicit PacketView(Packet& pkt, ActionRecorder* recorder = nullptr)
      : pkt_(&pkt), rec_(recorder) {
    parse();
  }

  bool valid() const noexcept { return valid_; }
  Packet& packet() noexcept { return *pkt_; }
  const Packet& packet() const noexcept { return *pkt_; }

  // --- L3 fields -------------------------------------------------------------
  u32 src_ip() const {
    record_read(Field::kSrcIp);
    return ip().src_ip();
  }
  u32 dst_ip() const {
    record_read(Field::kDstIp);
    return ip().dst_ip();
  }
  u8 ttl() const {
    record_read(Field::kTtl);
    return ip().ttl();
  }
  u8 tos() const {
    record_read(Field::kTos);
    return ip().tos();
  }
  u8 protocol() const {
    record_read(Field::kProto);
    return proto_;
  }

  void set_src_ip(u32 v) {
    record_write(Field::kSrcIp);
    ip().set_src_ip(v);
  }
  void set_dst_ip(u32 v) {
    record_write(Field::kDstIp);
    ip().set_dst_ip(v);
  }
  void set_ttl(u8 v) {
    record_write(Field::kTtl);
    ip().set_ttl(v);
  }
  void set_tos(u8 v) {
    record_write(Field::kTos);
    ip().set_tos(v);
  }

  // --- L4 fields ---------------------------------------------------------------
  u16 src_port() const {
    record_read(Field::kSrcPort);
    return l4_port(0);
  }
  u16 dst_port() const {
    record_read(Field::kDstPort);
    return l4_port(2);
  }
  void set_src_port(u16 v) {
    record_write(Field::kSrcPort);
    set_l4_port(0, v);
  }
  void set_dst_port(u16 v) {
    record_write(Field::kDstPort);
    set_l4_port(2, v);
  }

  FiveTuple five_tuple() const {
    return FiveTuple{src_ip(), dst_ip(), src_port(), dst_port(), protocol()};
  }

  // --- payload -----------------------------------------------------------------
  std::span<const u8> payload() const {
    record_read(Field::kPayload);
    return {pkt_->data() + payload_off_, payload_len()};
  }
  std::span<u8> mutable_payload() {
    // A mutable span both exposes the current bytes and accepts new ones;
    // in-place transforms (encryption, compression) read and write.
    record_read(Field::kPayload);
    record_write(Field::kPayload);
    return {pkt_->data() + payload_off_, payload_len()};
  }
  // Resizes the payload in place (e.g. the compressor NF); `new_len` must not
  // exceed the buffer capacity.
  void resize_payload(std::size_t new_len);

  // --- AH header (VPN NF) --------------------------------------------------------
  bool has_ah() const noexcept { return ah_off_.has_value(); }
  // Inserts an IPsec AH between the IPv4 header and the L4 segment;
  // updates IP protocol/total-length fields. Returns the AH view.
  AhView add_ah_header(u32 spi, u32 sequence);
  // Removes the AH, restoring the original next protocol.
  void remove_ah_header();
  AhView ah() {
    record_read(Field::kAhHeader);
    return AhView(pkt_->data() + *ah_off_);
  }

  // --- checksums ------------------------------------------------------------------
  // Recomputes the IPv4 (and, when requested, L4) checksums after writes.
  void update_checksums(bool include_l4 = false);
  bool verify_ip_checksum() const;

  // --- raw offsets (used by the merger and tests) ------------------------------------
  std::size_t l3_offset() const noexcept { return l3_off_; }
  std::size_t l4_offset() const noexcept { return l4_off_; }
  std::size_t payload_offset() const noexcept { return payload_off_; }
  std::size_t payload_len() const noexcept {
    return pkt_->length() > payload_off_ ? pkt_->length() - payload_off_ : 0;
  }

  // Re-parses after structural changes done outside this view.
  void reparse() { parse(); }

 private:
  void parse();

  Ipv4View ip() const noexcept { return Ipv4View(pkt_->data() + l3_off_); }

  u16 l4_port(std::size_t off) const noexcept {
    return load_be16(pkt_->data() + l4_off_ + off);
  }
  void set_l4_port(std::size_t off, u16 v) noexcept {
    store_be16(pkt_->data() + l4_off_ + off, v);
  }

  void record_read(Field f) const {
    if (rec_ != nullptr) rec_->on_read(f);
  }
  void record_write(Field f) const {
    if (rec_ != nullptr) rec_->on_write(f);
  }
  void record_add_remove(Field f) const {
    if (rec_ != nullptr) rec_->on_add_remove(f);
  }

  Packet* pkt_;
  ActionRecorder* rec_;
  bool valid_ = false;
  u8 proto_ = 0;
  std::size_t l3_off_ = 0;
  std::size_t l4_off_ = 0;
  std::size_t payload_off_ = 0;
  std::optional<std::size_t> ah_off_;
};

}  // namespace nfp


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acl/acl.cpp" "src/CMakeFiles/nfp.dir/acl/acl.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/acl/acl.cpp.o.d"
  "/root/repo/src/actions/action_table.cpp" "src/CMakeFiles/nfp.dir/actions/action_table.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/actions/action_table.cpp.o.d"
  "/root/repo/src/actions/dependency.cpp" "src/CMakeFiles/nfp.dir/actions/dependency.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/actions/dependency.cpp.o.d"
  "/root/repo/src/baseline/onv_dataplane.cpp" "src/CMakeFiles/nfp.dir/baseline/onv_dataplane.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/baseline/onv_dataplane.cpp.o.d"
  "/root/repo/src/baseline/rtc_dataplane.cpp" "src/CMakeFiles/nfp.dir/baseline/rtc_dataplane.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/baseline/rtc_dataplane.cpp.o.d"
  "/root/repo/src/cluster/nsh.cpp" "src/CMakeFiles/nfp.dir/cluster/nsh.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/cluster/nsh.cpp.o.d"
  "/root/repo/src/cluster/partition.cpp" "src/CMakeFiles/nfp.dir/cluster/partition.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/cluster/partition.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/CMakeFiles/nfp.dir/common/string_util.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/common/string_util.cpp.o.d"
  "/root/repo/src/crypto/aes128.cpp" "src/CMakeFiles/nfp.dir/crypto/aes128.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/crypto/aes128.cpp.o.d"
  "/root/repo/src/dataplane/live_pipeline.cpp" "src/CMakeFiles/nfp.dir/dataplane/live_pipeline.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/dataplane/live_pipeline.cpp.o.d"
  "/root/repo/src/dataplane/merge_ops.cpp" "src/CMakeFiles/nfp.dir/dataplane/merge_ops.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/dataplane/merge_ops.cpp.o.d"
  "/root/repo/src/dataplane/nfp_dataplane.cpp" "src/CMakeFiles/nfp.dir/dataplane/nfp_dataplane.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/dataplane/nfp_dataplane.cpp.o.d"
  "/root/repo/src/dpi/aho_corasick.cpp" "src/CMakeFiles/nfp.dir/dpi/aho_corasick.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/dpi/aho_corasick.cpp.o.d"
  "/root/repo/src/graph/service_graph.cpp" "src/CMakeFiles/nfp.dir/graph/service_graph.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/graph/service_graph.cpp.o.d"
  "/root/repo/src/inspector/inspector.cpp" "src/CMakeFiles/nfp.dir/inspector/inspector.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/inspector/inspector.cpp.o.d"
  "/root/repo/src/lpm/lpm_table.cpp" "src/CMakeFiles/nfp.dir/lpm/lpm_table.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/lpm/lpm_table.cpp.o.d"
  "/root/repo/src/nfs/nf.cpp" "src/CMakeFiles/nfp.dir/nfs/nf.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/nfs/nf.cpp.o.d"
  "/root/repo/src/openbox/openbox.cpp" "src/CMakeFiles/nfp.dir/openbox/openbox.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/openbox/openbox.cpp.o.d"
  "/root/repo/src/orch/compiler.cpp" "src/CMakeFiles/nfp.dir/orch/compiler.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/orch/compiler.cpp.o.d"
  "/root/repo/src/orch/pair_stats.cpp" "src/CMakeFiles/nfp.dir/orch/pair_stats.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/orch/pair_stats.cpp.o.d"
  "/root/repo/src/orch/table_gen.cpp" "src/CMakeFiles/nfp.dir/orch/table_gen.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/orch/table_gen.cpp.o.d"
  "/root/repo/src/packet/builder.cpp" "src/CMakeFiles/nfp.dir/packet/builder.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/packet/builder.cpp.o.d"
  "/root/repo/src/packet/checksum.cpp" "src/CMakeFiles/nfp.dir/packet/checksum.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/packet/checksum.cpp.o.d"
  "/root/repo/src/packet/packet_pool.cpp" "src/CMakeFiles/nfp.dir/packet/packet_pool.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/packet/packet_pool.cpp.o.d"
  "/root/repo/src/packet/packet_view.cpp" "src/CMakeFiles/nfp.dir/packet/packet_view.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/packet/packet_view.cpp.o.d"
  "/root/repo/src/policy/conflict.cpp" "src/CMakeFiles/nfp.dir/policy/conflict.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/policy/conflict.cpp.o.d"
  "/root/repo/src/policy/parser.cpp" "src/CMakeFiles/nfp.dir/policy/parser.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/policy/parser.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/CMakeFiles/nfp.dir/policy/policy.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/policy/policy.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/nfp.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/nfp.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/trafficgen/pcap.cpp" "src/CMakeFiles/nfp.dir/trafficgen/pcap.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/trafficgen/pcap.cpp.o.d"
  "/root/repo/src/trafficgen/trafficgen.cpp" "src/CMakeFiles/nfp.dir/trafficgen/trafficgen.cpp.o" "gcc" "src/CMakeFiles/nfp.dir/trafficgen/trafficgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Fused run-to-completion execution of a compiled NF graph.
//
// The pipelined LivePipeline reproduces the paper's one-container-per-NF
// deployment: every NF on its own thread, SPSC burst rings between them, a
// merger thread accumulating parallel arrivals in a MergeTable. That shape
// is what the scalability profiler indicts on core-constrained hosts —
// ring_wait dominates the par4 attribution and 2 shards deliver 0.609x of
// one — because the rings and the merger buy cross-thread parallelism the
// host cannot actually grant. The paper's own Table 4 benchmarks NFP
// against exactly the alternative: a BESS-style run-to-completion model.
//
// RtcExecutor is that model, specialized to NFP's graph semantics: the
// caller's thread (the shard worker) walks the compiled graph inline per
// packet. Sequential segments are direct process() calls — no ring, no
// hand-off, no second cacheline touched. Parallel segments execute as a
// fused branch-sequence: the same FanoutPlan version copies as the
// pipelined path (Header-Only Copying included), each branch NF run in
// declaration order on its version, then an *inline* merge — the same
// drop-resolution (any-drop / priority) and MergeOp application as the
// merger thread, but with zero wait, because every arrival is already in
// hand. No MergeTable, no in-flight window, no result lock on the hot
// path; semantics are output-equivalent to the pipelined path (the
// equivalence tests compare delivered multisets and drop-reason totals).
//
// Telemetry contracts carry over:
//   * drop taxonomy — every drop tags exactly one DropReason, so
//     sum(drops_by_reason) == dropped still holds;
//   * latency telescoping — ingest/queue/service spans stamp exactly as on
//     sequential pipelined hops; a fused merge contributes merge_wait == 0
//     and does NOT count as a merge crossing (the merge_wait stage stays
//     empty — there is no cross-thread wait to measure), so stage sums
//     still equal totals;
//   * cycle accounting — the executor runs inside its caller's useful lap;
//     only its own waits (pool backpressure) are carved, exposed through
//     feeder_wait_ns() so the sharded worker's re-bucketing keeps summing
//     to wall time.
//
// Thread contract: start/feed*/drain from one thread (the LivePipeline
// single-ingest discipline); the telemetry accessors are safe from
// sampler/profiler threads mid-run.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "dataplane/fanout_plan.hpp"
#include "graph/service_graph.hpp"
#include "nfs/nf.hpp"
#include "packet/packet_magazine.hpp"
#include "packet/packet_pool.hpp"
#include "telemetry/flow_observatory.hpp"
#include "telemetry/latency_observatory.hpp"
#include "telemetry/owned_counter.hpp"
#include "telemetry/scalability_profiler.hpp"

namespace nfp {

struct LiveResult;
struct LivePipelineOptions;

class RtcExecutor {
 public:
  // `graph` outlives the executor (the owning LivePipeline's copy);
  // instance ids are assigned here, mirroring the pipelined constructor.
  // The pool and magazine counters are the owning pipeline's, so health
  // probes and pool telemetry read the same cells in both modes.
  RtcExecutor(ServiceGraph& graph,
              const std::function<std::unique_ptr<NetworkFunction>(
                  const StageNf&)>& factory,
              const LivePipelineOptions& opts, PacketPool& pool,
              std::atomic<u64>* mag_refill_total,
              std::atomic<u64>* mag_flush_total);
  ~RtcExecutor();

  RtcExecutor(const RtcExecutor&) = delete;
  RtcExecutor& operator=(const RtcExecutor&) = delete;

  // Same lifecycle contract as LivePipeline: start() once, single-threaded
  // feed*() (each returns with the packet fully delivered or dropped —
  // run to completion is literal), drain() hands back the result.
  Status start();
  bool feed(std::span<const u8> frame);
  bool feed_stamped(std::span<const u8> frame, u64 origin_ns,
                    const FlowRef* flow = nullptr);
  LiveResult drain();

  NetworkFunction* nf(std::size_t segment, std::size_t index) {
    return segments_.at(segment).at(index).impl.get();
  }

  u64 delivered_so_far() const noexcept { return delivered_.read(); }
  u64 dropped_so_far() const noexcept { return dropped_.read(); }
  u64 dropped_by(telemetry::DropReason reason) const noexcept {
    return drop_reasons_[static_cast<std::size_t>(reason)].load(
        std::memory_order_relaxed);
  }
  void set_drop_exemplar_ring(telemetry::DropExemplarRing* ring) noexcept {
    drop_exemplars_ = ring;
  }

  telemetry::ShardScalabilitySnapshot scalability_snapshot() const;
  telemetry::ShardLatencySnapshot latency_snapshot() const;
  // Wall time spent waiting for pool slots inside feed (the executor's only
  // wait — there are no rings). The sharded worker carves this out of its
  // own useful lap, exactly as with the pipelined feeder.
  u64 feeder_wait_ns() const;

 private:
  struct RtcNf {
    StageNf meta;
    std::unique_ptr<NetworkFunction> impl;
    std::string stage;  // drop-exemplar stage tag, "rtc:<name>#<id>"
    u64 processed = 0;  // feeder-thread private
  };

  // Walks the graph from segment 0 to delivery or drop. Owns `pkt`.
  void execute(Packet* pkt);
  // Runs one fused parallel segment; returns the merged survivor (always
  // the version-1 packet) or nullptr when the packet dropped (the reason
  // has been tagged and every version released).
  Packet* run_parallel_segment(std::size_t seg_idx, Packet* pkt);

  void note_drop(telemetry::DropReason reason, const char* stage,
                 const FlowRef* flow);

  ServiceGraph& graph_;
  const LivePipelineOptions& opts_;
  PacketPool& pool_;
  std::vector<std::vector<RtcNf>> segments_;
  std::vector<FanoutPlan> fanout_;

  std::unique_ptr<PacketMagazine> mag_;
  std::atomic<u64>* mag_refill_total_;
  std::atomic<u64>* mag_flush_total_;

  enum class RunState : int { kNew = 0, kRunning = 1, kFinished = 2 };
  std::atomic<RunState> state_{RunState::kNew};
  u64 next_pid_ = 0;

  // Stage histograms for sampled packets; null when sampling is off. One
  // block suffices — a single thread records.
  std::unique_ptr<telemetry::StageLatencyBlock> lat_block_;

  // Feeder-written, scrape-read progress counters.
  telemetry::OwnedCounter delivered_;
  telemetry::OwnedCounter dropped_;
  std::array<std::atomic<u64>, telemetry::kDropReasonCount> drop_reasons_{};
  telemetry::DropExemplarRing* drop_exemplars_ = nullptr;

  // Scratch reused across packets (no per-packet allocation).
  std::vector<u8> intent_;  // [nf index in segment] -> drop intent
  std::vector<std::pair<Packet*, u8>> pairs_;

  // Feeder-owned accumulation; delivered/dropped counters are the
  // scrape-safe view, the vector itself is only touched by the feed thread
  // and by drain()'s caller (ordered by the sharded worker join).
  std::vector<std::vector<u8>> outputs_;
};

}  // namespace nfp

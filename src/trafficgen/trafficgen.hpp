// Traffic generation: the DPDK pktgen of the paper's testbed.
//
// Generates open-loop traffic with configurable packet-size models —
// fixed sizes for the microbenchmark figures, and the data-center size
// distribution of Benson et al. (IMC'10, ~724 B average) that the paper
// uses for its real-world chain evaluation (§6.4) and resource-overhead
// analysis (§6.3.1).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "packet/builder.hpp"
#include "packet/packet_pool.hpp"
#include "sim/simulator.hpp"

namespace nfp {

class Histogram;
namespace telemetry {
class MetricsRegistry;
struct Counter;
}  // namespace telemetry

enum class SizeModel : u8 {
  kFixed,       // every frame `fixed_size` bytes
  kDataCenter,  // bimodal mice/elephants mix, mean ≈ 724 B
};

// Flow-popularity model: which of the `flows` 5-tuples each packet uses.
enum class FlowSkew : u8 {
  kUniform,  // every flow equally likely
  kZipf,     // rank-k flow has weight 1/(k+1)^zipf_s — the heavy-tailed mix
             // real traffic shows; exercises microflow-cache hit rates
};

struct TrafficConfig {
  SizeModel size_model = SizeModel::kFixed;
  std::size_t fixed_size = 64;
  std::size_t flows = 64;           // distinct 5-tuples
  FlowSkew flow_skew = FlowSkew::kUniform;
  double zipf_s = 1.0;              // skew exponent (kZipf only)
  // Flow churn: every next_flow() draw returns a never-seen flow index
  // (SYN-flood shape — each packet opens a fresh 5-tuple), defeating any
  // flow cache. Overrides the popularity model; `flows` is ignored.
  bool flow_churn = false;
  double rate_pps = 100'000;        // injection rate
  u64 packets = 10'000;             // total packets to inject
  u64 seed = 42;
  u8 payload_byte = 0x5c;
  // Optional: when set, the generator publishes trafficgen_packets_total,
  // trafficgen_backpressure_retries_total and a trafficgen_frame_bytes
  // histogram into this registry (typically the dataplane's, so one export
  // covers the whole run). Non-owning; must outlive the generator.
  telemetry::MetricsRegistry* metrics = nullptr;
};

class TrafficGenerator {
 public:
  using Injector = std::function<void(Packet*)>;

  TrafficGenerator(sim::Simulator& sim, PacketPool& pool,
                   TrafficConfig config);

  // Schedules all injections starting at the current simulated time.
  // `inject` receives each freshly built packet.
  void start(Injector inject);

  // Draws one frame size from the configured model.
  std::size_t next_size();

  // Draws one flow index from the configured popularity model.
  std::size_t next_flow();

  // Builds one packet for flow index `flow` (used by tests directly).
  Packet* make_packet(PacketPool& pool, std::size_t flow, std::size_t size);

  // The deterministic 5-tuple of flow index `flow` (what make_packet stamps
  // into the headers); exposed so benches, shard tests and scenario presets
  // can predict dispatch without parsing frames back. Static: the mapping
  // is a pure function of the index.
  static FiveTuple flow_tuple(std::size_t flow);

  u64 generated() const noexcept { return generated_; }
  u64 backpressure_retries() const noexcept { return backpressure_retries_; }

  // Mean of the data-center size model (for resource-overhead math).
  static double dc_mean_frame_size();

 private:
  // Headroom kept in the pool for in-flight packet copies.
  static constexpr std::size_t kPoolReserve = 64;

  void try_inject(const Injector& inject, u64 index);

  sim::Simulator& sim_;
  PacketPool& pool_;
  TrafficConfig config_;
  Rng rng_;
  // Zipf CDF over flow ranks, precomputed once (empty under kUniform);
  // next_flow() binary-searches it.
  std::vector<double> zipf_cdf_;
  u64 generated_ = 0;
  u64 backpressure_retries_ = 0;
  u64 churn_counter_ = 0;  // next fresh flow index under flow_churn
  // Resolved from config_.metrics (null when metrics are off).
  telemetry::Counter* m_generated_ = nullptr;
  telemetry::Counter* m_retries_ = nullptr;
  Histogram* m_frame_bytes_ = nullptr;
};

}  // namespace nfp

#include "openbox/openbox.hpp"

#include <algorithm>

#include "orch/compiler.hpp"

namespace nfp::openbox {

void register_builtin_blocks(ActionTable& table) {
  {  // ReadPackets: ingress block; touches nothing by itself.
    table.register_nf("read_packets", ActionProfile{});
  }
  {  // HeaderClassifier: reads the 5-tuple to classify the flow.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kProto);
    table.register_nf("header_classifier", p);
  }
  {  // Alert (firewall): header-rule matching; raises alerts only.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    table.register_nf("fw_alert", p);
  }
  {  // DPI: payload inspection.
    ActionProfile p;
    p.add_read(Field::kPayload);
    table.register_nf("dpi", p);
  }
  {  // Alert (IPS): consumes DPI verdicts; reads headers for the report.
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    table.register_nf("ips_alert", p);
  }
  {  // Drop/Output decision block: the only block with a drop action.
    ActionProfile p;
    p.add_drop();
    table.register_nf("output_block", p);
  }
}

Policy merge_block_chains(const std::vector<BlockChain>& chains) {
  std::string name = "openbox";
  for (const auto& chain : chains) name += "+" + chain.nf_name;
  Policy policy(std::move(name));

  // Order rules along each chain; duplicate rules (from shared prefixes)
  // are harmless and skipped.
  std::vector<std::pair<std::string, std::string>> seen;
  for (const auto& chain : chains) {
    for (std::size_t i = 0; i + 1 < chain.blocks.size(); ++i) {
      std::pair<std::string, std::string> edge{chain.blocks[i],
                                               chain.blocks[i + 1]};
      if (std::find(seen.begin(), seen.end(), edge) != seen.end()) continue;
      seen.push_back(edge);
      policy.add_order(edge.first, edge.second);
    }
    if (chain.blocks.size() == 1) policy.add_free_nf(chain.blocks.front());
  }
  return policy;
}

Result<ServiceGraph> compile_block_graph(
    const std::vector<BlockChain>& chains, const ActionTable& table) {
  // Block-chain edges carry metadata between blocks (the classifier
  // consumes ReadPackets' output, the IPS alert consumes DPI verdicts), so
  // they compile as hard sequential edges; parallelism comes from
  // *cross-chain* independence, exactly Fig 15's Alert(FW) ∥ DPI.
  CompilerOptions options;
  options.hard_order_rules = true;
  return compile_policy(merge_block_chains(chains), table, options);
}

namespace {

// A block that reads the declared fields and passes; output_block carries
// the drop capability (exercised only when an upstream block flags the
// packet — here it simply passes, the drop action exists for the profile).
class SimpleBlock final : public NetworkFunction {
 public:
  SimpleBlock(std::string name, ActionProfile profile)
      : name_(std::move(name)), profile_(std::move(profile)) {}

  std::string_view type_name() const override { return name_; }

  NfVerdict process(PacketView& packet) override {
    for (const Action& action : profile_.actions()) {
      if (action.type != ActionType::kRead) continue;
      switch (action.field) {
        case Field::kSrcIp: (void)packet.src_ip(); break;
        case Field::kDstIp: (void)packet.dst_ip(); break;
        case Field::kSrcPort: (void)packet.src_port(); break;
        case Field::kDstPort: (void)packet.dst_port(); break;
        case Field::kProto: (void)packet.protocol(); break;
        case Field::kPayload: (void)packet.payload(); break;
        default: break;
      }
    }
    ++processed_;
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override { return profile_; }
  u64 processed() const noexcept { return processed_; }

 private:
  std::string name_;
  ActionProfile profile_;
  u64 processed_ = 0;
};

}  // namespace

std::unique_ptr<NetworkFunction> make_block_nf(std::string_view name) {
  ActionTable table;
  register_builtin_blocks(table);
  const NfTypeInfo* info = table.find(std::string(name));
  if (info == nullptr) return nullptr;
  return std::make_unique<SimpleBlock>(info->name, info->profile);
}

std::vector<BlockChain> fig15_firewall_and_ips() {
  return {
      BlockChain{"firewall",
                 {"read_packets", "header_classifier", "fw_alert",
                  "output_block"}},
      BlockChain{"ips",
                 {"read_packets", "header_classifier", "dpi", "ips_alert",
                  "output_block"}},
  };
}

}  // namespace nfp::openbox

#include "packet/checksum.hpp"

namespace nfp {

u16 checksum_fold(std::span<const u8> bytes, u32 initial) {
  u64 sum = initial;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += (static_cast<u32>(bytes[i]) << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) {
    sum += static_cast<u32>(bytes[i]) << 8;  // odd trailing byte
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<u16>(sum);
}

u16 ipv4_checksum(std::span<const u8> header) {
  return static_cast<u16>(~checksum_fold(header));
}

u16 l4_checksum(u32 src_ip, u32 dst_ip, u8 proto,
                std::span<const u8> l4_segment) {
  u32 pseudo = 0;
  pseudo += (src_ip >> 16) + (src_ip & 0xffff);
  pseudo += (dst_ip >> 16) + (dst_ip & 0xffff);
  pseudo += proto;
  pseudo += static_cast<u32>(l4_segment.size());
  return static_cast<u16>(~checksum_fold(l4_segment, pseudo));
}

}  // namespace nfp

file(REMOVE_RECURSE
  "CMakeFiles/cluster_deploy.dir/cluster_deploy.cpp.o"
  "CMakeFiles/cluster_deploy.dir/cluster_deploy.cpp.o.d"
  "cluster_deploy"
  "cluster_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

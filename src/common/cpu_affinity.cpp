#include "common/cpu_affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace nfp {

bool cpu_affinity_supported() noexcept {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

std::size_t online_cpu_count() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<std::size_t>(n);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool pin_current_thread_to_core(std::size_t core) noexcept {
#if defined(__linux__)
  // The affinity mask may be sparse (e.g. cores {2,5,7} in a container);
  // walk the allowed set and pick the (core % allowed)-th entry.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  const int allowed_count = CPU_COUNT(&allowed);
  if (allowed_count <= 0) return false;
  std::size_t want = core % static_cast<std::size_t>(allowed_count);
  int target = -1;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &allowed)) continue;
    if (want == 0) {
      target = cpu;
      break;
    }
    --want;
  }
  if (target < 0) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(target, &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace nfp

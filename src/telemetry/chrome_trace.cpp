#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "common/json.hpp"

namespace nfp::telemetry {

namespace {

// Track registry: component name -> stable thread id, plus a sort index
// that lays the timeline out in pipeline order.
struct Tracks {
  std::map<std::string, int> tids;

  int tid(const std::string& component) {
    const auto it = tids.find(component);
    if (it != tids.end()) return it->second;
    const int id = static_cast<int>(tids.size()) + 1;
    tids.emplace(component, id);
    return id;
  }

  static int sort_index(const std::string& component) {
    if (component == "rx-link") return 0;
    if (component == "classifier" || component == "switch") return 1;
    if (component.rfind("copy-", 0) == 0) return 2;
    if (component.rfind("nf:", 0) == 0) return 10;
    if (component.rfind("merger", 0) == 0) return 100;
    if (component == "tx-link") return 1000;
    return 50;
  }
};

// One trace event line. ts/dur are simulated nanoseconds, rendered as
// microseconds (the unit the trace-event format mandates).
void emit(std::ostringstream& out, bool& first, const char* ph,
          const std::string& name, const char* cat, double ts_ns, int tid,
          const std::string& extra = {}) {
  if (!first) out << ",\n";
  first = false;
  char head[160];
  std::snprintf(head, sizeof(head),
                "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f", ph, tid,
                ts_ns / 1e3);
  out << head << ",\"name\":\"" << json::escape(name) << "\",\"cat\":\""
      << cat << "\"";
  if (!extra.empty()) out << "," << extra;
  out << "}";
}

void emit_slice(std::ostringstream& out, bool& first, const std::string& name,
                const char* cat, double start_ns, double end_ns, int tid,
                u64 pid, u8 version) {
  if (end_ns < start_ns) end_ns = start_ns;
  char extra[128];
  std::snprintf(extra, sizeof(extra),
                "\"dur\":%.3f,\"args\":{\"packet\":%llu,\"version\":%u}",
                (end_ns - start_ns) / 1e3,
                static_cast<unsigned long long>(pid),
                static_cast<unsigned>(version));
  emit(out, first, "X", name, cat, start_ns, tid, extra);
}

std::string pkt_label(u64 pid) {
  return "p" + std::to_string(pid);
}

}  // namespace

std::string to_chrome_trace(const Tracer& tracer) {
  const std::map<u64, std::vector<SpanEvent>> by_pid = tracer.events_by_pid();
  Tracks tracks;
  std::ostringstream events;
  bool first = true;
  u64 flow_id = 0;

  for (const auto& [pid, spans] : by_pid) {
    // Walk state: where the packet last became distributable (classify or
    // merge-complete), per-version copy completion, open NF services, and
    // the arrivals accumulating toward the next merge.
    double dispatch_ns = 0;          // classify / merge-complete time
    bool dispatched = false;
    std::map<u8, double> copy_done;  // version -> copy completion
    struct OpenService {
      std::string component;
      double enter_ns = 0;
      u8 version = 1;
    };
    std::vector<OpenService> open;  // un-exited nf-enter spans
    struct Exited {
      std::string component;
      double exit_ns = 0;
    };
    std::vector<Exited> exited;     // completed services awaiting merge
    struct Arrival {
      std::string sender;
      double at_ns = 0;
    };
    std::vector<Arrival> arrivals;
    double last_ns = 0;  // latest span timestamp seen (for the tx slice)

    for (const SpanEvent& ev : spans) {
      const auto at = static_cast<double>(ev.at);
      switch (ev.kind) {
        case SpanKind::kInject:
          tracks.tid(ev.component);
          last_ns = at;
          break;
        case SpanKind::kClassify: {
          const int tid = tracks.tid(ev.component);
          emit_slice(events, first, pkt_label(pid) + " classify", "classify",
                     last_ns, at, tid, pid, ev.version);
          dispatch_ns = at;
          dispatched = true;
          last_ns = at;
          break;
        }
        case SpanKind::kCopy: {
          const int tid = tracks.tid(ev.component);
          const double start = dispatched ? dispatch_ns : last_ns;
          emit_slice(events, first,
                     pkt_label(pid) + " copy v" + std::to_string(ev.version),
                     "copy", start, at, tid, pid, ev.version);
          copy_done[ev.version] = at;
          last_ns = std::max(last_ns, at);
          break;
        }
        case SpanKind::kNfEnter: {
          const int tid = tracks.tid(ev.component);
          // Ring-queue wait: from this version's copy (or the dispatch
          // point) until the NF picked the packet up.
          double qstart = dispatched ? dispatch_ns : last_ns;
          const auto copy_it = copy_done.find(ev.version);
          if (copy_it != copy_done.end()) qstart = copy_it->second;
          if (at > qstart) {
            emit_slice(events, first, pkt_label(pid) + " queue", "queue",
                       qstart, at, tid, pid, ev.version);
          }
          open.push_back(OpenService{ev.component, at, ev.version});
          last_ns = std::max(last_ns, at);
          break;
        }
        case SpanKind::kNfExit: {
          const int tid = tracks.tid(ev.component);
          // Pair with the oldest open enter on the same component.
          double enter_ns = last_ns;
          u8 version = ev.version;
          for (std::size_t i = 0; i < open.size(); ++i) {
            if (open[i].component == ev.component) {
              enter_ns = open[i].enter_ns;
              version = open[i].version;
              open.erase(open.begin() +
                         static_cast<std::ptrdiff_t>(i));
              break;
            }
          }
          emit_slice(events, first, pkt_label(pid) + " service", "service",
                     enter_ns, at, tid, pid, version);
          exited.push_back(Exited{ev.component, at});
          last_ns = std::max(last_ns, at);
          break;
        }
        case SpanKind::kMergerArrival:
          arrivals.push_back(Arrival{ev.component, at});
          last_ns = std::max(last_ns, at);
          break;
        case SpanKind::kMergeComplete: {
          const int tid = tracks.tid(ev.component);
          double start = at;
          for (const Arrival& a : arrivals) start = std::min(start, a.at_ns);
          emit_slice(events, first, pkt_label(pid) + " merge", "merge", start,
                     at, tid, pid, ev.version);
          // One flow arrow per arrival: service slice -> merge slice. The
          // arrival span's component names the sending NF instance.
          for (const Arrival& a : arrivals) {
            ++flow_id;
            double src_ns = a.at_ns;
            int src_tid = tid;
            for (const Exited& x : exited) {
              if (x.component == a.sender) {
                src_ns = x.exit_ns;
                src_tid = tracks.tid(x.component);
                break;
              }
            }
            char extra[64];
            std::snprintf(extra, sizeof(extra), "\"id\":%llu",
                          static_cast<unsigned long long>(flow_id));
            emit(events, first, "s", pkt_label(pid) + " merge-wait", "flow",
                 src_ns, src_tid, extra);
            std::snprintf(extra, sizeof(extra), "\"id\":%llu,\"bp\":\"e\"",
                          static_cast<unsigned long long>(flow_id));
            emit(events, first, "f", pkt_label(pid) + " merge-wait", "flow",
                 at, tid, extra);
          }
          arrivals.clear();
          exited.clear();
          copy_done.clear();
          dispatch_ns = at;
          dispatched = true;
          last_ns = std::max(last_ns, at);
          break;
        }
        case SpanKind::kOutput: {
          const int tid = tracks.tid(ev.component);
          emit_slice(events, first, pkt_label(pid) + " tx", "output", last_ns,
                     at, tid, pid, ev.version);
          last_ns = at;
          break;
        }
        case SpanKind::kDrop: {
          const int tid = tracks.tid(ev.component);
          emit(events, first, "i", pkt_label(pid) + " drop", "drop", at, tid,
               "\"s\":\"t\",\"args\":{\"packet\":" + std::to_string(pid) +
                   "}");
          last_ns = std::max(last_ns, at);
          break;
        }
      }
    }
  }

  // Metadata: process + per-track thread names and pipeline sort order.
  std::ostringstream meta;
  meta << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
          "\"args\":{\"name\":\"nfp dataplane\"}}";
  for (const auto& [component, tid] : tracks.tids) {
    meta << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
         << json::escape(component) << "\"}}";
    meta << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
         << Tracks::sort_index(component) << "}}";
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n" << meta.str();
  const std::string body = events.str();
  if (!body.empty()) out << ",\n" << body;
  out << "\n]}";
  return out.str();
}

}  // namespace nfp::telemetry

// Monitor NF: per-flow packet/byte counters keyed by the 5-tuple
// (paper §6.1: "maintains per-flow counters ... the counter table uses the
// hash value of the 5-tuple as the key"), NetFlow-style.
//
// Counting is delegated to ExactFlowCounters (flow/flow_counters.hpp) — the
// same unit and accumulator the flow observatory's heavy-hitter and tenant
// accounting use, so there is exactly one flow-counting code path. State is
// exportable/importable so an overloaded monitor can be scaled out with
// flow migration (paper §7's "migrate some states ... redirect some flows
// to the new instance").
#pragma once

#include <utility>
#include <vector>

#include "flow/flow_counters.hpp"
#include "nfs/nf.hpp"

namespace nfp {

class Monitor final : public NetworkFunction {
 public:
  // Kept as an alias so existing callers (and migrated state) read in the
  // shared counting unit.
  using FlowStats = PacketByteCount;
  using ExportedFlow = ExactFlowCounters::ExportedFlow;

  explicit Monitor(std::size_t flow_capacity = 65536)
      : flows_(flow_capacity) {}

  std::string_view type_name() const override { return "monitor"; }

  NfVerdict process(PacketView& packet) override {
    flows_.record(packet.five_tuple(), packet.packet().length());
    return NfVerdict::kPass;
  }

  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    p.add_read(Field::kDstIp);
    p.add_read(Field::kSrcPort);
    p.add_read(Field::kDstPort);
    p.add_read(Field::kProto);  // 5-tuple flow key
    return p;
  }

  std::size_t flow_count() const noexcept { return flows_.size(); }
  u64 total_packets() const noexcept { return flows_.total_packets(); }
  u64 evictions() const noexcept { return flows_.evictions(); }
  const FlowStats* flow(const FiveTuple& t) const { return flows_.flow(t); }

  // Read-only view for telemetry scans (top-N, exact-vs-sketch checks).
  const ExactFlowCounters& counters() const noexcept { return flows_; }

  // --- state migration (§7 scaling) ------------------------------------------
  // Removes and returns every flow for which `pred(key)` holds.
  template <typename Pred>
  std::vector<ExportedFlow> extract_flows(Pred&& pred) {
    return flows_.extract_if(std::forward<Pred>(pred));
  }

  void absorb_flows(const std::vector<ExportedFlow>& flows) {
    flows_.absorb(flows);
  }

 private:
  ExactFlowCounters flows_;
};

}  // namespace nfp

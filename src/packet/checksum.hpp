// Internet checksum (RFC 1071) for IPv4/TCP/UDP.
#pragma once

#include <span>

#include "common/types.hpp"

namespace nfp {

// One's-complement sum over `bytes`, folded to 16 bits (not yet inverted).
u16 checksum_fold(std::span<const u8> bytes, u32 initial = 0);

// IPv4 header checksum over `header` (checksum field must be zeroed first,
// or pass the header as-is to *verify*: a valid header sums to 0xffff).
u16 ipv4_checksum(std::span<const u8> header);

// TCP/UDP checksum including the IPv4 pseudo header.
u16 l4_checksum(u32 src_ip, u32 dst_ip, u8 proto,
                std::span<const u8> l4_segment);

}  // namespace nfp

// Tests for the live-health layer: the flight recorder's bounded window,
// the watchdog's deterministic anomaly rules (injectable clock), the
// sampler's probe recording, and the end-to-end promise — a wedged
// live-pipeline worker produces exactly one post-mortem dump containing
// the stall event and a registry snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "dataplane/live_pipeline.hpp"
#include "packet/builder.hpp"
#include "telemetry/health_sampler.hpp"

namespace nfp {
namespace {

using telemetry::FlightRecorder;
using telemetry::HealthSampler;
using telemetry::MetricsRegistry;
using telemetry::Severity;
using telemetry::Watchdog;

TEST(FlightRecorder, KeepsBoundedWindowWithStableSequenceNumbers) {
  FlightRecorder rec(4);
  for (u64 i = 0; i < 6; ++i) {
    rec.note(Severity::kInfo, i * 100, "test", "event " + std::to_string(i));
  }
  EXPECT_EQ(rec.recorded(), 6u);
  const auto window = rec.recent();
  ASSERT_EQ(window.size(), 4u);
  // Oldest two were evicted; sequence numbers survive eviction.
  EXPECT_EQ(window.front().seq, 2u);
  EXPECT_EQ(window.back().seq, 5u);
  EXPECT_EQ(window.back().message, "event 5");
}

TEST(FlightRecorder, DumpRendersEventsAndRegistrySnapshot) {
  FlightRecorder rec;
  rec.note(Severity::kCritical, 42, "pool", "exhausted");
  MetricsRegistry registry;
  registry.counter("demo_total").inc(3);

  const std::string bare = rec.dump(nullptr, "why it died");
  EXPECT_NE(bare.find("flight recorder post-mortem"), std::string::npos);
  EXPECT_NE(bare.find("why it died"), std::string::npos);
  EXPECT_NE(bare.find("exhausted"), std::string::npos);
  EXPECT_EQ(bare.find("registry snapshot:"), std::string::npos);

  const std::string full = rec.dump(&registry, "with metrics");
  EXPECT_NE(full.find("registry snapshot:"), std::string::npos);
  EXPECT_NE(full.find("demo_total"), std::string::npos);
}

TEST(Watchdog, StallRuleFiresOncePerEpisodeAndNotesRecovery) {
  u64 now = 0;
  u64 beat = 0;
  FlightRecorder rec;
  Watchdog::Options opt;
  opt.stall_after_ns = 100;
  opt.clock = [&] { return now; };
  Watchdog wd(rec, opt);
  wd.watch_heartbeat("nf:slow#0", [&] { return beat; });

  // A worker that never started (beat == 0) is not stalled.
  now = 10'000;
  EXPECT_FALSE(wd.evaluate());
  EXPECT_EQ(wd.anomalies(), 0u);

  beat = 10'000;
  now = 10'050;
  EXPECT_FALSE(wd.evaluate());  // 50 ns old, under threshold

  now = 10'200;
  EXPECT_TRUE(wd.evaluate());  // 200 ns old => stalled
  EXPECT_EQ(wd.anomalies(), 1u);
  EXPECT_NE(wd.last_dump().find("worker stalled"), std::string::npos);
  EXPECT_NE(wd.last_dump().find("nf:slow#0"), std::string::npos);

  // Debounced: still stalled, no second anomaly.
  now = 10'400;
  EXPECT_FALSE(wd.evaluate());
  EXPECT_EQ(wd.anomalies(), 1u);

  // Recovery clears the rule; a later stall fires again.
  beat = 10'500;
  now = 10'550;
  EXPECT_FALSE(wd.evaluate());
  now = 11'000;
  EXPECT_TRUE(wd.evaluate());
  EXPECT_EQ(wd.anomalies(), 2u);
  bool saw_recovery = false;
  for (const auto& e : rec.recent()) {
    saw_recovery |= e.message.find("recovered") != std::string::npos;
  }
  EXPECT_TRUE(saw_recovery);
}

TEST(Watchdog, DropSpikeComparesDeltasNotAbsolutes) {
  u64 drops = 5'000;  // large pre-existing total must not fire on priming
  FlightRecorder rec;
  Watchdog::Options opt;
  opt.drop_spike = 100;
  opt.clock = [] { return u64{1}; };
  Watchdog wd(rec, opt);
  wd.watch_drop_counter("live-pipeline", [&] { return drops; });

  EXPECT_FALSE(wd.evaluate());  // priming pass
  drops += 50;
  EXPECT_FALSE(wd.evaluate());  // +50 < threshold
  drops += 150;
  EXPECT_TRUE(wd.evaluate());  // +150 >= threshold
  EXPECT_EQ(wd.anomalies(), 1u);
  EXPECT_NE(wd.last_dump().find("drop spike"), std::string::npos);
}

TEST(Watchdog, PoolRuleFiresOnExhaustionAndRearmsAfterClearing) {
  u64 in_use = 0;
  FlightRecorder rec;
  Watchdog::Options opt;
  opt.clock = [] { return u64{1}; };
  Watchdog wd(rec, opt);
  wd.watch_pool("pool", [&] { return in_use; }, /*capacity=*/8);
  wd.set_registry(nullptr);

  EXPECT_FALSE(wd.evaluate());
  in_use = 8;
  EXPECT_TRUE(wd.evaluate());
  EXPECT_FALSE(wd.evaluate());  // still exhausted: debounced
  in_use = 2;
  EXPECT_FALSE(wd.evaluate());  // pressure cleared
  in_use = 8;
  EXPECT_TRUE(wd.evaluate());  // re-armed
  EXPECT_EQ(wd.anomalies(), 2u);
  EXPECT_NE(wd.last_dump().find("pool exhausted"), std::string::npos);
}

TEST(HealthSampler, SampleOnceRecordsProbesAndRunsWatchdog) {
  MetricsRegistry registry;
  HealthSampler sampler(registry);
  double depth = 3.0;
  sampler.add_probe("ring_depth", {{"worker", "nf:a#0"}},
                    [&] { return depth; });

  FlightRecorder rec;
  Watchdog::Options opt;
  opt.clock = [] { return u64{1}; };
  Watchdog wd(rec, opt);
  u64 drops = 0;
  wd.watch_drop_counter("dp", [&] { return drops; });
  wd.set_registry(&registry);
  sampler.set_watchdog(&wd);

  sampler.sample_once();
  EXPECT_EQ(sampler.ticks(), 1u);
  EXPECT_EQ(registry.gauge("ring_depth", {{"worker", "nf:a#0"}}).value, 3.0);

  depth = 9.0;
  drops = 5'000;  // primed at 0 => delta 5000 >= default spike threshold
  sampler.sample_once();
  EXPECT_EQ(registry.gauge("ring_depth", {{"worker", "nf:a#0"}}).value, 9.0);
  EXPECT_EQ(registry.gauge("ring_depth", {{"worker", "nf:a#0"}}).high_water,
            9.0);
  EXPECT_EQ(wd.anomalies(), 1u);
  // The dump carries the probe's gauge: watchdog snapshotted the registry.
  EXPECT_NE(wd.last_dump().find("ring_depth"), std::string::npos);
}

TEST(HealthSampler, BackgroundThreadTicksUntilStopped) {
  MetricsRegistry registry;
  HealthSampler::Options opt;
  opt.period_us = 200;
  HealthSampler sampler(registry, opt);
  std::atomic<u64> reads{0};
  sampler.add_probe("probe_reads", {}, [&] {
    return static_cast<double>(reads.fetch_add(1) + 1);
  });

  sampler.start();
  EXPECT_TRUE(sampler.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.ticks() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.ticks(), 3u);
  EXPECT_GE(registry.gauge("probe_reads").value, 3.0);
  const u64 settled = sampler.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.ticks(), settled) << "no ticks after stop()";
}

// An NF that wedges inside process() on the first packet until released —
// the worker's heartbeat goes stale while the thread is alive, which is
// exactly the failure mode the watchdog exists to catch.
class WedgingNf final : public NetworkFunction {
 public:
  explicit WedgingNf(std::atomic<bool>& release) : release_(release) {}

  std::string_view type_name() const override { return "monitor"; }
  ActionProfile declared_profile() const override {
    ActionProfile p;
    p.add_read(Field::kSrcIp);
    return p;
  }
  NfVerdict process(PacketView&) override {
    while (!release_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return NfVerdict::kPass;
  }

 private:
  std::atomic<bool>& release_;
};

TEST(HealthWatchdog, WedgedLiveWorkerProducesPostMortemDump) {
  std::atomic<bool> release{false};
  LivePipeline pipe(ServiceGraph::sequential("seq", {"monitor"}),
                    [&](const StageNf&) -> std::unique_ptr<NetworkFunction> {
                      return std::make_unique<WedgingNf>(release);
                    });

  MetricsRegistry registry;
  FlightRecorder rec;
  Watchdog::Options wd_opt;
  wd_opt.stall_after_ns = 20'000'000;  // 20 ms: fast but schedule-safe
  Watchdog wd(rec, wd_opt);
  wd.set_registry(&registry);
  std::atomic<u64> dumps{0};
  wd.on_dump([&](const std::string&) { dumps.fetch_add(1); });

  HealthSampler::Options s_opt;
  s_opt.period_us = 2'000;
  HealthSampler sampler(registry, s_opt);
  pipe.register_health(sampler, &wd);
  sampler.set_watchdog(&wd);
  sampler.start();

  std::vector<std::vector<u8>> frames;
  {
    PacketPool scratch(4);
    PacketSpec spec;
    Packet* p = build_packet(scratch, spec);
    frames.emplace_back(p->data(), p->data() + p->length());
    scratch.release(p);
  }
  LiveResult result;
  std::thread runner([&] { result = pipe.run(frames); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (wd.anomalies() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  release.store(true, std::memory_order_release);
  runner.join();
  sampler.stop();

  ASSERT_GE(wd.anomalies(), 1u) << "watchdog never noticed the wedged worker";
  EXPECT_GE(dumps.load(), 1u);
  const std::string dump = wd.last_dump();
  EXPECT_NE(dump.find("flight recorder post-mortem"), std::string::npos);
  EXPECT_NE(dump.find("worker stalled"), std::string::npos);
  EXPECT_NE(dump.find("nf:monitor#0"), std::string::npos);
  EXPECT_NE(dump.find("registry snapshot:"), std::string::npos);
  // The sampler's probes made it into the snapshot.
  EXPECT_NE(dump.find("worker_heartbeat_ns"), std::string::npos);
  // Once released, the packet flows through and the pipeline completes.
  EXPECT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.dropped, 0u);
}

}  // namespace
}  // namespace nfp

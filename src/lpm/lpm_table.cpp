#include "lpm/lpm_table.hpp"

#include "common/rng.hpp"

namespace nfp {

struct LpmTable::Node {
  std::unique_ptr<Node> child[2];
  std::optional<u32> next_hop;
};

LpmTable::LpmTable() : root_(std::make_unique<Node>()) {}
LpmTable::~LpmTable() = default;
LpmTable::LpmTable(LpmTable&&) noexcept = default;
LpmTable& LpmTable::operator=(LpmTable&&) noexcept = default;

void LpmTable::insert(u32 prefix, u8 prefix_len, u32 next_hop) {
  Node* node = root_.get();
  for (u8 depth = 0; depth < prefix_len; ++depth) {
    const unsigned bit = (prefix >> (31 - depth)) & 1;
    if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
    node = node->child[bit].get();
  }
  if (!node->next_hop) ++size_;
  node->next_hop = next_hop;
}

std::optional<u32> LpmTable::lookup(u32 addr) const {
  const Node* node = root_.get();
  std::optional<u32> best = node->next_hop;
  for (u8 depth = 0; depth < 32 && node != nullptr; ++depth) {
    const unsigned bit = (addr >> (31 - depth)) & 1;
    node = node->child[bit].get();
    if (node != nullptr && node->next_hop) best = node->next_hop;
  }
  return best;
}

u64 LpmTable::match_length_mask(u32 addr) const {
  u64 mask = 0;
  const Node* node = root_.get();
  if (node->next_hop) mask |= 1;  // the length-0 (default) prefix
  for (u8 depth = 0; depth < 32 && node != nullptr; ++depth) {
    const unsigned bit = (addr >> (31 - depth)) & 1;
    node = node->child[bit].get();
    if (node != nullptr && node->next_hop) mask |= u64{1} << (depth + 1);
  }
  return mask;
}

bool LpmTable::remove(u32 prefix, u8 prefix_len) {
  Node* node = root_.get();
  for (u8 depth = 0; depth < prefix_len; ++depth) {
    const unsigned bit = (prefix >> (31 - depth)) & 1;
    node = node->child[bit].get();
    if (node == nullptr) return false;
  }
  if (!node->next_hop) return false;
  node->next_hop.reset();
  --size_;
  return true;
}

LpmTable LpmTable::with_synthetic_routes(std::size_t count, u64 seed) {
  LpmTable table;
  Rng rng(seed);
  table.insert(0, 0, 0xFFFF);  // default route
  while (table.size() < count) {
    const u32 prefix = static_cast<u32>(rng.next()) & 0xFFFFFF00u;
    const u8 len = static_cast<u8>(rng.range(8, 28));
    const u32 masked = len == 0 ? 0 : (prefix & (0xFFFFFFFFu << (32 - len)));
    table.insert(masked, len, static_cast<u32>(rng.bounded(256)));
  }
  return table;
}

}  // namespace nfp

// Minimal JSON document model + recursive-descent parser.
//
// The observability plane speaks JSON in both directions: the stats server
// renders it, and `nfp_cli top` / the tests parse it back. This is the
// parsing half — a small, dependency-free reader covering the full JSON
// grammar (objects, arrays, strings with escapes, numbers, literals) with
// a depth limit as a malformed-input guard. It keeps numbers as doubles,
// which is exact for every integer the telemetry layer emits (< 2^53).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace nfp::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Object members keep source order; lookup is linear (documents here are
  // small and scanned once).
  using Member = std::pair<std::string, Value>;

  Value() = default;  // null

  static Value boolean(bool b);
  static Value number(double n);
  static Value string(std::string s);
  static Value array(std::vector<Value> items = {});
  static Value object(std::vector<Member> members = {});

  // Parses exactly one JSON document; trailing non-whitespace is an error.
  static Result<Value> parse(std::string_view text);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return number_; }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<Value>& items() const noexcept { return items_; }
  const std::vector<Member>& members() const noexcept { return members_; }

  // Object member by key; null when absent or not an object.
  const Value* find(std::string_view key) const noexcept;

  // Typed convenience lookups with defaults (for tolerant consumers).
  double number_or(std::string_view key, double fallback) const noexcept;
  std::string_view string_or(std::string_view key,
                             std::string_view fallback) const noexcept;

  std::size_t size() const noexcept {
    return is_array() ? items_.size() : is_object() ? members_.size() : 0;
  }

  // Serializes back to compact JSON (strings escaped; non-finite numbers
  // as null, matching the exporters).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

// Escapes a string for embedding in a JSON document (no surrounding
// quotes). Control characters use \u00XX.
std::string escape(std::string_view s);

}  // namespace nfp::json

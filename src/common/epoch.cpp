#include "common/epoch.hpp"

#include "ring/backoff.hpp"

namespace nfp {

// One per thread per domain, cacheline-private to its owner so a pin/unpin
// never dirties a line any other reader touches. `depth` is owner-only
// state (guard nesting); `pinned` is the only cross-thread field.
struct alignas(kCacheLineSize) EpochSlot {
  std::atomic<u64> pinned{0};  // 0 = quiescent, else the pinned epoch
  u32 depth = 0;
  std::atomic<bool> in_use{true};
  EpochSlot* next = nullptr;  // immutable once published
};

namespace {

// Registers on first use, hands the slot back for reuse at thread exit.
struct ThreadSlotHandle {
  EpochSlot* slot = nullptr;
  ~ThreadSlotHandle() {
    if (slot != nullptr) {
      // No guard can be live at thread exit (guards are scoped); release
      // pairs with the acquire CAS of the next thread adopting the slot.
      slot->in_use.store(false, std::memory_order_release);
    }
  }
};

thread_local ThreadSlotHandle t_slot;

}  // namespace

EpochDomain& EpochDomain::global() {
  static EpochDomain domain;
  return domain;
}

EpochSlot* EpochDomain::slot_for_current_thread() {
  if (t_slot.slot != nullptr) return t_slot.slot;
  // Adopt a slot abandoned by an exited thread before growing the list.
  for (EpochSlot* s = head_.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    bool expected = false;
    if (!s->in_use.load(std::memory_order_relaxed) &&
        s->in_use.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      t_slot.slot = s;
      return s;
    }
  }
  auto* fresh = new EpochSlot();
  EpochSlot* old_head = head_.load(std::memory_order_relaxed);
  do {
    fresh->next = old_head;
  } while (!head_.compare_exchange_weak(old_head, fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed));
  t_slot.slot = fresh;
  return fresh;
}

EpochDomain::Guard::Guard(EpochDomain& domain)
    : slot_(domain.slot_for_current_thread()) {
  if (slot_->depth++ > 0) return;  // outer guard's (older) pin covers us
  slot_->pinned.store(domain.epoch_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  // Fence (A) of the header's contract: orders the pin before the
  // protected pointer load against a writer's scan.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

EpochDomain::Guard::~Guard() {
  if (--slot_->depth == 0) {
    slot_->pinned.store(0, std::memory_order_release);
  }
}

void EpochDomain::synchronize() {
  const u64 target = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Fence (B): after it, any reader still holding a pre-bump pin is
  // visible to the scan below (see the Dekker argument in the header).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (EpochSlot* s = head_.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    Backoff backoff;
    for (;;) {
      const u64 pinned = s->pinned.load(std::memory_order_acquire);
      if (pinned == 0 || pinned >= target) break;
      backoff.pause();
    }
  }
}

}  // namespace nfp

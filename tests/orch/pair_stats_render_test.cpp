// Rendering and option-sweep tests for the §4.3 pair statistics.
#include <gtest/gtest.h>

#include "actions/action_table.hpp"
#include "orch/pair_stats.hpp"

namespace nfp {
namespace {

TEST(PairStatsRender, TableListsEveryPairAndTotals) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  const PairStats stats = compute_pair_stats(table, true, true);
  const std::string text = pair_stats_table(stats);
  EXPECT_NE(text.find("firewall"), std::string::npos);
  EXPECT_NE(text.find("parallelizable: 53.8%"), std::string::npos);
  EXPECT_NE(text.find("no-copy: 41.5%"), std::string::npos);
  // Every entry row appears.
  std::size_t rows = 0;
  for (const auto& e : stats.entries) {
    rows += text.find(e.nf1) != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(rows, stats.entries.size());
}

TEST(PairStatsRender, WeightsSumToOne) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  const PairStats stats = compute_pair_stats(table, true, true);
  double sum = 0;
  for (const auto& e : stats.entries) sum += e.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PairStatsRender, UnweightedTreatsPairsEqually) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  const PairStats stats = compute_pair_stats(table, /*weighted=*/false, true);
  ASSERT_FALSE(stats.entries.empty());
  const double expected = 1.0 / static_cast<double>(stats.entries.size());
  for (const auto& e : stats.entries) {
    EXPECT_NEAR(e.weight, expected, 1e-12);
  }
}

TEST(PairStatsRender, EmptyTableYieldsZeroStats) {
  const ActionTable empty;
  const PairStats stats = compute_pair_stats(empty);
  EXPECT_EQ(stats.pair_count, 0u);
  EXPECT_EQ(stats.parallelizable, 0.0);
}

TEST(PairStatsRender, AllNfsIncludesUnweightedTypes) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  const PairStats deployed = compute_pair_stats(table, false, true);
  const PairStats all = compute_pair_stats(table, false, false);
  EXPECT_GT(all.pair_count, deployed.pair_count);
}

}  // namespace
}  // namespace nfp

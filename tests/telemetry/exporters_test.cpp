// Golden-output tests for the Prometheus / JSON exporters and the
// per-component report.
#include <gtest/gtest.h>

#include <limits>

#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"

namespace nfp::telemetry {
namespace {

MetricsRegistry small_registry() {
  MetricsRegistry reg;
  reg.counter("packets_injected_total", {{"plane", "nfp"}}).inc(100);
  reg.counter("packets_dropped_total", {{"plane", "nfp"}, {"reason", "nf"}})
      .inc(2);
  reg.gauge("pool_in_use", {{"plane", "nfp"}}).set(7);
  Histogram& h = reg.histogram("packet_latency_ns", {{"plane", "nfp"}});
  for (u64 v = 1; v <= 10; ++v) h.record(v);
  return reg;
}

TEST(ExportersTest, PrometheusGolden) {
  const std::string text = to_prometheus(small_registry());
  EXPECT_NE(text.find("# TYPE packets_injected_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("packets_injected_total{plane=\"nfp\"} 100"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "packets_dropped_total{plane=\"nfp\",reason=\"nf\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_in_use gauge"), std::string::npos);
  EXPECT_NE(text.find("pool_in_use{plane=\"nfp\"} 7"), std::string::npos);
  // Histograms expose as native Prometheus histogram series: cumulative
  // le-buckets at power-of-two boundaries (exact bucket edges), then the
  // mandatory +Inf bucket, _sum and _count.
  EXPECT_NE(text.find("# TYPE packet_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("packet_latency_ns_bucket{plane=\"nfp\",le=\"16\"} 10"),
      std::string::npos);
  EXPECT_NE(
      text.find("packet_latency_ns_bucket{plane=\"nfp\",le=\"+Inf\"} 10"),
      std::string::npos);
  EXPECT_NE(text.find("packet_latency_ns_count{plane=\"nfp\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("packet_latency_ns_sum{plane=\"nfp\"} 55"),
            std::string::npos);
}

TEST(ExportersTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("spread_ns", {});
  h.record(3);     // below the first le=16 edge
  h.record(40);    // in [32, 64)
  h.record(40);
  h.record(1024);  // exactly on a boundary: le is exclusive, lands above
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("spread_ns_bucket{le=\"16\"} 1"), std::string::npos);
  EXPECT_NE(text.find("spread_ns_bucket{le=\"64\"} 3"), std::string::npos);
  EXPECT_NE(text.find("spread_ns_bucket{le=\"1024\"} 3"), std::string::npos);
  EXPECT_NE(text.find("spread_ns_bucket{le=\"2048\"} 4"), std::string::npos);
  EXPECT_NE(text.find("spread_ns_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("spread_ns_count 4"), std::string::npos);
}

TEST(ExportersTest, JsonGolden) {
  const std::string json = to_json(small_registry());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"packets_injected_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"plane\":\"nfp\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":100"), std::string::npos);
  EXPECT_NE(json.find("\"high_water\":7"), std::string::npos);
  EXPECT_NE(json.find("\"count\":10"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":5"), std::string::npos);
  EXPECT_NE(json.find("\"min\":1"), std::string::npos);
  EXPECT_NE(json.find("\"max\":10"), std::string::npos);
}

TEST(ExportersTest, JsonEscapesStrings) {
  MetricsRegistry reg;
  reg.counter("weird", {{"label", "a\"b\\c"}}).inc();
  const std::string json = to_json(reg);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(ExportersTest, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("weird", {{"label", "a\\b\"c\nd"}}).inc(3);
  const std::string text = to_prometheus(reg);
  // Exposition format: backslash, double-quote, newline in label values
  // must come out as \\ , \" and \n — one line per series, always.
  EXPECT_NE(text.find("weird{label=\"a\\\\b\\\"c\\nd\"} 3"),
            std::string::npos);
}

TEST(ExportersTest, PromEscapeLabelCoversAllThreeEscapes) {
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label("a\nb"), "a\\nb");
}

TEST(ExportersTest, FmtPromDoubleSpellsNonFiniteValues) {
  EXPECT_EQ(fmt_prom_double(std::numeric_limits<double>::quiet_NaN()), "NaN");
  EXPECT_EQ(fmt_prom_double(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(fmt_prom_double(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(fmt_prom_double(5.0), "5");
  EXPECT_EQ(fmt_prom_double(2.5), "2.5");
}

TEST(ExportersTest, PrometheusRendersNonFiniteGauges) {
  MetricsRegistry reg;
  reg.gauge("ratio", {}).value.store(
      std::numeric_limits<double>::quiet_NaN());
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("ratio NaN"), std::string::npos);
}

TEST(ExportersTest, ComponentReportShowsUtilizationAndLatency) {
  MetricsRegistry reg = small_registry();
  reg.gauge("sim_now_ns", {{"plane", "nfp"}}).set(1'000'000);
  reg.gauge("core_busy_ns",
            {{"plane", "nfp"}, {"component", "classifier"}})
      .set(250'000);
  reg.gauge("core_busy_ns",
            {{"plane", "nfp"}, {"component", "nf:firewall#0"}})
      .set(500'000);
  Histogram& service = reg.histogram(
      "nf_service_ns", {{"plane", "nfp"}, {"nf", "nf:firewall#0"}});
  for (int i = 0; i < 100; ++i) service.record(120);
  reg.gauge("pool_capacity", {{"plane", "nfp"}}).set(1024);

  const std::string report = component_report(reg);
  EXPECT_NE(report.find("plane=nfp"), std::string::npos);
  EXPECT_NE(report.find("classifier"), std::string::npos);
  EXPECT_NE(report.find("25.0%"), std::string::npos);  // 250k / 1M
  EXPECT_NE(report.find("50.0%"), std::string::npos);  // firewall busy
  EXPECT_NE(report.find("120"), std::string::npos);    // p50 service
  EXPECT_NE(report.find("injected=100"), std::string::npos);
  EXPECT_NE(report.find("pool: high-water 7 / 1024"), std::string::npos);
}

TEST(ExportersTest, ComponentReportMergesPlanesSideBySide) {
  MetricsRegistry nfp = small_registry();
  nfp.gauge("sim_now_ns", {{"plane", "nfp"}}).set(1'000);
  MetricsRegistry onv;
  onv.counter("packets_injected_total", {{"plane", "onv"}}).inc(50);
  onv.gauge("sim_now_ns", {{"plane", "onv"}}).set(2'000);
  nfp.merge(onv);
  const std::string report = component_report(nfp);
  EXPECT_NE(report.find("plane=nfp"), std::string::npos);
  EXPECT_NE(report.find("plane=onv"), std::string::npos);
  EXPECT_NE(report.find("injected=50"), std::string::npos);
}

}  // namespace
}  // namespace nfp::telemetry

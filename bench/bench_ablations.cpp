// Ablation studies for NFP's design choices (DESIGN.md §7):
//  A. Dirty Memory Reusing (OP#1) on/off — copy necessity across the
//     deployment-weighted NF pairs and latency on a concrete graph.
//  B. Header-Only vs full-packet copying (OP#2) — copy volume and latency.
//  C. Copy-accepting vs zero-copy compilation (CompilerOptions) — the
//     latency/overhead trade-off on the west-east chain.
//  D. Merger instance count 1/2/4 — the §6.3.3 bottleneck.
//  E. Nil-packet drop signalling: merger completeness under heavy drops.
#include "bench_util.hpp"
#include "orch/compiler.hpp"
#include "orch/pair_stats.hpp"
#include "policy/policy.hpp"

using namespace nfp;
using namespace nfp::bench;

namespace {

ServiceGraph compile_we(const CompilerOptions& opt) {
  const ActionTable table = ActionTable::with_builtin_nfs();
  auto g = compile_policy(
      Policy::from_sequential_chain("we", {"ids", "monitor", "lb"}), table,
      opt);
  return std::move(g).take();
}

}  // namespace

int main(int argc, char** argv) {
  BenchServer server(argc, argv);
  const ActionTable table = ActionTable::with_builtin_nfs();

  print_header("Ablation A: Dirty Memory Reusing (OP#1)");
  {
    const PairStats on = compute_pair_stats(table, true, true);
    AnalysisOptions off_opt;
    off_opt.dirty_memory_reusing = false;
    const PairStats off = compute_pair_stats(table, true, true, off_opt);
    std::printf("no-copy pair share:   OP#1 on %.1f%%   off %.1f%%\n",
                on.no_copy * 100, off.no_copy * 100);
    std::printf("with-copy pair share: OP#1 on %.1f%%   off %.1f%%\n",
                on.with_copy * 100, off.with_copy * 100);

    CompilerOptions con;
    CompilerOptions coff;
    coff.analysis.dirty_memory_reusing = false;
    const auto traffic = latency_traffic(64);
    const Measurement m_on = run_nfp(compile_we(con), traffic);
    const Measurement m_off = run_nfp(compile_we(coff), traffic);
    server.observe(m_on);
    server.observe(m_off);
    std::printf("west-east chain:      OP#1 on %.1fus/%zu copies   off "
                "%.1fus/%llu header-copies\n",
                m_on.mean_latency_us, compile_we(con).copies_per_packet(),
                m_off.mean_latency_us,
                static_cast<unsigned long long>(
                    m_off.stats.copies_header / std::max<u64>(
                        m_off.stats.injected, 1)));
  }

  print_header("Ablation B: Header-Only Copying (OP#2) vs full copies");
  {
    TrafficConfig traffic;
    traffic.size_model = SizeModel::kDataCenter;
    traffic.rate_pps = 20'000;
    traffic.packets = 4'000;
    // Same 2-NF parallel stage, once with a header copy, once forcing a
    // full copy of version 2.
    ServiceGraph header_graph = parallel_stage("firewall", 2, true, false);
    ServiceGraph full_graph = parallel_stage("firewall", 2, true, true);
    const Measurement header = run_nfp(header_graph, traffic);
    const Measurement full = run_nfp(full_graph, traffic);
    server.observe(header);
    server.observe(full);
    const double bytes = TrafficGenerator::dc_mean_frame_size() * 4'000;
    std::printf("header-only: %.1f us, overhead %.1f%%\n",
                header.mean_latency_us,
                static_cast<double>(header.stats.copy_bytes) / bytes * 100);
    std::printf("full copies: %.1f us, overhead %.1f%%\n",
                full.mean_latency_us,
                static_cast<double>(full.stats.copy_bytes) / bytes * 100);
  }

  print_header(
      "Ablation C: copy-accepting vs zero-copy compilation (west-east)");
  {
    CompilerOptions with_copy;
    CompilerOptions zero_copy;
    zero_copy.parallelize_with_copy = false;
    const ServiceGraph g1 = compile_we(with_copy);
    const ServiceGraph g2 = compile_we(zero_copy);
    const auto traffic = latency_traffic(64);
    const Measurement m1 = run_nfp(g1, traffic);
    const Measurement m2 = run_nfp(g2, traffic);
    server.observe(m1);
    server.observe(m2);
    std::printf("accept copies: graph %s (len %zu) -> %.1f us\n",
                g1.structure().c_str(), g1.equivalent_length(),
                m1.mean_latency_us);
    std::printf("zero copies:   graph %s (len %zu) -> %.1f us\n",
                g2.structure().c_str(), g2.equivalent_length(),
                m2.mean_latency_us);
  }

  print_header("Ablation D: merger instances (degree-4 firewall stage)");
  for (const std::size_t mergers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    DataplaneConfig cfg;
    cfg.merger_instances = mergers;
    const Measurement m = run_nfp(parallel_stage("firewall", 4, false),
                                  saturation_traffic(64, 30'000), cfg);
    server.observe(m);
    std::printf("%zu merger instance(s): %.2f Mpps\n", mergers, m.rate_mpps);
  }

  print_header("Ablation E: nil-packet signalling under heavy drops");
  {
    DataplaneConfig cfg;
    cfg.factory = [](const StageNf& nf) -> std::unique_ptr<NetworkFunction> {
      if (nf.name == "firewall") {
        AclTable acl;
        acl.set_default_action(AclAction::kDrop);  // drops everything
        return std::make_unique<Firewall>(std::move(acl));
      }
      return make_builtin_nf(nf.name);
    };
    const ActionTable t2 = ActionTable::with_builtin_nfs();
    auto g = compile_policy(
        Policy::from_sequential_chain("mf", {"monitor", "firewall"}), t2);
    sim::Simulator sim;
    NfpDataplane dp(sim, std::move(g).take(), std::move(cfg));
    TrafficConfig traffic;
    traffic.packets = 20'000;
    traffic.rate_pps = 1e6;
    TrafficGenerator gen(sim, dp.pool(), traffic);
    gen.start([&](Packet* p) { dp.inject(p); });
    sim.run();
    std::printf("injected %llu, dropped %llu, pool leak: %zu buffers\n",
                static_cast<unsigned long long>(dp.stats().injected),
                static_cast<unsigned long long>(dp.stats().dropped_by_nf),
                dp.pool().in_use());
  }
  server.finish();
  return 0;
}

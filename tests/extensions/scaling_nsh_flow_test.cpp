// Tests for the remaining §7 extensions and their substrates: the flow
// table, the token bucket, elastic NF scaling with state migration, and
// NSH encapsulation for cross-server hops.
#include <gtest/gtest.h>

#include <set>

#include "cluster/nsh.hpp"
#include "flow/flow_table.hpp"
#include "nfs/misc_nfs.hpp"
#include "nfs/monitor.hpp"
#include "packet/builder.hpp"
#include "qos/token_bucket.hpp"
#include "scaling/scaler.hpp"

namespace nfp {
namespace {

// --- FlowTable ----------------------------------------------------------------

TEST(FlowTableTest, CreatesAndFinds) {
  FlowTable<int> table(4);
  const FiveTuple a{1, 2, 3, 4, 6};
  table.get_or_create(a) = 7;
  ASSERT_NE(table.peek(a), nullptr);
  EXPECT_EQ(*table.peek(a), 7);
  EXPECT_EQ(table.peek({9, 9, 9, 9, 6}), nullptr);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, EvictsLeastRecentlyUsed) {
  FlowTable<int> table(3);
  const FiveTuple f1{1, 0, 0, 0, 6}, f2{2, 0, 0, 0, 6}, f3{3, 0, 0, 0, 6},
      f4{4, 0, 0, 0, 6};
  table.get_or_create(f1) = 1;
  table.get_or_create(f2) = 2;
  table.get_or_create(f3) = 3;
  table.get_or_create(f1);  // refresh f1 -> f2 is now LRU
  table.get_or_create(f4) = 4;
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_EQ(table.peek(f2), nullptr) << "f2 was least recently used";
  EXPECT_NE(table.peek(f1), nullptr);
  EXPECT_NE(table.peek(f4), nullptr);
}

TEST(FlowTableTest, EraseAndForEach) {
  FlowTable<int> table(8);
  for (u32 i = 0; i < 5; ++i) {
    table.get_or_create({i, 0, 0, 0, 6}) = static_cast<int>(i);
  }
  EXPECT_TRUE(table.erase({2, 0, 0, 0, 6}));
  EXPECT_FALSE(table.erase({2, 0, 0, 0, 6}));
  int sum = 0, count = 0;
  table.for_each([&](const FiveTuple&, const int& v) {
    sum += v;
    ++count;
  });
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sum, 0 + 1 + 3 + 4);
}

// --- TokenBucket -----------------------------------------------------------------

TEST(TokenBucketTest, BurstThenThrottle) {
  TokenBucket bucket(1'000'000, 1'000);  // 1 MB/s, 1 KB burst
  EXPECT_TRUE(bucket.conform(0, 600));
  EXPECT_TRUE(bucket.conform(0, 400));
  EXPECT_FALSE(bucket.conform(0, 1)) << "bucket exhausted";
  // After 500us, 500 bytes refilled.
  EXPECT_TRUE(bucket.conform(500'000, 500));
  EXPECT_FALSE(bucket.conform(500'000, 200));
}

TEST(TokenBucketTest, NeverExceedsBurst) {
  TokenBucket bucket(1'000'000, 1'000);
  EXPECT_TRUE(bucket.conform(10 * kNsPerSec, 1'000));
  EXPECT_FALSE(bucket.conform(10 * kNsPerSec, 1))
      << "long idle must not accumulate beyond the burst";
}

TEST(TokenBucketTest, NextConformTime) {
  TokenBucket bucket(1'000'000, 1'000);
  ASSERT_TRUE(bucket.conform(0, 1'000));
  const SimTime t = bucket.next_conform_time(0, 500);
  EXPECT_GE(t, 500'000u);  // 500B at 1MB/s = 500us
  EXPECT_LE(t, 510'000u);
  EXPECT_TRUE(bucket.conform(t, 500));
}

TEST(TokenBucketTest, PolicingShaperDropsOutOfProfile) {
  // 1 KB/s with a tiny burst: the second packet at t=0 must be dropped.
  TrafficShaper shaper(1'000, 200, /*policing=*/true);
  PacketPool pool(4);
  PacketSpec spec;
  spec.frame_size = 128;
  Packet* p1 = build_packet(pool, spec);
  Packet* p2 = build_packet(pool, spec);
  PacketView v1(*p1), v2(*p2);
  EXPECT_EQ(shaper.process(v1), NfVerdict::kPass);
  EXPECT_EQ(shaper.process(v2), NfVerdict::kDrop);
  EXPECT_EQ(shaper.out_of_profile(), 1u);
  EXPECT_TRUE(shaper.declared_profile().drops());
  pool.release(p1);
  pool.release(p2);
}

// --- elastic scaling -----------------------------------------------------------------

Monitor::ExportedFlow count_flow(u32 ip, u64 packets) {
  return {FiveTuple{ip, 1, 2, 3, 6}, Monitor::FlowStats{packets, packets * 64}};
}

TEST(ScalingTest, ScaleUpPreservesEveryFlowExactly) {
  scaling::ScalableNfGroup<Monitor> group(
      [] { return std::make_unique<Monitor>(); });
  // Seed 200 flows through replica routing.
  PacketPool pool(4);
  for (u32 i = 0; i < 200; ++i) {
    PacketSpec spec;
    spec.tuple = FiveTuple{0x0A000000 + i, 0x0B000000, 1000, 80, kProtoTcp};
    Packet* p = build_packet(pool, spec);
    PacketView v(*p);
    group.process(v);
    pool.release(p);
  }
  const auto total_flows = [&group] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < group.replica_count(); ++i) {
      n += group.replica(i).flow_count();
    }
    return n;
  };
  ASSERT_EQ(group.replica_count(), 1u);
  ASSERT_EQ(total_flows(), 200u);

  const std::size_t migrated = group.scale_up();
  EXPECT_EQ(group.replica_count(), 2u);
  EXPECT_GT(migrated, 0u);
  EXPECT_EQ(total_flows(), 200u) << "no flow state lost in migration";

  // Every flow's counter must now live on the replica route() selects.
  for (u32 i = 0; i < 200; ++i) {
    const FiveTuple flow{0x0A000000 + i, 0x0B000000, 1000, 80, kProtoTcp};
    const Monitor& owner = group.replica(group.route(flow));
    const auto* stats = owner.flow(flow);
    ASSERT_NE(stats, nullptr) << "flow " << i;
    EXPECT_EQ(stats->packets, 1u);
  }
}

TEST(ScalingTest, CountersKeepGrowingAfterResize) {
  scaling::ScalableNfGroup<Monitor> group(
      [] { return std::make_unique<Monitor>(); });
  PacketPool pool(4);
  const FiveTuple flow{0x0A0A0A0A, 0x0B0B0B0B, 1234, 80, kProtoTcp};
  const auto send = [&] {
    PacketSpec spec;
    spec.tuple = flow;
    Packet* p = build_packet(pool, spec);
    PacketView v(*p);
    group.process(v);
    pool.release(p);
  };
  send();
  send();
  group.scale_up();
  send();  // must hit the replica that now owns the migrated state
  const auto* stats = group.replica(group.route(flow)).flow(flow);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->packets, 3u);
}

TEST(ScalingTest, ScaleDownFoldsStateBack) {
  scaling::ScalableNfGroup<Monitor> group(
      [] { return std::make_unique<Monitor>(); }, 3);
  group.replica(2).absorb_flows({count_flow(1, 5), count_flow(2, 7)});
  const std::size_t migrated = group.scale_down();
  EXPECT_EQ(group.replica_count(), 2u);
  EXPECT_EQ(migrated, 2u);
  const FiveTuple f1{1, 1, 2, 3, 6};
  const auto* stats = group.replica(group.route(f1)).flow(f1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->packets, 5u);
  EXPECT_EQ(group.scale_events(), 1u);
}

TEST(ScalingTest, RendezvousRoutingMigratesSmallFraction) {
  // With HRW routing a k -> k+1 resize moves only the flows the new
  // replica wins: ~1/(k+1). The old modulo router reshuffled ~k/(k+1) —
  // here that would be ~80% of all flow state instead of ~20%.
  scaling::ScalableNfGroup<Monitor> group(
      [] { return std::make_unique<Monitor>(); }, 4);
  const u32 kFlows = 2000;
  for (u32 i = 0; i < kFlows; ++i) {
    const auto entry = count_flow(100 + i, 1);
    group.replica(group.route(entry.first)).absorb_flows({entry});
  }
  const std::size_t migrated = group.scale_up();
  ASSERT_EQ(group.replica_count(), 5u);
  const double fraction =
      static_cast<double>(migrated) / static_cast<double>(kFlows);
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.35) << "migration fraction regressed toward the "
                               "modulo router's ~k/(k+1) reshuffle";
  // No state lost, and every flow sits where route() now points.
  std::size_t total = 0;
  for (std::size_t r = 0; r < group.replica_count(); ++r) {
    total += group.replica(r).flow_count();
  }
  EXPECT_EQ(total, kFlows);
  for (u32 i = 0; i < kFlows; i += 97) {
    const FiveTuple flow{100 + i, 1, 2, 3, 6};
    EXPECT_NE(group.replica(group.route(flow)).flow(flow), nullptr);
  }
}

// --- NSH -------------------------------------------------------------------------

TEST(NshTest, EncapDecapRoundTrip) {
  PacketPool pool(2);
  PacketSpec spec;
  spec.frame_size = 200;
  Packet* p = build_packet(pool, spec);
  const std::vector<u8> original(p->data(), p->data() + p->length());

  cluster::NshInfo info;
  info.next_mid = 0x0ABCDE;
  info.pid = 0x1122334455ull;
  ASSERT_TRUE(cluster::nsh_encap(*p, info));
  EXPECT_TRUE(cluster::is_nsh(*p));
  EXPECT_EQ(p->length(),
            original.size() + cluster::kNshBaseLen + cluster::kNshContextLen);

  const auto decapped = cluster::nsh_decap(*p);
  ASSERT_TRUE(decapped.has_value());
  EXPECT_EQ(decapped->next_mid, 0x0ABCDEu);
  ASSERT_TRUE(decapped->pid.has_value());
  EXPECT_EQ(*decapped->pid, 0x1122334455ull);
  ASSERT_EQ(p->length(), original.size());
  EXPECT_EQ(0, std::memcmp(p->data(), original.data(), original.size()));
  pool.release(p);
}

TEST(NshTest, EncapWithoutContext) {
  PacketPool pool(2);
  Packet* p = build_packet(pool, PacketSpec{});
  cluster::NshInfo info;
  info.next_mid = 42;
  ASSERT_TRUE(cluster::nsh_encap(*p, info));
  const auto decapped = cluster::nsh_decap(*p);
  ASSERT_TRUE(decapped.has_value());
  EXPECT_EQ(decapped->next_mid, 42u);
  EXPECT_FALSE(decapped->pid.has_value());
  pool.release(p);
}

TEST(NshTest, DecapRejectsPlainFrames) {
  PacketPool pool(2);
  Packet* p = build_packet(pool, PacketSpec{});
  EXPECT_FALSE(cluster::is_nsh(*p));
  EXPECT_FALSE(cluster::nsh_decap(*p).has_value());
  pool.release(p);
}

}  // namespace
}  // namespace nfp

// Logger sink injection: tests capture log output through a string sink
// instead of scraping std::clog.
#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"

namespace nfp {
namespace {

// Restores the global logger on scope exit so tests don't leak state.
struct SinkGuard {
  explicit SinkGuard(std::ostream* sink, LogLevel level) {
    prev_level_ = Logger::instance().level();
    Logger::instance().set_sink(sink);
    Logger::instance().set_level(level);
  }
  ~SinkGuard() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(prev_level_);
    Logger::instance().set_timestamps(false);
  }
  LogLevel prev_level_;
};

TEST(LoggingTest, SinkCapturesFormattedOutput) {
  std::ostringstream captured;
  const SinkGuard guard(&captured, LogLevel::kDebug);
  log_warn("pool exhausted after ", 42, " packets");
  log_info("chain length ", 3);
  const std::string out = captured.str();
  EXPECT_NE(out.find("[WARN ] pool exhausted after 42 packets\n"),
            std::string::npos);
  EXPECT_NE(out.find("[INFO ] chain length 3\n"), std::string::npos);
}

TEST(LoggingTest, LevelFiltersMessages) {
  std::ostringstream captured;
  const SinkGuard guard(&captured, LogLevel::kError);
  log_warn("should be filtered");
  log_error("should appear");
  EXPECT_EQ(captured.str().find("filtered"), std::string::npos);
  EXPECT_NE(captured.str().find("should appear"), std::string::npos);
}

TEST(LoggingTest, TimestampsArePrefixedWhenEnabled) {
  std::ostringstream captured;
  const SinkGuard guard(&captured, LogLevel::kInfo);
  Logger::instance().set_timestamps(true);
  log_info("stamped");
  const std::string out = captured.str();
  // HH:MM:SS.mmm prefix: 12 chars then a space then the level tag.
  ASSERT_GE(out.size(), 13u);
  EXPECT_EQ(out[2], ':');
  EXPECT_EQ(out[5], ':');
  EXPECT_EQ(out[8], '.');
  EXPECT_NE(out.find(" [INFO ] stamped\n"), std::string::npos);
}

TEST(LoggingTest, NullSinkRestoresClog) {
  std::ostringstream captured;
  {
    const SinkGuard guard(&captured, LogLevel::kInfo);
    log_info("captured line");
  }
  EXPECT_NE(captured.str().find("captured line"), std::string::npos);
  // After the guard, the sink is back to std::clog — nothing more lands in
  // the stringstream.
  log_error("not captured");
  EXPECT_EQ(captured.str().find("not captured"), std::string::npos);
}

}  // namespace
}  // namespace nfp
